// Sensor coverage: a swarm of anonymous sensors must agree on the smallest
// circular broadcast zone covering all of them — minimum enclosing disk in
// the gossip model, the exact scenario the paper's smallest-enclosing-ball
// application models.
//
// Each sensor is a gossip node that knows only its own position (H is
// distributed with exactly one element per node), can push/pull to random
// peers, and must learn the common zone.  We compare both engines on the
// same deployment and report the communication budget each needed.
//
//   $ sensor_coverage [--sensors=4096] [--seed=3] [--spread=clustered]
#include <cstdio>
#include <string>

#include "core/high_load.hpp"
#include "core/low_load.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto sensors = static_cast<std::size_t>(cli.get_int("sensors", 4096));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  const std::string spread = cli.get("spread", "clustered");

  // Deployment: sensors scattered over a field.  "clustered" drops most of
  // them around three hotspots with a few outliers — the outliers define
  // the zone, which is what makes the problem non-trivial for gossip.
  util::Rng rng(seed);
  std::vector<geom::Vec2> positions;
  positions.reserve(sensors);
  if (spread == "uniform") {
    for (std::size_t i = 0; i < sensors; ++i) {
      positions.push_back({rng.uniform(-50, 50), rng.uniform(-50, 50)});
    }
  } else {
    const geom::Vec2 hotspots[] = {{-30, -10}, {25, 5}, {0, 35}};
    for (std::size_t i = 0; i < sensors; ++i) {
      if (rng.bernoulli(0.995)) {
        const auto& h = hotspots[rng.below(3)];
        positions.push_back(
            {h.x + rng.normal() * 4.0, h.y + rng.normal() * 4.0});
      } else {  // outlier
        positions.push_back({rng.uniform(-60, 60), rng.uniform(-60, 60)});
      }
    }
  }

  problems::MinDisk problem;
  const auto oracle = problem.solve(positions);
  std::printf("deployment: %zu sensors (%s), true zone radius %.3f\n\n",
              sensors, spread.c_str(), oracle.disk.radius);

  core::LowLoadConfig low_cfg;
  low_cfg.seed = seed;
  const auto low = core::run_low_load(problem, positions, sensors, low_cfg);
  std::printf("Low-Load Clarkson  (Theorem 3 regime, |H| = n):\n");
  std::printf("  rounds: %zu   max work/round: %u ops   total messages: %llu\n",
              low.stats.rounds_to_first, low.stats.max_work_per_round,
              static_cast<unsigned long long>(low.stats.total_push_ops +
                                              low.stats.total_pull_ops));
  std::printf("  zone found: center (%.3f, %.3f) radius %.3f  [%s]\n\n",
              low.solution.disk.center.x, low.solution.disk.center.y,
              low.solution.disk.radius,
              problem.same_value(low.solution, oracle) ? "correct" : "WRONG");

  core::HighLoadConfig high_cfg;
  high_cfg.seed = seed;
  const auto high = core::run_high_load(problem, positions, sensors, high_cfg);
  std::printf("High-Load Clarkson (Theorem 4 engine on the same deployment):\n");
  std::printf("  rounds: %zu   max work/round: %u ops   total messages: %llu\n",
              high.stats.rounds_to_first, high.stats.max_work_per_round,
              static_cast<unsigned long long>(high.stats.total_push_ops +
                                              high.stats.total_pull_ops));
  std::printf("  zone found: center (%.3f, %.3f) radius %.3f  [%s]\n",
              high.solution.disk.center.x, high.solution.disk.center.y,
              high.solution.disk.radius,
              problem.same_value(high.solution, oracle) ? "correct" : "WRONG");

  const bool ok = problem.same_value(low.solution, oracle) &&
                  problem.same_value(high.solution, oracle);
  return ok ? 0 : 1;
}
