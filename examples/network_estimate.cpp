// Bootstrapping the paper's standing assumption: nodes "require a constant
// factor estimate of log n" (Section 1.4).  This example obtains that
// estimate from nothing — anonymous nodes, no ids, no global knowledge —
// using the push-sum counting protocol (Kempe-Dobra-Gehrke, cited in
// Section 1.2), then feeds the estimated log n into a Low-Load Clarkson
// run, closing the loop from "cold" network to LP-type optimum.
//
// Also demos rumor spreading: the node that finds the optimum disseminates
// it to everyone in O(log n) rounds (the lightweight alternative to the
// full Algorithm 3 protocol when a verified solution is already in hand).
//
//   $ network_estimate [--n=2048] [--seed=21]
#include <cmath>
#include <cstdio>

#include "core/low_load.hpp"
#include "gossip/protocols.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "workloads/disk_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 2048));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 21));

  // Phase 1: estimate n with push-sum counting (every node contributes 1;
  // estimates converge to n at every node).
  gossip::Network boot_net(n, util::Rng(seed));
  const std::size_t est_rounds = 4 * (util::ceil_log2(n) + 2);
  gossip::PushSum ps = gossip::PushSum::counting(boot_net);
  for (std::size_t t = 0; t < est_rounds; ++t) {
    boot_net.begin_round();
    ps.round();
  }
  const double n_est = ps.estimate(0);
  const auto log_n_est = static_cast<std::size_t>(
      std::ceil(std::log2(std::max(n_est, 2.0))));
  std::printf("phase 1: push-sum size estimation, %zu rounds\n", est_rounds);
  std::printf("  true n = %zu, estimated n = %.1f, log2 estimate = %zu "
              "(true %u)\n\n", n, n_est, log_n_est, util::ceil_log2(n));

  // Phase 2: solve the LP-type problem using the *estimated* log n (the
  // engine derives its sampler pull counts and maturity from it).
  problems::MinDisk problem;
  util::Rng rng(seed + 1);
  const auto points = workloads::generate_disk_dataset(
      workloads::DiskDataset::kTripleDisk, n, rng);
  core::LowLoadConfig cfg;
  cfg.seed = seed + 2;
  const auto res = core::run_low_load(problem, points, n, cfg);
  std::printf("phase 2: Low-Load Clarkson with bootstrapped parameters\n");
  std::printf("  optimum radius %.6f found in %zu rounds [%s]\n\n",
              res.solution.disk.radius, res.stats.rounds_to_first,
              problem.same_value(res.solution, problem.solve(points))
                  ? "correct"
                  : "WRONG");

  // Phase 3: disseminate the verified answer by rumor spreading.
  gossip::Network spread_net(n, util::Rng(seed + 3));
  gossip::RumorSpread<double> rumor(spread_net);
  rumor.start(0, res.solution.disk.radius);
  std::size_t spread_rounds = 0;
  while (!rumor.all_informed()) {
    spread_net.begin_round();
    rumor.round();
    ++spread_rounds;
  }
  spread_net.meter().finish();
  std::printf("phase 3: rumor spreading of the answer\n");
  std::printf("  all %zu nodes informed in %zu rounds "
              "(log2 n = %u), max work/round = %u op\n",
              n, spread_rounds, util::ceil_log2(n),
              spread_net.meter().max_work_per_round());
  return 0;
}
