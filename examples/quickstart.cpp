// Quickstart: solve a minimum enclosing disk with the Low-Load Clarkson
// Algorithm on a simulated gossip network, end to end.
//
//   $ quickstart [--n=1024] [--seed=7]
//
// This walks through the library's three moving parts:
//   1. an LP-type problem object (problems::MinDisk),
//   2. a workload (here: random points; the element set H),
//   3. a distributed engine (core::run_low_load) that simulates n gossip
//      nodes and reports rounds / communication work, plus the Algorithm 3
//      termination protocol so every node learns the answer.
#include <cstdio>

#include "core/low_load.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"
#include "workloads/disk_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1024));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  // 1. The problem: smallest enclosing disk, combinatorial dimension 3.
  problems::MinDisk problem;

  // 2. The workload: n points (the paper's triple-disk dataset), one per
  //    gossip node on average.
  util::Rng rng(seed);
  const auto points = workloads::generate_disk_dataset(
      workloads::DiskDataset::kTripleDisk, n, rng);

  // 3. The engine: run Algorithm 2/4 over n simulated gossip nodes with
  //    the termination protocol enabled.
  core::LowLoadConfig cfg;
  cfg.seed = seed;
  cfg.run_termination = true;
  const auto res = core::run_low_load(problem, points, n, cfg);

  std::printf("minimum enclosing disk of %zu points on %zu gossip nodes\n",
              points.size(), n);
  std::printf("  center = (%.6f, %.6f), radius = %.6f\n",
              res.solution.disk.center.x, res.solution.disk.center.y,
              res.solution.disk.radius);
  std::printf("  optimal basis: %zu points\n", res.solution.basis.size());
  std::printf("  rounds until first node held the optimum: %zu\n",
              res.stats.rounds_to_first);
  std::printf("  rounds until every node output it:        %zu\n",
              res.stats.rounds_to_all_output);
  std::printf("  max communication work per node per round: %u ops\n",
              res.stats.max_work_per_round);
  std::printf("  all node outputs correct: %s\n",
              res.stats.all_outputs_correct ? "yes" : "NO");

  // Cross-check against the sequential oracle.
  const auto oracle = problem.solve(points);
  std::printf("  matches sequential Welzl oracle: %s\n",
              problem.same_value(res.solution, oracle) ? "yes" : "NO");
  return res.stats.reached_optimum && res.stats.all_outputs_correct ? 0 : 1;
}
