// Distributed linear programming: n agents each hold private linear
// constraints (resource limits); the network must agree on the plan of
// minimum cost satisfying everyone — fixed-dimension LP as an LP-type
// problem, solved with both gossip engines.
//
// Also demonstrates the polytope-distance problem from the paper's
// abstract on the same infrastructure.
//
//   $ lp_gossip [--agents=2048] [--constraints=8192] [--seed=11]
#include <cstdio>

#include "core/high_load.hpp"
#include "core/low_load.hpp"
#include "problems/linear_program2d.hpp"
#include "problems/polytope_distance.hpp"
#include "util/cli.hpp"
#include "workloads/lp_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto agents = static_cast<std::size_t>(cli.get_int("agents", 2048));
  const auto m = static_cast<std::size_t>(cli.get_int("constraints", 8192));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));

  util::Rng rng(seed);
  const auto inst = workloads::generate_lp_instance(m, rng);
  problems::LinearProgram2D problem(inst.objective);

  std::printf("distributed LP: %zu constraints over %zu agents, "
              "minimize (%.0f, %.0f) . x\n\n",
              m, agents, inst.objective.x, inst.objective.y);

  // |H| = 4n: comfortably in the high-load regime — use Algorithm 5.
  core::HighLoadConfig hcfg;
  hcfg.seed = seed;
  const auto high = core::run_high_load(problem, inst.constraints, agents, hcfg);
  std::printf("High-Load Clarkson: value %.6f at (%.6f, %.6f) in %zu rounds "
              "(planted %.6f) [%s]\n",
              high.solution.value.objective, high.solution.value.point.x,
              high.solution.value.point.y, high.stats.rounds_to_first,
              inst.optimal_value,
              std::abs(high.solution.value.objective - inst.optimal_value) <
                      1e-6
                  ? "correct"
                  : "WRONG");

  // The same constraints through the Low-Load engine (it tolerates
  // |H| = O(n log n); here |H|/n = 4).
  core::LowLoadConfig lcfg;
  lcfg.seed = seed;
  const auto low = core::run_low_load(problem, inst.constraints, agents, lcfg);
  std::printf("Low-Load Clarkson:  value %.6f in %zu rounds, max work/round "
              "%u ops [%s]\n\n",
              low.solution.value.objective, low.stats.rounds_to_first,
              low.stats.max_work_per_round,
              std::abs(low.solution.value.objective - inst.optimal_value) <
                      1e-6
                  ? "correct"
                  : "WRONG");

  // Polytope distance (paper abstract): how far is the fleet's reachable
  // set from the depot at the origin?
  problems::PolytopeDistance pd;
  std::vector<geom::Vec2> cloud;
  for (std::size_t i = 0; i < agents; ++i) {
    cloud.push_back({rng.uniform(2.0, 9.0), rng.uniform(-5.0, 5.0)});
  }
  const auto pd_oracle = pd.solve(cloud);
  core::LowLoadConfig pcfg;
  pcfg.seed = seed + 1;
  const auto pres = core::run_low_load(pd, cloud, agents, pcfg);
  std::printf("polytope distance: %.6f (oracle %.6f) in %zu rounds [%s]\n",
              pres.solution.distance, pd_oracle.distance,
              pres.stats.rounds_to_first,
              pd.same_value(pres.solution, pd_oracle) ? "correct" : "WRONG");

  const bool ok =
      std::abs(high.solution.value.objective - inst.optimal_value) < 1e-6 &&
      std::abs(low.solution.value.objective - inst.optimal_value) < 1e-6 &&
      pd.same_value(pres.solution, pd_oracle);
  return ok ? 0 : 1;
}
