// Facility cover: choose a minimum number of depot locations so that every
// delivery zone contains at least one depot — a hitting set problem solved
// with the paper's distributed Algorithm 6, plus the set-cover view via
// the Section 1.4 duality.
//
// The zone collection is known to every node (it is the published service
// map); candidate depot sites are scattered across the gossip network.
//
//   $ facility_cover [--sites=2048] [--zones=96] [--depots=4] [--seed=5]
#include <cstdio>

#include "core/hitting_set.hpp"
#include "problems/set_cover.hpp"
#include "util/cli.hpp"
#include "workloads/hs_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto sites = static_cast<std::size_t>(cli.get_int("sites", 2048));
  const auto zones = static_cast<std::size_t>(cli.get_int("zones", 96));
  const auto depots = static_cast<std::size_t>(cli.get_int("depots", 4));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));

  util::Rng rng(seed);
  const auto inst =
      workloads::generate_planted_hitting_set(sites, zones, depots, 8, rng);
  problems::HittingSetProblem problem(inst.system);

  std::printf("facility cover: %zu candidate sites, %zu zones, optimal "
              "needs %zu depots\n\n", sites, zones, depots);

  // Distributed Algorithm 6 — without telling it the optimum size (the
  // engine runs the paper's doubling search on d).
  core::HittingSetConfig cfg;
  cfg.seed = seed;
  cfg.hitting_set_size = 0;
  const auto res = core::run_hitting_set(problem, sites, cfg);
  std::printf("distributed hitting set (Algorithm 6, doubling search):\n");
  std::printf("  chose %zu depots in %zu rounds (d doubled up to %zu, "
              "sample size r = %zu)\n",
              res.hitting_set.size(), res.stats.rounds_to_first, res.d_used,
              res.sample_size);
  std::printf("  every zone covered: %s\n", res.valid ? "yes" : "NO");
  std::printf("  max work per node per round: %u ops\n\n",
              res.stats.max_work_per_round);

  // Central greedy baseline for quality context.
  const auto greedy = problem.greedy_hitting_set();
  std::printf("central greedy baseline: %zu depots\n", greedy.size());
  std::printf("Theorem 5 size bound O(d log(ds)) = %zu\n\n",
              core::hitting_set_sample_size(depots, zones));

  // The same engine solves set cover through the duality of Section 1.4.
  // The dual universe is the primal's *set* collection, so the instance
  // needs many candidate plans for the O(d log(ds)) bound to bite.
  const std::size_t households = 256;
  const std::size_t plans = 4096;
  const auto cover_inst =
      workloads::generate_planted_set_cover(households, plans, depots, rng);
  const auto dual = problems::dual_of_set_cover(*cover_inst.instance);
  problems::HittingSetProblem dual_problem(dual);
  core::HittingSetConfig sc_cfg;
  sc_cfg.seed = seed + 1;
  sc_cfg.hitting_set_size = depots;
  const auto sc = core::run_hitting_set(dual_problem, plans, sc_cfg);
  std::printf("set cover via duality: picked %zu of %zu service plans "
              "covering all %zu households in %zu rounds [%s]\n",
              sc.hitting_set.size(), plans, households,
              sc.stats.rounds_to_first,
              sc.valid && problems::is_set_cover(*cover_inst.instance,
                                                 sc.hitting_set)
                  ? "valid"
                  : "INVALID");
  std::printf("  (optimal cover: %zu plans; Theorem 5 bound: %zu)\n",
              static_cast<std::size_t>(depots),
              core::hitting_set_sample_size(depots, dual->set_count()));
  return res.valid && sc.valid ? 0 : 1;
}
