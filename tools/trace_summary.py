#!/usr/bin/env python3
"""Validate and summarize a Chrome trace_event JSON file produced by
obs::write_chrome_trace().

Validation (always on):

  * the file parses as JSON with a ``traceEvents`` list;
  * every event carries name / ph / pid / tid / ts, with ``ph`` one of
    ``X`` (complete span, requires ``dur >= 0``) or ``i`` (instant);
  * timestamps are monotone non-decreasing in file order (the writer
    sorts by start time);
  * per tid, ``X`` spans nest properly: sweeping events in start order,
    a span must either start after every open span on that thread ends,
    or lie entirely inside the innermost open one — overlap without
    containment means the writer (or a torn ring slot) emitted garbage.

Summary: per-name event counts, span duration totals, and the trace's
wall extent.  --require NAME asserts at least one event whose name
contains NAME (substring match), so CI can pin "this faulted run's trace
really shows round, frame, and recovery activity".

Usage: trace_summary.py TRACE.json [--require NAME]... [--quiet]
Exit status: 0 valid (and all --require present), 1 invalid, 2 usage.
"""

import argparse
import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"[trace-summary] FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace", help="Chrome trace_event JSON file")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME",
                    help="assert >=1 event whose name contains NAME "
                         "(repeatable)")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the per-name summary table")
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("no traceEvents list")

    prev_ts = None
    # Per-tid stack of (start, end) open spans for the nesting check.
    open_spans = defaultdict(list)
    counts = defaultdict(int)
    span_total_us = defaultdict(float)
    min_ts = None
    max_end = None

    for k, e in enumerate(events):
        for field in ("name", "ph", "pid", "tid", "ts"):
            if field not in e:
                fail(f"event {k} missing field {field!r}: {e}")
        name, ph, ts = e["name"], e["ph"], float(e["ts"])
        if ph not in ("X", "i"):
            fail(f"event {k} ({name!r}) has unsupported phase {ph!r}")
        if prev_ts is not None and ts < prev_ts:
            fail(f"event {k} ({name!r}) breaks timestamp monotonicity: "
                 f"{ts} < {prev_ts}")
        prev_ts = ts

        if ph == "X":
            if "dur" not in e:
                fail(f"complete event {k} ({name!r}) missing dur")
            dur = float(e["dur"])
            if dur < 0:
                fail(f"complete event {k} ({name!r}) has negative dur {dur}")
            end = ts + dur
            stack = open_spans[e["tid"]]
            # Pop spans that ended before this one starts.
            while stack and stack[-1][1] <= ts:
                stack.pop()
            if stack and end > stack[-1][1]:
                fail(f"span {k} ({name!r}, tid {e['tid']}) overlaps the "
                     f"enclosing span without nesting: [{ts}, {end}] vs "
                     f"[{stack[-1][0]}, {stack[-1][1]}]")
            stack.append((ts, end))
            span_total_us[name] += dur
        else:
            end = ts
        counts[name] += 1
        min_ts = ts if min_ts is None else min(min_ts, ts)
        max_end = end if max_end is None else max(max_end, end)

    if not args.quiet:
        print(f"[trace-summary] {args.trace}: {len(events)} events, "
              f"{len(counts)} names, "
              f"extent {0.0 if min_ts is None else (max_end - min_ts):.1f} us")
        for name in sorted(counts):
            total = span_total_us.get(name)
            extra = f"  span_total={total:.1f}us" if total is not None else ""
            print(f"  {counts[name]:7d}  {name}{extra}")

    missing = [r for r in args.require
               if not any(r in name for name in counts)]
    if missing:
        fail(f"required event name(s) absent from trace: {missing} "
             f"(present: {sorted(counts)})")

    print(f"[trace-summary] OK: {len(events)} events"
          + (f", required names present: {args.require}" if args.require
             else ""))


if __name__ == "__main__":
    main()
