#!/usr/bin/env python3
"""Bench-trend gate: compare freshly produced BENCH_*.json artifacts against
the snapshots committed at the repo root and fail on a >MAX_RATIO wall-time
(or throughput) regression.

Checked (see docs/BENCHMARKS.md for the schemas):

  * BENCH_micro_substrates.json — every ``*_speedup`` ratio must stay within
    MAX_RATIO of the committed value (ratios are same-machine measurements,
    so they transfer across hardware), and ``deliver_n_scaling_cost_ratio``
    must not grow past MAX_RATIO x the committed value.
  * BENCH_fig3_high_load.json — per-point ``wall_per_rep`` for every
    (dataset, i) present in both files must not exceed MAX_RATIO x the
    committed value.  Points faster than MIN_WALL seconds per rep are
    skipped as noise.
  * BENCH_shard_scaling.json — per-(series, shards) ``wall_per_rep`` under
    the same rule (series ``serial`` / ``inproc`` / ``pipe`` / ``socket``).
  * BENCH_ablation_faults.json — ``all_correct`` must be 1 for every row of
    both fault series (an invariant, not a trend), and per-scenario mean
    round counts must not grow past MAX_RATIO x the committed values when
    the fresh run used the same ``i`` and ``reps``.  Snapshots committed
    before the scenario layer carry no ``correlated`` series and are
    warn-skipped for that comparison.
  * BENCH_dynamic_inputs.json — ``speedup`` (incremental re-solve over
    from-scratch) must stay within MAX_RATIO of the committed value and
    must exceed 1x outright.
  * BENCH_large_n.json — per-(series, i) ``wall_per_rep`` for the
    ``low_load`` / ``high_load`` series under the MAX_RATIO x MIN_WALL
    rule, plus the peak-RSS telemetry the obs subsystem added: top-level
    ``peak_rss_bytes`` (the process VmHWM after the sweep) must not grow
    past MAX_RATIO x the committed value.  RSS below MIN_RSS_BYTES is
    allocator noise and skipped; snapshots committed before the obs
    subsystem carry no ``peak_rss_bytes`` and are warn-skipped for that
    comparison.
  * BENCH_service_qps.json — ``steady_qps`` and ``small_direct_speedup``
    must stay within MAX_RATIO of the committed values; the open-loop
    delivery fraction (``achieved_qps`` / ``target_qps``, which transfers
    across differing --qps smoke flags) under the same rule; ``p99_us``
    must not grow past MAX_RATIO x committed (gated only when the committed
    p99 is >= 1 ms, the latency analogue of MIN_WALL); and
    ``steady_state_allocs`` must not exceed the committed count at all —
    the zero-allocation serve path is an invariant, not a trend.

Absolute wall comparisons assume comparable hardware between the machine
that produced the committed snapshot and the machine running the gate;
MAX_RATIO (default 2.0, override with --max-ratio or the
LPT_BENCH_TREND_MAX_RATIO env var) is deliberately generous to absorb
runner variance while still catching real order-of-magnitude regressions.

A benchmark whose committed snapshot is missing (or unparseable) is
SKIPPED with a warning rather than failing the gate: a PR that introduces
a new bench would otherwise face a chicken-and-egg failure — the fresh
artifact exists in the working tree before any snapshot can be committed.
A missing *fresh* artifact fails for the required benches (the CI smoke
steps are expected to have produced them) but only warns for optional
ones.  Required-ness wins over the baseline skip: a required bench that
produced no fresh artifact exits 2 even when the committed snapshot is
also missing — otherwise a bench that silently stopped running (a renamed
binary, a dropped CI step) would warn-skip forever instead of failing.

Usage: check_bench_trend.py --baseline <repo root> --fresh <build dir>
Exit status: 0 ok, 1 regression, 2 missing required inputs.
"""

import argparse
import json
import os
import sys

MIN_WALL = 1e-2  # seconds per rep below which points are too noisy to gate
# (millisecond points on shared CI runners flap well past 2x from scheduler
# noise alone; 10 ms keeps only the points where a 2x move means something)

FIG3_SERIES = ["duo-disk", "triple-disk", "triangle", "hull"]


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as err:
        print(f"[bench-trend] WARNING: {path} is not valid JSON ({err}) — "
              "treating as missing")
        return None


def check_micro(baseline, fresh, max_ratio, failures, checked):
    for key, base_value in baseline.items():
        if not isinstance(base_value, (int, float)) or base_value <= 0:
            continue
        if key.endswith("speedup") or "_speedup_" in key:
            fresh_value = fresh.get(key)
            if not isinstance(fresh_value, (int, float)):
                continue
            checked.append(key)
            if fresh_value < base_value / max_ratio:
                failures.append(
                    f"micro_substrates {key}: {fresh_value:.2f}x vs committed "
                    f"{base_value:.2f}x (allowed >= {base_value / max_ratio:.2f}x)"
                )
    key = "deliver_n_scaling_cost_ratio"
    base_value, fresh_value = baseline.get(key), fresh.get(key)
    if isinstance(base_value, (int, float)) and isinstance(fresh_value, (int, float)):
        checked.append(key)
        if fresh_value > base_value * max_ratio:
            failures.append(
                f"micro_substrates {key}: {fresh_value:.2f} vs committed "
                f"{base_value:.2f} (allowed <= {base_value * max_ratio:.2f})"
            )


def check_fig3(baseline, fresh, max_ratio, failures, checked):
    for series in FIG3_SERIES:
        base_rows = {row["i"]: row for row in baseline.get(series, [])}
        for row in fresh.get(series, []):
            base_row = base_rows.get(row.get("i"))
            if base_row is None:
                continue
            base_wall = base_row.get("wall_per_rep")
            fresh_wall = row.get("wall_per_rep")
            if not isinstance(base_wall, (int, float)) or not isinstance(
                fresh_wall, (int, float)
            ):
                continue  # pre-PR-4 snapshot rows carry no per-point wall
            if base_wall < MIN_WALL:
                continue
            checked.append(f"fig3 {series} i={row['i']}")
            if fresh_wall > base_wall * max_ratio:
                failures.append(
                    f"fig3_high_load {series} i={row['i']}: "
                    f"{fresh_wall * 1e3:.1f} ms/rep vs committed "
                    f"{base_wall * 1e3:.1f} ms/rep "
                    f"(allowed <= {base_wall * max_ratio * 1e3:.1f})"
                )


def check_shard_scaling(baseline, fresh, max_ratio, failures, checked):
    # Snapshots committed before the socket transport (PR 8) have no
    # "socket" series — warn-skip so old baselines keep passing (the same
    # chicken-and-egg rule as a brand-new bench: the comparison starts
    # once a snapshot with the series is committed).
    if fresh.get("socket") and not baseline.get("socket"):
        print("[bench-trend] WARNING: committed BENCH_shard_scaling.json "
              "has no 'socket' series (pre-socket snapshot) — skipping "
              "the socket-transport comparison")
    for series in ["serial", "inproc", "pipe", "socket"]:
        base_rows = {(row.get("i"), row.get("shards", 0)): row
                     for row in baseline.get(series, [])}
        for row in fresh.get(series, []):
            base_row = base_rows.get((row.get("i"), row.get("shards", 0)))
            if base_row is None:
                continue
            base_wall = base_row.get("wall_per_rep")
            fresh_wall = row.get("wall_per_rep")
            if not isinstance(base_wall, (int, float)) or not isinstance(
                fresh_wall, (int, float)
            ):
                continue
            if base_wall < MIN_WALL:
                continue
            point = f"shard_scaling {series} shards={row.get('shards', 0)}"
            checked.append(point)
            if fresh_wall > base_wall * max_ratio:
                failures.append(
                    f"{point}: {fresh_wall * 1e3:.1f} ms/rep vs committed "
                    f"{base_wall * 1e3:.1f} ms/rep "
                    f"(allowed <= {base_wall * max_ratio * 1e3:.1f})"
                )

    # The kill-recovery fault column (PR 7): ``recovery_wall`` is the
    # wall_per_rep of a run that loses (and replaces) a worker mid-round.
    # Snapshots committed before the fault column simply have no "fault"
    # series — warn-skip so old baselines keep passing.
    if fresh.get("fault") and not baseline.get("fault"):
        print("[bench-trend] WARNING: committed BENCH_shard_scaling.json has "
              "no 'fault' series (pre-recovery snapshot) — skipping the "
              "kill-recovery comparison")
    base_rows = {
        (row.get("i"), row.get("shards", 0), row.get("transport", 0)): row
        for row in baseline.get("fault", [])
    }
    for row in fresh.get("fault", []):
        base_row = base_rows.get(
            (row.get("i"), row.get("shards", 0), row.get("transport", 0)))
        if base_row is None:
            continue
        base_wall = base_row.get("recovery_wall")
        fresh_wall = row.get("recovery_wall")
        if not isinstance(base_wall, (int, float)) or not isinstance(
            fresh_wall, (int, float)
        ):
            continue
        if base_wall < MIN_WALL:
            continue
        point = (f"shard_scaling fault shards={row.get('shards', 0)} "
                 f"transport={row.get('transport', 0)}")
        checked.append(point)
        if fresh_wall > base_wall * max_ratio:
            failures.append(
                f"{point}: recovery {fresh_wall * 1e3:.1f} ms/rep vs "
                f"committed {base_wall * 1e3:.1f} ms/rep "
                f"(allowed <= {base_wall * max_ratio * 1e3:.1f})"
            )


def check_ablation_faults(baseline, fresh, max_ratio, failures, checked):
    # Correctness is an invariant: every run of every fault scenario must
    # have found the verified optimum, no ratio slack, no baseline needed.
    for series in ["scenarios", "correlated"]:
        for row in fresh.get(series, []):
            scenario = row.get("scenario")
            point = f"ablation_faults {series}[{scenario}] all_correct"
            checked.append(point)
            if row.get("all_correct") != 1:
                failures.append(
                    f"{point}: a faulted run produced a wrong optimum"
                )

    # Round counts only transfer when the fresh run used the committed
    # instance size and repetition count.
    if (baseline.get("i") != fresh.get("i")
            or baseline.get("reps") != fresh.get("reps")):
        print("[bench-trend] WARNING: BENCH_ablation_faults.json fresh run "
              f"used i={fresh.get('i')} reps={fresh.get('reps')} vs committed "
              f"i={baseline.get('i')} reps={baseline.get('reps')} — skipping "
              "the round-count comparison")
        return
    # Snapshots committed before the scenario layer have no "correlated"
    # series — warn-skip that series (same chicken-and-egg rule as a new
    # bench) while still gating the i.i.d. "scenarios" series.
    if fresh.get("correlated") and not baseline.get("correlated"):
        print("[bench-trend] WARNING: committed BENCH_ablation_faults.json "
              "has no 'correlated' series (pre-scenario snapshot) — skipping "
              "the correlated-fault comparison")
    for series in ["scenarios", "correlated"]:
        base_rows = {row.get("scenario"): row
                     for row in baseline.get(series, [])}
        for row in fresh.get(series, []):
            base_row = base_rows.get(row.get("scenario"))
            if base_row is None:
                continue
            for key in ["low_mean_rounds", "high_mean_rounds"]:
                base_value, fresh_value = base_row.get(key), row.get(key)
                if not isinstance(base_value, (int, float)) or base_value <= 0:
                    continue
                if not isinstance(fresh_value, (int, float)):
                    continue
                point = (f"ablation_faults {series}[{row.get('scenario')}] "
                         f"{key}")
                checked.append(point)
                if fresh_value > base_value * max_ratio:
                    failures.append(
                        f"{point}: {fresh_value:.1f} rounds vs committed "
                        f"{base_value:.1f} "
                        f"(allowed <= {base_value * max_ratio:.1f})"
                    )


def check_dynamic_inputs(baseline, fresh, max_ratio, failures, checked):
    fresh_speedup = fresh.get("speedup")
    if isinstance(fresh_speedup, (int, float)):
        # The incremental path beating from-scratch is an invariant of the
        # dynamic-input scenario, gated against 1x regardless of baseline.
        checked.append("dynamic_inputs speedup > 1x")
        if fresh_speedup <= 1.0:
            failures.append(
                f"dynamic_inputs speedup: {fresh_speedup:.2f}x — the "
                "incremental re-solve no longer beats from-scratch"
            )
    base_speedup = baseline.get("speedup")
    if (isinstance(base_speedup, (int, float)) and base_speedup > 0
            and isinstance(fresh_speedup, (int, float))):
        checked.append("dynamic_inputs speedup")
        if fresh_speedup < base_speedup / max_ratio:
            failures.append(
                f"dynamic_inputs speedup: {fresh_speedup:.2f}x vs committed "
                f"{base_speedup:.2f}x "
                f"(allowed >= {base_speedup / max_ratio:.2f}x)"
            )


MIN_RSS_BYTES = 32 * 1024 * 1024  # peak RSS below 32 MiB is dominated by
# allocator / runtime baseline, not the workload — too noisy to gate


def check_large_n(baseline, fresh, max_ratio, failures, checked):
    for series in ["low_load", "high_load"]:
        base_rows = {row.get("i"): row for row in baseline.get(series, [])}
        for row in fresh.get(series, []):
            base_row = base_rows.get(row.get("i"))
            if base_row is None:
                continue
            base_wall = base_row.get("wall_per_rep")
            fresh_wall = row.get("wall_per_rep")
            if not isinstance(base_wall, (int, float)) or not isinstance(
                fresh_wall, (int, float)
            ):
                continue
            if base_wall < MIN_WALL:
                continue
            point = f"large_n {series} i={row.get('i')}"
            checked.append(point)
            if fresh_wall > base_wall * max_ratio:
                failures.append(
                    f"{point}: {fresh_wall * 1e3:.1f} ms/rep vs committed "
                    f"{base_wall * 1e3:.1f} ms/rep "
                    f"(allowed <= {base_wall * max_ratio * 1e3:.1f})"
                )

    # Memory telemetry (obs subsystem): the sweep's peak RSS must not blow
    # up.  Snapshots committed before the obs subsystem carry no
    # peak_rss_bytes — warn-skip, same chicken-and-egg rule as a new bench.
    base_rss, fresh_rss = (baseline.get("peak_rss_bytes"),
                           fresh.get("peak_rss_bytes"))
    if isinstance(fresh_rss, (int, float)) and not isinstance(
        base_rss, (int, float)
    ):
        print("[bench-trend] WARNING: committed BENCH_large_n.json has no "
              "peak_rss_bytes (pre-obs snapshot) — skipping the peak-RSS "
              "comparison")
    elif (isinstance(base_rss, (int, float)) and base_rss >= MIN_RSS_BYTES
            and isinstance(fresh_rss, (int, float)) and fresh_rss > 0):
        checked.append("large_n peak_rss_bytes")
        if fresh_rss > base_rss * max_ratio:
            failures.append(
                f"large_n peak_rss_bytes: {fresh_rss / 2**20:.1f} MiB vs "
                f"committed {base_rss / 2**20:.1f} MiB "
                f"(allowed <= {base_rss * max_ratio / 2**20:.1f})"
            )


MIN_LATENCY_US = 1e3  # p99 below 1 ms is scheduler noise on shared runners


def check_service_qps(baseline, fresh, max_ratio, failures, checked):
    # Throughput-like scalars: lower fresh value is a regression.
    for key in ["steady_qps", "small_direct_speedup"]:
        base_value, fresh_value = baseline.get(key), fresh.get(key)
        if not isinstance(base_value, (int, float)) or base_value <= 0:
            continue
        if not isinstance(fresh_value, (int, float)):
            continue
        checked.append(f"service_qps {key}")
        if fresh_value < base_value / max_ratio:
            failures.append(
                f"service_qps {key}: {fresh_value:.2f} vs committed "
                f"{base_value:.2f} (allowed >= {base_value / max_ratio:.2f})"
            )

    # Open-loop delivery fraction: achieved/target transfers across smoke
    # runs with different --qps flags, raw achieved_qps does not.
    def fraction(doc):
        achieved, target = doc.get("achieved_qps"), doc.get("target_qps")
        if not isinstance(achieved, (int, float)):
            return None
        if not isinstance(target, (int, float)) or target <= 0:
            return None
        return achieved / target

    base_frac, fresh_frac = fraction(baseline), fraction(fresh)
    if base_frac is not None and base_frac > 0 and fresh_frac is not None:
        checked.append("service_qps open_loop_delivery")
        if fresh_frac < base_frac / max_ratio:
            failures.append(
                f"service_qps open-loop delivery: {fresh_frac:.2f} of target "
                f"vs committed {base_frac:.2f} "
                f"(allowed >= {base_frac / max_ratio:.2f})"
            )

    # Tail latency: higher fresh value is a regression (only gated once the
    # committed tail is big enough to mean something).
    base_p99, fresh_p99 = baseline.get("p99_us"), fresh.get("p99_us")
    if (isinstance(base_p99, (int, float)) and base_p99 >= MIN_LATENCY_US
            and isinstance(fresh_p99, (int, float))):
        checked.append("service_qps p99_us")
        if fresh_p99 > base_p99 * max_ratio:
            failures.append(
                f"service_qps p99_us: {fresh_p99:.0f} us vs committed "
                f"{base_p99:.0f} us (allowed <= {base_p99 * max_ratio:.0f})"
            )

    # The zero-allocation serve path is an invariant: any count above the
    # committed snapshot fails outright, no ratio slack.
    base_allocs, fresh_allocs = (baseline.get("steady_state_allocs"),
                                 fresh.get("steady_state_allocs"))
    if isinstance(base_allocs, (int, float)) and isinstance(
        fresh_allocs, (int, float)
    ):
        checked.append("service_qps steady_state_allocs")
        if fresh_allocs > base_allocs:
            failures.append(
                f"service_qps steady_state_allocs: {fresh_allocs:.0f} vs "
                f"committed {base_allocs:.0f} (the serve path must stay "
                "allocation-free)"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("--fresh", required=True,
                        help="directory holding the freshly produced BENCH_*.json")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=float(os.environ.get("LPT_BENCH_TREND_MAX_RATIO", "2.0")),
    )
    args = parser.parse_args()

    failures, checked = [], []
    any_input = False
    for name, checker, required in [
        ("micro_substrates", check_micro, True),
        ("fig3_high_load", check_fig3, True),
        ("shard_scaling", check_shard_scaling, False),
        ("ablation_faults", check_ablation_faults, True),
        ("dynamic_inputs", check_dynamic_inputs, True),
        ("large_n", check_large_n, True),
        ("service_qps", check_service_qps, True),
    ]:
        baseline = load(os.path.join(args.baseline, f"BENCH_{name}.json"))
        fresh = load(os.path.join(args.fresh, f"BENCH_{name}.json"))
        if fresh is None and required:
            # Required-ness wins over the baseline skip below: a required
            # bench that produced no fresh artifact means the CI smoke step
            # did not run it, and that must fail even when no snapshot is
            # committed yet.
            print(f"[bench-trend] fresh BENCH_{name}.json missing in "
                  f"{args.fresh} — did the bench run?")
            return 2
        if baseline is None:
            # New-bench chicken-and-egg: a fresh artifact in the working
            # tree with no committed snapshot yet must not fail the gate.
            print(f"[bench-trend] WARNING: no committed BENCH_{name}.json — "
                  "skipping (commit a snapshot to enable this gate)")
            continue
        if fresh is None:
            print(f"[bench-trend] WARNING: fresh BENCH_{name}.json missing "
                  f"in {args.fresh} — skipping optional bench")
            continue
        any_input = True
        checker(baseline, fresh, args.max_ratio, failures, checked)

    print(f"[bench-trend] {len(checked)} comparison(s), "
          f"max allowed regression {args.max_ratio:.1f}x")
    if not any_input:
        print("[bench-trend] nothing to compare")
        return 2
    if failures:
        for failure in failures:
            print(f"[bench-trend] REGRESSION: {failure}")
        return 1
    print("[bench-trend] ok — no wall-time regression past the gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
