// Integration tests for the distributed Hitting Set Algorithm (Algorithm 6,
// Theorem 5) and the set-cover reduction.
#include <gtest/gtest.h>

#include "core/hitting_set.hpp"
#include "problems/set_cover.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "workloads/hs_data.hpp"

namespace lpt {
namespace {

using core::HittingSetConfig;
using core::run_hitting_set;
using problems::HittingSetProblem;

class HittingSetPlanted : public ::testing::TestWithParam<int> {};

TEST_P(HittingSetPlanted, FindsValidHittingSetOfBoundedSize) {
  util::Rng rng(GetParam());
  const std::size_t d = 1 + rng.below(4);
  const std::size_t n = 512;
  const std::size_t s = 64;
  const auto inst = workloads::generate_planted_hitting_set(n, s, d, 6, rng);
  HittingSetProblem p(inst.system);
  HittingSetConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(GetParam()) * 13 + 1;
  cfg.hitting_set_size = d;
  const auto res = run_hitting_set(p, n, cfg);
  ASSERT_TRUE(res.valid) << "d=" << d;
  // Theorem 5: size O(d log(ds)); the algorithm returns at most r elements.
  EXPECT_LE(res.hitting_set.size(),
            core::hitting_set_sample_size(d, s));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HittingSetPlanted, ::testing::Range(1, 11));

TEST(HittingSet, RoundsScaleLogarithmically) {
  util::Rng rng(50);
  const std::size_t n = 2048;
  const auto inst = workloads::generate_planted_hitting_set(n, 64, 3, 6, rng);
  HittingSetProblem p(inst.system);
  HittingSetConfig cfg;
  cfg.seed = 3;
  cfg.hitting_set_size = 3;
  const auto res = run_hitting_set(p, n, cfg);
  ASSERT_TRUE(res.valid);
  EXPECT_LE(res.stats.rounds_to_first,
            30 * 3 * (util::ceil_log2(n) + 2));
}

TEST(HittingSet, DoublingSearchFindsDWithoutBeingTold) {
  util::Rng rng(51);
  const std::size_t n = 512;
  const auto inst = workloads::generate_planted_hitting_set(n, 48, 4, 5, rng);
  HittingSetProblem p(inst.system);
  HittingSetConfig cfg;
  cfg.seed = 5;
  cfg.hitting_set_size = 0;  // unknown d: Section 1.4's doubling search
  const auto res = run_hitting_set(p, n, cfg);
  ASSERT_TRUE(res.valid);
  EXPECT_GE(res.d_used, 1u);
  EXPECT_LE(res.d_used, 8u);  // found within one doubling of the true d=4
}

TEST(HittingSet, WorkPerRoundMatchesTheorem5) {
  util::Rng rng(52);
  const std::size_t n = 1024;
  const std::size_t s = 64;
  const std::size_t d = 2;
  const auto inst = workloads::generate_planted_hitting_set(n, s, d, 6, rng);
  HittingSetProblem p(inst.system);
  HittingSetConfig cfg;
  cfg.seed = 7;
  cfg.hitting_set_size = d;
  const auto res = run_hitting_set(p, n, cfg);
  ASSERT_TRUE(res.valid);
  // Theorem 5: O(d log(ds) + log n) per round; sampler pulls dominate.
  const std::size_t r = core::hitting_set_sample_size(d, s);
  const std::size_t bound = 4 * (r + util::ceil_log2(n) + 1) + 64;
  EXPECT_LE(res.stats.max_work_per_round, bound);
}

TEST(HittingSet, LoadStaysBounded) {
  // Lemma 20 + the cap argument: |X(V)| = O(n log^2 n) always.
  util::Rng rng(53);
  const std::size_t n = 1024;
  const auto inst = workloads::generate_planted_hitting_set(n, 48, 3, 6, rng);
  HittingSetProblem p(inst.system);
  HittingSetConfig cfg;
  cfg.seed = 9;
  cfg.hitting_set_size = 3;
  const auto res = run_hitting_set(p, n, cfg);
  ASSERT_TRUE(res.valid);
  const std::size_t log_n = util::ceil_log2(n) + 1;
  EXPECT_LE(res.stats.max_total_elements, 8 * n * log_n);
}

TEST(HittingSet, IntervalRangeSpace) {
  util::Rng rng(54);
  const std::size_t n = 512;
  const auto sys = workloads::generate_interval_ranges(n, 40, 16, 128, rng);
  HittingSetProblem p(sys);
  const auto greedy = p.greedy_hitting_set();
  HittingSetConfig cfg;
  cfg.seed = 11;
  cfg.hitting_set_size = greedy.size();  // upper bound on d
  const auto res = run_hitting_set(p, n, cfg);
  ASSERT_TRUE(res.valid);
  EXPECT_TRUE(p.is_hitting_set(res.hitting_set));
}

TEST(HittingSet, SingletonSets) {
  // Every set has one element: the only hitting set is all of them.
  auto sys = std::make_shared<problems::SetSystem>(
      8, std::vector<std::vector<std::uint32_t>>{{0}, {3}, {5}});
  HittingSetProblem p(sys);
  HittingSetConfig cfg;
  cfg.seed = 13;
  cfg.hitting_set_size = 3;
  const auto res = run_hitting_set(p, 16, cfg);
  ASSERT_TRUE(res.valid);
  for (std::uint32_t e : {0u, 3u, 5u}) {
    EXPECT_NE(std::find(res.hitting_set.begin(), res.hitting_set.end(), e),
              res.hitting_set.end());
  }
}

TEST(HittingSet, DeterministicGivenSeed) {
  util::Rng rng(55);
  const auto inst = workloads::generate_planted_hitting_set(256, 32, 2, 5, rng);
  HittingSetProblem p(inst.system);
  HittingSetConfig cfg;
  cfg.seed = 15;
  cfg.hitting_set_size = 2;
  const auto a = run_hitting_set(p, 256, cfg);
  const auto b = run_hitting_set(p, 256, cfg);
  EXPECT_EQ(a.hitting_set, b.hitting_set);
  EXPECT_EQ(a.stats.rounds_to_first, b.stats.rounds_to_first);
}

TEST(SetCoverViaDual, DistributedCoverIsValid) {
  util::Rng rng(56);
  const std::size_t universe = 256;
  const std::size_t sets = 32;
  const std::size_t d = 3;
  const auto inst =
      workloads::generate_planted_set_cover(universe, sets, d, rng);
  const auto dual = problems::dual_of_set_cover(*inst.instance);
  HittingSetProblem p(dual);
  HittingSetConfig cfg;
  cfg.seed = 17;
  cfg.hitting_set_size = d;
  // Dual universe = the primal's set indices: n = sets.
  const auto res = run_hitting_set(p, sets, cfg);
  ASSERT_TRUE(res.valid);
  EXPECT_TRUE(problems::is_set_cover(*inst.instance, res.hitting_set));
  EXPECT_LE(res.hitting_set.size(),
            core::hitting_set_sample_size(d, dual->set_count()));
}

}  // namespace
}  // namespace lpt
