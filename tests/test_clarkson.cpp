// Tests for the sequential baselines: Clarkson's Algorithm 1, the generic
// MSW basis-exchange solver, and the empirical sampling bound of Lemma 1.
#include <gtest/gtest.h>

#include <cmath>

#include "core/clarkson.hpp"
#include "core/hypercube_clarkson.hpp"
#include "problems/linear_program2d.hpp"
#include "problems/min_disk.hpp"
#include "problems/polytope_distance.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workloads/disk_data.hpp"
#include "workloads/lp_data.hpp"

namespace lpt {
namespace {

using workloads::DiskDataset;

class ClarksonOnDatasets
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ClarksonOnDatasets, MatchesOracle) {
  const auto [dataset_idx, seed] = GetParam();
  const auto dataset = workloads::kAllDiskDatasets[dataset_idx];
  util::Rng rng(seed);
  const auto pts = workloads::generate_disk_dataset(dataset, 500, rng);
  problems::MinDisk p;
  const auto oracle = p.solve(pts);
  const auto res = core::clarkson_solve(p, pts, rng);
  EXPECT_TRUE(res.stats.converged);
  EXPECT_TRUE(p.same_value(res.solution, oracle))
      << workloads::dataset_name(dataset) << ": " << res.solution.disk.radius
      << " vs " << oracle.disk.radius;
}

TEST_P(ClarksonOnDatasets, IterationCountIsLogarithmic) {
  const auto [dataset_idx, seed] = GetParam();
  const auto dataset = workloads::kAllDiskDatasets[dataset_idx];
  util::Rng rng(100 + seed);
  const auto pts = workloads::generate_disk_dataset(dataset, 2000, rng);
  problems::MinDisk p;
  const auto res = core::clarkson_solve(p, pts, rng);
  ASSERT_TRUE(res.stats.converged);
  // Lemma 2: O(d log n) iterations in expectation; with d = 3 and
  // n = 2000 a generous constant gives 3 * 11 * 6 = 198.
  EXPECT_LE(res.stats.iterations, 200u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ClarksonOnDatasets,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(1, 6)));

TEST(Clarkson, SmallInputSolvedDirectly) {
  problems::MinDisk p;
  util::Rng rng(1);
  std::vector<geom::Vec2> pts{{0, 0}, {1, 0}, {0, 1}};
  const auto res = core::clarkson_solve(p, pts, rng);
  EXPECT_TRUE(res.stats.converged);
  EXPECT_EQ(res.stats.iterations, 0u);
  EXPECT_EQ(res.stats.basis_computations, 1u);
}

TEST(Clarkson, WorksOnLpInstances) {
  util::Rng rng(2);
  const auto inst = workloads::generate_lp_instance(800, rng);
  problems::LinearProgram2D p(inst.objective);
  const auto res = core::clarkson_solve(p, inst.constraints, rng);
  EXPECT_TRUE(res.stats.converged);
  EXPECT_NEAR(res.solution.value.objective, inst.optimal_value, 1e-6);
}

TEST(Clarkson, WorksOnPolytopeDistance) {
  util::Rng rng(3);
  problems::PolytopeDistance p;
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < 600; ++i) {
    pts.push_back({rng.uniform(1.0, 6.0), rng.uniform(-4.0, 4.0)});
  }
  const auto oracle = p.solve(pts);
  const auto res = core::clarkson_solve(p, pts, rng);
  EXPECT_TRUE(res.stats.converged);
  EXPECT_TRUE(p.same_value(res.solution, oracle));
}

// Empirical check of Lemma 1: E|V_R| <= d (m - r) / (r + 1) for uniform
// multiplicities.  We estimate the expectation over many random samples.
TEST(Lemma1, SamplingBoundHolds) {
  util::Rng rng(4);
  problems::MinDisk p;
  const std::size_t m = 600;
  const auto pts =
      workloads::generate_disk_dataset(DiskDataset::kTripleDisk, m, rng);
  const std::size_t d = p.dimension();
  for (std::size_t r : {10ul, 54ul, 100ul}) {
    util::RunningStat v_size;
    for (int trial = 0; trial < 300; ++trial) {
      std::vector<geom::Vec2> sample;
      for (auto idx : rng.sample_indices(m, r)) sample.push_back(pts[idx]);
      const auto sol = p.solve(sample);
      v_size.add(static_cast<double>(core::count_violators(p, sol, pts)));
    }
    const double bound = static_cast<double>(d) *
                         static_cast<double>(m - r) /
                         static_cast<double>(r + 1);
    // Allow 3 standard errors of slack on the Monte Carlo estimate.
    const double slack =
        3.0 * v_size.stddev() / std::sqrt(static_cast<double>(v_size.count()));
    EXPECT_LE(v_size.mean(), bound + slack) << "r = " << r;
  }
}


TEST(HypercubeClarkson, MatchesOracleAndCountsRounds) {
  problems::MinDisk p;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, 1024, 9);
  const auto oracle = p.solve(pts);
  const auto res = core::run_hypercube_clarkson(p, pts, 1024, 42);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(p.same_value(res.solution, oracle));
  // Rounds = Theta(iterations * log n): at least log2(1024) = 10 per
  // iteration, and a constant number of collectives per iteration.
  EXPECT_GE(res.rounds, res.iterations * 10);
  EXPECT_LE(res.rounds, res.iterations * 50 + 50);
}

TEST(HypercubeClarkson, SmallInputShortCircuits) {
  problems::MinDisk p;
  std::vector<geom::Vec2> pts{{0, 0}, {1, 0}};
  const auto res = core::run_hypercube_clarkson(p, pts, 16, 1);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
  EXPECT_GT(res.rounds, 0u);
}

}  // namespace
}  // namespace lpt
