// Degenerate-input robustness suite: identical points, collinear clouds,
// huge and tiny coordinate scales, duplicated constraints — pushed through
// the solvers and the full distributed engines.  A production library must
// not wedge or return garbage on any of these.
#include <gtest/gtest.h>

#include <cmath>

#include "core/clarkson.hpp"
#include "core/high_load.hpp"
#include "core/low_load.hpp"
#include "core/msw.hpp"
#include "geometry/welzl.hpp"
#include "problems/linear_program2d.hpp"
#include "problems/min_disk.hpp"
#include "util/rng.hpp"

namespace lpt {
namespace {

using problems::MinDisk;

TEST(Degenerate, AllIdenticalPoints) {
  MinDisk p;
  std::vector<geom::Vec2> pts(200, geom::Vec2{2.5, -1.5});
  const auto sol = p.solve(pts);
  EXPECT_DOUBLE_EQ(sol.disk.radius, 0.0);
  EXPECT_EQ(sol.basis.size(), 1u);

  util::Rng rng(1);
  const auto cl = core::clarkson_solve(p, pts, rng);
  EXPECT_TRUE(cl.stats.converged);
  EXPECT_DOUBLE_EQ(cl.solution.disk.radius, 0.0);

  core::LowLoadConfig cfg;
  cfg.seed = 2;
  const auto res = core::run_low_load(p, pts, 64, cfg);
  EXPECT_TRUE(res.stats.reached_optimum);
}

TEST(Degenerate, CollinearCloud) {
  MinDisk p;
  std::vector<geom::Vec2> pts;
  util::Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const double t = rng.uniform(-1.0, 1.0);
    pts.push_back({t, 2.0 * t});  // on the line y = 2x
  }
  const auto sol = p.solve(pts);
  // Min disk of a segment: diametral circle of the extremes.
  EXPECT_LE(sol.basis.size(), 2u);
  EXPECT_TRUE(geom::encloses_all(sol.disk, pts));

  core::HighLoadConfig cfg;
  cfg.seed = 5;
  const auto res = core::run_high_load(p, pts, 64, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_TRUE(p.same_value(res.solution, sol));
}

TEST(Degenerate, CocircularPoints) {
  MinDisk p;
  std::vector<geom::Vec2> pts;
  for (int k = 0; k < 64; ++k) {
    const double a = 2.0 * 3.14159265358979323846 * k / 64;
    pts.push_back({std::cos(a), std::sin(a)});
  }
  const auto sol = p.solve(pts);
  EXPECT_NEAR(sol.disk.radius, 1.0, 1e-9);
  EXPECT_TRUE(geom::encloses_all(sol.disk, pts));

  util::Rng rng(7);
  const auto msw = core::msw_solve(p, pts, rng);
  EXPECT_TRUE(p.same_value(msw.solution, sol));
}

TEST(Degenerate, HugeCoordinateScale) {
  MinDisk p;
  util::Rng rng(9);
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({1e12 + rng.uniform(-1e6, 1e6),
                   -3e12 + rng.uniform(-1e6, 1e6)});
  }
  const auto sol = p.solve(pts);
  EXPECT_TRUE(geom::encloses_all(sol.disk, pts));

  core::LowLoadConfig cfg;
  cfg.seed = 11;
  const auto res = core::run_low_load(p, pts, 64, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_TRUE(p.same_value(res.solution, sol));
}

TEST(Degenerate, TinyCoordinateScale) {
  MinDisk p;
  util::Rng rng(13);
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(-1e-9, 1e-9), rng.uniform(-1e-9, 1e-9)});
  }
  const auto sol = p.solve(pts);
  EXPECT_TRUE(geom::encloses_all(sol.disk, pts));
  EXPECT_LT(sol.disk.radius, 3e-9);
}

TEST(Degenerate, TwoPointInstanceThroughEngines) {
  MinDisk p;
  std::vector<geom::Vec2> pts{{-1, 0}, {1, 0}};
  core::LowLoadConfig lcfg;
  lcfg.seed = 15;
  const auto low = core::run_low_load(p, pts, 8, lcfg);
  ASSERT_TRUE(low.stats.reached_optimum);
  EXPECT_NEAR(low.solution.disk.radius, 1.0, 1e-12);

  core::HighLoadConfig hcfg;
  hcfg.seed = 17;
  const auto high = core::run_high_load(p, pts, 8, hcfg);
  ASSERT_TRUE(high.stats.reached_optimum);
  EXPECT_NEAR(high.solution.disk.radius, 1.0, 1e-12);
}

TEST(Degenerate, DuplicatedLpConstraints) {
  problems::LinearProgram2D p({0.0, 1.0});
  // y >= 1 five times plus padding.
  std::vector<lp::Halfplane> cs(5, lp::Halfplane{{0.0, -1.0}, -1.0});
  cs.push_back({{1.0, 0.0}, 100.0});
  const auto sol = p.solve(cs);
  ASSERT_FALSE(sol.value.infeasible);
  EXPECT_NEAR(sol.value.objective, 1.0, 1e-9);
  EXPECT_LE(sol.basis.size(), 2u);

  util::Rng rng(19);
  const auto cl = core::clarkson_solve(p, cs, rng);
  EXPECT_TRUE(cl.stats.converged);
  EXPECT_NEAR(cl.solution.value.objective, 1.0, 1e-9);
}

TEST(Degenerate, ParallelBindingConstraints) {
  problems::LinearProgram2D p({0.0, 1.0});
  // Two identical-direction constraints, the tighter one binds.
  std::vector<lp::Halfplane> cs{{{0.0, -1.0}, -1.0},   // y >= 1
                                {{0.0, -1.0}, -2.0}};  // y >= 2
  const auto sol = p.solve(cs);
  EXPECT_NEAR(sol.value.objective, 2.0, 1e-9);
  EXPECT_EQ(sol.basis.size(), 1u);
  EXPECT_NEAR(sol.basis[0].b, -2.0, 1e-12);
}

TEST(Degenerate, WelzlManyDuplicatesOfBasis) {
  // The multiplicity-doubling dynamics create exactly this input shape:
  // many copies of few values.
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({-1, 0});
    pts.push_back({1, 0});
    pts.push_back({0, 1});
  }
  MinDisk p;
  const auto sol = p.solve(pts);
  EXPECT_TRUE(geom::encloses_all(sol.disk, pts));
  EXPECT_NEAR(sol.disk.radius, 1.0, 1e-9);
}

TEST(Degenerate, MoreNodesThanElementsEverywhere) {
  MinDisk p;
  std::vector<geom::Vec2> pts{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}};
  core::LowLoadConfig cfg;
  cfg.seed = 21;
  const auto res = core::run_low_load(p, pts, 512, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_TRUE(p.same_value(res.solution, p.solve(pts)));
}

}  // namespace
}  // namespace lpt
