// Bit-exactness harness for the hypercube exchange: the CSR fast path
// (HypercubeChannel) and the legacy per-dimension vector engine
// (LegacyHypercubeChannel) share one dimension-ordered hop schedule, so
// their inboxes — contents AND per-inbox order — must match element for
// element, as must the per-dimension traffic counters.  Also covers epoch
// reuse across rounds (stale slices never leak) and the collectives' real
// data movement with and without a thread pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "gossip/hypercube.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lpt::gossip {
namespace {

/// The pre-CSR reference engine: dimension-ordered routing on per-dimension
/// vectors-of-vectors, double-buffered per step.  Same hop schedule as
/// HypercubeChannel — node-order traversal, per-node arrival order — so the
/// two engines' inboxes must match element for element.  It lives here (not
/// in src/) for the same reason the legacy Mailbox/PullChannel references
/// live in bench/micro_substrates.cpp: it exists only to pin the fast
/// path's behavior.
template <typename M>
class LegacyHypercubeChannel {
 public:
  explicit LegacyHypercubeChannel(Hypercube& hc)
      : hc_(&hc), at_(hc.size()), next_(hc.size()), inbox_(hc.size()),
        dim_traffic_(hc.dimension(), 0) {}

  void send(NodeId from, NodeId to, M msg) {
    at_[from].push_back(Pending{to, std::move(msg)});
  }

  void route() {
    const std::size_t dim = hc_->dimension();
    dim_traffic_.assign(dim, 0);
    for (std::size_t k = 0; k < dim; ++k) {
      const NodeId bit = NodeId{1} << k;
      for (NodeId v = 0; v < at_.size(); ++v) {
        for (auto& p : at_[v]) {
          const NodeId target = ((v ^ p.to) & bit) ? (v ^ bit) : v;
          if (target != v) ++dim_traffic_[k];
          next_[target].push_back(std::move(p));
        }
        at_[v].clear();
      }
      at_.swap(next_);
    }
    for (NodeId v = 0; v < at_.size(); ++v) {
      inbox_[v].clear();
      for (auto& p : at_[v]) inbox_[v].push_back(std::move(p.msg));
      at_[v].clear();
    }
    hc_->charge_rounds(dim);
  }

  std::span<const M> inbox(NodeId v) const noexcept {
    return {inbox_[v].data(), inbox_[v].size()};
  }

  std::size_t dim_traffic(std::size_t k) const { return dim_traffic_[k]; }

 private:
  struct Pending {
    NodeId to;
    M msg;
  };

  Hypercube* hc_;
  std::vector<std::vector<Pending>> at_;
  std::vector<std::vector<Pending>> next_;
  std::vector<std::vector<M>> inbox_;
  std::vector<std::size_t> dim_traffic_;
};

// Payload carrying provenance so order mismatches are visible in failures.
struct TaggedMsg {
  std::uint32_t from = 0;
  std::uint32_t seq = 0;

  bool operator==(const TaggedMsg&) const = default;
};

TEST(HypercubeCsr, MatchesLegacyOnRandomTraffic) {
  for (const std::size_t n : {std::size_t{2}, std::size_t{8}, std::size_t{32},
                              std::size_t{64}}) {
    Hypercube hc_csr(n);
    Hypercube hc_leg(n);
    HypercubeChannel<TaggedMsg> csr(hc_csr);
    LegacyHypercubeChannel<TaggedMsg> leg(hc_leg);
    util::Rng rng(91 * n + 5);
    for (int round = 0; round < 6; ++round) {
      const std::size_t m = rng.below(4 * n);
      for (std::uint32_t seq = 0; seq < m; ++seq) {
        const auto from = static_cast<NodeId>(rng.below(n));
        const auto to = static_cast<NodeId>(rng.below(n));
        csr.send(from, to, TaggedMsg{from, seq});
        leg.send(from, to, TaggedMsg{from, seq});
      }
      csr.route();
      leg.route();
      for (NodeId v = 0; v < n; ++v) {
        const auto a = csr.inbox(v);
        const auto b = leg.inbox(v);
        ASSERT_EQ(a.size(), b.size()) << "n=" << n << " round=" << round
                                      << " node=" << v;
        for (std::size_t k = 0; k < a.size(); ++k) {
          EXPECT_EQ(a[k], b[k]) << "n=" << n << " round=" << round
                                << " node=" << v << " slot=" << k;
        }
      }
      for (std::size_t k = 0; k < hc_csr.dimension(); ++k) {
        EXPECT_EQ(csr.dim_traffic(k), leg.dim_traffic(k))
            << "n=" << n << " round=" << round << " dim=" << k;
      }
      EXPECT_EQ(hc_csr.rounds_used(), hc_leg.rounds_used());
    }
  }
}

TEST(HypercubeCsr, SameSourcePreservesSendOrderPerDestination) {
  Hypercube hc(16);
  HypercubeChannel<TaggedMsg> chan(hc);
  // Several messages from one source to each of two destinations, crossing
  // all four dimensions; within a destination the send order must survive.
  for (std::uint32_t seq = 0; seq < 8; ++seq) {
    chan.send(5, 10, TaggedMsg{5, seq});
    chan.send(5, 3, TaggedMsg{5, 100 + seq});
  }
  chan.route();
  const auto at10 = chan.inbox(10);
  const auto at3 = chan.inbox(3);
  ASSERT_EQ(at10.size(), 8u);
  ASSERT_EQ(at3.size(), 8u);
  for (std::uint32_t seq = 0; seq < 8; ++seq) {
    EXPECT_EQ(at10[seq].seq, seq);
    EXPECT_EQ(at3[seq].seq, 100 + seq);
  }
}

TEST(HypercubeCsr, RouteChargesDimensionRoundsAndCountsHops) {
  Hypercube hc(8);
  HypercubeChannel<int> chan(hc);
  // 0 -> 7 crosses every dimension once; 6 -> 7 only dimension 0.
  chan.send(0, 7, 1);
  chan.send(6, 7, 2);
  chan.route();
  EXPECT_EQ(hc.rounds_used(), 3u);
  EXPECT_EQ(chan.dim_traffic(0), 2u);
  EXPECT_EQ(chan.dim_traffic(1), 1u);
  EXPECT_EQ(chan.dim_traffic(2), 1u);
  const auto got = chan.inbox(7);
  ASSERT_EQ(got.size(), 2u);
  // Node-order traversal: the message starting at node 0 stays ahead of
  // the one starting at node 6 through every step.
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 2);
}

TEST(HypercubeCsr, EpochReuseAcrossRoundsLeavesNoStaleSlices) {
  Hypercube hc(16);
  HypercubeChannel<int> chan(hc);
  chan.send(1, 9, 42);
  chan.send(2, 9, 43);
  chan.route();
  ASSERT_EQ(chan.inbox(9).size(), 2u);

  // Next round: traffic only to node 4.  Node 9's old slice must not leak
  // through the epoch stamp, and the channel must deliver fresh data.
  chan.send(7, 4, 77);
  chan.route();
  EXPECT_TRUE(chan.inbox(9).empty());
  ASSERT_EQ(chan.inbox(4).size(), 1u);
  EXPECT_EQ(chan.inbox(4)[0], 77);

  // An empty round clears everything.
  chan.route();
  EXPECT_TRUE(chan.inbox(4).empty());
  EXPECT_TRUE(chan.inbox(9).empty());
  EXPECT_EQ(chan.pending(), 0u);
}

TEST(HypercubeCsr, SelfDeliveryAndSingleNodeCube) {
  Hypercube hc1(1);
  HypercubeChannel<int> chan1(hc1);
  chan1.send(0, 0, 5);
  chan1.route();
  ASSERT_EQ(chan1.inbox(0).size(), 1u);
  EXPECT_EQ(chan1.inbox(0)[0], 5);
  EXPECT_EQ(hc1.rounds_used(), 0u);  // dimension 0: no hops needed

  Hypercube hc(8);
  HypercubeChannel<int> chan(hc);
  chan.send(3, 3, 9);  // message already at its destination
  chan.route();
  ASSERT_EQ(chan.inbox(3).size(), 1u);
  for (std::size_t k = 0; k < hc.dimension(); ++k) {
    EXPECT_EQ(chan.dim_traffic(k), 0u);
  }
}

TEST(HypercubeCollectives, RealDataMovementMatchesSpec) {
  Hypercube hc(16);
  std::vector<double> vals(16);
  std::iota(vals.begin(), vals.end(), 1.0);

  std::vector<double> bc(vals);
  hc.broadcast(bc, 5);
  for (const double v : bc) EXPECT_EQ(v, 6.0);

  const double total =
      hc.all_reduce(vals, 0.0, [](double a, double b) { return a + b; });
  EXPECT_EQ(total, 136.0);

  std::vector<double> pre(vals);
  const double ps_total = hc.prefix_sum(pre);
  EXPECT_EQ(ps_total, 136.0);
  double expect = 0.0;
  for (std::size_t v = 0; v < 16; ++v) {
    EXPECT_EQ(pre[v], expect);
    expect += vals[v];
  }
  EXPECT_EQ(hc.rounds_used(), 3 * 4u);
}

TEST(HypercubeCollectives, PoolRunsAreBitIdenticalToSerial) {
  util::Rng rng(77);
  std::vector<double> vals(64);
  for (auto& v : vals) v = rng.uniform(-10.0, 10.0);

  Hypercube serial(64);
  util::ThreadPool pool(4);
  Hypercube pooled(64, &pool);

  std::vector<double> bc_a(vals), bc_b(vals);
  serial.broadcast(bc_a, 19);
  pooled.broadcast(bc_b, 19);
  EXPECT_EQ(bc_a, bc_b);

  const auto plus = [](double a, double b) { return a + b; };
  EXPECT_EQ(serial.all_reduce(vals, 0.0, plus),
            pooled.all_reduce(vals, 0.0, plus));

  std::vector<double> ps_a(vals), ps_b(vals);
  const double ta = serial.prefix_sum(ps_a);
  const double tb = pooled.prefix_sum(ps_b);
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(ps_a, ps_b);
  EXPECT_EQ(serial.rounds_used(), pooled.rounds_used());
}

}  // namespace
}  // namespace lpt::gossip
