// Smoke test: every example binary must run to completion with exit code 0.
// The binary directory is injected by CMake as LPT_EXAMPLES_BIN_DIR.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/wait.h>
#endif

namespace lpt {
namespace {

int run_example(const std::string& name) {
#ifdef _WIN32
  const std::string cmd =
      std::string(LPT_EXAMPLES_BIN_DIR) + "/" + name + " > NUL 2>&1";
  return std::system(cmd.c_str());
#else
  const std::string cmd =
      std::string(LPT_EXAMPLES_BIN_DIR) + "/" + name + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#endif
}

// The example names are injected by CMake from the one LPT_EXAMPLES list,
// so adding an example automatically adds its smoke test.
std::vector<std::string> example_names() {
  std::vector<std::string> names;
  std::istringstream in(LPT_EXAMPLE_NAMES);
  for (std::string name; std::getline(in, name, ',');) names.push_back(name);
  return names;
}

class ExamplesSmoke : public ::testing::TestWithParam<std::string> {};

TEST_P(ExamplesSmoke, ExitsZero) { EXPECT_EQ(run_example(GetParam()), 0); }

INSTANTIATE_TEST_SUITE_P(All, ExamplesSmoke,
                         ::testing::ValuesIn(example_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace lpt
