// The randomized scenario-matrix stress harness (ROADMAP "scenario
// diversity"): every tuple of scenario x engine x dataset x transport from
// scenarios::default_stress_matrix() runs under its per-tuple seed and must
// uphold the paper's invariants — a basis the direct reference solver
// confirms optimal, containment within the predicate tolerance, and a round
// count inside the Theta(log n) envelope.  Invariants, not golden streams:
// adversarial schedules legitimately perturb RNG consumption, so the
// assertions pin what the algorithms *guarantee*, not what they happened to
// draw.
//
// Reproducing a failure: every assertion carries the failing tuple via
// SCOPED_TRACE, including a one-line repro of the form
//   ./tests/test_scenarios --seed=<base> --gtest_filter='*<tuple>*'
// The base seed defaults to a built-in constant and can be rotated with the
// LPT_STRESS_SEED environment variable or the --seed flag (highest
// precedence; parsed by this file's main() before InitGoogleTest).
//
// The suite also pins the fault generators' *statistics*: the Markov burst
// chain's stationary fraction and epoch lengths, the Pareto straggle
// length's truncated mean, and the network-level straggler occupancy, each
// against its analytic value.  Those guard the batched geometric-gap
// sampling — an off-by-one in an epoch draw shifts a marginal rate far
// outside these tolerances.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "geometry/welzl.hpp"
#include "gossip/network.hpp"
#include "scenarios/dynamic_input.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/stress.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"

namespace lpt {
namespace {

using testsupport::seeded_rng;

// ---------------------------------------------------------------------------
// The stress matrix.
// ---------------------------------------------------------------------------

class StressMatrix : public testing::TestWithParam<scenarios::StressTuple> {};

TEST_P(StressMatrix, UpholdsInvariants) {
  const scenarios::StressTuple t = GetParam();
  const std::uint64_t base = scenarios::stress_seed();
  SCOPED_TRACE(scenarios::stress_repro(t, base));

  const scenarios::StressOutcome out = scenarios::run_stress_tuple(t, base);

  EXPECT_TRUE(out.reached)
      << "engine did not reach a verified optimum under this schedule";
  EXPECT_ROUND_ENVELOPE(out.rounds, out.round_cap);

  if (out.is_hitting_set) {
    EXPECT_GE(out.hs_planted, 1u);
    EXPECT_GE(out.hs_size, 1u);
    // Theorem 5: the returned set has at most r = O(d log(ds)) elements.
    EXPECT_LE(out.hs_size, out.hs_size_bound);
  } else {
    // The distributed basis must be optimal per the direct reference
    // solve, contain every input point, and sit on the disk boundary —
    // all within the min-disk predicate tolerance.
    const double tol = 1e-9 * (out.ref_disk.radius + 1.0);
    EXPECT_NEAR(out.disk.radius, out.ref_disk.radius, tol);
    const double geo_tol = 1e-7 * (out.ref_disk.radius + 1.0);
    EXPECT_VEC2_NEAR(out.disk.center, out.ref_disk.center, geo_tol);
    EXPECT_ALL_INSIDE_DISK(out.points, out.disk.center, out.disk.radius, tol);
    EXPECT_BASIS_ON_BOUNDARY(out.basis, out.disk.center, out.disk.radius,
                             geo_tol);
  }

  if (out.expect_kill) {
    // The tuple scripted a worker SIGKILL: recovery must have observed the
    // death and respawned (the run reaching the optimum proves resend).
    EXPECT_GE(out.recovery.workers_lost, 1u);
    EXPECT_GE(out.recovery.respawns, 1u);
  }

  if (t.scenario == scenarios::ScenarioKind::kDynamic) {
    // The incremental structure must actually take the incremental paths:
    // exactly the constructor's full solve, and cheap O(1)/O(support)
    // updates outnumbering warm re-solves.
    EXPECT_EQ(out.dyn.full_solves, 1u);
    EXPECT_GT(out.dyn.cheap_inserts + out.dyn.cheap_erases,
              out.dyn.warm_solves);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StressMatrix,
    testing::ValuesIn(scenarios::default_stress_matrix()),
    [](const testing::TestParamInfo<scenarios::StressTuple>& info) {
      return scenarios::tuple_test_name(info.param);
    });

// ---------------------------------------------------------------------------
// Harness plumbing: the reproducibility contract.
// ---------------------------------------------------------------------------

TEST(StressHarness, MatrixMeetsAcceptanceFloor) {
  const auto m = scenarios::default_stress_matrix();
  EXPECT_GE(m.size(), 48u);
  std::set<scenarios::EngineKind> engines;
  std::set<scenarios::ScenarioKind> kinds;
  for (const auto& t : m) {
    engines.insert(t.engine);
    kinds.insert(t.scenario);
  }
  EXPECT_EQ(engines.size(), 4u) << "matrix must cover all four engines";
  EXPECT_EQ(kinds.size(), 7u) << "matrix must cover every scenario kind";
}

TEST(StressHarness, TupleSeedsAreDeterministicAndDistinct) {
  const auto m = scenarios::default_stress_matrix();
  std::set<std::uint64_t> seeds;
  for (const auto& t : m) {
    const std::uint64_t s = scenarios::tuple_seed(1234, t);
    EXPECT_EQ(s, scenarios::tuple_seed(1234, t));
    seeds.insert(s);
  }
  EXPECT_EQ(seeds.size(), m.size()) << "tuple seeds collided";
}

TEST(StressHarness, ReproLineCarriesTupleAndSeed) {
  const scenarios::StressTuple t = scenarios::default_stress_matrix().front();
  const std::string repro = scenarios::stress_repro(t, 42);
  EXPECT_NE(repro.find("--seed=42"), std::string::npos) << repro;
  EXPECT_NE(repro.find("--gtest_filter="), std::string::npos) << repro;
  const std::string name = scenarios::tuple_test_name(t);
  EXPECT_NE(repro.find(name), std::string::npos) << repro;
  for (const char c : name) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_')
        << "gtest parameter names admit only [A-Za-z0-9_]: " << name;
  }
}

TEST(StressHarness, ScenarioCompilationIsPure) {
  const auto a = scenarios::compile_scenario(scenarios::ScenarioKind::kChurn,
                                             256, 77);
  const auto b = scenarios::compile_scenario(scenarios::ScenarioKind::kChurn,
                                             256, 77);
  ASSERT_EQ(a.churn.events.size(), b.churn.events.size());
  ASSERT_FALSE(a.churn.events.empty());
  for (std::size_t i = 0; i < a.churn.events.size(); ++i) {
    EXPECT_EQ(a.churn.events[i].round, b.churn.events[i].round);
    EXPECT_EQ(a.churn.events[i].node, b.churn.events[i].node);
    EXPECT_EQ(a.churn.events[i].join, b.churn.events[i].join);
  }
  // Node 0 (the output node) never churns, and every leave has a rejoin.
  std::size_t leaves = 0, joins = 0;
  for (const auto& e : a.churn.events) {
    EXPECT_NE(e.node, 0u);
    (e.join ? joins : leaves)++;
  }
  EXPECT_EQ(leaves, joins);
}

// ---------------------------------------------------------------------------
// Fault-generator statistics (satellite: marginal-rate tolerance tests).
// ---------------------------------------------------------------------------

TEST(FaultStatistics, BurstChainHitsStationaryFractionAndEpochMeans) {
  gossip::BurstFaults spec;
  spec.push_loss = 0.6;
  spec.enter = 0.06;
  spec.exit = 0.14;
  util::Rng rng = seeded_rng("burst-chain-stationary");

  gossip::BurstChain chain;
  const std::size_t kRounds = 300000;
  std::size_t burst_rounds = 0;
  std::size_t burst_epochs = 0, calm_epochs = 0;
  std::size_t burst_len_total = 0, calm_len_total = 0;
  bool prev = false;
  std::size_t run = 0;
  for (std::size_t r = 0; r < kRounds; ++r) {
    const bool b = chain.step(rng, spec);
    if (b) ++burst_rounds;
    if (r > 0 && b != prev) {
      (prev ? burst_epochs : calm_epochs)++;
      (prev ? burst_len_total : calm_len_total) += run;
      run = 0;
    }
    prev = b;
    ++run;
  }

  // Stationary burst fraction pi = enter / (enter + exit).
  const double pi = spec.enter / (spec.enter + spec.exit);
  EXPECT_NEAR(static_cast<double>(burst_rounds) / kRounds, pi, 0.02);

  // Geometric epochs: mean burst length 1/exit, mean calm length 1/enter.
  ASSERT_GT(burst_epochs, 1000u);
  ASSERT_GT(calm_epochs, 1000u);
  const double mean_burst =
      static_cast<double>(burst_len_total) / burst_epochs;
  const double mean_calm = static_cast<double>(calm_len_total) / calm_epochs;
  EXPECT_REL_NEAR(mean_burst, 1.0 / spec.exit, 0.05);
  EXPECT_REL_NEAR(mean_calm, 1.0 / spec.enter, 0.05);
}

TEST(FaultStatistics, NetworkReportsMarginalBurstLossRate) {
  gossip::FaultModel faults;
  faults.push_loss = 0.05;
  faults.burst.push_loss = 0.6;
  faults.burst.enter = 0.06;
  faults.burst.exit = 0.14;

  gossip::Network net(64, seeded_rng("burst-marginal"), faults);
  const std::size_t kRounds = 200000;
  double loss_sum = 0.0;
  for (std::size_t r = 0; r < kRounds; ++r) {
    net.begin_round();
    const double eff = net.faults().push_loss;
    // The effective model is exactly one of {calm, burst}, in lockstep
    // with burst_active().
    EXPECT_EQ(eff, net.burst_active() ? faults.burst.push_loss
                                      : faults.push_loss);
    loss_sum += eff;
  }
  const double pi = faults.burst.enter /
                    (faults.burst.enter + faults.burst.exit);
  const double marginal =
      (1.0 - pi) * faults.push_loss + pi * faults.burst.push_loss;
  EXPECT_REL_NEAR(loss_sum / kRounds, marginal, 0.05);
}

// Analytic mean of the capped straggle length: E[D] = sum_t P(D >= t) with
// P(D >= 1) = 1 and P(D >= t) = min(1, (scale/(t-1))^alpha) for t in
// [2, cap].
double truncated_pareto_mean(const gossip::StragglerFaults& spec) {
  double e = 1.0;
  for (std::uint32_t t = 2; t <= spec.cap_rounds; ++t) {
    e += std::min(1.0, std::pow(spec.scale / (t - 1), spec.alpha));
  }
  return e;
}

TEST(FaultStatistics, ParetoStraggleLengthHitsTruncatedMean) {
  gossip::StragglerFaults spec;
  spec.rate = 0.02;
  spec.alpha = 1.5;
  spec.scale = 2.0;
  spec.cap_rounds = 48;
  util::Rng rng = seeded_rng("pareto-lengths");

  const std::size_t kDraws = 200000;
  double sum = 0.0;
  for (std::size_t i = 0; i < kDraws; ++i) {
    const std::uint32_t d = gossip::pareto_sleep_rounds(rng, spec);
    ASSERT_GE(d, 2u);  // x >= scale = 2, so ceil(x) >= 2
    ASSERT_LE(d, spec.cap_rounds);
    sum += d;
  }
  EXPECT_REL_NEAR(sum / kDraws, truncated_pareto_mean(spec), 0.02);
}

TEST(FaultStatistics, NetworkStragglerOccupancyMatchesBalanceEquation) {
  gossip::FaultModel faults;
  faults.straggler.rate = 0.02;
  faults.straggler.alpha = 1.5;
  faults.straggler.scale = 2.0;
  faults.straggler.cap_rounds = 48;

  const std::size_t n = 512;
  gossip::Network net(n, seeded_rng("straggler-occupancy"), faults);
  const std::size_t kWarmup = 200, kRounds = 4000;
  double asleep_sum = 0.0;
  for (std::size_t r = 0; r < kWarmup + kRounds; ++r) {
    net.begin_round();
    if (r >= kWarmup) asleep_sum += static_cast<double>(net.asleep_count());
  }
  // Only awake nodes start straggles, so in steady state
  //   rate * (1 - rho) = rho / E[D]  =>  rho = rate*E[D] / (1 + rate*E[D]).
  const double rd = faults.straggler.rate *
                    truncated_pareto_mean(faults.straggler);
  const double rho = rd / (1.0 + rd);
  EXPECT_REL_NEAR(asleep_sum / (kRounds * n), rho, 0.15);
}

// ---------------------------------------------------------------------------
// Dynamic inputs: the incremental structure against from-scratch Welzl.
// ---------------------------------------------------------------------------

TEST(DynamicMinDiskTest, TracksFromScratchSolveThroughUpdates) {
  util::Rng rng = seeded_rng("dynamic-tracks-scratch");
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < 64; ++i) {
    pts.push_back({rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)});
  }
  scenarios::DynamicMinDisk dyn(pts);

  for (int step = 0; step < 200; ++step) {
    if (rng.bernoulli(0.4) && dyn.points().size() > 8) {
      dyn.erase(rng.below(dyn.points().size()));
    } else {
      dyn.insert({rng.uniform(-12.0, 12.0), rng.uniform(-12.0, 12.0)});
    }
    const auto scratch = geom::min_disk(
        std::vector<geom::Vec2>(dyn.points().begin(), dyn.points().end()));
    EXPECT_REL_NEAR(dyn.result().disk.radius, scratch.disk.radius, 1e-9)
        << "after step " << step;
  }
  EXPECT_EQ(dyn.stats().full_solves, 1u);
}

TEST(DynamicMinDiskTest, InsideInsertAndNonSupportEraseAreCheap) {
  // A square plus its center: support is among the corners.
  std::vector<geom::Vec2> pts = {
      {-1.0, -1.0}, {1.0, -1.0}, {1.0, 1.0}, {-1.0, 1.0}, {0.0, 0.0}};
  scenarios::DynamicMinDisk dyn(pts);
  const double r0 = dyn.result().disk.radius;

  dyn.insert({0.1, 0.2});  // strictly inside: O(1), optimum unchanged
  EXPECT_EQ(dyn.stats().cheap_inserts, 1u);
  EXPECT_EQ(dyn.stats().warm_solves, 0u);
  EXPECT_DOUBLE_EQ(dyn.result().disk.radius, r0);

  dyn.erase(4);  // the center: not support, O(support) check
  EXPECT_EQ(dyn.stats().cheap_erases, 1u);
  EXPECT_EQ(dyn.stats().warm_solves, 0u);
  EXPECT_DOUBLE_EQ(dyn.result().disk.radius, r0);

  dyn.insert({3.0, 0.0});  // violator: warm re-solve must grow the disk
  EXPECT_EQ(dyn.stats().warm_solves, 1u);
  EXPECT_GT(dyn.result().disk.radius, r0);
}

TEST(DynamicMinDiskTest, SupportEraseShrinksViaWarmResolve) {
  // Two boundary points far out, a cluster near the origin: erasing a
  // support point must shrink the disk and go through the warm path.
  std::vector<geom::Vec2> pts = {{-5.0, 0.0}, {5.0, 0.0}, {0.2, 0.1},
                                 {-0.3, 0.2}, {0.1, -0.2}};
  scenarios::DynamicMinDisk dyn(pts);
  ASSERT_NEAR(dyn.result().disk.radius, 5.0, 1e-9);

  dyn.erase(0);  // (-5, 0) is support
  EXPECT_GE(dyn.stats().warm_solves, 1u);
  EXPECT_LT(dyn.result().disk.radius, 5.0 - 1.0);
  const auto scratch = geom::min_disk(
      std::vector<geom::Vec2>(dyn.points().begin(), dyn.points().end()));
  EXPECT_REL_NEAR(dyn.result().disk.radius, scratch.disk.radius, 1e-9);
}

}  // namespace
}  // namespace lpt

// Custom main: --seed=<value> must take effect before the first
// stress_seed() call inside a test body.  (The parameterized suite's
// *names* are seed-independent, so gtest discovery stays stable.)
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kSeed = "--seed=";
    if (arg.substr(0, std::min(arg.size(), kSeed.size())) == kSeed) {
      char* end = nullptr;
      const unsigned long long v =
          std::strtoull(arg.data() + kSeed.size(), &end, 0);
      if (end != arg.data() + kSeed.size()) {
        lpt::scenarios::set_stress_seed(static_cast<std::uint64_t>(v));
      }
    }
  }
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
