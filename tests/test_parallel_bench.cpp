// Thread-count invariance tests for the parallel sweep machinery: the
// bench harness's average_runs and the engines' parallel per-node compute
// phase must produce bit-identical results for any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "common.hpp"
#include "core/high_load.hpp"
#include "core/hitting_set.hpp"
#include "core/low_load.hpp"
#include "problems/min_disk.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"
#include "workloads/disk_data.hpp"
#include "workloads/hs_data.hpp"

namespace lpt {
namespace {

using problems::MinDisk;
using workloads::DiskDataset;

double engine_run(std::uint64_t seed) {
  MinDisk p;
  util::Rng data_rng(seed);
  const std::size_t n = 128;
  const auto pts =
      workloads::generate_disk_dataset(DiskDataset::kTripleDisk, n, data_rng);
  core::LowLoadConfig cfg;
  cfg.seed = seed;
  const auto res = core::run_low_load(p, pts, n, cfg);
  return static_cast<double>(res.stats.rounds_to_first) +
         1e-9 * static_cast<double>(res.stats.total_push_ops);
}

TEST(ParallelAverageRuns, BitIdenticalAcrossThreadCounts) {
  const std::size_t reps = 8;
  const auto serial = bench::average_runs(reps, engine_run, 1, 1);
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}, hw}) {
    const auto par = bench::average_runs(reps, engine_run, 1, threads);
    EXPECT_EQ(serial.count(), par.count()) << threads << " threads";
    EXPECT_EQ(serial.mean(), par.mean()) << threads << " threads";
    EXPECT_EQ(serial.min(), par.min()) << threads << " threads";
    EXPECT_EQ(serial.max(), par.max()) << threads << " threads";
    EXPECT_EQ(serial.stddev(), par.stddev()) << threads << " threads";
  }
}

// The thm3 bench kernel: low-load run folding rounds, work, and load into
// one value so any divergence across thread counts trips the comparison.
double thm3_kernel(std::uint64_t seed) {
  MinDisk p;
  util::Rng data_rng(seed * 101 + 7);
  const std::size_t n = 128;
  const auto pts =
      workloads::generate_disk_dataset(DiskDataset::kTripleDisk, n, data_rng);
  core::LowLoadConfig cfg;
  cfg.seed = seed;
  const auto res = core::run_low_load(p, pts, n, cfg);
  return static_cast<double>(res.stats.rounds_to_first) +
         1e-3 * res.stats.max_work_per_round +
         1e-9 * static_cast<double>(res.stats.max_total_elements);
}

// The thm4 bench kernel: accelerated high-load (C = 4 basis copies).
double thm4_kernel(std::uint64_t seed) {
  MinDisk p;
  util::Rng data_rng(seed * 131 + 7);
  const std::size_t n = 128;
  const auto pts =
      workloads::generate_disk_dataset(DiskDataset::kTripleDisk, n, data_rng);
  core::HighLoadConfig cfg;
  cfg.seed = seed;
  cfg.push_copies = 4;
  const auto res = core::run_high_load(p, pts, n, cfg);
  return static_cast<double>(res.stats.rounds_to_first) +
         1e-3 * res.stats.max_work_per_round +
         1e-9 * static_cast<double>(res.stats.total_push_ops);
}

// The thm5 bench kernel: planted hitting set, rounds + answer size.
double thm5_kernel(std::uint64_t seed) {
  util::Rng data_rng(seed * 17 + 3);
  const std::size_t n = 128;
  const auto inst =
      workloads::generate_planted_hitting_set(n, 32, 2, 2, data_rng);
  problems::HittingSetProblem p(inst.system);
  core::HittingSetConfig cfg;
  cfg.seed = seed;
  cfg.hitting_set_size = 2;
  const auto res = core::run_hitting_set(p, n, cfg);
  return static_cast<double>(res.stats.rounds_to_first) +
         1e-3 * static_cast<double>(res.hitting_set.size()) +
         1e-9 * static_cast<double>(res.stats.total_push_ops);
}

// The newly threaded thm3/thm4/thm5 bench kernels must give bit-identical
// sweep statistics for any --threads value.
TEST(ParallelAverageRuns, ThmKernelsBitIdenticalAcrossThreadCounts) {
  struct Kernel {
    const char* name;
    double (*run)(std::uint64_t);
  };
  const Kernel kernels[] = {
      {"thm3", thm3_kernel}, {"thm4", thm4_kernel}, {"thm5", thm5_kernel}};
  const std::size_t reps = 6;
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (const auto& kernel : kernels) {
    const auto serial = bench::average_runs(reps, kernel.run, 1, 1);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}, hw}) {
      const auto par = bench::average_runs(reps, kernel.run, 1, threads);
      EXPECT_EQ(serial.count(), par.count())
          << kernel.name << " @ " << threads << " threads";
      EXPECT_EQ(serial.mean(), par.mean())
          << kernel.name << " @ " << threads << " threads";
      EXPECT_EQ(serial.min(), par.min())
          << kernel.name << " @ " << threads << " threads";
      EXPECT_EQ(serial.max(), par.max())
          << kernel.name << " @ " << threads << " threads";
      EXPECT_EQ(serial.stddev(), par.stddev())
          << kernel.name << " @ " << threads << " threads";
    }
  }
}

TEST(ParallelAverageRuns, IndexedVariantSeesStableRepIndices) {
  const std::size_t reps = 6;
  std::vector<double> seeds_seen(reps, 0.0);
  const auto stat = bench::average_runs_indexed(
      reps,
      [&](std::size_t rep, std::uint64_t seed) {
        seeds_seen[rep] = static_cast<double>(seed);
        return static_cast<double>(seed % 101);
      },
      1, 4);
  EXPECT_EQ(stat.count(), reps);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    EXPECT_EQ(seeds_seen[rep], static_cast<double>(1 + rep * 7919));
  }
}

TEST(ParallelNodes, LowLoadBitIdenticalToSerial) {
  MinDisk p;
  const std::size_t n = 256;
  const auto pts = testsupport::golden_disk_points(DiskDataset::kHull, n);

  core::LowLoadConfig serial_cfg;
  serial_cfg.seed = 33;
  const auto serial = core::run_low_load(p, pts, n, serial_cfg);

  for (const std::size_t threads : {2, 4, 8}) {
    core::LowLoadConfig cfg;
    cfg.seed = 33;
    cfg.parallel_nodes = threads;
    const auto par = core::run_low_load(p, pts, n, cfg);
    EXPECT_EQ(serial.solution.basis, par.solution.basis) << threads;
    EXPECT_EQ(serial.solution.disk, par.solution.disk) << threads;
    EXPECT_EQ(serial.stats.rounds_to_first, par.stats.rounds_to_first);
    EXPECT_EQ(serial.stats.total_push_ops, par.stats.total_push_ops);
    EXPECT_EQ(serial.stats.total_pull_ops, par.stats.total_pull_ops);
    EXPECT_EQ(serial.stats.total_bytes, par.stats.total_bytes);
    EXPECT_EQ(serial.stats.max_total_elements, par.stats.max_total_elements);
    EXPECT_EQ(serial.stats.max_work_per_round, par.stats.max_work_per_round);
    EXPECT_EQ(serial.stats.sampling_attempts, par.stats.sampling_attempts);
  }
}

TEST(ParallelNodes, LowLoadBitIdenticalUnderFaults) {
  MinDisk p;
  const std::size_t n = 256;
  const auto pts =
      testsupport::golden_disk_points(DiskDataset::kTripleDisk, n);

  core::LowLoadConfig serial_cfg;
  serial_cfg.seed = 44;
  serial_cfg.faults.push_loss = 0.2;
  serial_cfg.faults.sleep_probability = 0.1;
  const auto serial = core::run_low_load(p, pts, n, serial_cfg);

  core::LowLoadConfig cfg = serial_cfg;
  cfg.parallel_nodes = 4;
  const auto par = core::run_low_load(p, pts, n, cfg);
  EXPECT_EQ(serial.stats.rounds_to_first, par.stats.rounds_to_first);
  EXPECT_EQ(serial.stats.total_push_ops, par.stats.total_push_ops);
  EXPECT_EQ(serial.stats.total_bytes, par.stats.total_bytes);
}

TEST(ParallelNodes, HighLoadBitIdenticalToSerial) {
  MinDisk p;
  const std::size_t n = 256;
  const auto pts = testsupport::golden_disk_points(DiskDataset::kTriangle, n);

  core::HighLoadConfig serial_cfg;
  serial_cfg.seed = 55;
  const auto serial = core::run_high_load(p, pts, n, serial_cfg);

  for (const std::size_t threads : {2, 4}) {
    core::HighLoadConfig cfg;
    cfg.seed = 55;
    cfg.parallel_nodes = threads;
    const auto par = core::run_high_load(p, pts, n, cfg);
    EXPECT_EQ(serial.solution.basis, par.solution.basis) << threads;
    EXPECT_EQ(serial.stats.rounds_to_first, par.stats.rounds_to_first);
    EXPECT_EQ(serial.stats.total_push_ops, par.stats.total_push_ops);
    EXPECT_EQ(serial.stats.total_bytes, par.stats.total_bytes);
    EXPECT_EQ(serial.stats.max_total_elements, par.stats.max_total_elements);
    EXPECT_EQ(serial.extras.max_single_w, par.extras.max_single_w);
    EXPECT_EQ(serial.extras.max_local_elements, par.extras.max_local_elements);
  }
}

TEST(ParallelNodes, HittingSetBitIdenticalToSerial) {
  util::Rng data_rng(19);
  const std::size_t n = 256;
  const auto inst =
      workloads::generate_planted_hitting_set(n, 64, 2, 2, data_rng);
  problems::HittingSetProblem p(inst.system);

  core::HittingSetConfig serial_cfg;
  serial_cfg.seed = 77;
  serial_cfg.hitting_set_size = 2;
  const auto serial = core::run_hitting_set(p, n, serial_cfg);
  ASSERT_TRUE(serial.valid);

  for (const std::size_t threads : {2, 4, 8}) {
    core::HittingSetConfig cfg = serial_cfg;
    cfg.parallel_nodes = threads;
    const auto par = core::run_hitting_set(p, n, cfg);
    EXPECT_EQ(serial.hitting_set, par.hitting_set) << threads;
    EXPECT_EQ(serial.d_used, par.d_used) << threads;
    EXPECT_EQ(serial.sample_size, par.sample_size) << threads;
    EXPECT_EQ(serial.stats.rounds_to_first, par.stats.rounds_to_first);
    EXPECT_EQ(serial.stats.total_push_ops, par.stats.total_push_ops);
    EXPECT_EQ(serial.stats.total_pull_ops, par.stats.total_pull_ops);
    EXPECT_EQ(serial.stats.total_bytes, par.stats.total_bytes);
    EXPECT_EQ(serial.stats.max_total_elements, par.stats.max_total_elements);
    EXPECT_EQ(serial.stats.sampling_attempts, par.stats.sampling_attempts);
    EXPECT_EQ(serial.stats.sampling_failures, par.stats.sampling_failures);
  }
}

TEST(ParallelNodes, HittingSetBitIdenticalUnderFaults) {
  util::Rng data_rng(23);
  const std::size_t n = 128;
  const auto inst =
      workloads::generate_planted_hitting_set(n, 32, 2, 2, data_rng);
  problems::HittingSetProblem p(inst.system);

  core::HittingSetConfig serial_cfg;
  serial_cfg.seed = 88;
  serial_cfg.hitting_set_size = 2;
  serial_cfg.faults.push_loss = 0.2;
  serial_cfg.faults.response_loss = 0.1;
  serial_cfg.faults.sleep_probability = 0.1;
  const auto serial = core::run_hitting_set(p, n, serial_cfg);
  ASSERT_TRUE(serial.valid);

  core::HittingSetConfig cfg = serial_cfg;
  cfg.parallel_nodes = 4;
  const auto par = core::run_hitting_set(p, n, cfg);
  EXPECT_EQ(serial.hitting_set, par.hitting_set);
  EXPECT_EQ(serial.stats.rounds_to_first, par.stats.rounds_to_first);
  EXPECT_EQ(serial.stats.total_push_ops, par.stats.total_push_ops);
  EXPECT_EQ(serial.stats.total_bytes, par.stats.total_bytes);
}

// ---------------------------------------------------------------------
// Sparse-bookkeeping (large-n engine) contract: the non-compute loops must
// cost O(active), not O(n).  The pre-slab engines paid a fixed >= 4n node
// touches per round (stage-B scan, delivery walks over all n, filter walk,
// store-header walk); the counters below are what replaced that.
// ---------------------------------------------------------------------

TEST(SparseBookkeeping, HighLoadEarlyRoundsTouchOnlyOccupiedNodes) {
  // 256 elements on 16384 nodes: in round 1 only ~256 nodes are occupied,
  // so the bookkeeping walks (basis push, violator push, delivery) must
  // touch O(occupied) nodes — three orders below the old 4n floor.
  MinDisk p;
  const std::size_t n = 16384;
  const std::size_t m = 256;
  util::Rng data_rng(7);
  const auto pts =
      workloads::generate_disk_dataset(DiskDataset::kTripleDisk, m, data_rng);
  core::HighLoadConfig cfg;
  cfg.seed = 5;
  cfg.max_rounds = 1;  // probe exactly the sparsest round
  const auto res = core::run_high_load(p, pts, n, cfg);
  EXPECT_GT(res.stats.last_round_bookkeeping_touches, 0u);
  EXPECT_LT(res.stats.last_round_bookkeeping_touches, 4 * m);
  EXPECT_LT(res.stats.last_round_bookkeeping_touches, n / 8);
}

TEST(SparseBookkeeping, HighLoadTotalTracksElementSpreadNotRoundsTimesN) {
  // Across a whole sparse-start run, summed bookkeeping must be o(rounds *
  // n): occupancy grows geometrically, so the early rounds are nearly
  // free.  (Measured ~0.4 * rounds * n at convergence for this instance;
  // the pre-slab engines paid >= 4 * rounds * n.)
  MinDisk p;
  const std::size_t n = 16384;
  util::Rng data_rng(7);
  const auto pts =
      workloads::generate_disk_dataset(DiskDataset::kTripleDisk, 256, data_rng);
  core::HighLoadConfig cfg;
  cfg.seed = 5;
  const auto res = core::run_high_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  ASSERT_GT(res.stats.rounds_to_first, 10u);  // long sparse growth phase
  EXPECT_LT(res.stats.bookkeeping_touches_total,
            static_cast<std::uint64_t>(res.stats.rounds_to_first) * n);
}

TEST(SparseBookkeeping, LowLoadSteadyStateStaysBelowTheOldPerRoundFloor) {
  // Long past convergence (min_rounds) the low-load engine sits in a
  // steady state where the bookkeeping is proportional to the active sets
  // (W_i pushers + receivers + copy holders + the long-empty pull list).
  // That lands well under the old fixed 4n-per-round floor even though
  // every node still samples (which is inherent algorithm work, excluded).
  MinDisk p;
  const std::size_t n = 4096;
  util::Rng data_rng(7);
  const auto pts =
      workloads::generate_disk_dataset(DiskDataset::kDuoDisk, n, data_rng);
  core::LowLoadConfig cfg;
  cfg.seed = 5;
  cfg.min_rounds = 40;
  const auto res = core::run_low_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_GT(res.stats.last_round_bookkeeping_touches, 0u);
  EXPECT_LT(res.stats.last_round_bookkeeping_touches, 2 * n);
  EXPECT_LT(res.stats.bookkeeping_touches_total,
            static_cast<std::uint64_t>(40) * 2 * n);
}

TEST(ParallelNodes, BookkeepingCountersBitIdenticalAcrossThreadCounts) {
  // The sparse-tracking paths (chunked stage-B collection, receiver walks,
  // holder-list filtering) must not only preserve results but report the
  // same bookkeeping for any parallel_nodes value — the counters are part
  // of the determinism contract.
  MinDisk p;
  const std::size_t n = 512;
  const auto pts = testsupport::golden_disk_points(DiskDataset::kHull, n);
  core::LowLoadConfig serial_cfg;
  serial_cfg.seed = 91;
  serial_cfg.min_rounds = 12;  // include quiescent late rounds
  const auto serial = core::run_low_load(p, pts, n, serial_cfg);
  for (const std::size_t threads : {2, 4, 8}) {
    core::LowLoadConfig cfg = serial_cfg;
    cfg.parallel_nodes = threads;
    const auto par = core::run_low_load(p, pts, n, cfg);
    EXPECT_EQ(serial.stats.rounds_to_first, par.stats.rounds_to_first);
    EXPECT_EQ(serial.stats.total_push_ops, par.stats.total_push_ops);
    EXPECT_EQ(serial.stats.total_bytes, par.stats.total_bytes);
    EXPECT_EQ(serial.stats.bookkeeping_touches_total,
              par.stats.bookkeeping_touches_total)
        << threads;
    EXPECT_EQ(serial.stats.last_round_bookkeeping_touches,
              par.stats.last_round_bookkeeping_touches)
        << threads;
  }
  // Same contract for the hitting-set engine's chunked stage B.
  util::Rng data_rng(19);
  const auto inst =
      workloads::generate_planted_hitting_set(256, 64, 2, 2, data_rng);
  problems::HittingSetProblem hs(inst.system);
  core::HittingSetConfig hs_serial;
  hs_serial.seed = 77;
  hs_serial.hitting_set_size = 2;
  const auto hs_ref = core::run_hitting_set(hs, 256, hs_serial);
  for (const std::size_t threads : {2, 8}) {
    core::HittingSetConfig cfg = hs_serial;
    cfg.parallel_nodes = threads;
    const auto par = core::run_hitting_set(hs, 256, cfg);
    EXPECT_EQ(hs_ref.stats.bookkeeping_touches_total,
              par.stats.bookkeeping_touches_total)
        << threads;
    EXPECT_EQ(hs_ref.stats.last_round_bookkeeping_touches,
              par.stats.last_round_bookkeeping_touches)
        << threads;
  }
}

TEST(ParallelNodes, TerminationProtocolStaysCorrect) {
  MinDisk p;
  const std::size_t n = 128;
  const auto pts = testsupport::golden_disk_points(DiskDataset::kDuoDisk, n);
  core::LowLoadConfig cfg;
  cfg.seed = 66;
  cfg.run_termination = true;
  cfg.parallel_nodes = 4;
  const auto res = core::run_low_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_TRUE(res.stats.all_outputs_correct);
}

}  // namespace
}  // namespace lpt
