// Tests for the Algorithm 3 termination-detection protocol (Lemma 12):
// correct candidates spread to all nodes and are output after maturity;
// invalid candidates are suppressed; outputs never disagree with f(H).
#include <gtest/gtest.h>

#include "core/termination.hpp"
#include "problems/min_disk.hpp"
#include "util/rng.hpp"
#include "workloads/disk_data.hpp"

namespace lpt {
namespace {

using core::TerminationProtocol;
using problems::MinDisk;

struct Fixture {
  std::size_t n;
  MinDisk p;
  std::vector<geom::Vec2> points;
  std::vector<std::vector<geom::Vec2>> local;  // per-node element views
  MinDisk::Solution oracle;

  Fixture(std::size_t n_nodes, std::size_t n_points, std::uint64_t seed)
      : n(n_nodes), local(n_nodes) {
    util::Rng rng(seed);
    points = workloads::generate_disk_dataset(
        workloads::DiskDataset::kTripleDisk, n_points, rng);
    for (const auto& pt : points) local[rng.below(n)].push_back(pt);
    oracle = p.solve(points);
  }

  std::span<const geom::Vec2> view(gossip::NodeId v) const {
    return {local[v].data(), local[v].size()};
  }
};

TEST(Termination, OptimalCandidateReachesAllNodes) {
  Fixture f(64, 256, 1);
  gossip::Network net(f.n, util::Rng(7));
  const std::size_t maturity = 16;
  TerminationProtocol<MinDisk> term(f.p, net, maturity);

  term.inject(0, 1, f.oracle);
  std::uint32_t t = 1;
  for (; t < 200 && !term.all_output(); ++t) {
    net.begin_round();
    term.round(t, [&](gossip::NodeId v) { return f.view(v); });
  }
  ASSERT_TRUE(term.all_output());
  for (gossip::NodeId v = 0; v < f.n; ++v) {
    ASSERT_TRUE(term.output(v).has_value());
    EXPECT_TRUE(f.p.same_value(*term.output(v), f.oracle));
  }
  // All outputs should land within O(log n) + maturity rounds.
  EXPECT_LE(t, maturity + 40);
}

TEST(Termination, SuboptimalCandidateIsSuppressed) {
  Fixture f(64, 256, 2);
  gossip::Network net(f.n, util::Rng(8));
  TerminationProtocol<MinDisk> term(f.p, net, 16);

  // Inject a candidate computed from a strict subset missing the basis:
  // some node holds a violator, so the entry must be invalidated.
  std::vector<geom::Vec2> subset(f.points.begin() + 3, f.points.begin() + 40);
  const auto bad = f.p.solve(subset);
  ASSERT_FALSE(f.p.same_value(bad, f.oracle));
  term.inject(5, 1, bad);
  for (std::uint32_t t = 1; t < 120; ++t) {
    net.begin_round();
    term.round(t, [&](gossip::NodeId v) { return f.view(v); });
  }
  // No node may ever output the bad value (Lemma 12's safety direction).
  for (gossip::NodeId v = 0; v < f.n; ++v) {
    if (term.output(v).has_value()) {
      EXPECT_TRUE(f.p.same_value(*term.output(v), f.oracle));
    }
  }
  EXPECT_EQ(term.output_count(), 0u);
}

TEST(Termination, BestCandidatePerStampWins) {
  Fixture f(32, 128, 3);
  gossip::Network net(f.n, util::Rng(9));
  TerminationProtocol<MinDisk> term(f.p, net, 12);

  // Two candidates at the same stamp: the suboptimal one must lose the
  // merge everywhere and the optimal one must be output.
  std::vector<geom::Vec2> subset(f.points.begin(), f.points.begin() + 10);
  const auto weak = f.p.solve(subset);
  term.inject(3, 1, weak);
  term.inject(4, 1, f.oracle);
  std::uint32_t t = 1;
  for (; t < 200 && !term.all_output(); ++t) {
    net.begin_round();
    term.round(t, [&](gossip::NodeId v) { return f.view(v); });
  }
  ASSERT_TRUE(term.all_output());
  for (gossip::NodeId v = 0; v < f.n; ++v) {
    EXPECT_TRUE(f.p.same_value(*term.output(v), f.oracle));
  }
}

TEST(Termination, WorkPerRoundIsLogarithmic) {
  Fixture f(128, 512, 4);
  gossip::Network net(f.n, util::Rng(10));
  const std::size_t maturity = 2 * 8;  // 2 log2(128) + margin
  TerminationProtocol<MinDisk> term(f.p, net, maturity);
  term.inject(0, 1, f.oracle);
  for (std::uint32_t t = 1; t < 120 && !term.all_output(); ++t) {
    net.begin_round();
    term.round(t, [&](gossip::NodeId v) { return f.view(v); });
  }
  net.meter().finish();
  // Each node pushes at most one copy of each live entry per round, and at
  // most maturity entries are live: work = O(log n).
  EXPECT_LE(net.meter().max_work_per_round(), maturity + 4);
}

TEST(Termination, MultipleInjectionsOverTimeStillConverge) {
  Fixture f(64, 300, 5);
  gossip::Network net(f.n, util::Rng(11));
  TerminationProtocol<MinDisk> term(f.p, net, 14);
  // A fresh (t, B, 1) injection every round from different nodes, like the
  // real engines do once samples start spanning the optimum.
  std::uint32_t t = 1;
  for (; t < 300 && !term.all_output(); ++t) {
    net.begin_round();
    if (t <= 20) {
      term.inject(t % f.n, t, f.oracle);
    }
    term.round(t, [&](gossip::NodeId v) { return f.view(v); });
  }
  ASSERT_TRUE(term.all_output());
  for (gossip::NodeId v = 0; v < f.n; ++v) {
    EXPECT_TRUE(f.p.same_value(*term.output(v), f.oracle));
  }
}

TEST(Termination, SingleNodeNetwork) {
  Fixture f(1, 16, 6);
  gossip::Network net(1, util::Rng(12));
  TerminationProtocol<MinDisk> term(f.p, net, 4);
  term.inject(0, 1, f.oracle);
  for (std::uint32_t t = 1; t < 20 && !term.all_output(); ++t) {
    net.begin_round();
    term.round(t, [&](gossip::NodeId v) { return f.view(v); });
  }
  ASSERT_TRUE(term.all_output());
  EXPECT_TRUE(f.p.same_value(*term.output(0), f.oracle));
}

}  // namespace
}  // namespace lpt
