// Tests for the workload generators: the Figure 1 datasets must have the
// documented optimal-basis structure, LP instances the planted optimum,
// and set systems the planted minimum hitting set / cover.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geometry/welzl.hpp"
#include "problems/hitting_set_problem.hpp"
#include "problems/min_disk.hpp"
#include "support/test_support.hpp"
#include "problems/set_cover.hpp"
#include "util/rng.hpp"
#include "workloads/disk_data.hpp"
#include "workloads/hs_data.hpp"
#include "workloads/lp_data.hpp"

namespace lpt {
namespace {

using workloads::DiskDataset;

TEST(DiskData, Names) {
  EXPECT_EQ(workloads::dataset_name(DiskDataset::kDuoDisk), "duo-disk");
  EXPECT_EQ(workloads::dataset_name(DiskDataset::kTripleDisk), "triple-disk");
  EXPECT_EQ(workloads::dataset_name(DiskDataset::kTriangle), "triangle");
  EXPECT_EQ(workloads::dataset_name(DiskDataset::kHull), "hull");
}

class DiskDataProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DiskDataProperty, RightSizeAndBounded) {
  const auto [dataset_idx, seed] = GetParam();
  const auto dataset = workloads::kAllDiskDatasets[dataset_idx];
  util::Rng rng(seed);
  for (std::size_t n : {1ul, 2ul, 3ul, 10ul, 500ul}) {
    const auto pts = workloads::generate_disk_dataset(dataset, n, rng);
    ASSERT_EQ(pts.size(), n);
    for (const auto& pt : pts) {
      EXPECT_LE(geom::norm(pt), 2.0);  // all datasets live near the unit disk
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DiskDataProperty,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(1, 4)));

TEST(DiskData, DuoDiskBasisHasSizeTwo) {
  problems::MinDisk p;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kDuoDisk, 500, 1);
  const auto sol = p.solve(pts);
  EXPECT_EQ(sol.basis.size(), 2u);
  EXPECT_NEAR(sol.disk.radius, 1.0, 1e-9);
}

TEST(DiskData, TripleDiskBasisHasSizeThree) {
  problems::MinDisk p;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, 500, 2);
  const auto sol = p.solve(pts);
  EXPECT_EQ(sol.basis.size(), 3u);
  EXPECT_NEAR(sol.disk.radius, 1.0, 1e-9);
}

TEST(DiskData, TriangleSamplesInsideTriangle) {
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTriangle, 400, 3);
  const geom::Vec2 a{-1.0, -0.7}, b{1.0, -0.7}, c{0.0, 1.1};
  for (const auto& q : pts) {
    EXPECT_GE(geom::orient(a, b, q), -1e-9);
    EXPECT_GE(geom::orient(b, c, q), -1e-9);
    EXPECT_GE(geom::orient(c, a, q), -1e-9);
  }
}

TEST(DiskData, HullPointsNearUnitCircle) {
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kHull, 256, 4);
  for (const auto& q : pts) {
    EXPECT_NEAR(geom::norm(q), 1.0, 5e-3);
  }
}

TEST(DiskData, DatasetBasisSizesAsDocumented) {
  EXPECT_EQ(workloads::dataset_basis_size(DiskDataset::kDuoDisk), 2u);
  EXPECT_EQ(workloads::dataset_basis_size(DiskDataset::kTripleDisk), 3u);
  EXPECT_EQ(workloads::dataset_basis_size(DiskDataset::kTriangle), 3u);
  EXPECT_EQ(workloads::dataset_basis_size(DiskDataset::kHull), 3u);
}

class LpDataProperty : public ::testing::TestWithParam<int> {};

TEST_P(LpDataProperty, PlantedOptimumIsFeasibleAndTight) {
  util::Rng rng(GetParam());
  const auto inst = workloads::generate_lp_instance(40, rng);
  ASSERT_EQ(inst.constraints.size(), 40u);
  int binding = 0;
  for (const auto& h : inst.constraints) {
    EXPECT_TRUE(h.satisfied(inst.optimum, 1e-9));
    if (std::abs(h.b - geom::dot(h.a, inst.optimum)) < 1e-9) ++binding;
  }
  EXPECT_EQ(binding, 2);  // exactly the two V constraints bind
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpDataProperty, ::testing::Range(1, 11));

class PlantedHsGenerator : public ::testing::TestWithParam<int> {};

TEST_P(PlantedHsGenerator, StructureIsCorrect) {
  util::Rng rng(GetParam());
  const std::size_t d = 1 + rng.below(4);
  const auto inst =
      workloads::generate_planted_hitting_set(200, 40, d, 5, rng);
  ASSERT_EQ(inst.planted.size(), d);
  ASSERT_EQ(inst.system->set_count(), 40u);
  problems::HittingSetProblem p(inst.system);
  EXPECT_TRUE(p.is_hitting_set(inst.planted));
  // The first d sets are pairwise disjoint.
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) {
      for (auto x : inst.system->set(i)) {
        const auto& sj = inst.system->set(j);
        EXPECT_EQ(std::find(sj.begin(), sj.end(), x), sj.end());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlantedHsGenerator, ::testing::Range(1, 11));

TEST(IntervalRanges, IntervalsAreContiguous) {
  util::Rng rng(5);
  const auto sys = workloads::generate_interval_ranges(100, 20, 5, 30, rng);
  ASSERT_EQ(sys->set_count(), 20u);
  for (std::size_t j = 0; j < sys->set_count(); ++j) {
    const auto& s = sys->set(j);
    ASSERT_GE(s.size(), 5u);
    ASSERT_LE(s.size(), 30u);
    for (std::size_t k = 1; k < s.size(); ++k) {
      EXPECT_EQ(s[k], s[k - 1] + 1);
    }
  }
}

TEST(PlantedCover, SentinelsForceExactCover) {
  util::Rng rng(6);
  const auto inst = workloads::generate_planted_set_cover(120, 20, 5, rng);
  EXPECT_EQ(inst.planted_cover.size(), 5u);
  EXPECT_TRUE(problems::is_set_cover(*inst.instance, inst.planted_cover));
  // Removing any planted set breaks the cover (sentinels are unique).
  for (std::size_t skip = 0; skip < 5; ++skip) {
    std::vector<std::uint32_t> partial;
    for (auto j : inst.planted_cover) {
      if (j != skip) partial.push_back(j);
    }
    EXPECT_FALSE(problems::is_set_cover(*inst.instance, partial));
  }
}

}  // namespace
}  // namespace lpt
