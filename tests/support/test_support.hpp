// Shared test fixtures: deterministic RNG seeding, golden dataset loaders,
// and tolerance-aware geometry assertions.  Every suite that needs seeded
// randomness or canonical instances should pull them from here instead of
// re-rolling its own setup, so golden values stay pinned in one place.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>
#include <vector>

#include "geometry/vec2.hpp"
#include "util/rng.hpp"
#include "workloads/disk_data.hpp"

namespace lpt::testsupport {

/// The one seed golden values are pinned against.  Tests that compare
/// against recorded constants must use this (directly or via golden_rng).
inline constexpr std::uint64_t kGoldenSeed = 0x5eed0001u;

/// Fresh RNG at the golden seed.
inline util::Rng golden_rng() { return util::Rng(kGoldenSeed); }

/// Deterministic per-test RNG: hashes the tag (typically the test name) so
/// suites get independent but reproducible streams without coordinating
/// seed constants.
util::Rng seeded_rng(std::string_view tag);

/// Canonical instance of a paper dataset: n points generated at the golden
/// seed.  Identical across suites, platforms, and runs.
std::vector<geom::Vec2> golden_disk_points(workloads::DiskDataset d,
                                           std::size_t n);

/// Golden optimum radius of the minimum enclosing disk for
/// golden_disk_points(d, n), computed once by the (exact, sequential)
/// Welzl solver.  Loader, not a table: stays correct for any (d, n).
double golden_min_disk_radius(workloads::DiskDataset d, std::size_t n);

/// A generated min-disk instance at an explicit seed.  The points are
/// produced exactly as `util::Rng rng(seed); generate_disk_dataset(d, n,
/// rng)` would, so suites migrating onto this helper keep their historical
/// instances bit-identical.  (Need the exact optimum too?  Run
/// `geom::min_disk` on the result — eagerly solving here would tax every
/// caller that only wants the points.)
std::vector<geom::Vec2> make_disk_points(workloads::DiskDataset d,
                                         std::size_t n, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Tolerance-aware geometry matchers (EXPECT_PRED_FORMAT-style).
//
//   EXPECT_VEC2_NEAR(a, b, 1e-9);
//   EXPECT_PRED_FORMAT3(testsupport::AssertVec2Near, a, b, 1e-9);
// ---------------------------------------------------------------------------

testing::AssertionResult AssertVec2Near(const char* a_expr, const char* b_expr,
                                        const char* tol_expr, geom::Vec2 a,
                                        geom::Vec2 b, double tol);

/// Relative-tolerance scalar comparison: |a-b| <= tol * max(1, |a|, |b|).
testing::AssertionResult AssertRelNear(const char* a_expr, const char* b_expr,
                                       const char* tol_expr, double a, double b,
                                       double tol);

/// All points inside (or on) the disk centered at c with radius r, up to tol.
testing::AssertionResult AssertAllInsideDisk(
    const char* pts_expr, const char* c_expr, const char* r_expr,
    const char* tol_expr, const std::vector<geom::Vec2>& pts, geom::Vec2 c,
    double r, double tol);

/// Every basis point lies *on* the disk boundary (|dist(c, b) - r| <= tol)
/// and the basis is non-empty with at most 3 points — the minimum
/// enclosing disk's support-set invariant.  The distributed engines must
/// return bases with this property no matter the schedule.
testing::AssertionResult AssertBasisOnBoundary(
    const char* basis_expr, const char* c_expr, const char* r_expr,
    const char* tol_expr, const std::vector<geom::Vec2>& basis, geom::Vec2 c,
    double r, double tol);

/// Round-count envelope: 1 <= rounds <= cap, where the caller computes
/// cap = c * (ceil_log2(n) + 2) — the Θ(log n) guarantee the stress
/// matrix pins instead of golden round counts.
testing::AssertionResult AssertRoundEnvelope(const char* rounds_expr,
                                             const char* cap_expr,
                                             std::size_t rounds,
                                             std::size_t cap);

#define EXPECT_VEC2_NEAR(a, b, tol) \
  EXPECT_PRED_FORMAT3(::lpt::testsupport::AssertVec2Near, a, b, tol)
#define EXPECT_REL_NEAR(a, b, tol) \
  EXPECT_PRED_FORMAT3(::lpt::testsupport::AssertRelNear, a, b, tol)
#define EXPECT_ALL_INSIDE_DISK(pts, c, r, tol) \
  EXPECT_PRED_FORMAT4(::lpt::testsupport::AssertAllInsideDisk, pts, c, r, tol)
#define EXPECT_BASIS_ON_BOUNDARY(basis, c, r, tol)                          \
  EXPECT_PRED_FORMAT4(::lpt::testsupport::AssertBasisOnBoundary, basis, c, \
                      r, tol)
#define EXPECT_ROUND_ENVELOPE(rounds, cap) \
  EXPECT_PRED_FORMAT2(::lpt::testsupport::AssertRoundEnvelope, rounds, cap)

}  // namespace lpt::testsupport
