#include "support/test_support.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "geometry/welzl.hpp"

namespace lpt::testsupport {

util::Rng seeded_rng(std::string_view tag) {
  // FNV-1a over the tag, folded into the golden seed so different tags give
  // independent streams but everything stays reproducible.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ kGoldenSeed;
  for (const char c : tag) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return util::Rng(h);
}

std::vector<geom::Vec2> golden_disk_points(workloads::DiskDataset d,
                                           std::size_t n) {
  util::Rng rng(kGoldenSeed);
  return workloads::generate_disk_dataset(d, n, rng);
}

double golden_min_disk_radius(workloads::DiskDataset d, std::size_t n) {
  const auto pts = golden_disk_points(d, n);
  return geom::min_disk(pts).disk.radius;
}

std::vector<geom::Vec2> make_disk_points(workloads::DiskDataset d,
                                         std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  return workloads::generate_disk_dataset(d, n, rng);
}

testing::AssertionResult AssertVec2Near(const char* a_expr, const char* b_expr,
                                        const char* tol_expr, geom::Vec2 a,
                                        geom::Vec2 b, double tol) {
  const double d = geom::dist(a, b);
  if (d <= tol) return testing::AssertionSuccess();
  std::ostringstream os;
  os << a_expr << " = (" << a.x << ", " << a.y << ") and " << b_expr << " = ("
     << b.x << ", " << b.y << ") differ by " << d << ", which exceeds "
     << tol_expr << " = " << tol;
  return testing::AssertionFailure() << os.str();
}

testing::AssertionResult AssertRelNear(const char* a_expr, const char* b_expr,
                                       const char* tol_expr, double a, double b,
                                       double tol) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  if (std::abs(a - b) <= tol * scale) return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << a_expr << " = " << a << " and " << b_expr << " = " << b
         << " differ by " << std::abs(a - b) << ", which exceeds " << tol_expr
         << " = " << tol << " relative to scale " << scale;
}

testing::AssertionResult AssertAllInsideDisk(
    const char* pts_expr, const char* c_expr, const char* r_expr,
    const char* tol_expr, const std::vector<geom::Vec2>& pts, geom::Vec2 c,
    double r, double tol) {
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double d = geom::dist(c, pts[i]);
    if (d > r + tol) {
      return testing::AssertionFailure()
             << pts_expr << "[" << i << "] = (" << pts[i].x << ", " << pts[i].y
             << ") lies at distance " << d << " from " << c_expr
             << ", outside radius " << r_expr << " = " << r << " + " << tol_expr
             << " = " << tol;
    }
  }
  return testing::AssertionSuccess();
}

testing::AssertionResult AssertBasisOnBoundary(
    const char* basis_expr, const char* c_expr, const char* r_expr,
    const char* tol_expr, const std::vector<geom::Vec2>& basis, geom::Vec2 c,
    double r, double tol) {
  if (basis.empty() || basis.size() > 3) {
    return testing::AssertionFailure()
           << basis_expr << " has " << basis.size()
           << " points; a min-disk support set has 1 to 3";
  }
  for (std::size_t i = 0; i < basis.size(); ++i) {
    const double d = geom::dist(c, basis[i]);
    if (std::abs(d - r) > tol) {
      return testing::AssertionFailure()
             << basis_expr << "[" << i << "] = (" << basis[i].x << ", "
             << basis[i].y << ") lies at distance " << d << " from " << c_expr
             << ", off the boundary of radius " << r_expr << " = " << r
             << " by more than " << tol_expr << " = " << tol;
    }
  }
  return testing::AssertionSuccess();
}

testing::AssertionResult AssertRoundEnvelope(const char* rounds_expr,
                                             const char* cap_expr,
                                             std::size_t rounds,
                                             std::size_t cap) {
  if (rounds >= 1 && rounds <= cap) return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << rounds_expr << " = " << rounds << " is outside the round-count "
         << "envelope [1, " << cap_expr << " = " << cap
         << "] — the Theta(log n) guarantee did not hold";
}

}  // namespace lpt::testsupport
