// Tests for the fixed-dimension LP substrate (Seidel's algorithm).
#include <gtest/gtest.h>

#include <cmath>

#include "lp/seidel.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"
#include "workloads/lp_data.hpp"

namespace lpt::lp {
namespace {

TEST(Seidel, UnconstrainedGivesBoxCorner) {
  const Seidel2D s({0.0, 1.0}, 100.0);
  const auto v = s.solve(std::span<const Halfplane>{});
  EXPECT_FALSE(v.infeasible);
  EXPECT_DOUBLE_EQ(v.point.y, -100.0);
}

TEST(Seidel, SingleConstraintBinds) {
  const Seidel2D s({0.0, 1.0}, 100.0);
  // y >= 3  <=>  -y <= -3.
  const Halfplane h{{0.0, -1.0}, -3.0};
  const auto v = s.solve(std::span<const Halfplane>(&h, 1));
  EXPECT_FALSE(v.infeasible);
  EXPECT_NEAR(v.point.y, 3.0, 1e-9);
  EXPECT_NEAR(v.objective, 3.0, 1e-9);
}

TEST(Seidel, TwoConstraintVertex) {
  const Seidel2D s({0.0, 1.0}, 100.0);
  // y >= x and y >= -x: optimum at the origin.
  const Halfplane c1{{1.0, -1.0}, 0.0};
  const Halfplane c2{{-1.0, -1.0}, 0.0};
  std::vector<Halfplane> cs{c1, c2};
  const auto v = s.solve(cs);
  EXPECT_VEC2_NEAR(v.point, (geom::Vec2{0.0, 0.0}), 1e-9);
}

TEST(Seidel, InfeasibleDetected) {
  const Seidel2D s({0.0, 1.0}, 100.0);
  // y <= -1 and y >= 1.
  std::vector<Halfplane> cs{{{0.0, 1.0}, -1.0}, {{0.0, -1.0}, -1.0}};
  const auto v = s.solve(cs);
  EXPECT_TRUE(v.infeasible);
}

TEST(Seidel, DegenerateZeroNormalInfeasible) {
  const Seidel2D s({0.0, 1.0}, 100.0);
  std::vector<Halfplane> cs{{{0.0, 0.0}, -1.0}};  // 0 <= -1
  EXPECT_TRUE(s.solve(cs).infeasible);
}

TEST(Seidel, DegenerateZeroNormalTrivial) {
  const Seidel2D s({0.0, 1.0}, 100.0);
  std::vector<Halfplane> cs{{{0.0, 0.0}, 1.0}};  // 0 <= 1, always true
  EXPECT_FALSE(s.solve(cs).infeasible);
}

TEST(Seidel, CanonicalLexMinUnderTies) {
  // Objective depends only on y; the optimal edge is y = 0 for x in
  // [-2, 2]; the canonical solution must be the lex-min point (-2, 0).
  const Seidel2D s({0.0, 1.0}, 100.0);
  std::vector<Halfplane> cs{
      {{0.0, -1.0}, 0.0},   // y >= 0
      {{1.0, 0.0}, 2.0},    // x <= 2
      {{-1.0, 0.0}, 2.0},   // x >= -2
  };
  const auto v = s.solve(cs);
  EXPECT_VEC2_NEAR(v.point, (geom::Vec2{-2.0, 0.0}), 1e-9);
}

TEST(Seidel, ViolationTestMatchesDefinition) {
  const Seidel2D s({0.0, 1.0}, 100.0);
  const Halfplane base{{0.0, -1.0}, 0.0};  // y >= 0
  const auto v = s.solve(std::span<const Halfplane>(&base, 1));
  // A constraint satisfied at the optimum does not violate.
  EXPECT_FALSE(s.violates(v, {{0.0, -1.0}, 1.0}));  // y >= -1
  // A constraint cutting the optimum off violates.
  EXPECT_TRUE(s.violates(v, {{0.0, -1.0}, -1.0}));  // y >= 1
}

TEST(Seidel, BasisOfVertexHasTwoConstraints) {
  const Seidel2D s({0.0, 1.0}, 100.0);
  std::vector<Halfplane> cs{
      {{1.0, -1.0}, 0.0}, {{-1.0, -1.0}, 0.0}, {{0.0, -1.0}, -50.0}};
  const auto r = s.solve_with_basis(cs);
  EXPECT_EQ(r.basis.size(), 2u);
  // Re-solving the basis alone reproduces the optimum.
  const auto v2 = s.solve(r.basis);
  EXPECT_NEAR(v2.objective, r.value.objective, 1e-9);
}

TEST(Seidel, BasisOfInfeasibleIsSmallWitness) {
  const Seidel2D s({0.0, 1.0}, 100.0);
  std::vector<Halfplane> cs{
      {{0.0, 1.0}, -1.0},   // y <= -1
      {{0.0, -1.0}, -1.0},  // y >= 1
      {{1.0, 0.0}, 50.0},   // padding
      {{-1.0, 0.0}, 50.0},
  };
  const auto r = s.solve_with_basis(cs);
  EXPECT_TRUE(r.value.infeasible);
  EXPECT_LE(r.basis.size(), 3u);
  EXPECT_TRUE(s.solve(r.basis).infeasible);
}

TEST(LpValue, Ordering) {
  LpValue a{1.0, {0, 0}, false};
  LpValue b{2.0, {0, 0}, false};
  LpValue inf{0.0, {0, 0}, true};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < inf);
  EXPECT_FALSE(inf < a);
  EXPECT_TRUE(inf == LpValue({9.0, {1, 1}, true}));
}

class SeidelRandomInstance : public ::testing::TestWithParam<int> {};

TEST_P(SeidelRandomInstance, RecoversPlantedOptimum) {
  util::Rng rng(GetParam());
  const std::size_t n = 2 + rng.below(60);
  const auto inst = workloads::generate_lp_instance(n, rng);
  const Seidel2D s(inst.objective, 1e6);
  const auto v = s.solve(inst.constraints);
  ASSERT_FALSE(v.infeasible);
  EXPECT_NEAR(v.objective, inst.optimal_value, 1e-6);
  EXPECT_VEC2_NEAR(v.point, inst.optimum, 1e-6);
}

TEST_P(SeidelRandomInstance, SolutionIsFeasible) {
  util::Rng rng(1000 + GetParam());
  const auto inst = workloads::generate_lp_instance(2 + rng.below(60), rng);
  const Seidel2D s(inst.objective, 1e6);
  const auto v = s.solve(inst.constraints);
  for (const auto& h : inst.constraints) {
    EXPECT_TRUE(h.satisfied(v.point, 1e-7));
  }
}

TEST_P(SeidelRandomInstance, BasisReproducesOptimum) {
  util::Rng rng(2000 + GetParam());
  const auto inst = workloads::generate_lp_instance(2 + rng.below(40), rng);
  const Seidel2D s(inst.objective, 1e6);
  const auto r = s.solve_with_basis(inst.constraints);
  EXPECT_LE(r.basis.size(), 2u);
  const auto again = s.solve(r.basis);
  EXPECT_NEAR(again.objective, r.value.objective, 1e-6);
}

TEST_P(SeidelRandomInstance, OrderInvariance) {
  util::Rng rng(3000 + GetParam());
  auto inst = workloads::generate_lp_instance(2 + rng.below(40), rng);
  const Seidel2D s(inst.objective, 1e6);
  const auto v1 = s.solve(inst.constraints);
  rng.shuffle(inst.constraints);
  const auto v2 = s.solve(inst.constraints);
  EXPECT_NEAR(v1.objective, v2.objective, 1e-7);
  EXPECT_VEC2_NEAR(v1.point, v2.point, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeidelRandomInstance, ::testing::Range(1, 31));

}  // namespace
}  // namespace lpt::lp
