// The MSW basis-exchange solver (core/msw.hpp), the pull-based
// distinct-element sampler (core/sampling.hpp), and the
// set-cover-via-duality engine (core/set_cover_engine.hpp) — the whole MSW
// suite lives here (the oracle sweep moved in from test_clarkson.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/msw.hpp"
#include "core/sampling.hpp"
#include "core/set_cover_engine.hpp"
#include "geometry/welzl.hpp"
#include "problems/min_disk.hpp"
#include "support/test_support.hpp"

namespace lpt {
namespace {

using core::msw_solve;
using core::select_distinct;
using problems::MinDisk;
using workloads::DiskDataset;

// ---------------------------------------------------------------------------
// core/msw.hpp
// ---------------------------------------------------------------------------

TEST(Msw, EmptyAndTinyInputs) {
  MinDisk p;
  auto rng = testsupport::seeded_rng("msw-empty");
  const auto res0 = msw_solve(p, std::span<const geom::Vec2>{}, rng);
  EXPECT_TRUE(res0.stats.converged);
  EXPECT_TRUE(res0.solution.disk.empty());
  EXPECT_TRUE(res0.solution.basis.empty());
  const std::vector<geom::Vec2> one{{2.0, -1.0}};
  const auto res1 = msw_solve(p, one, rng);
  EXPECT_TRUE(res1.stats.converged);
  ASSERT_EQ(res1.solution.basis.size(), 1u);
  EXPECT_VEC2_NEAR(res1.solution.basis[0], one[0], 0.0);
  EXPECT_NEAR(res1.solution.disk.radius, 0.0, 1e-12);
}

class MswOnDatasets : public ::testing::TestWithParam<int> {};

TEST_P(MswOnDatasets, MatchesOracleOnAllDatasets) {
  util::Rng rng(GetParam());
  MinDisk p;
  for (auto dataset : workloads::kAllDiskDatasets) {
    const auto pts = workloads::generate_disk_dataset(dataset, 300, rng);
    const auto oracle = p.solve(pts);
    const auto res = msw_solve(p, pts, rng);
    EXPECT_TRUE(res.stats.converged);
    EXPECT_TRUE(p.same_value(res.solution, oracle))
        << workloads::dataset_name(dataset);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MswOnDatasets, ::testing::Range(1, 11));

TEST(Msw, LinearViolationTestCount) {
  util::Rng rng(7);
  MinDisk p;
  const auto pts = workloads::generate_disk_dataset(
      DiskDataset::kTriangle, 4000, rng);
  const auto res = msw_solve(p, pts, rng);
  ASSERT_TRUE(res.stats.converged);
  // Gärtner-Welzl: expected linear number of violation tests at constant d.
  EXPECT_LE(res.stats.violation_tests, 40u * pts.size());
  EXPECT_LE(res.stats.basis_computations, 500u);
}

TEST(Msw, MatchesWelzlOnAllGoldenDatasets) {
  MinDisk p;
  for (const auto d : workloads::kAllDiskDatasets) {
    const auto pts = testsupport::golden_disk_points(d, 256);
    auto rng = testsupport::seeded_rng("msw-vs-welzl");
    const auto res = msw_solve(p, pts, rng);
    EXPECT_TRUE(res.stats.converged);
    EXPECT_LE(res.solution.basis.size(), p.dimension());
    const double golden = testsupport::golden_min_disk_radius(d, 256);
    EXPECT_REL_NEAR(res.solution.disk.radius, golden, 1e-9)
        << "dataset " << workloads::dataset_name(d);
    EXPECT_ALL_INSIDE_DISK(pts, res.solution.disk.center,
                           res.solution.disk.radius, 1e-7);
  }
}

TEST(Msw, SolutionIsSeedIndependent) {
  // The optimum is unique, so different shuffle orders must agree.
  MinDisk p;
  const auto pts = testsupport::golden_disk_points(DiskDataset::kTriangle, 128);
  auto r1 = testsupport::seeded_rng("msw-seed-a");
  auto r2 = testsupport::seeded_rng("msw-seed-b");
  const auto a = msw_solve(p, pts, r1);
  const auto b = msw_solve(p, pts, r2);
  EXPECT_REL_NEAR(a.solution.disk.radius, b.solution.disk.radius, 1e-9);
  EXPECT_EQ(a.solution.basis, b.solution.basis);
}

TEST(Msw, CountsPrimitiveOperations) {
  MinDisk p;
  const auto pts = testsupport::golden_disk_points(DiskDataset::kHull, 64);
  auto rng = testsupport::seeded_rng("msw-stats");
  const auto res = msw_solve(p, pts, rng);
  // At least one violation test per element and the initial f(∅) solve.
  EXPECT_GE(res.stats.violation_tests, pts.size());
  EXPECT_GE(res.stats.basis_computations, 1u);
}

TEST(Msw, NoViolatorsRemainAfterConvergence) {
  MinDisk p;
  const auto pts = testsupport::golden_disk_points(DiskDataset::kDuoDisk, 200);
  auto rng = testsupport::seeded_rng("msw-noviol");
  const auto res = msw_solve(p, pts, rng);
  ASSERT_TRUE(res.stats.converged);
  EXPECT_EQ(core::count_violators(p, res.solution, std::span{pts}), 0u);
}

// ---------------------------------------------------------------------------
// core/sampling.hpp
// ---------------------------------------------------------------------------

TEST(Sampling, ConfigPullCountScalesWithTargetAndLogN) {
  core::SamplerConfig cfg;
  cfg.target = 54;  // 6 d^2 at d = 3
  cfg.log_n = 10;
  cfg.c = 2.0;
  EXPECT_EQ(cfg.pulls_per_node(), 2u * (54u + 10u) + 1u);
}

TEST(Sampling, SelectDistinctDeduplicatesAndCaps) {
  auto rng = testsupport::seeded_rng("sampling-dedup");
  std::vector<int> responses{5, 1, 5, 3, 1, 2, 4, 2, 5};
  const auto out = select_distinct(responses, 3, rng, /*strict=*/false);
  ASSERT_TRUE(out.success);
  ASSERT_EQ(out.sample.size(), 3u);
  std::set<int> distinct(out.sample.begin(), out.sample.end());
  EXPECT_EQ(distinct.size(), 3u);
  for (const int v : out.sample) {
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 5);
  }
}

TEST(Sampling, StrictModeFailsOnShortSample) {
  auto rng = testsupport::seeded_rng("sampling-strict");
  const auto out =
      select_distinct(std::vector<int>{1, 1, 2}, 5, rng, /*strict=*/true);
  EXPECT_FALSE(out.success);
  EXPECT_TRUE(out.sample.empty());
}

TEST(Sampling, LenientModeReturnsEverythingSeen) {
  // Small-instance behaviour of Figure 2: |H| < target just returns H.
  auto rng = testsupport::seeded_rng("sampling-lenient");
  const auto out =
      select_distinct(std::vector<int>{2, 1, 2, 1}, 5, rng, /*strict=*/false);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.sample.size(), 2u);
}

TEST(Sampling, EmptyResponsesFailEvenLenient) {
  auto rng = testsupport::seeded_rng("sampling-empty");
  const auto out = select_distinct(std::vector<int>{}, 4, rng, false);
  EXPECT_FALSE(out.success);
}

TEST(Sampling, DeterministicGivenRngState) {
  auto r1 = testsupport::seeded_rng("sampling-det");
  auto r2 = testsupport::seeded_rng("sampling-det");
  std::vector<int> responses;
  for (int i = 0; i < 50; ++i) responses.push_back(i % 20);
  const auto a = select_distinct(responses, 8, r1, false);
  const auto b = select_distinct(responses, 8, r2, false);
  EXPECT_EQ(a.sample, b.sample);
}

// ---------------------------------------------------------------------------
// core/set_cover_engine.hpp
// ---------------------------------------------------------------------------

problems::SetSystem small_cover_instance() {
  // Universe {0..5}; sets chosen so {0, 3} is a cover of size 2.
  return problems::SetSystem(
      6, {{0, 1, 2}, {1, 4}, {2, 5}, {3, 4, 5}, {0, 3}, {2}});
}

TEST(SetCoverEngine, FindsAValidCover) {
  const auto instance = small_cover_instance();
  core::HittingSetConfig cfg;
  cfg.seed = 5;
  const auto res = core::run_set_cover(instance, 64, cfg);
  ASSERT_TRUE(res.valid);
  EXPECT_TRUE(problems::is_set_cover(
      instance, std::span<const std::uint32_t>(res.cover)));
  EXPECT_FALSE(res.cover.empty());
}

TEST(SetCoverEngine, SeedDeterministic) {
  const auto instance = small_cover_instance();
  core::HittingSetConfig cfg;
  cfg.seed = 11;
  const auto a = core::run_set_cover(instance, 32, cfg);
  const auto b = core::run_set_cover(instance, 32, cfg);
  ASSERT_TRUE(a.valid);
  EXPECT_EQ(a.cover, b.cover);
  EXPECT_EQ(a.d_used, b.d_used);
  EXPECT_EQ(a.stats.rounds_to_first, b.stats.rounds_to_first);
}

TEST(SetCoverEngine, CoverSizeNearGreedyBaseline) {
  const auto instance = small_cover_instance();
  const auto greedy = problems::greedy_set_cover(instance);
  core::HittingSetConfig cfg;
  cfg.seed = 3;
  const auto res = core::run_set_cover(instance, 64, cfg);
  ASSERT_TRUE(res.valid);
  // Theorem 5 guarantees O(d log(ds)); on this toy instance that means a
  // small multiple of the greedy cover.
  EXPECT_LE(res.cover.size(), 4 * greedy.size() + 4);
}

TEST(SetCoverEngine, DualTransformRoundTrips) {
  const auto instance = small_cover_instance();
  const auto dual = problems::dual_of_set_cover(instance);
  // Dual universe = set collection; one dual set per primal element.
  EXPECT_EQ(dual->universe_size(), instance.set_count());
  EXPECT_EQ(dual->set_count(), instance.universe_size());
  // Element 5 of X lives in primal sets {2, 3}.
  EXPECT_EQ(dual->set(5), (std::vector<std::uint32_t>{2, 3}));
  // Element 2 of X lives in primal sets {0, 2, 5}.
  EXPECT_EQ(dual->set(2), (std::vector<std::uint32_t>{0, 2, 5}));
}

}  // namespace
}  // namespace lpt
