// Distributed engines on the d-dimensional smallest enclosing ball
// (combinatorial dimension D+1) and the set-cover engine wrapper —
// exercising the engines away from the paper's 2D experiments.
#include <gtest/gtest.h>

#include "core/high_load.hpp"
#include "core/low_load.hpp"
#include "core/set_cover_engine.hpp"
#include "problems/min_ball.hpp"
#include "support/test_support.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "workloads/hs_data.hpp"

namespace lpt {
namespace {

template <std::size_t D>
std::vector<geom::VecD<D>> random_cloud(std::size_t n, util::Rng& rng) {
  std::vector<geom::VecD<D>> pts(n);
  for (auto& p : pts) {
    for (std::size_t k = 0; k < D; ++k) p[k] = rng.uniform(-3.0, 3.0);
  }
  return pts;
}

class MinBallEngines : public ::testing::TestWithParam<int> {};

TEST_P(MinBallEngines, LowLoadSolves3D) {
  util::Rng rng(GetParam());
  problems::MinBall<3> p;
  const std::size_t n = 256;
  const auto pts = random_cloud<3>(n, rng);
  core::LowLoadConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(GetParam()) * 3 + 1;
  const auto res = core::run_low_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_TRUE(p.same_value(res.solution, p.solve(pts)));
  EXPECT_ROUND_ENVELOPE(res.stats.rounds_to_first,
                        10 * (util::ceil_log2(n) + 2));
}

TEST_P(MinBallEngines, HighLoadSolves3D) {
  util::Rng rng(100 + GetParam());
  problems::MinBall<3> p;
  const std::size_t n = 256;
  const auto pts = random_cloud<3>(n, rng);
  core::HighLoadConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(GetParam()) * 5 + 1;
  const auto res = core::run_high_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_TRUE(p.same_value(res.solution, p.solve(pts)));
  EXPECT_ROUND_ENVELOPE(res.stats.rounds_to_first,
                        10 * (util::ceil_log2(n) + 2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinBallEngines, ::testing::Range(1, 6));

TEST(MinBallEngines, LowLoadSolves4D) {
  util::Rng rng(7);
  problems::MinBall<4> p;
  EXPECT_EQ(p.dimension(), 5u);
  const std::size_t n = 128;
  const auto pts = random_cloud<4>(n, rng);
  core::LowLoadConfig cfg;
  cfg.seed = 11;
  const auto res = core::run_low_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_TRUE(p.same_value(res.solution, p.solve(pts)));
}

TEST(MinBallEngines, SampleSizeGrowsWithDimension) {
  // The sampler draws 6 d^2 elements: d = 4 in 3D vs d = 3 in 2D — the
  // work bound of Theorem 3 scales accordingly.
  util::Rng rng(8);
  problems::MinBall<3> p;
  const std::size_t n = 256;
  const auto pts = random_cloud<3>(n, rng);
  core::LowLoadConfig cfg;
  cfg.seed = 13;
  const auto res = core::run_low_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  const std::size_t d = p.dimension();
  EXPECT_LE(res.stats.max_work_per_round,
            4 * (6 * d * d + util::ceil_log2(n) + 1) + 64);
}

TEST(SetCoverEngine, SolvesPlantedInstance) {
  util::Rng rng(9);
  const auto inst = workloads::generate_planted_set_cover(128, 512, 3, rng);
  core::HittingSetConfig cfg;
  cfg.seed = 17;
  cfg.hitting_set_size = 3;
  const auto res = core::run_set_cover(*inst.instance, 512, cfg);
  ASSERT_TRUE(res.valid);
  EXPECT_TRUE(problems::is_set_cover(*inst.instance, res.cover));
}

TEST(SetCoverEngine, DoublingSearchWorks) {
  util::Rng rng(10);
  const auto inst = workloads::generate_planted_set_cover(96, 256, 2, rng);
  core::HittingSetConfig cfg;
  cfg.seed = 19;
  cfg.hitting_set_size = 0;  // unknown d
  const auto res = core::run_set_cover(*inst.instance, 256, cfg);
  ASSERT_TRUE(res.valid);
  EXPECT_GE(res.d_used, 1u);
}

TEST(SetCoverEngine, StatsArePopulated) {
  util::Rng rng(11);
  const auto inst = workloads::generate_planted_set_cover(64, 128, 2, rng);
  core::HittingSetConfig cfg;
  cfg.seed = 23;
  cfg.hitting_set_size = 2;
  const auto res = core::run_set_cover(*inst.instance, 128, cfg);
  ASSERT_TRUE(res.valid);
  EXPECT_GT(res.stats.total_pull_ops, 0u);
  EXPECT_GE(res.stats.rounds_to_first, 1u);
}

}  // namespace
}  // namespace lpt
