// Fault-tolerance tests for the shard runtime: structured failure
// detection at the transport layer (timeouts, EOF, truncation, oversized
// prefixes, EPIPE, waitpid causes), deterministic recovery in the harness
// (respawn and reassign both bit-identical to fault-free runs — the
// headline acceptance criterion), policy-exhaustion escalation as
// ShardError, and the service layer answering kTransientFailure while it
// keeps serving.  Faults are injected through FaultyTransport (which kills
// the real forked child / closes the real lane — nothing simulated above
// the transport) and through the harness's own kill_worker hook.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/hitting_set.hpp"
#include "core/low_load.hpp"
#include "core/result.hpp"
#include "problems/min_disk.hpp"
#include "service/service.hpp"
#include "shard/fault.hpp"
#include "shard/plan.hpp"
#include "shard/runtime.hpp"
#include "shard/transport.hpp"
#include "shard/wire.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"
#include "workloads/disk_data.hpp"
#include "workloads/hs_data.hpp"

namespace lpt {
namespace {

using problems::MinDisk;
using shard::DownCause;
using shard::FaultEvent;
using shard::FaultOp;
using shard::FaultScript;
using shard::RecoveryMode;
using shard::RecoveryPolicy;
using shard::RecvResult;
using shard::ShardError;
using shard::TransportKind;
using shard::WorkerExit;
using workloads::DiskDataset;

// ---------------------------------------------------------------------
// Transport-level detection: every stream failure is data, not an abort.
// ---------------------------------------------------------------------

TEST(ShardRecvFrame, PipeTimesOutWhenNoFrameArrives) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  shard::PipeEndpoint ep(fds[0], fds[1]);  // writer open: no EOF possible
  const RecvResult r = ep.recv_frame(50);
  EXPECT_EQ(r.status, RecvResult::Status::kTimeout);
}

TEST(ShardRecvFrame, PipeReportsCleanEofAsDown) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[1]);
  shard::PipeEndpoint ep(fds[0], -1);
  const RecvResult r = ep.recv_frame(-1);
  EXPECT_EQ(r.status, RecvResult::Status::kDown);
  EXPECT_EQ(r.cause, DownCause::kEof);
}

TEST(ShardRecvFrame, PipeReportsMidFrameTruncationAsDown) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::uint32_t len = 100;
  ASSERT_EQ(::write(fds[1], &len, sizeof len),
            static_cast<ssize_t>(sizeof len));
  const std::uint8_t partial[10] = {};
  ASSERT_EQ(::write(fds[1], partial, sizeof partial),
            static_cast<ssize_t>(sizeof partial));
  ::close(fds[1]);  // EOF arrives mid-frame
  shard::PipeEndpoint ep(fds[0], -1);
  const RecvResult r = ep.recv_frame(-1);
  EXPECT_EQ(r.status, RecvResult::Status::kDown);
  EXPECT_EQ(r.cause, DownCause::kTruncated);
}

TEST(ShardRecvFrame, PipeReportsOversizedPrefixAsDown) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::uint32_t huge = shard::kMaxFrameBytes + 1;
  ASSERT_EQ(::write(fds[1], &huge, sizeof huge),
            static_cast<ssize_t>(sizeof huge));
  shard::PipeEndpoint ep(fds[0], fds[1]);
  const RecvResult r = ep.recv_frame(-1);
  EXPECT_EQ(r.status, RecvResult::Status::kDown);
  EXPECT_EQ(r.cause, DownCause::kOversized);
}

TEST(ShardRecvFrame, PipeSendReturnsFalseOnEpipe) {
  ::signal(SIGPIPE, SIG_IGN);  // normally done by PipeTransport::spawn
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);  // the peer's read end is gone
  shard::PipeEndpoint ep(-1, fds[1]);
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  EXPECT_FALSE(ep.send(payload));
}

TEST(ShardRecvFrame, SubMillisecondDeadlineStillDeliversArrivedFrame) {
  // A frame already sitting in the pipe must be delivered even when the
  // remaining budget is under one millisecond: the deadline arithmetic
  // rounds the poll budget UP, so a sub-ms remainder polls once (and the
  // data is ready, so that poll returns immediately) instead of being
  // truncated to 0 ms and misreported as a timeout.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::uint8_t payload[4] = {9, 8, 7, 6};
  ASSERT_EQ(::write(fds[1], payload, sizeof payload),
            static_cast<ssize_t>(sizeof payload));
  std::uint8_t got[4] = {};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(400);
  const auto st = shard::detail::read_all_deadline(
      fds[0], got, sizeof got, /*has_deadline=*/true, deadline);
  EXPECT_EQ(st, shard::detail::ReadStatus::kOk);
  EXPECT_EQ(got[0], 9);
  EXPECT_EQ(got[3], 6);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ShardRecvFrame, ExpiredDeadlineWithNoDataTimesOut) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::uint8_t got[4] = {};
  const auto deadline = std::chrono::steady_clock::now() -
                        std::chrono::milliseconds(1);
  const auto st = shard::detail::read_all_deadline(
      fds[0], got, sizeof got, /*has_deadline=*/true, deadline);
  EXPECT_EQ(st, shard::detail::ReadStatus::kTimeout);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ShardRecvFrame, FrameQueueTimesOutThenReportsEofWhenClosed) {
  shard::detail::FrameQueue q;
  EXPECT_EQ(q.pop(50).status, RecvResult::Status::kTimeout);
  q.push({7});
  const RecvResult r = q.pop(-1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.frame, std::vector<std::uint8_t>{7});
  q.close();
  EXPECT_EQ(q.pop(-1).status, RecvResult::Status::kDown);
  EXPECT_EQ(q.pop(-1).cause, DownCause::kEof);
}

// ---------------------------------------------------------------------
// Respawn backoff arithmetic: the delay doubles per attempt but must
// saturate instead of shifting into undefined behaviour at attempt >= 32.
// ---------------------------------------------------------------------

TEST(ShardRecoveryPolicy, RespawnBackoffDoublesThenSaturates) {
  RecoveryPolicy p;
  p.backoff_base_ms = 3;
  p.max_backoff_ms = 10'000;
  EXPECT_EQ(shard::respawn_backoff_ms(p, 0), 3u);
  EXPECT_EQ(shard::respawn_backoff_ms(p, 1), 6u);
  EXPECT_EQ(shard::respawn_backoff_ms(p, 10), 3072u);
  // 3 << 12 = 12288 crosses the cap mid-range.
  EXPECT_EQ(shard::respawn_backoff_ms(p, 12), 10'000u);
  // Attempt >= 32 would be UB as a u32 shift: saturates at the cap.
  EXPECT_EQ(shard::respawn_backoff_ms(p, 32), 10'000u);
  EXPECT_EQ(shard::respawn_backoff_ms(p, 40), 10'000u);
  EXPECT_EQ(shard::respawn_backoff_ms(p, 1000), 10'000u);
}

TEST(ShardRecoveryPolicy, RespawnBackoffZeroBaseMeansNoDelayEver) {
  RecoveryPolicy p;
  p.backoff_base_ms = 0;
  EXPECT_EQ(shard::respawn_backoff_ms(p, 0), 0u);
  EXPECT_EQ(shard::respawn_backoff_ms(p, 31), 0u);
  EXPECT_EQ(shard::respawn_backoff_ms(p, 64), 0u);
}

TEST(ShardRecoveryPolicy, RespawnBackoffRespectsCustomCap) {
  RecoveryPolicy p;
  p.backoff_base_ms = 1;
  p.max_backoff_ms = 7;
  EXPECT_EQ(shard::respawn_backoff_ms(p, 0), 1u);
  EXPECT_EQ(shard::respawn_backoff_ms(p, 2), 4u);
  EXPECT_EQ(shard::respawn_backoff_ms(p, 3), 7u);
  EXPECT_EQ(shard::respawn_backoff_ms(p, 50), 7u);
}

// ---------------------------------------------------------------------
// Worker exit causes: waitpid status is recorded, not silently lost.
// ---------------------------------------------------------------------

// Serve handler that echoes the task payload back as the result payload.
void echo_serve(gossip::Decoder& d, gossip::Encoder& e) {
  shard::put_msg_type(e, shard::MsgType::kStageAResult);
  while (!d.exhausted()) e.put_u8(d.get_u8());
}

TEST(ShardWorkerExit, PipeRecordsSigkillCause) {
  shard::PipeTransport t;
  t.spawn(1, [](std::size_t, shard::Endpoint& ep) {
    shard::worker_loop(ep, echo_serve);
  });
  EXPECT_EQ(t.exit_status(0).kind, WorkerExit::Kind::kRunning);
  t.kill_worker(0);
  const WorkerExit ex = t.exit_status(0);
  EXPECT_EQ(ex.kind, WorkerExit::Kind::kSignaled);
  EXPECT_EQ(ex.value, SIGKILL);
  t.join();  // the kill was expected: no abort
}

TEST(ShardWorkerExit, PipeRecordsNonzeroExitCode) {
  shard::PipeTransport t;
  t.spawn(1, [](std::size_t, shard::Endpoint&) { ::_exit(3); });
  WorkerExit ex;
  do {  // WNOHANG reap: poll until the child actually died
    ex = t.exit_status(0);
  } while (ex.kind == WorkerExit::Kind::kRunning);
  EXPECT_EQ(ex.kind, WorkerExit::Kind::kExited);
  EXPECT_EQ(ex.value, 3);
  t.expect_down(0);  // handled here: teardown must not abort
  t.join();
}

TEST(ShardWorkerExitDeathTest, UnhandledAbnormalExitStillAbortsAtJoin) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        shard::PipeTransport t;
        t.spawn(1, [](std::size_t, shard::Endpoint&) { ::_exit(3); });
        t.join();  // nobody called expect_down: must die loudly
      },
      "exited abnormally");
}

TEST(ShardWorkerExit, InProcKillReportsSignaledAnalogue) {
  shard::InProcTransport t;
  t.spawn(2, [](std::size_t, shard::Endpoint& ep) {
    shard::worker_loop(ep, echo_serve);
  });
  t.kill_worker(1);
  const WorkerExit ex = t.exit_status(1);
  EXPECT_EQ(ex.kind, WorkerExit::Kind::kSignaled);
  EXPECT_EQ(ex.value, SIGKILL);
  // Shard 0 is still alive and must keep serving.
  gossip::Encoder task;
  shard::put_msg_type(task, shard::MsgType::kStageATask);
  task.put_u8(42);
  EXPECT_TRUE(t.endpoint(0).send(task.bytes()));
  const RecvResult r = t.endpoint(0).recv_frame(-1);
  ASSERT_TRUE(r.ok());
  gossip::Encoder bye;
  shard::put_msg_type(bye, shard::MsgType::kShutdown);
  EXPECT_TRUE(t.endpoint(0).send(bye.bytes()));
  EXPECT_FALSE(t.endpoint(1).send(bye.bytes()));  // dead lane: EPIPE analogue
  t.join();
}

// ---------------------------------------------------------------------
// Harness-level recovery with the kill_worker hook (a real SIGKILL for
// pipes): the next round detects the death at send time and recovers.
// ---------------------------------------------------------------------

void triple_serve(gossip::Decoder& d, gossip::Encoder& e) {
  const std::uint32_t begin = d.get_u32();
  const std::uint32_t end = d.get_u32();
  shard::put_msg_type(e, shard::MsgType::kStageAResult);
  for (std::uint32_t v = begin; v < end; ++v) e.put_u32(v * 3 + 1);
}

void run_harness_rounds_with_kill(TransportKind kind) {
  const std::size_t n = 64;
  shard::ShardConfig cfg;
  cfg.shards = 4;
  cfg.transport = kind;
  cfg.max_frame_nodes = 8;  // 2 sub-frames per shard per round
  shard::ShardHarness h(n, cfg, triple_serve);
  for (int round = 0; round < 3; ++round) {
    if (round == 1) h.kill_worker(2);  // real SIGKILL between rounds
    std::vector<std::uint32_t> out(n, 0);
    h.round(
        [](const shard::ShardRange r, gossip::Encoder& e) {
          e.put_u32(r.begin);
          e.put_u32(r.end);
        },
        [&](std::size_t, const shard::ShardRange r, gossip::Decoder& d) {
          for (std::uint32_t v = r.begin; v < r.end; ++v) {
            out[v] = d.get_u32();
          }
        });
    for (std::uint32_t v = 0; v < n; ++v) {
      ASSERT_EQ(out[v], v * 3 + 1) << "round " << round << " node " << v;
    }
  }
  EXPECT_GE(h.recovery_stats().workers_lost, 1u);
  EXPECT_GE(h.recovery_stats().respawns, 1u);
  EXPECT_EQ(h.recovery_stats().last_down_shard, 2u);
  if (kind != TransportKind::kInProc) {
    // Both process transports reap the real SIGKILLed child.
    EXPECT_EQ(h.recovery_stats().last_down_exit.kind,
              WorkerExit::Kind::kSignaled);
    EXPECT_EQ(h.recovery_stats().last_down_exit.value, SIGKILL);
  }
}

TEST(ShardHarnessRecovery, KillHookRecoversOverPipe) {
  run_harness_rounds_with_kill(TransportKind::kPipe);
}

TEST(ShardHarnessRecovery, KillHookRecoversInProc) {
  run_harness_rounds_with_kill(TransportKind::kInProc);
}

TEST(ShardHarnessRecovery, KillHookRecoversOverSocket) {
  // Respawn-over-reconnect: the replacement worker dials a brand-new
  // loopback connection and is re-sent nothing here (closure ctor), yet
  // the rounds after the kill still produce identical output.
  run_harness_rounds_with_kill(TransportKind::kSocket);
}

// ---------------------------------------------------------------------
// The acceptance criterion: engine runs under injected faults are
// bit-identical — solution, rounds, every DistributedRunStats counter —
// to the fault-free serial run.
// ---------------------------------------------------------------------

void expect_stats_equal(const core::DistributedRunStats& a,
                        const core::DistributedRunStats& b,
                        const std::string& what) {
  EXPECT_EQ(a.rounds_to_first, b.rounds_to_first) << what;
  EXPECT_EQ(a.rounds_to_all_output, b.rounds_to_all_output) << what;
  EXPECT_EQ(a.reached_optimum, b.reached_optimum) << what;
  EXPECT_EQ(a.all_outputs_correct, b.all_outputs_correct) << what;
  EXPECT_EQ(a.max_work_per_round, b.max_work_per_round) << what;
  EXPECT_EQ(a.total_push_ops, b.total_push_ops) << what;
  EXPECT_EQ(a.total_pull_ops, b.total_pull_ops) << what;
  EXPECT_EQ(a.total_bytes, b.total_bytes) << what;
  EXPECT_EQ(a.initial_total_elements, b.initial_total_elements) << what;
  EXPECT_EQ(a.max_total_elements, b.max_total_elements) << what;
  EXPECT_EQ(a.final_total_elements, b.final_total_elements) << what;
  EXPECT_EQ(a.sampling_attempts, b.sampling_attempts) << what;
  EXPECT_EQ(a.sampling_failures, b.sampling_failures) << what;
  EXPECT_EQ(a.bookkeeping_touches_total, b.bookkeeping_touches_total) << what;
  EXPECT_EQ(a.last_round_bookkeeping_touches,
            b.last_round_bookkeeping_touches)
      << what;
}

std::string transport_name(TransportKind t) {
  switch (t) {
    case TransportKind::kInProc: return "inproc";
    case TransportKind::kPipe: return "pipe";
    case TransportKind::kSocket: return "socket";
  }
  return "?";
}

// Every fault script below runs over all three transports.  Over kSocket
// the low-load engine bootstraps its workers over the wire, so the
// FaultyTransport *send* counter on each lane is shifted by one per
// (re)spawn relative to inproc/pipe (the bootstrap frame is send #0); the
// kill schedules here stay valid because each scripted death is still
// detected structurally before the next one fires — only the wall-clock
// position of the kill inside round 1 moves, never the recovery outcome.
const TransportKind kTransports[] = {TransportKind::kInProc,
                                     TransportKind::kPipe,
                                     TransportKind::kSocket};

/// Run low-load with the given faults and compare bit-for-bit against the
/// fault-free serial run (same seed, same dataset).
void check_faulted_low_load(const FaultScript& script,
                            const RecoveryPolicy& policy, std::size_t shards,
                            TransportKind transport, const std::string& what,
                            std::size_t max_frame_nodes = 0) {
  MinDisk p;
  const std::size_t n = 256;
  const auto pts = testsupport::golden_disk_points(DiskDataset::kHull, n);
  core::LowLoadConfig base;
  base.seed = 33;
  const auto serial = core::run_low_load(p, pts, n, base);

  core::LowLoadConfig cfg = base;
  cfg.shard.shards = shards;
  cfg.shard.transport = transport;
  if (max_frame_nodes != 0) cfg.shard.max_frame_nodes = max_frame_nodes;
  cfg.shard.recovery = policy;
  cfg.shard.fault_script = script;
  const auto res = core::run_low_load(p, pts, n, cfg);
  EXPECT_EQ(serial.solution, res.solution) << what;
  expect_stats_equal(serial.stats, res.stats, what);
}

TEST(ShardedLowLoadRecovery, KillEachShardAtRoundBoundary) {
  // at_frame 0: the very first task this lane ever sees — a worker dying
  // on round one, at a round boundary.
  for (const std::size_t shards : {1u, 2u, 4u}) {
    for (const auto transport : kTransports) {
      for (std::size_t victim = 0; victim < shards; ++victim) {
        check_faulted_low_load(
            {{victim, FaultOp::kKillWorker, 0}}, RecoveryPolicy{}, shards,
            transport,
            "kill shard " + std::to_string(victim) + "/" +
                std::to_string(shards) + " at frame 0 over " +
                transport_name(transport));
      }
    }
  }
}

TEST(ShardedLowLoadRecovery, KillEachShardMidRound) {
  // Tiny sub-frames force several frames per shard per round, so frame 3
  // lands mid-round: the harness loses one in-flight sub-frame with others
  // already applied, and must replay only what was lost.
  for (const std::size_t shards : {2u, 4u}) {
    for (const auto transport : kTransports) {
      for (std::size_t victim = 0; victim < shards; ++victim) {
        check_faulted_low_load(
            {{victim, FaultOp::kKillWorker, 3}}, RecoveryPolicy{}, shards,
            transport,
            "kill shard " + std::to_string(victim) + "/" +
                std::to_string(shards) + " at frame 3 over " +
                transport_name(transport),
            /*max_frame_nodes=*/16);
      }
    }
  }
}

TEST(ShardedLowLoadRecovery, RepeatedKillsWithinBudgetRecover) {
  // Two kills on the same shard: exactly the default respawn budget.
  for (const auto transport : kTransports) {
    check_faulted_low_load(
        {{0, FaultOp::kKillWorker, 1}, {0, FaultOp::kKillWorker, 4}},
        RecoveryPolicy{}, 2, transport,
        "two kills on shard 0 over " + transport_name(transport));
  }
}

TEST(ShardedLowLoadRecovery, DroppedResultRecoversViaTimeout) {
  RecoveryPolicy policy;
  policy.recv_timeout_ms = 300;  // the drop is only detectable by deadline
  for (const auto transport : kTransports) {
    check_faulted_low_load({{1, FaultOp::kDropResult, 0}}, policy, 2,
                           transport,
                           "drop result over " + transport_name(transport));
  }
}

TEST(ShardedLowLoadRecovery, TruncatedResultRecovers) {
  for (const auto transport : kTransports) {
    check_faulted_low_load(
        {{1, FaultOp::kTruncateResult, 2}}, RecoveryPolicy{}, 2, transport,
        "truncate result over " + transport_name(transport));
  }
}

TEST(ShardedLowLoadRecovery, CorruptResultRecovers) {
  for (const auto transport : kTransports) {
    check_faulted_low_load(
        {{0, FaultOp::kCorruptResult, 1}}, RecoveryPolicy{}, 2, transport,
        "corrupt result over " + transport_name(transport));
  }
}

TEST(ShardedLowLoadRecovery, DelayedResultIsHarmless) {
  for (const auto transport : kTransports) {
    check_faulted_low_load(
        {{0, FaultOp::kDelayResult, 0, 50}}, RecoveryPolicy{}, 2, transport,
        "delayed result over " + transport_name(transport));
  }
}

TEST(ShardedLowLoadRecovery, ReassignFoldsDeadShardIntoSurvivors) {
  RecoveryPolicy policy;
  policy.mode = RecoveryMode::kReassign;
  for (const auto transport : kTransports) {
    check_faulted_low_load(
        {{1, FaultOp::kKillWorker, 0}}, policy, 4, transport,
        "reassign one death over " + transport_name(transport),
        /*max_frame_nodes=*/32);
    check_faulted_low_load(
        {{1, FaultOp::kKillWorker, 0}, {3, FaultOp::kKillWorker, 5}}, policy,
        4, transport,
        "reassign two deaths over " + transport_name(transport),
        /*max_frame_nodes=*/32);
  }
}

TEST(ShardedHittingSetRecovery, KillMidRunBitIdentical) {
  util::Rng data_rng(19);
  const auto inst =
      workloads::generate_planted_hitting_set(256, 64, 2, 2, data_rng);
  problems::HittingSetProblem p(inst.system);
  core::HittingSetConfig base;
  base.seed = 77;
  base.hitting_set_size = 2;
  const auto serial = core::run_hitting_set(p, 256, base);
  ASSERT_TRUE(serial.valid);
  for (const auto transport : kTransports) {
    core::HittingSetConfig cfg = base;
    cfg.shard.shards = 2;
    cfg.shard.transport = transport;
    cfg.shard.fault_script = {{1, FaultOp::kKillWorker, 1}};
    const auto res = core::run_hitting_set(p, 256, cfg);
    const std::string what =
        "hitting set kill over " + transport_name(transport);
    EXPECT_EQ(serial.hitting_set, res.hitting_set) << what;
    EXPECT_EQ(serial.valid, res.valid) << what;
    EXPECT_EQ(serial.d_used, res.d_used) << what;
    EXPECT_EQ(serial.sample_size, res.sample_size) << what;
    expect_stats_equal(serial.stats, res.stats, what);
  }
}

// ---------------------------------------------------------------------
// Policy exhaustion and escalation.
// ---------------------------------------------------------------------

void run_faulted_low_load(const FaultScript& script,
                          const RecoveryPolicy& policy,
                          TransportKind transport) {
  MinDisk p;
  const std::size_t n = 128;
  const auto pts = testsupport::golden_disk_points(DiskDataset::kHull, n);
  core::LowLoadConfig cfg;
  cfg.seed = 33;
  cfg.shard.shards = 2;
  // 8 sub-frames per shard per round: every scripted death (and its
  // detection) lands inside round 1's sends in every interleaving, so
  // escalation can never slip past the round loop into shutdown.
  cfg.shard.max_frame_nodes = 8;
  cfg.shard.transport = transport;
  cfg.shard.recovery = policy;
  cfg.shard.fault_script = script;
  (void)core::run_low_load(p, pts, n, cfg);
}

TEST(ShardedLowLoadRecovery, RespawnBudgetExhaustionEscalates) {
  // Three kills against a budget of two: the third death must escalate.
  // The kills are spaced 3 lane frames apart because a killed worker can
  // race its result into the stream and only be detected on the *next*
  // send (frame f+1, a failed send that still advances the lane counter),
  // with the respawned worker live from frame f+2 — so a kill at f+3 hits
  // a live worker in every interleaving, never an undetected corpse.
  const FaultScript script = {{0, FaultOp::kKillWorker, 0},
                              {0, FaultOp::kKillWorker, 3},
                              {0, FaultOp::kKillWorker, 6}};
  for (const auto transport : kTransports) {
    try {
      run_faulted_low_load(script, RecoveryPolicy{}, transport);
      FAIL() << "expected ShardError over " << transport_name(transport);
    } catch (const ShardError& e) {
      EXPECT_EQ(e.shard(), 0u);
      EXPECT_NE(std::string(e.what()).find("respawn budget"),
                std::string::npos);
    }
  }
}

TEST(ShardedLowLoadRecovery, FailFastEscalatesOnFirstDeath) {
  RecoveryPolicy policy;
  policy.mode = RecoveryMode::kFailFast;
  for (const auto transport : kTransports) {
    EXPECT_THROW(
        run_faulted_low_load({{1, FaultOp::kKillWorker, 0}}, policy,
                             transport),
        ShardError);
  }
}

TEST(ShardedLowLoadRecovery, ReassignWithNoSurvivorsEscalates) {
  RecoveryPolicy policy;
  policy.mode = RecoveryMode::kReassign;
  // Both workers die: nobody is left to fold the frames into.
  const FaultScript script = {{0, FaultOp::kKillWorker, 0},
                              {1, FaultOp::kKillWorker, 0}};
  for (const auto transport : kTransports) {
    EXPECT_THROW(run_faulted_low_load(script, policy, transport),
                 ShardError);
  }
}

// ---------------------------------------------------------------------
// Service layer: a lost solve answers kTransientFailure; the server
// keeps serving subsequent epochs; within-budget deaths are invisible.
// ---------------------------------------------------------------------

service::QueryRequest make_disk_query(service::LptService& svc,
                                      std::uint64_t id, std::size_t points) {
  const auto pts = testsupport::golden_disk_points(DiskDataset::kHull,
                                                   std::max<std::size_t>(
                                                       points, 8));
  service::QueryRequest q = svc.acquire_request();
  q.id = id;
  q.kind = service::QueryKind::kMinDisk;
  q.seed = 5;
  q.points.assign(pts.begin(), pts.begin() + points);
  return q;
}

TEST(ServiceRecovery, TransientFailureKeepsServing) {
  service::ServiceConfig cfg;
  cfg.direct_cutoff = 32;
  cfg.distributed_nodes = 64;
  cfg.engine.shard.shards = 2;
  cfg.engine.shard.transport = TransportKind::kInProc;
  cfg.engine.shard.recovery.max_respawns_per_shard = 0;  // no budget at all
  // Several sub-frames per lane per round: even if the killed worker races
  // its frame-0 result into the stream, the next send on its lane (still
  // round 1) detects the death — otherwise a kill landing on the run's
  // final round could go unobserved and the query would (correctly, but
  // not what this test wants) succeed.
  cfg.engine.shard.max_frame_nodes = 8;
  cfg.engine.shard.fault_script = {{0, FaultOp::kKillWorker, 0}};
  service::LptService svc(cfg);
  std::vector<service::QueryResponse> out;

  // Epoch 1: a distributed-size query loses its worker and fails softly.
  svc.submit(make_disk_query(svc, 1, 64));
  ASSERT_EQ(svc.run_epoch(out), 1u);
  EXPECT_EQ(out[0].status, service::QueryStatus::kTransientFailure);
  EXPECT_EQ(out[0].engine, service::EngineUsed::kNone);
  EXPECT_EQ(out[0].rounds, 0u);

  // Epoch 2: a small query takes the direct path — the server is fine.
  svc.submit(make_disk_query(svc, 2, 16));
  ASSERT_EQ(svc.run_epoch(out), 1u);
  EXPECT_EQ(out[1].status, service::QueryStatus::kOk);
  EXPECT_EQ(out[1].engine, service::EngineUsed::kDirect);

  // Epoch 3: distributed again (a fresh harness, a fresh scripted kill).
  svc.submit(make_disk_query(svc, 3, 64));
  ASSERT_EQ(svc.run_epoch(out), 1u);
  EXPECT_EQ(out[2].status, service::QueryStatus::kTransientFailure);

  EXPECT_EQ(svc.stats().transient_failures, 2u);
  EXPECT_EQ(svc.stats().served, 3u);
}

TEST(ServiceRecovery, RespawnBudgetAbsorbsDeathInvisibly) {
  service::ServiceConfig cfg;
  cfg.direct_cutoff = 32;
  cfg.distributed_nodes = 64;
  cfg.engine.shard.shards = 2;
  cfg.engine.shard.transport = TransportKind::kPipe;
  cfg.engine.shard.fault_script = {{1, FaultOp::kKillWorker, 0}};
  service::LptService svc(cfg);
  std::vector<service::QueryResponse> out;

  service::QueryRequest q = make_disk_query(svc, 9, 64);
  const std::vector<geom::Vec2> pts = q.points;  // before the move
  core::LowLoadConfig ref_cfg = svc.engine_config_for(q);
  ref_cfg.shard = {};  // the fault-free serial reference

  svc.submit(std::move(q));
  ASSERT_EQ(svc.run_epoch(out), 1u);
  EXPECT_EQ(out[0].status, service::QueryStatus::kOk);
  EXPECT_EQ(out[0].engine, service::EngineUsed::kDistributed);
  EXPECT_EQ(svc.stats().transient_failures, 0u);

  // The recovered solve is bit-identical to the fault-free serial run.
  const auto ref = core::run_low_load(
      MinDisk{}, std::span<const geom::Vec2>(pts), cfg.distributed_nodes,
      ref_cfg);
  EXPECT_EQ(out[0].disk, ref.solution);
  EXPECT_EQ(out[0].rounds,
            static_cast<std::uint32_t>(ref.stats.rounds_to_first));
}

// The new wire status round-trips.
TEST(ServiceRecovery, TransientFailureStatusRoundTripsOnTheWire) {
  service::QueryResponse r;
  r.id = 12;
  r.kind = service::QueryKind::kMinDisk;
  r.status = service::QueryStatus::kTransientFailure;
  r.engine = service::EngineUsed::kNone;
  gossip::Encoder e;
  wire_put(e, r);
  gossip::Decoder d(e.bytes());
  service::QueryResponse r2;
  wire_get(d, r2);
  EXPECT_TRUE(d.exhausted());
  EXPECT_EQ(r2.status, service::QueryStatus::kTransientFailure);
  EXPECT_EQ(r2.id, 12u);
}

}  // namespace
}  // namespace lpt
