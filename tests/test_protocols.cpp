// Tests for the classic gossip protocols (rumor spreading, push-sum) and
// for fault injection across the gossip substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "gossip/protocols.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace lpt::gossip {
namespace {

TEST(RumorSpread, InformsEveryoneInLogarithmicRounds) {
  const std::size_t n = 1024;
  Network net(n, util::Rng(1));
  RumorSpread<int> rumor(net);
  rumor.start(17, 42);
  std::size_t rounds = 0;
  while (!rumor.all_informed() && rounds < 200) {
    net.begin_round();
    rumor.round();
    ++rounds;
  }
  ASSERT_TRUE(rumor.all_informed());
  // Push-pull rumor spreading completes in log2(n) + O(log log n) rounds
  // w.h.p.; allow a factor ~4.
  EXPECT_LE(rounds, 4 * util::ceil_log2(n));
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(rumor.value(v), 42);
}

TEST(RumorSpread, WorkIsConstantPerRound) {
  const std::size_t n = 256;
  Network net(n, util::Rng(2));
  RumorSpread<double> rumor(net);
  rumor.start(0, 3.14);
  for (int t = 0; t < 40 && !rumor.all_informed(); ++t) {
    net.begin_round();
    rumor.round();
  }
  net.meter().finish();
  // One push or one pull per node per round.
  EXPECT_LE(net.meter().max_work_per_round(), 1u);
}

TEST(RumorSpread, SurvivesMessageLoss) {
  const std::size_t n = 512;
  FaultModel faults;
  faults.push_loss = 0.3;
  faults.response_loss = 0.3;
  Network net(n, util::Rng(3), faults);
  RumorSpread<int> rumor(net);
  rumor.start(5, 7);
  std::size_t rounds = 0;
  while (!rumor.all_informed() && rounds < 400) {
    net.begin_round();
    rumor.round();
    ++rounds;
  }
  EXPECT_TRUE(rumor.all_informed());
  EXPECT_LE(rounds, 10 * util::ceil_log2(n));
}

TEST(RumorSpread, SurvivesSleepingNodes) {
  const std::size_t n = 512;
  FaultModel faults;
  faults.sleep_probability = 0.25;
  Network net(n, util::Rng(4), faults);
  RumorSpread<int> rumor(net);
  rumor.start(99, 1);
  std::size_t rounds = 0;
  while (!rumor.all_informed() && rounds < 400) {
    net.begin_round();
    rumor.round();
    ++rounds;
  }
  EXPECT_TRUE(rumor.all_informed());
}

TEST(PushSum, CountingEstimatesN) {
  for (std::size_t n : {16ul, 256ul, 2048ul}) {
    Network net(n, util::Rng(5));
    PushSum ps = PushSum::counting(net);
    // O(log n) rounds for a constant-factor estimate; run 4 log n.
    const std::size_t rounds = 4 * (util::ceil_log2(n) + 2);
    for (std::size_t t = 0; t < rounds; ++t) {
      net.begin_round();
      ps.round();
    }
    const double est = ps.estimate(0);
    EXPECT_GT(est, static_cast<double>(n) / 4.0) << n;
    EXPECT_LT(est, static_cast<double>(n) * 4.0) << n;
  }
}

TEST(PushSum, AveragingConvergesPrecisely) {
  const std::size_t n = 256;
  Network net(n, util::Rng(6));
  util::Rng vals(7);
  std::vector<double> values(n);
  double sum = 0.0;
  for (auto& x : values) {
    x = vals.uniform(0.0, 10.0);
    sum += x;
  }
  const double mean = sum / static_cast<double>(n);
  PushSum ps = PushSum::averaging(net, values);
  for (int t = 0; t < 120; ++t) {
    net.begin_round();
    ps.round();
  }
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_NEAR(ps.estimate(v), mean, 1e-6 * mean);
  }
}

TEST(PushSum, MassIsConserved) {
  const std::size_t n = 128;
  Network net(n, util::Rng(8));
  PushSum ps = PushSum::counting(net);
  const double before = ps.total_mass();
  for (int t = 0; t < 50; ++t) {
    net.begin_round();
    ps.round();
  }
  EXPECT_NEAR(ps.total_mass(), before, 1e-9 * before);
}

TEST(PushSum, MassConservedEvenWithSleepers) {
  const std::size_t n = 128;
  FaultModel faults;
  faults.sleep_probability = 0.3;
  Network net(n, util::Rng(9), faults);
  PushSum ps = PushSum::counting(net);
  const double before = ps.total_mass();
  for (int t = 0; t < 80; ++t) {
    net.begin_round();
    ps.round();
  }
  EXPECT_NEAR(ps.total_mass(), before, 1e-9 * before);
  EXPECT_GT(ps.estimate(0), n / 4.0);
  EXPECT_LT(ps.estimate(0), n * 4.0);
}

TEST(EstimateNetworkSize, ConstantFactorForVariousN) {
  for (std::size_t n : {8ul, 64ul, 1024ul}) {
    Network net(n, util::Rng(10 + n));
    const double est = estimate_network_size(net);
    EXPECT_GT(est, static_cast<double>(n) / 2.0) << n;
    EXPECT_LT(est, static_cast<double>(n) * 2.0) << n;
    // The derived log2 estimate is within +-1 of the truth — better than
    // the constant-factor estimate the paper's algorithms require.
    EXPECT_NEAR(std::log2(est), std::log2(static_cast<double>(n)), 1.0);
  }
}

TEST(FaultModel, PushLossDropsExpectedFraction) {
  const std::size_t n = 64;
  FaultModel faults;
  faults.push_loss = 0.5;
  Network net(n, util::Rng(11), faults);
  Mailbox<int> mb(net);
  net.begin_round();
  for (int i = 0; i < 4000; ++i) mb.push(0, i);
  mb.deliver();
  std::size_t received = 0;
  for (NodeId v = 0; v < n; ++v) received += mb.inbox(v).size();
  EXPECT_NEAR(received, 2000.0, 200.0);
}

TEST(FaultModel, SleepingNodesDoNotAnswerPulls) {
  const std::size_t n = 16;
  FaultModel faults;
  faults.sleep_probability = 1.0;  // everyone sleeps
  Network net(n, util::Rng(12), faults);
  PullChannel<int> ch(net);
  net.begin_round();
  for (int k = 0; k < 50; ++k) ch.request(0);
  ch.resolve([](NodeId) { return std::optional<int>(1); });
  EXPECT_TRUE(ch.responses(0).empty());
}

TEST(FaultModel, DefaultIsFaultFree) {
  FaultModel f;
  EXPECT_FALSE(f.any());
  Network net(8, util::Rng(13));
  EXPECT_FALSE(net.drop_push());
  EXPECT_FALSE(net.asleep(0));
}

}  // namespace
}  // namespace lpt::gossip
