// Unit and property tests for the geometry substrate: vectors, circles,
// Welzl minidisk, d-dimensional miniball, convex hull, min-norm point.
#include <gtest/gtest.h>

#include <cmath>

#include "geometry/ball.hpp"
#include "geometry/circle.hpp"
#include "geometry/convex.hpp"
#include "geometry/linalg.hpp"
#include "geometry/vec2.hpp"
#include "geometry/welzl.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"

namespace lpt::geom {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2}, b{3, -1};
  EXPECT_EQ((a + b), (Vec2{4, 1}));
  EXPECT_EQ((a - b), (Vec2{-2, 3}));
  EXPECT_EQ((2.0 * a), (Vec2{2, 4}));
  EXPECT_DOUBLE_EQ(dot(a, b), 1.0);
  EXPECT_DOUBLE_EQ(cross(a, b), -7.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(dist({0, 0}, {3, 4}), 5.0);
}

TEST(Vec2, OrientSign) {
  EXPECT_GT(orient({0, 0}, {1, 0}, {0, 1}), 0.0);  // CCW
  EXPECT_LT(orient({0, 0}, {0, 1}, {1, 0}), 0.0);  // CW
  EXPECT_DOUBLE_EQ(orient({0, 0}, {1, 1}, {2, 2}), 0.0);  // collinear
}

TEST(Vec2, PointSegmentDistance) {
  EXPECT_DOUBLE_EQ(point_segment_dist2({0, 1}, {-1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(point_segment_dist2({5, 0}, {-1, 0}, {1, 0}), 16.0);
  EXPECT_DOUBLE_EQ(point_segment_dist2({3, 4}, {0, 0}, {0, 0}), 25.0);
}

TEST(Vec2, ClosestPointOnSegmentToOrigin) {
  const Vec2 c = closest_point_on_segment_to_origin({1, -1}, {1, 1});
  EXPECT_VEC2_NEAR(c, (Vec2{1.0, 0.0}), 1e-12);
  const Vec2 v = closest_point_on_segment_to_origin({2, 3}, {5, 7});
  EXPECT_NEAR(v.x, 2.0, 1e-12);  // clamped to endpoint
}

TEST(Circle, TwoPointCircleIsDiametral) {
  const Circle c = circle_from({-1, 0}, {1, 0});
  EXPECT_VEC2_NEAR(c.center, (Vec2{0.0, 0.0}), 1e-12);
  EXPECT_NEAR(c.radius, 1.0, 1e-12);
}

TEST(Circle, CircumcircleEquilateral) {
  const double h = std::sqrt(3.0) / 2.0;
  const Circle c = circle_from({-0.5, 0}, {0.5, 0}, {0.0, h});
  EXPECT_VEC2_NEAR(c.center, (Vec2{0.0, h - 1.0 / std::sqrt(3.0)}), 1e-9);
  EXPECT_NEAR(c.radius, 1.0 / std::sqrt(3.0), 1e-9);
}

TEST(Circle, CollinearFallsBackToDiametral) {
  const Circle c = circle_from({0, 0}, {1, 0}, {2, 0});
  EXPECT_NEAR(c.radius, 1.0, 1e-9);
  EXPECT_TRUE(c.contains({0, 0}));
  EXPECT_TRUE(c.contains({2, 0}));
}

TEST(Circle, EmptyDiskContainsNothing) {
  const Circle c{};
  EXPECT_TRUE(c.empty());
  EXPECT_FALSE(c.contains({0, 0}));
}

TEST(Circle, CircumcircleContainsDefiningPoints) {
  util::Rng rng(1);
  for (int t = 0; t < 200; ++t) {
    const Vec2 a{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec2 b{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec2 c{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Circle k = circle_from(a, b, c);
    EXPECT_TRUE(k.contains(a));
    EXPECT_TRUE(k.contains(b));
    EXPECT_TRUE(k.contains(c));
  }
}

class WelzlProperty : public ::testing::TestWithParam<int> {};

TEST_P(WelzlProperty, EnclosesAllAndSupportOnBoundary) {
  util::Rng rng(GetParam());
  const std::size_t n = 3 + rng.below(200);
  std::vector<Vec2> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(-5, 5), rng.uniform(-5, 5)});
  }
  const auto res = min_disk(pts, rng);
  EXPECT_TRUE(encloses_all(res.disk, pts));
  ASSERT_GE(res.support.size(), 1u);
  ASSERT_LE(res.support.size(), 3u);
  for (const auto& s : res.support) {
    EXPECT_NEAR(dist(res.disk.center, s), res.disk.radius,
                1e-7 * (res.disk.radius + 1.0));
  }
}

TEST_P(WelzlProperty, MatchesBruteForceOnSmallSets) {
  util::Rng rng(1000 + GetParam());
  const std::size_t n = 1 + rng.below(8);
  std::vector<Vec2> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(-5, 5), rng.uniform(-5, 5)});
  }
  const auto res = min_disk(pts, rng);
  // Brute force: the minimum disk is defined by a pair or a triple.
  double best = res.disk.radius + 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Circle c1 = circle_from(pts[i]);
    if (encloses_all(c1, pts)) best = std::min(best, c1.radius);
    for (std::size_t j = i + 1; j < n; ++j) {
      const Circle c2 = circle_from(pts[i], pts[j]);
      if (encloses_all(c2, pts)) best = std::min(best, c2.radius);
      for (std::size_t k = j + 1; k < n; ++k) {
        const Circle c3 = circle_from(pts[i], pts[j], pts[k]);
        if (encloses_all(c3, pts)) best = std::min(best, c3.radius);
      }
    }
  }
  EXPECT_NEAR(res.disk.radius, best, 1e-7 * (best + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WelzlProperty, ::testing::Range(1, 41));

TEST(Welzl, DuplicatedPointsHandled) {
  std::vector<Vec2> pts{{1, 1}, {1, 1}, {1, 1}, {2, 2}};
  util::Rng rng(3);
  const auto res = min_disk(pts, rng);
  EXPECT_NEAR(res.disk.radius, std::sqrt(2.0) / 2.0, 1e-9);
}

TEST(Welzl, SinglePoint) {
  std::vector<Vec2> pts{{3, 4}};
  const auto res = min_disk(pts);
  EXPECT_DOUBLE_EQ(res.disk.radius, 0.0);
  EXPECT_EQ(res.disk.center, (Vec2{3, 4}));
}

TEST(Welzl, EmptyInputGivesEmptyDisk) {
  const auto res = min_disk(std::span<const Vec2>{});
  EXPECT_TRUE(res.disk.empty());
  EXPECT_TRUE(res.support.empty());
}

TEST(Linalg, SolvesWellConditionedSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  auto x = solve(std::move(a), {5, 10});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(Linalg, DetectsSingularity) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_FALSE(solve(std::move(a), {1, 2}).has_value());
}

TEST(Linalg, PartialPivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  auto x = solve(std::move(a), {2, 3});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(Ball3, CircumballOfSimplex) {
  using V = VecD<3>;
  std::vector<V> pts{{{1, 0, 0}}, {{-1, 0, 0}}, {{0, 1, 0}}, {{0, -1, 0}}};
  const auto b = circumball<3>(pts);
  EXPECT_NEAR(b.radius, 1.0, 1e-9);
  for (const auto& p : pts) {
    EXPECT_NEAR(dist2(b.center, p), 1.0, 1e-9);
  }
}

class MiniballProperty : public ::testing::TestWithParam<int> {};

TEST_P(MiniballProperty, EnclosesAllPoints3D) {
  util::Rng rng(GetParam());
  const std::size_t n = 4 + rng.below(80);
  std::vector<VecD<3>> pts(n);
  for (auto& p : pts) {
    for (int k = 0; k < 3; ++k) p[k] = rng.uniform(-3, 3);
  }
  const auto res = min_ball<3>(pts, rng);
  ASSERT_FALSE(res.ball.empty());
  for (const auto& p : pts) EXPECT_TRUE(res.ball.contains(p, 1e-7));
  ASSERT_LE(res.support.size(), 4u);
  for (const auto& s : res.support) {
    EXPECT_NEAR(std::sqrt(dist2(res.ball.center, s)), res.ball.radius,
                1e-6 * (res.ball.radius + 1.0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiniballProperty, ::testing::Range(1, 21));

TEST(ConvexHull, SquareWithInteriorPoints) {
  std::vector<Vec2> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.7}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 4u);
}

TEST(ConvexHull, CollinearInput) {
  std::vector<Vec2> pts{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 2u);
}

TEST(ConvexHull, ContainsQueries) {
  std::vector<Vec2> pts{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  const auto hull = convex_hull(pts);
  EXPECT_TRUE(hull_contains(hull, {1, 1}));
  EXPECT_TRUE(hull_contains(hull, {0, 0}));
  EXPECT_TRUE(hull_contains(hull, {2, 1}));
  EXPECT_FALSE(hull_contains(hull, {3, 1}));
  EXPECT_FALSE(hull_contains(hull, {-0.1, 1}));
}

TEST(MinNormPoint, VertexCase) {
  std::vector<Vec2> pts{{1, 1}, {2, 1}, {1.5, 3}};
  const auto r = min_norm_point(pts);
  EXPECT_NEAR(r.distance, std::sqrt(2.0), 1e-9);
  ASSERT_EQ(r.support.size(), 1u);
  EXPECT_EQ(r.support[0], (Vec2{1, 1}));
}

TEST(MinNormPoint, EdgeCase) {
  std::vector<Vec2> pts{{1, -1}, {1, 1}, {5, 0}};
  const auto r = min_norm_point(pts);
  EXPECT_NEAR(r.distance, 1.0, 1e-9);
  EXPECT_EQ(r.support.size(), 2u);
}

TEST(MinNormPoint, OriginInsideHull) {
  std::vector<Vec2> pts{{-1, -1}, {1, -1}, {0, 2}};
  const auto r = min_norm_point(pts);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
}

class MinNormProperty : public ::testing::TestWithParam<int> {};

TEST_P(MinNormProperty, MatchesDenseSampling) {
  util::Rng rng(GetParam());
  std::vector<Vec2> pts;
  const std::size_t n = 3 + rng.below(30);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.5, 5), rng.uniform(-5, 5)});
  }
  const auto r = min_norm_point(pts);
  // Check optimality via the supporting-hyperplane condition:
  // every input point q satisfies <q, x*> >= |x*|^2.
  for (const auto& q : pts) {
    EXPECT_GE(dot(q, r.point), norm2(r.point) - 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinNormProperty, ::testing::Range(1, 21));

}  // namespace
}  // namespace lpt::geom
