// Tests for the wire codec, including the contract that the mailboxes'
// wire_size() byte accounting equals the codec's real encoded sizes.
#include <gtest/gtest.h>

#include "core/high_load.hpp"
#include "core/termination.hpp"
#include "gossip/codec.hpp"
#include "gossip/mailbox.hpp"
#include "problems/min_disk.hpp"
#include "util/rng.hpp"

namespace lpt::gossip {
namespace {

TEST(Codec, ScalarRoundTrip) {
  Encoder enc;
  enc.put_u32(0xdeadbeef);
  enc.put_u64(0x0123456789abcdefULL);
  enc.put_f64(-1.5e300);
  enc.put_u8(7);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(dec.get_f64(), -1.5e300);
  EXPECT_EQ(dec.get_u8(), 7);
  EXPECT_TRUE(dec.exhausted());
}

TEST(Codec, Vec2RoundTripPreservesBits) {
  util::Rng rng(1);
  Encoder enc;
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.uniform(-1e9, 1e9), rng.normal()});
    enc.put(pts.back());
  }
  Decoder dec(enc.bytes());
  for (const auto& p : pts) {
    const auto q = dec.get_vec2();
    EXPECT_EQ(p, q);
  }
}

TEST(Codec, HalfplaneRoundTrip) {
  Encoder enc;
  const lp::Halfplane h{{0.25, -3.0}, 17.5};
  enc.put(h);
  EXPECT_EQ(enc.size(), kWireBytesHalfplane);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_halfplane(), h);
}

TEST(Codec, SequenceRoundTrip) {
  Encoder enc;
  std::vector<std::uint32_t> ids{5, 9, 1u << 30};
  enc.put_sequence(std::span<const std::uint32_t>(ids));
  Decoder dec(enc.bytes());
  const auto back = dec.get_sequence<std::uint32_t>(
      [](Decoder& d) { return d.get_u32(); });
  EXPECT_EQ(back, ids);
}

TEST(Codec, DecodePastEndAborts) {
  Encoder enc;
  enc.put_u32(1);
  Decoder dec(enc.bytes());
  dec.get_u32();
  EXPECT_DEATH(dec.get_u32(), "decode past end");
}

TEST(Codec, WireSizeContractVec2) {
  // The mailbox meter charges sizeof(Vec2) per point — that must equal
  // the codec's encoded size, or the byte accounting would be fiction.
  EXPECT_EQ(wire_size(geom::Vec2{}), kWireBytesVec2);
  Encoder enc;
  enc.put(geom::Vec2{1, 2});
  EXPECT_EQ(enc.size(), kWireBytesVec2);
}

TEST(Codec, WireSizeContractHalfplane) {
  EXPECT_EQ(wire_size(lp::Halfplane{}), kWireBytesHalfplane);
}

TEST(Codec, WireSizeContractElementId) {
  EXPECT_EQ(wire_size(std::uint32_t{0}), kWireBytesElementId);
}

TEST(Codec, WireSizeContractBasisMessage) {
  // High-load basis message: d points, no padding beyond the elements.
  core::detail::BasisMsg<geom::Vec2> msg;
  msg.basis = {{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(wire_size(msg), 3 * kWireBytesVec2);
  Encoder enc;
  enc.put_sequence(std::span<const geom::Vec2>(msg.basis));
  // Codec adds a 4-byte length prefix; the meter charges elements only —
  // the prefix is O(1) bits and does not change the O(log n) accounting.
  EXPECT_EQ(enc.size(), 4 + 3 * kWireBytesVec2);
}

TEST(Codec, WireSizeContractTerminationMessage) {
  using Term = core::TerminationProtocol<problems::MinDisk>;
  Term::Message m;
  m.t = 3;
  m.x = 1;
  m.basis = {{0, 0}, {1, 1}};
  EXPECT_EQ(wire_size(m), sizeof(std::uint32_t) + sizeof(std::uint8_t) +
                              2 * kWireBytesVec2);
}

TEST(Codec, MessageBitsAreLogarithmic) {
  // O(log n) bits per message: a Vec2 is 128 bits; a basis of <= 3 points
  // is 384 bits + header — constants, independent of n, for coordinates
  // of fixed precision.  This test pins those constants so accidental
  // message-format growth is caught.
  EXPECT_LE(8 * wire_size(geom::Vec2{}), 128u);
  core::detail::BasisMsg<geom::Vec2> basis;
  basis.basis.resize(3);
  EXPECT_LE(8 * wire_size(basis), 384u);
}

}  // namespace
}  // namespace lpt::gossip
