// Integration and property tests for the High-Load Clarkson engine
// (Algorithm 5, Theorem 4) and its accelerated variant (Section 3.1).
#include <gtest/gtest.h>

#include "core/high_load.hpp"
#include "problems/linear_program2d.hpp"
#include "problems/min_disk.hpp"
#include "support/test_support.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "workloads/disk_data.hpp"
#include "workloads/lp_data.hpp"

namespace lpt {
namespace {

using core::HighLoadConfig;
using core::run_high_load;
using problems::MinDisk;
using workloads::DiskDataset;

class HighLoadOnDatasets
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HighLoadOnDatasets, FindsOptimum) {
  const auto [dataset_idx, seed] = GetParam();
  const auto dataset = workloads::kAllDiskDatasets[dataset_idx];
  const std::size_t n = 256;
  const auto pts = testsupport::make_disk_points(
                       dataset, n, static_cast<std::uint64_t>(seed));
  MinDisk p;
  HighLoadConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed) * 101 + 3;
  const auto res = run_high_load(p, pts, n, cfg);
  EXPECT_TRUE(res.stats.reached_optimum)
      << workloads::dataset_name(dataset);
  EXPECT_TRUE(p.same_value(res.solution, p.solve(pts)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HighLoadOnDatasets,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(1, 4)));

TEST(HighLoad, HighlyLoadedRegime) {
  // |H| = 16 n log n-ish: the regime Theorem 4 actually targets.
  MinDisk p;
  const std::size_t n = 64;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, 16 * n, 2);
  HighLoadConfig cfg;
  cfg.seed = 5;
  const auto res = run_high_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  // |H(v_i)| concentrates around m/n (paper: (1 +/- eps) m/n w.h.p.).
  EXPECT_GE(res.extras.max_local_elements, pts.size() / n / 2);
}

TEST(HighLoad, RoundsScaleLogarithmically) {
  MinDisk p;
  const std::size_t n = 2048;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTriangle, n, 3);
  HighLoadConfig cfg;
  cfg.seed = 7;
  const auto res = run_high_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  // Paper Section 5: about 1.1 log2(n); allow a generous factor.
  EXPECT_LE(res.stats.rounds_to_first, 5 * util::ceil_log2(n));
}

TEST(HighLoad, AcceleratedVariantIsFaster) {
  // Section 3.1: pushing the basis C times trades work for rounds.
  MinDisk p;
  const std::size_t n = 4096;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, n, 4);
  std::size_t rounds_c1 = 0, rounds_c4 = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    HighLoadConfig cfg;
    cfg.seed = seed;
    cfg.push_copies = 1;
    const auto r1 = run_high_load(p, pts, n, cfg);
    ASSERT_TRUE(r1.stats.reached_optimum);
    rounds_c1 += r1.stats.rounds_to_first;
    cfg.push_copies = 4;
    const auto r4 = run_high_load(p, pts, n, cfg);
    ASSERT_TRUE(r4.stats.reached_optimum);
    rounds_c4 += r4.stats.rounds_to_first;
  }
  EXPECT_LT(rounds_c4, rounds_c1);
}

TEST(HighLoad, AcceleratedWorkScalesWithC) {
  MinDisk p;
  const std::size_t n = 512;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, n, 5);
  HighLoadConfig cfg;
  cfg.seed = 11;
  cfg.push_copies = 1;
  const auto r1 = run_high_load(p, pts, n, cfg);
  cfg.push_copies = 8;
  const auto r8 = run_high_load(p, pts, n, cfg);
  ASSERT_TRUE(r1.stats.reached_optimum);
  ASSERT_TRUE(r8.stats.reached_optimum);
  // Basis pushes alone go from 1 to 8 per node per round.
  EXPECT_GT(r8.stats.max_work_per_round, r1.stats.max_work_per_round);
}

TEST(HighLoad, LoadGrowthIsBounded) {
  // After T rounds |H(V)| <= |H| + O(T C d n log n) w.h.p. (Section 3).
  MinDisk p;
  const std::size_t n = 512;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTriangle, n, 6);
  HighLoadConfig cfg;
  cfg.seed = 13;
  const auto res = run_high_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  const std::size_t t = res.stats.rounds_to_first;
  const std::size_t d = p.dimension();
  const std::size_t bound =
      pts.size() + 8 * t * d * n * (util::ceil_log2(n) + 1);
  EXPECT_LE(res.stats.max_total_elements, bound);
}

TEST(HighLoad, SingleWPushStaysSmall) {
  // Lemma 15: |W_i| = O(d log n) w.h.p. for every received basis.
  MinDisk p;
  const std::size_t n = 1024;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, 4 * n, 7);
  HighLoadConfig cfg;
  cfg.seed = 17;
  const auto res = run_high_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  const std::size_t d = p.dimension();
  EXPECT_LE(res.extras.max_single_w, 12 * d * (util::ceil_log2(n) + 1));
}

TEST(HighLoad, WithTerminationAllNodesOutputCorrectly) {
  MinDisk p;
  const std::size_t n = 128;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, n, 8);
  HighLoadConfig cfg;
  cfg.seed = 19;
  cfg.run_termination = true;
  const auto res = run_high_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_TRUE(res.stats.all_outputs_correct);
  EXPECT_GE(res.stats.rounds_to_all_output, res.stats.rounds_to_first);
}

TEST(HighLoad, WorksOnLpProblem) {
  util::Rng rng(9);
  const std::size_t n = 256;
  const auto inst = workloads::generate_lp_instance(2 * n, rng);
  problems::LinearProgram2D p(inst.objective);
  HighLoadConfig cfg;
  cfg.seed = 23;
  const auto res = run_high_load(p, inst.constraints, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_NEAR(res.solution.value.objective, inst.optimal_value, 1e-6);
}

TEST(HighLoad, DeterministicGivenSeed) {
  MinDisk p;
  const std::size_t n = 128;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kHull, n, 10);
  HighLoadConfig cfg;
  cfg.seed = 29;
  const auto a = run_high_load(p, pts, n, cfg);
  const auto b = run_high_load(p, pts, n, cfg);
  EXPECT_EQ(a.stats.rounds_to_first, b.stats.rounds_to_first);
  EXPECT_EQ(a.stats.total_push_ops, b.stats.total_push_ops);
}

TEST(HighLoad, SingleNodeSolvesImmediately) {
  MinDisk p;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kDuoDisk, 64, 11);
  HighLoadConfig cfg;
  cfg.seed = 31;
  const auto res = run_high_load(p, pts, 1, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_EQ(res.stats.rounds_to_first, 1u);
}

}  // namespace
}  // namespace lpt
