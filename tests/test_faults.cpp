// Fault-injection tests for the distributed engines: the gossip algorithms
// must still find the optimum under message loss and sleeping nodes (the
// Section 1.2 claim that gossip protocols are stable under stress and
// disruptions), at the cost of extra rounds.
#include <gtest/gtest.h>

#include "core/high_load.hpp"
#include "core/hitting_set.hpp"
#include "core/low_load.hpp"
#include "problems/min_disk.hpp"
#include "support/test_support.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "workloads/disk_data.hpp"
#include "workloads/hs_data.hpp"

namespace lpt {
namespace {

using problems::MinDisk;
using workloads::DiskDataset;

// The optimality invariants every faulted min-disk run must uphold,
// expressed through the tests/support matchers (shared with the scenario
// stress matrix): optimal radius per the direct reference solve, all
// points contained, and a basis on the disk boundary.
void expect_min_disk_invariants(const MinDisk& p,
                                const std::vector<geom::Vec2>& pts,
                                const problems::MinDiskSolution& sol) {
  const auto ref = p.solve(pts);
  const double tol = 1e-9 * (ref.disk.radius + 1.0);
  EXPECT_NEAR(sol.disk.radius, ref.disk.radius, tol);
  EXPECT_ALL_INSIDE_DISK(pts, sol.disk.center, sol.disk.radius, tol);
  EXPECT_BASIS_ON_BOUNDARY(sol.basis, sol.disk.center, sol.disk.radius,
                           1e-7 * (ref.disk.radius + 1.0));
}

class FaultMatrix : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  // Fault scenarios: {push_loss, response_loss, sleep_probability}.
  gossip::FaultModel scenario() const {
    gossip::FaultModel f;
    switch (std::get<0>(GetParam())) {
      case 0:
        f.push_loss = 0.2;
        break;
      case 1:
        f.response_loss = 0.2;
        break;
      case 2:
        f.sleep_probability = 0.2;
        break;
      case 3:
        f.push_loss = 0.1;
        f.response_loss = 0.1;
        f.sleep_probability = 0.1;
        break;
    }
    return f;
  }
  int seed() const { return std::get<1>(GetParam()); }
};

TEST_P(FaultMatrix, LowLoadStillFindsOptimum) {
  MinDisk p;
  util::Rng rng(seed());
  const std::size_t n = 512;
  const auto pts =
      workloads::generate_disk_dataset(DiskDataset::kTripleDisk, n, rng);
  core::LowLoadConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed()) * 7 + 1;
  cfg.faults = scenario();
  const auto res = core::run_low_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  expect_min_disk_invariants(p, pts, res.solution);
}

TEST_P(FaultMatrix, HighLoadStillFindsOptimum) {
  MinDisk p;
  const std::size_t n = 512;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTriangle, n,
                                      100 + static_cast<std::uint64_t>(seed()));
  core::HighLoadConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed()) * 11 + 1;
  cfg.faults = scenario();
  const auto res = core::run_high_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  expect_min_disk_invariants(p, pts, res.solution);
}

TEST_P(FaultMatrix, HittingSetStillFindsValidAnswer) {
  util::Rng rng(200 + seed());
  const std::size_t n = 512;
  const auto inst = workloads::generate_planted_hitting_set(n, 32, 2, 4, rng);
  problems::HittingSetProblem p(inst.system);
  core::HittingSetConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed()) * 13 + 1;
  cfg.hitting_set_size = 2;
  cfg.faults = scenario();
  const auto res = core::run_hitting_set(p, n, cfg);
  ASSERT_TRUE(res.valid);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FaultMatrix,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(1, 4)));

TEST(Faults, TerminationProtocolSafeUnderLoss) {
  // Even with heavy loss, no node may output a wrong value.
  MinDisk p;
  const std::size_t n = 256;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, n, 33);
  core::LowLoadConfig cfg;
  cfg.seed = 77;
  cfg.run_termination = true;
  cfg.faults.push_loss = 0.3;
  const auto res = core::run_low_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_TRUE(res.stats.all_outputs_correct);
}

TEST(Faults, OriginalsNeverLostUnderFaults) {
  // Message loss destroys copies in flight, never originals: the run must
  // still end with at least |H| elements in the system and a correct
  // answer, because H_0 is pinned at its home nodes.
  MinDisk p;
  const std::size_t n = 512;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kHull, n, 44);
  core::LowLoadConfig cfg;
  cfg.seed = 55;
  cfg.faults.push_loss = 0.5;
  cfg.faults.sleep_probability = 0.2;
  const auto res = core::run_low_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_GE(res.stats.final_total_elements, pts.size());
}

TEST(Faults, ModerateLossCostsRoundsNotCorrectness) {
  MinDisk p;
  const std::size_t n = 2048;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, n, 66);

  core::HighLoadConfig clean;
  clean.seed = 5;
  const auto r0 = core::run_high_load(p, pts, n, clean);

  core::HighLoadConfig lossy = clean;
  lossy.faults.push_loss = 0.4;
  const auto r1 = core::run_high_load(p, pts, n, lossy);

  ASSERT_TRUE(r0.stats.reached_optimum);
  ASSERT_TRUE(r1.stats.reached_optimum);
  EXPECT_GE(r1.stats.rounds_to_first, r0.stats.rounds_to_first);
  // The cost stays within the Theta(log n) envelope even at 40% loss.
  EXPECT_ROUND_ENVELOPE(r1.stats.rounds_to_first,
                        40 * (util::ceil_log2(n) + 2));
}

}  // namespace
}  // namespace lpt
