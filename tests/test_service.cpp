// Query-service tests: schema wire round-trips, admission batching by
// kind, size dispatch (direct short-circuit vs distributed engine), edge
// payloads (empty, singleton, duplicates), the unsupported-kind path, and
// the headline contract — every served solution is bit-identical to the
// corresponding engine run (MinDisk::solve for direct, run_low_load under
// engine_config_for for distributed), for every worker count.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "core/low_load.hpp"
#include "problems/linear_program2d.hpp"
#include "problems/min_disk.hpp"
#include "service/query.hpp"
#include "service/service.hpp"
#include "support/test_support.hpp"
#include "workloads/disk_data.hpp"
#include "workloads/lp_data.hpp"

namespace lpt {
namespace {

using service::EngineUsed;
using service::LptService;
using service::QueryKind;
using service::QueryRequest;
using service::QueryResponse;
using service::QueryStatus;
using service::ServiceConfig;
using workloads::DiskDataset;

ServiceConfig small_test_config() {
  ServiceConfig cfg;
  cfg.direct_cutoff = 128;    // small enough to exercise both paths cheaply
  cfg.distributed_nodes = 32;
  return cfg;
}

QueryRequest disk_query(std::uint64_t id, std::vector<geom::Vec2> pts) {
  QueryRequest q;
  q.id = id;
  q.kind = QueryKind::kMinDisk;
  q.seed = 5;
  q.points = std::move(pts);
  return q;
}

std::vector<QueryResponse> serve_all(LptService& svc) {
  std::vector<QueryResponse> out;
  while (svc.pending() > 0) svc.run_epoch(out);
  return out;
}

// ---------------------------------------------------------------------
// Wire schema.
// ---------------------------------------------------------------------

TEST(ServiceWire, RequestBatchRoundTripsBitIdentically) {
  std::vector<QueryRequest> batch;
  batch.push_back(disk_query(1, testsupport::golden_disk_points(
                                    DiskDataset::kDuoDisk, 16)));
  QueryRequest lp;
  lp.id = 2;
  lp.kind = QueryKind::kLp2d;
  lp.seed = 9;
  lp.planes = {{{1.0, 0.0}, 4.0}, {{-1.0, 0.5}, 2.0}};
  lp.objective = {0.25, -1.0};
  batch.push_back(lp);
  batch.push_back(disk_query(3, {}));  // empty payload must survive

  gossip::Encoder e;
  service::put_request_batch(e, batch);
  gossip::Decoder d(e.bytes());
  std::vector<QueryRequest> got;
  service::get_request_batch(d, got);
  EXPECT_TRUE(d.exhausted());
  ASSERT_EQ(got.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(got[i], batch[i]) << "request " << i;
  }
}

TEST(ServiceWire, ResponseBatchRoundTripsBitIdentically) {
  LptService svc(small_test_config());
  svc.submit(disk_query(7, testsupport::golden_disk_points(
                               DiskDataset::kTripleDisk, 64)));
  svc.submit(disk_query(8, {}));
  const auto served = serve_all(svc);
  ASSERT_EQ(served.size(), 2u);

  gossip::Encoder e;
  service::put_response_batch(e, served);
  gossip::Decoder d(e.bytes());
  std::vector<QueryResponse> got;
  service::get_response_batch(d, got);
  EXPECT_TRUE(d.exhausted());
  ASSERT_EQ(got.size(), served.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(got[i], served[i]) << "response " << i;
  }
}

// ---------------------------------------------------------------------
// Edge payloads through the direct path.
// ---------------------------------------------------------------------

TEST(Service, EmptyPointSetYieldsEmptyDisk) {
  LptService svc(small_test_config());
  svc.submit(disk_query(1, {}));
  const auto served = serve_all(svc);
  ASSERT_EQ(served.size(), 1u);
  EXPECT_EQ(served[0].status, QueryStatus::kOk);
  EXPECT_EQ(served[0].engine, EngineUsed::kDirect);
  EXPECT_TRUE(served[0].disk.basis.empty());
  EXPECT_TRUE(served[0].disk.disk.empty());
}

TEST(Service, SingletonAndDuplicatePointsSolveCanonically) {
  LptService svc(small_test_config());
  svc.submit(disk_query(1, {{2.0, -3.0}}));
  svc.submit(disk_query(2, std::vector<geom::Vec2>(17, {1.0, 1.0})));
  const auto served = serve_all(svc);
  ASSERT_EQ(served.size(), 2u);

  EXPECT_EQ(served[0].disk.basis.size(), 1u);
  EXPECT_EQ(served[0].disk.disk.center, (geom::Vec2{2.0, -3.0}));
  EXPECT_EQ(served[0].disk.disk.radius, 0.0);

  // 17 copies of one point: the canonical basis dedupes to that point.
  EXPECT_EQ(served[1].disk.basis.size(), 1u);
  EXPECT_EQ(served[1].disk.disk.center, (geom::Vec2{1.0, 1.0}));
  EXPECT_EQ(served[1].disk.disk.radius, 0.0);
}

// ---------------------------------------------------------------------
// Dispatch and admission.
// ---------------------------------------------------------------------

TEST(Service, SizeDispatchRoutesAcrossTheCutoff) {
  LptService svc(small_test_config());
  const auto small = testsupport::golden_disk_points(DiskDataset::kHull, 100);
  const auto large =
      testsupport::golden_disk_points(DiskDataset::kDuoDisk, 300);
  svc.submit(disk_query(1, small));
  svc.submit(disk_query(2, large));
  svc.submit(disk_query(3, small));
  const auto served = serve_all(svc);
  ASSERT_EQ(served.size(), 3u);
  EXPECT_EQ(served[0].engine, EngineUsed::kDirect);
  EXPECT_EQ(served[1].engine, EngineUsed::kDistributed);
  EXPECT_EQ(served[2].engine, EngineUsed::kDirect);
  EXPECT_GT(served[1].rounds, 0u);
  EXPECT_EQ(svc.stats().direct_solves, 2u);
  EXPECT_EQ(svc.stats().distributed_solves, 1u);
}

TEST(Service, EpochsBatchByKindPreservingArrivalOrder) {
  LptService svc(small_test_config());
  const auto pts = testsupport::golden_disk_points(DiskDataset::kTriangle, 20);
  QueryRequest lp;
  lp.kind = QueryKind::kLp2d;
  lp.id = 2;
  lp.planes = {{{0.0, 1.0}, 5.0}};
  svc.submit(disk_query(1, pts));
  svc.submit(std::move(lp));
  svc.submit(disk_query(3, pts));

  // Epoch 1 admits the min-disk queries (ids 1 and 3, arrival order); the
  // LP query waits despite arriving between them.
  std::vector<QueryResponse> out;
  EXPECT_EQ(svc.run_epoch(out), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[0].kind, QueryKind::kMinDisk);
  EXPECT_EQ(out[1].id, 3u);
  EXPECT_EQ(svc.pending(), 1u);

  EXPECT_EQ(svc.run_epoch(out), 1u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2].id, 2u);
  EXPECT_EQ(out[2].kind, QueryKind::kLp2d);
  EXPECT_EQ(svc.pending(), 0u);
  EXPECT_EQ(svc.stats().epochs, 2u);
}

TEST(Service, MaxBatchBoundsOneEpoch) {
  ServiceConfig cfg = small_test_config();
  cfg.max_batch = 2;
  LptService svc(cfg);
  const auto pts = testsupport::golden_disk_points(DiskDataset::kHull, 10);
  for (std::uint64_t id = 0; id < 5; ++id) svc.submit(disk_query(id, pts));
  std::vector<QueryResponse> out;
  EXPECT_EQ(svc.run_epoch(out), 2u);
  EXPECT_EQ(svc.pending(), 3u);
  EXPECT_EQ(svc.run_epoch(out), 2u);
  EXPECT_EQ(svc.run_epoch(out), 1u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].id, i);
}

TEST(Service, UnsupportedKindsAnswerWithoutSolving) {
  LptService svc(small_test_config());
  QueryRequest q;
  q.id = 11;
  q.kind = QueryKind::kMinBall;
  svc.submit(std::move(q));
  QueryRequest h;
  h.id = 12;
  h.kind = QueryKind::kHittingSet;
  svc.submit(std::move(h));
  const auto served = serve_all(svc);
  ASSERT_EQ(served.size(), 2u);
  for (const auto& r : served) {
    EXPECT_EQ(r.status, QueryStatus::kUnsupported);
    EXPECT_EQ(r.engine, EngineUsed::kNone);
  }
  EXPECT_EQ(svc.stats().unsupported, 2u);
}

// ---------------------------------------------------------------------
// Bit-identity: served == the corresponding engine run.
// ---------------------------------------------------------------------

TEST(Service, DirectServedDiskIsBitIdenticalToMinDiskSolve) {
  LptService svc(small_test_config());
  const problems::MinDisk p;
  for (const auto dataset :
       {DiskDataset::kDuoDisk, DiskDataset::kTriangle, DiskDataset::kHull}) {
    const auto pts = testsupport::golden_disk_points(dataset, 90);
    svc.submit(disk_query(1 + static_cast<std::uint64_t>(dataset), pts));
    const auto served = serve_all(svc);
    ASSERT_EQ(served.size(), 1u);
    EXPECT_EQ(served[0].engine, EngineUsed::kDirect);
    EXPECT_EQ(served[0].disk, p.solve(pts));  // bit-identical, not near
  }
}

TEST(Service, DistributedServedDiskIsBitIdenticalToEngineRun) {
  LptService svc(small_test_config());
  const auto pts =
      testsupport::golden_disk_points(DiskDataset::kTripleDisk, 400);
  const auto q = disk_query(21, pts);
  const auto engine_cfg = svc.engine_config_for(q);
  svc.submit(QueryRequest(q));
  const auto served = serve_all(svc);
  ASSERT_EQ(served.size(), 1u);
  EXPECT_EQ(served[0].engine, EngineUsed::kDistributed);

  const problems::MinDisk p;
  const auto engine = core::run_low_load(p, std::span<const geom::Vec2>(pts),
                                         32, engine_cfg);
  EXPECT_TRUE(engine.stats.reached_optimum);
  EXPECT_EQ(served[0].disk, engine.solution);
  EXPECT_EQ(served[0].rounds, engine.stats.rounds_to_first);
}

TEST(Service, PerQuerySeedsDecorrelateEqualPayloads) {
  LptService svc(small_test_config());
  const auto pts = testsupport::golden_disk_points(DiskDataset::kHull, 200);
  const auto a = svc.engine_config_for(disk_query(1, pts));
  const auto b = svc.engine_config_for(disk_query(2, pts));
  EXPECT_NE(a.seed, b.seed);  // same payload, different ids → fresh streams
}

TEST(Service, ResponsesBitIdenticalForEveryWorkerCount) {
  const auto small = testsupport::golden_disk_points(DiskDataset::kHull, 80);
  const auto large =
      testsupport::golden_disk_points(DiskDataset::kDuoDisk, 260);
  std::vector<QueryResponse> baseline;
  for (const std::size_t workers : {1u, 2u, 3u}) {
    ServiceConfig cfg = small_test_config();
    cfg.workers = workers;
    LptService svc(cfg);
    for (std::uint64_t id = 0; id < 6; ++id) {
      svc.submit(disk_query(id, id % 3 == 0 ? large : small));
    }
    auto served = serve_all(svc);
    ASSERT_EQ(served.size(), 6u);
    for (auto& r : served) r.solve_nanos = 0;  // timing is not part of it
    if (workers == 1) {
      baseline = std::move(served);
    } else {
      EXPECT_EQ(served, baseline) << "workers=" << workers;
    }
  }
}

// ---------------------------------------------------------------------
// 2D LP queries.
// ---------------------------------------------------------------------

TEST(Service, Lp2dQueriesServeOnBothPaths) {
  ServiceConfig cfg = small_test_config();
  LptService svc(cfg);
  auto rng = testsupport::seeded_rng("service-lp2d");
  const auto small_inst = workloads::generate_lp_instance(60, rng);
  const auto large_inst = workloads::generate_lp_instance(300, rng);
  const geom::Vec2 objective = small_inst.objective;
  const auto& small = small_inst.constraints;
  const auto& large = large_inst.constraints;

  QueryRequest qs;
  qs.id = 1;
  qs.kind = QueryKind::kLp2d;
  qs.seed = 3;
  qs.planes = small;
  qs.objective = objective;
  QueryRequest ql = qs;
  ql.id = 2;
  ql.planes = large;
  const auto engine_cfg = svc.engine_config_for(ql);
  svc.submit(std::move(qs));
  svc.submit(std::move(ql));
  const auto served = serve_all(svc);
  ASSERT_EQ(served.size(), 2u);

  const problems::LinearProgram2D p(objective);
  EXPECT_EQ(served[0].engine, EngineUsed::kDirect);
  EXPECT_EQ(served[0].lp, p.solve(std::span<const lp::Halfplane>(small)));

  EXPECT_EQ(served[1].engine, EngineUsed::kDistributed);
  const auto engine = core::run_low_load(
      p, std::span<const lp::Halfplane>(large), 32, engine_cfg);
  EXPECT_TRUE(engine.stats.reached_optimum);
  EXPECT_EQ(served[1].lp, engine.solution);
}

// ---------------------------------------------------------------------
// Slot recycling.
// ---------------------------------------------------------------------

TEST(Service, RecycledSlotsKeepServingCorrectly) {
  LptService svc(small_test_config());
  const problems::MinDisk p;
  std::vector<QueryResponse> out;
  for (int cycle = 0; cycle < 4; ++cycle) {
    const auto pts = testsupport::make_disk_points(
        DiskDataset::kTriangle, 50, 100 + static_cast<std::uint64_t>(cycle));
    auto q = svc.acquire_request();
    q.id = static_cast<std::uint64_t>(cycle);
    q.points.assign(pts.begin(), pts.end());
    svc.submit(std::move(q));
    EXPECT_EQ(svc.run_epoch(out), 1u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].disk, p.solve(pts)) << "cycle " << cycle;
    svc.recycle_response(std::move(out[0]));
    out.clear();
  }
  EXPECT_EQ(svc.stats().served, 4u);
  EXPECT_EQ(svc.stats().arena_resets, 4u);
}

}  // namespace
}  // namespace lpt
