// Socket-transport-specific tests: the failure modes a TCP stream adds on
// top of the pipe surface (a peer that connects and then vanishes, a
// half-open stream truncating mid-frame, reconnect-after-kill delivering a
// brand-new stream) and the bootstrap-over-the-wire path that replaces
// fork inheritance for socket workers — payload round-trip through the
// serve factory, bootstrap_worker_loop over a real stream fd, and the
// service layer answering a distributed query over loopback TCP
// bit-identically to the serial engine.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "core/low_load.hpp"
#include "core/result.hpp"
#include "problems/min_disk.hpp"
#include "service/service.hpp"
#include "shard/runtime.hpp"
#include "shard/transport.hpp"
#include "shard/wire.hpp"
#include "support/test_support.hpp"
#include "workloads/disk_data.hpp"

namespace lpt {
namespace {

using problems::MinDisk;
using shard::DownCause;
using shard::RecvResult;
using shard::TransportKind;
using shard::WorkerExit;
using workloads::DiskDataset;

// A connected AF_UNIX stream pair: byte-stream semantics like TCP (partial
// reads, FIN-style EOF on close, EPIPE on write-after-close), without
// needing a listener — the right fixture for endpoint-level stream tests.
struct StreamPair {
  int a = -1;
  int b = -1;
  StreamPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~StreamPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void close_a() {
    ::close(a);
    a = -1;
  }
};

// ---------------------------------------------------------------------
// SocketEndpoint over a raw stream: framing, timeout, truncation, EPIPE.
// ---------------------------------------------------------------------

TEST(SocketEndpoint, RoundTripsAFrameOverAStreamPair) {
  StreamPair s;
  shard::SocketEndpoint tx(s.a);
  shard::SocketEndpoint rx(s.b);
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(tx.send(payload));
  const RecvResult r = rx.recv_frame(-1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.frame, payload);
  s.a = s.b = -1;  // the endpoints own the fds now
}

TEST(SocketEndpoint, TimesOutOnASilentPeer) {
  StreamPair s;
  shard::SocketEndpoint rx(s.b);
  const RecvResult r = rx.recv_frame(50);
  EXPECT_EQ(r.status, RecvResult::Status::kTimeout);
  s.b = -1;
}

TEST(SocketEndpoint, ReportsCleanEofWhenPeerClosesAtAFrameBoundary) {
  StreamPair s;
  s.close_a();
  shard::SocketEndpoint rx(s.b);
  const RecvResult r = rx.recv_frame(-1);
  EXPECT_EQ(r.status, RecvResult::Status::kDown);
  EXPECT_EQ(r.cause, DownCause::kEof);
  s.b = -1;
}

TEST(SocketEndpoint, ReportsHalfOpenStreamTruncationMidFrame) {
  // The writer announces a 64-byte frame, delivers 10 bytes, and closes:
  // the half-open read side must classify this as a mid-frame truncation,
  // not a clean shutdown.
  StreamPair s;
  const std::uint32_t len = 64;
  ASSERT_EQ(::write(s.a, &len, sizeof len),
            static_cast<ssize_t>(sizeof len));
  const std::uint8_t partial[10] = {};
  ASSERT_EQ(::write(s.a, partial, sizeof partial),
            static_cast<ssize_t>(sizeof partial));
  s.close_a();
  shard::SocketEndpoint rx(s.b);
  const RecvResult r = rx.recv_frame(-1);
  EXPECT_EQ(r.status, RecvResult::Status::kDown);
  EXPECT_EQ(r.cause, DownCause::kTruncated);
  s.b = -1;
}

TEST(SocketEndpoint, SendReturnsFalseOncePeerIsGone) {
  ::signal(SIGPIPE, SIG_IGN);  // normally done by ProcessTransport::spawn
  StreamPair s;
  s.close_a();
  shard::SocketEndpoint tx(s.b);
  const std::vector<std::uint8_t> payload = {9, 9, 9};
  // AF_UNIX reports the closed peer on the first write (TCP may need a
  // round trip first); either way a finite number of sends must fail
  // without aborting.
  bool failed = false;
  for (int i = 0; i < 3 && !failed; ++i) failed = !tx.send(payload);
  EXPECT_TRUE(failed);
  s.b = -1;
}

// ---------------------------------------------------------------------
// SocketTransport process lifecycle: connect-then-vanish, kill, respawn
// over a fresh connection.
// ---------------------------------------------------------------------

void echo_serve(gossip::Decoder& d, gossip::Encoder& e) {
  shard::put_msg_type(e, shard::MsgType::kStageAResult);
  while (!d.exhausted()) e.put_u8(d.get_u8());
}

TEST(SocketTransport, ListensOnAnEphemeralLoopbackPort) {
  shard::SocketTransport t;
  EXPECT_NE(t.port(), 0);
}

TEST(SocketTransport, PeerThatConnectsThenVanishesReadsAsEof) {
  // The worker connects, completes the hello, and exits without ever
  // serving: the coordinator's next recv sees the FIN as a clean EOF and
  // the reaped exit status is the worker's real one.
  shard::SocketTransport t;
  t.spawn(1, [](std::size_t, shard::Endpoint&) { ::_exit(7); });
  const RecvResult r = t.endpoint(0).recv_frame(-1);
  EXPECT_EQ(r.status, RecvResult::Status::kDown);
  EXPECT_EQ(r.cause, DownCause::kEof);
  WorkerExit ex;
  do {  // WNOHANG reap: poll until the child actually died
    ex = t.exit_status(0);
  } while (ex.kind == WorkerExit::Kind::kRunning);
  EXPECT_EQ(ex.kind, WorkerExit::Kind::kExited);
  EXPECT_EQ(ex.value, 7);
  t.expect_down(0);
  t.join();
}

TEST(SocketTransport, RespawnAcceptsAFreshConnectionAfterKill) {
  shard::SocketTransport t;
  t.spawn(2, [](std::size_t, shard::Endpoint& ep) {
    shard::worker_loop(ep, echo_serve);
  });
  gossip::Encoder task;
  shard::put_msg_type(task, shard::MsgType::kStageATask);
  task.put_u8(11);

  // Shard 0 works, dies by SIGKILL, and is respawned over a brand-new
  // accepted connection (respawn-over-reconnect) that serves again.
  ASSERT_TRUE(t.endpoint(0).send(task.bytes()));
  ASSERT_TRUE(t.endpoint(0).recv_frame(-1).ok());
  t.kill_worker(0);
  const WorkerExit ex = t.exit_status(0);
  EXPECT_EQ(ex.kind, WorkerExit::Kind::kSignaled);
  EXPECT_EQ(ex.value, SIGKILL);
  t.respawn(0);
  ASSERT_TRUE(t.endpoint(0).send(task.bytes()));
  const RecvResult r = t.endpoint(0).recv_frame(-1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.frame.back(), 11);

  // Shard 1 was untouched throughout.
  ASSERT_TRUE(t.endpoint(1).send(task.bytes()));
  ASSERT_TRUE(t.endpoint(1).recv_frame(-1).ok());

  gossip::Encoder bye;
  shard::put_msg_type(bye, shard::MsgType::kShutdown);
  EXPECT_TRUE(t.endpoint(0).send(bye.bytes()));
  EXPECT_TRUE(t.endpoint(1).send(bye.bytes()));
  t.join();
}

// ---------------------------------------------------------------------
// Bootstrap over the wire: the payload round-trips through the serve
// factory, and bootstrap_worker_loop runs the result over a real stream.
// ---------------------------------------------------------------------

TEST(SocketBootstrap, PayloadRoundTripsThroughTheServeFactory) {
  // Encode the run-static description, decode it through the factory, and
  // check the rebuilt handler answers a task byte-for-byte like a handler
  // built directly from the same inputs — the bootstrap carries *all* the
  // state the serve closure needs.
  MinDisk p;
  core::SamplerConfig sampler;
  sampler.target = 54;
  sampler.log_n = 8;
  sampler.c = 2.5;
  sampler.strict = true;
  const MinDisk::Solution oracle{};  // value only compared via same_value
  const auto payload = core::detail::low_load_bootstrap_payload<MinDisk>(
      oracle, sampler, /*run_termination=*/true);

  gossip::Decoder d(payload);
  auto factory = core::detail::make_low_load_bootstrap_factory<MinDisk>(p);
  auto rebuilt = factory(d);
  EXPECT_TRUE(d.exhausted()) << "factory must consume the whole payload";
  auto direct = core::detail::make_low_load_serve<MinDisk>(
      p, oracle, sampler, /*run_termination=*/true);

  // An all-inactive task range exercises the full header/trailer codec
  // without needing live RNG state.
  gossip::Encoder task;
  task.put_u8(0);   // no solution snapshot yet
  task.put_u32(0);  // begin
  task.put_u32(3);  // end
  for (int v = 0; v < 3; ++v) task.put_u8(0);  // all inactive

  gossip::Encoder out_rebuilt;
  gossip::Decoder d1(task.bytes());
  rebuilt(d1, out_rebuilt);
  gossip::Encoder out_direct;
  gossip::Decoder d2(task.bytes());
  direct(d2, out_direct);
  EXPECT_EQ(out_rebuilt.bytes(), out_direct.bytes());
}

TEST(SocketBootstrap, WorkerLoopServesOnlyAfterItsBootstrapFrame) {
  // bootstrap_worker_loop over a real stream fd: the first frame carries
  // the handler's configuration (an echo prefix here), later task frames
  // are served with it, and the shutdown frame ends the loop.
  StreamPair s;
  std::thread worker([fd = s.b] {
    shard::SocketEndpoint ep(fd);
    shard::bootstrap_worker_loop(ep, [](gossip::Decoder& d) {
      const std::uint8_t prefix = d.get_u8();
      return [prefix](gossip::Decoder& task, gossip::Encoder& e) {
        shard::put_msg_type(e, shard::MsgType::kStageAResult);
        e.put_u8(prefix);
        while (!task.exhausted()) e.put_u8(task.get_u8());
      };
    });
  });
  s.b = -1;  // the worker's endpoint owns it now

  shard::SocketEndpoint coord(s.a);
  s.a = -1;
  gossip::Encoder boot;
  shard::put_msg_type(boot, shard::MsgType::kBootstrap);
  boot.put_u8(42);
  ASSERT_TRUE(coord.send(boot.bytes()));

  gossip::Encoder task;
  shard::put_msg_type(task, shard::MsgType::kStageATask);
  task.put_u8(1);
  task.put_u8(2);
  ASSERT_TRUE(coord.send(task.bytes()));
  const RecvResult r = coord.recv_frame(-1);
  ASSERT_TRUE(r.ok());
  gossip::Decoder rd(r.frame);
  EXPECT_EQ(shard::get_msg_type(rd), shard::MsgType::kStageAResult);
  EXPECT_EQ(rd.get_u8(), 42);  // the bootstrap-configured prefix
  EXPECT_EQ(rd.get_u8(), 1);
  EXPECT_EQ(rd.get_u8(), 2);

  gossip::Encoder bye;
  shard::put_msg_type(bye, shard::MsgType::kShutdown);
  ASSERT_TRUE(coord.send(bye.bytes()));
  worker.join();
}

// ---------------------------------------------------------------------
// End to end: the engine and the service over loopback TCP match the
// serial engine bit for bit.
// ---------------------------------------------------------------------

TEST(SocketEndToEnd, LowLoadOverSocketMatchesSerial) {
  MinDisk p;
  const std::size_t n = 192;
  const auto pts = testsupport::golden_disk_points(DiskDataset::kHull, n);
  core::LowLoadConfig base;
  base.seed = 21;
  const auto serial = core::run_low_load(p, pts, n, base);

  core::LowLoadConfig cfg = base;
  cfg.shard.shards = 3;
  cfg.shard.transport = TransportKind::kSocket;
  const auto res = core::run_low_load(p, pts, n, cfg);
  EXPECT_EQ(serial.solution, res.solution);
  EXPECT_EQ(serial.stats.rounds_to_first, res.stats.rounds_to_first);
  EXPECT_EQ(serial.stats.total_bytes, res.stats.total_bytes);
  EXPECT_EQ(serial.stats.sampling_attempts, res.stats.sampling_attempts);
}

TEST(SocketEndToEnd, ServiceAnswersDistributedQueryOverSocket) {
  service::ServiceConfig cfg;
  cfg.direct_cutoff = 32;
  cfg.distributed_nodes = 64;
  cfg.engine.shard.shards = 2;
  cfg.engine.shard.transport = TransportKind::kSocket;
  service::LptService svc(cfg);

  const auto pts = testsupport::golden_disk_points(DiskDataset::kHull, 64);
  service::QueryRequest q = svc.acquire_request();
  q.id = 4;
  q.kind = service::QueryKind::kMinDisk;
  q.seed = 5;
  q.points.assign(pts.begin(), pts.end());
  const std::vector<geom::Vec2> kept = q.points;  // before the move
  core::LowLoadConfig ref_cfg = svc.engine_config_for(q);
  ref_cfg.shard = {};  // the serial reference

  std::vector<service::QueryResponse> out;
  svc.submit(std::move(q));
  ASSERT_EQ(svc.run_epoch(out), 1u);
  EXPECT_EQ(out[0].status, service::QueryStatus::kOk);
  EXPECT_EQ(out[0].engine, service::EngineUsed::kDistributed);

  const auto ref = core::run_low_load(
      MinDisk{}, std::span<const geom::Vec2>(kept), cfg.distributed_nodes,
      ref_cfg);
  EXPECT_EQ(out[0].disk, ref.solution);
  EXPECT_EQ(out[0].rounds,
            static_cast<std::uint32_t>(ref.stats.rounds_to_first));
}

}  // namespace
}  // namespace lpt
