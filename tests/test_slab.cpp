// Tests for the size-class slab allocator behind gossip::NodeStore: class
// sizing, O(1) allocate/release recycling, slot data integrity across many
// live slots, epoch reset, and store growth across size classes.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gossip/network.hpp"
#include "util/rng.hpp"
#include "util/slab.hpp"

namespace lpt::util {
namespace {

TEST(SlabPool, ClassSizing) {
  using Pool = SlabPool<std::uint32_t>;
  EXPECT_EQ(Pool::class_for(1), 0u);
  EXPECT_EQ(Pool::class_for(4), 0u);
  EXPECT_EQ(Pool::class_for(5), 1u);
  EXPECT_EQ(Pool::class_for(8), 1u);
  EXPECT_EQ(Pool::class_for(9), 2u);
  EXPECT_EQ(Pool::class_capacity(0), 4u);
  EXPECT_EQ(Pool::class_capacity(3), 32u);
  // A slot always holds at least what was asked for.
  for (std::size_t cap = 1; cap < 5000; cap = cap * 3 + 1) {
    EXPECT_GE(Pool::class_capacity(Pool::class_for(cap)), cap);
  }
}

TEST(SlabPool, SlotsHoldDataIndependently) {
  SlabPool<std::uint64_t> pool;
  const std::size_t slots = 5000;  // spans several chunks of class 1
  std::vector<std::uint32_t> refs;
  for (std::size_t i = 0; i < slots; ++i) {
    const auto ref = pool.allocate_for(8);
    std::uint64_t* p = pool.data(ref);
    for (std::size_t j = 0; j < 8; ++j) p[j] = i * 100 + j;
    refs.push_back(ref);
  }
  EXPECT_EQ(pool.live_slots(), slots);
  for (std::size_t i = 0; i < slots; ++i) {
    const std::uint64_t* p = pool.data(refs[i]);
    for (std::size_t j = 0; j < 8; ++j) {
      ASSERT_EQ(p[j], i * 100 + j) << "slot " << i;
    }
  }
}

TEST(SlabPool, ReleaseRecyclesWithinClass) {
  SlabPool<int> pool;
  const auto a = pool.allocate_for(4);
  const auto b = pool.allocate_for(4);
  pool.release(a);
  const auto c = pool.allocate_for(3);  // same class: must reuse a's slot
  EXPECT_EQ(c, a);
  EXPECT_NE(c, b);
  EXPECT_EQ(pool.live_slots(), 2u);
}

TEST(SlabPool, ResetRecyclesEverything) {
  SlabPool<int> pool;
  std::vector<std::uint32_t> first_epoch;
  for (int i = 0; i < 100; ++i) first_epoch.push_back(pool.allocate_for(16));
  const std::size_t reserved = pool.arena_bytes();
  pool.reset();
  EXPECT_EQ(pool.live_slots(), 0u);
  EXPECT_EQ(pool.arena_bytes(), reserved);  // arenas kept, slots recycled
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(pool.allocate_for(16), first_epoch[static_cast<std::size_t>(i)]);
  }
}

TEST(SlabPool, MixedClassesDoNotAlias) {
  SlabPool<std::uint32_t> pool;
  util::Rng rng(7);
  struct Live {
    std::uint32_t ref;
    std::size_t len;
    std::uint32_t tag;
  };
  std::vector<Live> live;
  std::uint32_t tag = 1;
  for (int step = 0; step < 4000; ++step) {
    if (!live.empty() && rng.bernoulli(0.4)) {
      const std::size_t pick = rng.below(live.size());
      pool.release(live[pick].ref);
      live[pick] = live.back();
      live.pop_back();
    } else {
      const std::size_t len = 1 + rng.below(200);
      const auto ref = pool.allocate_for(len);
      ASSERT_GE(SlabPool<std::uint32_t>::capacity(ref), len);
      std::uint32_t* p = pool.data(ref);
      for (std::size_t j = 0; j < len; ++j) p[j] = tag;
      live.push_back({ref, len, tag++});
    }
  }
  for (const auto& l : live) {
    const std::uint32_t* p = pool.data(l.ref);
    for (std::size_t j = 0; j < l.len; ++j) {
      ASSERT_EQ(p[j], l.tag) << "aliased slot";
    }
  }
}

TEST(NodeStoreSlab, GrowsThroughSizeClasses) {
  // One node absorbing thousands of elements crosses many size classes;
  // the logical sequence must survive every grow-copy.
  gossip::NodeStore<std::uint32_t> store(3);
  const std::size_t count = 10000;
  for (std::uint32_t i = 0; i < count; ++i) store.add_copy(1, i);
  ASSERT_EQ(store.size(1), count);
  EXPECT_EQ(store.total_elements(), count);
  const auto view = store.view(1);
  for (std::uint32_t i = 0; i < count; ++i) {
    ASSERT_EQ(view[i], i);
    ASSERT_EQ(store.elem(1, i), i);
  }
  EXPECT_TRUE(store.view(0).empty());
  EXPECT_TRUE(store.view(2).empty());
}

TEST(NodeStoreSlab, ResetReusesArenas) {
  gossip::NodeStore<std::uint32_t> store(128);
  for (std::uint32_t i = 0; i < 2000; ++i) store.add_copy(i % 128, i);
  const std::size_t reserved = store.arena_bytes();
  EXPECT_GT(reserved, 0u);
  store.reset();
  EXPECT_EQ(store.total_elements(), 0u);
  EXPECT_EQ(store.copy_holders().size(), 0u);
  EXPECT_EQ(store.arena_bytes(), reserved);
  for (gossip::NodeId v = 0; v < 128; ++v) EXPECT_TRUE(store.view(v).empty());
  store.add_original(5, 42);
  EXPECT_EQ(store.elem(5, 0), 42u);
  EXPECT_EQ(store.total_elements(), 1u);
}

}  // namespace
}  // namespace lpt::util
