// Golden regression tests: fixed seeds must keep producing the exact same
// measurements.  These pin the simulator's determinism contract — any
// change to RNG consumption order, delivery order, or metering shows up
// here first (update the constants deliberately if the change is
// intentional, and say so in the commit).
#include <gtest/gtest.h>

#include "core/high_load.hpp"
#include "core/low_load.hpp"
#include "gossip/overlay.hpp"
#include "problems/min_disk.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"
#include "workloads/disk_data.hpp"

namespace lpt {
namespace {

using problems::MinDisk;
using workloads::DiskDataset;

TEST(Regression, RngStreamIsStable) {
  util::Rng r(123456789);
  // First three raw draws of xoshiro256** seeded via splitmix64(123456789).
  const std::uint64_t a = r();
  const std::uint64_t b = r();
  util::Rng r2(123456789);
  EXPECT_EQ(r2(), a);
  EXPECT_EQ(r2(), b);
  // Child derivation is position-independent.
  EXPECT_EQ(util::Rng(42).child(3)(), util::Rng(42).child(3)());
  EXPECT_NE(util::Rng(42).child(3)(), util::Rng(42).child(4)());
}

TEST(Regression, LowLoadRunIsBitStable) {
  MinDisk p;
  util::Rng rng(2024);
  const std::size_t n = 512;
  const auto pts =
      workloads::generate_disk_dataset(DiskDataset::kTripleDisk, n, rng);
  core::LowLoadConfig cfg;
  cfg.seed = 99;
  const auto a = core::run_low_load(p, pts, n, cfg);
  const auto b = core::run_low_load(p, pts, n, cfg);
  ASSERT_TRUE(a.stats.reached_optimum);
  EXPECT_EQ(a.stats.rounds_to_first, b.stats.rounds_to_first);
  EXPECT_EQ(a.stats.total_push_ops, b.stats.total_push_ops);
  EXPECT_EQ(a.stats.total_pull_ops, b.stats.total_pull_ops);
  EXPECT_EQ(a.stats.total_bytes, b.stats.total_bytes);
  EXPECT_EQ(a.stats.max_total_elements, b.stats.max_total_elements);
  EXPECT_EQ(a.solution.basis, b.solution.basis);
}

TEST(Regression, HighLoadRunIsBitStable) {
  MinDisk p;
  util::Rng rng(2025);
  const std::size_t n = 512;
  const auto pts =
      workloads::generate_disk_dataset(DiskDataset::kHull, n, rng);
  core::HighLoadConfig cfg;
  cfg.seed = 7;
  const auto a = core::run_high_load(p, pts, n, cfg);
  const auto b = core::run_high_load(p, pts, n, cfg);
  ASSERT_TRUE(a.stats.reached_optimum);
  EXPECT_EQ(a.stats.rounds_to_first, b.stats.rounds_to_first);
  EXPECT_EQ(a.stats.total_push_ops, b.stats.total_push_ops);
  EXPECT_EQ(a.stats.max_work_per_round, b.stats.max_work_per_round);
}

TEST(Regression, DatasetGenerationIsStable) {
  util::Rng a(777), b(777);
  const auto p1 = workloads::generate_disk_dataset(DiskDataset::kHull, 64, a);
  const auto p2 = workloads::generate_disk_dataset(DiskDataset::kHull, 64, b);
  EXPECT_EQ(p1, p2);
}

TEST(Regression, FaultInjectionIsSeedDeterministic) {
  MinDisk p;
  util::Rng rng(2026);
  const std::size_t n = 256;
  const auto pts =
      workloads::generate_disk_dataset(DiskDataset::kTriangle, n, rng);
  core::LowLoadConfig cfg;
  cfg.seed = 31;
  cfg.faults.push_loss = 0.25;
  cfg.faults.sleep_probability = 0.1;
  const auto a = core::run_low_load(p, pts, n, cfg);
  const auto b = core::run_low_load(p, pts, n, cfg);
  EXPECT_EQ(a.stats.rounds_to_first, b.stats.rounds_to_first);
  EXPECT_EQ(a.stats.total_push_ops, b.stats.total_push_ops);
}

TEST(Regression, SameSeedBitIdenticalAcrossAllDatasets) {
  // Exhaustive seed-determinism contract: for every paper dataset, two runs
  // of each engine from identical configs must agree on *every* observable —
  // solution basis, rounds, op counts, bytes, and memory high-water marks.
  // Freshly-constructed configs (not a shared object) guard against hidden
  // mutable state inside the engines.
  MinDisk p;
  const std::size_t n = 256;
  for (const auto d : workloads::kAllDiskDatasets) {
    const auto pts = testsupport::golden_disk_points(d, n);

    core::LowLoadConfig lo1, lo2;
    lo1.seed = lo2.seed = 4242;
    const auto la = core::run_low_load(p, pts, n, lo1);
    const auto lb = core::run_low_load(p, pts, n, lo2);
    EXPECT_EQ(la.solution.basis, lb.solution.basis)
        << "low-load basis diverged on " << workloads::dataset_name(d);
    EXPECT_EQ(la.solution.disk, lb.solution.disk);
    EXPECT_EQ(la.stats.reached_optimum, lb.stats.reached_optimum);
    EXPECT_EQ(la.stats.rounds_to_first, lb.stats.rounds_to_first);
    EXPECT_EQ(la.stats.total_push_ops, lb.stats.total_push_ops);
    EXPECT_EQ(la.stats.total_pull_ops, lb.stats.total_pull_ops);
    EXPECT_EQ(la.stats.total_bytes, lb.stats.total_bytes);
    EXPECT_EQ(la.stats.max_total_elements, lb.stats.max_total_elements);
    EXPECT_EQ(la.stats.max_work_per_round, lb.stats.max_work_per_round);

    core::HighLoadConfig hi1, hi2;
    hi1.seed = hi2.seed = 4242;
    const auto ha = core::run_high_load(p, pts, n, hi1);
    const auto hb = core::run_high_load(p, pts, n, hi2);
    EXPECT_EQ(ha.solution.basis, hb.solution.basis)
        << "high-load basis diverged on " << workloads::dataset_name(d);
    EXPECT_EQ(ha.solution.disk, hb.solution.disk);
    EXPECT_EQ(ha.stats.reached_optimum, hb.stats.reached_optimum);
    EXPECT_EQ(ha.stats.rounds_to_first, hb.stats.rounds_to_first);
    EXPECT_EQ(ha.stats.total_push_ops, hb.stats.total_push_ops);
    EXPECT_EQ(ha.stats.total_pull_ops, hb.stats.total_pull_ops);
    EXPECT_EQ(ha.stats.total_bytes, hb.stats.total_bytes);
    EXPECT_EQ(ha.stats.max_total_elements, hb.stats.max_total_elements);
    EXPECT_EQ(ha.stats.max_work_per_round, hb.stats.max_work_per_round);
  }
}

TEST(Regression, DifferentSeedsMayDivergeButStayCorrect) {
  // Companion to the bit-stability tests: seeds are the *only* source of
  // run-to-run variation, and any seed still reaches the true optimum.
  MinDisk p;
  const std::size_t n = 256;
  const auto pts =
      testsupport::golden_disk_points(workloads::DiskDataset::kTripleDisk, n);
  const double golden = testsupport::golden_min_disk_radius(
      workloads::DiskDataset::kTripleDisk, n);
  for (const std::uint64_t seed : {1ull, 2ull, 99ull}) {
    core::LowLoadConfig cfg;
    cfg.seed = seed;
    const auto r = core::run_low_load(p, pts, n, cfg);
    ASSERT_TRUE(r.stats.reached_optimum) << "seed " << seed;
    EXPECT_REL_NEAR(r.solution.disk.radius, golden, 1e-9);
  }
}

TEST(Regression, OverlayCostFormula) {
  // Section 1.2: O(T + log n) time, O(W log n) work.
  const auto c = gossip::overlay_emulation_cost(20, 100, 1024);
  EXPECT_EQ(c.rounds, 20u + 11u);
  EXPECT_EQ(c.max_work, 100u * 11u);

  core::DistributedRunStats stats;
  stats.rounds_to_first = 5;
  stats.max_work_per_round = 140;
  const auto c2 = gossip::overlay_emulation_cost(stats, 1 << 14);
  EXPECT_EQ(c2.rounds, 5u + 15u);
  EXPECT_EQ(c2.max_work, 140u * 15u);
}

}  // namespace
}  // namespace lpt
