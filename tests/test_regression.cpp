// Golden regression tests: fixed seeds must keep producing the exact same
// measurements.  These pin the simulator's determinism contract — any
// change to RNG consumption order, delivery order, or metering shows up
// here first (update the constants deliberately if the change is
// intentional, and say so in the commit).
#include <gtest/gtest.h>

#include "core/high_load.hpp"
#include "core/low_load.hpp"
#include "gossip/overlay.hpp"
#include "problems/min_disk.hpp"
#include "util/rng.hpp"
#include "workloads/disk_data.hpp"

namespace lpt {
namespace {

using problems::MinDisk;
using workloads::DiskDataset;

TEST(Regression, RngStreamIsStable) {
  util::Rng r(123456789);
  // First three raw draws of xoshiro256** seeded via splitmix64(123456789).
  const std::uint64_t a = r();
  const std::uint64_t b = r();
  util::Rng r2(123456789);
  EXPECT_EQ(r2(), a);
  EXPECT_EQ(r2(), b);
  // Child derivation is position-independent.
  EXPECT_EQ(util::Rng(42).child(3)(), util::Rng(42).child(3)());
  EXPECT_NE(util::Rng(42).child(3)(), util::Rng(42).child(4)());
}

TEST(Regression, LowLoadRunIsBitStable) {
  MinDisk p;
  util::Rng rng(2024);
  const std::size_t n = 512;
  const auto pts =
      workloads::generate_disk_dataset(DiskDataset::kTripleDisk, n, rng);
  core::LowLoadConfig cfg;
  cfg.seed = 99;
  const auto a = core::run_low_load(p, pts, n, cfg);
  const auto b = core::run_low_load(p, pts, n, cfg);
  ASSERT_TRUE(a.stats.reached_optimum);
  EXPECT_EQ(a.stats.rounds_to_first, b.stats.rounds_to_first);
  EXPECT_EQ(a.stats.total_push_ops, b.stats.total_push_ops);
  EXPECT_EQ(a.stats.total_pull_ops, b.stats.total_pull_ops);
  EXPECT_EQ(a.stats.total_bytes, b.stats.total_bytes);
  EXPECT_EQ(a.stats.max_total_elements, b.stats.max_total_elements);
  EXPECT_EQ(a.solution.basis, b.solution.basis);
}

TEST(Regression, HighLoadRunIsBitStable) {
  MinDisk p;
  util::Rng rng(2025);
  const std::size_t n = 512;
  const auto pts =
      workloads::generate_disk_dataset(DiskDataset::kHull, n, rng);
  core::HighLoadConfig cfg;
  cfg.seed = 7;
  const auto a = core::run_high_load(p, pts, n, cfg);
  const auto b = core::run_high_load(p, pts, n, cfg);
  ASSERT_TRUE(a.stats.reached_optimum);
  EXPECT_EQ(a.stats.rounds_to_first, b.stats.rounds_to_first);
  EXPECT_EQ(a.stats.total_push_ops, b.stats.total_push_ops);
  EXPECT_EQ(a.stats.max_work_per_round, b.stats.max_work_per_round);
}

TEST(Regression, DatasetGenerationIsStable) {
  util::Rng a(777), b(777);
  const auto p1 = workloads::generate_disk_dataset(DiskDataset::kHull, 64, a);
  const auto p2 = workloads::generate_disk_dataset(DiskDataset::kHull, 64, b);
  EXPECT_EQ(p1, p2);
}

TEST(Regression, FaultInjectionIsSeedDeterministic) {
  MinDisk p;
  util::Rng rng(2026);
  const std::size_t n = 256;
  const auto pts =
      workloads::generate_disk_dataset(DiskDataset::kTriangle, n, rng);
  core::LowLoadConfig cfg;
  cfg.seed = 31;
  cfg.faults.push_loss = 0.25;
  cfg.faults.sleep_probability = 0.1;
  const auto a = core::run_low_load(p, pts, n, cfg);
  const auto b = core::run_low_load(p, pts, n, cfg);
  EXPECT_EQ(a.stats.rounds_to_first, b.stats.rounds_to_first);
  EXPECT_EQ(a.stats.total_push_ops, b.stats.total_push_ops);
}

TEST(Regression, OverlayCostFormula) {
  // Section 1.2: O(T + log n) time, O(W log n) work.
  const auto c = gossip::overlay_emulation_cost(20, 100, 1024);
  EXPECT_EQ(c.rounds, 20u + 11u);
  EXPECT_EQ(c.max_work, 100u * 11u);

  core::DistributedRunStats stats;
  stats.rounds_to_first = 5;
  stats.max_work_per_round = 140;
  const auto c2 = gossip::overlay_emulation_cost(stats, 1 << 14);
  EXPECT_EQ(c2.rounds, 5u + 15u);
  EXPECT_EQ(c2.max_work, 140u * 15u);
}

}  // namespace
}  // namespace lpt
