// Shard runtime tests: partition plan, wire-message codec round-trips
// (including empty candidate lists and max-size frames), malformed-frame
// rejection, transport framing, and the headline guarantee — sharded
// low-load / hitting-set runs are bit-identical to the serial and
// parallel_nodes paths for shards in {1, 2, 4}, over all three transports
// (in-process queues, pipes, loopback TCP sockets — the socket runs
// bootstrap their workers over the wire), with and without loss/sleep
// faults.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/hitting_set.hpp"
#include "core/low_load.hpp"
#include "core/result.hpp"
#include "problems/min_disk.hpp"
#include "shard/plan.hpp"
#include "shard/runtime.hpp"
#include "shard/transport.hpp"
#include "shard/wire.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"
#include "workloads/disk_data.hpp"
#include "workloads/hs_data.hpp"

namespace lpt {
namespace {

using problems::MinDisk;
using workloads::DiskDataset;

// ---------------------------------------------------------------------
// ShardPlan: contiguous cover of [0, n), near-even sizes, exact ownership.
// ---------------------------------------------------------------------

TEST(ShardPlan, ContiguousCoverAndOwnership) {
  for (const std::size_t n : {1u, 2u, 7u, 64u, 1000u, 4096u}) {
    for (std::size_t k = 1; k <= std::min<std::size_t>(n, 9); ++k) {
      const shard::ShardPlan plan(n, k);
      ASSERT_EQ(plan.shard_count(), k);
      gossip::NodeId expect_begin = 0;
      for (std::size_t s = 0; s < k; ++s) {
        const auto r = plan.range(s);
        EXPECT_EQ(r.begin, expect_begin) << "n=" << n << " k=" << k;
        EXPECT_GE(r.size(), n / k);
        EXPECT_LE(r.size(), n / k + 1);
        for (gossip::NodeId v = r.begin; v < r.end; ++v) {
          ASSERT_EQ(plan.owner(v), s) << "n=" << n << " k=" << k << " v=" << v;
        }
        expect_begin = r.end;
      }
      EXPECT_EQ(expect_begin, n);
    }
  }
}

// ---------------------------------------------------------------------
// Wire codec round-trips.
// ---------------------------------------------------------------------

TEST(ShardWire, RngStateRoundTripContinuesStream) {
  util::Rng original(977);
  for (int i = 0; i < 37; ++i) (void)original();  // advance off the seed
  (void)original.normal();  // bank a Marsaglia spare (part of the state)

  gossip::Encoder e;
  shard::put_rng(e, original);
  gossip::Decoder d(e.bytes());
  util::Rng restored(1);  // different seed: must be fully overwritten
  shard::get_rng(d, restored);
  EXPECT_TRUE(d.exhausted());

  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(original(), restored()) << "draw " << i;
  }
  ASSERT_EQ(original.normal(), restored.normal());
}

TEST(ShardWire, ElementSequenceRoundTripsIncludingEmpty) {
  const std::vector<std::uint32_t> ids = {0, 1, 0xffffffffu, 42};
  const std::vector<geom::Vec2> pts = {{0.0, 0.0}, {-1.5, 3.25}, {1e300, -0.0}};
  const std::vector<std::uint32_t> empty_ids;
  const std::vector<geom::Vec2> empty_pts;

  gossip::Encoder e;
  shard::put_seq(e, std::span<const std::uint32_t>(ids));
  shard::put_seq(e, std::span<const geom::Vec2>(pts));
  shard::put_seq(e, std::span<const std::uint32_t>(empty_ids));
  shard::put_seq(e, std::span<const geom::Vec2>(empty_pts));

  gossip::Decoder d(e.bytes());
  std::vector<std::uint32_t> ids2;
  std::vector<geom::Vec2> pts2;
  std::vector<std::uint32_t> empty_ids2 = {7};  // must be cleared
  std::vector<geom::Vec2> empty_pts2 = {{1, 1}};
  shard::get_seq(d, ids2);
  shard::get_seq(d, pts2);
  shard::get_seq(d, empty_ids2);
  shard::get_seq(d, empty_pts2);
  EXPECT_TRUE(d.exhausted());

  EXPECT_EQ(ids, ids2);
  EXPECT_TRUE(empty_ids2.empty());
  EXPECT_TRUE(empty_pts2.empty());
  ASSERT_EQ(pts.size(), pts2.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].x, pts2[i].x);
    EXPECT_EQ(pts[i].y, pts2[i].y);
    // -0.0 must survive bit-exactly, not just compare-equal.
    EXPECT_EQ(std::signbit(pts[i].y), std::signbit(pts2[i].y)) << i;
  }
}

// The sequence guards are sized in encoded *bytes*, not element counts: a
// count-based check once let 8 Vec2s (132 encoded bytes) pass a 64-byte
// budget because 8 < 64.  The max_bytes parameter exists so this is
// testable without a 256 MiB input.
TEST(ShardWireDeathTest, PutSeqRejectsByteBudgetNotElementCount) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::vector<geom::Vec2> pts(8, geom::Vec2{1.0, 2.0});
  gossip::Encoder e;
  EXPECT_DEATH(
      shard::put_seq(e, std::span<const geom::Vec2>(pts), 64),
      "frame byte budget");
}

TEST(ShardWire, PutSeqAcceptsSequencesWithinTheByteBudget) {
  // 3 Vec2s encode to 4 + 48 = 52 bytes: inside a 64-byte budget even
  // though the element count alone (3 < 64) says nothing.
  const std::vector<geom::Vec2> pts(3, geom::Vec2{1.0, 2.0});
  gossip::Encoder e;
  shard::put_seq(e, std::span<const geom::Vec2>(pts), 64);
  EXPECT_EQ(e.size(), 4u + 3u * gossip::kWireBytesVec2);
  gossip::Decoder d(e.bytes());
  std::vector<geom::Vec2> out;
  shard::get_seq(d, out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(ShardWireDeathTest, GetSeqRejectsLengthPrefixByElementSize) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Length prefix claims 10 Vec2s but only one element's worth of payload
  // follows: 10 <= remaining bytes (16) would pass a byte-count check, but
  // 10 Vec2s need 160 bytes — the guard must divide by the element size.
  gossip::Encoder e;
  e.put_u32(10);
  e.put(geom::Vec2{0.0, 0.0});
  gossip::Decoder d(e.bytes());
  std::vector<geom::Vec2> out;
  EXPECT_DEATH(shard::get_seq(d, out), "sequence too long");
}

TEST(ShardWire, MinDiskSolutionRoundTripsBitIdentically) {
  MinDisk p;
  const auto pts = testsupport::golden_disk_points(DiskDataset::kHull, 64);
  const auto sol = p.solve(pts);
  ASSERT_FALSE(sol.basis.empty());

  const problems::MinDiskSolution empty{};  // f(∅): empty disk, no basis

  gossip::Encoder e;
  wire_put(e, sol);
  wire_put(e, empty);
  gossip::Decoder d(e.bytes());
  problems::MinDiskSolution sol2, empty2;
  wire_get(d, sol2);
  wire_get(d, empty2);
  EXPECT_TRUE(d.exhausted());

  EXPECT_EQ(sol, sol2);  // defaulted ==: disk and basis, exact doubles
  EXPECT_EQ(empty, empty2);
  EXPECT_TRUE(empty2.disk.empty());
}

// The engines' Wirable gate: the shipped problems the shard runtime serves.
static_assert(shard::Wirable<std::uint32_t>);
static_assert(shard::Wirable<geom::Vec2>);
static_assert(shard::Wirable<lp::Halfplane>);
static_assert(shard::Wirable<util::RngState>);
static_assert(shard::Wirable<problems::MinDiskSolution>);
static_assert(core::detail::ShardableLowLoad<problems::MinDisk>);

// ---------------------------------------------------------------------
// Transport framing: echo through both transports, max-size frames,
// malformed-frame rejection.
// ---------------------------------------------------------------------

// Serve handler that echoes the task payload back as the result payload.
void echo_serve(gossip::Decoder& d, gossip::Encoder& e) {
  shard::put_msg_type(e, shard::MsgType::kStageAResult);
  while (!d.exhausted()) e.put_u8(d.get_u8());
}

std::vector<std::uint8_t> round_trip_payload(shard::Transport& transport,
                                             std::size_t shards,
                                             const std::vector<std::uint8_t>&
                                                 body) {
  transport.spawn(shards, [](std::size_t, shard::Endpoint& ep) {
    shard::worker_loop(ep, echo_serve);
  });
  std::vector<std::uint8_t> echoed;
  for (std::size_t s = 0; s < shards; ++s) {
    gossip::Encoder task;
    shard::put_msg_type(task, shard::MsgType::kStageATask);
    for (const std::uint8_t b : body) task.put_u8(b);
    transport.endpoint(s).send(task.bytes());
  }
  for (std::size_t s = 0; s < shards; ++s) {
    const auto frame = transport.endpoint(s).recv();
    gossip::Decoder d(frame);
    EXPECT_EQ(shard::get_msg_type(d), shard::MsgType::kStageAResult);
    echoed.assign(frame.begin() + 1, frame.end());
  }
  gossip::Encoder bye;
  shard::put_msg_type(bye, shard::MsgType::kShutdown);
  for (std::size_t s = 0; s < shards; ++s) {
    transport.endpoint(s).send(bye.bytes());
  }
  transport.join();
  return echoed;
}

TEST(ShardTransport, InProcEchoesFrames) {
  std::vector<std::uint8_t> body(1 << 10);
  util::Rng rng(5);
  for (auto& b : body) b = static_cast<std::uint8_t>(rng.below(256));
  shard::InProcTransport t;
  EXPECT_EQ(round_trip_payload(t, 3, body), body);
}

TEST(ShardTransport, PipeEchoesFrames) {
  std::vector<std::uint8_t> body(1 << 10);
  util::Rng rng(6);
  for (auto& b : body) b = static_cast<std::uint8_t>(rng.below(256));
  shard::PipeTransport t;
  EXPECT_EQ(round_trip_payload(t, 3, body), body);
}

// A frame at several megabytes (far beyond one pipe buffer) must survive
// both directions intact: the frame I/O loops over short reads/writes.
TEST(ShardTransport, PipeCarriesMultiMegabyteFrames) {
  std::vector<std::uint8_t> body(8u << 20);
  util::Rng rng(7);
  for (auto& b : body) b = static_cast<std::uint8_t>(rng.below(256));
  shard::PipeTransport t;
  EXPECT_EQ(round_trip_payload(t, 1, body), body);
}

TEST(ShardTransport, SocketEchoesFrames) {
  std::vector<std::uint8_t> body(1 << 10);
  util::Rng rng(8);
  for (auto& b : body) b = static_cast<std::uint8_t>(rng.below(256));
  shard::SocketTransport t;
  EXPECT_EQ(round_trip_payload(t, 3, body), body);
}

// Multi-megabyte frames over loopback TCP: far beyond the socket buffers,
// so both directions must loop over short reads/writes exactly like pipes.
TEST(ShardTransport, SocketCarriesMultiMegabyteFrames) {
  std::vector<std::uint8_t> body(8u << 20);
  util::Rng rng(9);
  for (auto& b : body) b = static_cast<std::uint8_t>(rng.below(256));
  shard::SocketTransport t;
  EXPECT_EQ(round_trip_payload(t, 1, body), body);
}

TEST(ShardTransportDeathTest, RejectsOversizedLengthPrefix) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::uint32_t huge = shard::kMaxFrameBytes + 1;
  ASSERT_EQ(::write(fds[1], &huge, sizeof huge),
            static_cast<ssize_t>(sizeof huge));
  shard::PipeEndpoint ep(fds[0], fds[1]);
  EXPECT_DEATH((void)ep.recv(), "length prefix exceeds");
}

TEST(ShardTransportDeathTest, RejectsTruncatedFrame) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::uint32_t len = 100;
  ASSERT_EQ(::write(fds[1], &len, sizeof len),
            static_cast<ssize_t>(sizeof len));
  const std::uint8_t partial[10] = {};
  ASSERT_EQ(::write(fds[1], partial, sizeof partial),
            static_cast<ssize_t>(sizeof partial));
  ::close(fds[1]);  // EOF arrives mid-frame
  shard::PipeEndpoint ep(fds[0], -1);
  EXPECT_DEATH((void)ep.recv(), "truncated mid-frame");
}

TEST(ShardTransport, CleanEofReadsAsEmptyFrame) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[1]);
  shard::PipeEndpoint ep(fds[0], -1);
  EXPECT_TRUE(ep.recv().empty());  // worker_loop treats this as shutdown
}

TEST(ShardWireDeathTest, RejectsUnknownMessageType) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::vector<std::uint8_t> garbage = {0x7f, 1, 2, 3};
  gossip::Decoder d(garbage);
  EXPECT_DEATH((void)shard::get_msg_type(d), "unknown message type");
}

// ---------------------------------------------------------------------
// Integration: sharded runs are bit-identical to serial / parallel_nodes.
// ---------------------------------------------------------------------

void expect_stats_equal(const core::DistributedRunStats& a,
                        const core::DistributedRunStats& b,
                        const std::string& what) {
  EXPECT_EQ(a.rounds_to_first, b.rounds_to_first) << what;
  EXPECT_EQ(a.rounds_to_all_output, b.rounds_to_all_output) << what;
  EXPECT_EQ(a.reached_optimum, b.reached_optimum) << what;
  EXPECT_EQ(a.all_outputs_correct, b.all_outputs_correct) << what;
  EXPECT_EQ(a.max_work_per_round, b.max_work_per_round) << what;
  EXPECT_EQ(a.total_push_ops, b.total_push_ops) << what;
  EXPECT_EQ(a.total_pull_ops, b.total_pull_ops) << what;
  EXPECT_EQ(a.total_bytes, b.total_bytes) << what;
  EXPECT_EQ(a.initial_total_elements, b.initial_total_elements) << what;
  EXPECT_EQ(a.max_total_elements, b.max_total_elements) << what;
  EXPECT_EQ(a.final_total_elements, b.final_total_elements) << what;
  EXPECT_EQ(a.sampling_attempts, b.sampling_attempts) << what;
  EXPECT_EQ(a.sampling_failures, b.sampling_failures) << what;
  EXPECT_EQ(a.bookkeeping_touches_total, b.bookkeeping_touches_total) << what;
  EXPECT_EQ(a.last_round_bookkeeping_touches,
            b.last_round_bookkeeping_touches)
      << what;
}

const std::size_t kShardCounts[] = {1, 2, 4};
const shard::TransportKind kTransports[] = {shard::TransportKind::kInProc,
                                            shard::TransportKind::kPipe,
                                            shard::TransportKind::kSocket};

std::string config_name(std::size_t shards, shard::TransportKind t) {
  const char* name = t == shard::TransportKind::kInProc ? "inproc"
                     : t == shard::TransportKind::kPipe ? "pipe"
                                                        : "socket";
  return std::to_string(shards) + " shard(s) over " + name;
}

void check_low_load_bit_identity(core::LowLoadConfig base_cfg,
                                 DiskDataset dataset, std::size_t n) {
  MinDisk p;
  const auto pts = testsupport::golden_disk_points(dataset, n);
  const auto serial = core::run_low_load(p, pts, n, base_cfg);

  core::LowLoadConfig par_cfg = base_cfg;
  par_cfg.parallel_nodes = 4;
  const auto par = core::run_low_load(p, pts, n, par_cfg);
  expect_stats_equal(serial.stats, par.stats, "parallel_nodes=4");
  EXPECT_EQ(serial.solution, par.solution) << "parallel_nodes=4";

  for (const std::size_t shards : kShardCounts) {
    for (const auto transport : kTransports) {
      core::LowLoadConfig cfg = base_cfg;
      cfg.shard.shards = shards;
      cfg.shard.transport = transport;
      const auto res = core::run_low_load(p, pts, n, cfg);
      const std::string what = config_name(shards, transport);
      EXPECT_EQ(serial.solution, res.solution) << what;
      expect_stats_equal(serial.stats, res.stats, what);
    }
  }
}

TEST(ShardedLowLoad, BitIdenticalToSerialAndParallelNodes) {
  core::LowLoadConfig cfg;
  cfg.seed = 33;
  check_low_load_bit_identity(cfg, DiskDataset::kHull, 256);
}

TEST(ShardedLowLoad, BitIdenticalUnderLossAndSleepFaults) {
  core::LowLoadConfig cfg;
  cfg.seed = 44;
  cfg.faults.push_loss = 0.2;
  cfg.faults.response_loss = 0.1;
  cfg.faults.sleep_probability = 0.15;
  check_low_load_bit_identity(cfg, DiskDataset::kTripleDisk, 256);
}

TEST(ShardedLowLoad, BitIdenticalWithTerminationProtocol) {
  core::LowLoadConfig cfg;
  cfg.seed = 55;
  cfg.run_termination = true;
  check_low_load_bit_identity(cfg, DiskDataset::kDuoDisk, 128);
}

TEST(ShardedLowLoad, TinySubFramesBitIdentical) {
  // max_frame_nodes far below the shard range forces many sub-frames per
  // shard per round (the large-n guard: frame bytes bounded by per-node
  // state, not n); the frame-indexed merge must stay exact.
  MinDisk p;
  const std::size_t n = 256;
  const auto pts = testsupport::golden_disk_points(DiskDataset::kHull, n);
  core::LowLoadConfig serial_cfg;
  serial_cfg.seed = 33;
  const auto serial = core::run_low_load(p, pts, n, serial_cfg);
  for (const auto transport : kTransports) {
    core::LowLoadConfig cfg = serial_cfg;
    cfg.shard.shards = 3;
    cfg.shard.transport = transport;
    cfg.shard.max_frame_nodes = 16;  // ~6 sub-frames per 85-node shard
    const auto res = core::run_low_load(p, pts, n, cfg);
    const std::string what = config_name(3, transport) + " frames=16";
    EXPECT_EQ(serial.solution, res.solution) << what;
    expect_stats_equal(serial.stats, res.stats, what);
  }
}

TEST(ShardedLowLoad, UnevenRangeShardCountIsExact) {
  // n = 250 over 4 shards: ranges of 62/63 — exercises the floor split.
  core::LowLoadConfig cfg;
  cfg.seed = 66;
  check_low_load_bit_identity(cfg, DiskDataset::kTriangle, 250);
}

void check_hitting_set_bit_identity(core::HittingSetConfig base_cfg,
                                    std::uint64_t data_seed, std::size_t n,
                                    std::size_t sets) {
  util::Rng data_rng(data_seed);
  const auto inst =
      workloads::generate_planted_hitting_set(n, sets, 2, 2, data_rng);
  problems::HittingSetProblem p(inst.system);

  const auto serial = core::run_hitting_set(p, n, base_cfg);
  ASSERT_TRUE(serial.valid);

  core::HittingSetConfig par_cfg = base_cfg;
  par_cfg.parallel_nodes = 4;
  const auto par = core::run_hitting_set(p, n, par_cfg);
  expect_stats_equal(serial.stats, par.stats, "parallel_nodes=4");
  EXPECT_EQ(serial.hitting_set, par.hitting_set) << "parallel_nodes=4";

  for (const std::size_t shards : kShardCounts) {
    for (const auto transport : kTransports) {
      core::HittingSetConfig cfg = base_cfg;
      cfg.shard.shards = shards;
      cfg.shard.transport = transport;
      const auto res = core::run_hitting_set(p, n, cfg);
      const std::string what = config_name(shards, transport);
      EXPECT_EQ(serial.hitting_set, res.hitting_set) << what;
      EXPECT_EQ(serial.valid, res.valid) << what;
      EXPECT_EQ(serial.d_used, res.d_used) << what;
      EXPECT_EQ(serial.sample_size, res.sample_size) << what;
      expect_stats_equal(serial.stats, res.stats, what);
    }
  }
}

TEST(ShardedHittingSet, BitIdenticalToSerialAndParallelNodes) {
  core::HittingSetConfig cfg;
  cfg.seed = 77;
  cfg.hitting_set_size = 2;
  check_hitting_set_bit_identity(cfg, 19, 256, 64);
}

TEST(ShardedHittingSet, BitIdenticalUnderLossAndSleepFaults) {
  core::HittingSetConfig cfg;
  cfg.seed = 88;
  cfg.hitting_set_size = 2;
  cfg.faults.push_loss = 0.2;
  cfg.faults.response_loss = 0.1;
  cfg.faults.sleep_probability = 0.1;
  check_hitting_set_bit_identity(cfg, 23, 128, 32);
}

TEST(ShardedHittingSet, DoublingSearchBitIdentical) {
  // Unknown d: the doubling search restarts stages; the shard workers must
  // follow the changing sample size r through the per-round task header.
  core::HittingSetConfig cfg;
  cfg.seed = 99;
  check_hitting_set_bit_identity(cfg, 29, 128, 32);
}

}  // namespace
}  // namespace lpt
