// Tests for the minimal LP-type problem (smallest enclosing interval,
// dimension 2), the violator-space concept split, and both of them driven
// through the full algorithm stack (Clarkson, MSW, the gossip engines).
#include <gtest/gtest.h>

#include "core/clarkson.hpp"
#include "core/high_load.hpp"
#include "core/low_load.hpp"
#include "core/msw.hpp"
#include "problems/min_interval.hpp"
#include "util/rng.hpp"

namespace lpt {
namespace {

using problems::MinInterval;

static_assert(core::ViolatorSpace<MinInterval>);
static_assert(core::LpTypeProblem<MinInterval>);

// A view of MinInterval that exposes only the violator-space primitives.
// Its existence (and clarkson_solve accepting it) is the compile-time
// proof that Clarkson's algorithm never touches the ordered objective.
struct IntervalViolatorSpaceOnly {
  using Element = MinInterval::Element;
  using Solution = MinInterval::Solution;
  MinInterval inner;

  std::size_t dimension() const { return inner.dimension(); }
  Solution solve(std::span<const Element> s) const { return inner.solve(s); }
  Solution from_basis(std::span<const Element> b) const {
    return inner.from_basis(b);
  }
  bool violates(const Solution& sol, const Element& e) const {
    return inner.violates(sol, e);
  }
};

static_assert(core::ViolatorSpace<IntervalViolatorSpaceOnly>);
static_assert(!core::LpTypeProblem<IntervalViolatorSpaceOnly>);

TEST(MinInterval, SolveBasics) {
  MinInterval p;
  std::vector<double> xs{3.0, -1.0, 2.0, 3.0};
  const auto sol = p.solve(xs);
  EXPECT_DOUBLE_EQ(sol.lo, -1.0);
  EXPECT_DOUBLE_EQ(sol.hi, 3.0);
  EXPECT_EQ(sol.basis, (std::vector<double>{-1.0, 3.0}));
  EXPECT_FALSE(p.violates(sol, 0.0));
  EXPECT_FALSE(p.violates(sol, 3.0));
  EXPECT_TRUE(p.violates(sol, 3.0001));
  EXPECT_TRUE(p.violates(sol, -1.0001));
}

TEST(MinInterval, SinglePointAndEmpty) {
  MinInterval p;
  std::vector<double> one{5.0};
  const auto s1 = p.solve(one);
  EXPECT_EQ(s1.basis.size(), 1u);
  EXPECT_DOUBLE_EQ(s1.length(), 0.0);
  const auto s0 = p.solve({});
  EXPECT_TRUE(s0.empty());
  EXPECT_TRUE(p.violates(s0, 0.0));
}

class MinIntervalAxioms : public ::testing::TestWithParam<int> {};

TEST_P(MinIntervalAxioms, Hold) {
  util::Rng rng(GetParam());
  MinInterval p;
  std::vector<double> ground;
  for (int i = 0; i < 12; ++i) ground.push_back(rng.uniform(-10, 10));
  const auto rep = core::check_axioms(p, ground, 50, rng);
  EXPECT_TRUE(rep.ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinIntervalAxioms, ::testing::Range(1, 11));

TEST(MinInterval, ClarksonOnViolatorSpaceViewOnly) {
  util::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.normal());
  IntervalViolatorSpaceOnly vs;
  const auto res = core::clarkson_solve(vs, xs, rng);
  ASSERT_TRUE(res.stats.converged);
  const auto oracle = vs.inner.solve(xs);
  EXPECT_DOUBLE_EQ(res.solution.lo, oracle.lo);
  EXPECT_DOUBLE_EQ(res.solution.hi, oracle.hi);
}

TEST(MinInterval, MswMatchesOracle) {
  util::Rng rng(4);
  MinInterval p;
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform(-100, 100));
  const auto res = core::msw_solve(p, xs, rng);
  ASSERT_TRUE(res.stats.converged);
  EXPECT_TRUE(p.same_value(res.solution, p.solve(xs)));
}

TEST(MinInterval, LowLoadEngine) {
  util::Rng rng(5);
  MinInterval p;
  const std::size_t n = 256;
  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.uniform(-5, 5));
  core::LowLoadConfig cfg;
  cfg.seed = 7;
  const auto res = core::run_low_load(p, xs, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_TRUE(p.same_value(res.solution, p.solve(xs)));
  // d = 2: the sampler pulls c(6*4 + log n) — much lighter than min-disk.
  EXPECT_LE(res.stats.max_work_per_round,
            4 * (24 + util::ceil_log2(n) + 1) + 64);
}

TEST(MinInterval, HighLoadEngine) {
  util::Rng rng(6);
  MinInterval p;
  const std::size_t n = 256;
  std::vector<double> xs;
  for (std::size_t i = 0; i < 4 * n; ++i) xs.push_back(rng.normal());
  core::HighLoadConfig cfg;
  cfg.seed = 11;
  const auto res = core::run_high_load(p, xs, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_TRUE(p.same_value(res.solution, p.solve(xs)));
}

TEST(MinInterval, ExactValuesNoTolerance) {
  // Everything is exact for doubles: the optimum of integers is integral.
  MinInterval p;
  std::vector<double> xs{1, 7, -3, 4, 4, -3};
  const auto sol = p.solve(xs);
  EXPECT_EQ(sol.lo, -3.0);
  EXPECT_EQ(sol.hi, 7.0);
  EXPECT_EQ(sol.length(), 10.0);
}

}  // namespace
}  // namespace lpt
