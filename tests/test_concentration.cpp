// Tests for the concentration-bound utilities (including the paper's
// Theorem 8) and the median-rule consensus protocol (paper reference [8]).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gossip/consensus.hpp"
#include "util/concentration.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lpt {
namespace {

TEST(Concentration, ChernoffBoundsAreProbabilities) {
  for (double mu : {0.5, 5.0, 50.0}) {
    for (double delta : {0.1, 1.0, 3.0}) {
      const double u = util::chernoff_upper_tail(mu, delta);
      EXPECT_GT(u, 0.0);
      EXPECT_LE(u, 1.0);
      const double l = util::chernoff_lower_tail(mu, std::min(delta, 1.0));
      EXPECT_GT(l, 0.0);
      EXPECT_LE(l, 1.0);
    }
  }
  EXPECT_EQ(util::chernoff_upper_tail(-1.0, 0.5), 1.0);  // degenerate inputs
  EXPECT_EQ(util::chernoff_upper_tail(5.0, 0.0), 1.0);
}

TEST(Concentration, ChernoffUpperHoldsEmpirically) {
  // Binomial(n = 200, p = 0.1): mu = 20.
  util::Rng rng(1);
  const double mu = 20.0;
  constexpr int kTrials = 20000;
  for (double delta : {0.5, 1.0}) {
    int exceed = 0;
    for (int t = 0; t < kTrials; ++t) {
      int x = 0;
      for (int i = 0; i < 200; ++i) x += rng.bernoulli(0.1) ? 1 : 0;
      if (x >= (1.0 + delta) * mu) ++exceed;
    }
    const double measured = static_cast<double>(exceed) / kTrials;
    EXPECT_LE(measured, util::chernoff_upper_tail(mu, delta) * 1.05 + 1e-4)
        << "delta = " << delta;
  }
}

TEST(Concentration, ChernoffLowerHoldsEmpirically) {
  util::Rng rng(2);
  const double mu = 50.0;  // Binomial(500, 0.1)
  constexpr int kTrials = 20000;
  int below = 0;
  const double delta = 0.4;
  for (int t = 0; t < kTrials; ++t) {
    int x = 0;
    for (int i = 0; i < 500; ++i) x += rng.bernoulli(0.1) ? 1 : 0;
    if (x <= (1.0 - delta) * mu) ++below;
  }
  EXPECT_LE(static_cast<double>(below) / kTrials,
            util::chernoff_lower_tail(mu, delta) * 1.05 + 1e-4);
}

TEST(Concentration, HoeffdingHoldsEmpirically) {
  util::Rng rng(3);
  constexpr int kTrials = 20000;
  const std::size_t n = 100;
  const double t_dev = 15.0;
  int exceed = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += rng.uniform();
    if (sum - n * 0.5 >= t_dev) ++exceed;
  }
  EXPECT_LE(static_cast<double>(exceed) / kTrials,
            util::hoeffding_tail(n, 0.0, 1.0, t_dev) * 1.1 + 1e-4);
}

TEST(Concentration, Theorem8ReducesToChernoffForUnitRange) {
  // With C = 1 the Theorem 8 bound is the classic Chernoff bound (full
  // independence implies every k-wise product-moment condition).
  EXPECT_DOUBLE_EQ(util::theorem8_tail(10.0, 0.5, 1.0),
                   util::chernoff_upper_tail(10.0, 0.5));
  // Larger per-variable range C weakens the exponent by 1/C.
  EXPECT_GT(util::theorem8_tail(10.0, 0.5, 4.0),
            util::theorem8_tail(10.0, 0.5, 1.0));
  EXPECT_TRUE(util::theorem8_applicable(10.0, 0.5, 5.0));
  EXPECT_FALSE(util::theorem8_applicable(10.0, 0.5, 4.0));
}

TEST(Concentration, EmpiricalTailHelper) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(util::empirical_tail(xs, 3.0), 0.6);
  EXPECT_DOUBLE_EQ(util::empirical_tail(xs, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(util::empirical_tail({}, 1.0), 0.0);
}

TEST(MedianConsensus, ReachesConsensusLogarithmically) {
  const std::size_t n = 1024;
  gossip::Network net(n, util::Rng(5));
  util::Rng vals(6);
  std::vector<double> initial(n);
  for (auto& x : initial) x = vals.uniform(0.0, 100.0);
  auto sorted = initial;
  std::sort(sorted.begin(), sorted.end());

  gossip::MedianConsensus<double> mc(net, initial);
  const std::size_t rounds = mc.run(40 * util::ceil_log2(n));
  ASSERT_TRUE(mc.converged());
  EXPECT_LE(rounds, 12 * util::ceil_log2(n));
  // The consensus value concentrates near the median (central third).
  const double v = mc.value(0);
  EXPECT_GE(v, sorted[n / 3]);
  EXPECT_LE(v, sorted[2 * n / 3]);
}

TEST(MedianConsensus, ConsensusValueIsAnInitialValue) {
  const std::size_t n = 128;
  gossip::Network net(n, util::Rng(7));
  std::vector<int> initial(n);
  for (std::size_t v = 0; v < n; ++v) initial[v] = static_cast<int>(v);
  gossip::MedianConsensus<int> mc(net, initial);
  mc.run(500);
  ASSERT_TRUE(mc.converged());
  EXPECT_GE(mc.value(0), 0);
  EXPECT_LT(mc.value(0), static_cast<int>(n));
}

TEST(MedianConsensus, AlreadyUnanimousIsStable) {
  const std::size_t n = 64;
  gossip::Network net(n, util::Rng(8));
  gossip::MedianConsensus<int> mc(net, std::vector<int>(n, 9));
  EXPECT_TRUE(mc.converged());
  EXPECT_EQ(mc.run(10), 0u);
  EXPECT_EQ(mc.value(13), 9);
}

TEST(MedianConsensus, SurvivesSleepersAndLoss) {
  const std::size_t n = 256;
  gossip::FaultModel f;
  f.sleep_probability = 0.2;
  f.response_loss = 0.2;
  gossip::Network net(n, util::Rng(9), f);
  util::Rng vals(10);
  std::vector<double> initial(n);
  for (auto& x : initial) x = vals.normal();
  gossip::MedianConsensus<double> mc(net, initial);
  mc.run(200 * util::ceil_log2(n));
  EXPECT_TRUE(mc.converged());
}

}  // namespace
}  // namespace lpt
