// Tests for the Section 1.4 doubling search on an unknown combinatorial
// dimension, and for the dimension_override engine knob it relies on.
#include <gtest/gtest.h>

#include "core/auto_dimension.hpp"
#include "problems/min_disk.hpp"
#include "support/test_support.hpp"
#include "problems/polytope_distance.hpp"
#include "util/rng.hpp"
#include "workloads/disk_data.hpp"

namespace lpt {
namespace {

using problems::MinDisk;
using workloads::DiskDataset;

TEST(DimensionOverride, RunningWithLargerDStillCorrect) {
  // Overestimating d only makes samples larger / filtering gentler; the
  // algorithm stays correct.
  MinDisk p;
  const std::size_t n = 256;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, n, 1);
  core::LowLoadConfig cfg;
  cfg.seed = 3;
  cfg.dimension_override = 6;
  const auto res = core::run_low_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_TRUE(p.same_value(res.solution, p.solve(pts)));
}

TEST(DimensionOverride, UnderestimatingDNeverProducesWrongOutput) {
  // With d' = 1 the sample has size 6 < the true basis-size regime; the
  // run may need more rounds or hit its cap, but any result that claims
  // success must be the true optimum, and termination outputs (if any)
  // must be correct — Lemma 12 does not depend on d.
  MinDisk p;
  const std::size_t n = 256;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTriangle, n, 2);
  core::LowLoadConfig cfg;
  cfg.seed = 5;
  cfg.dimension_override = 1;
  cfg.run_termination = true;
  cfg.max_rounds = 200;
  const auto res = core::run_low_load(p, pts, n, cfg);
  if (res.stats.reached_optimum) {
    EXPECT_TRUE(p.same_value(res.solution, p.solve(pts)));
  }
  EXPECT_TRUE(res.stats.all_outputs_correct);
}

class AutoDimension : public ::testing::TestWithParam<int> {};

TEST_P(AutoDimension, FindsOptimumWithoutKnowingD) {
  MinDisk p;
  const std::size_t n = 256;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, n,
                                      static_cast<std::uint64_t>(GetParam()));
  core::LowLoadConfig base;
  base.seed = static_cast<std::uint64_t>(GetParam()) * 17 + 3;
  const auto res = core::run_low_load_auto_dimension(p, pts, n, base);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(p.same_value(res.solution, p.solve(pts)));
  // The doubling search must stop by the first power of two >= d = 3.
  EXPECT_LE(res.d_used, 4u);
  EXPECT_LE(res.stages, 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutoDimension, ::testing::Range(1, 6));

TEST(AutoDimension, WorksOnPolytopeDistance) {
  problems::PolytopeDistance p;
  util::Rng rng(9);
  const std::size_t n = 256;
  std::vector<geom::Vec2> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(1.0, 6.0), rng.uniform(-4.0, 4.0)});
  }
  core::LowLoadConfig base;
  base.seed = 11;
  const auto res = core::run_low_load_auto_dimension(p, pts, n, base);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(p.same_value(res.solution, p.solve(pts)));
}

TEST(AutoDimension, TotalRoundsAccumulateAcrossStages) {
  MinDisk p;
  const std::size_t n = 128;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kDuoDisk, n, 10);
  core::LowLoadConfig base;
  base.seed = 13;
  const auto res = core::run_low_load_auto_dimension(p, pts, n, base);
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.total_rounds, res.stats.rounds_to_all_output);
}

}  // namespace
}  // namespace lpt
