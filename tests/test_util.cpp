// Unit tests for the util substrate: RNG, weighted sampling, statistics,
// tables, CLI parsing, math helpers, thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include "support/test_support.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace lpt::util {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, ChildStreamsAreIndependentAndDeterministic) {
  Rng parent(7);
  Rng c1 = parent.child(0);
  Rng c2 = parent.child(1);
  Rng c1again = parent.child(0);
  EXPECT_EQ(c1(), c1again());
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1() == c2()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 500; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[r.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversEndpoints) {
  Rng r(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo |= (v == -3);
    hi |= (v == 3);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(13);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Rng, NormalMomentsAreSane) {
  Rng r(17);
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng r(23);
  for (int trial = 0; trial < 50; ++trial) {
    auto idx = r.sample_indices(100, 10);
    ASSERT_EQ(idx.size(), 10u);
    std::set<std::size_t> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 10u);
    for (auto i : idx) EXPECT_LT(i, 100u);
  }
}

TEST(Rng, SampleIndicesClampsToN) {
  Rng r(29);
  auto idx = r.sample_indices(5, 10);
  EXPECT_EQ(idx.size(), 5u);
}

TEST(WeightedSampler, UniformWeightsAreUniform) {
  Rng r(31);
  WeightedSampler ws(10, 1.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[ws.sample(r)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

TEST(WeightedSampler, ScaleShiftsMass) {
  Rng r(37);
  WeightedSampler ws(4, 1.0);
  ws.scale(2, 8.0);  // weights: 1 1 8 1 -> item 2 has mass 8/11
  EXPECT_DOUBLE_EQ(ws.total(), 11.0);
  int hits = 0;
  for (int i = 0; i < 40000; ++i) hits += (ws.sample(r) == 2) ? 1 : 0;
  EXPECT_NEAR(hits / 40000.0, 8.0 / 11.0, 0.02);
}

TEST(WeightedSampler, SetOverridesWeight) {
  Rng r(41);
  WeightedSampler ws(3, 2.0);
  ws.set(0, 0.0);
  ws.set(1, 0.0);
  EXPECT_DOUBLE_EQ(ws.total(), 2.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ws.sample(r), 2u);
}

TEST(WeightedSampler, RepeatedDoublingStaysConsistent) {
  Rng r(43);
  WeightedSampler ws(8, 1.0);
  for (int k = 0; k < 40; ++k) ws.scale(3, 2.0);
  // Item 3 now carries essentially all the mass.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ws.sample(r), 3u);
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  Rng r(47);
  RunningStat whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal();
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i / 10.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.bucket(0), 10u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.01);
}

TEST(Histogram, AsciiRenderingShowsBarsAndCounts) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const auto s = h.ascii(10);
  // One line per bucket, peak bucket rendered at full width.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("##########"), std::string::npos);
  EXPECT_NE(s.find(" 2"), std::string::npos);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(FitLine, RecoversExactLine) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x - 2.0);
  const auto f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 3.0, 1e-12);
  EXPECT_NEAR(f.intercept, -2.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(FitLine, NoisyDataStillClose) {
  Rng r(53);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(i);
    ys.push_back(1.7 * i + 4.0 + r.normal());
  }
  const auto f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 1.7, 0.02);
  EXPECT_GT(f.r2, 0.99);
}

TEST(Quantile, ExactValues) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(Table, AlignedRendering) {
  Table t({"a", "long_header"});
  t.add_row({"1", "2"});
  const auto s = t.str();
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find("| 1"), std::string::npos);
}

TEST(Table, CsvQuoting) {
  Table t({"x"});
  t.add_row({"a,b"});
  EXPECT_NE(t.csv().find("\"a,b\""), std::string::npos);
}

TEST(Table, NumericRow) {
  Table t({"x", "y"});
  t.add_row_numeric({1.23456, 2.0}, 2);
  EXPECT_NE(t.str().find("1.23"), std::string::npos);
}

TEST(Cli, ParsesAllFlagForms) {
  // Note: a bare boolean flag must come last or be followed by another
  // flag, since `--name value` is also accepted.
  const char* argv[] = {"prog", "pos", "--n=128", "--reps", "5", "--verbose"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_EQ(cli.get_int("reps", 0), 5);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.get_bool("absent", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos");
  EXPECT_EQ(cli.get_double("missing", 1.5), 1.5);
}

TEST(Cli, ParsesNegativeAndWhitespaceFreeNumbers) {
  const char* argv[] = {"prog", "--delta=-12", "--rate=2.5e-3"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("delta", 0), -12);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 2.5e-3);
}

// Malformed numeric flag values must fail loudly (exit 2 with an error on
// stderr), not silently truncate: strtoll-with-NULL-endptr once turned
// --imax=12x into 12 and an entire sweep ran at the wrong size.
TEST(CliDeathTest, RejectsTrailingGarbageInIntFlag) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"prog", "--imax=12x"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)cli.get_int("imax", 0), ::testing::ExitedWithCode(2),
              "--imax expects an integer, got \"12x\"");
}

TEST(CliDeathTest, RejectsNonNumericIntFlag) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"prog", "--reps", "abc"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EXIT((void)cli.get_int("reps", 0), ::testing::ExitedWithCode(2),
              "--reps expects an integer");
}

TEST(CliDeathTest, RejectsEmptyIntFlagValue) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"prog", "--n="};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)cli.get_int("n", 0), ::testing::ExitedWithCode(2),
              "--n expects an integer");
}

TEST(CliDeathTest, RejectsOutOfRangeIntFlag) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"prog", "--n=99999999999999999999999"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)cli.get_int("n", 0), ::testing::ExitedWithCode(2),
              "--n expects an integer in range");
}

TEST(CliDeathTest, RejectsTrailingGarbageInDoubleFlag) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"prog", "--rate=1.5oops"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)cli.get_double("rate", 0.0), ::testing::ExitedWithCode(2),
              "--rate expects a number, got \"1.5oops\"");
}

TEST(Math, Log2Helpers) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Math, MiscHelpers) {
  EXPECT_EQ(ceil_div(7, 3), 3u);
  EXPECT_EQ(ceil_div(6, 3), 2u);
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(3, 0), 1u);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
  EXPECT_FALSE(is_pow2(0));
}

TEST(Rng, BelowOfOneAndZeroIsZero) {
  Rng r(61);
  EXPECT_EQ(r.below(0), 0u);  // documented total-function fallback
  EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, SampleIndicesZeroKIsEmpty) {
  Rng r(67);
  EXPECT_TRUE(r.sample_indices(10, 0).empty());
}

TEST(Rng, ChildChainsAreDeterministic) {
  // Grandchild streams (per-node, per-repetition) must be reproducible:
  // the engines derive node RNGs as root.child(rep).child(node).
  Rng root(71);
  Rng a = root.child(2).child(5);
  Rng b = Rng(71).child(2).child(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(WeightedSampler, SetThenScaleKeepsTotalConsistent) {
  WeightedSampler ws(4, 1.0);
  ws.set(1, 3.0);    // 1 3 1 1 -> 6
  ws.scale(1, 0.5);  // 1 1.5 1 1 -> 4.5
  EXPECT_DOUBLE_EQ(ws.total(), 4.5);
  EXPECT_DOUBLE_EQ(ws.weight(1), 1.5);
}

TEST(TestSupport, SeededRngIsDeterministicPerTag) {
  auto a = testsupport::seeded_rng("tag-x");
  auto b = testsupport::seeded_rng("tag-x");
  auto c = testsupport::seeded_rng("tag-y");
  EXPECT_EQ(a(), b());
  // Distinct tags give (with overwhelming probability) distinct streams.
  EXPECT_NE(testsupport::seeded_rng("tag-x")(), c());
}

TEST(TestSupport, GoldenDatasetsAreStableAcrossCalls) {
  using workloads::DiskDataset;
  const auto a = testsupport::golden_disk_points(DiskDataset::kHull, 32);
  const auto b = testsupport::golden_disk_points(DiskDataset::kHull, 32);
  EXPECT_EQ(a, b);
  const double r1 = testsupport::golden_min_disk_radius(DiskDataset::kHull, 32);
  const double r2 = testsupport::golden_min_disk_radius(DiskDataset::kHull, 32);
  EXPECT_DOUBLE_EQ(r1, r2);
  EXPECT_GT(r1, 0.0);
}

TEST(TestSupport, GeometryMatchersAcceptAndReject) {
  EXPECT_TRUE(testsupport::AssertVec2Near("a", "b", "tol", {1.0, 2.0},
                                          {1.0, 2.0 + 1e-12}, 1e-9));
  EXPECT_FALSE(
      testsupport::AssertVec2Near("a", "b", "tol", {0, 0}, {1, 0}, 1e-9));
  EXPECT_TRUE(testsupport::AssertRelNear("a", "b", "tol", 1e6, 1e6 + 1.0, 1e-5));
  EXPECT_FALSE(testsupport::AssertRelNear("a", "b", "tol", 1.0, 2.0, 1e-5));
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(pool, 64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadDegradesToSequential) {
  ThreadPool pool(1);
  std::vector<int> order;
  parallel_for(pool, 5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace lpt::util
