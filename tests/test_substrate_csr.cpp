// Tests for the CSR gossip substrate: span semantics against a reference
// per-node-vector model on randomized traffic, epoch clearing, deliver
// cost observability, batched fault draws, and the NodeStore prefix
// invariants behind the O(1) add_original.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "core/low_load.hpp"
#include "reference_store.hpp"
#include "core/sampling.hpp"
#include "gossip/mailbox.hpp"
#include "gossip/network.hpp"
#include "util/rng.hpp"

namespace lpt::gossip {
namespace {

Network make_net(std::size_t n, std::uint64_t seed = 1) {
  return Network(n, util::Rng(seed));
}

TEST(CsrMailbox, MatchesReferenceModelOnRandomTraffic) {
  // Route 5000 random messages and compare every inbox against a reference
  // routing model fed by the same destination stream.
  const std::size_t n = 64;
  Network net(n, util::Rng(11));
  Network ref_net(n, util::Rng(11));  // same peer stream
  Mailbox<int> mb(net);
  std::map<NodeId, std::vector<int>> reference;
  net.begin_round();
  ref_net.begin_round();
  for (int msg = 0; msg < 5000; ++msg) {
    mb.push(static_cast<NodeId>(msg % n), msg);
    reference[ref_net.random_peer()].push_back(msg);
  }
  mb.deliver();
  for (NodeId v = 0; v < n; ++v) {
    const auto got = mb.inbox(v);
    const auto& want = reference[v];
    ASSERT_EQ(got.size(), want.size()) << "inbox " << v;
    for (std::size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(got[k], want[k]) << "inbox " << v << " slot " << k;
    }
  }
}

TEST(CsrMailbox, RepeatedRoundsReuseCleanly) {
  const std::size_t n = 32;
  auto net = make_net(n, 3);
  Mailbox<int> mb(net);
  for (int round = 0; round < 50; ++round) {
    net.begin_round();
    const int k = 1 + round % 7;
    for (int i = 0; i < k; ++i) mb.push(0, round * 100 + i);
    mb.deliver();
    std::size_t received = 0;
    for (NodeId v = 0; v < n; ++v) received += mb.inbox(v).size();
    EXPECT_EQ(received, static_cast<std::size_t>(k)) << "round " << round;
    EXPECT_EQ(mb.last_delivered_messages(), static_cast<std::size_t>(k));
  }
}

TEST(CsrMailbox, DeliverTouchesOnlyDestinations) {
  // The deliver-cost contract: inbox bookkeeping is proportional to the
  // distinct destinations, not to n.
  const std::size_t n = 1 << 14;
  auto net = make_net(n, 5);
  Mailbox<int> mb(net);
  net.begin_round();
  for (int i = 0; i < 10; ++i) mb.push_to(0, static_cast<NodeId>(i % 3), i);
  mb.deliver();
  EXPECT_EQ(mb.last_delivered_messages(), 10u);
  EXPECT_EQ(mb.last_delivered_inboxes(), 3u);
  ASSERT_EQ(mb.inbox(0).size(), 4u);
  EXPECT_EQ(mb.inbox(1).size(), 3u);
  EXPECT_EQ(mb.inbox(2).size(), 3u);
  EXPECT_TRUE(mb.inbox(3).empty());
}

TEST(CsrMailbox, ReceiversListExactlyTheNonEmptyInboxes) {
  // receivers() is what makes the engines' delivery walk O(receivers):
  // it must name exactly the nodes with a non-empty inbox, once each,
  // and stay consistent across reused epochs.
  const std::size_t n = 1 << 12;
  auto net = make_net(n, 29);
  Mailbox<int> mb(net);
  for (int round = 0; round < 5; ++round) {
    net.begin_round();
    const int msgs = 20 + round;
    for (int i = 0; i < msgs; ++i) {
      mb.push_to(0, static_cast<NodeId>((i * 37 + round) % 50), i);
    }
    mb.deliver();
    const auto recv = mb.receivers();
    EXPECT_EQ(recv.size(), mb.last_delivered_inboxes());
    std::vector<NodeId> seen(recv.begin(), recv.end());
    std::sort(seen.begin(), seen.end());
    EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end())
        << "duplicate receiver";
    std::size_t received = 0;
    for (const NodeId v : recv) {
      EXPECT_FALSE(mb.inbox(v).empty());
      received += mb.inbox(v).size();
    }
    EXPECT_EQ(received, static_cast<std::size_t>(msgs));
  }
}

TEST(CsrMailbox, PushLossIsUnbiasedAndDeterministic) {
  const std::size_t n = 128;
  FaultModel faults;
  faults.push_loss = 0.4;
  auto run = [&](std::uint64_t seed) {
    Network net(n, util::Rng(seed), faults);
    Mailbox<int> mb(net);
    net.begin_round();
    for (int i = 0; i < 20000; ++i) mb.push(0, i);
    mb.deliver();
    std::size_t received = 0;
    for (NodeId v = 0; v < n; ++v) received += mb.inbox(v).size();
    return received;
  };
  const std::size_t a = run(7);
  EXPECT_EQ(a, run(7));  // seed-deterministic under geometric skipping
  // ~60% of 20000 survive; 5-sigma band.
  EXPECT_NEAR(static_cast<double>(a), 12000.0, 350.0);
}

TEST(CsrPullChannel, ResponsesArriveInRequestOrder) {
  // The responder is invoked in request order; each requester's slice must
  // list its responses in that order — for sorted (per-node loops) and
  // unsorted (interleaved) request sequences alike.
  for (const bool interleaved : {false, true}) {
    const std::size_t n = 16;
    auto net = make_net(n, 9);
    PullChannel<int> ch(net);
    net.begin_round();
    std::vector<NodeId> froms;
    if (interleaved) {
      for (int k = 0; k < 60; ++k) froms.push_back(k * 7 % n);
    } else {
      for (NodeId v = 0; v < n; ++v) {
        for (int k = 0; k < 4; ++k) froms.push_back(v);
      }
    }
    std::map<NodeId, std::vector<int>> expected;
    int counter = 0;
    for (const NodeId f : froms) {
      ch.request(f);
      expected[f].push_back(counter++);  // responder call #k returns k
    }
    int calls = 0;
    ch.resolve([&](NodeId) { return std::optional<int>(calls++); });
    for (const auto& [f, want] : expected) {
      const auto got = ch.responses(f);
      ASSERT_EQ(got.size(), want.size())
          << (interleaved ? "interleaved" : "sorted") << " from " << f;
      for (std::size_t k = 0; k < want.size(); ++k) {
        EXPECT_EQ(got[k], want[k]);
      }
    }
  }
}

TEST(CsrPullChannel, AnsweredCountsAreLazilyExact) {
  const std::size_t n = 8;
  auto net = make_net(n, 13);
  PullChannel<int> ch(net);
  net.begin_round();
  for (int k = 0; k < 100; ++k) ch.request(static_cast<NodeId>(k % n));
  ch.resolve([](NodeId target) {
    if (target % 2 == 0) return std::optional<int>();  // evens never answer
    return std::optional<int>(1);
  });
  std::uint32_t total_answers = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (v % 2 == 0) {
      EXPECT_EQ(ch.answered(v), 0u);
    }
    total_answers += ch.answered(v);
  }
  std::size_t total_responses = 0;
  for (NodeId v = 0; v < n; ++v) total_responses += ch.responses(v).size();
  EXPECT_EQ(total_answers, total_responses);
  EXPECT_GT(total_responses, 0u);
}

TEST(CsrPullChannel, FusedPullsMatchChannelContract) {
  const std::size_t n = 64;
  auto net = make_net(n, 17);
  PullChannel<int> ch(net);
  net.begin_round();
  ch.begin_pulls();
  for (NodeId v = 0; v < n; v += 2) {
    ch.pull_uniform(v, 5, [](NodeId target) {
      return std::optional<int>(static_cast<int>(target));
    });
  }
  for (NodeId v = 0; v < n; ++v) {
    if (v % 2 == 0) {
      ASSERT_EQ(ch.responses(v).size(), 5u);
      for (const int t : ch.responses(v)) {
        EXPECT_GE(t, 0);
        EXPECT_LT(t, static_cast<int>(n));
      }
    } else {
      EXPECT_TRUE(ch.responses(v).empty());
    }
  }
  net.meter().finish();
  EXPECT_EQ(net.meter().total_pull_ops(), 5u * (n / 2));
}

TEST(Network, LossGapMatchesGeometricMean) {
  auto net = make_net(4, 21);
  const double p = 0.2;
  double sum = 0.0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    sum += static_cast<double>(net.loss_gap(p));
  }
  // E[gap] = (1-p)/p = 4; generous tolerance for 20k draws.
  EXPECT_NEAR(sum / draws, 4.0, 0.25);
  // Degenerate p: everything dropped.
  EXPECT_EQ(net.loss_gap(1.0), 0u);
}

TEST(Network, SparseSleepDrawsResetEachRound) {
  const std::size_t n = 4096;
  FaultModel faults;
  faults.sleep_probability = 0.1;
  Network net(n, util::Rng(23), faults);
  std::size_t total = 0;
  for (int round = 0; round < 20; ++round) {
    net.begin_round();
    std::size_t asleep = 0;
    for (NodeId v = 0; v < n; ++v) asleep += net.asleep(v) ? 1 : 0;
    total += asleep;
  }
  // 10% of 4096 over 20 rounds, 5-sigma band.
  EXPECT_NEAR(static_cast<double>(total), 8192.0, 430.0);
}

}  // namespace
}  // namespace lpt::gossip

namespace lpt::core {
namespace {


TEST(NodeStore, AddOriginalKeepsPrefixInvariant) {
  gossip::NodeStore<int> store(4);
  const gossip::NodeId v = 2;
  store.add_original(v, 1);
  store.add_copy(v, 100);
  store.add_copy(v, 101);
  store.add_original(v, 2);  // displaces a copy to the back in O(1)
  store.add_original(v, 3);
  ASSERT_EQ(store.h0_count(v), 3u);
  ASSERT_EQ(store.size(v), 5u);
  EXPECT_EQ(store.total_elements(), 5u);
  EXPECT_TRUE(store.view(0).empty());
  const auto view = store.view(v);
  // The H_0 prefix holds exactly the originals (order unspecified).
  std::vector<int> originals(view.begin(), view.begin() + 3);
  std::sort(originals.begin(), originals.end());
  EXPECT_EQ(originals, (std::vector<int>{1, 2, 3}));
  std::vector<int> copies(view.begin() + 3, view.end());
  std::sort(copies.begin(), copies.end());
  EXPECT_EQ(copies, (std::vector<int>{100, 101}));
}

TEST(NodeStore, FilterNeverDropsOriginals) {
  gossip::NodeStore<int> store(2);
  for (int i = 0; i < 10; ++i) store.add_original(0, i);
  for (int i = 100; i < 200; ++i) store.add_copy(0, i);
  EXPECT_EQ(store.total_elements(), 110u);
  util::Rng rng(5);
  store.filter_node(0, rng, 0.0);  // drop every copy
  EXPECT_EQ(store.size(0), 10u);
  EXPECT_EQ(store.h0_count(0), 10u);
  EXPECT_EQ(store.total_elements(), 10u);
  for (const int x : store.view(0)) EXPECT_LT(x, 10);
}

TEST(NodeStore, MatchesReferenceStoreOnRandomizedOps) {
  // Drive the slab store and the pre-slab per-node-vector store through an
  // identical randomized op sequence (adds, copies, filter passes) with
  // cloned RNG streams: every node's element sequence — not just its set —
  // must match, along with the incremental total.  This is the
  // old-path/new-path bit-identity contract at the store level.
  const std::size_t n = 64;
  gossip::NodeStore<std::uint32_t> slab(n);
  std::vector<bench::ReferenceNodeStore<std::uint32_t>> ref(n);
  util::Rng ops(123);
  std::vector<util::Rng> slab_rng, ref_rng;
  for (std::size_t v = 0; v < n; ++v) {
    slab_rng.emplace_back(1000 + v);
    ref_rng.emplace_back(1000 + v);
  }
  std::uint32_t next_val = 0;
  for (int round = 0; round < 40; ++round) {
    const int adds = static_cast<int>(ops.below(200));
    for (int a = 0; a < adds; ++a) {
      const auto v = static_cast<gossip::NodeId>(ops.below(n));
      const std::uint32_t val = next_val++;
      if (ops.bernoulli(0.3)) {
        slab.add_original(v, val);
        ref[v].add_original(val);
      } else {
        slab.add_copy(v, val);
        ref[v].add_copy(val);
      }
    }
    if (round % 3 == 0) {
      // Reference path filters every node; the slab path filters only the
      // copy-holders.  Nodes without copies draw nothing, so the streams
      // stay aligned — that equivalence is the point of the test.
      slab.filter_copies(0.7, [&](gossip::NodeId v) -> util::Rng& {
        return slab_rng[v];
      });
      for (std::size_t v = 0; v < n; ++v) ref[v].filter(ref_rng[v], 0.7);
    }
  }
  std::size_t ref_total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const auto got = slab.view(static_cast<gossip::NodeId>(v));
    ASSERT_EQ(got.size(), ref[v].elems.size()) << "node " << v;
    ASSERT_EQ(slab.h0_count(static_cast<gossip::NodeId>(v)), ref[v].h0_count);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], ref[v].elems[i]) << "node " << v << " slot " << i;
    }
    ref_total += ref[v].elems.size();
  }
  EXPECT_EQ(slab.total_elements(), ref_total);
}

TEST(NodeStore, FilterPassVisitsOnlyCopyHolders) {
  // The O(active)-not-O(n) counter contract: with copies on k of n nodes,
  // the filter pass must visit exactly k nodes, and the holder list must
  // compact as nodes go copy-free.
  const std::size_t n = 1 << 16;
  const std::size_t k = 100;
  gossip::NodeStore<std::uint32_t> store(n);
  for (std::size_t v = 0; v < n; ++v) {
    store.add_original(static_cast<gossip::NodeId>(v), 1);
  }
  for (std::size_t j = 0; j < k; ++j) {
    const auto v = static_cast<gossip::NodeId>(j * 599);
    store.add_copy(v, 7);
    store.add_copy(v, 8);
  }
  ASSERT_EQ(store.copy_holders().size(), k);
  std::vector<util::Rng> rng;
  for (std::size_t v = 0; v < n; ++v) rng.emplace_back(v);
  // keep_p = 1: every copy survives, every holder stays.
  std::size_t visited = store.filter_copies(
      1.0, [&](gossip::NodeId v) -> util::Rng& { return rng[v]; });
  EXPECT_EQ(visited, k);
  EXPECT_EQ(store.copy_holders().size(), k);
  // keep_p = 0: all copies drop, the holder list empties, and the next
  // pass is free.
  visited = store.filter_copies(
      0.0, [&](gossip::NodeId v) -> util::Rng& { return rng[v]; });
  EXPECT_EQ(visited, k);
  EXPECT_EQ(store.copy_holders().size(), 0u);
  visited = store.filter_copies(
      0.0, [&](gossip::NodeId v) -> util::Rng& { return rng[v]; });
  EXPECT_EQ(visited, 0u);
  EXPECT_EQ(store.total_elements(), n);
}

TEST(SelectDistinct, ViewAndOwningVariantsAgree) {
  std::vector<std::uint32_t> a{5, 1, 5, 9, 1, 7, 3, 9, 2, 8, 4, 6};
  std::vector<std::uint32_t> b = a;
  util::Rng r1(42), r2(42);
  const auto view = select_distinct_view(std::span<std::uint32_t>(a), 4, r1,
                                         /*strict=*/false);
  SampleOutcome<std::uint32_t> owned;
  select_distinct_into(b, 4, r2, /*strict=*/false, owned);
  ASSERT_TRUE(view.success);
  ASSERT_TRUE(owned.success);
  ASSERT_EQ(view.sample.size(), owned.sample.size());
  for (std::size_t i = 0; i < owned.sample.size(); ++i) {
    EXPECT_EQ(view.sample[i], owned.sample[i]);
  }
}

TEST(SelectDistinct, HashDedupeFindsExactDistinctSet) {
  // 500 draws from 40 values: the selection must consist of distinct
  // values only, and lenient short samples must return every distinct.
  util::Rng rng(77);
  std::vector<std::uint32_t> responses;
  for (int i = 0; i < 500; ++i) {
    responses.push_back(static_cast<std::uint32_t>(rng.below(40)));
  }
  SampleOutcome<std::uint32_t> out;
  select_distinct_into(responses, 64, rng, /*strict=*/false, out);
  ASSERT_TRUE(out.success);
  std::vector<std::uint32_t> sorted = out.sample;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
  EXPECT_EQ(sorted.size(), 40u);  // every distinct value seen
}

}  // namespace
}  // namespace lpt::core
