// The observability subsystem (src/obs): histogram percentiles against a
// sorted oracle, registry snapshot/delta/dump_json, Chrome-trace output
// (validated in-process and round-tripped through tools/trace_summary.py),
// the zero-allocation recording contract, and the two cross-cutting
// guarantees the rest of the repo leans on — instrumented runs are
// bit-identical to uninstrumented ones, and deterministic update sites
// produce identical registry totals for every parallelism/shard choice.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/low_load.hpp"
#include "gossip/metrics.hpp"
#include "obs/obs.hpp"
#include "problems/min_disk.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"
#include "workloads/disk_data.hpp"

// Allocation counter for the zero-alloc recording contract.  Counting is
// precise for the single-threaded windows the tests measure (no other
// thread runs during them).
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lpt {
namespace {

using obs::Histogram;

// ---------------------------------------------------------------------------
// Histogram vs sorted oracle.
// ---------------------------------------------------------------------------

std::uint64_t oracle_percentile(std::vector<std::uint64_t> sorted, double q) {
  // Nearest-rank on the sorted sample — the definition Histogram documents.
  if (sorted.empty()) return 0;
  const auto n = sorted.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

void expect_percentiles_near_oracle(const Histogram& h,
                                    std::vector<std::uint64_t> values,
                                    const char* tag) {
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.95, 0.99, 1.0}) {
    const std::uint64_t exact = oracle_percentile(values, q);
    const std::uint64_t approx = h.percentile(q);
    // The histogram answers a bucket upper edge: never below the exact
    // answer, and at most one sub-bucket (1/32 relative) plus rounding
    // above it.
    EXPECT_GE(approx, exact) << tag << " q=" << q;
    const auto bound = static_cast<std::uint64_t>(
        static_cast<double>(exact) * (1.0 + 1.0 / 32.0)) + 1;
    EXPECT_LE(approx, bound) << tag << " q=" << q;
  }
}

TEST(ObsHistogram, MatchesOracleOnUniform) {
  Histogram h;
  std::vector<std::uint64_t> values;
  auto rng = testsupport::seeded_rng("obs-hist-uniform");
  for (int k = 0; k < 20000; ++k) {
    const std::uint64_t v = rng() % 1'000'000;
    h.record(v);
    values.push_back(v);
  }
  expect_percentiles_near_oracle(h, values, "uniform");
  EXPECT_EQ(h.count(), 20000u);
}

TEST(ObsHistogram, MatchesOracleOnHeavyTail) {
  // Latency-shaped data: most values small, a long multiplicative tail.
  Histogram h;
  std::vector<std::uint64_t> values;
  auto rng = testsupport::seeded_rng("obs-hist-tail");
  for (int k = 0; k < 20000; ++k) {
    const unsigned shift = static_cast<unsigned>(rng() % 40);
    const std::uint64_t v = (std::uint64_t{1} << shift) +
                            rng() % (std::uint64_t{1} << shift);
    h.record(v);
    values.push_back(v);
  }
  expect_percentiles_near_oracle(h, values, "heavy-tail");
}

TEST(ObsHistogram, ExactBelowSixtyFour) {
  // Values below 2^6 land in width-1 buckets: percentiles are exact.
  Histogram h;
  std::vector<std::uint64_t> values;
  auto rng = testsupport::seeded_rng("obs-hist-small");
  for (int k = 0; k < 5000; ++k) {
    const std::uint64_t v = rng() % 64;
    h.record(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.1, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile(q), oracle_percentile(values, q)) << q;
  }
}

TEST(ObsHistogram, ConstantStream) {
  for (const std::uint64_t v : {0ull, 1ull, 63ull, 64ull, 65ull, 4095ull,
                                (1ull << 40) + 17}) {
    Histogram h;
    for (int k = 0; k < 100; ++k) h.record(v);
    EXPECT_GE(h.percentile(0.5), v) << v;
    const auto bound = static_cast<std::uint64_t>(
        static_cast<double>(v) * (1.0 + 1.0 / 32.0)) + 1;
    EXPECT_LE(h.percentile(0.5), bound) << v;
    EXPECT_EQ(h.max(), v);
    EXPECT_EQ(h.sum(), 100 * v);
  }
}

TEST(ObsHistogram, BucketIndexSweep) {
  // Exhaustive low range plus power-of-two edges across the full width:
  // indices stay in range and non-decreasing, upper edges bound the value.
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 1u << 16; ++v) {
    const std::size_t idx = Histogram::index(v);
    ASSERT_LT(idx, Histogram::kBuckets) << v;
    ASSERT_GE(idx, prev) << v;
    ASSERT_GE(Histogram::bucket_upper(idx), v) << v;
    prev = idx;
  }
  for (unsigned shift = 16; shift < 64; ++shift) {
    for (const std::uint64_t v :
         {(std::uint64_t{1} << shift) - 1, std::uint64_t{1} << shift,
          (std::uint64_t{1} << shift) + 1}) {
      const std::size_t idx = Histogram::index(v);
      ASSERT_LT(idx, Histogram::kBuckets) << v;
      ASSERT_GE(Histogram::bucket_upper(idx), v) << v;
    }
  }
  EXPECT_LT(Histogram::index(~std::uint64_t{0}), Histogram::kBuckets);
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(ObsRegistry, RegistrationIsIdempotentAndStable) {
  obs::Counter& a = obs::counter("test.reg.counter");
  obs::Counter& b = obs::counter("test.reg.counter");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g1 = obs::gauge("test.reg.gauge");
  obs::Gauge& g2 = obs::gauge("test.reg.gauge");
  EXPECT_EQ(&g1, &g2);
  obs::Histogram& h1 = obs::histogram("test.reg.hist");
  obs::Histogram& h2 = obs::histogram("test.reg.hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(ObsRegistry, SnapshotAndDelta) {
  obs::Counter& c = obs::counter("test.snap.counter");
  obs::Gauge& g = obs::gauge("test.snap.gauge");
  obs::Histogram& h = obs::histogram("test.snap.hist");
  c.reset();
  g.reset();
  h.reset();

  c.add(5);
  g.set(-7);
  h.record(100);
  const obs::Snapshot before = obs::snapshot();
  EXPECT_EQ(before.counter_value("test.snap.counter"), 5u);
  EXPECT_EQ(before.gauge_value("test.snap.gauge"), -7);
  ASSERT_NE(before.find_histogram("test.snap.hist"), nullptr);
  EXPECT_EQ(before.find_histogram("test.snap.hist")->count, 1u);

  c.add(3);
  g.set(11);
  h.record(200);
  h.record(300);
  const obs::Snapshot after = obs::snapshot();
  const obs::Snapshot d = after.delta(before);
  EXPECT_EQ(d.counter_value("test.snap.counter"), 3u);
  EXPECT_EQ(d.gauge_value("test.snap.gauge"), 11);  // gauges stay absolute
  ASSERT_NE(d.find_histogram("test.snap.hist"), nullptr);
  EXPECT_EQ(d.find_histogram("test.snap.hist")->count, 2u);
  EXPECT_EQ(d.find_histogram("test.snap.hist")->sum, 500u);
}

TEST(ObsRegistry, DumpJsonCoversEveryKind) {
  obs::counter("test.json.counter").add(1);
  obs::gauge("test.json.gauge").set(2);
  obs::histogram("test.json.hist").record(3);
  const std::string j = obs::dump_json();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"test.json.counter\""), std::string::npos);
  EXPECT_NE(j.find("\"test.json.gauge\""), std::string::npos);
  EXPECT_NE(j.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(j.find("\"p99\""), std::string::npos);
}

// One engine run at a canonical instance, used by the determinism and
// bit-identity tests below.
core::DistributedLpResult<problems::MinDisk> run_engine(
    std::size_t parallel_nodes = 0, std::size_t shards = 0) {
  problems::MinDisk p;
  const auto pts = testsupport::golden_disk_points(
      workloads::DiskDataset::kTripleDisk, 512);
  core::LowLoadConfig cfg;
  cfg.seed = 20250808;
  cfg.parallel_nodes = parallel_nodes;
  cfg.shard.shards = shards;
  return core::run_low_load(p, pts, 512, cfg);
}

std::vector<std::pair<std::string, std::uint64_t>> engine_counters() {
  const obs::Snapshot s = obs::snapshot();
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, value] : s.counters) {
    // The deterministic subset: gossip totals and engine round counts.
    // (shard.* frame traffic is transport bookkeeping, not part of the
    // determinism contract.)
    if (name.rfind("gossip.", 0) == 0 || name.rfind("engine.", 0) == 0) {
      out.emplace_back(name, value);
    }
  }
  return out;
}

TEST(ObsRegistry, CountersDeterministicAcrossParallelism) {
  // parallel_nodes moves stage A onto threads without changing what runs:
  // every deterministic counter total must match the serial run exactly.
  obs::reset_all();
  const auto serial = run_engine(0);
  const auto serial_counters = engine_counters();

  obs::reset_all();
  const auto parallel = run_engine(4);
  const auto parallel_counters = engine_counters();

  EXPECT_EQ(serial.solution, parallel.solution);
  EXPECT_EQ(serial_counters, parallel_counters);
  EXPECT_EQ(obs::snapshot().counter_value("gossip.rounds"),
            serial.stats.rounds_to_first);
}

TEST(ObsRegistry, CountersDeterministicAcrossSharding) {
  obs::reset_all();
  const auto serial = run_engine(0, 0);
  const auto serial_counters = engine_counters();

  obs::reset_all();
  const auto sharded = run_engine(0, 2);
  const auto sharded_counters = engine_counters();

  EXPECT_EQ(serial.solution, sharded.solution);
  EXPECT_EQ(serial_counters, sharded_counters);
}

// ---------------------------------------------------------------------------
// WorkMeter reserve: the per-round history push_back never reallocates
// once the engine has declared its round bound.
// ---------------------------------------------------------------------------

TEST(ObsWorkMeter, ReserveRoundsPreventsReallocation) {
  gossip::WorkMeter m(8);
  m.reserve_rounds(32);
  const std::size_t cap = m.history_capacity();
  ASSERT_GE(cap, 32u);
  for (int round = 0; round < 32; ++round) {
    m.begin_round();
    m.add_push(0, 16);
    m.add_pull(1, 16);
  }
  m.finish();
  EXPECT_EQ(m.history_capacity(), cap);
  EXPECT_EQ(m.history().size(), 32u);
}

TEST(ObsWorkMeter, FinishFoldsIntoRegistryOnce) {
  obs::reset_all();
  gossip::WorkMeter m(4);
  m.begin_round();
  m.add_push(0, 8);
  m.add_push(1, 8);
  m.add_pull(2, 8);
  m.finish();
  m.finish();  // idempotent: the delta fold must not double-count
  const obs::Snapshot s = obs::snapshot();
  EXPECT_EQ(s.counter_value("gossip.rounds"), 1u);
  EXPECT_EQ(s.counter_value("gossip.push_ops"), 2u);
  EXPECT_EQ(s.counter_value("gossip.pull_ops"), 1u);
  EXPECT_EQ(s.counter_value("gossip.bytes"), 24u);
}

// ---------------------------------------------------------------------------
// Memory telemetry.
// ---------------------------------------------------------------------------

TEST(ObsMemory, ProcSelfStatusSampleIsSane) {
  const obs::MemorySample s = obs::sample_memory();
  if (!s.ok) GTEST_SKIP() << "/proc/self/status not readable here";
  EXPECT_GT(s.vm_rss_bytes, 0u);
  EXPECT_GE(s.vm_hwm_bytes, s.vm_rss_bytes);
  EXPECT_EQ(obs::snapshot().gauge_value("mem.vm_rss_bytes"),
            static_cast<std::int64_t>(s.vm_rss_bytes));
  EXPECT_EQ(obs::snapshot().gauge_value("mem.vm_hwm_bytes"),
            static_cast<std::int64_t>(s.vm_hwm_bytes));
}

// ---------------------------------------------------------------------------
// Tracing: bit-identity, zero-allocation recording, Chrome JSON output.
// ---------------------------------------------------------------------------

TEST(ObsTrace, EngineRunBitIdenticalWithTracingEnabled) {
  // The headline contract: tracing never draws RNG or branches into
  // algorithm code, so a traced run reproduces the untraced run field by
  // field — solution, rounds, and every WorkMeter total.
  const auto plain = run_engine();

  if (obs::kTraceCompiled) {
    obs::TraceConfig cfg;
    cfg.sample_period = 1;  // trace every round: the worst case
    obs::enable_tracing(cfg);
  }
  const auto traced = run_engine();
  obs::disable_tracing();

  EXPECT_EQ(plain.solution, traced.solution);
  EXPECT_EQ(plain.stats.rounds_to_first, traced.stats.rounds_to_first);
  EXPECT_EQ(plain.stats.reached_optimum, traced.stats.reached_optimum);
  EXPECT_EQ(plain.stats.total_push_ops, traced.stats.total_push_ops);
  EXPECT_EQ(plain.stats.total_pull_ops, traced.stats.total_pull_ops);
  EXPECT_EQ(plain.stats.total_bytes, traced.stats.total_bytes);
  EXPECT_EQ(plain.stats.max_work_per_round, traced.stats.max_work_per_round);
  EXPECT_EQ(plain.stats.max_total_elements, traced.stats.max_total_elements);
  EXPECT_EQ(plain.stats.sampling_attempts, traced.stats.sampling_attempts);
  EXPECT_EQ(plain.stats.bookkeeping_touches_total,
            traced.stats.bookkeeping_touches_total);
}

TEST(ObsTrace, RecordingAllocatesNothing) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with LPT_OBS_TRACE=OFF";
  // Registration and ring setup happen before the window; the measured
  // region is pure recording — the serve-path contract.
  obs::Histogram& h = obs::histogram("test.alloc.hist");
  obs::Counter& c = obs::counter("test.alloc.counter");
  obs::TraceConfig cfg;
  cfg.sample_period = 1;
  obs::enable_tracing(cfg);

  const std::uint64_t before = g_allocs.load();
  for (int k = 0; k < 10000; ++k) {
    obs::trace_tick();
    obs::TraceSpan span("test.alloc.span", static_cast<std::uint64_t>(k));
    obs::trace_instant("test.alloc.instant", 1);
    c.add(1);
    h.record(static_cast<std::uint64_t>(k) * 977);
  }
  const std::uint64_t after = g_allocs.load();
  obs::disable_tracing();
  EXPECT_EQ(after - before, 0u)
      << "metric/trace recording allocated on the hot path";
}

TEST(ObsTrace, ChromeTraceRoundTripsThroughValidator) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with LPT_OBS_TRACE=OFF";
  obs::TraceConfig cfg;
  cfg.sample_period = 1;
  obs::enable_tracing(cfg);
  (void)run_engine();
  obs::disable_tracing();
  ASSERT_GT(obs::trace_event_count(), 0u);

  const std::string path =
      ::testing::TempDir() + "/obs_trace_roundtrip.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));

  // Cheap in-process sanity on the emitted JSON.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string head(64, '\0');
  head.resize(std::fread(head.data(), 1, head.size(), f));
  std::fclose(f);
  EXPECT_NE(head.find("\"traceEvents\""), std::string::npos);

  // Full validation through the same tool CI runs: schema, timestamp
  // monotonicity, span nesting, and the round/stage-A names.
  if (std::system("python3 --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 unavailable; validator not run";
  }
  const std::string cmd = std::string("python3 ") + LPT_TOOLS_DIR +
                          "/trace_summary.py " + path +
                          " --require low_load.round"
                          " --require low_load.stage_a.chunk --quiet";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
}

TEST(ObsTrace, DisabledTracingRecordsNothing) {
  // The ring keeps its contents after disable (for the final trace
  // write); what must hold is that disabled sites record nothing NEW.
  obs::disable_tracing();
  const std::size_t before = obs::trace_event_count();
  obs::trace_tick();
  { obs::TraceSpan span("test.off.span"); }
  obs::trace_instant("test.off.instant");
  obs::trace_rare("test.off.rare");
  EXPECT_EQ(obs::trace_event_count(), before);
  EXPECT_FALSE(obs::tracing_enabled());
}

}  // namespace
}  // namespace lpt
