// Tests for the robust predicates (filtered + double-double fallback).
#include <gtest/gtest.h>

#include <cmath>

#include "geometry/predicates.hpp"
#include "util/rng.hpp"

namespace lpt::geom {
namespace {

TEST(DoubleDouble, TwoSumIsErrorFree) {
  const DD s = two_sum(1.0, 1e-20);
  EXPECT_EQ(s.hi, 1.0);
  EXPECT_EQ(s.lo, 1e-20);
}

TEST(DoubleDouble, TwoProdIsErrorFree) {
  const double a = 1.0 + std::ldexp(1.0, -30);
  const double b = 1.0 - std::ldexp(1.0, -30);
  const DD p = two_prod(a, b);
  // a*b = 1 - 2^-60 exactly: hi rounds to 1, lo carries the -2^-60.
  EXPECT_EQ(p.hi, 1.0);
  EXPECT_EQ(p.lo, -std::ldexp(1.0, -60));
}

TEST(DoubleDouble, ArithmeticKeepsExtendedPrecision) {
  const DD one = DD::from(1.0);
  const DD tiny = DD::from(1e-25);
  const DD sum = one + tiny;
  const DD back = sum - one;
  EXPECT_NEAR(back.value(), 1e-25, 1e-40);
  const DD sq = tiny * tiny;
  EXPECT_NEAR(sq.value(), 1e-50, 1e-65);
}

TEST(DoubleDouble, SignHandlesHiZero) {
  EXPECT_EQ((DD{0.0, 1e-30}).sign(), 1);
  EXPECT_EQ((DD{0.0, -1e-30}).sign(), -1);
  EXPECT_EQ((DD{0.0, 0.0}).sign(), 0);
}

TEST(Orient2d, BasicSigns) {
  EXPECT_EQ(orient2d_sign({0, 0}, {1, 0}, {0, 1}), 1);
  EXPECT_EQ(orient2d_sign({0, 0}, {0, 1}, {1, 0}), -1);
  EXPECT_EQ(orient2d_sign({0, 0}, {1, 1}, {2, 2}), 0);
}

TEST(Orient2d, ExactlyCollinearAtAwkwardScales) {
  // Points on the line y = x with coordinates that stress the filter.
  const Vec2 a{1e10, 1e10};
  const Vec2 b{-1e10, -1e10};
  const Vec2 c{0.5, 0.5};
  EXPECT_EQ(orient2d_sign(a, b, c), 0);
}

TEST(Orient2d, ExactOnAdversarialIntegerGrid) {
  // Integer-coordinate points are exactly representable as doubles up to
  // 2^53; determinant products overflow double precision (~80 bits) but
  // fit __int128_t, giving an exact oracle.  Collinear triples bumped by
  // -1/0/+1 are the adversarial near-degenerate cases.
  util::Rng rng(7);
  for (int t = 0; t < 2000; ++t) {
    const std::int64_t px = rng.uniform_int(-(1ll << 30), 1ll << 30);
    const std::int64_t py = rng.uniform_int(-(1ll << 30), 1ll << 30);
    const std::int64_t dx = rng.uniform_int(-(1ll << 19), 1ll << 19);
    const std::int64_t dy = rng.uniform_int(-(1ll << 19), 1ll << 19);
    const std::int64_t t1 = rng.uniform_int(1, 1ll << 19);
    const std::int64_t t2 = rng.uniform_int(1, 1ll << 19);
    const std::int64_t bx = rng.uniform_int(-1, 1);
    const std::int64_t by = rng.uniform_int(-1, 1);
    const std::int64_t ax = px, ay = py;
    const std::int64_t bxx = px + t1 * dx, byy = py + t1 * dy;
    const std::int64_t cx = px + t2 * dx + bx, cy = py + t2 * dy + by;
    const __int128_t det =
        static_cast<__int128_t>(ax - cx) * (byy - cy) -
        static_cast<__int128_t>(ay - cy) * (bxx - cx);
    const int expected = det > 0 ? 1 : (det < 0 ? -1 : 0);
    const int got = orient2d_sign(
        {static_cast<double>(ax), static_cast<double>(ay)},
        {static_cast<double>(bxx), static_cast<double>(byy)},
        {static_cast<double>(cx), static_cast<double>(cy)});
    ASSERT_EQ(got, expected)
        << "a=(" << ax << "," << ay << ") b=(" << bxx << "," << byy
        << ") c=(" << cx << "," << cy << ")";
  }
}

TEST(Orient2d, ExactWhereNaiveDoubleFails) {
  // Near-diagonal construction: points on the line with direction
  // (d, d+1), correlated (1, 1) bumps and a tiny parameter offset k make
  // the exact determinant O(k * t) while the products are ~2^90, far
  // beyond double's 53-bit mantissa.  The naive evaluation must get some
  // signs wrong here (sanity check that the grid is adversarial), the
  // robust predicate none.
  util::Rng rng(8);
  int naive_wrong = 0;
  for (int t = 0; t < 4000; ++t) {
    const std::int64_t d = rng.uniform_int(1ll << 21, 1ll << 22);
    const std::int64_t t1 = rng.uniform_int(1ll << 21, 1ll << 22);
    const std::int64_t k = rng.uniform_int(-2, 2);
    const std::int64_t t2 = t1 / 2 + k;
    const std::int64_t ax = 0, ay = 0;
    const std::int64_t bx = t1 * d, by = t1 * (d + 1);
    const std::int64_t cx = t2 * d + 1, cy = t2 * (d + 1) + 1;
    const __int128_t det = static_cast<__int128_t>(ax - cx) * (by - cy) -
                         static_cast<__int128_t>(ay - cy) * (bx - cx);
    const int expected = det > 0 ? 1 : (det < 0 ? -1 : 0);
    const int got = orient2d_sign(
        {static_cast<double>(ax), static_cast<double>(ay)},
        {static_cast<double>(bx), static_cast<double>(by)},
        {static_cast<double>(cx), static_cast<double>(cy)});
    ASSERT_EQ(got, expected) << "d=" << d << " t1=" << t1 << " k=" << k;
    const double naive =
        orient({static_cast<double>(ax), static_cast<double>(ay)},
               {static_cast<double>(bx), static_cast<double>(by)},
               {static_cast<double>(cx), static_cast<double>(cy)});
    const int naive_sign = naive > 0 ? 1 : (naive < 0 ? -1 : 0);
    if (naive_sign != expected) ++naive_wrong;
  }
  EXPECT_GT(naive_wrong, 0);
}

TEST(Orient2d, AntisymmetryProperty) {
  util::Rng rng(1);
  for (int t = 0; t < 500; ++t) {
    const Vec2 a{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec2 b{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec2 c{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    EXPECT_EQ(orient2d_sign(a, b, c), -orient2d_sign(a, c, b));
    EXPECT_EQ(orient2d_sign(a, b, c), orient2d_sign(b, c, a));
  }
}

TEST(Orient2d, AgreesWithNaiveWhenWellConditioned) {
  util::Rng rng(2);
  for (int t = 0; t < 1000; ++t) {
    const Vec2 a{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec2 b{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec2 c{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const double naive = orient(a, b, c);
    if (std::abs(naive) > 1e-6) {
      EXPECT_EQ(orient2d_sign(a, b, c), naive > 0 ? 1 : -1);
    }
  }
}

TEST(Incircle, BasicSigns) {
  // CCW unit-ish triangle; origin-centered circumcircle.
  const Vec2 a{1, 0}, b{0, 1}, c{-1, 0};
  EXPECT_EQ(incircle_sign(a, b, c, {0, 0}), 1);       // strictly inside
  EXPECT_EQ(incircle_sign(a, b, c, {0, -1}), 0);      // on the circle
  EXPECT_EQ(incircle_sign(a, b, c, {2, 2}), -1);      // outside
}

TEST(Incircle, NearBoundaryResolution) {
  const Vec2 a{1, 0}, b{0, 1}, c{-1, 0};
  EXPECT_EQ(incircle_sign(a, b, c, {0.0, -1.0 + 1e-12}), 1);
  EXPECT_EQ(incircle_sign(a, b, c, {0.0, -1.0 - 1e-12}), -1);
}

TEST(Incircle, CocircularPointsReportZero) {
  // Four points of a common circle with radius 5 centered at (3, -2).
  auto on = [](double t) {
    return Vec2{3.0 + 5.0 * std::cos(t), -2.0 + 5.0 * std::sin(t)};
  };
  // Angles chosen so coordinates are not exactly representable; the
  // determinant is ~0 but not exactly; accept -1/0/+1 consistently with a
  // symmetric flip (swapping two rows negates the determinant sign).
  const Vec2 a = on(0.1), b = on(1.3), c = on(2.9), d = on(4.0);
  const int s1 = incircle_sign(a, b, c, d);
  const int s2 = incircle_sign(b, a, c, d);
  EXPECT_EQ(s1, -s2);
}

TEST(Incircle, SymmetryUnderRotationOfArguments) {
  util::Rng rng(3);
  for (int t = 0; t < 300; ++t) {
    const Vec2 a{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec2 b{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec2 c{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec2 d{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    // Even permutations of (a, b, c) preserve the sign.
    EXPECT_EQ(incircle_sign(a, b, c, d), incircle_sign(b, c, a, d));
    EXPECT_EQ(incircle_sign(a, b, c, d), incircle_sign(c, a, b, d));
  }
}

}  // namespace
}  // namespace lpt::geom
