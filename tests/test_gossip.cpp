// Tests for the gossip-model simulator substrate: work metering, mailboxes,
// pull channels, and the hypercube collective emulator.
#include <gtest/gtest.h>

#include <numeric>

#include "gossip/hypercube.hpp"
#include "gossip/mailbox.hpp"
#include "gossip/metrics.hpp"
#include "gossip/network.hpp"

namespace lpt::gossip {
namespace {

Network make_net(std::size_t n, std::uint64_t seed = 1) {
  return Network(n, util::Rng(seed));
}

TEST(WorkMeter, TracksPerRoundMaxWork) {
  WorkMeter m(3);
  m.begin_round();
  m.add_push(0, 8);
  m.add_push(0, 8);
  m.add_pull(1, 0);
  m.begin_round();
  m.add_push(2, 4);
  m.finish();
  ASSERT_EQ(m.rounds(), 2u);
  EXPECT_EQ(m.history()[0].max_node_work, 2u);
  EXPECT_EQ(m.history()[1].max_node_work, 1u);
  EXPECT_EQ(m.max_work_per_round(), 2u);
  EXPECT_EQ(m.total_push_ops(), 3u);
  EXPECT_EQ(m.total_pull_ops(), 1u);
  EXPECT_EQ(m.total_bytes(), 20u);
}

TEST(WorkMeter, WorkResetsEachRound) {
  WorkMeter m(1);
  for (int r = 0; r < 5; ++r) {
    m.begin_round();
    m.add_push(0, 1);
  }
  m.finish();
  EXPECT_EQ(m.max_work_per_round(), 1u);
}

TEST(Network, PeersAreUniform) {
  auto net = make_net(16, 7);
  std::vector<int> counts(16, 0);
  constexpr int kDraws = 64000;
  for (int i = 0; i < kDraws; ++i) ++counts[net.random_peer()];
  for (int c : counts) EXPECT_NEAR(c, kDraws / 16, kDraws / 16 * 0.15);
}

TEST(Network, RoundCounterAdvances) {
  auto net = make_net(4);
  EXPECT_EQ(net.round(), 0u);
  net.begin_round();
  net.begin_round();
  EXPECT_EQ(net.round(), 2u);
}

TEST(Mailbox, DeliversAllPushedMessages) {
  auto net = make_net(8, 3);
  Mailbox<int> mb(net);
  net.begin_round();
  for (int i = 0; i < 100; ++i) mb.push(0, i);
  EXPECT_EQ(mb.pending(), 100u);
  mb.deliver();
  EXPECT_EQ(mb.pending(), 0u);
  std::size_t received = 0;
  for (NodeId v = 0; v < 8; ++v) received += mb.inbox(v).size();
  EXPECT_EQ(received, 100u);
}

TEST(Mailbox, InboxClearedOnNextDelivery) {
  auto net = make_net(2, 3);
  Mailbox<int> mb(net);
  net.begin_round();
  mb.push(0, 42);
  mb.deliver();
  mb.deliver();  // second round: nothing pushed
  EXPECT_TRUE(mb.inbox(0).empty());
  EXPECT_TRUE(mb.inbox(1).empty());
}

TEST(Mailbox, PushToTargetsExplicitNode) {
  auto net = make_net(4, 3);
  Mailbox<int> mb(net);
  net.begin_round();
  mb.push_to(0, 3, 9);
  mb.deliver();
  ASSERT_EQ(mb.inbox(3).size(), 1u);
  EXPECT_EQ(mb.inbox(3)[0], 9);
}

TEST(Mailbox, MetersWorkOnSender) {
  auto net = make_net(4, 3);
  Mailbox<double> mb(net);
  net.begin_round();
  mb.push(2, 1.5);
  mb.push(2, 2.5);
  net.meter().finish();
  EXPECT_EQ(net.meter().total_push_ops(), 2u);
  EXPECT_EQ(net.meter().total_bytes(), 2 * sizeof(double));
}

TEST(PullChannel, RoutesResponsesToRequester) {
  auto net = make_net(8, 5);
  PullChannel<int> ch(net);
  net.begin_round();
  for (int k = 0; k < 20; ++k) ch.request(1);
  ch.resolve([](NodeId target) { return std::optional<int>(static_cast<int>(target)); });
  EXPECT_EQ(ch.responses(1).size(), 20u);
  EXPECT_TRUE(ch.responses(0).empty());
  for (int v : ch.responses(1)) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 8);
  }
}

TEST(PullChannel, NulloptModelsNoReply) {
  auto net = make_net(4, 5);
  PullChannel<int> ch(net);
  net.begin_round();
  for (int k = 0; k < 10; ++k) ch.request(0);
  ch.resolve([](NodeId) { return std::optional<int>(); });
  EXPECT_TRUE(ch.responses(0).empty());
  net.meter().finish();
  EXPECT_EQ(net.meter().total_pull_ops(), 10u);
  EXPECT_EQ(net.meter().total_push_ops(), 0u);  // no replies sent
}

TEST(PullChannel, ClearsBetweenResolves) {
  auto net = make_net(4, 5);
  PullChannel<int> ch(net);
  net.begin_round();
  ch.request(0);
  ch.resolve([](NodeId) { return std::optional<int>(1); });
  EXPECT_EQ(ch.responses(0).size(), 1u);
  ch.resolve([](NodeId) { return std::optional<int>(1); });
  EXPECT_TRUE(ch.responses(0).empty());
}

struct DynamicMsg {
  std::vector<int> payload;
  friend std::size_t wire_size(const DynamicMsg& m) noexcept {
    return m.payload.size() * sizeof(int);
  }
};

TEST(Mailbox, WireSizeCustomizationPoint) {
  auto net = make_net(2, 5);
  Mailbox<DynamicMsg> mb(net);
  net.begin_round();
  mb.push(0, DynamicMsg{{1, 2, 3}});
  net.meter().finish();
  EXPECT_EQ(net.meter().total_bytes(), 3 * sizeof(int));
}

TEST(Hypercube, RequiresPowerOfTwo) {
  EXPECT_DEATH(Hypercube(12), "power of two");
}

TEST(Hypercube, CollectiveRoundCosts) {
  Hypercube hc(16);
  EXPECT_EQ(hc.dimension(), 4u);
  std::vector<int> vals(16);
  std::iota(vals.begin(), vals.end(), 0);
  hc.broadcast(vals, 3);
  EXPECT_EQ(hc.rounds_used(), 4u);
  for (int v : vals) EXPECT_EQ(v, 3);
  const int total = hc.all_reduce(vals, 0, [](int a, int b) { return a + b; });
  EXPECT_EQ(total, 3 * 16);
  EXPECT_EQ(hc.rounds_used(), 8u);
  hc.route_messages();
  EXPECT_EQ(hc.rounds_used(), 12u);
}

TEST(Hypercube, PrefixSumIsExclusive) {
  Hypercube hc(8);
  std::vector<int> vals(8, 2);
  const int total = hc.prefix_sum(vals);
  EXPECT_EQ(total, 16);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(vals[i], static_cast<int>(2 * i));
  EXPECT_EQ(hc.rounds_used(), 3u);
}

}  // namespace
}  // namespace lpt::gossip
