// Thread-count invariance for the hypercube Clarkson baseline: the
// per-node compute stage (weight totals, violation scans, doubling) and
// the collectives' per-node steps fan out over a thread pool, and the
// results — solution, iteration count, hypercube round count — must be
// bit-identical to the serial run for every thread count, including under
// loss/sleep faults and when the iteration cap terminates the run early.
#include <gtest/gtest.h>

#include <thread>

#include "core/hypercube_clarkson.hpp"
#include "problems/min_disk.hpp"
#include "support/test_support.hpp"
#include "util/math.hpp"
#include "workloads/disk_data.hpp"

namespace lpt {
namespace {

using problems::MinDisk;
using workloads::DiskDataset;

using Result = core::HypercubeClarksonResult<MinDisk>;

void expect_identical(const Result& serial, const Result& par,
                      std::size_t threads) {
  EXPECT_EQ(serial.solution.basis, par.solution.basis) << threads;
  EXPECT_EQ(serial.solution.disk, par.solution.disk) << threads;
  EXPECT_EQ(serial.iterations, par.iterations) << threads;
  EXPECT_EQ(serial.rounds, par.rounds) << threads;
  EXPECT_EQ(serial.converged, par.converged) << threads;
}

std::vector<std::size_t> thread_sweep() {
  const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  return {2, 4, hw};
}

TEST(HypercubeParallel, ClarksonBitIdenticalAcrossParallelNodes) {
  MinDisk p;
  const std::size_t n = 512;
  const auto pts = testsupport::golden_disk_points(DiskDataset::kTripleDisk,
                                                   n);
  const auto oracle = p.solve(pts);

  core::HypercubeClarksonConfig serial_cfg;
  serial_cfg.seed = 21;
  const auto serial = core::run_hypercube_clarkson(p, pts, n, serial_cfg);
  ASSERT_TRUE(serial.converged);
  EXPECT_TRUE(p.same_value(serial.solution, oracle));
  // Four collectives of ceil(log2 n) rounds per iteration, exactly.
  EXPECT_EQ(serial.rounds, serial.iterations * 4 * util::ceil_log2(n));

  for (const std::size_t threads : thread_sweep()) {
    core::HypercubeClarksonConfig cfg = serial_cfg;
    cfg.parallel_nodes = threads;
    expect_identical(serial, core::run_hypercube_clarkson(p, pts, n, cfg),
                     threads);
  }
}

TEST(HypercubeParallel, ClarksonBitIdenticalUnderFaults) {
  MinDisk p;
  const std::size_t n = 256;
  const auto pts = testsupport::golden_disk_points(DiskDataset::kHull, n);
  const auto oracle = p.solve(pts);

  core::HypercubeClarksonConfig serial_cfg;
  serial_cfg.seed = 34;
  serial_cfg.faults.push_loss = 0.25;
  serial_cfg.faults.sleep_probability = 0.15;
  const auto serial = core::run_hypercube_clarkson(p, pts, n, serial_cfg);
  ASSERT_TRUE(serial.converged);
  // Faults only shrink samples; they never corrupt the answer.
  EXPECT_TRUE(p.same_value(serial.solution, oracle));

  for (const std::size_t threads : thread_sweep()) {
    core::HypercubeClarksonConfig cfg = serial_cfg;
    cfg.parallel_nodes = threads;
    expect_identical(serial, core::run_hypercube_clarkson(p, pts, n, cfg),
                     threads);
  }
}

TEST(HypercubeParallel, EarlyTerminationIsBitIdenticalToo) {
  MinDisk p;
  const std::size_t n = 256;
  const auto pts =
      testsupport::golden_disk_points(DiskDataset::kTriangle, n);

  core::HypercubeClarksonConfig serial_cfg;
  serial_cfg.seed = 55;
  serial_cfg.max_iterations = 2;  // cap far below convergence
  const auto serial = core::run_hypercube_clarkson(p, pts, n, serial_cfg);
  EXPECT_FALSE(serial.converged);
  EXPECT_EQ(serial.iterations, 2u);

  for (const std::size_t threads : thread_sweep()) {
    core::HypercubeClarksonConfig cfg = serial_cfg;
    cfg.parallel_nodes = threads;
    expect_identical(serial, core::run_hypercube_clarkson(p, pts, n, cfg),
                     threads);
  }
}

TEST(HypercubeParallel, SeedPositionalFormMatchesConfigForm) {
  MinDisk p;
  const std::size_t n = 128;
  const auto pts = testsupport::golden_disk_points(DiskDataset::kDuoDisk, n);

  core::HypercubeClarksonConfig cfg;
  cfg.seed = 9;
  const auto via_cfg = core::run_hypercube_clarkson(p, pts, n, cfg);
  const auto via_seed =
      core::run_hypercube_clarkson(p, pts, n, std::uint64_t{9});
  expect_identical(via_cfg, via_seed, 1);
}

TEST(HypercubeParallel, SmallInputShortCircuitIsThreadCountInvariant) {
  MinDisk p;
  std::vector<geom::Vec2> pts{{0, 0}, {1, 0}, {0, 1}};
  core::HypercubeClarksonConfig serial_cfg;
  serial_cfg.seed = 3;
  const auto serial = core::run_hypercube_clarkson(p, pts, 16, serial_cfg);
  EXPECT_TRUE(serial.converged);
  EXPECT_EQ(serial.iterations, 0u);
  EXPECT_GT(serial.rounds, 0u);

  core::HypercubeClarksonConfig cfg = serial_cfg;
  cfg.parallel_nodes = 4;
  expect_identical(serial, core::run_hypercube_clarkson(p, pts, 16, cfg), 4);
}

}  // namespace
}  // namespace lpt
