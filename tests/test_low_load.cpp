// Integration and property tests for the Low-Load Clarkson engine
// (Algorithms 2 and 4, Theorem 3).
#include <gtest/gtest.h>

#include "core/low_load.hpp"
#include "problems/linear_program2d.hpp"
#include "problems/min_disk.hpp"
#include "problems/polytope_distance.hpp"
#include "support/test_support.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "workloads/disk_data.hpp"
#include "workloads/lp_data.hpp"

namespace lpt {
namespace {

using core::LowLoadConfig;
using core::run_low_load;
using problems::MinDisk;
using workloads::DiskDataset;

class LowLoadOnDatasets
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LowLoadOnDatasets, FindsOptimum) {
  const auto [dataset_idx, seed] = GetParam();
  const auto dataset = workloads::kAllDiskDatasets[dataset_idx];
  const std::size_t n = 256;
  const auto pts = testsupport::make_disk_points(dataset, n, seed);
  MinDisk p;
  LowLoadConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed) * 77 + 1;
  const auto res = run_low_load(p, pts, n, cfg);
  EXPECT_TRUE(res.stats.reached_optimum)
      << workloads::dataset_name(dataset);
  EXPECT_TRUE(p.same_value(res.solution, p.solve(pts)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LowLoadOnDatasets,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(1, 4)));

TEST(LowLoad, TinyInstancesFinishInOneRound) {
  // Figure 2 caption: test instances of size < 2^8 finish in one round.
  MinDisk p;
  util::Rng rng(3);
  for (std::size_t n : {2ul, 8ul, 32ul, 64ul}) {
    const auto pts =
        workloads::generate_disk_dataset(DiskDataset::kDuoDisk, n, rng);
    LowLoadConfig cfg;
    cfg.seed = 11 + n;
    const auto res = run_low_load(p, pts, n, cfg);
    ASSERT_TRUE(res.stats.reached_optimum) << n;
    EXPECT_EQ(res.stats.rounds_to_first, 1u) << n;
  }
}

TEST(LowLoad, RoundsScaleLogarithmically) {
  MinDisk p;
  const std::size_t n = 2048;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, n, 4);
  LowLoadConfig cfg;
  cfg.seed = 99;
  const auto res = run_low_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  // Paper Section 5: about 1.7 log2(n) rounds; allow a generous factor.
  EXPECT_LE(res.stats.rounds_to_first, 6 * util::ceil_log2(n));
}

TEST(LowLoad, LoadStaysLinearInH0) {
  // Lemma 9: |H(V)| = O(|H_0|) throughout the run.
  MinDisk p;
  const std::size_t n = 1024;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTriangle, n, 5);
  LowLoadConfig cfg;
  cfg.seed = 123;
  const auto res = run_low_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  // |H_0| <= n + |H| (pull-phase seeds); the lemma's constant is 5.
  EXPECT_LE(res.stats.max_total_elements, 6 * (n + pts.size()));
}

TEST(LowLoad, WorkPerRoundMatchesTheorem3) {
  MinDisk p;
  const std::size_t n = 1024;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, n, 6);
  LowLoadConfig cfg;
  cfg.seed = 7;
  const auto res = run_low_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  // Theorem 3: O(d^2 + log n) per round.  The sampler issues
  // c(6 d^2 + log n) pulls — the dominant term; allow constant 4.
  const std::size_t d = p.dimension();
  const std::size_t bound = 4 * (6 * d * d + util::ceil_log2(n) + 1) + 64;
  EXPECT_LE(res.stats.max_work_per_round, bound);
}

TEST(LowLoad, StrictSamplingStillSucceedsOnLargeInstances) {
  MinDisk p;
  const std::size_t n = 512;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, n, 7);
  LowLoadConfig cfg;
  cfg.seed = 31;
  cfg.strict_sampling = true;
  cfg.sampler_c = 3.0;
  const auto res = run_low_load(p, pts, n, cfg);
  EXPECT_TRUE(res.stats.reached_optimum);
  // Lemma 11: sampling succeeds w.h.p.; failures must be rare.
  EXPECT_LE(res.stats.sampling_failures,
            res.stats.sampling_attempts / 10 + 1);
}

TEST(LowLoad, IdealizedSamplingMatchesPullBased) {
  MinDisk p;
  const std::size_t n = 512;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kDuoDisk, n, 8);
  LowLoadConfig cfg;
  cfg.seed = 17;
  cfg.sampling = core::SamplingMode::kIdealized;
  const auto res = run_low_load(p, pts, n, cfg);
  EXPECT_TRUE(res.stats.reached_optimum);
}

TEST(LowLoad, FewerElementsThanNodesUsesPullPhase) {
  // Section 2.3: |H| < n — empty nodes pull a seed element first.
  MinDisk p;
  const std::size_t n = 512;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, 100, 9);
  LowLoadConfig cfg;
  cfg.seed = 13;
  const auto res = run_low_load(p, pts, n, cfg);
  EXPECT_TRUE(res.stats.reached_optimum);
  EXPECT_TRUE(p.same_value(res.solution, p.solve(pts)));
  // Seed copies enter H_0: the total grows beyond |H| but stays O(n log n).
  EXPECT_LE(res.stats.max_total_elements, 8 * n);
}

TEST(LowLoad, MoreElementsThanNodes) {
  // |H| = 4n (still O(n log n)): the lightly loaded regime's upper end.
  MinDisk p;
  const std::size_t n = 256;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTriangle, 4 * n, 10);
  LowLoadConfig cfg;
  cfg.seed = 19;
  const auto res = run_low_load(p, pts, n, cfg);
  EXPECT_TRUE(res.stats.reached_optimum);
}

TEST(LowLoad, WithTerminationAllNodesOutputCorrectly) {
  MinDisk p;
  const std::size_t n = 256;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, n, 11);
  LowLoadConfig cfg;
  cfg.seed = 23;
  cfg.run_termination = true;
  const auto res = run_low_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_TRUE(res.stats.all_outputs_correct);
  EXPECT_GT(res.stats.rounds_to_all_output, res.stats.rounds_to_first);
  // Lemma 12: the gap is O(log n) (maturity + spread).
  EXPECT_LE(res.stats.rounds_to_all_output,
            res.stats.rounds_to_first + 10 * (util::ceil_log2(n) + 2));
}

TEST(LowLoad, SingleNode) {
  MinDisk p;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kDuoDisk, 50, 12);
  LowLoadConfig cfg;
  cfg.seed = 29;
  const auto res = run_low_load(p, pts, 1, cfg);
  EXPECT_TRUE(res.stats.reached_optimum);
  EXPECT_EQ(res.stats.rounds_to_first, 1u);
}

TEST(LowLoad, WorksOnLpProblem) {
  util::Rng rng(13);
  const std::size_t n = 256;
  const auto inst = workloads::generate_lp_instance(n, rng);
  problems::LinearProgram2D p(inst.objective);
  LowLoadConfig cfg;
  cfg.seed = 37;
  const auto res = run_low_load(p, inst.constraints, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_NEAR(res.solution.value.objective, inst.optimal_value, 1e-6);
}

TEST(LowLoad, WorksOnPolytopeDistance) {
  util::Rng rng(14);
  problems::PolytopeDistance p;
  const std::size_t n = 256;
  std::vector<geom::Vec2> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(1.0, 6.0), rng.uniform(-4.0, 4.0)});
  }
  LowLoadConfig cfg;
  cfg.seed = 41;
  const auto res = run_low_load(p, pts, n, cfg);
  ASSERT_TRUE(res.stats.reached_optimum);
  EXPECT_TRUE(p.same_value(res.solution, p.solve(pts)));
}

TEST(LowLoad, DeterministicGivenSeed) {
  MinDisk p;
  const std::size_t n = 128;
  const auto pts =
      testsupport::make_disk_points(DiskDataset::kTripleDisk, n, 15);
  LowLoadConfig cfg;
  cfg.seed = 43;
  const auto a = run_low_load(p, pts, n, cfg);
  const auto b = run_low_load(p, pts, n, cfg);
  EXPECT_EQ(a.stats.rounds_to_first, b.stats.rounds_to_first);
  EXPECT_EQ(a.stats.total_push_ops, b.stats.total_push_ops);
  EXPECT_EQ(a.stats.total_pull_ops, b.stats.total_pull_ops);
}

}  // namespace
}  // namespace lpt
