// Property tests: every problem adapter satisfies the LP-type axioms
// (monotonicity, locality, basis contract) on random instances, solves are
// canonical, and the hitting-set / set-cover substrate behaves.
#include <gtest/gtest.h>

#include <cmath>

#include "core/lp_type.hpp"
#include "problems/hitting_set_problem.hpp"
#include "problems/linear_program2d.hpp"
#include "problems/min_ball.hpp"
#include "problems/min_disk.hpp"
#include "problems/polytope_distance.hpp"
#include "problems/set_cover.hpp"
#include "util/rng.hpp"
#include "workloads/hs_data.hpp"
#include "workloads/lp_data.hpp"

namespace lpt {
namespace {

static_assert(core::LpTypeProblem<problems::MinDisk>);
static_assert(core::LpTypeProblem<problems::MinBall<3>>);
static_assert(core::LpTypeProblem<problems::LinearProgram2D>);
static_assert(core::LpTypeProblem<problems::PolytopeDistance>);

class MinDiskAxioms : public ::testing::TestWithParam<int> {};

TEST_P(MinDiskAxioms, HoldOnRandomInstances) {
  util::Rng rng(GetParam());
  problems::MinDisk p;
  std::vector<geom::Vec2> ground;
  const std::size_t n = 4 + rng.below(10);
  for (std::size_t i = 0; i < n; ++i) {
    ground.push_back({rng.uniform(-4, 4), rng.uniform(-4, 4)});
  }
  const auto rep = core::check_axioms(p, ground, 40, rng);
  EXPECT_EQ(rep.monotonicity_failures, 0u);
  EXPECT_EQ(rep.locality_failures, 0u);
  EXPECT_EQ(rep.basis_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinDiskAxioms, ::testing::Range(1, 21));

class PolytopeDistanceAxioms : public ::testing::TestWithParam<int> {};

TEST_P(PolytopeDistanceAxioms, HoldOnRandomInstances) {
  util::Rng rng(100 + GetParam());
  problems::PolytopeDistance p;
  std::vector<geom::Vec2> ground;
  const std::size_t n = 4 + rng.below(10);
  for (std::size_t i = 0; i < n; ++i) {
    // Mix of configurations: sometimes the origin ends up inside.
    ground.push_back({rng.uniform(-1, 5), rng.uniform(-3, 3)});
  }
  const auto rep = core::check_axioms(p, ground, 40, rng);
  EXPECT_EQ(rep.monotonicity_failures, 0u);
  EXPECT_EQ(rep.locality_failures, 0u);
  EXPECT_EQ(rep.basis_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolytopeDistanceAxioms,
                         ::testing::Range(1, 21));

class Lp2dAxioms : public ::testing::TestWithParam<int> {};

TEST_P(Lp2dAxioms, HoldOnRandomFeasibleInstances) {
  util::Rng rng(200 + GetParam());
  const auto inst = workloads::generate_lp_instance(10, rng);
  problems::LinearProgram2D p(inst.objective);
  const auto rep = core::check_axioms(p, inst.constraints, 40, rng);
  EXPECT_EQ(rep.monotonicity_failures, 0u);
  EXPECT_EQ(rep.locality_failures, 0u);
  EXPECT_EQ(rep.basis_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lp2dAxioms, ::testing::Range(1, 21));

class MinBallAxioms : public ::testing::TestWithParam<int> {};

TEST_P(MinBallAxioms, HoldOnRandom3DInstances) {
  util::Rng rng(300 + GetParam());
  problems::MinBall<3> p;
  std::vector<geom::VecD<3>> ground(5 + rng.below(6));
  for (auto& g : ground) {
    for (int k = 0; k < 3; ++k) g[k] = rng.uniform(-3, 3);
  }
  const auto rep = core::check_axioms(p, ground, 25, rng);
  EXPECT_EQ(rep.monotonicity_failures, 0u);
  EXPECT_EQ(rep.locality_failures, 0u);
  EXPECT_EQ(rep.basis_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinBallAxioms, ::testing::Range(1, 11));

TEST(MinDisk, SolveIsCanonical) {
  problems::MinDisk p;
  util::Rng rng(5);
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.uniform(-2, 2), rng.uniform(-2, 2)});
  }
  const auto a = p.solve(pts);
  // Same multiset, different order -> identical Solution.
  rng.shuffle(pts);
  const auto b = p.solve(pts);
  EXPECT_EQ(a.basis, b.basis);
  EXPECT_EQ(a.disk, b.disk);
  // from_basis on the basis reproduces the same Solution bit-for-bit.
  const auto c = p.from_basis(a.basis);
  EXPECT_EQ(a.disk, c.disk);
  EXPECT_EQ(a.basis, c.basis);
}

TEST(MinDisk, EmptySolveViolatedByEverything) {
  problems::MinDisk p;
  const auto sol = p.solve({});
  EXPECT_TRUE(sol.disk.empty());
  EXPECT_TRUE(p.violates(sol, {0, 0}));
}

TEST(MinDisk, FromBasisDropsInteriorPoint) {
  problems::MinDisk p;
  // Two diametral points plus an interior one: the basis is the pair.
  std::vector<geom::Vec2> b{{-1, 0}, {1, 0}, {0.1, 0.1}};
  const auto sol = p.from_basis(b);
  EXPECT_EQ(sol.basis.size(), 2u);
  EXPECT_NEAR(sol.disk.radius, 1.0, 1e-9);
}

TEST(MinDisk, SolutionOrderBreaksTiesDeterministically) {
  problems::MinDisk p;
  const auto a = p.from_basis(std::vector<geom::Vec2>{{-1, 0}, {1, 0}});
  const auto b = p.from_basis(std::vector<geom::Vec2>{{-1, 1}, {1, 1}});
  // Same radius, different bases: order must be deterministic and strict.
  EXPECT_TRUE(p.same_value(a, b));
  const int ab = core::solution_order(p, a, b);
  const int ba = core::solution_order(p, b, a);
  EXPECT_NE(ab, 0);
  EXPECT_EQ(ab, -ba);
}

TEST(PolytopeDistance, OriginInsideHullGivesZeroAndTriangleWitness) {
  problems::PolytopeDistance p;
  std::vector<geom::Vec2> pts{{-1, -1}, {1, -1}, {0, 2}, {3, 3}};
  const auto sol = p.solve(pts);
  EXPECT_DOUBLE_EQ(sol.distance, 0.0);
  EXPECT_EQ(sol.basis.size(), 3u);
  // Nothing violates a zero-distance solution.
  EXPECT_FALSE(p.violates(sol, {5, 5}));
  EXPECT_FALSE(p.violates(sol, {-5, -5}));
}

TEST(PolytopeDistance, ValueIncreasesWhenPointRemoved) {
  problems::PolytopeDistance p;
  std::vector<geom::Vec2> far{{3, 0}, {4, 1}};
  std::vector<geom::Vec2> near{{3, 0}, {4, 1}, {1, 0}};
  const auto sf = p.solve(far);
  const auto sn = p.solve(near);
  // f = -distance: more points -> smaller distance -> larger f.
  EXPECT_TRUE(p.value_less(sf, sn));
  EXPECT_NEAR(sn.distance, 1.0, 1e-9);
}

TEST(Lp2d, SolveMatchesPlantedOptimum) {
  util::Rng rng(77);
  const auto inst = workloads::generate_lp_instance(30, rng);
  problems::LinearProgram2D p(inst.objective);
  const auto sol = p.solve(inst.constraints);
  EXPECT_FALSE(sol.value.infeasible);
  EXPECT_NEAR(sol.value.objective, inst.optimal_value, 1e-6);
  EXPECT_LE(sol.basis.size(), 2u);
}

TEST(Lp2d, FromBasisCanonical) {
  util::Rng rng(78);
  const auto inst = workloads::generate_lp_instance(30, rng);
  problems::LinearProgram2D p(inst.objective);
  const auto sol = p.solve(inst.constraints);
  const auto back = p.from_basis(sol.basis);
  EXPECT_TRUE(p.same_value(sol, back));
  EXPECT_EQ(sol.basis, back.basis);
}

// --- Set systems -----------------------------------------------------------

problems::SetSystem small_system() {
  // X = {0..5}; sets: {0,1}, {1,2}, {3}, {4,5}.
  return problems::SetSystem(
      6, {{0, 1}, {1, 2}, {3}, {4, 5}});
}

TEST(SetSystem, InvertedIndexAndFrequency) {
  const auto sys = small_system();
  EXPECT_EQ(sys.set_count(), 4u);
  EXPECT_EQ(sys.universe_size(), 6u);
  ASSERT_EQ(sys.sets_containing(1).size(), 2u);
  EXPECT_EQ(sys.max_frequency(), 2u);
}

TEST(HittingSet, ValueCountsHitSets) {
  auto sys = std::make_shared<problems::SetSystem>(small_system());
  problems::HittingSetProblem p(sys);
  std::vector<std::uint32_t> u{1};
  EXPECT_EQ(p.value_of(u), 2u);  // hits {0,1} and {1,2}
  u = {1, 3, 4};
  EXPECT_EQ(p.value_of(u), 4u);
  EXPECT_TRUE(p.is_hitting_set(u));
  EXPECT_FALSE(p.is_hitting_set(std::vector<std::uint32_t>{0}));
}

TEST(HittingSet, UnhitSets) {
  auto sys = std::make_shared<problems::SetSystem>(small_system());
  problems::HittingSetProblem p(sys);
  std::vector<std::uint32_t> u{0};
  const auto unhit = p.unhit_sets(u);
  EXPECT_EQ(unhit, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(HittingSet, GreedyIsValid) {
  auto sys = std::make_shared<problems::SetSystem>(small_system());
  problems::HittingSetProblem p(sys);
  const auto g = p.greedy_hitting_set();
  EXPECT_TRUE(p.is_hitting_set(g));
  EXPECT_LE(g.size(), 4u);
}

TEST(HittingSet, ExactMinimumOnSmallInstance) {
  auto sys = std::make_shared<problems::SetSystem>(small_system());
  problems::HittingSetProblem p(sys);
  const auto e = p.exact_minimum_hitting_set(6);
  EXPECT_TRUE(p.is_hitting_set(e));
  EXPECT_EQ(e.size(), 3u);  // {1, 3, 4-or-5}
}

TEST(HittingSet, ExactRespectsCap) {
  auto sys = std::make_shared<problems::SetSystem>(small_system());
  problems::HittingSetProblem p(sys);
  EXPECT_TRUE(p.exact_minimum_hitting_set(1).empty());
}

class PlantedHsProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlantedHsProperty, PlantedSetIsMinimum) {
  util::Rng rng(GetParam());
  const std::size_t d = 1 + rng.below(3);
  const auto inst =
      workloads::generate_planted_hitting_set(60, 20, d, 4, rng);
  problems::HittingSetProblem p(inst.system);
  EXPECT_TRUE(p.is_hitting_set(inst.planted));
  EXPECT_EQ(inst.planted.size(), d);
  const auto exact = p.exact_minimum_hitting_set(d);
  EXPECT_EQ(exact.size(), d);  // cannot do better than d
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlantedHsProperty, ::testing::Range(1, 11));

TEST(SetCover, DualTransformRoundTrip) {
  // Primal: X = {0,1,2}; S0={0,1}, S1={1,2}, S2={2}.
  auto primal = problems::SetSystem(3, {{0, 1}, {1, 2}, {2}});
  const auto dual = problems::dual_of_set_cover(primal);
  // Dual universe = set indices {0,1,2}; M_0={0}, M_1={0,1}, M_2={1,2}.
  EXPECT_EQ(dual->universe_size(), 3u);
  EXPECT_EQ(dual->set_count(), 3u);
  EXPECT_EQ(dual->set(0), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(dual->set(1), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(dual->set(2), (std::vector<std::uint32_t>{1, 2}));
  // A hitting set of the dual is a set cover of the primal.
  problems::HittingSetProblem hs(dual);
  const auto h = hs.greedy_hitting_set();
  EXPECT_TRUE(problems::is_set_cover(primal, h));
}

TEST(SetCover, GreedyCoversEverything) {
  util::Rng rng(9);
  const auto inst = workloads::generate_planted_set_cover(50, 12, 3, rng);
  const auto cover = problems::greedy_set_cover(*inst.instance);
  EXPECT_TRUE(problems::is_set_cover(*inst.instance, cover));
  EXPECT_TRUE(problems::is_set_cover(*inst.instance, inst.planted_cover));
  EXPECT_GE(cover.size(), inst.planted_cover.size());
}

TEST(SetCover, PlantedCoverIsMinimum) {
  util::Rng rng(10);
  const auto inst = workloads::generate_planted_set_cover(40, 10, 4, rng);
  // Via duality: the minimum hitting set of the dual has size exactly 4.
  const auto dual = problems::dual_of_set_cover(*inst.instance);
  problems::HittingSetProblem hs(dual);
  const auto exact = hs.exact_minimum_hitting_set(4);
  EXPECT_EQ(exact.size(), 4u);
}

}  // namespace
}  // namespace lpt
