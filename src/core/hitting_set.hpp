// The distributed Hitting Set Algorithm (paper Section 4, Algorithm 6) —
// also the set-cover solver via the duality of Section 1.4.
//
// (X, S) with |X| = n elements, |S| = s sets, minimum hitting set size d.
// Every node knows S (part of the problem description); the *elements* of X
// are randomly distributed and gossiped.  Per round each node:
//
//   1. samples a multiset R_i of size r >= 6 d ln(12 d s) from X(V)
//      (Section 2.1 sampler),
//   2. if R_i hits everything, R_i is the answer (size O(d log(ds))),
//   3. otherwise picks a *random* unhit set S, and pushes W_i = S \ X(v_i)
//      — capped at c d log n elements — to random nodes (this doubles the
//      multiplicity of elements of sparse unhit sets, Lemma 18),
//   4. filters non-original copies with probability 1/(1 + 1/(2d)).
//
// Theorem 5: a hitting set of size O(d log(ds)) in O(d log n) rounds with
// work O(d log(ds) + log n) per round, w.h.p.
//
// Simulator cost per round follows the same large-n contract as
// run_low_load: slab-backed element storage (O(1) |X(V)|, O(copy-holders)
// filter pass), receiver-list delivery walks, and a chunk-collected
// stage-B replay that only visits winners and W_i pushers — all
// bit-identical to a serial full scan for any parallel_nodes value.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/result.hpp"
#include "core/sampling.hpp"
#include "gossip/mailbox.hpp"
#include "gossip/network.hpp"
#include "obs/obs.hpp"
#include "problems/hitting_set_problem.hpp"
#include "shard/runtime.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/thread_pool.hpp"

namespace lpt::core {

/// Configuration for run_hitting_set.  Every field participates in the
/// determinism contract except parallel_nodes, which is guaranteed not to
/// (bit-identical results for any value).
struct HittingSetConfig {
  std::uint64_t seed = 1;
  std::size_t hitting_set_size = 0;  // the paper's d; 0 = start doubling at 1
  std::size_t sample_size = 0;       // r; 0 = ceil(6 d ln(12 d s))
  double sampler_c = 2.0;
  double push_cap_c = 4.0;  // the c of "|W_i| <= c d log n"
  bool strict_sampling = false;
  bool filtering = true;
  std::size_t max_rounds = 0;  // 0: auto cap (per doubling stage)
  gossip::FaultModel faults;   // message loss / sleeping nodes
  std::size_t parallel_nodes = 0;  // >1: the per-node compute phase (sample
                                   // selection, hit marking, W_i assembly)
                                   // runs on this many threads.  Results
                                   // are bit-identical to the serial run:
                                   // the phase consumes only the per-node
                                   // RNG streams, and all shared-RNG
                                   // traffic (mailbox pushes) is replayed
                                   // serially in node order — the same
                                   // stage-A/stage-B split as low/high
                                   // load.  One pool level only: combining
                                   // with a bench --threads sweep
                                   // oversubscribes.
  shard::ShardConfig shard;  // shards >= 1: stage A runs on shard workers
                             // (threads or fork()ed processes) over
                             // contiguous node ranges with the stage-B
                             // replay applied after the deterministic
                             // shard-order merge — bit-identical to the
                             // serial and parallel_nodes paths for every
                             // shard count and transport.  Takes precedence
                             // over parallel_nodes.
};

struct HittingSetRunResult {
  std::vector<std::uint32_t> hitting_set;  // the winning R_i
  bool valid = false;                      // hits every set (always checked)
  std::size_t d_used = 0;                  // final d of the doubling search
  std::size_t sample_size = 0;             // final r
  DistributedRunStats stats;
};

/// The paper's prescription for r given d and s.
inline std::size_t hitting_set_sample_size(std::size_t d, std::size_t s) {
  const double dd = static_cast<double>(d);
  const double ss = static_cast<double>(s);
  return static_cast<std::size_t>(std::ceil(6.0 * dd * std::log(12.0 * dd * ss)));
}

namespace detail {

/// Per-worker scratch for one hitting-set stage-A node evaluation
/// (thread_local in the in-process path, closure-owned on shard workers).
struct HsStageAScratch {
  SampleOutcome<std::uint32_t> outcome;
  std::vector<std::uint8_t> hit;
  std::vector<std::uint32_t> unhit;
};

enum class HsNodeOutcome : std::uint8_t {
  kFailed,  // sample came up short (strict mode) or empty
  kWinner,  // R_i hits every set: `sample` holds the answer
  kPusher,  // `wi` holds W_i = S \ X(v_i) for a random unhit S (may be
            // empty or over the push cap; the caller applies the cap)
};

/// One node's stage A (sample selection, hit marking, W_i assembly) from
/// explicit inputs — the single definition executed by both the in-process
/// chunk loop and the shard workers.  Consumes `rng` exactly as a serial
/// full scan would.
inline HsNodeOutcome hitting_set_node_stage_a(
    const problems::HittingSetProblem& problem,
    std::span<std::uint32_t> responses, std::size_t r, bool strict,
    std::span<const std::uint32_t> local, util::Rng& rng, HsStageAScratch& scr,
    std::vector<std::uint32_t>& sample, std::vector<std::uint32_t>& wi) {
  const auto& sys = problem.system();
  const std::size_t s = sys.set_count();
  select_distinct_into(responses, r, rng, strict, scr.outcome);
  if (!scr.outcome.success) return HsNodeOutcome::kFailed;
  // S_i: sets not hit by R_i.
  problem.mark_hit(scr.outcome.sample, scr.hit);
  scr.unhit.clear();
  for (std::uint32_t j = 0; j < s; ++j) {
    if (!scr.hit[j]) scr.unhit.push_back(j);
  }
  if (scr.unhit.empty()) {
    // R_i is a hitting set: the algorithm's answer (line 13).
    sample = std::move(scr.outcome.sample);
    return HsNodeOutcome::kWinner;
  }
  // Random unhit set; W_i = S \ X(v_i) (lines 6-9; cap applied by caller).
  const auto& chosen = sys.set(scr.unhit[rng.below(scr.unhit.size())]);
  wi.clear();
  for (auto x : chosen) {
    bool have = false;
    for (auto own : local) {
      if (own == x) {
        have = true;
        break;
      }
    }
    if (!have) wi.push_back(x);
  }
  return HsNodeOutcome::kPusher;
}

/// Build the stage-A serve handler every hitting-set shard worker runs.
/// Captures the problem by value: the set system is part of the problem
/// description every node knows (Section 4), so it ships once at spawn
/// (fork inheritance / closure copy), never per round.
///
/// Task payload (after the MsgType byte):
///   u32 r · u64 push_cap · u32 begin · u32 end · per node:
///     u8 flags; if kActive: rng state, responses seq, local-elements seq.
/// Result payload:
///   per node: u8 flags; if kActive: rng state (advanced); if kWinner:
///   winning-sample seq; else if kReplay: capped W_i seq — then
///   u32 attempts, u32 failures.
inline auto make_hitting_set_serve(problems::HittingSetProblem problem,
                                   bool strict) {
  using Element = std::uint32_t;
  return [problem = std::move(problem), strict, rng = util::Rng{},
          scr = HsStageAScratch{}, responses = std::vector<Element>{},
          local = std::vector<Element>{}, sample = std::vector<Element>{},
          wi = std::vector<Element>{}](gossip::Decoder& d,
                                       gossip::Encoder& e) mutable {
    const std::uint32_t r = d.get_u32();
    const std::uint64_t push_cap = d.get_u64();
    const gossip::NodeId begin = d.get_u32();
    const gossip::NodeId end = d.get_u32();
    shard::put_msg_type(e, shard::MsgType::kStageAResult);
    std::uint32_t attempts = 0;
    std::uint32_t failures = 0;
    for (gossip::NodeId v = begin; v < end; ++v) {
      if (!(d.get_u8() & shard::nodeflag::kActive)) {
        e.put_u8(0);
        continue;
      }
      shard::get_rng(d, rng);
      shard::get_seq(d, responses);
      shard::get_seq(d, local);
      ++attempts;
      const HsNodeOutcome out = hitting_set_node_stage_a(
          problem, std::span<Element>(responses), r, strict,
          std::span<const Element>(local), rng, scr, sample, wi);
      std::uint8_t flags = shard::nodeflag::kActive;
      if (out == HsNodeOutcome::kFailed) {
        ++failures;
      } else if (out == HsNodeOutcome::kWinner) {
        flags |= shard::nodeflag::kWinner | shard::nodeflag::kReplay;
      } else if (!wi.empty() && wi.size() <= push_cap) {
        flags |= shard::nodeflag::kReplay;
      }
      e.put_u8(flags);
      shard::put_rng(e, rng);
      if (flags & shard::nodeflag::kWinner) {
        shard::put_seq(e, std::span<const Element>(sample));
      } else if (flags & shard::nodeflag::kReplay) {
        shard::put_seq(e, std::span<const Element>(wi));
      }
    }
    e.put_u32(attempts);
    e.put_u32(failures);
  };
}

}  // namespace detail

/// Run Algorithm 6 over `n_nodes` gossip nodes.  If cfg.hitting_set_size is
/// zero the engine performs the doubling search on d the paper sketches in
/// Section 1.4 ("binary search on d, stopping the algorithm if it takes too
/// long"): each stage runs O(d log n) rounds and on failure d doubles.
inline HittingSetRunResult run_hitting_set(
    const problems::HittingSetProblem& problem, std::size_t n_nodes,
    const HittingSetConfig& cfg = {}) {
  using Element = std::uint32_t;
  const auto& sys = problem.system();
  const std::size_t n = n_nodes;
  const std::size_t x_size = sys.universe_size();
  const std::size_t s = sys.set_count();
  LPT_CHECK(n >= 1 && x_size >= 1 && s >= 1);

  HittingSetRunResult res;
  util::Rng master(cfg.seed);
  gossip::Network net(n, master.child(0), cfg.faults);
  util::Rng dist_rng = master.child(1);
  std::vector<util::Rng> node_rng;
  node_rng.reserve(n);
  for (std::size_t v = 0; v < n; ++v) node_rng.push_back(master.child(2 + v));

  // Initial placement of X over the nodes (slab-backed store: O(1) global
  // totals, O(copy-holders) filter pass).
  gossip::NodeStore<Element> store(n);
  for (std::uint32_t x = 0; x < x_size; ++x) {
    store.add_original(static_cast<gossip::NodeId>(dist_rng.below(n)), x);
  }
  res.stats.initial_total_elements = store.total_elements();
  res.stats.max_total_elements = res.stats.initial_total_elements;

  gossip::Mailbox<Element> copies_mail(net);
  gossip::PullChannel<Element> sample_chan(net);
  const std::size_t log_n = util::ceil_log2(n) + 1;

  std::size_t d = cfg.hitting_set_size ? cfg.hitting_set_size : 1;
  bool done = false;
  std::size_t global_round = 0;

  // Per-node round results for the compute stage (stage A), persistent
  // across rounds so the steady state allocates nothing.  Only what stage
  // B consumes lives here — the sampler/hit-marking scratch is per worker
  // thread (thread_local in the stage-A body), keeping the footprint
  // O(n + s) per thread instead of O(n * s).
  struct NodeRound {
    std::uint8_t winner = 0;      // R_i hits every set (sample is it)
    std::vector<Element> sample;  // the winning R_i (filled only on win)
    std::vector<Element> wi;
  };
  std::vector<NodeRound> scratch(n);

  // Shard runtime (shard/runtime.hpp): stage A on shard workers over
  // contiguous node ranges, stage B applied in shard order — bit-identical
  // to the serial and parallel_nodes paths.  Workers spawn (PipeTransport:
  // fork) before any thread pool exists.
  const bool sharded = cfg.shard.enabled();
  std::optional<shard::ShardHarness> harness;
  if (sharded) {
    // All transports (socket included) use the fork-inheriting closure
    // path here: a HittingSetProblem owns the whole SetSystem, so a
    // bootstrap-over-wire worker would need a set-system codec — a
    // documented limitation until one exists (socket workers are still
    // fork()ed locally, so inheritance holds on one box).
    harness.emplace(
        n, cfg.shard,
        detail::make_hitting_set_serve(problem, cfg.strict_sampling));
  }

  std::optional<util::ThreadPool> pool;
  if (!sharded && cfg.parallel_nodes > 1) pool.emplace(cfg.parallel_nodes);

  // Stage-A chunk accumulators (see run_low_load): candidates for stage-B
  // replay in ascending node order plus sampler counters, bit-identical
  // for any thread count.  In the sharded run the chunks are the shards
  // themselves.
  struct ChunkAcc {
    std::vector<gossip::NodeId> replay;
    std::uint32_t attempts = 0;
    std::uint32_t failures = 0;
  };
  const std::size_t chunk =
      pool ? std::max<std::size_t>(64, n / (cfg.parallel_nodes * 8)) : n;
  std::vector<ChunkAcc> chunks(sharded ? harness->frame_count()
                                       : util::chunk_count(n, chunk));

  while (!done) {
    const std::size_t r = cfg.sample_size
                              ? cfg.sample_size
                              : hitting_set_sample_size(d, s);
    SamplerConfig sampler;
    sampler.target = r;
    sampler.c = cfg.sampler_c;
    sampler.log_n = log_n;
    sampler.strict = cfg.strict_sampling;
    const std::size_t pulls = sampler.pulls_per_node();
    const double keep_p =
        1.0 / (1.0 + 1.0 / (2.0 * static_cast<double>(d)));
    const auto push_cap = static_cast<std::size_t>(
        cfg.push_cap_c * static_cast<double>(d) *
        static_cast<double>(log_n)) + 1;
    const std::size_t stage_rounds =
        cfg.max_rounds ? cfg.max_rounds
                       : 40 * d * (util::ceil_log2(n) + 2) + 40;
    // Round-bound hint for this doubling stage: keeps the meter's
    // per-round push_back realloc-free (reserve is monotone, so later
    // stages only ever grow it).
    net.meter().reserve_rounds(global_round + stage_rounds + 1);

    for (std::size_t t = 1; t <= stage_rounds && !done; ++t) {
      ++global_round;
      net.begin_round();
      obs::trace_tick();  // rounds are the engine's sampling unit
      obs::TraceSpan round_span("hitting_set.round", global_round);
      std::size_t bookkeeping = 0;

      // Sampling (Section 2.1), as fused bulk pulls.
      sample_chan.begin_pulls();
      auto answer = [&](gossip::NodeId target, std::vector<Element>& sink) {
        const std::size_t sz = store.size(target);
        if (sz != 0) {
          sink.push_back(store.elem(target, net.rng().below(sz)));
        }
      };
      for (gossip::NodeId v = 0; v < n; ++v) {
        if (net.asleep(v)) continue;
        sample_chan.pull_uniform_direct(v, pulls, answer);
      }

      // --- Per-node compute (stage A): sample selection, hit marking, and
      // W_i assembly.  Touches only node-local state and node_rng[v], so it
      // fans out across threads when cfg.parallel_nodes asks for it; every
      // shared-RNG side effect (the W_i mailbox pushes) is collected per
      // chunk and replayed in stage B in ascending node order, making
      // parallel runs bit-identical to serial ones.
      auto stage_a = [&](std::size_t k, std::size_t begin, std::size_t end) {
        thread_local detail::HsStageAScratch scr;
        ChunkAcc& ch = chunks[k];
        ch.replay.clear();
        ch.attempts = 0;
        ch.failures = 0;
        for (std::size_t vi = begin; vi < end; ++vi) {
          const auto v = static_cast<gossip::NodeId>(vi);
          NodeRound& sc = scratch[v];
          sc.winner = 0;
          if (net.asleep(v)) continue;
          ++ch.attempts;
          const detail::HsNodeOutcome out = detail::hitting_set_node_stage_a(
              problem, sample_chan.mutable_responses(v), r, sampler.strict,
              store.view(v), node_rng[v], scr, sc.sample, sc.wi);
          if (out == detail::HsNodeOutcome::kFailed) {
            ++ch.failures;
            continue;
          }
          if (out == detail::HsNodeOutcome::kWinner) {
            sc.winner = 1;
            ch.replay.push_back(v);
            continue;
          }
          if (!sc.wi.empty() && sc.wi.size() <= push_cap) {
            ch.replay.push_back(v);
          }
        }
      };
      if (sharded) {
        // Ship each shard its stage-A inputs in bounded sub-frames;
        // frame-indexed ChunkAccs walked in order by stage B recover the
        // ascending node order (the deterministic-merge contract).
        harness->round(
            [&](shard::ShardRange rg, gossip::Encoder& e) {
              e.put_u32(static_cast<std::uint32_t>(r));
              e.put_u64(static_cast<std::uint64_t>(push_cap));
              e.put_u32(rg.begin);
              e.put_u32(rg.end);
              for (gossip::NodeId v = rg.begin; v < rg.end; ++v) {
                const bool active = !net.asleep(v);
                e.put_u8(active ? shard::nodeflag::kActive : std::uint8_t{0});
                if (!active) continue;
                shard::put_rng(e, node_rng[v]);
                shard::put_seq(e, sample_chan.responses(v));
                shard::put_seq(e, store.view(v));
              }
            },
            [&](std::size_t frame, shard::ShardRange rg,
                gossip::Decoder& dec) {
              ChunkAcc& ch = chunks[frame];
              ch.replay.clear();
              for (gossip::NodeId v = rg.begin; v < rg.end; ++v) {
                const std::uint8_t flags = dec.get_u8();
                NodeRound& sc = scratch[v];
                sc.winner = 0;
                if (flags & shard::nodeflag::kActive) {
                  shard::get_rng(dec, node_rng[v]);
                }
                if (flags & shard::nodeflag::kWinner) {
                  sc.winner = 1;
                  shard::get_seq(dec, sc.sample);
                  ch.replay.push_back(v);
                } else if (flags & shard::nodeflag::kReplay) {
                  shard::get_seq(dec, sc.wi);
                  ch.replay.push_back(v);
                }
              }
              ch.attempts = dec.get_u32();
              ch.failures = dec.get_u32();
            });
      } else {
        util::parallel_chunks(pool ? &*pool : nullptr, n, chunk, stage_a);
      }

      // --- Shared-state replay (stage B): only winners and within-cap W_i
      // pushers, in ascending node order. ---
      for (const ChunkAcc& ch : chunks) {
        res.stats.sampling_attempts += ch.attempts;
        res.stats.sampling_failures += ch.failures;
        for (const gossip::NodeId v : ch.replay) {
          ++bookkeeping;
          NodeRound& sc = scratch[v];
          if (sc.winner) {
            if (!done) {
              done = true;
              res.hitting_set = std::move(sc.sample);
              res.stats.rounds_to_first = global_round;
              res.stats.reached_optimum = true;
              res.d_used = d;
              res.sample_size = r;
            }
            continue;
          }
          for (auto x : sc.wi) copies_mail.push(v, x);
        }
      }

      copies_mail.deliver();
      for (const gossip::NodeId v : copies_mail.receivers()) {
        ++bookkeeping;
        for (const auto& x : copies_mail.inbox(v)) store.add_copy(v, x);
      }
      if (cfg.filtering) {
        bookkeeping += store.filter_copies(
            keep_p,
            [&](gossip::NodeId v) -> util::Rng& { return node_rng[v]; });
      }
      const std::size_t m = store.total_elements();
      if (m > res.stats.max_total_elements) res.stats.max_total_elements = m;
      res.stats.bookkeeping_touches_total += bookkeeping;
      res.stats.last_round_bookkeeping_touches = bookkeeping;
    }

    if (!done) {
      if (cfg.hitting_set_size || d >= x_size) break;  // give up
      d *= 2;  // doubling search on the unknown minimum hitting set size
    }
  }

  res.valid = !res.hitting_set.empty() &&
              problem.is_hitting_set(res.hitting_set);
  if (sharded && cfg.shard.recovery_out != nullptr) {
    *cfg.shard.recovery_out = harness->recovery_stats();
  }
  net.meter().finish();
  res.stats.max_work_per_round = net.meter().max_work_per_round();
  res.stats.total_push_ops = net.meter().total_push_ops();
  res.stats.total_pull_ops = net.meter().total_pull_ops();
  res.stats.total_bytes = net.meter().total_bytes();
  res.stats.final_total_elements = store.total_elements();
  obs::counter("engine.hitting_set.runs").add(1);
  obs::counter("engine.hitting_set.rounds").add(res.stats.rounds_to_first);
  return res;
}

}  // namespace lpt::core
