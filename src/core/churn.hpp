// Churn: nodes leaving and (re)joining mid-run (ROADMAP "scenario
// diversity").  A ChurnSchedule is a deterministic, pre-compiled list of
// leave/join events keyed by round number; the engines apply the events due
// at the start of each round, *after* Network::begin_round().
//
// Semantics (chosen so the paper's correctness invariants survive):
//   * leave — the node hands its whole store off to uniformly random
//     *present* nodes (originals stay originals, copies stay copies), then
//     its store is cleared.  No element is ever destroyed: the input
//     multiset H_0(V) is preserved across any schedule.  A departed node
//     answers no pulls (its store is empty) and deliveries addressed to it
//     are dropped — safe, because pushers always retain their own copies.
//   * join — the node enters the Section 2.3 pull phase: it starts empty
//     and pulls until it sees a seed, exactly like a node whose initial
//     placement left it empty.
//
// Handoff draws come from the network's shared RNG stream, replayed in
// stage B order, so churn runs stay deterministic for any thread or shard
// count — though (by design) they perturb the RNG stream relative to a
// churn-free run, which is why the stress harness pins invariants, not
// golden outputs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gossip/network.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace lpt::core {

/// One scheduled membership change, applied at the start of `round`
/// (1-based: round 1 is the first round the engines run).
struct ChurnEvent {
  std::size_t round = 0;
  gossip::NodeId node = 0;
  bool join = false;  // false: leave; true: (re)join
};

/// A deterministic churn script: events sorted by round.  Engines walk it
/// with a cursor, so applying a round's events is O(events due).
struct ChurnSchedule {
  std::vector<ChurnEvent> events;

  bool empty() const noexcept { return events.empty(); }

  void sort() {
    std::stable_sort(events.begin(), events.end(),
                     [](const ChurnEvent& a, const ChurnEvent& b) {
                       return a.round < b.round;
                     });
  }
};

/// Present-set bookkeeping: O(1) membership test, O(1) leave/join, and
/// O(1) uniform draw over the present nodes (swap-remove list + positions).
class ChurnState {
 public:
  explicit ChurnState(std::size_t n) : present_(n, 1), pos_(n), list_(n) {
    for (std::size_t v = 0; v < n; ++v) {
      list_[v] = static_cast<gossip::NodeId>(v);
      pos_[v] = static_cast<std::uint32_t>(v);
    }
  }

  bool present(gossip::NodeId v) const noexcept { return present_[v] != 0; }
  std::size_t present_count() const noexcept { return list_.size(); }

  void leave(gossip::NodeId v) {
    LPT_CHECK_MSG(present_[v], "churn: leave of a node that is not present");
    LPT_CHECK_MSG(list_.size() > 1, "churn: cannot remove the last node");
    present_[v] = 0;
    const std::uint32_t p = pos_[v];
    const gossip::NodeId last = list_.back();
    list_[p] = last;
    pos_[last] = p;
    list_.pop_back();
  }

  void join(gossip::NodeId v) {
    LPT_CHECK_MSG(!present_[v], "churn: join of a node that is present");
    present_[v] = 1;
    pos_[v] = static_cast<std::uint32_t>(list_.size());
    list_.push_back(v);
  }

  /// Uniformly random present node (caller's RNG stream).
  gossip::NodeId draw_present(util::Rng& rng) const {
    return list_[rng.below(list_.size())];
  }

 private:
  std::vector<std::uint8_t> present_;
  std::vector<std::uint32_t> pos_;  // index of v in list_ (present only)
  std::vector<gossip::NodeId> list_;
};

namespace detail {

/// Cursor over a sorted ChurnSchedule: events_due(t) returns the (possibly
/// empty) span of events whose round == t, advancing past them.
class ChurnCursor {
 public:
  explicit ChurnCursor(const ChurnSchedule* schedule)
      : schedule_(schedule) {}

  std::span<const ChurnEvent> events_due(std::size_t round) {
    if (schedule_ == nullptr) return {};
    const auto& ev = schedule_->events;
    const std::size_t begin = next_;
    while (next_ < ev.size() && ev[next_].round <= round) ++next_;
    return {ev.data() + begin, next_ - begin};
  }

 private:
  const ChurnSchedule* schedule_;
  std::size_t next_ = 0;
};

/// Hand node v's store off to uniformly random present nodes and clear it.
/// The leaver's elements are copied into `scratch` first: add_original /
/// add_copy on a target can grow the target's slab slot, which may
/// reallocate the arena the leaver's view points into.
template <typename Element>
void hand_off_store(gossip::NodeStore<Element>& store, gossip::NodeId v,
                    const ChurnState& churn, util::Rng& rng,
                    std::vector<Element>& scratch) {
  const std::span<const Element> view = store.view(v);
  if (view.empty()) return;
  const std::size_t h0 = store.h0_count(v);
  scratch.assign(view.begin(), view.end());
  store.clear_node(v);
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    const gossip::NodeId target = churn.draw_present(rng);
    if (i < h0) {
      store.add_original(target, scratch[i]);
    } else {
      store.add_copy(target, scratch[i]);
    }
  }
}

}  // namespace detail
}  // namespace lpt::core
