// The Low-Load Clarkson Algorithm (paper Section 2: Algorithms 2 and 4).
//
// Setting: |H| = O(n log n), elements initially distributed uniformly at
// random over n anonymous gossip nodes.  Per iteration (= one round, the
// paper's Section 2 convention) every node:
//
//   1. samples a random multiset R_i of size 6d^2 from H(V) with the
//      Section 2.1 pull sampler,
//   2. pushes its local violators W_i = { h in H(v_i) : f(R_i) < f(R_i+h) }
//      to uniformly random nodes (multiplicity doubling, distributed), and
//   3. filters: every non-original element is kept with probability
//      1/(1 + 1/(2d)), so |H(V)| stays O(|H_0|) (Lemma 9) while original
//      elements are never deleted (no wash-out).
//
// Nodes with no initial element first run the Section 2.3 pull phase so
// that |H(V)| >= n holds from O(log n) rounds on (Lemma 13).
//
// Theorem 3: O(d log n) rounds and O(d^2 + log n) work per node per round,
// w.h.p.  bench/fig2_low_load reproduces Figure 2 with this engine.
//
// ## Simulator cost per round (the large-n engine contract)
//
// The only per-round loops proportional to n are the ones that do inherent
// per-node algorithm work: issuing each awake node's sampler pulls and the
// stage-A compute (sample selection, local solve, violator scan).  All
// bookkeeping is proportional to the *active* sets instead:
//
//   * element storage is a slab-backed gossip::NodeStore — |H(V)| is O(1)
//     (incremental), and the filter pass visits only nodes holding copies;
//   * delivery walks only the inboxes that received something (CSR
//     receiver lists), not all n;
//   * the Section 2.3 pull phase is a compact sorted node list that
//     empties after O(log n) rounds;
//   * the stage-B replay walks only the nodes stage A flagged as needing
//     shared-state effects (violator pushes, termination injects), with
//     sampler statistics accumulated as per-chunk counters.
//
// DistributedRunStats::last_round_bookkeeping_touches records the final
// round's bookkeeping node-touches; tests pin it to O(active) << n.
//
// ## Determinism
//
// One run is a pure function of (problem, h_set, n_nodes, cfg): the master
// seed fans out into the network stream, the placement stream, and n
// per-node streams.  cfg.parallel_nodes only changes *where* the stage-A
// compute runs: that stage consumes per-node RNG streams exclusively, every
// shared-RNG side effect is replayed serially in ascending node order in
// stage B (the chunked stage-A collection preserves that order exactly),
// and the filter pass consumes per-node streams only — so results are
// bit-identical for every thread count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/churn.hpp"
#include "core/lp_type.hpp"
#include "core/result.hpp"
#include "core/sampling.hpp"
#include "core/termination.hpp"
#include "gossip/mailbox.hpp"
#include "gossip/network.hpp"
#include "obs/obs.hpp"
#include "shard/runtime.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/thread_pool.hpp"

namespace lpt::core {

enum class SamplingMode {
  kPullBased,   // Section 2.1 sampler (the paper's algorithm)
  kIdealized,   // exact uniform draws from H(V) (ablation upper bound)
};

/// Configuration for run_low_load.  Every field participates in the
/// determinism contract above except parallel_nodes, which is guaranteed
/// not to (bit-identical results for any value).
struct LowLoadConfig {
  std::uint64_t seed = 1;
  double sampler_c = 2.0;        // pull-count constant of Section 2.1
  bool strict_sampling = false;  // fail short samples (theory mode)
  bool filtering = true;         // Algorithm 2 line 8-9 (ablation toggle)
  SamplingMode sampling = SamplingMode::kPullBased;
  bool run_termination = false;  // run Algorithm 3 until every node outputs
  std::size_t termination_maturity = 0;  // 0: 2*ceil(log2 n) + 4
  std::size_t max_rounds = 0;            // 0: auto safety cap
  std::size_t min_rounds = 0;  // keep simulating at least this many rounds
                               // even after the optimum is found (used by
                               // long-horizon load measurements / ablations)
  gossip::FaultModel faults;   // message loss / sleeping nodes (Section 1.2's
                               // robustness claim; see gossip::FaultModel)
  const ChurnSchedule* churn = nullptr;  // nodes leaving/joining mid-run with
                                         // store handoff (core/churn.hpp);
                                         // incompatible with run_termination
                                         // (departed nodes cannot output)
  std::size_t dimension_override = 0;  // run as if dim(H, f) were this value
                                       // (the Section 1.4 doubling search on
                                       // an unknown d; 0 = use p.dimension())
  std::size_t parallel_nodes = 0;  // >1: per-node compute phase (sample
                                   // selection, local solve, violator scan)
                                   // runs on this many threads.  Results are
                                   // bit-identical to the serial run: the
                                   // phase consumes only the per-node RNG
                                   // streams, and all shared-RNG traffic is
                                   // replayed serially in node order.  Only
                                   // kPullBased sampling parallelizes (the
                                   // idealized sampler meters global pulls).
                                   // The pool lives for one run: combining
                                   // with a bench-level --threads sweep
                                   // oversubscribes (threads x parallel_
                                   // nodes OS threads) — pick one level.
  shard::ShardConfig shard;  // shards >= 1: the stage-A compute runs on that
                             // many shard workers (in-process threads or
                             // fork()ed processes; see shard/runtime.hpp)
                             // over contiguous node ranges, with the stage-B
                             // replay applied after a deterministic merge of
                             // the per-shard candidate streams.  Results are
                             // bit-identical to the serial and the
                             // parallel_nodes paths for every shard count
                             // and either transport.  Takes precedence over
                             // parallel_nodes; requires kPullBased sampling
                             // and a problem with shard wire codecs
                             // (wire_put/wire_get for Element and Solution),
                             // else the run falls back to the in-process
                             // paths.
};

template <LpTypeProblem P>
struct DistributedLpResult {
  typename P::Solution solution;  // the optimum found (first node's f(R_i))
  DistributedRunStats stats;
};

namespace detail {
// "No node" sentinel for the stage-A chunk accumulators.  Namespace scope
// (not function-local constexpr) because GCC 12 ICEs on a local struct
// NSDMI referencing a function-local constexpr inside a template.
inline constexpr gossip::NodeId kNoNodeId = 0xffffffffu;

/// One node's stage-A compute (sample selection, local solve, violator
/// scan) from explicit inputs — the single definition executed by both the
/// in-process chunk loop and the shard workers, so the two paths cannot
/// drift.  Consumes `rng` exactly as a serial full scan would; returns
/// false when the sample failed (no solve, no further draws).
template <LpTypeProblem P>
bool low_load_node_stage_a(const P& p, const SamplerConfig& sampler,
                           std::span<typename P::Element> responses,
                           std::span<const typename P::Element> local,
                           util::Rng& rng, typename P::Solution& sol,
                           std::vector<typename P::Element>& violators) {
  const SampleView<typename P::Element> view =
      select_distinct_view(responses, sampler.target, rng, sampler.strict);
  if (!view.success) return false;
  // A full-size sample left the selection step in uniform random order, so
  // the problem's pre-shuffled local solve applies; lenient short samples
  // keep dedupe order and take the shuffling solve.
  if constexpr (requires { p.solve_shuffled(view.sample); }) {
    sol = view.randomized ? p.solve_shuffled(view.sample)
                          : p.solve(view.sample);
  } else {
    sol = p.solve(view.sample);
  }
  // W_i: local violators (Algorithm 2 lines 5-6), pushed in stage B.
  violators.clear();
  for (const auto& h : local) {
    if (p.violates(sol, h)) violators.push_back(h);
  }
  return true;
}

/// The sharded runtime is available for P when its element and solution
/// types have shard wire codecs (shard/wire.hpp customization point).
template <typename P>
concept ShardableLowLoad = shard::Wirable<typename P::Element> &&
                           shard::Wirable<typename P::Solution>;

/// Build the stage-A serve handler every low-load shard worker runs.
/// Captures only run-static state (problem, oracle, sampler constants) by
/// value, so it stays valid in a fork()ed child and is data-race-free
/// across in-process worker threads (each worker owns a copy).
///
/// Task payload (after the MsgType byte):
///   u8 found_snapshot · u32 begin · u32 end · per node in [begin, end):
///     u8 flags; if kActive: rng state, responses seq, local-elements seq.
/// Result payload:
///   per node: u8 flags; if kActive: rng state (advanced); if kReplay:
///   violators seq; if kSolution: solution — then u32 attempts,
///   u32 failures, u32 first_opt (kNoNodeId when none).
template <LpTypeProblem P>
auto make_low_load_serve(P p, typename P::Solution oracle,
                         SamplerConfig sampler, bool run_termination) {
  using Element = typename P::Element;
  using Solution = typename P::Solution;
  return [p = std::move(p), oracle = std::move(oracle), sampler,
          run_termination, rng = util::Rng{}, sol = Solution{},
          responses = std::vector<Element>{}, local = std::vector<Element>{},
          violators = std::vector<Element>{}](gossip::Decoder& d,
                                              gossip::Encoder& e) mutable {
    const bool found_snapshot = d.get_u8() != 0;
    const gossip::NodeId begin = d.get_u32();
    const gossip::NodeId end = d.get_u32();
    shard::put_msg_type(e, shard::MsgType::kStageAResult);
    std::uint32_t attempts = 0;
    std::uint32_t failures = 0;
    gossip::NodeId first_opt = kNoNodeId;
    for (gossip::NodeId v = begin; v < end; ++v) {
      if (!(d.get_u8() & shard::nodeflag::kActive)) {
        e.put_u8(0);
        continue;
      }
      shard::get_rng(d, rng);
      shard::get_seq(d, responses);
      shard::get_seq(d, local);
      ++attempts;
      const bool ok = low_load_node_stage_a(
          p, sampler, std::span<Element>(responses),
          std::span<const Element>(local), rng, sol, violators);
      std::uint8_t flags = shard::nodeflag::kActive;
      if (!ok) {
        ++failures;
      } else {
        bool is_first_opt = false;
        if (!found_snapshot && first_opt == kNoNodeId &&
            p.same_value(sol, oracle)) {
          first_opt = v;
          is_first_opt = true;
        }
        const bool replay = !violators.empty() || run_termination;
        if (replay) flags |= shard::nodeflag::kReplay;
        // Ship the solution only where stage B can read it: termination
        // injects (replay with no violators) and the round's first
        // optimum (res.solution).
        if ((replay && violators.empty()) || is_first_opt) {
          flags |= shard::nodeflag::kSolution;
        }
      }
      e.put_u8(flags);
      shard::put_rng(e, rng);
      if (flags & shard::nodeflag::kReplay) {
        shard::put_seq(e, std::span<const Element>(violators));
      }
      if (flags & shard::nodeflag::kSolution) wire_put(e, sol);
    }
    e.put_u32(attempts);
    e.put_u32(failures);
    e.put_u32(first_opt);
  };
}

/// Bootstrap payload for workers that inherit nothing via fork (the socket
/// transport; ShardHarness frames these bytes as MsgType::kBootstrap): the
/// run-static instance state make_low_load_serve would otherwise capture at
/// fork time — the termination flag, the sampler constants, the oracle
/// solution.  The problem *type* is compile time (a remote worker binary
/// instantiates the same template); problems whose instances carry no
/// state (MinDisk) are therefore fully described by this payload.
///
/// Schema: u8 run_termination · u8 strict · u32 target · u32 log_n ·
/// f64 c · oracle solution (wire_put).
template <LpTypeProblem P>
std::vector<std::uint8_t> low_load_bootstrap_payload(
    const typename P::Solution& oracle, const SamplerConfig& sampler,
    bool run_termination) {
  gossip::Encoder e;
  e.put_u8(run_termination ? 1 : 0);
  e.put_u8(sampler.strict ? 1 : 0);
  e.put_u32(static_cast<std::uint32_t>(sampler.target));
  e.put_u32(static_cast<std::uint32_t>(sampler.log_n));
  e.put_f64(sampler.c);
  wire_put(e, oracle);
  return e.bytes();
}

/// The matching serve factory: decodes one low_load_bootstrap_payload and
/// builds the same handler make_low_load_serve would have built — run from
/// bootstrap_worker_loop inside every socket worker (and every respawned
/// replacement, which gets the bootstrap re-sent).
template <LpTypeProblem P>
auto make_low_load_bootstrap_factory(P p) {
  return [p = std::move(p)](gossip::Decoder& d) {
    const bool run_termination = d.get_u8() != 0;
    SamplerConfig sampler;
    sampler.strict = d.get_u8() != 0;
    sampler.target = d.get_u32();
    sampler.log_n = d.get_u32();
    sampler.c = d.get_f64();
    typename P::Solution oracle;
    wire_get(d, oracle);
    return make_low_load_serve<P>(p, std::move(oracle), sampler,
                                  run_termination);
  };
}
}  // namespace detail

/// Run the Low-Load Clarkson Algorithm on (p, h_set) over `n_nodes` gossip
/// nodes.  The run stops when some node's sample attains f(H) (the paper's
/// Figure 2 measurement), or — with cfg.run_termination — when every node
/// has produced an Algorithm 3 output.
template <LpTypeProblem P>
DistributedLpResult<P> run_low_load(const P& p,
                                    std::span<const typename P::Element> h_set,
                                    std::size_t n_nodes,
                                    const LowLoadConfig& cfg = {}) {
  using Element = typename P::Element;

  DistributedLpResult<P> res;
  const std::size_t d =
      cfg.dimension_override ? cfg.dimension_override : p.dimension();
  const std::size_t n = n_nodes;
  LPT_CHECK(n >= 1 && d >= 1);
  const auto oracle = p.solve(h_set);
  if (h_set.empty()) {
    res.solution = oracle;
    res.stats.reached_optimum = true;
    return res;
  }

  util::Rng master(cfg.seed);
  gossip::Network net(n, master.child(0), cfg.faults);
  util::Rng dist_rng = master.child(1);
  std::vector<util::Rng> node_rng;
  node_rng.reserve(n);
  for (std::size_t v = 0; v < n; ++v) node_rng.push_back(master.child(2 + v));

  // Initial placement: every element lands on a uniformly random node
  // (the paper's standing assumption; achievable with one push each).
  gossip::NodeStore<Element> store(n);
  for (const auto& h : h_set) {
    store.add_original(static_cast<gossip::NodeId>(dist_rng.below(n)), h);
  }

  SamplerConfig sampler;
  sampler.target = 6 * d * d;
  sampler.c = cfg.sampler_c;
  sampler.log_n = util::ceil_log2(n) + 1;
  sampler.strict = cfg.strict_sampling;
  const std::size_t pulls = sampler.pulls_per_node();
  const double keep_p =
      1.0 / (1.0 + 1.0 / (2.0 * static_cast<double>(d)));

  const std::size_t maturity = cfg.termination_maturity
                                   ? cfg.termination_maturity
                                   : 2 * (util::ceil_log2(n) + 2);
  const std::size_t max_rounds =
      cfg.max_rounds ? cfg.max_rounds
                     : 60 * d * (util::ceil_log2(n) + 2) + 8 * maturity + 60;
  // The meter closes one history entry per round: reserving the round
  // bound up front keeps begin_round's push_back realloc-free for the
  // whole run (+1 covers the finish() flush of the last round).
  net.meter().reserve_rounds(max_rounds + 1);

  // Shard runtime (shard/runtime.hpp): when configured and the problem has
  // wire codecs, stage A runs on shard workers over contiguous node ranges
  // and stage B applies the per-shard candidate streams merged in shard
  // order — bit-identical to the serial and parallel_nodes paths.  Workers
  // spawn (PipeTransport: fork) here, before any thread pool exists.
  constexpr bool kShardable = detail::ShardableLowLoad<P>;
  const bool sharded = kShardable && cfg.shard.enabled() &&
                       cfg.sampling == SamplingMode::kPullBased;
  std::optional<shard::ShardHarness> harness;
  if constexpr (kShardable) {
    if (sharded) {
      if (cfg.shard.transport == shard::TransportKind::kSocket) {
        // Socket workers inherit nothing: the run-static state travels in
        // a bootstrap frame and the serve handler is rebuilt from it
        // inside the worker (and inside every respawned replacement).
        // The fork-inheriting transports keep the closure path — their
        // existing fault-script frame positions must not shift.
        harness.emplace(n, cfg.shard,
                        detail::low_load_bootstrap_payload<P>(
                            oracle, sampler, cfg.run_termination),
                        detail::make_low_load_bootstrap_factory<P>(p));
      } else {
        harness.emplace(n, cfg.shard,
                        detail::make_low_load_serve<P>(p, oracle, sampler,
                                                       cfg.run_termination));
      }
    }
  }

  gossip::PullChannel<Element> sample_chan(net);
  gossip::PullChannel<Element> seed_chan(net);  // Section 2.3 pull phase
  gossip::Mailbox<Element> copies_mail(net);    // W_i pushes
  gossip::Mailbox<Element> seeds_mail(net);     // (h, 0) pushes
  TerminationProtocol<P> term(p, net, maturity);

  // Section 2.3: nodes with no original element start in the pull phase.
  // The phase membership is a compact *sorted* id list (plus a flag array
  // for O(1) stage-A checks): the request loop and the stage-B response
  // walk cost O(phase members), which drops to zero after O(log n) rounds.
  std::vector<std::uint8_t> in_pull_phase(n, 0);
  std::vector<gossip::NodeId> pull_nodes;
  for (std::size_t v = 0; v < n; ++v) {
    if (store.h0_count(static_cast<gossip::NodeId>(v)) == 0) {
      in_pull_phase[v] = 1;
      pull_nodes.push_back(static_cast<gossip::NodeId>(v));
    }
  }

  // Churn (core/churn.hpp): membership bookkeeping plus a cursor over the
  // schedule.  Events apply at the top of their round, before any traffic.
  const bool churn_on = cfg.churn != nullptr && !cfg.churn->empty();
  LPT_CHECK_MSG(!(churn_on && cfg.run_termination),
                "run_low_load: churn is incompatible with run_termination");
  std::optional<ChurnState> members;
  if (churn_on) members.emplace(n);
  detail::ChurnCursor churn_cursor(churn_on ? cfg.churn : nullptr);
  std::vector<Element> handoff_scratch;
  auto absent = [&](gossip::NodeId v) {
    return churn_on && !members->present(v);
  };

  res.stats.initial_total_elements = store.total_elements();
  res.stats.max_total_elements = res.stats.initial_total_elements;

  // Per-node round scratch for the compute stage (stage A).  Persistent
  // across rounds so the steady state allocates nothing.
  struct NodeRound {
    typename P::Solution sol;
    std::vector<Element> violators;
    std::vector<Element> resp;  // idealized-sampling draw buffer
  };
  std::vector<NodeRound> scratch(n);
  std::vector<std::size_t> prefix;  // idealized-sampling cumulative sizes

  const bool parallel = !sharded && cfg.parallel_nodes > 1 &&
                        cfg.sampling == SamplingMode::kPullBased;
  std::optional<util::ThreadPool> pool;
  if (parallel) pool.emplace(cfg.parallel_nodes);

  // Stage-A chunk accumulators: fixed contiguous chunks collect, each in
  // ascending node order, the nodes whose stage-B replay has shared-state
  // effects, plus sampler counters.  Concatenated in chunk order they
  // recover the exact node order of a full scan at O(candidates) cost,
  // independent of the thread count (see util::parallel_chunks).  In the
  // sharded run the chunks are the shards themselves (contiguous ascending
  // ranges, applied in shard order — the same contract over the wire).
  struct ChunkAcc {
    std::vector<gossip::NodeId> replay;
    std::uint32_t attempts = 0;
    std::uint32_t failures = 0;
    gossip::NodeId first_opt = detail::kNoNodeId;
  };
  const std::size_t chunk =
      parallel ? std::max<std::size_t>(64, n / (cfg.parallel_nodes * 8)) : n;
  std::vector<ChunkAcc> chunks(sharded ? harness->frame_count()
                                       : util::chunk_count(n, chunk));

  bool found = false;
  for (std::size_t t = 1; t <= max_rounds; ++t) {
    net.begin_round();
    obs::trace_tick();  // rounds are the engine's sampling unit
    obs::TraceSpan round_span("low_load.round", t);
    std::size_t bookkeeping = 0;

    // --- Churn events due this round: a leaver hands its store off to
    // uniformly random present nodes (originals stay originals) and drops
    // out of the pull phase; a joiner enters the Section 2.3 pull phase.
    for (const ChurnEvent& ev : churn_cursor.events_due(t)) {
      const gossip::NodeId v = ev.node;
      if (ev.join) {
        members->join(v);
        if (!in_pull_phase[v]) {
          in_pull_phase[v] = 1;
          pull_nodes.insert(
              std::lower_bound(pull_nodes.begin(), pull_nodes.end(), v), v);
        }
      } else {
        members->leave(v);  // before hand_off: targets exclude the leaver
        detail::hand_off_store(store, v, *members, net.rng(),
                               handoff_scratch);
        if (in_pull_phase[v]) {
          in_pull_phase[v] = 0;
          pull_nodes.erase(
              std::lower_bound(pull_nodes.begin(), pull_nodes.end(), v));
        }
      }
    }

    // --- Pull phase requests (Algorithm 4, lines 2-6): O(phase members).
    for (const gossip::NodeId v : pull_nodes) {
      if (!net.asleep(v)) seed_chan.request(v);
    }
    seed_chan.resolve([&](gossip::NodeId target) -> std::optional<Element> {
      const std::size_t h0 = store.h0_count(target);
      if (h0 == 0) return std::nullopt;
      return store.elem(target, net.rng().below(h0));
    });

    // --- Sampling (Algorithm 2 line 3 via Section 2.1), as fused bulk
    // pulls: each pull draws its target and is answered in place. ---
    if (cfg.sampling == SamplingMode::kPullBased) {
      sample_chan.begin_pulls();
      auto answer = [&](gossip::NodeId target, std::vector<Element>& sink) {
        const std::size_t sz = store.size(target);
        if (sz != 0) {
          sink.push_back(store.elem(target, net.rng().below(sz)));
        }
      };
      for (gossip::NodeId v = 0; v < n; ++v) {
        if (in_pull_phase[v] || net.asleep(v) || absent(v)) continue;
        sample_chan.pull_uniform_direct(v, pulls, answer);
      }
    }

    // Idealized sampling support: per-round prefix sums over store sizes.
    if (cfg.sampling == SamplingMode::kIdealized) {
      prefix.assign(n + 1, 0);
      for (std::size_t v = 0; v < n; ++v) {
        prefix[v + 1] = prefix[v] + store.size(static_cast<gossip::NodeId>(v));
      }
    }

    // --- Per-node compute (stage A): sample selection, local solve, and
    // violator scan.  Touches only node-local state and node_rng[v], so it
    // fans out across threads when cfg.parallel_nodes asks for it; every
    // shared-RNG side effect (mailbox pushes, termination traffic) is
    // collected per chunk and replayed in stage B in node order, making
    // parallel runs bit-identical to serial ones.
    const bool found_snapshot = found;
    auto stage_a = [&](std::size_t k, std::size_t begin, std::size_t end) {
      obs::TraceSpan chunk_span("low_load.stage_a.chunk", k);
      ChunkAcc& ch = chunks[k];
      ch.replay.clear();
      ch.attempts = 0;
      ch.failures = 0;
      ch.first_opt = detail::kNoNodeId;
      for (std::size_t vi = begin; vi < end; ++vi) {
        const auto v = static_cast<gossip::NodeId>(vi);
        if (net.asleep(v) || in_pull_phase[v] || absent(v)) continue;
        ++ch.attempts;
        NodeRound& sc = scratch[v];
        bool ok;
        if (cfg.sampling == SamplingMode::kPullBased) {
          // Select straight out of the channel's CSR slice: each slice is
          // consumed exactly once per round, so reordering it in place is
          // safe, and the sample stays a zero-copy view into it.
          ok = detail::low_load_node_stage_a(
              p, sampler, sample_chan.mutable_responses(v), store.view(v),
              node_rng[v], sc.sol, sc.violators);
        } else {
          const std::size_t m = prefix[n];
          sc.resp.clear();
          sc.resp.reserve(pulls);
          for (std::size_t k2 = 0; k2 < pulls && m > 0; ++k2) {
            net.meter().add_pull(v, 0);
            const std::size_t g = node_rng[v].below(m);
            const auto it =
                std::upper_bound(prefix.begin(), prefix.end(), g) - 1;
            const auto node = static_cast<std::size_t>(it - prefix.begin());
            sc.resp.push_back(store.elem(static_cast<gossip::NodeId>(node),
                                         g - *it));
            net.meter().add_response_bytes(sizeof(Element));
          }
          ok = detail::low_load_node_stage_a(
              p, sampler, std::span<Element>(sc.resp), store.view(v),
              node_rng[v], sc.sol, sc.violators);
        }
        if (!ok) {
          ++ch.failures;
          continue;
        }
        if (!found_snapshot && ch.first_opt == detail::kNoNodeId &&
            p.same_value(sc.sol, oracle)) {
          ch.first_opt = v;
        }
        if (!sc.violators.empty() || cfg.run_termination) {
          ch.replay.push_back(v);
        }
      }
    };
    bool ran_on_shards = false;
    if constexpr (kShardable) {
      if (sharded) {
        // Ship each shard its per-node stage-A inputs in bounded
        // sub-frames; per-frame results land in frame-indexed ChunkAccs,
        // which stage B walks in index order — shard-major contiguous
        // ascending ranges, i.e. the serial full-scan node order.
        harness->round(
            [&](shard::ShardRange r, gossip::Encoder& e) {
              e.put_u8(found_snapshot ? 1 : 0);
              e.put_u32(r.begin);
              e.put_u32(r.end);
              for (gossip::NodeId v = r.begin; v < r.end; ++v) {
                const bool active =
                    !net.asleep(v) && !in_pull_phase[v] && !absent(v);
                e.put_u8(active ? shard::nodeflag::kActive : std::uint8_t{0});
                if (!active) continue;
                shard::put_rng(e, node_rng[v]);
                shard::put_seq(e, sample_chan.responses(v));
                shard::put_seq(e, store.view(v));
              }
            },
            [&](std::size_t frame, shard::ShardRange r,
                gossip::Decoder& dec) {
              ChunkAcc& ch = chunks[frame];
              ch.replay.clear();
              for (gossip::NodeId v = r.begin; v < r.end; ++v) {
                const std::uint8_t flags = dec.get_u8();
                if (flags & shard::nodeflag::kActive) {
                  shard::get_rng(dec, node_rng[v]);
                }
                if (flags & shard::nodeflag::kReplay) {
                  shard::get_seq(dec, scratch[v].violators);
                  ch.replay.push_back(v);
                }
                if (flags & shard::nodeflag::kSolution) {
                  wire_get(dec, scratch[v].sol);
                }
              }
              ch.attempts = dec.get_u32();
              ch.failures = dec.get_u32();
              ch.first_opt = dec.get_u32();
            });
        ran_on_shards = true;
      }
    }
    if (!ran_on_shards) {
      util::parallel_chunks(pool ? &*pool : nullptr, n, chunk, stage_a);
    }

    // --- Shared-state replay (stage B): walk the pull-phase list and the
    // per-chunk candidate lists merged in ascending node order — the exact
    // order (and hence shared-RNG stream) of a full O(n) scan, at
    // O(phase members + candidates) cost. ---
    std::size_t pull_read = 0;
    std::size_t pull_write = 0;
    auto replay_pull_below = [&](gossip::NodeId limit) {
      while (pull_read < pull_nodes.size() && pull_nodes[pull_read] < limit) {
        const gossip::NodeId v = pull_nodes[pull_read++];
        ++bookkeeping;
        bool exited = false;
        if (!net.asleep(v)) {
          const auto got = seed_chan.responses(v);
          if (!got.empty()) {
            seeds_mail.push(v, got.front());
            in_pull_phase[v] = 0;
            exited = true;
          }
        }
        if (!exited) pull_nodes[pull_write++] = v;
      }
    };
    gossip::NodeId first_opt = detail::kNoNodeId;
    for (const ChunkAcc& ch : chunks) {
      res.stats.sampling_attempts += ch.attempts;
      res.stats.sampling_failures += ch.failures;
      if (first_opt == detail::kNoNodeId) first_opt = ch.first_opt;
      for (const gossip::NodeId v : ch.replay) {
        replay_pull_below(v);
        ++bookkeeping;
        const NodeRound& sc = scratch[v];
        for (const auto& h : sc.violators) copies_mail.push(v, h);
        if (sc.violators.empty() && cfg.run_termination) {
          term.inject(v, static_cast<std::uint32_t>(t), sc.sol);
        }
      }
    }
    replay_pull_below(static_cast<gossip::NodeId>(n));
    pull_nodes.resize(pull_write);
    if (!found && first_opt != detail::kNoNodeId) {
      found = true;
      res.solution = scratch[first_opt].sol;
      res.stats.rounds_to_first = t;
      res.stats.reached_optimum = true;
    }

    // --- Delivery (received at the beginning of the next round): walk
    // only the inboxes that received something. ---
    seeds_mail.deliver();
    copies_mail.deliver();
    for (const gossip::NodeId v : seeds_mail.receivers()) {
      ++bookkeeping;
      // A departed receiver drops the delivery: the seed is a duplicate of
      // an original the answerer still holds, so nothing is destroyed.
      if (absent(v)) continue;
      for (const auto& h : seeds_mail.inbox(v)) store.add_original(v, h);
    }
    for (const gossip::NodeId v : copies_mail.receivers()) {
      ++bookkeeping;
      if (absent(v)) continue;  // pushers retain their own copies
      for (const auto& h : copies_mail.inbox(v)) store.add_copy(v, h);
    }

    // --- Filtering (lines 8-9): originals are never deleted; only the
    // copy-holding nodes are visited, each consuming its own RNG stream.
    if (cfg.filtering) {
      bookkeeping += store.filter_copies(
          keep_p, [&](gossip::NodeId v) -> util::Rng& { return node_rng[v]; });
    }

    if (cfg.run_termination) {
      term.round(static_cast<std::uint32_t>(t),
                 [&](gossip::NodeId v) { return store.view(v); });
    }

    const std::size_t m = store.total_elements();
    if (m > res.stats.max_total_elements) res.stats.max_total_elements = m;
    res.stats.bookkeeping_touches_total += bookkeeping;
    res.stats.last_round_bookkeeping_touches = bookkeeping;

    const bool done = cfg.run_termination ? term.all_output() : found;
    if (done && t >= cfg.min_rounds) {
      res.stats.rounds_to_all_output = cfg.run_termination ? t : 0;
      break;
    }
  }

  if (cfg.run_termination) {
    for (gossip::NodeId v = 0; v < n; ++v) {
      const auto& out = term.output(v);
      if (!out || !p.same_value(*out, oracle)) {
        res.stats.all_outputs_correct = false;
        break;
      }
    }
    if (term.all_output() && res.stats.all_outputs_correct && !found) {
      // Every node output the optimum via the protocol even though the
      // oracle check never fired (possible only in degenerate instances).
      res.solution = *term.output(0);
      res.stats.reached_optimum = true;
    }
  }

  if constexpr (kShardable) {
    if (sharded && cfg.shard.recovery_out != nullptr) {
      *cfg.shard.recovery_out = harness->recovery_stats();
    }
  }

  net.meter().finish();
  res.stats.max_work_per_round = net.meter().max_work_per_round();
  res.stats.total_push_ops = net.meter().total_push_ops();
  res.stats.total_pull_ops = net.meter().total_pull_ops();
  res.stats.total_bytes = net.meter().total_bytes();
  res.stats.final_total_elements = store.total_elements();
  obs::counter("engine.low_load.runs").add(1);
  obs::counter("engine.low_load.rounds").add(res.stats.rounds_to_first);
  obs::gauge("engine.low_load.store_arena_bytes")
      .set(static_cast<std::int64_t>(store.arena_bytes()));
  return res;
}

}  // namespace lpt::core
