// The Low-Load Clarkson Algorithm (paper Section 2: Algorithms 2 and 4).
//
// Setting: |H| = O(n log n), elements initially distributed uniformly at
// random over n anonymous gossip nodes.  Per iteration (= one round, the
// paper's Section 2 convention) every node:
//
//   1. samples a random multiset R_i of size 6d^2 from H(V) with the
//      Section 2.1 pull sampler,
//   2. pushes its local violators W_i = { h in H(v_i) : f(R_i) < f(R_i+h) }
//      to uniformly random nodes (multiplicity doubling, distributed), and
//   3. filters: every non-original element is kept with probability
//      1/(1 + 1/(2d)), so |H(V)| stays O(|H_0|) (Lemma 9) while original
//      elements are never deleted (no wash-out).
//
// Nodes with no initial element first run the Section 2.3 pull phase so
// that |H(V)| >= n holds from O(log n) rounds on (Lemma 13).
//
// Theorem 3: O(d log n) rounds and O(d^2 + log n) work per node per round,
// w.h.p.  bench/fig2_low_load reproduces Figure 2 with this engine.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/lp_type.hpp"
#include "core/result.hpp"
#include "core/sampling.hpp"
#include "core/termination.hpp"
#include "gossip/mailbox.hpp"
#include "gossip/network.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/thread_pool.hpp"

namespace lpt::core {

enum class SamplingMode {
  kPullBased,   // Section 2.1 sampler (the paper's algorithm)
  kIdealized,   // exact uniform draws from H(V) (ablation upper bound)
};

struct LowLoadConfig {
  std::uint64_t seed = 1;
  double sampler_c = 2.0;        // pull-count constant of Section 2.1
  bool strict_sampling = false;  // fail short samples (theory mode)
  bool filtering = true;         // Algorithm 2 line 8-9 (ablation toggle)
  SamplingMode sampling = SamplingMode::kPullBased;
  bool run_termination = false;  // run Algorithm 3 until every node outputs
  std::size_t termination_maturity = 0;  // 0: 2*ceil(log2 n) + 4
  std::size_t max_rounds = 0;            // 0: auto safety cap
  std::size_t min_rounds = 0;  // keep simulating at least this many rounds
                               // even after the optimum is found (used by
                               // long-horizon load measurements / ablations)
  gossip::FaultModel faults;   // message loss / sleeping nodes (Section 1.2's
                               // robustness claim; see gossip::FaultModel)
  std::size_t dimension_override = 0;  // run as if dim(H, f) were this value
                                       // (the Section 1.4 doubling search on
                                       // an unknown d; 0 = use p.dimension())
  std::size_t parallel_nodes = 0;  // >1: per-node compute phase (sample
                                   // selection, local solve, violator scan)
                                   // runs on this many threads.  Results are
                                   // bit-identical to the serial run: the
                                   // phase consumes only the per-node RNG
                                   // streams, and all shared-RNG traffic is
                                   // replayed serially in node order.  Only
                                   // kPullBased sampling parallelizes (the
                                   // idealized sampler meters global pulls).
                                   // The pool lives for one run: combining
                                   // with a bench-level --threads sweep
                                   // oversubscribes (threads x parallel_
                                   // nodes OS threads) — pick one level.
};

template <LpTypeProblem P>
struct DistributedLpResult {
  typename P::Solution solution;  // the optimum found (first node's f(R_i))
  DistributedRunStats stats;
};

namespace detail {

/// Per-node element store.  elems[0..h0_count) is H_0(v_i) — the original
/// elements, which the algorithm never deletes — and the tail holds copies
/// created by W_i pushes, which filtering may drop.
template <typename Element>
struct NodeStore {
  std::vector<Element> elems;
  std::size_t h0_count = 0;

  /// O(1): grow the H_0 prefix by swapping the displaced copy (if any) to
  /// the back.  The old middle-insert made placing |H| elements cost
  /// O(|H| * max-load).
  void add_original(const Element& h) {
    elems.push_back(h);
    const std::size_t last = elems.size() - 1;
    if (last != h0_count) {
      using std::swap;
      swap(elems[h0_count], elems[last]);
    }
    ++h0_count;
  }
  void add_copy(const Element& h) { elems.push_back(h); }

  std::span<const Element> view() const noexcept {
    return {elems.data(), elems.size()};
  }

  void filter(util::Rng& rng, double keep_probability) {
    std::size_t w = h0_count;
    for (std::size_t i = h0_count; i < elems.size(); ++i) {
      if (rng.bernoulli(keep_probability)) elems[w++] = elems[i];
    }
    elems.resize(w);
  }
};

}  // namespace detail

/// Run the Low-Load Clarkson Algorithm on (p, h_set) over `n_nodes` gossip
/// nodes.  The run stops when some node's sample attains f(H) (the paper's
/// Figure 2 measurement), or — with cfg.run_termination — when every node
/// has produced an Algorithm 3 output.
template <LpTypeProblem P>
DistributedLpResult<P> run_low_load(const P& p,
                                    std::span<const typename P::Element> h_set,
                                    std::size_t n_nodes,
                                    const LowLoadConfig& cfg = {}) {
  using Element = typename P::Element;
  using Store = detail::NodeStore<Element>;

  DistributedLpResult<P> res;
  const std::size_t d =
      cfg.dimension_override ? cfg.dimension_override : p.dimension();
  const std::size_t n = n_nodes;
  LPT_CHECK(n >= 1 && d >= 1);
  const auto oracle = p.solve(h_set);
  if (h_set.empty()) {
    res.solution = oracle;
    res.stats.reached_optimum = true;
    return res;
  }

  util::Rng master(cfg.seed);
  gossip::Network net(n, master.child(0), cfg.faults);
  util::Rng dist_rng = master.child(1);
  std::vector<util::Rng> node_rng;
  node_rng.reserve(n);
  for (std::size_t v = 0; v < n; ++v) node_rng.push_back(master.child(2 + v));

  // Initial placement: every element lands on a uniformly random node
  // (the paper's standing assumption; achievable with one push each).
  std::vector<Store> store(n);
  for (const auto& h : h_set) {
    store[dist_rng.below(n)].add_original(h);
  }

  SamplerConfig sampler;
  sampler.target = 6 * d * d;
  sampler.c = cfg.sampler_c;
  sampler.log_n = util::ceil_log2(n) + 1;
  sampler.strict = cfg.strict_sampling;
  const std::size_t pulls = sampler.pulls_per_node();
  const double keep_p =
      1.0 / (1.0 + 1.0 / (2.0 * static_cast<double>(d)));

  const std::size_t maturity = cfg.termination_maturity
                                   ? cfg.termination_maturity
                                   : 2 * (util::ceil_log2(n) + 2);
  const std::size_t max_rounds =
      cfg.max_rounds ? cfg.max_rounds
                     : 60 * d * (util::ceil_log2(n) + 2) + 8 * maturity + 60;

  gossip::PullChannel<Element> sample_chan(net);
  gossip::PullChannel<Element> seed_chan(net);  // Section 2.3 pull phase
  gossip::Mailbox<Element> copies_mail(net);    // W_i pushes
  gossip::Mailbox<Element> seeds_mail(net);     // (h, 0) pushes
  TerminationProtocol<P> term(p, net, maturity);

  // Section 2.3: nodes with no original element start in the pull phase.
  std::vector<std::uint8_t> in_pull_phase(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    in_pull_phase[v] = store[v].h0_count == 0 ? 1 : 0;
  }

  auto total_elements = [&] {
    std::size_t m = 0;
    for (const auto& s : store) m += s.elems.size();
    return m;
  };
  res.stats.initial_total_elements = total_elements();
  res.stats.max_total_elements = res.stats.initial_total_elements;

  // Per-node round scratch for the compute stage (stage A).  Persistent
  // across rounds so the steady state allocates nothing.  The per-round
  // flags live in compact side arrays: resetting them streams n bytes,
  // not one cache line per NodeRound.
  struct NodeRound {
    typename P::Solution sol;
    std::vector<Element> violators;
    std::vector<Element> resp;  // idealized-sampling draw buffer
  };
  std::vector<NodeRound> scratch(n);
  std::vector<std::uint8_t> success(n, 0);
  std::vector<std::size_t> prefix;  // idealized-sampling cumulative sizes

  const bool parallel =
      cfg.parallel_nodes > 1 && cfg.sampling == SamplingMode::kPullBased;
  std::optional<util::ThreadPool> pool;
  if (parallel) pool.emplace(cfg.parallel_nodes);

  bool found = false;
  for (std::size_t t = 1; t <= max_rounds; ++t) {
    net.begin_round();

    // --- Pull phase requests (Algorithm 4, lines 2-6). ---
    for (gossip::NodeId v = 0; v < n; ++v) {
      if (in_pull_phase[v] && !net.asleep(v)) seed_chan.request(v);
    }
    seed_chan.resolve([&](gossip::NodeId target) -> std::optional<Element> {
      const auto& s = store[target];
      if (s.h0_count == 0) return std::nullopt;
      return s.elems[net.rng().below(s.h0_count)];
    });

    // --- Sampling (Algorithm 2 line 3 via Section 2.1), as fused bulk
    // pulls: each pull draws its target and is answered in place. ---
    if (cfg.sampling == SamplingMode::kPullBased) {
      sample_chan.begin_pulls();
      auto answer = [&](gossip::NodeId target, std::vector<Element>& sink) {
        const auto& s = store[target];
        if (!s.elems.empty()) {
          sink.push_back(s.elems[net.rng().below(s.elems.size())]);
        }
      };
      for (gossip::NodeId v = 0; v < n; ++v) {
        if (in_pull_phase[v] || net.asleep(v)) continue;
        sample_chan.pull_uniform_direct(v, pulls, answer);
      }
    }

    // Idealized sampling support: per-round prefix sums over store sizes.
    if (cfg.sampling == SamplingMode::kIdealized) {
      prefix.assign(n + 1, 0);
      for (std::size_t v = 0; v < n; ++v) {
        prefix[v + 1] = prefix[v] + store[v].elems.size();
      }
    }

    // --- Per-node compute (stage A): sample selection, local solve, and
    // violator scan.  Touches only node-local state and node_rng[v], so it
    // fans out across threads when cfg.parallel_nodes asks for it; every
    // shared-RNG side effect (mailbox pushes, termination traffic) is
    // replayed in stage B in node order, making parallel runs bit-identical
    // to serial ones.
    auto compute_node = [&](std::size_t v) {
      success[v] = 0;
      if (net.asleep(static_cast<gossip::NodeId>(v)) || in_pull_phase[v]) {
        return;
      }
      NodeRound& sc = scratch[v];
      SampleView<Element> view;
      if (cfg.sampling == SamplingMode::kPullBased) {
        // Select straight out of the channel's CSR slice: each slice is
        // consumed exactly once per round, so reordering it in place is
        // safe, and the sample stays a zero-copy view into it.
        view = select_distinct_view(
            sample_chan.mutable_responses(static_cast<gossip::NodeId>(v)),
            sampler.target, node_rng[v], sampler.strict);
      } else {
        const std::size_t m = prefix[n];
        sc.resp.clear();
        sc.resp.reserve(pulls);
        for (std::size_t k = 0; k < pulls && m > 0; ++k) {
          net.meter().add_pull(static_cast<gossip::NodeId>(v), 0);
          const std::size_t g = node_rng[v].below(m);
          const auto it =
              std::upper_bound(prefix.begin(), prefix.end(), g) - 1;
          const auto node = static_cast<std::size_t>(it - prefix.begin());
          sc.resp.push_back(store[node].elems[g - *it]);
          net.meter().add_response_bytes(sizeof(Element));
        }
        view = select_distinct_view(std::span<Element>(sc.resp),
                                    sampler.target, node_rng[v],
                                    sampler.strict);
      }
      if (!view.success) return;
      success[v] = 1;
      // A full-size sample left the selection step in uniform random
      // order, so the problem's pre-shuffled local solve applies; lenient
      // short samples keep dedupe order and take the shuffling solve.
      if constexpr (requires { p.solve_shuffled(view.sample); }) {
        sc.sol = view.randomized ? p.solve_shuffled(view.sample)
                                 : p.solve(view.sample);
      } else {
        sc.sol = p.solve(view.sample);
      }
      // W_i: local violators (lines 5-6), pushed in stage B.
      sc.violators.clear();
      for (const auto& h : store[v].view()) {
        if (p.violates(sc.sol, h)) sc.violators.push_back(h);
      }
    };
    if (pool) {
      util::parallel_for(*pool, n, compute_node);
    } else {
      for (std::size_t v = 0; v < n; ++v) compute_node(v);
    }

    // --- Shared-state replay (stage B), in node order. ---
    for (gossip::NodeId v = 0; v < n; ++v) {
      if (net.asleep(v)) continue;
      if (in_pull_phase[v]) {
        const auto got = seed_chan.responses(v);
        if (!got.empty()) {
          seeds_mail.push(v, got.front());
          in_pull_phase[v] = 0;
        }
        continue;
      }
      ++res.stats.sampling_attempts;
      if (!success[v]) {
        ++res.stats.sampling_failures;
        continue;
      }
      const NodeRound& sc = scratch[v];
      if (!found && p.same_value(sc.sol, oracle)) {
        found = true;
        res.solution = sc.sol;
        res.stats.rounds_to_first = t;
        res.stats.reached_optimum = true;
      }
      for (const auto& h : sc.violators) copies_mail.push(v, h);
      if (sc.violators.empty() && cfg.run_termination) {
        term.inject(v, static_cast<std::uint32_t>(t), sc.sol);
      }
    }

    // --- Delivery (received at the beginning of the next round). ---
    seeds_mail.deliver();
    copies_mail.deliver();
    for (gossip::NodeId v = 0; v < n; ++v) {
      for (const auto& h : seeds_mail.inbox(v)) store[v].add_original(h);
      for (const auto& h : copies_mail.inbox(v)) store[v].add_copy(h);
    }

    // --- Filtering (lines 8-9): originals are never deleted. ---
    if (cfg.filtering) {
      for (gossip::NodeId v = 0; v < n; ++v) {
        store[v].filter(node_rng[v], keep_p);
      }
    }

    if (cfg.run_termination) {
      term.round(static_cast<std::uint32_t>(t),
                 [&](gossip::NodeId v) { return store[v].view(); });
    }

    const std::size_t m = total_elements();
    if (m > res.stats.max_total_elements) res.stats.max_total_elements = m;

    const bool done = cfg.run_termination ? term.all_output() : found;
    if (done && t >= cfg.min_rounds) {
      res.stats.rounds_to_all_output = cfg.run_termination ? t : 0;
      break;
    }
  }

  if (cfg.run_termination) {
    for (gossip::NodeId v = 0; v < n; ++v) {
      const auto& out = term.output(v);
      if (!out || !p.same_value(*out, oracle)) {
        res.stats.all_outputs_correct = false;
        break;
      }
    }
    if (term.all_output() && res.stats.all_outputs_correct && !found) {
      // Every node output the optimum via the protocol even though the
      // oracle check never fired (possible only in degenerate instances).
      res.solution = *term.output(0);
      res.stats.reached_optimum = true;
    }
  }

  net.meter().finish();
  res.stats.max_work_per_round = net.meter().max_work_per_round();
  res.stats.total_push_ops = net.meter().total_push_ops();
  res.stats.total_pull_ops = net.meter().total_pull_ops();
  res.stats.total_bytes = net.meter().total_bytes();
  res.stats.final_total_elements = total_elements();
  return res;
}

}  // namespace lpt::core
