// The gossip termination-detection protocol (paper Algorithm 3 + Lemma 12).
//
// When a node's sample produces no local violators, it injects a candidate
// entry (t, B, 1) — iteration stamp, optimal basis of its sample, validity
// bit — and gossips it.  Nodes merge entries per stamp keeping the maximum
// f(B) (ties broken by the lexicographic basis order, as the paper
// prescribes), clear the bit when a local element violates B, and after the
// entry matures (c log n rounds) output f(B) iff the bit survived.
//
// Lemma 12 guarantees: once some node has sampled an optimal basis, all
// nodes output a value equal to f(H) within O(log n) rounds w.h.p., and no
// node ever outputs a non-optimal value.  The property tests exercise both
// directions.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "core/lp_type.hpp"
#include "gossip/mailbox.hpp"
#include "gossip/network.hpp"

namespace lpt::core {

template <LpTypeProblem P>
class TerminationProtocol {
 public:
  using Element = typename P::Element;
  using Solution = typename P::Solution;

  struct Message {
    std::uint32_t t = 0;  // iteration the candidate was injected at
    std::uint8_t x = 1;   // validity bit
    std::vector<Element> basis;

    friend std::size_t wire_size(const Message& m) noexcept {
      return sizeof m.t + sizeof m.x + m.basis.size() * sizeof(Element);
    }
  };

  /// maturity = the paper's c*log n age threshold, in rounds.
  TerminationProtocol(const P& p, gossip::Network& net, std::size_t maturity)
      : p_(&p),
        net_(&net),
        mailbox_(net),
        maturity_(maturity),
        entries_(net.size()),
        outputs_(net.size()) {}

  std::size_t maturity() const noexcept { return maturity_; }

  /// Node v observed W_i = 0 at iteration t: inject (t, basis(R_i), 1).
  void inject(gossip::NodeId v, std::uint32_t t, const Solution& sol) {
    if (outputs_[v]) return;
    merge(v, t, Entry{sol, 1});
    mailbox_.push(v, Message{t, 1, sol.basis});
  }

  /// One protocol round at iteration `t_now`.  `local_view(v)` must return a
  /// std::span<const Element> of node v's current elements (H(v_i)), used
  /// for the validity re-checks.
  template <typename LocalView>
  void round(std::uint32_t t_now, LocalView&& local_view) {
    mailbox_.deliver();
    const std::size_t n = entries_.size();
    for (gossip::NodeId v = 0; v < n; ++v) {
      if (outputs_[v] || net_->asleep(v)) continue;
      // Lines 1-8: merge received entries.
      for (const auto& msg : mailbox_.inbox(v)) {
        merge(v, msg.t, Entry{p_->from_basis(msg.basis), msg.x});
      }
      // Lines 9-15: validity check, maturity, forwarding.
      std::span<const Element> view = local_view(v);
      auto it = entries_[v].begin();
      while (it != entries_[v].end()) {
        Entry& e = it->second;
        if (e.x == 1) {
          for (const auto& h : view) {
            if (p_->violates(e.sol, h)) {
              e.x = 0;  // B is invalid
              break;
            }
          }
        }
        if (it->first + maturity_ < t_now) {  // B is mature
          if (e.x == 1) {
            outputs_[v] = e.sol;
            entries_[v].clear();
            break;
          }
          it = entries_[v].erase(it);
          continue;
        }
        mailbox_.push(v, Message{it->first, e.x, e.sol.basis});
        ++it;
      }
    }
  }

  bool has_output(gossip::NodeId v) const noexcept {
    return outputs_[v].has_value();
  }
  const std::optional<Solution>& output(gossip::NodeId v) const noexcept {
    return outputs_[v];
  }
  bool all_output() const noexcept {
    for (const auto& o : outputs_) {
      if (!o) return false;
    }
    return true;
  }
  std::size_t output_count() const noexcept {
    std::size_t c = 0;
    for (const auto& o : outputs_) c += o.has_value() ? 1 : 0;
    return c;
  }

 private:
  struct Entry {
    Solution sol;
    std::uint8_t x = 1;
  };

  void merge(gossip::NodeId v, std::uint32_t t, Entry incoming) {
    auto [it, inserted] = entries_[v].try_emplace(t, incoming);
    if (inserted) return;
    Entry& mine = it->second;
    const int cmp = solution_order(*p_, incoming.sol, mine.sol);
    if (cmp > 0) {
      mine = std::move(incoming);  // replace by the larger f(B)
    } else if (cmp == 0 && incoming.x < mine.x) {
      mine.x = incoming.x;  // same basis: validity bit is min(x, x')
    }
    // cmp < 0: discard the incoming entry.
  }

  const P* p_;
  gossip::Network* net_;
  gossip::Mailbox<Message> mailbox_;
  std::size_t maturity_;
  std::vector<std::map<std::uint32_t, Entry>> entries_;
  std::vector<std::optional<Solution>> outputs_;
};

}  // namespace lpt::core
