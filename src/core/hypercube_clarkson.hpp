// Distributed Clarkson on a hypercube — the classic baseline of paper
// Section 1.1: "Clarkson's algorithm can easily be transformed into a
// distributed algorithm with expected runtime O(d log^2 n) if n nodes are
// interconnected by a hypercube, because every round of the algorithm can
// be executed in O(log n) communication rounds w.h.p."
//
// Each Clarkson iteration costs a constant number of hypercube collectives
// (weighted-sample prefix sums, sample routing, basis broadcast, violation
// reduce), each ceil(log2 n) rounds, so the total is Theta(d log^2 n) —
// the baseline bench/baselines compares against the gossip engines'
// Theta(d log n).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/lp_type.hpp"
#include "gossip/hypercube.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace lpt::core {

template <LpTypeProblem P>
struct HypercubeClarksonResult {
  typename P::Solution solution;
  std::size_t iterations = 0;        // Clarkson repeat-loop iterations
  std::size_t rounds = 0;            // hypercube communication rounds
  bool converged = false;
};

template <LpTypeProblem P>
HypercubeClarksonResult<P> run_hypercube_clarkson(
    const P& p, std::span<const typename P::Element> h_set,
    std::size_t n_nodes, std::uint64_t seed, std::size_t max_iterations = 0) {
  using Element = typename P::Element;
  HypercubeClarksonResult<P> res;
  LPT_CHECK_MSG(util::is_pow2(n_nodes), "hypercube baseline needs n = 2^k");
  const std::size_t d = p.dimension();
  const std::size_t r = 6 * d * d;
  const std::size_t n = h_set.size();
  if (max_iterations == 0) {
    max_iterations = 64 * d * (util::ceil_log2(n ? n : 1) + 2);
  }

  util::Rng rng(seed);
  gossip::Hypercube hc(n_nodes);

  // Elements randomly distributed over the hypercube nodes, with local
  // Clarkson multiplicities (doubling keeps them exact powers of two).
  struct Local {
    std::vector<Element> elems;
    std::vector<double> weight;
  };
  std::vector<Local> node(n_nodes);
  for (const auto& h : h_set) {
    auto& loc = node[rng.below(n_nodes)];
    loc.elems.push_back(h);
    loc.weight.push_back(1.0);
  }

  if (n <= r) {
    // Small input: one gather + local solve + broadcast.
    res.solution = p.solve(h_set);
    hc.route_messages();
    std::vector<int> dummy(n_nodes, 0);
    hc.broadcast(dummy, 0);
    res.rounds = hc.rounds_used();
    res.converged = true;
    return res;
  }

  std::vector<double> node_weight(n_nodes, 0.0);
  std::vector<Element> sample;
  for (std::size_t it = 0; it < max_iterations; ++it) {
    ++res.iterations;

    // (1) Exclusive prefix sums of per-node total weights: log n rounds.
    for (std::size_t v = 0; v < n_nodes; ++v) {
      double s = 0.0;
      for (double w : node[v].weight) s += w;
      node_weight[v] = s;
    }
    std::vector<double> prefix = node_weight;
    const double total = hc.prefix_sum(prefix);

    // (2) Leader draws r weighted positions; owning nodes resolve them
    //     locally and route the elements to the leader: log n rounds.
    sample.clear();
    for (std::size_t k = 0; k < r; ++k) {
      const double target = rng.uniform() * total;
      std::size_t v = 0;
      for (std::size_t cand = n_nodes; cand-- > 0;) {
        if (prefix[cand] <= target) {
          v = cand;
          break;
        }
      }
      double within = target - prefix[v];
      const auto& loc = node[v];
      std::size_t idx = 0;
      for (; idx + 1 < loc.weight.size(); ++idx) {
        if (within < loc.weight[idx]) break;
        within -= loc.weight[idx];
      }
      if (!loc.elems.empty()) sample.push_back(loc.elems[idx]);
    }
    hc.route_messages();

    // (3) Leader solves the sample and broadcasts the basis: log n rounds.
    const auto sol = p.solve(sample);
    std::vector<int> dummy(n_nodes, 0);
    hc.broadcast(dummy, 0);

    // (4) Local violation tests; all-reduce the violated weight: log n.
    double violated_weight = 0.0;
    bool any_violator = false;
    for (auto& loc : node) {
      for (std::size_t i = 0; i < loc.elems.size(); ++i) {
        if (p.violates(sol, loc.elems[i])) {
          violated_weight += loc.weight[i];
          any_violator = true;
        }
      }
    }
    violated_weight = hc.all_reduce(std::vector<double>(n_nodes, 0.0),
                                    violated_weight,
                                    [](double a, double b) { return a + b; });

    if (!any_violator) {
      res.solution = sol;
      res.converged = true;
      res.rounds = hc.rounds_used();
      return res;
    }
    // (5) Successful iteration: local doubling (no communication).
    if (violated_weight <= total / (3.0 * static_cast<double>(d))) {
      for (auto& loc : node) {
        for (std::size_t i = 0; i < loc.elems.size(); ++i) {
          if (p.violates(sol, loc.elems[i])) loc.weight[i] *= 2.0;
        }
      }
    }
  }
  res.solution = p.solve(h_set);
  res.converged = false;
  res.rounds = hc.rounds_used();
  return res;
}

}  // namespace lpt::core
