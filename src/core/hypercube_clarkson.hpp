// Distributed Clarkson on a hypercube — the classic baseline of paper
// Section 1.1: "Clarkson's algorithm can easily be transformed into a
// distributed algorithm with expected runtime O(d log^2 n) if n nodes are
// interconnected by a hypercube, because every round of the algorithm can
// be executed in O(log n) communication rounds w.h.p."
//
// Each Clarkson iteration costs a constant number of hypercube collectives
// (weighted-sample prefix sums, sample routing, basis broadcast, violation
// reduce), each ceil(log2 n) rounds, so the total is Theta(d log^2 n) —
// the baseline bench/baselines compares against the gossip engines'
// Theta(d log n).
//
// Execution is split the same way as low_load/high_load: a per-node
// compute stage (weight totals, violation scans, multiplicity doubling)
// that touches only node-local state and fans out over a util::ThreadPool
// when HypercubeClarksonConfig::parallel_nodes asks for it, plus a serial
// shared-RNG stage (element placement, the leader's weighted draws, fault
// draws) replayed in a fixed order.  Results — solution, iteration count,
// hypercube round count — are bit-identical for every thread count.
//
// Fault model (cfg.faults): sleeping nodes do not answer the leader's
// sample resolution (their elements yield no reply that iteration), and
// push_loss drops routed sample elements in transit with geometric gap
// draws.  The collective tree itself (prefix sums, broadcast, violation
// reduce) is synchronous and reliable — the baseline's termination
// detection is exact, so faults slow convergence but never corrupt it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/lp_type.hpp"
#include "gossip/hypercube.hpp"
#include "gossip/network.hpp"  // FaultModel
#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lpt::core {

struct HypercubeClarksonConfig {
  std::uint64_t seed = 1;
  std::size_t max_iterations = 0;  // 0: auto cap (64 d (log2 n + 2))
  std::size_t parallel_nodes = 0;  // >1: the per-node compute stage (weight
                                   // totals, violation scans, doubling) and
                                   // the collectives' per-node steps run on
                                   // this many threads.  Bit-identical to
                                   // the serial run: the stage touches only
                                   // node-local state, and every shared-RNG
                                   // draw happens in the serial leader
                                   // stage in a fixed order.
  gossip::FaultModel faults;       // sample-answer sleep + routed-element
                                   // loss (see header comment); the
                                   // collective tree stays reliable.
};

template <LpTypeProblem P>
struct HypercubeClarksonResult {
  typename P::Solution solution;
  std::size_t iterations = 0;        // Clarkson repeat-loop iterations
  std::size_t rounds = 0;            // hypercube communication rounds
  bool converged = false;
};

template <LpTypeProblem P>
HypercubeClarksonResult<P> run_hypercube_clarkson(
    const P& p, std::span<const typename P::Element> h_set,
    std::size_t n_nodes, const HypercubeClarksonConfig& cfg = {}) {
  using Element = typename P::Element;
  HypercubeClarksonResult<P> res;
  // This engine has no WorkMeter (the hypercube collectives count their
  // own rounds), so the registry fold happens here, covering every
  // return path.
  struct ObsGuard {
    const HypercubeClarksonResult<P>* res;
    ~ObsGuard() {
      obs::counter("engine.hypercube.runs").add(1);
      obs::counter("engine.hypercube.rounds").add(res->rounds);
      obs::counter("engine.hypercube.iterations").add(res->iterations);
    }
  } obs_guard{&res};
  LPT_CHECK_MSG(util::is_pow2(n_nodes), "hypercube baseline needs n = 2^k");
  const std::size_t d = p.dimension();
  const std::size_t r = 6 * d * d;
  const std::size_t n = h_set.size();
  std::size_t max_iterations = cfg.max_iterations;
  if (max_iterations == 0) {
    max_iterations = 64 * d * (util::ceil_log2(n ? n : 1) + 2);
  }

  util::Rng master(cfg.seed);
  util::Rng rng = master.child(0);        // placement + leader draws
  util::Rng fault_rng = master.child(1);  // sleep sets + loss gaps

  std::optional<util::ThreadPool> pool;
  if (cfg.parallel_nodes > 1) pool.emplace(cfg.parallel_nodes);
  gossip::Hypercube hc(n_nodes, pool ? &*pool : nullptr);
  gossip::HypercubeChannel<Element> sample_chan(hc);

  // Elements randomly distributed over the hypercube nodes, with local
  // Clarkson multiplicities (doubling keeps them exact powers of two).
  struct Local {
    std::vector<Element> elems;
    std::vector<double> weight;
  };
  std::vector<Local> node(n_nodes);
  for (const auto& h : h_set) {
    auto& loc = node[rng.below(n_nodes)];
    loc.elems.push_back(h);
    loc.weight.push_back(1.0);
  }

  // Elements never move between nodes, so occupancy is fixed at placement:
  // the per-iteration stage-A sweeps (weight totals, violation scans,
  // doubling) visit only the occupied nodes.  Empty nodes keep their
  // zero-initialized node_weight/tallies entries forever, so the
  // collectives see exactly the same inputs as a full scan.
  std::vector<std::size_t> occupied;
  for (std::size_t v = 0; v < n_nodes; ++v) {
    if (!node[v].elems.empty()) occupied.push_back(v);
  }
  auto for_each_occupied = [&](auto&& body) {
    if (pool) {
      util::parallel_for(*pool, occupied.size(),
                         [&](std::size_t k) { body(occupied[k]); });
    } else {
      for (const std::size_t v : occupied) body(v);
    }
  };

  if (n <= r) {
    // Small input: one gather + local solve + broadcast.
    res.solution = p.solve(h_set);
    hc.route_messages();
    std::vector<std::uint8_t> token(n_nodes, 0);
    token[0] = 1;
    hc.broadcast(token, 0);
    res.rounds = hc.rounds_used();
    res.converged = true;
    return res;
  }

  // Geometric-gap loss sampling over the routed sample stream (one draw
  // per lost element, same scheme as the gossip substrate).  Under burst
  // faults the effective rate switches per iteration; the armed gap is
  // invalid across a rate change (a gap drawn at a tiny calm rate is
  // astronomically long), so the stream re-arms on every epoch transition.
  double loss_p = cfg.faults.push_loss;
  gossip::LossStream loss;
  gossip::BurstChain burst;
  bool in_burst = false;
  gossip::StragglerSet stragglers;

  std::vector<std::uint8_t> asleep(n_nodes, 0);
  std::vector<gossip::NodeId> sleeping;

  // The violation reduce carries (violated weight, any-violator flag) in
  // one collective; the combine is commutative, as all_reduce requires.
  struct Tally {
    double weight = 0.0;
    std::uint32_t any = 0;
  };
  auto tally_op = [](const Tally& a, const Tally& b) {
    return Tally{a.weight + b.weight, a.any | b.any};
  };

  std::vector<double> node_weight(n_nodes, 0.0);
  std::vector<double> prefix;  // reused: assignment keeps the capacity
  std::vector<Tally> tallies(n_nodes);
  std::vector<Element> sample;
  std::vector<std::uint8_t> token(n_nodes, 0);
  for (std::size_t it = 0; it < max_iterations; ++it) {
    ++res.iterations;
    obs::trace_tick();  // Clarkson iterations are the sampling unit here
    obs::TraceSpan iter_span("hypercube.iteration", it);

    // Serial fault stage: which nodes sleep through this iteration's
    // sample resolution (geometric gaps: O(sleepers) draws), straggler
    // retire/start draws, and the burst chain's per-iteration step — all
    // gated on their knobs, so fault-free (and i.i.d.-only) configs keep
    // byte-identical RNG streams.
    const bool iid_sleep = cfg.faults.sleep_probability > 0.0;
    const bool straggle = cfg.faults.straggler.enabled();
    if (straggle && !iid_sleep) {
      for (const gossip::NodeId v : sleeping) asleep[v] = 0;
      sleeping.clear();
    }
    if (iid_sleep) {
      gossip::draw_sleep_set(fault_rng, cfg.faults.sleep_probability, n_nodes,
                             asleep, sleeping);
    }
    if (straggle) {
      stragglers.step(fault_rng, cfg.faults.straggler, n_nodes, asleep,
                      sleeping);
    }
    if (cfg.faults.burst.enabled()) {
      const bool was_burst = in_burst;
      in_burst = burst.step(fault_rng, cfg.faults.burst);
      loss_p = in_burst ? cfg.faults.burst.push_loss : cfg.faults.push_loss;
      if (in_burst != was_burst) loss = gossip::LossStream{};
    }

    // (1) Per-node weight totals (stage A, occupied nodes only), then
    //     exclusive prefix sums across the cube: log n rounds.
    for_each_occupied([&](std::size_t v) {
      double s = 0.0;
      for (double w : node[v].weight) s += w;
      node_weight[v] = s;
    });
    prefix = node_weight;
    const double total = hc.prefix_sum(prefix);

    // (2) Serial leader stage: draw r weighted positions; owning nodes
    //     resolve them locally and route the elements to the leader over
    //     the CSR channel: log n rounds.  Sleeping owners give no answer;
    //     push loss drops routed elements with geometric gaps.
    for (std::size_t k = 0; k < r; ++k) {
      const double target = rng.uniform() * total;
      // Owning node: the largest v with prefix[v] <= target.  The prefix
      // array is nondecreasing, so binary search replaces the former
      // backward linear scan — O(log n) instead of O(n) per draw, landing
      // on the same node (upper_bound returns the first entry > target,
      // i.e. one past the last run of equal <= entries, exactly where the
      // backward scan stopped).
      const auto owner_it =
          std::upper_bound(prefix.begin(), prefix.end(), target) - 1;
      const auto v = static_cast<std::size_t>(owner_it - prefix.begin());
      double within = target - prefix[v];
      const auto& loc = node[v];
      std::size_t idx = 0;
      for (; idx + 1 < loc.weight.size(); ++idx) {
        if (within < loc.weight[idx]) break;
        within -= loc.weight[idx];
      }
      if (loc.elems.empty() || asleep[v]) continue;
      if (loss_p > 0.0 && loss.drop(fault_rng, loss_p)) continue;  // lost
      sample_chan.send(static_cast<gossip::NodeId>(v), 0, loc.elems[idx]);
    }
    sample_chan.route();
    const auto routed = sample_chan.inbox(0);
    sample.assign(routed.begin(), routed.end());

    // (3) Leader solves the sample and broadcasts the basis: log n rounds.
    //     (An all-lost sample yields the empty solution, which everything
    //     violates — the iteration is simply wasted, never wrong.)
    const auto sol = p.solve(sample);
    std::fill(token.begin(), token.end(), std::uint8_t{0});
    token[0] = 1;
    hc.broadcast(token, 0);

    // (4) Per-node violation tests (stage A, occupied nodes only), then
    //     one commutative all-reduce of (violated weight, any flag): log n
    //     rounds.  The serial reduce order is the butterfly schedule
    //     either way, so parallel runs match the serial run bit for bit.
    for_each_occupied([&](std::size_t v) {
      Tally t;
      const auto& loc = node[v];
      for (std::size_t i = 0; i < loc.elems.size(); ++i) {
        if (p.violates(sol, loc.elems[i])) {
          t.weight += loc.weight[i];
          t.any = 1;
        }
      }
      tallies[v] = t;
    });
    const Tally reduced = hc.all_reduce(tallies, Tally{}, tally_op);

    if (reduced.any == 0) {
      res.solution = sol;
      res.converged = true;
      res.rounds = hc.rounds_used();
      return res;
    }
    // (5) Successful iteration: local doubling (stage A, no communication).
    if (reduced.weight <= total / (3.0 * static_cast<double>(d))) {
      for_each_occupied([&](std::size_t v) {
        auto& loc = node[v];
        for (std::size_t i = 0; i < loc.elems.size(); ++i) {
          if (p.violates(sol, loc.elems[i])) loc.weight[i] *= 2.0;
        }
      });
    }
  }
  res.solution = p.solve(h_set);
  res.converged = false;
  res.rounds = hc.rounds_used();
  return res;
}

/// Seed-positional form kept for the pre-config call sites.
template <LpTypeProblem P>
HypercubeClarksonResult<P> run_hypercube_clarkson(
    const P& p, std::span<const typename P::Element> h_set,
    std::size_t n_nodes, std::uint64_t seed, std::size_t max_iterations = 0) {
  HypercubeClarksonConfig cfg;
  cfg.seed = seed;
  cfg.max_iterations = max_iterations;
  return run_hypercube_clarkson(p, h_set, n_nodes, cfg);
}

}  // namespace lpt::core
