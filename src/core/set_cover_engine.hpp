// Distributed set cover (paper Section 1.4 / end of Section 4): a thin
// engine that dualizes the instance and runs Algorithm 6 on the hitting
// set side, translating the result back to a cover.
//
// "Then a set cover in (X, S) corresponds to a hitting set in (Y, M)."
// The bounds of Theorem 5 carry over verbatim.
#pragma once

#include "core/hitting_set.hpp"
#include "problems/set_cover.hpp"

namespace lpt::core {

struct SetCoverRunResult {
  std::vector<std::uint32_t> cover;  // indices of chosen sets
  bool valid = false;                // verified against the primal instance
  std::size_t d_used = 0;
  DistributedRunStats stats;
};

/// Solve the set-cover instance over `n_nodes` gossip nodes (one node per
/// candidate set is the natural deployment: the dual universe Y is the set
/// collection, and the dual elements are what is gossiped).
///
/// The full HittingSetConfig applies to the dual run, including
/// `parallel_nodes`: the per-node compute phase of every round (sample
/// selection, hit marking, W_i assembly) threads out with the same
/// stage-A/stage-B split as the Clarkson engines, bit-identical to the
/// serial run for any thread count.
inline SetCoverRunResult run_set_cover(const problems::SetSystem& instance,
                                       std::size_t n_nodes,
                                       const HittingSetConfig& cfg = {}) {
  SetCoverRunResult res;
  const auto dual = problems::dual_of_set_cover(instance);
  problems::HittingSetProblem dual_problem(dual);
  auto hs = run_hitting_set(dual_problem, n_nodes, cfg);
  res.cover = std::move(hs.hitting_set);
  res.d_used = hs.d_used;
  res.stats = hs.stats;
  res.valid = hs.valid && problems::is_set_cover(instance, res.cover);
  return res;
}

}  // namespace lpt::core
