// The LP-type problem framework (Sharir & Welzl; paper Section 1.1).
//
// An LP-type problem (H, f) is presented to the library as a *problem
// object* P with nested Element / Solution types:
//
//   using Element  = ...;   // one constraint / point; small, copyable,
//                           // totally ordered (deterministic tie-breaking)
//   using Solution = ...;   // canonical optimal solution of a subset:
//                           // carries f's value, a witness, and `.basis`
//                           // (the sorted optimal basis, <= dim elements)
//
//   std::size_t dimension() const;                   // combinatorial dim d
//   Solution solve(std::span<const Element>) const;  // f(S), canonical
//   Solution from_basis(std::span<const Element>) const; // re-solve small set
//   bool violates(const Solution&, const Element&) const;
//                       // f(S) < f(S u {h}) given Solution(S)
//   bool value_less(const Solution&, const Solution&) const;   // f(a) < f(b)
//   bool same_value(const Solution&, const Solution&) const;   // f(a) = f(b)
//
// Canonicality contract: solve / from_basis return bit-identical Solutions
// for inputs with the same optimal basis (implementations sort the support
// set and re-derive the witness deterministically).  This gives the unique
// association between f-values and solutions that the paper's locality
// argument and Algorithm 3's tie-breaking both assume.
#pragma once

#include <concepts>
#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace lpt::core {

/// Violator space (Gärtner–Matoušek–Rüst–Škovroň; paper Section 1.3):
/// the structure Clarkson's algorithm actually needs — basis computations
/// and violation tests only, no totally ordered objective.  clarkson_solve
/// and count_violators are constrained on this weaker concept, mirroring
/// the literature's observation that "Clarkson's approach still works for
/// violator spaces".
template <typename P>
concept ViolatorSpace = requires(const P& p,
                                 std::span<const typename P::Element> s,
                                 const typename P::Solution& sol,
                                 const typename P::Element& e) {
  typename P::Element;
  typename P::Solution;
  { p.dimension() } -> std::convertible_to<std::size_t>;
  { p.solve(s) } -> std::same_as<typename P::Solution>;
  { p.from_basis(s) } -> std::same_as<typename P::Solution>;
  { p.violates(sol, e) } -> std::same_as<bool>;
  { sol.basis } -> std::convertible_to<std::vector<typename P::Element>>;
};

/// Full LP-type problem: a violator space whose solutions carry a totally
/// ordered f-value (needed by the MSW solver, the termination protocol's
/// tie-breaking, and the oracles' success checks).
template <typename P>
concept LpTypeProblem =
    ViolatorSpace<P> && requires(const P& p, const typename P::Solution& sol) {
      { p.value_less(sol, sol) } -> std::same_as<bool>;
      { p.same_value(sol, sol) } -> std::same_as<bool>;
    };

/// Total order on solutions: by f-value, ties broken by the lexicographic
/// order of the (sorted) bases.  This is the order Algorithm 3 assumes when
/// it compares candidate bases ("f(B') = f(B) if and only if B' = B,
/// otherwise use a lexicographic ordering as tie breaker").
/// Returns <0, 0, >0 like strcmp.
template <LpTypeProblem P>
int solution_order(const P& p, const typename P::Solution& a,
                   const typename P::Solution& b) {
  if (p.value_less(a, b)) return -1;
  if (p.value_less(b, a)) return 1;
  if (a.basis < b.basis) return -1;
  if (b.basis < a.basis) return 1;
  return 0;
}

/// Count the elements of `range` violating `sol` (the |V| of Clarkson's
/// algorithm / the |W_i| of the distributed engines).
template <ViolatorSpace P>
std::size_t count_violators(const P& p, const typename P::Solution& sol,
                            std::span<const typename P::Element> range) {
  std::size_t c = 0;
  for (const auto& e : range) {
    if (p.violates(sol, e)) ++c;
  }
  return c;
}

// ---------------------------------------------------------------------------
// Axiom checkers (used by the property-test suite).
// ---------------------------------------------------------------------------

struct AxiomReport {
  std::size_t checks = 0;
  std::size_t monotonicity_failures = 0;
  std::size_t locality_failures = 0;
  std::size_t basis_failures = 0;  // f(basis) != f(S) or |basis| > dim

  bool ok() const noexcept {
    return monotonicity_failures == 0 && locality_failures == 0 &&
           basis_failures == 0;
  }
};

/// Verify the LP-type axioms on random subset chains F ⊆ G ⊆ H of the given
/// ground set, plus the basis contract on random subsets.  `trials` chains
/// are sampled with `rng`.
template <LpTypeProblem P>
AxiomReport check_axioms(const P& p,
                         std::span<const typename P::Element> ground,
                         std::size_t trials, util::Rng& rng) {
  using Element = typename P::Element;
  AxiomReport rep;
  const std::size_t n = ground.size();
  for (std::size_t t = 0; t < trials; ++t) {
    // Random nested pair F ⊆ G.
    std::vector<Element> g_set, f_set;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.bernoulli(0.6)) {
        g_set.push_back(ground[i]);
        if (rng.bernoulli(0.6)) f_set.push_back(ground[i]);
      }
    }
    const auto sol_f = p.solve(f_set);
    const auto sol_g = p.solve(g_set);
    ++rep.checks;

    // Monotonicity: f(F) <= f(G).
    if (p.value_less(sol_g, sol_f)) ++rep.monotonicity_failures;

    // Locality: if f(F) = f(G) and f(G) < f(G u {h}) then f(F) < f(F u {h}).
    if (p.same_value(sol_f, sol_g)) {
      for (const auto& h : ground) {
        if (p.violates(sol_g, h) && !p.violates(sol_f, h)) {
          ++rep.locality_failures;
        }
      }
    }

    // Basis contract: f(basis(G)) = f(G), |basis| <= dim, and no element of
    // G violates the basis solution.
    const auto sol_b = p.from_basis(sol_g.basis);
    if (!p.same_value(sol_b, sol_g) || sol_g.basis.size() > p.dimension()) {
      ++rep.basis_failures;
    }
    for (const auto& h : g_set) {
      if (p.violates(sol_g, h)) ++rep.basis_failures;
    }
  }
  return rep;
}

}  // namespace lpt::core
