// The pull-based uniform multiset sampler of Section 2.1.
//
// A node asks s = c*(6d^2 + log2 n) uniformly random nodes (pull
// operations) for a uniformly random element of their current multiset and
// keeps `target` *distinct* returned elements, chosen at random; the
// sampling fails if fewer than `target` distinct elements arrive (Lemma 11:
// with c large enough this happens with polynomially small probability).
//
// `strict` toggles the theory-faithful failure rule.  With strict = false
// (the default used to reproduce the paper's experiments) a short sample is
// returned as-is: on instances with |H| < target the returned R is simply
// all elements seen, which reproduces the Figure 2 observation that
// instances below 2^8 points finish in one round.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "gossip/mailbox.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace lpt::core {

struct SamplerConfig {
  std::size_t target = 0;   // 6d^2 for Clarkson engines; r for Algorithm 6
  double c = 2.0;           // the "sufficiently large constant" c
  std::size_t log_n = 1;    // the nodes' (constant-factor) estimate of log n
  bool strict = false;      // fail on short samples (theory mode)

  std::size_t pulls_per_node() const noexcept {
    const double s = c * (static_cast<double>(target) +
                          static_cast<double>(log_n));
    return static_cast<std::size_t>(s) + 1;
  }
};

/// Outcome of one node's sampling attempt.
template <typename Element>
struct SampleOutcome {
  std::vector<Element> sample;  // R_i (empty on failure)
  bool success = false;
};

/// Select `target` distinct elements at random from the pull responses.
/// Sorting gives canonical distinctness; selection order is randomized as
/// the paper prescribes ("selects 6d^2 distinct elements at random").
template <typename Element>
SampleOutcome<Element> select_distinct(std::vector<Element> responses,
                                       std::size_t target, util::Rng& rng,
                                       bool strict) {
  SampleOutcome<Element> out;
  std::sort(responses.begin(), responses.end());
  responses.erase(std::unique(responses.begin(), responses.end()),
                  responses.end());
  if (responses.size() >= target) {
    rng.shuffle(responses);
    responses.resize(target);
    out.sample = std::move(responses);
    out.success = true;
    return out;
  }
  if (strict) {
    out.success = false;
    return out;
  }
  // Lenient mode: everything seen (small-instance behaviour of Figure 2).
  out.sample = std::move(responses);
  out.success = !out.sample.empty();
  return out;
}

}  // namespace lpt::core
