// The pull-based uniform multiset sampler of Section 2.1.
//
// A node asks s = c*(6d^2 + log2 n) uniformly random nodes (pull
// operations) for a uniformly random element of their current multiset and
// keeps `target` *distinct* returned elements, chosen at random; the
// sampling fails if fewer than `target` distinct elements arrive (Lemma 11:
// with c large enough this happens with polynomially small probability).
//
// `strict` toggles the theory-faithful failure rule.  With strict = false
// (the default used to reproduce the paper's experiments) a short sample is
// returned as-is: on instances with |H| < target the returned R is simply
// all elements seen, which reproduces the Figure 2 observation that
// instances below 2^8 points finish in one round.
#pragma once

#include <algorithm>
#include <bit>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gossip/mailbox.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace lpt::core {

/// distinct_key(e) -> uint64 is the ADL customization point that unlocks
/// the hash-based dedupe fast path in select_distinct_into (it must be
/// consistent with operator==: equal elements, equal keys).  Elements
/// without one fall back to sort + unique.  The built-in overloads are
/// exact-type constrained so no element reaches them through a lossy
/// implicit conversion.
template <std::same_as<std::uint32_t> T>
std::uint64_t distinct_key(T v) noexcept {
  std::uint64_t h =
      (static_cast<std::uint64_t>(v) + 1) * 0x9e3779b97f4a7c15ULL;
  return h ^ (h >> 31);
}

template <std::same_as<double> T>
std::uint64_t distinct_key(T d) noexcept {
  // Normalize -0.0 so the key stays consistent with operator==.
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(d == 0.0 ? 0.0 : d);
  std::uint64_t h = (bits + 1) * 0x9e3779b97f4a7c15ULL;
  return h ^ (h >> 31);
}

namespace detail {

template <typename Element>
concept HasDistinctKey = requires(const Element& e) {
  { distinct_key(e) } -> std::convertible_to<std::uint64_t>;
};

/// Compact `responses` to its distinct elements (arrival order preserved)
/// via open addressing; returns the distinct count.  O(k) expected versus
/// the O(k log k) sort with its branchy element comparisons — the dedupe
/// sat at ~20% of whole-simulation profiles before this path existed.
template <typename Element>
std::size_t dedupe_hashed(std::span<Element> responses) {
  // Epoch-stamped slots: a slot is live only if its upper bits match the
  // current call's epoch, so the table never needs clearing.  Each slot
  // packs (epoch << 32) | (compacted index + 1).
  static thread_local std::vector<std::uint64_t> slots;
  static thread_local std::uint64_t epoch = 0;
  const std::size_t cap =
      std::bit_ceil(std::max<std::size_t>(16, responses.size() * 2));
  if (slots.size() < cap) {
    slots.assign(cap, 0);
    epoch = 0;
  }
  ++epoch;
  if (epoch >> 32 != 0) {  // epoch space exhausted: hard reset
    slots.assign(slots.size(), 0);
    epoch = 1;
  }
  const std::uint64_t tag = epoch << 32;
  const std::uint64_t mask = slots.size() - 1;
  // Pass 1: hash everything in a dependency-free loop (the superscalar
  // core pipelines these); pass 2 probes with the precomputed keys.
  static thread_local std::vector<std::uint64_t> keys;
  keys.resize(responses.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    keys[i] = distinct_key(responses[i]);
  }
  std::size_t w = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    std::uint64_t pos = keys[i] & mask;
    for (;;) {
      const std::uint64_t s = slots[pos];
      if ((s >> 32) != epoch) {
        slots[pos] = tag | (w + 1);
        responses[w++] = responses[i];
        break;
      }
      if (responses[(s & 0xffffffffULL) - 1] == responses[i]) break;  // dup
      pos = (pos + 1) & mask;
    }
  }
  return w;
}

}  // namespace detail

struct SamplerConfig {
  std::size_t target = 0;   // 6d^2 for Clarkson engines; r for Algorithm 6
  double c = 2.0;           // the "sufficiently large constant" c
  std::size_t log_n = 1;    // the nodes' (constant-factor) estimate of log n
  bool strict = false;      // fail on short samples (theory mode)

  std::size_t pulls_per_node() const noexcept {
    const double s = c * (static_cast<double>(target) +
                          static_cast<double>(log_n));
    return static_cast<std::size_t>(s) + 1;
  }
};

/// Outcome of one node's sampling attempt.
template <typename Element>
struct SampleOutcome {
  std::vector<Element> sample;  // R_i (empty on failure)
  bool success = false;
};

/// Select `target` distinct elements at random from the pull responses,
/// clobbering `responses` and writing into `out` (both buffers keep their
/// capacity, so the per-round steady state allocates nothing).  Dedupe is
/// hash-based when the element provides distinct_key() (O(k)), else
/// sort + unique; a partial Fisher–Yates pass then randomizes the
/// selection as the paper prescribes ("selects 6d^2 distinct elements at
/// random") with O(target) RNG draws instead of a full shuffle.
template <typename Element>
void select_distinct_into(std::span<Element> responses, std::size_t target,
                          util::Rng& rng, bool strict,
                          SampleOutcome<Element>& out);  // defined below

/// Vector overload (clobbers `responses`' order, keeps its capacity).
template <typename Element>
void select_distinct_into(std::vector<Element>& responses, std::size_t target,
                          util::Rng& rng, bool strict,
                          SampleOutcome<Element>& out) {
  select_distinct_into(std::span<Element>(responses), target, rng, strict,
                       out);
}

/// Zero-copy view of one sampling attempt: `sample` aliases a prefix of the
/// (reordered) `responses` buffer and is valid only until that buffer is
/// next written.  `randomized` reports whether the sample's order went
/// through the Fisher–Yates pass (lenient short samples keep their dedupe
/// order and are NOT uniformly ordered — callers relying on random input
/// order, e.g. shuffle-free Welzl, must check it).
template <typename Element>
struct SampleView {
  std::span<const Element> sample;
  bool success = false;
  bool randomized = false;
};

/// Like select_distinct_into but without materializing the sample: the
/// returned view points into `responses`.  Used by the engines' hot path,
/// where the sample is consumed by one local solve and discarded.
template <typename Element>
SampleView<Element> select_distinct_view(std::span<Element> responses,
                                         std::size_t target, util::Rng& rng,
                                         bool strict) {
  SampleView<Element> out;
  std::size_t m;
  if constexpr (detail::HasDistinctKey<Element>) {
    m = detail::dedupe_hashed(responses);
  } else {
    std::sort(responses.begin(), responses.end());
    m = static_cast<std::size_t>(
        std::unique(responses.begin(), responses.end()) - responses.begin());
  }
  if (m >= target) {
    for (std::size_t i = 0; i < target; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(rng.below(m - i));
      using std::swap;
      swap(responses[i], responses[j]);
    }
    out.sample = responses.first(target);
    out.success = true;
    out.randomized = true;
    return out;
  }
  if (strict) return out;
  // Lenient mode: everything seen (small-instance behaviour of Figure 2).
  out.sample = responses.first(m);
  out.success = m > 0;
  return out;
}

template <typename Element>
void select_distinct_into(std::span<Element> responses, std::size_t target,
                          util::Rng& rng, bool strict,
                          SampleOutcome<Element>& out) {
  const SampleView<Element> view =
      select_distinct_view(responses, target, rng, strict);
  out.success = view.success;
  out.sample.assign(view.sample.begin(), view.sample.end());
}

/// Value-returning convenience wrapper.
template <typename Element>
SampleOutcome<Element> select_distinct(std::vector<Element> responses,
                                       std::size_t target, util::Rng& rng,
                                       bool strict) {
  SampleOutcome<Element> out;
  select_distinct_into(responses, target, rng, strict, out);
  return out;
}

}  // namespace lpt::core
