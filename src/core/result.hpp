// Shared measurement record for the distributed engines.
//
// Fields mirror what the paper reports: rounds (Figures 2-3 measure rounds
// until at least one node holds the optimum; Lemma 12 adds O(log n) rounds
// until every node outputs), per-node per-round communication work
// (Theorems 3-5), and total load |H(V)| (Lemmas 9 and 20).
#pragma once

#include <cstddef>
#include <cstdint>

namespace lpt::core {

struct DistributedRunStats {
  // Rounds until at least one node's sample/local set attains f(H)
  // (the quantity plotted in Figures 2 and 3).
  std::size_t rounds_to_first = 0;
  // Rounds until every node has produced an output via the Algorithm 3
  // termination protocol (0 when the protocol is disabled).
  std::size_t rounds_to_all_output = 0;

  bool reached_optimum = false;    // some node found f(H) within the cap
  bool all_outputs_correct = true; // every Algorithm 3 output equals f(H)

  // Communication accounting (from gossip::WorkMeter).
  std::uint32_t max_work_per_round = 0;
  std::uint64_t total_push_ops = 0;
  std::uint64_t total_pull_ops = 0;
  std::uint64_t total_bytes = 0;

  // Load accounting: |H(V)| over time (Lemma 9 / Lemma 20 territory).
  std::size_t initial_total_elements = 0;
  std::size_t max_total_elements = 0;
  std::size_t final_total_elements = 0;

  // Section 2.1 sampler diagnostics.
  std::uint64_t sampling_attempts = 0;
  std::uint64_t sampling_failures = 0;

  // Sparse-bookkeeping diagnostics (the large-n engine contract): node
  // touches by the non-sampling bookkeeping loops — stage-B replay walk,
  // filter pass, delivery inbox walks, pull-phase / occupied lists.  The
  // per-node sampling/compute work is inherent to the algorithms and
  // excluded.  `..._total` sums over all rounds: it is O(sum of per-round
  // active sets), where the pre-slab engines paid a fixed >= 4n per round
  // (stage-B scan, two delivery walks, filter walk, store-header walk)
  // regardless of activity — the tests pin the new totals against that
  // floor.  `last_round_...` is the final round alone (what the large-n
  // bench reports for its steady state).
  std::uint64_t bookkeeping_touches_total = 0;
  std::size_t last_round_bookkeeping_touches = 0;
};

}  // namespace lpt::core
