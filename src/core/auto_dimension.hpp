// Unknown combinatorial dimension (paper Section 1.4): "If [the nodes do
// not know d], they may perform a binary search on d (by stopping the
// algorithm if it takes too long for some d to switch to 2d), which does
// not affect our bounds since they depend at least linearly on d."
//
// This wrapper implements that doubling search on top of the Low-Load
// engine.  Each stage runs with dimension guess d' and a round budget
// Theta(d' log n); the Algorithm 3 termination protocol provides the
// *distributed* success signal — its outputs are correct regardless of the
// dimension guess (Lemma 12's validity re-checks do not involve d), so a
// stage that outputs has certifiably found f(H) and the search stops.
#pragma once

#include "core/low_load.hpp"

namespace lpt::core {

template <LpTypeProblem P>
struct AutoDimensionResult {
  typename P::Solution solution;
  DistributedRunStats stats;      // stats of the successful stage
  std::size_t d_used = 0;         // the dimension guess that succeeded
  std::size_t stages = 0;         // how many guesses were tried
  std::size_t total_rounds = 0;   // rounds summed over all stages
  bool success = false;
};

/// Solve (p, h_set) with the Low-Load engine without using p.dimension(),
/// doubling a dimension guess until a stage's termination protocol
/// certifies an optimum.  `base` supplies seeds/faults/sampler settings;
/// its dimension_override, run_termination and max_rounds fields are
/// managed by the search.
template <LpTypeProblem P>
AutoDimensionResult<P> run_low_load_auto_dimension(
    const P& p, std::span<const typename P::Element> h_set,
    std::size_t n_nodes, const LowLoadConfig& base = {},
    std::size_t rounds_per_unit_d = 0) {
  AutoDimensionResult<P> res;
  const std::size_t log_n = util::ceil_log2(n_nodes) + 2;
  if (rounds_per_unit_d == 0) {
    // Budget per stage: enough for Theta(d log n) iterations plus the
    // termination protocol's O(log n) maturity tail.
    rounds_per_unit_d = 12 * log_n;
  }
  for (std::size_t d_guess = 1; d_guess <= 2 * (p.dimension() + 1);
       d_guess *= 2) {
    ++res.stages;
    LowLoadConfig cfg = base;
    cfg.dimension_override = d_guess;
    cfg.run_termination = true;
    cfg.max_rounds = rounds_per_unit_d * d_guess + 4 * log_n;
    cfg.seed = base.seed + 0x9e37 * res.stages;
    auto stage = run_low_load(p, h_set, n_nodes, cfg);
    res.total_rounds += stage.stats.rounds_to_all_output
                            ? stage.stats.rounds_to_all_output
                            : cfg.max_rounds;
    if (stage.stats.rounds_to_all_output != 0) {
      // The protocol certified an output at every node: done.
      res.solution = std::move(stage.solution);
      res.stats = stage.stats;
      res.d_used = d_guess;
      res.success = true;
      return res;
    }
  }
  // Fall back to the true dimension (the guard above means this is only
  // reachable with adversarially small round budgets).
  LowLoadConfig cfg = base;
  cfg.run_termination = true;
  auto stage = run_low_load(p, h_set, n_nodes, cfg);
  res.solution = std::move(stage.solution);
  res.stats = stage.stats;
  res.d_used = p.dimension();
  res.success = stage.stats.reached_optimum;
  res.total_rounds += stage.stats.rounds_to_all_output;
  return res;
}

}  // namespace lpt::core
