// Generic basis-exchange solver in the Sharir–Welzl / MSW framework.
//
// Uses only the two primitives the LP-type literature assumes — violation
// tests and basis computations on sets of size <= d+1 — making it the
// "theory baseline" referenced in the paper's related-work discussion
// (Gärtner & Welzl: an expected linear number of violation tests and basis
// computations suffices at constant dimension).  It doubles as an
// implementation-independent cross-check oracle for the problem adapters.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "core/lp_type.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace lpt::core {

struct MswStats {
  std::size_t violation_tests = 0;
  std::size_t basis_computations = 0;
  bool converged = false;
};

template <LpTypeProblem P>
struct MswResult {
  typename P::Solution solution;
  MswStats stats;
};

/// Solve (H, f) by repeated basis exchange: scan a shuffled order for a
/// violator h of the current basis B and replace B by basis(B u {h}).
/// f strictly increases with every exchange, so the loop terminates.
template <LpTypeProblem P>
MswResult<P> msw_solve(const P& p, std::span<const typename P::Element> h_set,
                       util::Rng& rng) {
  using Element = typename P::Element;
  MswResult<P> res;
  std::vector<Element> order(h_set.begin(), h_set.end());
  rng.shuffle(order);

  auto sol = p.solve(std::span<const Element>{});  // f(∅)
  ++res.stats.basis_computations;

  // Safety cap: the number of exchanges is bounded by the number of
  // distinct f-values; degenerate float stalls abort into the exact solve.
  const std::size_t cap = 64 * (order.size() + 4) * (p.dimension() + 1);
  std::size_t exchanges = 0;
  std::size_t scan = 0;  // move-to-front style rescan position
  while (scan < order.size()) {
    ++res.stats.violation_tests;
    if (!p.violates(sol, order[scan])) {
      ++scan;
      continue;
    }
    // Basis exchange: B <- basis(B u {h}); |B u {h}| <= d + 1.
    std::vector<Element> small = sol.basis;
    small.push_back(order[scan]);
    auto next = p.from_basis(small);
    ++res.stats.basis_computations;
    if (!p.value_less(sol, next)) {
      // Degenerate stall (can only happen through rounding): fall back.
      res.solution = p.solve(order);
      res.stats.converged = false;
      return res;
    }
    sol = std::move(next);
    // Move the violator to the front (classic MSW heuristic) and rescan.
    std::rotate(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(scan),
                order.begin() + static_cast<std::ptrdiff_t>(scan) + 1);
    scan = 0;
    if (++exchanges > cap) {
      res.solution = p.solve(order);
      res.stats.converged = false;
      return res;
    }
  }
  res.solution = std::move(sol);
  res.stats.converged = true;
  return res;
}

}  // namespace lpt::core
