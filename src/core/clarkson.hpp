// Sequential Clarkson algorithm with multiplicities (paper Algorithm 1).
//
// This is the baseline the distributed engines are derived from, and its
// iteration statistics are what Lemmas 1 and 2 bound; the property tests
// and bench/lemma_sampling validate those bounds against this code.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/lp_type.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace lpt::core {

struct ClarksonStats {
  std::size_t iterations = 0;          // repeat-loop iterations
  std::size_t successful_iterations = 0;  // |V(µ)| <= |H(µ)|/(3d)
  std::size_t violation_tests = 0;
  std::size_t basis_computations = 0;
  double final_total_multiplicity = 0.0;
  bool converged = false;
};

template <ViolatorSpace P>
struct ClarksonResult {
  typename P::Solution solution;
  ClarksonStats stats;
};

/// Run Algorithm 1 on ground set `h_set`.  `max_iterations` is a safety cap
/// (the expected iteration count is O(d log n), Lemma 2).
///
/// Note the constraint: Clarkson's algorithm needs only the violator-space
/// primitives (basis computation + violation test), never an ordered
/// objective — the Section 1.3 generality observation.
template <ViolatorSpace P>
ClarksonResult<P> clarkson_solve(const P& p,
                                 std::span<const typename P::Element> h_set,
                                 util::Rng& rng,
                                 std::size_t max_iterations = 0) {
  using Element = typename P::Element;
  ClarksonResult<P> res;
  const std::size_t n = h_set.size();
  const std::size_t d = p.dimension();
  const std::size_t r = 6 * d * d;

  // Line 1: small inputs are solved directly.
  if (n <= r) {
    res.solution = p.solve(h_set);
    res.stats.basis_computations = 1;
    res.stats.converged = true;
    return res;
  }
  if (max_iterations == 0) {
    max_iterations = 64 * d * (util::ceil_log2(n) + 1);
  }

  // Lines 3-4: multiplicities µ_h = 1, maintained in a Fenwick tree so each
  // weighted draw is O(log n).  Multiplicities are stored as doubles: they
  // only ever double, so values stay exact powers of two.
  util::WeightedSampler mu(n, 1.0);

  std::vector<Element> sample;
  std::vector<std::size_t> violators;
  for (std::size_t it = 0; it < max_iterations; ++it) {
    ++res.stats.iterations;
    // Line 6: random multiset R of size r from H(µ) (i.i.d. draws
    // proportional to multiplicity).
    sample.clear();
    for (std::size_t k = 0; k < r; ++k) {
      sample.push_back(h_set[mu.sample(rng)]);
    }
    const auto sol = p.solve(sample);
    ++res.stats.basis_computations;

    // Line 7: V = multiset of violated elements; we track ground-set
    // indices and weigh them by µ.
    violators.clear();
    double violated_weight = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      ++res.stats.violation_tests;
      if (p.violates(sol, h_set[i])) {
        violators.push_back(i);
        violated_weight += mu.weight(i);
      }
    }
    if (violators.empty()) {
      // Line 10: V = ∅ — R already spans an optimal basis.
      res.solution = sol;
      res.stats.final_total_multiplicity = mu.total();
      res.stats.converged = true;
      return res;
    }
    // Lines 8-9: double multiplicities only in successful iterations.
    if (violated_weight <= mu.total() / (3.0 * static_cast<double>(d))) {
      ++res.stats.successful_iterations;
      for (std::size_t i : violators) mu.scale(i, 2.0);
    }
  }
  // Cap hit (probability polynomially small): fall back to the exact solve
  // so callers still get a correct answer, but flag non-convergence.
  res.solution = p.solve(h_set);
  res.stats.final_total_multiplicity = mu.total();
  res.stats.converged = false;
  return res;
}

}  // namespace lpt::core
