// The High-Load Clarkson Algorithm (paper Section 3: Algorithm 5) and its
// accelerated variant (Section 3.1).
//
// Setting: |H| up to poly(n).  Per round every node v_i:
//
//   1. computes an optimal basis B_i of its local multiset H(v_i),
//   2. pushes B_i to C uniformly random nodes (C = 1 is Algorithm 5;
//      C = log^eps n gives the accelerated O(d log n / log log n) variant),
//   3. for every received basis B_j, pushes its local violators
//      W_j = { h in H(v_i) : f(B_j) < f(B_j + h) } to random nodes.
//
// There is no filtering; |H(V)| grows by O(C d n log n) per round w.h.p.
// (Lemma 15, the paper's Chernoff-style higher-moment bound), while copies
// of some optimal-basis element multiply by (C+1) per d rounds (Lemmas 16
// and 17), which forces termination within O(d log n / log(C+1)) rounds.
//
// Theorem 4: O(d log n) rounds at O(d log n) work per round (C = 1), or
// O(d log n / log log n) rounds at O(d log^{1+eps} n) work.
// bench/fig3_high_load reproduces Figure 3; bench/thm4_accelerated sweeps C.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/lp_type.hpp"
#include "core/result.hpp"
#include "core/termination.hpp"
#include "gossip/mailbox.hpp"
#include "gossip/network.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/thread_pool.hpp"

namespace lpt::core {

struct HighLoadConfig {
  std::uint64_t seed = 1;
  std::size_t push_copies = 1;   // the C of Section 3.1 (1 = Algorithm 5)
  bool run_termination = false;  // run Algorithm 3 until every node outputs
  std::size_t termination_maturity = 0;  // 0: 2*ceil(log2 n) + 4
  std::size_t max_rounds = 0;            // 0: auto safety cap
  gossip::FaultModel faults;             // message loss / sleeping nodes
  std::size_t parallel_nodes = 0;  // >1: local basis solves and violator
                                   // scans run on this many threads; shared
                                   // RNG traffic is replayed serially in
                                   // node order, so results are
                                   // bit-identical to the serial run.  The
                                   // pool lives for one run: combining with
                                   // a bench-level --threads sweep
                                   // oversubscribes — pick one level.
};

namespace detail {

/// Wire message carrying a basis (<= d elements, i.e. O(d log n) bits).
template <typename Element>
struct BasisMsg {
  std::vector<Element> basis;

  friend std::size_t wire_size(const BasisMsg& m) noexcept {
    return m.basis.size() * sizeof(Element);
  }
};

}  // namespace detail

template <LpTypeProblem P>
struct HighLoadResultExtras {
  std::size_t max_local_elements = 0;  // max |H(v_i)| seen (Lemma: (1±eps)m/n)
  std::size_t max_single_w = 0;        // max |W_j| pushed at once (Lemma 15)
};

template <LpTypeProblem P>
struct HighLoadResult {
  typename P::Solution solution;
  DistributedRunStats stats;
  HighLoadResultExtras<P> extras;
};

template <LpTypeProblem P>
HighLoadResult<P> run_high_load(const P& p,
                                std::span<const typename P::Element> h_set,
                                std::size_t n_nodes,
                                const HighLoadConfig& cfg = {}) {
  using Element = typename P::Element;
  using Msg = detail::BasisMsg<Element>;

  HighLoadResult<P> res;
  const std::size_t d = p.dimension();
  const std::size_t n = n_nodes;
  const std::size_t c_copies = cfg.push_copies ? cfg.push_copies : 1;
  LPT_CHECK(n >= 1 && d >= 1);
  const auto oracle = p.solve(h_set);
  if (h_set.empty()) {
    res.solution = oracle;
    res.stats.reached_optimum = true;
    return res;
  }

  util::Rng master(cfg.seed);
  gossip::Network net(n, master.child(0), cfg.faults);
  util::Rng dist_rng = master.child(1);

  std::vector<std::vector<Element>> store(n);
  for (const auto& h : h_set) {
    store[dist_rng.below(n)].push_back(h);
  }

  const std::size_t maturity = cfg.termination_maturity
                                   ? cfg.termination_maturity
                                   : 2 * (util::ceil_log2(n) + 2);
  const std::size_t max_rounds =
      cfg.max_rounds ? cfg.max_rounds
                     : 60 * d * (util::ceil_log2(n) + 2) + 8 * maturity + 60;

  gossip::Mailbox<Msg> basis_mail(net);
  gossip::Mailbox<Element> elem_mail(net);
  TerminationProtocol<P> term(p, net, maturity);

  auto total_elements = [&] {
    std::size_t m = 0;
    for (const auto& s : store) m += s.size();
    return m;
  };
  res.stats.initial_total_elements = total_elements();
  res.stats.max_total_elements = res.stats.initial_total_elements;

  // Per-node round scratch for the compute stages; persistent across
  // rounds so the steady state allocates nothing.
  struct NodeRound {
    std::uint8_t has_sol = 0;
    typename P::Solution sol;
    std::vector<Element> violators;  // across all received bases, in order
    std::size_t max_single_w = 0;    // largest per-basis W_j this round
  };
  std::vector<NodeRound> scratch(n);

  std::optional<util::ThreadPool> pool;
  if (cfg.parallel_nodes > 1) pool.emplace(cfg.parallel_nodes);
  auto for_each_node = [&](auto&& body) {
    if (pool) {
      util::parallel_for(*pool, n, body);
    } else {
      for (std::size_t v = 0; v < n; ++v) body(v);
    }
  };

  bool found = false;
  for (std::size_t t = 1; t <= max_rounds; ++t) {
    net.begin_round();

    // Lines 3-4: local basis computation and C pushes.  Nodes holding no
    // element yet have nothing to propose (f(∅) would mark *everything* a
    // violator); they only participate as receivers this round.  The
    // solves touch only node-local state (stage A, parallelizable); the
    // pushes replay serially in node order (stage B), so parallel runs are
    // bit-identical to serial ones.
    for_each_node([&](std::size_t v) {
      NodeRound& sc = scratch[v];
      sc.has_sol = 0;
      if (store[v].empty() || net.asleep(static_cast<gossip::NodeId>(v))) {
        return;
      }
      sc.has_sol = 1;
      sc.sol = p.solve(store[v]);
    });
    for (gossip::NodeId v = 0; v < n; ++v) {
      NodeRound& sc = scratch[v];
      if (!sc.has_sol) continue;
      if (!found && p.same_value(sc.sol, oracle)) {
        found = true;
        res.solution = sc.sol;
        res.stats.rounds_to_first = t;
        res.stats.reached_optimum = true;
      }
      if (cfg.run_termination) {
        term.inject(v, static_cast<std::uint32_t>(t), sc.sol);
      }
      for (std::size_t k = 0; k < c_copies; ++k) {
        basis_mail.push(v, Msg{sc.sol.basis});
      }
      if (store[v].size() > res.extras.max_local_elements) {
        res.extras.max_local_elements = store[v].size();
      }
    }
    basis_mail.deliver();

    // Lines 5-7: violator pushes for every received basis.  Stage A scans
    // locally; stage B pushes in node order.
    for_each_node([&](std::size_t v) {
      NodeRound& sc = scratch[v];
      sc.violators.clear();
      sc.max_single_w = 0;
      if (net.asleep(static_cast<gossip::NodeId>(v))) return;
      for (const auto& msg :
           basis_mail.inbox(static_cast<gossip::NodeId>(v))) {
        const auto sol_j = p.from_basis(msg.basis);
        std::size_t w = 0;
        for (const auto& h : store[v]) {
          if (p.violates(sol_j, h)) {
            sc.violators.push_back(h);
            ++w;
          }
        }
        if (w > sc.max_single_w) sc.max_single_w = w;
      }
    });
    for (gossip::NodeId v = 0; v < n; ++v) {
      const NodeRound& sc = scratch[v];
      for (const auto& h : sc.violators) elem_mail.push(v, h);
      if (sc.max_single_w > res.extras.max_single_w) {
        res.extras.max_single_w = sc.max_single_w;
      }
    }
    elem_mail.deliver();

    // Line 8: add received elements.
    for (gossip::NodeId v = 0; v < n; ++v) {
      for (const auto& h : elem_mail.inbox(v)) store[v].push_back(h);
    }

    if (cfg.run_termination) {
      term.round(static_cast<std::uint32_t>(t), [&](gossip::NodeId v) {
        return std::span<const Element>(store[v].data(), store[v].size());
      });
    }

    const std::size_t m = total_elements();
    if (m > res.stats.max_total_elements) res.stats.max_total_elements = m;

    const bool done = cfg.run_termination ? term.all_output() : found;
    if (done) {
      res.stats.rounds_to_all_output = cfg.run_termination ? t : 0;
      break;
    }
  }

  if (cfg.run_termination) {
    for (gossip::NodeId v = 0; v < n; ++v) {
      const auto& out = term.output(v);
      if (!out || !p.same_value(*out, oracle)) {
        res.stats.all_outputs_correct = false;
        break;
      }
    }
  }

  net.meter().finish();
  res.stats.max_work_per_round = net.meter().max_work_per_round();
  res.stats.total_push_ops = net.meter().total_push_ops();
  res.stats.total_pull_ops = net.meter().total_pull_ops();
  res.stats.total_bytes = net.meter().total_bytes();
  res.stats.final_total_elements = total_elements();
  return res;
}

}  // namespace lpt::core
