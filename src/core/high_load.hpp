// The High-Load Clarkson Algorithm (paper Section 3: Algorithm 5) and its
// accelerated variant (Section 3.1).
//
// Setting: |H| up to poly(n).  Per round every node v_i:
//
//   1. computes an optimal basis B_i of its local multiset H(v_i),
//   2. pushes B_i to C uniformly random nodes (C = 1 is Algorithm 5;
//      C = log^eps n gives the accelerated O(d log n / log log n) variant),
//   3. for every received basis B_j, pushes its local violators
//      W_j = { h in H(v_i) : f(B_j) < f(B_j + h) } to random nodes.
//
// There is no filtering; |H(V)| grows by O(C d n log n) per round w.h.p.
// (Lemma 15, the paper's Chernoff-style higher-moment bound), while copies
// of some optimal-basis element multiply by (C+1) per d rounds (Lemmas 16
// and 17), which forces termination within O(d log n / log(C+1)) rounds.
//
// Theorem 4: O(d log n) rounds at O(d log n) work per round (C = 1), or
// O(d log n / log log n) rounds at O(d log^{1+eps} n) work.
// bench/fig3_high_load reproduces Figure 3; bench/thm4_accelerated sweeps C.
//
// ## Simulator cost per round (the large-n engine contract)
//
// Elements live in a slab-backed gossip::NodeStore (O(1) incremental
// |H(V)|, contiguous per-node storage), and every per-round walk runs over
// the *occupied* node list — the sorted ids of nodes holding at least one
// element, grown incrementally from the delivery receiver lists — or over
// the CSR receiver lists themselves.  Early rounds therefore cost
// O(occupied + messages) instead of O(n); once the element spread
// saturates (occupied ~ n) every visited node is doing real per-round
// algorithm work, so the bookkeeping stays proportional to useful work.
// DistributedRunStats::last_round_bookkeeping_touches records the final
// round's bookkeeping node-touches.
//
// ## Determinism
//
// One run is a pure function of (problem, h_set, n_nodes, cfg).
// cfg.parallel_nodes only moves the stage-A compute (local basis solves,
// violator scans — node-local state, no RNG) onto a pool; every shared-RNG
// effect (basis and violator pushes) is replayed serially in ascending
// node order over the sorted occupied list, so results are bit-identical
// for every thread count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/churn.hpp"
#include "core/lp_type.hpp"
#include "core/result.hpp"
#include "core/termination.hpp"
#include "gossip/mailbox.hpp"
#include "gossip/network.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/thread_pool.hpp"

namespace lpt::core {

/// Configuration for run_high_load.  Every field participates in the
/// determinism contract above except parallel_nodes, which is guaranteed
/// not to (bit-identical results for any value).
struct HighLoadConfig {
  std::uint64_t seed = 1;
  std::size_t push_copies = 1;   // the C of Section 3.1 (1 = Algorithm 5)
  bool run_termination = false;  // run Algorithm 3 until every node outputs
  std::size_t termination_maturity = 0;  // 0: 2*ceil(log2 n) + 4
  std::size_t max_rounds = 0;            // 0: auto safety cap
  gossip::FaultModel faults;             // message loss / sleeping nodes
  const ChurnSchedule* churn = nullptr;  // nodes leaving/joining mid-run with
                                         // store handoff (core/churn.hpp);
                                         // incompatible with run_termination
  std::size_t parallel_nodes = 0;  // >1: local basis solves and violator
                                   // scans run on this many threads; shared
                                   // RNG traffic is replayed serially in
                                   // node order, so results are
                                   // bit-identical to the serial run.  The
                                   // pool lives for one run: combining with
                                   // a bench-level --threads sweep
                                   // oversubscribes — pick one level.
};

namespace detail {

/// Wire message carrying a basis (<= d elements, i.e. O(d log n) bits).
template <typename Element>
struct BasisMsg {
  std::vector<Element> basis;

  friend std::size_t wire_size(const BasisMsg& m) noexcept {
    return m.basis.size() * sizeof(Element);
  }
};

}  // namespace detail

template <LpTypeProblem P>
struct HighLoadResultExtras {
  std::size_t max_local_elements = 0;  // max |H(v_i)| seen (Lemma: (1±eps)m/n)
  std::size_t max_single_w = 0;        // max |W_j| pushed at once (Lemma 15)
};

template <LpTypeProblem P>
struct HighLoadResult {
  typename P::Solution solution;
  DistributedRunStats stats;
  HighLoadResultExtras<P> extras;
};

template <LpTypeProblem P>
HighLoadResult<P> run_high_load(const P& p,
                                std::span<const typename P::Element> h_set,
                                std::size_t n_nodes,
                                const HighLoadConfig& cfg = {}) {
  using Element = typename P::Element;
  using Msg = detail::BasisMsg<Element>;

  HighLoadResult<P> res;
  const std::size_t d = p.dimension();
  const std::size_t n = n_nodes;
  const std::size_t c_copies = cfg.push_copies ? cfg.push_copies : 1;
  LPT_CHECK(n >= 1 && d >= 1);
  const auto oracle = p.solve(h_set);
  if (h_set.empty()) {
    res.solution = oracle;
    res.stats.reached_optimum = true;
    return res;
  }

  util::Rng master(cfg.seed);
  gossip::Network net(n, master.child(0), cfg.faults);
  util::Rng dist_rng = master.child(1);

  gossip::NodeStore<Element> store(n);
  for (const auto& h : h_set) {
    store.add_copy(static_cast<gossip::NodeId>(dist_rng.below(n)), h);
  }

  // The sorted ids of nodes that have *ever* held an element.  Occupancy is
  // monotone even under churn (a leaver stays listed with an empty store and
  // is skipped by the per-round stages): newly occupied nodes are collected
  // from each delivery's receiver list — deduplicated via occ_flag — and
  // merged in.
  std::vector<gossip::NodeId> occupied;
  std::vector<std::uint8_t> occ_flag(n, 0);
  for (gossip::NodeId v = 0; v < n; ++v) {
    if (store.size(v) != 0) {
      occupied.push_back(v);
      occ_flag[v] = 1;
    }
  }
  std::vector<gossip::NodeId> newly_occupied;

  // Churn (core/churn.hpp): membership bookkeeping plus a schedule cursor.
  const bool churn_on = cfg.churn != nullptr && !cfg.churn->empty();
  LPT_CHECK_MSG(!(churn_on && cfg.run_termination),
                "run_high_load: churn is incompatible with run_termination");
  std::optional<ChurnState> members;
  if (churn_on) members.emplace(n);
  detail::ChurnCursor churn_cursor(churn_on ? cfg.churn : nullptr);
  std::vector<Element> handoff_scratch;
  auto absent = [&](gossip::NodeId v) {
    return churn_on && !members->present(v);
  };

  const std::size_t maturity = cfg.termination_maturity
                                   ? cfg.termination_maturity
                                   : 2 * (util::ceil_log2(n) + 2);
  const std::size_t max_rounds =
      cfg.max_rounds ? cfg.max_rounds
                     : 60 * d * (util::ceil_log2(n) + 2) + 8 * maturity + 60;
  // Round-bound hint: keeps the meter's per-round push_back realloc-free.
  net.meter().reserve_rounds(max_rounds + 1);

  gossip::Mailbox<Msg> basis_mail(net);
  gossip::Mailbox<Element> elem_mail(net);
  TerminationProtocol<P> term(p, net, maturity);

  res.stats.initial_total_elements = store.total_elements();
  res.stats.max_total_elements = res.stats.initial_total_elements;

  // Per-node round scratch for the compute stages; persistent across
  // rounds so the steady state allocates nothing.  Only occupied nodes are
  // ever visited; the rest keep their zero-initialized state.
  struct NodeRound {
    std::uint8_t has_sol = 0;
    typename P::Solution sol;
    std::vector<Element> violators;  // across all received bases, in order
    std::size_t max_single_w = 0;    // largest per-basis W_j this round
  };
  std::vector<NodeRound> scratch(n);

  std::optional<util::ThreadPool> pool;
  if (cfg.parallel_nodes > 1) pool.emplace(cfg.parallel_nodes);
  auto for_each_occupied = [&](auto&& body) {
    if (pool) {
      util::parallel_for(*pool, occupied.size(),
                         [&](std::size_t k) { body(occupied[k]); });
    } else {
      for (const gossip::NodeId v : occupied) body(v);
    }
  };

  bool found = false;
  for (std::size_t t = 1; t <= max_rounds; ++t) {
    net.begin_round();
    obs::trace_tick();  // rounds are the engine's sampling unit
    obs::TraceSpan round_span("high_load.round", t);
    std::size_t bookkeeping = 0;

    // --- Churn events due this round.  A leaver hands its whole store off
    // to uniformly random present nodes (all high-load elements are copies)
    // and then sits empty; a joiner simply becomes present again and
    // refills through normal deliveries.  The leaver's elements are staged
    // through scratch first: add_copy on a target can grow the slab arena
    // the leaver's view points into.
    for (const ChurnEvent& ev : churn_cursor.events_due(t)) {
      const gossip::NodeId v = ev.node;
      if (ev.join) {
        members->join(v);
        continue;
      }
      members->leave(v);  // before handoff: targets exclude the leaver
      const std::span<const Element> view = store.view(v);
      if (view.empty()) continue;
      handoff_scratch.assign(view.begin(), view.end());
      store.clear_node(v);
      newly_occupied.clear();
      for (const Element& h : handoff_scratch) {
        const gossip::NodeId target = members->draw_present(net.rng());
        if (!occ_flag[target]) {
          occ_flag[target] = 1;
          newly_occupied.push_back(target);
        }
        store.add_copy(target, h);
      }
      if (!newly_occupied.empty()) {
        std::sort(newly_occupied.begin(), newly_occupied.end());
        const std::size_t mid = occupied.size();
        occupied.insert(occupied.end(), newly_occupied.begin(),
                        newly_occupied.end());
        std::inplace_merge(
            occupied.begin(),
            occupied.begin() + static_cast<std::ptrdiff_t>(mid),
            occupied.end());
      }
    }

    // Lines 3-4: local basis computation and C pushes.  Nodes holding no
    // element yet have nothing to propose (f(∅) would mark *everything* a
    // violator); they only participate as receivers this round.  The
    // solves touch only node-local state (stage A, parallelizable); the
    // pushes replay serially in ascending node order (stage B, the sorted
    // occupied list), so parallel runs are bit-identical to serial ones.
    for_each_occupied([&](gossip::NodeId v) {
      NodeRound& sc = scratch[v];
      sc.has_sol = 0;
      // A departed node's store is empty (cleared on leave): no proposal.
      if (net.asleep(v) || store.size(v) == 0) return;
      sc.has_sol = 1;
      sc.sol = p.solve(store.view(v));
    });
    for (const gossip::NodeId v : occupied) {
      ++bookkeeping;
      NodeRound& sc = scratch[v];
      if (!sc.has_sol) continue;
      if (!found && p.same_value(sc.sol, oracle)) {
        found = true;
        res.solution = sc.sol;
        res.stats.rounds_to_first = t;
        res.stats.reached_optimum = true;
      }
      if (cfg.run_termination) {
        term.inject(v, static_cast<std::uint32_t>(t), sc.sol);
      }
      for (std::size_t k = 0; k < c_copies; ++k) {
        basis_mail.push(v, Msg{sc.sol.basis});
      }
      if (store.size(v) > res.extras.max_local_elements) {
        res.extras.max_local_elements = store.size(v);
      }
    }
    basis_mail.deliver();

    // Lines 5-7: violator pushes for every received basis.  Stage A scans
    // locally (only occupied nodes can produce violators — an empty store
    // has none to offer, so basis copies landing on empty nodes need no
    // scan); stage B pushes in ascending node order.
    for_each_occupied([&](gossip::NodeId v) {
      NodeRound& sc = scratch[v];
      sc.violators.clear();
      sc.max_single_w = 0;
      if (net.asleep(v) || store.size(v) == 0) return;
      for (const auto& msg : basis_mail.inbox(v)) {
        const auto sol_j = p.from_basis(msg.basis);
        std::size_t w = 0;
        for (const auto& h : store.view(v)) {
          if (p.violates(sol_j, h)) {
            sc.violators.push_back(h);
            ++w;
          }
        }
        if (w > sc.max_single_w) sc.max_single_w = w;
      }
    });
    for (const gossip::NodeId v : occupied) {
      ++bookkeeping;
      const NodeRound& sc = scratch[v];
      for (const auto& h : sc.violators) elem_mail.push(v, h);
      if (sc.max_single_w > res.extras.max_single_w) {
        res.extras.max_single_w = sc.max_single_w;
      }
    }
    elem_mail.deliver();

    // Line 8: add received elements — walk only the receiving inboxes,
    // collecting nodes that just became occupied.
    newly_occupied.clear();
    for (const gossip::NodeId v : elem_mail.receivers()) {
      ++bookkeeping;
      if (absent(v)) continue;  // departed: drop (pushers retain copies)
      if (!occ_flag[v]) {
        occ_flag[v] = 1;
        newly_occupied.push_back(v);
      }
      for (const auto& h : elem_mail.inbox(v)) store.add_copy(v, h);
    }
    if (!newly_occupied.empty()) {
      std::sort(newly_occupied.begin(), newly_occupied.end());
      const std::size_t mid = occupied.size();
      occupied.insert(occupied.end(), newly_occupied.begin(),
                      newly_occupied.end());
      std::inplace_merge(occupied.begin(),
                         occupied.begin() + static_cast<std::ptrdiff_t>(mid),
                         occupied.end());
    }

    if (cfg.run_termination) {
      term.round(static_cast<std::uint32_t>(t),
                 [&](gossip::NodeId v) { return store.view(v); });
    }

    const std::size_t m = store.total_elements();
    if (m > res.stats.max_total_elements) res.stats.max_total_elements = m;
    res.stats.bookkeeping_touches_total += bookkeeping;
    res.stats.last_round_bookkeeping_touches = bookkeeping;

    const bool done = cfg.run_termination ? term.all_output() : found;
    if (done) {
      res.stats.rounds_to_all_output = cfg.run_termination ? t : 0;
      break;
    }
  }

  if (cfg.run_termination) {
    for (gossip::NodeId v = 0; v < n; ++v) {
      const auto& out = term.output(v);
      if (!out || !p.same_value(*out, oracle)) {
        res.stats.all_outputs_correct = false;
        break;
      }
    }
  }

  net.meter().finish();
  res.stats.max_work_per_round = net.meter().max_work_per_round();
  res.stats.total_push_ops = net.meter().total_push_ops();
  res.stats.total_pull_ops = net.meter().total_pull_ops();
  res.stats.total_bytes = net.meter().total_bytes();
  res.stats.final_total_elements = store.total_elements();
  obs::counter("engine.high_load.runs").add(1);
  obs::counter("engine.high_load.rounds").add(res.stats.rounds_to_first);
  obs::gauge("engine.high_load.store_arena_bytes")
      .set(static_cast<std::int64_t>(store.arena_bytes()));
  return res;
}

}  // namespace lpt::core
