#include "scenarios/dynamic_input.hpp"

#include "geometry/circle.hpp"
#include "util/assert.hpp"

namespace lpt::scenarios {

namespace {

bool near(const geom::Vec2& a, const geom::Vec2& b) noexcept {
  return geom::dist2(a, b) <= geom::Circle::kEps * geom::Circle::kEps;
}

}  // namespace

DynamicMinDisk::DynamicMinDisk(std::span<const geom::Vec2> points)
    : pts_(points.begin(), points.end()) {
  cur_ = geom::min_disk(pts_);
  ++stats_.full_solves;
}

void DynamicMinDisk::warm_resolve(const geom::Vec2* extra,
                                  const geom::Vec2* removed) {
  // Support-first ordering: Welzl discovers the new basis within the first
  // |support| + 1 points, then the remaining points are mere containment
  // checks.  Duplicates (support points also appear in pts_) are harmless
  // for minimum enclosing disk — but a just-removed support point must not
  // be resurrected through the carried-over prefix.
  scratch_.clear();
  scratch_.reserve(cur_.support.size() + 1 + pts_.size());
  if (extra != nullptr) scratch_.push_back(*extra);
  for (const geom::Vec2& s : cur_.support) {
    if (removed != nullptr && near(s, *removed)) continue;
    scratch_.push_back(s);
  }
  scratch_.insert(scratch_.end(), pts_.begin(), pts_.end());
  cur_ = geom::min_disk_preshuffled(scratch_);
  ++stats_.warm_solves;
}

void DynamicMinDisk::insert(const geom::Vec2& p) {
  if (!cur_.disk.empty() && cur_.disk.contains(p)) {
    pts_.push_back(p);
    ++stats_.cheap_inserts;
    return;
  }
  pts_.push_back(p);
  warm_resolve(&pts_.back(), nullptr);
}

void DynamicMinDisk::erase(std::size_t index) {
  LPT_CHECK_MSG(index < pts_.size(), "DynamicMinDisk::erase out of range");
  const geom::Vec2 q = pts_[index];
  pts_[index] = pts_.back();
  pts_.pop_back();
  bool touches_support = false;
  for (const geom::Vec2& s : cur_.support) {
    if (near(q, s)) {
      touches_support = true;
      break;
    }
  }
  if (!touches_support) {
    // All support points survive, so the old disk still encloses the
    // remainder and no smaller disk can (it would beat the support's own
    // minimum disk) — the optimum is unchanged.
    ++stats_.cheap_erases;
    return;
  }
  warm_resolve(nullptr, &q);
}

}  // namespace lpt::scenarios
