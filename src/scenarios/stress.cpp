#include "scenarios/stress.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "core/high_load.hpp"
#include "core/hitting_set.hpp"
#include "core/hypercube_clarkson.hpp"
#include "core/low_load.hpp"
#include "problems/hitting_set_problem.hpp"
#include "problems/min_disk.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "workloads/hs_data.hpp"

namespace lpt::scenarios {

const char* engine_name(EngineKind e) {
  switch (e) {
    case EngineKind::kLowLoad:
      return "low-load";
    case EngineKind::kHighLoad:
      return "high-load";
    case EngineKind::kHypercube:
      return "hypercube";
    case EngineKind::kHittingSet:
      return "hitting-set";
  }
  return "?";
}

const char* transport_name(StressTransport t) {
  switch (t) {
    case StressTransport::kSerial:
      return "serial";
    case StressTransport::kInProc:
      return "inproc";
    case StressTransport::kPipe:
      return "pipe";
    case StressTransport::kSocket:
      return "socket";
    case StressTransport::kPipeKill:
      return "pipe-kill";
    case StressTransport::kSocketKill:
      return "socket-kill";
  }
  return "?";
}

std::uint64_t tuple_seed(std::uint64_t base, const StressTuple& t) {
  // FNV-1a over the tuple fields, seeded by the base: distinct tuples get
  // decorrelated streams, and the same (base, tuple) always reproduces.
  std::uint64_t h = 0xcbf29ce484222325ull ^ base;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(static_cast<std::uint64_t>(t.scenario) + 1);
  mix(static_cast<std::uint64_t>(t.engine) + 11);
  mix(static_cast<std::uint64_t>(t.dataset) + 101);
  mix(static_cast<std::uint64_t>(t.transport) + 1009);
  mix(static_cast<std::uint64_t>(t.n));
  return h;
}

namespace {

constexpr std::uint64_t kDefaultStressSeed = 0x5eedc0deull;

std::uint64_t& seed_slot() {
  static std::uint64_t seed = [] {
    if (const char* env = std::getenv("LPT_STRESS_SEED")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 0);
      if (end != env && *end == '\0') return static_cast<std::uint64_t>(v);
    }
    return kDefaultStressSeed;
  }();
  return seed;
}

/// Round-envelope constant per (scenario, engine): the asserted bound is
/// C * (ceil_log2(n) + 2).  Values are generous multiples of observed
/// behavior but meaningfully below the engines' own safety caps, so a
/// Θ(log n) regression (or an adversarial schedule defeating the
/// guarantee) trips the assert rather than timing out.
std::size_t envelope_c(ScenarioKind s, EngineKind e) {
  const bool faulty = s != ScenarioKind::kBaseline &&
                      s != ScenarioKind::kDynamic;
  switch (e) {
    case EngineKind::kLowLoad:
      if (!faulty) return 10;
      return s == ScenarioKind::kChurnBurst ? 40 : 30;
    case EngineKind::kHighLoad:
      if (!faulty) return 10;
      return s == ScenarioKind::kChurnBurst ? 50 : 40;
    case EngineKind::kHypercube:
      return faulty ? 80 : 40;  // bound on Clarkson iterations
    case EngineKind::kHittingSet:
      return faulty ? 60 : 30;  // scaled by d_used at the call site
  }
  return 40;
}

shard::ShardConfig make_shard_config(StressTransport t,
                                     shard::ShardRecoveryStats* out) {
  shard::ShardConfig sc;
  if (t == StressTransport::kSerial) return sc;
  sc.shards = 2;
  sc.recovery_out = out;
  switch (t) {
    case StressTransport::kInProc:
      sc.transport = shard::TransportKind::kInProc;
      break;
    case StressTransport::kPipe:
    case StressTransport::kPipeKill:
      sc.transport = shard::TransportKind::kPipe;
      break;
    case StressTransport::kSocket:
    case StressTransport::kSocketKill:
      sc.transport = shard::TransportKind::kSocket;
      break;
    default:
      break;
  }
  if (t == StressTransport::kPipeKill || t == StressTransport::kSocketKill) {
    shard::FaultEvent kill;
    kill.shard = 1;
    kill.op = shard::FaultOp::kKillWorker;
    kill.at_frame = 1;
    sc.fault_script.push_back(kill);
  }
  return sc;
}

void fill_min_disk_outcome(StressOutcome& out, const problems::MinDisk& p,
                           std::span<const geom::Vec2> points,
                           const problems::MinDiskSolution& sol) {
  out.ref_disk = p.solve(points).disk;
  out.disk = sol.disk;
  out.basis = sol.basis;
  out.points.assign(points.begin(), points.end());
}

StressOutcome run_dynamic_tuple(const StressTuple& t, std::uint64_t ts,
                                const ScenarioScript& script) {
  StressOutcome out;
  problems::MinDisk p;
  util::Rng data_rng(ts ^ 0xda7ada7aull);
  std::vector<geom::Vec2> points =
      workloads::generate_disk_dataset(t.dataset, t.n, data_rng);

  DynamicMinDisk dyn(points);
  util::Rng upd_rng(ts ^ 0x0bda7e5ull);
  out.round_cap = envelope_c(ScenarioKind::kDynamic, t.engine) *
                  (util::ceil_log2(t.n) + 2);
  out.reached = true;
  for (std::size_t epoch = 0; epoch < script.dynamic_epochs; ++epoch) {
    for (std::size_t u = 0; u < script.dynamic_updates; ++u) {
      const geom::Circle disk = dyn.result().disk;
      const std::uint64_t kind = upd_rng.below(5);
      if (kind < 2 && dyn.points().size() > 8) {
        dyn.erase(upd_rng.below(dyn.points().size()));
        continue;
      }
      const double ang = upd_rng.uniform() * 6.283185307179586;
      const geom::Vec2 dir{std::cos(ang), std::sin(ang)};
      // Mostly inside-disk inserts (the O(1) path), occasionally a
      // violating point so the warm re-solve path is exercised too.
      const double radial = kind == 4
                                ? disk.radius * (1.05 + 0.5 * upd_rng.uniform())
                                : disk.radius * 0.9 * upd_rng.uniform();
      dyn.insert(disk.center + dir * radial);
    }
    // Solve the updated instance with the distributed engine and check it
    // agrees with the incremental structure (the caller asserts radii).
    core::LowLoadConfig cfg;
    cfg.seed = ts + 1000003 * (epoch + 1);
    const auto res = core::run_low_load(
        p, std::span<const geom::Vec2>(dyn.points()), t.n, cfg);
    out.reached = out.reached && res.stats.reached_optimum;
    out.rounds = std::max(out.rounds, res.stats.rounds_to_first);
    if (epoch + 1 == script.dynamic_epochs) {
      fill_min_disk_outcome(out, p, dyn.points(), res.solution);
    }
  }
  out.dyn = dyn.stats();
  return out;
}

}  // namespace

StressOutcome run_stress_tuple(const StressTuple& t,
                               std::uint64_t base_seed) {
  const std::uint64_t ts = tuple_seed(base_seed, t);
  ScenarioScript script = compile_scenario(t.scenario, t.n, ts);
  StressOutcome out;
  out.expect_kill = t.transport == StressTransport::kPipeKill ||
                    t.transport == StressTransport::kSocketKill;
  const std::size_t log_term = util::ceil_log2(t.n) + 2;

  if (t.scenario == ScenarioKind::kDynamic) {
    LPT_CHECK_MSG(t.engine == EngineKind::kLowLoad &&
                      t.transport == StressTransport::kSerial,
                  "dynamic tuples run the serial low-load engine");
    return run_dynamic_tuple(t, ts, script);
  }

  switch (t.engine) {
    case EngineKind::kLowLoad: {
      problems::MinDisk p;
      util::Rng data_rng(ts ^ 0xda7ada7aull);
      const std::vector<geom::Vec2> points =
          workloads::generate_disk_dataset(t.dataset, t.n, data_rng);
      core::LowLoadConfig cfg;
      cfg.seed = ts;
      cfg.faults = script.faults;
      if (script.has_churn()) cfg.churn = &script.churn;
      cfg.shard = make_shard_config(t.transport, &out.recovery);
      // Kill tuples also run the termination protocol: its confirmation
      // rounds keep stage-A frames flowing after the scripted SIGKILL, so
      // the death is always *detected* — a kill that races its result into
      // the stream is only noticed on the next send, and a fast-converging
      // run might otherwise never send one.
      if (out.expect_kill) cfg.run_termination = true;
      const auto res = core::run_low_load(
          p, std::span<const geom::Vec2>(points), t.n, cfg);
      out.reached = res.stats.reached_optimum;
      out.rounds = res.stats.rounds_to_first;
      out.round_cap = envelope_c(t.scenario, t.engine) * log_term;
      fill_min_disk_outcome(out, p, points, res.solution);
      break;
    }
    case EngineKind::kHighLoad: {
      LPT_CHECK_MSG(t.transport == StressTransport::kSerial,
                    "high-load stress tuples run serial");
      problems::MinDisk p;
      util::Rng data_rng(ts ^ 0xda7ada7aull);
      const std::vector<geom::Vec2> points =
          workloads::generate_disk_dataset(t.dataset, t.n, data_rng);
      core::HighLoadConfig cfg;
      cfg.seed = ts;
      cfg.faults = script.faults;
      if (script.has_churn()) cfg.churn = &script.churn;
      const auto res = core::run_high_load(
          p, std::span<const geom::Vec2>(points), t.n, cfg);
      out.reached = res.stats.reached_optimum;
      out.rounds = res.stats.rounds_to_first;
      out.round_cap = envelope_c(t.scenario, t.engine) * log_term;
      fill_min_disk_outcome(out, p, points, res.solution);
      break;
    }
    case EngineKind::kHypercube: {
      LPT_CHECK_MSG(t.transport == StressTransport::kSerial,
                    "hypercube stress tuples run serial");
      LPT_CHECK_MSG(!script.has_churn(),
                    "hypercube membership is structurally fixed");
      problems::MinDisk p;
      util::Rng data_rng(ts ^ 0xda7ada7aull);
      const std::vector<geom::Vec2> points =
          workloads::generate_disk_dataset(t.dataset, t.n, data_rng);
      core::HypercubeClarksonConfig cfg;
      cfg.seed = ts;
      cfg.faults = script.faults;
      const auto res = core::run_hypercube_clarkson(
          p, std::span<const geom::Vec2>(points), t.n, cfg);
      out.reached = res.converged;
      out.rounds = res.iterations;  // the envelope binds iterations
      out.round_cap = envelope_c(t.scenario, t.engine) * log_term;
      fill_min_disk_outcome(out, p, points, res.solution);
      break;
    }
    case EngineKind::kHittingSet: {
      out.is_hitting_set = true;
      util::Rng data_rng(ts ^ 0xda7ada7aull);
      const workloads::PlantedHs planted =
          workloads::generate_planted_hitting_set(192, 96, 4, 6, data_rng);
      problems::HittingSetProblem problem(planted.system);
      core::HittingSetConfig cfg;
      cfg.seed = ts;
      cfg.faults = script.faults;
      cfg.shard = make_shard_config(t.transport, &out.recovery);
      const auto res = core::run_hitting_set(problem, t.n, cfg);
      out.reached = res.valid;
      out.rounds = res.stats.rounds_to_first;
      out.round_cap = envelope_c(t.scenario, t.engine) *
                      std::max<std::size_t>(1, res.d_used) * log_term;
      out.hs_size = res.hitting_set.size();
      out.hs_planted = planted.planted.size();
      out.hs_size_bound = core::hitting_set_sample_size(res.d_used, 96);
      break;
    }
  }
  return out;
}

std::vector<StressTuple> default_stress_matrix() {
  using D = workloads::DiskDataset;
  using S = ScenarioKind;
  using T = StressTransport;
  std::vector<StressTuple> m;
  constexpr S kGossipScenarios[] = {S::kBaseline,   S::kIidFaults,
                                    S::kBurstLoss,  S::kStragglers,
                                    S::kChurn,      S::kChurnBurst};

  // Low load: the full scenario set across all four datasets, serial.
  for (const S s : kGossipScenarios) {
    for (const D d : workloads::kAllDiskDatasets) {
      m.push_back({s, EngineKind::kLowLoad, d, T::kSerial, 256});
    }
  }
  // Low load over the shard transports: the adversarial schedules must
  // survive the wire (burst changes per-round loss; churn changes the
  // active-node encode mask).
  for (const T tr : {T::kInProc, T::kPipe, T::kSocket}) {
    for (const S s : {S::kBurstLoss, S::kChurn}) {
      m.push_back({s, EngineKind::kLowLoad, D::kTripleDisk, tr, 256});
    }
  }
  // Worker-kill recovery under a scenario run.
  m.push_back({S::kBaseline, EngineKind::kLowLoad, D::kTripleDisk,
               T::kPipeKill, 256});
  m.push_back({S::kBaseline, EngineKind::kLowLoad, D::kTripleDisk,
               T::kSocketKill, 256});
  // Dynamic inputs: incremental re-solve vs the engine, every dataset.
  for (const D d : workloads::kAllDiskDatasets) {
    m.push_back({S::kDynamic, EngineKind::kLowLoad, d, T::kSerial, 256});
  }
  // High load: full scenario set on the two extreme-basis datasets.
  for (const S s : kGossipScenarios) {
    for (const D d : {D::kTripleDisk, D::kHull}) {
      m.push_back({s, EngineKind::kHighLoad, d, T::kSerial, 256});
    }
  }
  // Hypercube: no churn (fixed membership), both fault families.
  for (const S s : {S::kBaseline, S::kIidFaults, S::kBurstLoss,
                    S::kStragglers}) {
    for (const D d : {D::kTripleDisk, D::kTriangle}) {
      m.push_back({s, EngineKind::kHypercube, d, T::kSerial, 256});
    }
  }
  // Hitting set: fault families serial, plus burst over the shard runtime.
  for (const S s : {S::kBaseline, S::kIidFaults, S::kBurstLoss,
                    S::kStragglers}) {
    m.push_back({s, EngineKind::kHittingSet, D::kTripleDisk, T::kSerial,
                 256});
  }
  m.push_back({S::kBurstLoss, EngineKind::kHittingSet, D::kTripleDisk,
               T::kInProc, 256});
  m.push_back({S::kBurstLoss, EngineKind::kHittingSet, D::kTripleDisk,
               T::kPipe, 256});
  return m;
}

std::uint64_t stress_seed() { return seed_slot(); }

void set_stress_seed(std::uint64_t seed) { seed_slot() = seed; }

std::string tuple_label(const StressTuple& t) {
  std::ostringstream os;
  os << scenario_name(t.scenario) << '/' << engine_name(t.engine) << '/'
     << workloads::dataset_name(t.dataset) << '/'
     << transport_name(t.transport) << "/n" << t.n;
  return os.str();
}

std::string tuple_test_name(const StressTuple& t) {
  std::string name = tuple_label(t);
  for (char& c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    if (!ok) c = '_';
  }
  return name;
}

std::string stress_repro(const StressTuple& t, std::uint64_t base_seed) {
  std::ostringstream os;
  os << "stress tuple (seed=" << base_seed << ", scenario="
     << scenario_name(t.scenario) << ", engine=" << engine_name(t.engine)
     << ", dataset=" << workloads::dataset_name(t.dataset)
     << ", transport=" << transport_name(t.transport) << ", n=" << t.n
     << ")\n  repro: ./tests/test_scenarios --seed=" << base_seed
     << " --gtest_filter='*" << tuple_test_name(t) << "*'";
  return os.str();
}

}  // namespace lpt::scenarios
