#include "scenarios/scenario.hpp"

#include <algorithm>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace lpt::scenarios {

const char* scenario_name(ScenarioKind k) {
  switch (k) {
    case ScenarioKind::kBaseline:
      return "baseline";
    case ScenarioKind::kIidFaults:
      return "iid-faults";
    case ScenarioKind::kBurstLoss:
      return "burst-loss";
    case ScenarioKind::kStragglers:
      return "stragglers";
    case ScenarioKind::kChurn:
      return "churn";
    case ScenarioKind::kChurnBurst:
      return "churn-burst";
    case ScenarioKind::kDynamic:
      return "dynamic";
  }
  return "?";
}

namespace {

gossip::BurstFaults burst_spec() {
  gossip::BurstFaults b;
  b.push_loss = 0.6;
  b.response_loss = 0.6;
  b.enter = 0.06;  // stationary burst fraction 0.06/(0.06+0.14) = 0.3
  b.exit = 0.14;
  return b;
}

gossip::StragglerFaults straggler_spec() {
  gossip::StragglerFaults s;
  s.rate = 0.02;
  s.alpha = 1.5;
  s.scale = 2.0;
  s.cap_rounds = 48;
  return s;
}

/// ~n/8 distinct nodes leave early and rejoin a few rounds later.  Node 0
/// never churns (the smallest instances keep an anchor present), and the
/// schedule never removes more than n/4 nodes at once by construction.
core::ChurnSchedule make_churn(std::size_t n, util::Rng& rng) {
  core::ChurnSchedule sched;
  const std::size_t movers = std::max<std::size_t>(1, n / 8);
  LPT_CHECK_MSG(n >= 4, "churn scenario needs at least 4 nodes");
  // Distinct movers via a partial Fisher-Yates over the ids 1..n-1.
  std::vector<gossip::NodeId> ids(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    ids[i] = static_cast<gossip::NodeId>(i + 1);
  }
  for (std::size_t i = 0; i < movers; ++i) {
    const std::size_t j = i + rng.below(ids.size() - i);
    std::swap(ids[i], ids[j]);
  }
  for (std::size_t i = 0; i < movers; ++i) {
    const gossip::NodeId v = ids[i];
    const std::size_t leave = 2 + rng.below(6);    // rounds 2..7
    const std::size_t back = leave + 3 + rng.below(5);
    sched.events.push_back({leave, v, false});
    sched.events.push_back({back, v, true});
  }
  sched.sort();
  return sched;
}

}  // namespace

ScenarioScript compile_scenario(ScenarioKind kind, std::size_t n,
                                std::uint64_t seed) {
  ScenarioScript s;
  s.kind = kind;
  util::Rng rng(seed ^ 0x5ce7a110u);
  switch (kind) {
    case ScenarioKind::kBaseline:
      break;
    case ScenarioKind::kIidFaults:
      s.faults.push_loss = 0.2;
      s.faults.response_loss = 0.2;
      s.faults.sleep_probability = 0.1;
      break;
    case ScenarioKind::kBurstLoss:
      s.faults.push_loss = 0.05;
      s.faults.response_loss = 0.05;
      s.faults.burst = burst_spec();
      break;
    case ScenarioKind::kStragglers:
      s.faults.straggler = straggler_spec();
      break;
    case ScenarioKind::kChurn:
      s.churn = make_churn(n, rng);
      break;
    case ScenarioKind::kChurnBurst:
      s.faults.push_loss = 0.05;
      s.faults.response_loss = 0.05;
      s.faults.burst = burst_spec();
      s.churn = make_churn(n, rng);
      break;
    case ScenarioKind::kDynamic:
      s.dynamic_updates = 24;
      s.dynamic_epochs = 3;
      break;
  }
  return s;
}

}  // namespace lpt::scenarios
