// Dynamic inputs: points inserted/deleted between solves with the Welzl
// support set carried over (ROADMAP "dynamic inputs").
//
// The incremental structure exploits two LP-type facts:
//   * insert: a point inside the current disk cannot change the optimum —
//     O(1).  A violating point triggers a *warm* re-solve that feeds the
//     old support plus the new point first, so Welzl's move-to-front
//     recursion terminates after verifying the (usually tiny) new basis
//     against the remaining points — one pass, no shuffle.
//   * erase: removing a non-support point leaves the disk optimal (the
//     minimum disk of the remainder is sandwiched between the support's
//     disk and the old disk) — O(support) to test.  Removing a support
//     point triggers a warm re-solve seeded with the surviving support.
//
// Duplicated points are harmless for minimum enclosing disk, so the warm
// re-solve simply prepends the carried-over support to the full point list
// instead of deduplicating.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geometry/vec2.hpp"
#include "geometry/welzl.hpp"

namespace lpt::scenarios {

class DynamicMinDisk {
 public:
  /// Counters proving the incremental path is actually taken: the stress
  /// matrix asserts cheap ops dominate and full solves stay at one.
  struct Stats {
    std::size_t full_solves = 0;    // from-scratch solves (construction)
    std::size_t warm_solves = 0;    // support-seeded re-solves
    std::size_t cheap_inserts = 0;  // inside-disk inserts, O(1)
    std::size_t cheap_erases = 0;   // non-support erases, O(support)
  };

  explicit DynamicMinDisk(std::span<const geom::Vec2> points);

  void insert(const geom::Vec2& p);

  /// Remove the point at `index` in points() (swap-with-last order).
  void erase(std::size_t index);

  const geom::MinDiskResult& result() const noexcept { return cur_; }
  std::span<const geom::Vec2> points() const noexcept { return pts_; }
  const Stats& stats() const noexcept { return stats_; }

 private:
  void warm_resolve(const geom::Vec2* extra, const geom::Vec2* removed);

  std::vector<geom::Vec2> pts_;
  std::vector<geom::Vec2> scratch_;
  geom::MinDiskResult cur_;
  Stats stats_;
};

}  // namespace lpt::scenarios
