// The randomized scenario-matrix stress harness: scenario × engine ×
// dataset × transport tuples, each run from a per-tuple seed mixed into the
// matrix base seed.  run_stress_tuple() executes one tuple and returns the
// raw material for the invariant checks (reference solve, basis, rounds,
// envelope, recovery counters); the assertions themselves live in
// tests/test_scenarios.cpp via the tests/support matchers.
//
// Reproducibility contract: a tuple's run is a pure function of
// (base seed, tuple).  stress_repro() prints the one-line command that
// re-runs exactly one failing tuple; the base seed comes from --seed, the
// LPT_STRESS_SEED environment variable, or the built-in default, in that
// order of precedence (see set_stress_seed / stress_seed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "geometry/circle.hpp"
#include "geometry/vec2.hpp"
#include "scenarios/dynamic_input.hpp"
#include "scenarios/scenario.hpp"
#include "shard/runtime.hpp"
#include "workloads/disk_data.hpp"

namespace lpt::scenarios {

enum class EngineKind : std::uint8_t {
  kLowLoad,     // Section 2 (Algorithms 2 and 4)
  kHighLoad,    // Section 3 (Algorithm 5)
  kHypercube,   // hypercube Clarkson baseline (Section 4 comparison)
  kHittingSet,  // Section 1.4 / Algorithm 6 (planted set system)
};

enum class StressTransport : std::uint8_t {
  kSerial,      // in-process, no shard runtime
  kInProc,      // 2 shard workers, in-process threads
  kPipe,        // 2 shard workers, fork()ed over pipes
  kSocket,      // 2 shard workers, loopback TCP
  kPipeKill,    // kPipe + a scripted SIGKILL mid-run (recovery must absorb)
  kSocketKill,  // kSocket + a scripted SIGKILL (respawn-over-reconnect)
};

const char* engine_name(EngineKind e);
const char* transport_name(StressTransport t);

struct StressTuple {
  ScenarioKind scenario = ScenarioKind::kBaseline;
  EngineKind engine = EngineKind::kLowLoad;
  workloads::DiskDataset dataset = workloads::DiskDataset::kTripleDisk;
  StressTransport transport = StressTransport::kSerial;
  std::size_t n = 256;  // nodes; also the instance size
};

/// One tuple's raw outcome.  The invariant checks (reference radius,
/// boundary basis, containment, envelope, recovery sanity) are asserted by
/// the caller so failures carry gtest context.
struct StressOutcome {
  bool reached = false;       // engine-reported success (optimum / valid)
  std::size_t rounds = 0;     // rounds (hypercube: Clarkson iterations)
  std::size_t round_cap = 0;  // scenario/engine-scaled c*(ceil_log2(n)+2)
  // Minimum-enclosing-disk engines (empty for hitting-set):
  geom::Circle disk;
  std::vector<geom::Vec2> basis;
  geom::Circle ref_disk;            // direct reference solve
  std::vector<geom::Vec2> points;   // the dataset the run solved
  // Hitting-set:
  bool is_hitting_set = false;
  std::size_t hs_size = 0;        // winning hitting-set size
  std::size_t hs_planted = 0;     // planted optimum size
  std::size_t hs_size_bound = 0;  // Theorem 5 bound at the engine's d_used
  // Sharded transports:
  shard::ShardRecoveryStats recovery;
  bool expect_kill = false;      // tuple scripted a worker SIGKILL
  // kDynamic only:
  DynamicMinDisk::Stats dyn;
};

/// Mix one tuple into the base seed (deterministic, tuple-unique).
std::uint64_t tuple_seed(std::uint64_t base, const StressTuple& t);

/// Execute one tuple from the given base seed.
StressOutcome run_stress_tuple(const StressTuple& t, std::uint64_t base_seed);

/// The default matrix: >= 48 tuples across all four engines (see
/// tests/test_scenarios.cpp for the per-block composition).
std::vector<StressTuple> default_stress_matrix();

/// Base-seed plumbing: default constant, overridable by the
/// LPT_STRESS_SEED environment variable (read at first use, not at static
/// init) and by set_stress_seed() (the harness's --seed flag, highest
/// precedence).
std::uint64_t stress_seed();
void set_stress_seed(std::uint64_t seed);

/// Human-readable tuple label: "scenario/engine/dataset/transport/n".
std::string tuple_label(const StressTuple& t);

/// The label reduced to a valid gtest parameter name (alphanumerics and
/// underscores only) — also what stress_repro()'s --gtest_filter matches.
std::string tuple_test_name(const StressTuple& t);

/// One-line repro command for a failing tuple.
std::string stress_repro(const StressTuple& t, std::uint64_t base_seed);

}  // namespace lpt::scenarios
