// Scenario scripts: deterministic, seed-driven adversarial schedules for
// the stress matrix (ROADMAP "scenario diversity").  A ScenarioScript
// bundles everything a run needs beyond the dataset — the fault model
// (i.i.d., Markov-burst, heavy-tailed stragglers), a churn schedule, and
// the dynamic-input update count — compiled from (kind, n, seed) by
// compile_scenario(), so a failing tuple reproduces from its seed alone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/churn.hpp"
#include "gossip/network.hpp"

namespace lpt::scenarios {

enum class ScenarioKind : std::uint8_t {
  kBaseline,    // fault-free
  kIidFaults,   // the pre-scenario model: i.i.d. loss + i.i.d. sleep
  kBurstLoss,   // Markov-modulated loss epochs (calm 5% / burst 60%)
  kStragglers,  // Pareto-length multi-round sleeps
  kChurn,       // ~n/8 nodes leave mid-run with store handoff, then rejoin
  kChurnBurst,  // churn layered on burst loss
  kDynamic,     // points inserted/deleted between solve epochs
};

inline constexpr ScenarioKind kAllScenarioKinds[] = {
    ScenarioKind::kBaseline,   ScenarioKind::kIidFaults,
    ScenarioKind::kBurstLoss,  ScenarioKind::kStragglers,
    ScenarioKind::kChurn,      ScenarioKind::kChurnBurst,
    ScenarioKind::kDynamic,
};

const char* scenario_name(ScenarioKind k);

/// Everything a stress run needs beyond the dataset.  The churn schedule
/// must outlive the engine run (the engine configs hold a pointer to it).
struct ScenarioScript {
  ScenarioKind kind = ScenarioKind::kBaseline;
  gossip::FaultModel faults;
  core::ChurnSchedule churn;
  std::size_t dynamic_updates = 0;  // kDynamic: updates between solve epochs
  std::size_t dynamic_epochs = 0;   // kDynamic: solve epochs

  bool has_churn() const noexcept { return !churn.empty(); }
};

/// Compile (kind, n, seed) into a concrete script.  Pure function of its
/// arguments: the churn schedule's nodes and rounds come from a private
/// RNG stream derived from `seed`, so the same tuple always yields the
/// same schedule.
ScenarioScript compile_scenario(ScenarioKind kind, std::size_t n,
                                std::uint64_t seed);

}  // namespace lpt::scenarios
