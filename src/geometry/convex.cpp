#include "geometry/convex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geometry/predicates.hpp"

namespace lpt::geom {

std::vector<Vec2> convex_hull(std::span<const Vec2> points) {
  std::vector<Vec2> pts(points.begin(), points.end());
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const std::size_t n = pts.size();
  if (n <= 2) return pts;
  std::vector<Vec2> hull(2 * n);
  std::size_t k = 0;
  // Robust orientation sign: near-collinear chains must not corrupt the
  // hull (see geometry/predicates.hpp).
  for (std::size_t i = 0; i < n; ++i) {  // lower hull
    while (k >= 2 && orient2d_sign(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  const std::size_t lower = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {  // upper hull
    while (k >= lower && orient2d_sign(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);
  return hull;
}

bool hull_contains(std::span<const Vec2> hull, Vec2 q, double eps) {
  const std::size_t h = hull.size();
  if (h == 0) return false;
  if (h == 1) return dist2(hull[0], q) <= eps * eps;
  if (h == 2) return point_segment_dist2(q, hull[0], hull[1]) <= eps * eps;
  for (std::size_t i = 0; i < h; ++i) {
    const Vec2 a = hull[i];
    const Vec2 b = hull[(i + 1) % h];
    if (orient(a, b, q) < -eps * std::max(1.0, dist(a, b))) return false;
  }
  return true;
}

MinNormPoint min_norm_point(std::span<const Vec2> points) {
  MinNormPoint res;
  if (points.empty()) return res;
  const Vec2 origin{0.0, 0.0};
  auto hull = convex_hull(points);
  if (hull_contains(hull, origin)) {
    res.point = origin;
    res.distance = 0.0;
    // The origin is interior: supported by up to 3 points in general, but
    // for the LP-type adapter a distance of 0 is the global optimum; we
    // report the (possibly 3-point) witness as empty support plus flag via
    // distance == 0.  Callers treat distance 0 specially.
    res.support.clear();
    return res;
  }
  double best = std::numeric_limits<double>::infinity();
  const std::size_t h = hull.size();
  if (h == 1) {
    res.point = hull[0];
    res.support = {hull[0]};
    res.distance = norm(hull[0]);
    return res;
  }
  for (std::size_t i = 0; i < h; ++i) {
    const Vec2 a = hull[i];
    const Vec2 b = hull[(i + 1) % h];
    const Vec2 c = closest_point_on_segment_to_origin(a, b);
    const double d = norm(c);
    if (d < best) {
      best = d;
      res.point = c;
      res.distance = d;
      // Decide whether the closest point is a vertex or edge-interior.
      if (dist2(c, a) <= 1e-18 * std::max(1.0, norm2(a))) {
        res.support = {a};
      } else if (dist2(c, b) <= 1e-18 * std::max(1.0, norm2(b))) {
        res.support = {b};
      } else {
        res.support = {a, b};
      }
    }
  }
  if (h == 2) {
    // convex_hull returned a segment; loop above visited it twice — fine.
  }
  return res;
}

}  // namespace lpt::geom
