// 2D vector/point primitives and orientation predicates.
//
// Points double as LP-type *elements* for the minimum-enclosing-disk and
// polytope-distance problems, so they are kept trivially copyable and small
// (16 bytes ~ one O(log n)-bit gossip message for coordinates of polynomial
// precision, matching the paper's message model).
#pragma once

#include <bit>
#include <cmath>
#include <compare>
#include <cstdint>

namespace lpt::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(double s, Vec2 a) noexcept {
    return {s * a.x, s * a.y};
  }
  friend constexpr Vec2 operator*(Vec2 a, double s) noexcept { return s * a; }
  friend constexpr Vec2 operator/(Vec2 a, double s) noexcept {
    return {a.x / s, a.y / s};
  }
  constexpr Vec2& operator+=(Vec2 b) noexcept {
    x += b.x;
    y += b.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 b) noexcept {
    x -= b.x;
    y -= b.y;
    return *this;
  }

  /// Lexicographic order: deterministic tie-breaking for bases (Alg. 3
  /// assumes a total order on bases; we derive it from element order).
  friend constexpr auto operator<=>(const Vec2&, const Vec2&) = default;
};

constexpr double dot(Vec2 a, Vec2 b) noexcept { return a.x * b.x + a.y * b.y; }
constexpr double cross(Vec2 a, Vec2 b) noexcept { return a.x * b.y - a.y * b.x; }
constexpr double norm2(Vec2 a) noexcept { return dot(a, a); }
inline double norm(Vec2 a) noexcept { return std::sqrt(norm2(a)); }
inline double dist(Vec2 a, Vec2 b) noexcept { return norm(a - b); }
constexpr double dist2(Vec2 a, Vec2 b) noexcept { return norm2(a - b); }

/// Perpendicular (rotate 90 degrees CCW).
constexpr Vec2 perp(Vec2 a) noexcept { return {-a.y, a.x}; }

/// Hash consistent with operator== (normalizes -0.0), enabling the O(k)
/// distinct-sample fast path of core/sampling.hpp for point elements.
inline std::uint64_t distinct_key(const Vec2& v) noexcept {
  const auto bits = [](double d) {
    return std::bit_cast<std::uint64_t>(d == 0.0 ? 0.0 : d);
  };
  std::uint64_t h = bits(v.x) * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 32;
  h += bits(v.y);
  h *= 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 29);
}

/// Twice the signed area of triangle (a, b, c): > 0 iff CCW.
constexpr double orient(Vec2 a, Vec2 b, Vec2 c) noexcept {
  return cross(b - a, c - a);
}

/// Squared distance from point p to segment [a, b].
double point_segment_dist2(Vec2 p, Vec2 a, Vec2 b) noexcept;

/// Closest point to the origin on segment [a, b].
Vec2 closest_point_on_segment_to_origin(Vec2 a, Vec2 b) noexcept;

inline double point_segment_dist2(Vec2 p, Vec2 a, Vec2 b) noexcept {
  const Vec2 ab = b - a;
  const double len2 = norm2(ab);
  if (len2 <= 0.0) return dist2(p, a);
  double t = dot(p - a, ab) / len2;
  t = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
  return dist2(p, a + t * ab);
}

inline Vec2 closest_point_on_segment_to_origin(Vec2 a, Vec2 b) noexcept {
  const Vec2 ab = b - a;
  const double len2 = norm2(ab);
  if (len2 <= 0.0) return a;
  double t = -dot(a, ab) / len2;
  t = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
  return a + t * ab;
}

}  // namespace lpt::geom
