// Robust geometric predicates: sign-exact orientation and in-circle tests
// with a Shewchuk-style floating-point filter and a double-double
// (~106-bit) fallback.
//
// The LP-type solvers only branch on predicate *signs* (is a point outside
// the disk? is a triple CCW?); a sign error in a near-degenerate input can
// stall basis exchanges or corrupt hulls.  The fast path is a plain double
// evaluation accepted when it clears a forward error bound; otherwise the
// computation is repeated in compensated double-double arithmetic, which
// resolves every case whose exact value exceeds ~1e-30 of the operand
// scale (and ties are reported as zero).
#pragma once

#include "geometry/vec2.hpp"

namespace lpt::geom {

/// Double-double value: val = hi + lo with |lo| <= ulp(hi)/2.
struct DD {
  double hi = 0.0;
  double lo = 0.0;

  static DD from(double x) noexcept { return {x, 0.0}; }

  friend DD operator+(DD a, DD b) noexcept;
  friend DD operator-(DD a, DD b) noexcept;
  friend DD operator*(DD a, DD b) noexcept;
  friend DD operator-(DD a) noexcept { return {-a.hi, -a.lo}; }

  int sign() const noexcept {
    if (hi > 0.0 || (hi == 0.0 && lo > 0.0)) return 1;
    if (hi < 0.0 || (hi == 0.0 && lo < 0.0)) return -1;
    return 0;
  }
  double value() const noexcept { return hi + lo; }
};

/// Error-free product of two doubles (uses FMA).
DD two_prod(double a, double b) noexcept;

/// Error-free sum of two doubles.
DD two_sum(double a, double b) noexcept;

/// Sign of orient(a, b, c) = cross(b - a, c - a):
/// +1 if CCW, -1 if CW, 0 if (numerically indistinguishably) collinear.
/// Fast filtered path, double-double fallback.
int orient2d_sign(Vec2 a, Vec2 b, Vec2 c) noexcept;

/// Sign of the in-circle determinant: +1 if d lies strictly inside the
/// circumcircle of CCW triangle (a, b, c), -1 if outside, 0 on the circle.
/// (For a CW triangle the sign flips, as with the classical determinant.)
int incircle_sign(Vec2 a, Vec2 b, Vec2 c, Vec2 d) noexcept;

}  // namespace lpt::geom
