#include "geometry/welzl.hpp"

namespace lpt::geom {

namespace {

// Smallest disk enclosing pts[0..limit) with q on the boundary.
Circle with_one(std::span<const Vec2> pts, std::size_t limit, Vec2 q,
                std::vector<Vec2>& support) {
  Circle c = circle_from(q);
  support = {q};
  for (std::size_t j = 0; j < limit; ++j) {
    if (c.contains(pts[j])) continue;
    // Smallest disk enclosing pts[0..j) with pts[j] and q on the boundary.
    c = circle_from(pts[j], q);
    support = {pts[j], q};
    for (std::size_t k = 0; k < j; ++k) {
      if (c.contains(pts[k])) continue;
      c = circle_from(pts[k], pts[j], q);
      support = {pts[k], pts[j], q};
    }
  }
  return c;
}

}  // namespace

MinDiskResult min_disk(std::span<const Vec2> points, util::Rng& rng) {
  MinDiskResult res;
  if (points.empty()) return res;
  std::vector<Vec2> pts(points.begin(), points.end());
  rng.shuffle(pts);
  res.disk = circle_from(pts[0]);
  res.support = {pts[0]};
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (!res.disk.contains(pts[i])) {
      res.disk = with_one(pts, i, pts[i], res.support);
    }
  }
  return res;
}

MinDiskResult min_disk(std::span<const Vec2> points) {
  util::Rng rng(0x5eed5eed5eedULL);
  return min_disk(points, rng);
}

bool encloses_all(const Circle& disk, std::span<const Vec2> points,
                  double eps) {
  for (const auto& p : points) {
    if (!disk.contains(p, eps)) return false;
  }
  return true;
}

}  // namespace lpt::geom
