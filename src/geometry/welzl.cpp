#include "geometry/welzl.hpp"

namespace lpt::geom {

namespace {

// Boundary support tracked as a fixed-size array: the inner loops update
// the support on every boundary recompute, and std::vector assignments
// there dominated whole simulation profiles.
struct Support {
  Vec2 pts[3];
  unsigned count = 0;
};

// Circle::contains recomputes the tolerance-padded radius on every call;
// the Welzl loops test orders of magnitude more points than they rebuild
// circles, so cache (radius + slack)^2 once per rebuild.  Same arithmetic
// as Circle::contains — results are bit-identical.
inline double padded_r2(const Circle& c) noexcept {
  const double slack = Circle::kEps * (c.radius + 1.0);
  const double r = c.radius + slack;
  return r * r;
}

// Smallest disk enclosing pts[0..limit) with q on the boundary.
Circle with_one(std::span<const Vec2> pts, std::size_t limit, Vec2 q,
                Support& support) {
  Circle c = circle_from(q);
  double r2 = padded_r2(c);
  support = {{q, {}, {}}, 1};
  for (std::size_t j = 0; j < limit; ++j) {
    if (dist2(c.center, pts[j]) <= r2) continue;
    // Smallest disk enclosing pts[0..j) with pts[j] and q on the boundary.
    c = circle_from(pts[j], q);
    r2 = padded_r2(c);
    support = {{pts[j], q, {}}, 2};
    for (std::size_t k = 0; k < j; ++k) {
      if (dist2(c.center, pts[k]) <= r2) continue;
      c = circle_from(pts[k], pts[j], q);
      r2 = padded_r2(c);
      support = {{pts[k], pts[j], q}, 3};
    }
  }
  return c;
}

}  // namespace

MinDiskResult min_disk(std::span<const Vec2> points, util::Rng& rng) {
  MinDiskResult res;
  if (points.empty()) return res;
  std::vector<Vec2> pts(points.begin(), points.end());
  rng.shuffle(pts);
  return min_disk_preshuffled(pts);
}

MinDiskResult min_disk(std::span<const Vec2> points) {
  util::Rng rng(0x5eed5eed5eedULL);
  return min_disk(points, rng);
}

MinDiskResult min_disk_preshuffled(std::span<const Vec2> points) {
  MinDiskResult res;
  min_disk_preshuffled_into(points, res.disk, res.support);
  return res;
}

void min_disk_preshuffled_into(std::span<const Vec2> points, Circle& disk,
                               std::vector<Vec2>& support) {
  disk = Circle{};
  support.clear();
  if (points.empty()) return;
  disk = circle_from(points[0]);
  double r2 = padded_r2(disk);
  Support sup{{points[0], {}, {}}, 1};
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (dist2(disk.center, points[i]) > r2) {
      disk = with_one(points, i, points[i], sup);
      r2 = padded_r2(disk);
    }
  }
  support.assign(sup.pts, sup.pts + sup.count);
}

bool encloses_all(const Circle& disk, std::span<const Vec2> points,
                  double eps) {
  for (const auto& p : points) {
    if (!disk.contains(p, eps)) return false;
  }
  return true;
}

}  // namespace lpt::geom
