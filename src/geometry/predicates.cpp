#include "geometry/predicates.hpp"

#include <cmath>

namespace lpt::geom {

DD two_prod(double a, double b) noexcept {
  const double p = a * b;
  const double e = std::fma(a, b, -p);
  return {p, e};
}

DD two_sum(double a, double b) noexcept {
  const double s = a + b;
  const double bb = s - a;
  const double e = (a - (s - bb)) + (b - bb);
  return {s, e};
}

namespace {

// Renormalize a (hi, lo) pair into a proper double-double.
DD quick_two_sum(double a, double b) noexcept {
  const double s = a + b;
  const double e = b - (s - a);
  return {s, e};
}

}  // namespace

DD operator+(DD a, DD b) noexcept {
  DD s = two_sum(a.hi, b.hi);
  const double lo = s.lo + a.lo + b.lo;
  return quick_two_sum(s.hi, lo);
}

DD operator-(DD a, DD b) noexcept { return a + DD{-b.hi, -b.lo}; }

DD operator*(DD a, DD b) noexcept {
  DD p = two_prod(a.hi, b.hi);
  const double lo = p.lo + a.hi * b.lo + a.lo * b.hi;
  return quick_two_sum(p.hi, lo);
}

int orient2d_sign(Vec2 a, Vec2 b, Vec2 c) noexcept {
  // Fast path with Shewchuk's static filter for the 2x2 determinant
  // (acx * bcy - acy * bcx).
  const double acx = a.x - c.x;
  const double bcx = b.x - c.x;
  const double acy = a.y - c.y;
  const double bcy = b.y - c.y;
  const double detleft = acx * bcy;
  const double detright = acy * bcx;
  const double det = detleft - detright;
  double detsum;
  if (detleft > 0.0) {
    if (detright <= 0.0) return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);
    detsum = -detleft - detright;
  } else {
    return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);
  }
  // ccwerrboundA from Shewchuk: (3 + 16 eps) eps.
  constexpr double kErrBound = 3.3306690738754716e-16;
  if (det >= kErrBound * detsum || -det >= kErrBound * detsum) {
    return det > 0.0 ? 1 : -1;
  }
  // Double-double fallback.  The subtractions (a - c) etc. may themselves
  // round; recompute them error-free with two_sum.
  const DD ax = two_sum(a.x, -c.x);
  const DD ay = two_sum(a.y, -c.y);
  const DD bx = two_sum(b.x, -c.x);
  const DD by = two_sum(b.y, -c.y);
  const DD d = ax * by - ay * bx;
  return d.sign();
}

int incircle_sign(Vec2 a, Vec2 b, Vec2 c, Vec2 d) noexcept {
  // 3x3 determinant of the lifted points relative to d.
  const double adx = a.x - d.x, ady = a.y - d.y;
  const double bdx = b.x - d.x, bdy = b.y - d.y;
  const double cdx = c.x - d.x, cdy = c.y - d.y;

  const double alift = adx * adx + ady * ady;
  const double blift = bdx * bdx + bdy * bdy;
  const double clift = cdx * cdx + cdy * cdy;

  const double bcdet = bdx * cdy - bdy * cdx;
  const double cadet = cdx * ady - cdy * adx;
  const double abdet = adx * bdy - ady * bdx;

  const double det = alift * bcdet + blift * cadet + clift * abdet;
  const double permanent = (std::abs(bdx * cdy) + std::abs(bdy * cdx)) * alift +
                           (std::abs(cdx * ady) + std::abs(cdy * adx)) * blift +
                           (std::abs(adx * bdy) + std::abs(ady * bdx)) * clift;
  // iccerrboundA from Shewchuk: (10 + 96 eps) eps.
  constexpr double kErrBound = 1.1102230246251577e-15 * 10.000000000000002;
  if (det > kErrBound * permanent || -det > kErrBound * permanent) {
    return det > 0.0 ? 1 : -1;
  }
  // Double-double fallback.
  const DD dax = two_sum(a.x, -d.x), day = two_sum(a.y, -d.y);
  const DD dbx = two_sum(b.x, -d.x), dby = two_sum(b.y, -d.y);
  const DD dcx = two_sum(c.x, -d.x), dcy = two_sum(c.y, -d.y);
  const DD la = dax * dax + day * day;
  const DD lb = dbx * dbx + dby * dby;
  const DD lc = dcx * dcx + dcy * dcy;
  const DD bc = dbx * dcy - dby * dcx;
  const DD ca = dcx * day - dcy * dax;
  const DD ab = dax * dby - day * dbx;
  const DD dd = la * bc + lb * ca + lc * ab;
  return dd.sign();
}

}  // namespace lpt::geom
