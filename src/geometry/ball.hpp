// d-dimensional points and smallest enclosing balls (miniball).
//
// The paper's smallest-enclosing-ball example has combinatorial dimension
// d+1 in R^d; this module provides the R^d generalisation of the 2D kernel
// so the distributed engines can be exercised at several dimensions.
#pragma once

#include <array>
#include <cmath>
#include <compare>
#include <span>
#include <vector>

#include "geometry/linalg.hpp"
#include "util/rng.hpp"

namespace lpt::geom {

template <std::size_t D>
struct VecD {
  std::array<double, D> v{};

  double& operator[](std::size_t i) noexcept { return v[i]; }
  double operator[](std::size_t i) const noexcept { return v[i]; }

  friend VecD operator+(VecD a, const VecD& b) noexcept {
    for (std::size_t i = 0; i < D; ++i) a.v[i] += b.v[i];
    return a;
  }
  friend VecD operator-(VecD a, const VecD& b) noexcept {
    for (std::size_t i = 0; i < D; ++i) a.v[i] -= b.v[i];
    return a;
  }
  friend VecD operator*(double s, VecD a) noexcept {
    for (std::size_t i = 0; i < D; ++i) a.v[i] *= s;
    return a;
  }
  friend auto operator<=>(const VecD&, const VecD&) = default;
};

template <std::size_t D>
double dot(const VecD<D>& a, const VecD<D>& b) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < D; ++i) s += a.v[i] * b.v[i];
  return s;
}

template <std::size_t D>
double dist2(const VecD<D>& a, const VecD<D>& b) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < D; ++i) {
    const double d = a.v[i] - b.v[i];
    s += d * d;
  }
  return s;
}

template <std::size_t D>
struct BallD {
  VecD<D> center{};
  double radius = -1.0;  // < 0 encodes the empty ball

  bool empty() const noexcept { return radius < 0.0; }

  bool contains(const VecD<D>& p, double eps = 1e-9) const noexcept {
    if (empty()) return false;
    const double r = radius + eps * (radius + 1.0);
    return dist2(center, p) <= r * r;
  }

  friend auto operator<=>(const BallD&, const BallD&) = default;
};

/// Smallest ball with all points of `boundary` on its surface
/// (|boundary| <= D+1).  Solves the circumsphere linear system; falls back
/// to the affine-subspace least-norm solution on degeneracy by dropping the
/// last point.
template <std::size_t D>
BallD<D> circumball(std::span<const VecD<D>> boundary) {
  BallD<D> ball;
  const std::size_t k = boundary.size();
  if (k == 0) return ball;
  if (k == 1) return BallD<D>{boundary[0], 0.0};
  // Center = boundary[0] + sum_i lambda_i (p_i - p_0); equidistance gives a
  // (k-1)x(k-1) Gram system.
  const std::size_t m = k - 1;
  Matrix a(m, m);
  std::vector<double> rhs(m, 0.0);
  std::vector<VecD<D>> e(m);
  for (std::size_t i = 0; i < m; ++i) e[i] = boundary[i + 1] - boundary[0];
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) a(i, j) = 2.0 * dot(e[i], e[j]);
    rhs[i] = dot(e[i], e[i]);
  }
  auto sol = solve(std::move(a), std::move(rhs));
  if (!sol) {
    // Degenerate (affinely dependent); drop the last point and retry.
    return circumball<D>(boundary.subspan(0, k - 1));
  }
  VecD<D> c = boundary[0];
  for (std::size_t i = 0; i < m; ++i) c = c + (*sol)[i] * e[i];
  double r2 = 0.0;
  for (const auto& p : boundary) r2 = std::max(r2, dist2(c, p));
  ball.center = c;
  ball.radius = std::sqrt(r2);
  return ball;
}

template <std::size_t D>
struct MinBallResult {
  BallD<D> ball{};
  std::vector<VecD<D>> support;
};

namespace detail {

template <std::size_t D>
BallD<D> ball_with_boundary(const std::vector<VecD<D>>& b) {
  return circumball<D>(std::span<const VecD<D>>(b.data(), b.size()));
}

// Welzl recursion with explicit boundary set; expected linear time after
// shuffling, recursion depth <= |pts|.
template <std::size_t D>
BallD<D> welzl_rec(std::vector<VecD<D>>& pts, std::size_t limit,
                   std::vector<VecD<D>>& boundary,
                   std::vector<VecD<D>>& support) {
  if (limit == 0 || boundary.size() == D + 1) {
    support = boundary;
    return ball_with_boundary<D>(boundary);
  }
  BallD<D> ball = welzl_rec<D>(pts, limit - 1, boundary, support);
  const VecD<D>& p = pts[limit - 1];
  if (!ball.empty() && ball.contains(p)) return ball;
  boundary.push_back(p);
  ball = welzl_rec<D>(pts, limit - 1, boundary, support);
  boundary.pop_back();
  return ball;
}

}  // namespace detail

/// Smallest enclosing ball of `points` in R^D with its support set
/// (the LP-type optimal basis, |support| <= D+1).
template <std::size_t D>
MinBallResult<D> min_ball(std::span<const VecD<D>> points, util::Rng& rng) {
  MinBallResult<D> res;
  if (points.empty()) return res;
  std::vector<VecD<D>> pts(points.begin(), points.end());
  rng.shuffle(pts);
  std::vector<VecD<D>> boundary;
  res.ball = detail::welzl_rec<D>(pts, pts.size(), boundary, res.support);
  if (res.ball.empty() && !pts.empty()) {
    res.ball = BallD<D>{pts[0], 0.0};
    res.support = {pts[0]};
  }
  return res;
}

template <std::size_t D>
MinBallResult<D> min_ball(std::span<const VecD<D>> points) {
  util::Rng rng(0xba11ba11ULL);
  return min_ball<D>(points, rng);
}

}  // namespace lpt::geom
