#include "geometry/linalg.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace lpt::geom {

std::optional<std::vector<double>> solve(Matrix a, std::vector<double> b,
                                         double pivot_eps) {
  const std::size_t n = a.rows();
  LPT_CHECK(a.cols() == n && b.size() == n);
  // Scale tolerance by the largest entry so the singularity test is relative.
  double scale = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      scale = std::max(scale, std::abs(a(r, c)));
    }
  }
  const double tol = pivot_eps * std::max(scale, 1.0);

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    if (std::abs(a(pivot, col)) <= tol) return std::nullopt;
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a(ri, c) * x[c];
    x[ri] = acc / a(ri, ri);
  }
  return x;
}

}  // namespace lpt::geom
