// Circles and circumcircles: the geometric kernel of the minimum enclosing
// disk problem used throughout the paper's experiments (Section 5).
#pragma once

#include <optional>

#include "geometry/vec2.hpp"

namespace lpt::geom {

struct Circle {
  Vec2 center{};
  double radius = -1.0;  // radius < 0 encodes the empty disk (f(∅) = -inf)

  constexpr bool empty() const noexcept { return radius < 0.0; }

  /// Containment with a relative tolerance: a point on the boundary is
  /// "inside".  Tolerance scales with radius so large instances remain
  /// robust.
  bool contains(Vec2 p, double eps = kEps) const noexcept {
    if (empty()) return false;
    const double slack = eps * (radius + 1.0);
    const double r = radius + slack;
    return dist2(center, p) <= r * r;
  }

  friend constexpr auto operator<=>(const Circle&, const Circle&) = default;

  static constexpr double kEps = 1e-9;
};

/// Smallest circle through one point (radius 0).
Circle circle_from(Vec2 a) noexcept;

/// Smallest circle through two points (diametral circle).
Circle circle_from(Vec2 a, Vec2 b) noexcept;

/// Circumcircle of three points.  Returns the diametral circle of the two
/// extreme points when the triple is (nearly) collinear, which is the
/// correct smallest enclosing circle in that degenerate case.
Circle circle_from(Vec2 a, Vec2 b, Vec2 c) noexcept;

}  // namespace lpt::geom
