// Circles and circumcircles: the geometric kernel of the minimum enclosing
// disk problem used throughout the paper's experiments (Section 5).
#pragma once

#include <algorithm>
#include <cmath>
#include <optional>

#include "geometry/vec2.hpp"

namespace lpt::geom {

struct Circle {
  Vec2 center{};
  double radius = -1.0;  // radius < 0 encodes the empty disk (f(∅) = -inf)

  constexpr bool empty() const noexcept { return radius < 0.0; }

  /// Containment with a relative tolerance: a point on the boundary is
  /// "inside".  Tolerance scales with radius so large instances remain
  /// robust.
  bool contains(Vec2 p, double eps = kEps) const noexcept {
    if (empty()) return false;
    const double slack = eps * (radius + 1.0);
    const double r = radius + slack;
    return dist2(center, p) <= r * r;
  }

  friend constexpr auto operator<=>(const Circle&, const Circle&) = default;

  static constexpr double kEps = 1e-9;
};

// The circle constructors live in the header: they are the innermost
// kernel of Welzl's algorithm (tens of millions of calls per simulation
// sweep), and keeping them inlineable across translation units is worth
// ~15% of a distributed-engine run.

/// Smallest circle through one point (radius 0).
inline Circle circle_from(Vec2 a) noexcept { return Circle{a, 0.0}; }

/// Smallest circle through two points (diametral circle).
inline Circle circle_from(Vec2 a, Vec2 b) noexcept {
  const Vec2 c = 0.5 * (a + b);
  return Circle{c, dist(c, a)};
}

/// Circumcircle of three points.  Returns the diametral circle of the two
/// extreme points when the triple is (nearly) collinear, which is the
/// correct smallest enclosing circle in that degenerate case.
inline Circle circle_from(Vec2 a, Vec2 b, Vec2 c) noexcept {
  // Solve for the circumcenter via the perpendicular-bisector linear system,
  // translated so `a` is the origin for numerical stability.
  const Vec2 ab = b - a;
  const Vec2 ac = c - a;
  const double d = 2.0 * cross(ab, ac);
  const double scale =
      std::max({norm2(ab), norm2(ac), norm2(c - b), 1e-300});
  if (std::abs(d) <= 1e-12 * scale) {
    // (Nearly) collinear: smallest circle through the extremes.
    const Circle c1 = circle_from(a, b);
    const Circle c2 = circle_from(a, c);
    const Circle c3 = circle_from(b, c);
    Circle best = c1;
    if (c2.radius > best.radius) best = c2;
    if (c3.radius > best.radius) best = c3;
    return best;
  }
  const double ab2 = norm2(ab);
  const double ac2 = norm2(ac);
  const Vec2 center{a.x + (ac.y * ab2 - ab.y * ac2) / d,
                    a.y + (ab.x * ac2 - ac.x * ab2) / d};
  // Use the max distance to the three defining points as the radius so the
  // circle is guaranteed to contain all of them despite rounding.
  const double r =
      std::sqrt(std::max({dist2(center, a), dist2(center, b), dist2(center, c)}));
  return Circle{center, r};
}

}  // namespace lpt::geom
