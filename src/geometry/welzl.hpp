// Welzl's algorithm for the smallest enclosing disk of a 2D point set,
// returning both the disk and its support set (the optimal basis in LP-type
// terms, |basis| <= 3).  Expected linear time after a random shuffle.
//
// This is the local "solve f(S) for small S" primitive that the paper
// assumes each node can evaluate (Section 1.1), and also the sequential
// exact oracle the distributed algorithms are validated against.
#pragma once

#include <span>
#include <vector>

#include "geometry/circle.hpp"
#include "util/rng.hpp"

namespace lpt::geom {

struct MinDiskResult {
  Circle disk{};                // empty() if the input set is empty
  std::vector<Vec2> support;    // 0..3 points on the boundary defining disk
};

/// Smallest enclosing disk of `points`.  The input is copied and shuffled
/// with `rng` (Welzl's expected-linear-time randomization).  Deterministic
/// given the rng state.
MinDiskResult min_disk(std::span<const Vec2> points, util::Rng& rng);

/// Convenience overload with a fixed internal seed (used by oracles where
/// the answer is unique and the seed is irrelevant).
MinDiskResult min_disk(std::span<const Vec2> points);

/// Variant for inputs that are *already* in (uniformly) random order, e.g.
/// the Section 2.1 samples, whose selection step randomizes the order as a
/// side effect.  Skips the defensive copy + shuffle — the expected-linear
/// analysis holds for any random order — saving an allocation and O(|S|)
/// RNG draws per local solve.
MinDiskResult min_disk_preshuffled(std::span<const Vec2> points);

/// As min_disk_preshuffled, but writing into caller-owned outputs whose
/// capacity is reused across calls (the support never exceeds 3 points, so
/// after the first call the steady state allocates nothing — the query
/// service's serve-path contract).  Bit-identical to min_disk_preshuffled.
void min_disk_preshuffled_into(std::span<const Vec2> points, Circle& disk,
                               std::vector<Vec2>& support);

/// True if `disk` encloses every point of `points` (with tolerance).
bool encloses_all(const Circle& disk, std::span<const Vec2> points,
                  double eps = Circle::kEps);

}  // namespace lpt::geom
