// Dense small-matrix linear algebra: just enough to solve the k x k
// circumsphere systems of the d-dimensional miniball (k <= d+1 with d a
// small constant, per the paper's bounded-dimension setting).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace lpt::geom {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

/// Solve A x = b via Gaussian elimination with partial pivoting.
/// Returns nullopt if A is (numerically) singular.
std::optional<std::vector<double>> solve(Matrix a, std::vector<double> b,
                                         double pivot_eps = 1e-12);

}  // namespace lpt::geom
