// Convex hull and min-norm-point utilities (polytope distance substrate).
#pragma once

#include <span>
#include <vector>

#include "geometry/vec2.hpp"

namespace lpt::geom {

/// Convex hull (Andrew's monotone chain), CCW order, no duplicate endpoint.
/// Collinear points on the hull boundary are dropped.
std::vector<Vec2> convex_hull(std::span<const Vec2> points);

/// True if point q lies inside or on the convex hull `hull` (CCW order).
bool hull_contains(std::span<const Vec2> hull, Vec2 q, double eps = 1e-9);

/// The point of conv(points) closest to the origin, with the <=2 input
/// points supporting it (a vertex, or the two endpoints of an edge).
struct MinNormPoint {
  Vec2 point{};                // closest point of the hull to the origin
  std::vector<Vec2> support;   // 0, 1 or 2 defining input points
  double distance = 0.0;       // |point|
};

/// Exact min-norm point by brute force over hull vertices and edges.
/// O(h) after an O(n log n) hull; the LP-type adapter only calls this on
/// small sets so performance is irrelevant there.
MinNormPoint min_norm_point(std::span<const Vec2> points);

}  // namespace lpt::geom
