// The shard runtime: a coordinator/worker harness for the engines'
// stage-A/stage-B split across process (or thread) boundaries.
//
// ## What is sharded, and why it stays bit-identical
//
// The engines (core/low_load.hpp, core/hitting_set.hpp) already execute one
// simulated round as stage A (embarrassingly parallel per-node compute on
// private RNG streams) followed by stage B (every shared-state side effect,
// replayed serially in ascending node order).  The shard runtime moves
// stage A into per-shard workers:
//
//   1. the coordinator owns the whole simulation state (network, store,
//      channels) and remains the only writer of shared state;
//   2. per round it ships each worker a stage-A task frame with the
//      worker's shard of per-node inputs (shard/wire.hpp);
//   3. each worker computes stage A for its contiguous node range and
//      answers with its stage-B candidate list in ascending node order,
//      plus payloads and advanced per-node RNG states;
//   4. the coordinator applies results *in shard order*.  Shards are
//      contiguous and ascending (shard/plan.hpp), so the concatenated
//      candidate stream is exactly the ascending node order of a serial
//      full scan — the identical util::parallel_chunks contract that makes
//      `parallel_nodes` bit-identical, now across process boundaries.
//
// Solutions, round counts, and every DistributedRunStats counter are
// therefore bit-identical to the serial and parallel_nodes paths for any
// shard count and either transport; tests/test_shard.cpp pins this.
//
// ## Round-trip schedule
//
// round() sends all task frames before receiving any result frame, so
// workers compute concurrently; receives then proceed in shard order (the
// order results must be applied anyway, so a faster later shard never
// blocks progress it could legally make).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "gossip/codec.hpp"
#include "shard/plan.hpp"
#include "shard/transport.hpp"
#include "shard/wire.hpp"
#include "util/assert.hpp"

namespace lpt::shard {

/// Engine-facing knob: how to shard a run.  Lives alongside
/// `parallel_nodes` in the engine configs; `shards >= 1` routes the
/// stage-A compute through the shard runtime (1 = one worker, useful for
/// exercising the wire path and measuring pure runtime overhead), and 0
/// keeps the in-process paths.  Sharding does not participate in the
/// determinism contract: results are bit-identical for every value.
struct ShardConfig {
  std::size_t shards = 0;  // 0: disabled; >= 1: worker count
  TransportKind transport = TransportKind::kInProc;
  std::size_t max_frame_nodes = 8192;  // cap on nodes per task/result frame:
                                       // a shard's round splits into
                                       // ceil(range / cap) sub-frames, so
                                       // frame bytes stay bounded by
                                       // per-node state, not by n (a 2^20
                                       // node range in one frame would blow
                                       // kMaxFrameBytes).  0 = one frame
                                       // per shard.  Like the transport,
                                       // this never affects results.

  bool enabled() const noexcept { return shards >= 1; }
};

/// Generic worker serve loop: block for frames, dispatch task frames to
/// `serve(decoder, encoder)`, stop on the shutdown frame.  `serve` decodes
/// one task payload (message type already consumed) and encodes the
/// complete result payload including its leading message type.
template <typename Serve>
void worker_loop(Endpoint& ep, Serve&& serve) {
  for (;;) {
    const std::vector<std::uint8_t> frame = ep.recv();
    if (frame.empty()) return;  // peer gone (EOF): treat as shutdown
    gossip::Decoder d(frame);
    const MsgType type = get_msg_type(d);
    if (type == MsgType::kShutdown) return;
    LPT_CHECK_MSG(type == MsgType::kStageATask,
                  "shard worker: unexpected frame type");
    gossip::Encoder e;
    serve(d, e);
    LPT_CHECK_MSG(d.exhausted(), "shard worker: trailing bytes in task");
    ep.send(e.bytes());
  }
}

/// Coordinator-side harness: plan + transport + worker lifecycle.  One
/// harness serves one engine run; the destructor shuts the workers down.
///
/// A shard's round is split into `ceil(range / max_frame_nodes)`
/// contiguous ascending *sub-frames* so a frame's size is bounded by
/// per-node state, never by n.  The global frame list is laid out
/// shard-major (all of shard 0's sub-frames, then shard 1's, ...), so
/// per-frame accumulations concatenated in frame-index order are still
/// exactly the ascending node order of a serial full scan.
class ShardHarness {
 public:
  /// Spawns cfg.shards workers running worker_loop(endpoint, serve) —
  /// `serve` is the engine's stage-A handler and must capture only state
  /// that is (a) immutable for the whole run and (b) meaningful in a
  /// forked child (the static problem description, sampler constants).
  /// For PipeTransport the fork happens here, before the engine's round
  /// loop allocates anything thread-related.
  template <typename Serve>
  ShardHarness(std::size_t n, const ShardConfig& cfg, Serve serve)
      : plan_(n, std::min(cfg.shards, n)) {
    const std::size_t limit =
        cfg.max_frame_nodes ? cfg.max_frame_nodes : n;
    for (std::size_t s = 0; s < plan_.shard_count(); ++s) {
      const ShardRange r = plan_.range(s);
      frame_offset_.push_back(frames_.size());
      for (gossip::NodeId b = r.begin; b < r.end;
           b = static_cast<gossip::NodeId>(
               std::min<std::size_t>(b + limit, r.end))) {
        frames_.push_back(
            {b, static_cast<gossip::NodeId>(
                    std::min<std::size_t>(b + limit, r.end))});
      }
      steps_ = std::max(steps_, frames_.size() - frame_offset_.back());
    }
    transport_ = make_transport(cfg.transport);
    transport_->spawn(
        plan_.shard_count(),
        // mutable: serve handlers own per-worker scratch (each spawned
        // worker gets its own copy of this closure, so no sharing).
        [serve = std::move(serve)](std::size_t, Endpoint& ep) mutable {
          worker_loop(ep, serve);
        });
  }

  ~ShardHarness() {
    gossip::Encoder bye;
    put_msg_type(bye, MsgType::kShutdown);
    for (std::size_t s = 0; s < plan_.shard_count(); ++s) {
      transport_->endpoint(s).send(bye.bytes());
    }
    transport_->join();
  }

  ShardHarness(const ShardHarness&) = delete;
  ShardHarness& operator=(const ShardHarness&) = delete;

  const ShardPlan& plan() const noexcept { return plan_; }

  /// Total sub-frames per round; engines size their per-frame accumulator
  /// vectors to this (frame i covers frame_range(i), shard-major, so
  /// accumulators walked in index order recover ascending node order).
  std::size_t frame_count() const noexcept { return frames_.size(); }
  ShardRange frame_range(std::size_t frame) const noexcept {
    return frames_[frame];
  }

  /// One simulated round: encode_task(range, encoder) builds one task
  /// payload (after the message type, which round() writes);
  /// apply_result(frame, range, decoder) consumes one result payload.
  ///
  /// Sub-frames are scheduled round-robin across shards in strict
  /// send-all / receive-all steps: within a step every worker's previous
  /// result has been fully drained, so a worker blocked writing a large
  /// result can never deadlock against a coordinator blocked writing its
  /// next task (pipe buffers are small).  Workers overlap within a step;
  /// apply_result runs once per sub-frame, in any order the schedule
  /// produces — it must only write frame-indexed slots, never shared
  /// streams (stage B does that later, walking frames in index order).
  template <typename EncodeTask, typename ApplyResult>
  void round(EncodeTask&& encode_task, ApplyResult&& apply_result) {
    for (std::size_t step = 0; step < steps_; ++step) {
      for (std::size_t s = 0; s < plan_.shard_count(); ++s) {
        const std::size_t frame = frame_offset_[s] + step;
        if (frame >= frames_end(s)) continue;
        gossip::Encoder e;
        put_msg_type(e, MsgType::kStageATask);
        encode_task(frames_[frame], e);
        transport_->endpoint(s).send(e.bytes());
      }
      for (std::size_t s = 0; s < plan_.shard_count(); ++s) {
        const std::size_t frame = frame_offset_[s] + step;
        if (frame >= frames_end(s)) continue;
        const std::vector<std::uint8_t> bytes =
            transport_->endpoint(s).recv();
        gossip::Decoder d(bytes);
        LPT_CHECK_MSG(get_msg_type(d) == MsgType::kStageAResult,
                      "shard coordinator: expected a stage-A result");
        apply_result(frame, frames_[frame], d);
        LPT_CHECK_MSG(d.exhausted(),
                      "shard coordinator: trailing bytes in result");
      }
    }
  }

 private:
  std::size_t frames_end(std::size_t s) const noexcept {
    return s + 1 < frame_offset_.size() ? frame_offset_[s + 1]
                                        : frames_.size();
  }

  ShardPlan plan_;
  std::vector<ShardRange> frames_;        // shard-major sub-frame ranges
  std::vector<std::size_t> frame_offset_; // first frame index per shard
  std::size_t steps_ = 0;                 // max sub-frames of any shard
  std::unique_ptr<Transport> transport_;
};

}  // namespace lpt::shard
