// The shard runtime: a coordinator/worker harness for the engines'
// stage-A/stage-B split across process (or thread) boundaries.
//
// ## What is sharded, and why it stays bit-identical
//
// The engines (core/low_load.hpp, core/hitting_set.hpp) already execute one
// simulated round as stage A (embarrassingly parallel per-node compute on
// private RNG streams) followed by stage B (every shared-state side effect,
// replayed serially in ascending node order).  The shard runtime moves
// stage A into per-shard workers:
//
//   1. the coordinator owns the whole simulation state (network, store,
//      channels) and remains the only writer of shared state;
//   2. per round it ships each worker a stage-A task frame with the
//      worker's shard of per-node inputs (shard/wire.hpp);
//   3. each worker computes stage A for its contiguous node range and
//      answers with its stage-B candidate list in ascending node order,
//      plus payloads and advanced per-node RNG states;
//   4. the coordinator applies results *in frame-index order semantics*:
//      apply_result only fills frame-indexed slots, and stage B later walks
//      frames in index order.  Frames are contiguous and ascending
//      (shard/plan.hpp), so the concatenated candidate stream is exactly
//      the ascending node order of a serial full scan — the identical
//      util::parallel_chunks contract that makes `parallel_nodes`
//      bit-identical, now across process boundaries.
//
// Solutions, round counts, and every DistributedRunStats counter are
// therefore bit-identical to the serial and parallel_nodes paths for any
// shard count and either transport; tests/test_shard.cpp pins this.
//
// ## Failure model (why recovery preserves bit-identity)
//
// A worker may die (or hang, or babble garbage) at any point.  The
// coordinator survives it because of three standing facts:
//
//   * the coordinator's state is mutated only by apply_result — encoding a
//     task frame reads coordinator state but never advances it, so the
//     exact task bytes can be retained and re-shipped;
//   * task frames carry *all* worker-visible dynamic state, including the
//     per-node RNG snapshots (shard/wire.hpp round-trips util::RngState
//     exactly), so a fresh replacement worker given the same bytes
//     produces the same result bytes;
//   * results land in frame-indexed slots and are merged in frame-index
//     order, so *when* a frame's result arrives — and *which* worker
//     served it — cannot affect the merge.
//
// Hence: detect the death (shard/transport.hpp surfaces every stream
// failure as data), requeue the lost frame's retained bytes, serve them on
// a respawned replacement (RecoveryMode::kRespawn) or fold them into the
// survivors (kReassign, via the ShardAssignment view in shard/plan.hpp) —
// and the run's outputs are bit-identical to a fault-free run.
//
// ## Round-trip schedule
//
// round() keeps a per-worker FIFO of pending sub-frames with at most ONE
// frame in flight per worker: a worker blocked writing a large result can
// never deadlock against a coordinator blocked writing its next task (pipe
// buffers are small).  Workers still compute concurrently — every idle
// worker is topped up before any receive happens.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "gossip/codec.hpp"
#include "obs/obs.hpp"
#include "shard/fault.hpp"
#include "shard/plan.hpp"
#include "shard/transport.hpp"
#include "shard/wire.hpp"
#include "util/assert.hpp"

namespace lpt::shard {

/// What the harness does when a worker goes down.
enum class RecoveryMode : std::uint8_t {
  kRespawn = 0,  // start a replacement worker, replay the lost frame
  kReassign,     // fold the dead shard's frames into surviving workers
  kFailFast,     // escalate immediately as ShardError (PR-5 behaviour,
                 // minus the abort: the caller chooses what dies)
};

const char* recovery_mode_name(RecoveryMode mode);

/// Bounds and knobs for the recovery machinery.
struct RecoveryPolicy {
  RecoveryMode mode = RecoveryMode::kRespawn;
  std::size_t max_respawns_per_shard = 2;  // then escalate as ShardError
  int recv_timeout_ms = -1;   // per-frame recv deadline; -1 blocks forever
                              // (EPIPE/EOF — actual deaths — are still
                              // detected; only hung-but-alive workers need
                              // a finite deadline)
  std::uint32_t backoff_base_ms = 0;  // respawn backoff: base << attempt,
                                      // saturated at max_backoff_ms (0:
                                      // retry immediately — the right
                                      // default for local forks)
  std::uint32_t max_backoff_ms = 10'000;  // cap on one backoff sleep; also
                                          // the saturation value once the
                                          // doubling would overflow
};

/// Backoff before the (attempt+1)-th respawn of one shard: base << attempt,
/// saturated.  A plain shift is UB once attempt reaches the bit width — a
/// caller raising max_respawns_per_shard past 31 with a nonzero base would
/// hit it — so both the exponent and the resulting delay are capped.
inline std::uint32_t respawn_backoff_ms(const RecoveryPolicy& p,
                                        std::size_t attempt) {
  if (p.backoff_base_ms == 0) return 0;
  if (attempt >= 32) return p.max_backoff_ms;  // shift would be UB: saturate
  const std::uint64_t raw = static_cast<std::uint64_t>(p.backoff_base_ms)
                            << attempt;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(raw, p.max_backoff_ms));
}

/// A worker failure the policy could not (or was told not to) absorb.
/// Thrown by ShardHarness::round; engine runs propagate it to the caller,
/// and the service layer maps it to QueryStatus::kTransientFailure.
class ShardError : public std::runtime_error {
 public:
  ShardError(std::size_t shard, DownCause cause, const std::string& what_arg)
      : std::runtime_error(what_arg), shard_(shard), cause_(cause) {}

  std::size_t shard() const noexcept { return shard_; }
  DownCause cause() const noexcept { return cause_; }

 private:
  std::size_t shard_;
  DownCause cause_;
};

/// Observability counters for the recovery machinery (never part of the
/// determinism contract — DistributedRunStats stays bit-identical; these
/// describe the *transport* weather, not the simulation).
struct ShardRecoveryStats {
  std::size_t workers_lost = 0;       // structured down events handled
  std::size_t respawns = 0;           // replacement workers started
  std::size_t frames_resent = 0;      // in-flight frames requeued + replayed
  std::size_t frames_reassigned = 0;  // frames folded into survivors
  std::size_t last_down_shard = 0;
  DownCause last_down_cause = DownCause::kEof;
  WorkerExit last_down_exit;  // how the dead worker actually ended
};

/// Engine-facing knob: how to shard a run.  Lives alongside
/// `parallel_nodes` in the engine configs; `shards >= 1` routes the
/// stage-A compute through the shard runtime (1 = one worker, useful for
/// exercising the wire path and measuring pure runtime overhead), and 0
/// keeps the in-process paths.  Sharding — including recovery and fault
/// injection — does not participate in the determinism contract: results
/// are bit-identical for every value.
struct ShardConfig {
  std::size_t shards = 0;  // 0: disabled; >= 1: worker count
  TransportKind transport = TransportKind::kInProc;
  std::size_t max_frame_nodes = 8192;  // cap on nodes per task/result frame:
                                       // a shard's round splits into
                                       // ceil(range / cap) sub-frames, so
                                       // frame bytes stay bounded by
                                       // per-node state, not by n (a 2^20
                                       // node range in one frame would blow
                                       // kMaxFrameBytes).  0 = one frame
                                       // per shard.  Like the transport,
                                       // this never affects results.
  RecoveryPolicy recovery;
  FaultScript fault_script;  // non-empty: wrap the transport in a
                             // FaultyTransport running this schedule
  ShardRecoveryStats* recovery_out = nullptr;  // non-null: the engine copies
                                               // the harness's recovery
                                               // counters here before it
                                               // returns (observability only;
                                               // never part of determinism)

  bool enabled() const noexcept { return shards >= 1; }
};

/// Generic worker serve loop: block for frames, dispatch task frames to
/// `serve(decoder, encoder)`, stop on the shutdown frame.  `serve` decodes
/// one task payload (message type already consumed) and encodes the
/// complete result payload including its leading message type.  A failed
/// send means the coordinator is gone (or has given up on this worker):
/// exit quietly — the coordinator's recovery owns the narrative.
template <typename Serve>
void worker_loop(Endpoint& ep, Serve&& serve) {
  for (;;) {
    const std::vector<std::uint8_t> frame = ep.recv();
    if (frame.empty()) return;  // peer gone (EOF): treat as shutdown
    gossip::Decoder d(frame);
    const MsgType type = get_msg_type(d);
    if (type == MsgType::kShutdown) return;
    LPT_CHECK_MSG(type == MsgType::kStageATask,
                  "shard worker: unexpected frame type");
    gossip::Encoder e;
    serve(d, e);
    LPT_CHECK_MSG(d.exhausted(), "shard worker: trailing bytes in task");
    if (!ep.send(e.bytes())) return;
  }
}

/// Worker loop for workers that inherit nothing via fork (the socket
/// transport's; any remotely launched worker).  The first frame must be a
/// kBootstrap carrying the run-static problem description;
/// `make_serve(decoder)` decodes it and builds the stage-A serve handler,
/// then the normal worker_loop runs.  A respawned replacement runs this
/// loop again from the top — the coordinator re-sends the bootstrap to
/// every fresh worker, so serve state is rebuilt entirely from the wire.
template <typename MakeServe>
void bootstrap_worker_loop(Endpoint& ep, MakeServe&& make_serve) {
  const std::vector<std::uint8_t> frame = ep.recv();
  if (frame.empty()) return;  // coordinator gone before the bootstrap
  gossip::Decoder d(frame);
  LPT_CHECK_MSG(get_msg_type(d) == MsgType::kBootstrap,
                "shard worker: expected a bootstrap frame first");
  auto serve = make_serve(d);
  LPT_CHECK_MSG(d.exhausted(), "shard worker: trailing bytes in bootstrap");
  worker_loop(ep, std::move(serve));
}

/// Coordinator-side harness: plan + transport + worker lifecycle +
/// failure recovery.  One harness serves one engine run; the destructor
/// shuts the workers down.
///
/// A shard's round is split into `ceil(range / max_frame_nodes)`
/// contiguous ascending *sub-frames* so a frame's size is bounded by
/// per-node state, never by n.  The global frame list is laid out
/// shard-major (all of shard 0's sub-frames, then shard 1's, ...), so
/// per-frame accumulations concatenated in frame-index order are still
/// exactly the ascending node order of a serial full scan.
class ShardHarness {
 public:
  /// Spawns cfg.shards workers running worker_loop(endpoint, serve) —
  /// `serve` is the engine's stage-A handler and must capture only state
  /// that is (a) immutable for the whole run and (b) meaningful in a
  /// forked child (the static problem description, sampler constants).
  /// For PipeTransport the fork happens here, before the engine's round
  /// loop allocates anything thread-related.  Respawned replacements get a
  /// fresh copy of the same closure: serve state is rebuilt from frames.
  template <typename Serve>
  ShardHarness(std::size_t n, const ShardConfig& cfg, Serve serve)
      : plan_(n, std::min(cfg.shards, n)),
        assignment_(plan_.shard_count()),
        recovery_(cfg.recovery) {
    init(cfg, n,
         // mutable: serve handlers own per-worker scratch (each spawned
         // worker gets its own copy of this closure, so no sharing).
         [serve = std::move(serve)](std::size_t, Endpoint& ep) mutable {
           worker_loop(ep, serve);
         });
  }

  /// Bootstrap-over-wire variant (socket transport; any worker that cannot
  /// inherit the problem via fork): `bootstrap_payload` is the engine's
  /// run-static problem description (schema opaque to the runtime) and
  /// `make_serve(decoder)` rebuilds the stage-A serve handler from it
  /// inside the worker.  The harness frames the payload as kBootstrap and
  /// ships it to every freshly spawned — and every respawned — worker
  /// before its first task, so worker state is built entirely from the
  /// wire.  Works on any transport; the fork-inheriting constructor above
  /// stays the default where fork inheritance is available.
  template <typename MakeServe>
  ShardHarness(std::size_t n, const ShardConfig& cfg,
               std::vector<std::uint8_t> bootstrap_payload,
               MakeServe make_serve)
      : plan_(n, std::min(cfg.shards, n)),
        assignment_(plan_.shard_count()),
        recovery_(cfg.recovery) {
    // Byte loop, not a range insert: GCC 12's -Wstringop-overread false-
    // fires on inserting a possibly-empty vector range after push_back.
    bootstrap_frame_.reserve(1 + bootstrap_payload.size());
    bootstrap_frame_.push_back(
        static_cast<std::uint8_t>(MsgType::kBootstrap));
    for (const std::uint8_t b : bootstrap_payload) {
      bootstrap_frame_.push_back(b);
    }
    init(cfg, n,
         [make_serve = std::move(make_serve)](std::size_t,
                                              Endpoint& ep) mutable {
           bootstrap_worker_loop(ep, make_serve);
         });
    for (std::size_t s = 0; s < plan_.shard_count(); ++s) send_bootstrap(s);
  }

  ~ShardHarness() {
    // If a round was abandoned mid-flight (ShardError unwound past it), a
    // worker may be blocked writing a result nobody will read; a shutdown
    // frame cannot reach its loop, so joining would deadlock.  Put those
    // workers down instead — the error path already decided this run dies.
    for (std::size_t s = 0; s < plan_.shard_count(); ++s) {
      if (assignment_.live(s) && lanes_[s].inflight != kNoFrame) {
        transport_->kill_worker(s);
        assignment_.mark_dead(s);
      }
    }
    gossip::Encoder bye;
    put_msg_type(bye, MsgType::kShutdown);
    for (std::size_t s = 0; s < plan_.shard_count(); ++s) {
      if (!assignment_.live(s)) continue;  // dead ones are expect_down()-ed
      if (!transport_->endpoint(s).send(bye.bytes())) {
        transport_->expect_down(s);  // died since we last looked
      }
    }
    transport_->join();
  }

  ShardHarness(const ShardHarness&) = delete;
  ShardHarness& operator=(const ShardHarness&) = delete;

  const ShardPlan& plan() const noexcept { return plan_; }

  /// Total sub-frames per round; engines size their per-frame accumulator
  /// vectors to this (frame i covers frame_range(i), shard-major, so
  /// accumulators walked in index order recover ascending node order).
  std::size_t frame_count() const noexcept { return frames_.size(); }
  ShardRange frame_range(std::size_t frame) const noexcept {
    return frames_[frame];
  }

  const ShardRecoveryStats& recovery_stats() const noexcept {
    return rstats_;
  }

  /// How `shard`'s current worker ended (kRunning while alive).
  WorkerExit worker_exit(std::size_t shard) { //
    return transport_->exit_status(shard);
  }

  /// Fault-injection hook: SIGKILL a real worker (lane-close for threads)
  /// mid-round, from outside the scripted FaultyTransport path.  The death
  /// is discovered — and recovered from — by the next round's send/recv
  /// like any other; it is marked expected so teardown stays quiet.
  void kill_worker(std::size_t shard) { transport_->kill_worker(shard); }

  /// One simulated round: encode_task(range, encoder) builds one task
  /// payload (after the message type, which round() writes);
  /// apply_result(frame, range, decoder) consumes one result payload.
  ///
  /// Each live worker serves its own shard's sub-frames as a FIFO (dead
  /// shards' FIFOs fold into survivors under kReassign) with at most one
  /// frame in flight per worker — see "Round-trip schedule" above.
  /// apply_result runs once per sub-frame, in any order the schedule
  /// produces — it must only write frame-indexed slots, never shared
  /// streams (stage B does that later, walking frames in index order).
  ///
  /// Task bytes are retained until the frame's result is applied, so a
  /// worker death anywhere in the round replays the exact same bytes.
  /// Throws ShardError when the recovery policy is exhausted (or is
  /// kFailFast); the harness stays destructible.
  template <typename EncodeTask, typename ApplyResult>
  void round(EncodeTask&& encode_task, ApplyResult&& apply_result) {
    const std::size_t k = plan_.shard_count();
    for (std::size_t s = 0; s < k; ++s) {
      Lane& L = lanes_[s];
      L.q.clear();
      L.head = 0;
      L.inflight = kNoFrame;
      for (std::size_t f = frame_offset_[s]; f < frames_end(s); ++f) {
        L.q.push_back(f);
      }
    }
    for (std::size_t s = 0; s < k; ++s) {  // shards already dead: fold now
      if (!assignment_.live(s)) fold_lane(s);
    }

    std::size_t applied = 0;
    while (applied < frames_.size()) {
      // Top up every idle live worker before receiving anything, so
      // workers compute concurrently.
      for (std::size_t s = 0; s < k; ++s) {
        Lane& L = lanes_[s];
        while (assignment_.live(s) && L.inflight == kNoFrame &&
               L.head < L.q.size()) {
          const std::size_t f = L.q[L.head];
          if (task_bytes_[f].empty()) {
            gossip::Encoder e;
            put_msg_type(e, MsgType::kStageATask);
            encode_task(frames_[f], e);
            task_bytes_[f] = e.bytes();
          }
          if (!transport_->endpoint(s).send(task_bytes_[f])) {
            on_worker_down(s, DownCause::kEpipe);
            continue;  // respawned: retry the frame; reassigned: lane
                       // is no longer live and the while exits
          }
          obs::trace_instant("shard.frame_send", f);
          ++L.head;
          L.inflight = f;
        }
      }
      // Drain one result from every worker with a frame in flight.
      for (std::size_t s = 0; s < k; ++s) {
        Lane& L = lanes_[s];
        if (!assignment_.live(s) || L.inflight == kNoFrame) continue;
        const std::size_t f = L.inflight;
        obs::TraceSpan recv_span("shard.frame_recv", f);
        RecvResult r =
            transport_->endpoint(s).recv_frame(recovery_.recv_timeout_ms);
        if (r.ok()) {
          if (r.frame.empty() ||
              r.frame[0] !=
                  static_cast<std::uint8_t>(MsgType::kStageAResult)) {
            // The stream is babbling: put the worker down (its remaining
            // output is untrustworthy) and recover like any other death.
            transport_->kill_worker(s);
            on_worker_down(s, DownCause::kCorrupt);
            continue;
          }
          gossip::Decoder d(r.frame);
          (void)get_msg_type(d);
          apply_result(f, frames_[f], d);
          LPT_CHECK_MSG(d.exhausted(),
                        "shard coordinator: trailing bytes in result");
          task_bytes_[f].clear();  // keeps capacity for the next round
          L.inflight = kNoFrame;
          ++applied;
        } else if (r.status == RecvResult::Status::kTimeout) {
          // Hung (or terminally slow) worker: the only way to preserve
          // the one-in-flight invariant is to put it down and replay.
          transport_->kill_worker(s);
          on_worker_down(s, DownCause::kTimeout);
        } else {
          on_worker_down(s, r.cause);
        }
      }
    }
  }

 private:
  static constexpr std::size_t kNoFrame = static_cast<std::size_t>(-1);

  /// Shared constructor body: sub-frame layout, lane state, transport
  /// creation (with the fault-script wrap), worker spawn.
  void init(const ShardConfig& cfg, std::size_t n, WorkerFn fn) {
    const std::size_t limit =
        cfg.max_frame_nodes ? cfg.max_frame_nodes : n;
    for (std::size_t s = 0; s < plan_.shard_count(); ++s) {
      const ShardRange r = plan_.range(s);
      frame_offset_.push_back(frames_.size());
      for (gossip::NodeId b = r.begin; b < r.end;
           b = static_cast<gossip::NodeId>(
               std::min<std::size_t>(b + limit, r.end))) {
        frames_.push_back(
            {b, static_cast<gossip::NodeId>(
                    std::min<std::size_t>(b + limit, r.end))});
      }
    }
    task_bytes_.resize(frames_.size());
    lanes_.resize(plan_.shard_count());
    respawns_.assign(plan_.shard_count(), 0);
    transport_ = make_transport(cfg.transport);
    if (!cfg.fault_script.empty()) {
      transport_ = std::make_unique<FaultyTransport>(std::move(transport_),
                                                     cfg.fault_script);
    }
    transport_->spawn(plan_.shard_count(), std::move(fn));
  }

  /// Ship the bootstrap frame (if this harness has one) to shard s's fresh
  /// worker.  A failed send means the worker is already gone; that is
  /// deliberately ignored — the next task send discovers the death through
  /// the normal recovery path (reporting it from here would recurse into
  /// on_worker_down mid-recovery).
  void send_bootstrap(std::size_t s) {
    if (bootstrap_frame_.empty()) return;
    (void)transport_->endpoint(s).send(bootstrap_frame_);
  }

  /// Coordinator-side schedule state for one worker: the FIFO of frame
  /// indices it still owes this round, and its single in-flight frame.
  struct Lane {
    std::vector<std::size_t> q;
    std::size_t head = 0;
    std::size_t inflight = kNoFrame;
  };

  std::size_t frames_end(std::size_t s) const noexcept {
    return s + 1 < frame_offset_.size() ? frame_offset_[s + 1]
                                        : frames_.size();
  }

  /// Move lane s's pending frames to surviving workers, round-robin
  /// ascending from s (deterministic given the death sequence).
  void fold_lane(std::size_t s) {
    Lane& L = lanes_[s];
    std::size_t t = s;
    for (std::size_t i = L.head; i < L.q.size(); ++i) {
      t = assignment_.next_live(t);
      lanes_[t].q.push_back(L.q[i]);
      ++rstats_.frames_reassigned;
      obs::counter("shard.frames_reassigned").add(1);
    }
    L.q.clear();
    L.head = 0;
  }

  /// Handle one structured worker-down event: requeue the in-flight
  /// frame, record/log the cause and the worker's real exit status, then
  /// respawn / reassign / escalate per policy.
  void on_worker_down(std::size_t s, DownCause cause) {
    Lane& L = lanes_[s];
    if (L.inflight != kNoFrame) {
      --L.head;  // q[head] still holds the in-flight frame index
      L.inflight = kNoFrame;
      ++rstats_.frames_resent;
      obs::counter("shard.frames_resent").add(1);
      // Recovery is rare and diagnostic gold: bypass the sampling gate
      // so a requeue is visible even in an unsampled round.
      obs::trace_rare("shard.frame_requeue", L.q[L.head]);
    }
    const WorkerExit ex = transport_->exit_status(s);
    ++rstats_.workers_lost;
    obs::counter("shard.workers_lost").add(1);
    rstats_.last_down_shard = s;
    rstats_.last_down_cause = cause;
    rstats_.last_down_exit = ex;
    transport_->expect_down(s);
    std::fprintf(stderr, "[shard] worker %zu down: %s (%s; policy %s)\n", s,
                 down_cause_name(cause), exit_desc(ex).c_str(),
                 recovery_mode_name(recovery_.mode));
    switch (recovery_.mode) {
      case RecoveryMode::kFailFast:
        assignment_.mark_dead(s);
        throw ShardError(s, cause,
                         "shard worker " + std::to_string(s) + " down (" +
                             down_cause_name(cause) + "; " + exit_desc(ex) +
                             "); policy is fail_fast");
      case RecoveryMode::kRespawn: {
        if (respawns_[s] >= recovery_.max_respawns_per_shard) {
          assignment_.mark_dead(s);
          throw ShardError(
              s, cause,
              "shard worker " + std::to_string(s) + " down (" +
                  down_cause_name(cause) + "; " + exit_desc(ex) +
                  "); respawn budget (" +
                  std::to_string(recovery_.max_respawns_per_shard) +
                  ") exhausted");
        }
        const std::uint32_t backoff =
            respawn_backoff_ms(recovery_, respawns_[s]);
        if (backoff > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        }
        transport_->respawn(s);
        ++respawns_[s];
        ++rstats_.respawns;
        obs::counter("shard.respawns").add(1);
        obs::trace_rare("shard.recovery_respawn", s);
        send_bootstrap(s);  // a replacement worker starts from the wire
        break;
      }
      case RecoveryMode::kReassign: {
        assignment_.mark_dead(s);
        if (assignment_.live_count() == 0) {
          throw ShardError(s, cause,
                           "shard worker " + std::to_string(s) + " down (" +
                               down_cause_name(cause) +
                               "); no surviving workers to reassign to");
        }
        obs::trace_rare("shard.recovery_reassign", s);
        fold_lane(s);
        break;
      }
    }
  }

  static std::string exit_desc(const WorkerExit& ex) {
    switch (ex.kind) {
      case WorkerExit::Kind::kRunning:
        return "worker still running";
      case WorkerExit::Kind::kExited:
        return "exit code " + std::to_string(ex.value);
      case WorkerExit::Kind::kSignaled:
        return "signal " + std::to_string(ex.value);
    }
    return "unknown exit";
  }

  ShardPlan plan_;
  ShardAssignment assignment_;           // which workers still serve
  RecoveryPolicy recovery_;
  ShardRecoveryStats rstats_;
  std::vector<ShardRange> frames_;        // shard-major sub-frame ranges
  std::vector<std::size_t> frame_offset_; // first frame index per shard
  std::vector<Lane> lanes_;               // per-worker round schedule
  std::vector<std::size_t> respawns_;     // replacements started per shard
  // Authoritative copy of every task frame shipped this round, retained
  // until its result is applied (cleared then, capacity kept).  Encoding
  // never mutates coordinator state, so these bytes — which embed the
  // per-node RNG snapshots — replay bit-identically on any worker.
  std::vector<std::vector<std::uint8_t>> task_bytes_;
  // Framed kBootstrap message (type byte + engine payload); empty for
  // fork-inheriting harnesses.  Run-static, so one buffer serves every
  // spawn and respawn of every shard.
  std::vector<std::uint8_t> bootstrap_frame_;
  std::unique_ptr<Transport> transport_;
};

}  // namespace lpt::shard
