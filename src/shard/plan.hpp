// Shard partition of the simulated node range.
//
// The shard runtime (shard/runtime.hpp) splits the node range [0, n) into
// `shards` *contiguous* ranges, one per worker.  Contiguity is load-bearing,
// not cosmetic: the engines' stage-B replay recovers the exact node order
// (and hence the exact shared-RNG stream) of a serial full scan by
// concatenating per-shard ascending candidate lists in shard order — the
// same contract util::parallel_chunks gives the in-process thread pool.  A
// non-contiguous ownership map would break that concatenation and with it
// the bit-identity guarantee.
//
// The partition depends only on (n, shards) — never on transport, schedule,
// or machine — so every participant (coordinator, workers, tests) derives
// the identical plan locally instead of negotiating it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gossip/metrics.hpp"
#include "util/assert.hpp"

namespace lpt::shard {

/// Half-open node range [begin, end) owned by one shard.
struct ShardRange {
  gossip::NodeId begin = 0;
  gossip::NodeId end = 0;

  std::size_t size() const noexcept { return end - begin; }
  bool contains(gossip::NodeId v) const noexcept {
    return begin <= v && v < end;
  }
};

/// Deterministic contiguous partition of [0, n) into `shards` ranges whose
/// sizes differ by at most one (shard s owns [floor(s*n/k), floor((s+1)*n/k))).
class ShardPlan {
 public:
  ShardPlan(std::size_t n, std::size_t shards) : n_(n), shards_(shards) {
    LPT_CHECK_MSG(n >= 1, "ShardPlan needs at least one node");
    LPT_CHECK_MSG(shards >= 1, "ShardPlan needs at least one shard");
    LPT_CHECK_MSG(shards <= n,
                  "more shards than nodes: empty shards are pointless");
  }

  std::size_t nodes() const noexcept { return n_; }
  std::size_t shard_count() const noexcept { return shards_; }

  ShardRange range(std::size_t s) const noexcept {
    return {boundary(s), boundary(s + 1)};
  }

  /// Ownership map: the shard whose range contains node v.  Closed form of
  /// the floor-split inverse; O(1), no boundary table.
  std::size_t owner(gossip::NodeId v) const noexcept {
    // begin(s) = floor(s*n/k) <= v  <=>  s <= (v*k + k - 1) / n (integer),
    // so the owner is the largest such s.
    const std::size_t s =
        (static_cast<std::size_t>(v) * shards_ + shards_ - 1) / n_;
    // Guard the closed form against its own off-by-one at range starts.
    if (s < shards_ && range(s).contains(v)) return s;
    return s == 0 ? 0 : s - 1;
  }

 private:
  gossip::NodeId boundary(std::size_t s) const noexcept {
    return static_cast<gossip::NodeId>((s * n_) / shards_);
  }

  std::size_t n_;
  std::size_t shards_;
};

/// Recovery-time view over a plan: which workers are still serving.  The
/// *plan* (shard -> node range) never changes — that is what keeps replayed
/// frames bit-identical — but under the reassign recovery policy the
/// *assignment* (frame -> serving worker) does: a dead shard's sub-frames
/// fold into the surviving workers.  Fold targets are chosen round-robin
/// ascending from the dead shard, so the assignment depends only on the
/// sequence of deaths, never on timing.  Workers are stateless per frame,
/// so which worker serves a frame cannot affect its result bytes.
class ShardAssignment {
 public:
  explicit ShardAssignment(std::size_t shards)
      : live_(shards, 1), live_count_(shards) {}

  bool live(std::size_t worker) const noexcept { return live_[worker] != 0; }
  std::size_t live_count() const noexcept { return live_count_; }

  void mark_dead(std::size_t worker) noexcept {
    if (live_[worker]) {
      live_[worker] = 0;
      --live_count_;
    }
  }

  void mark_live(std::size_t worker) noexcept {  // a respawned replacement
    if (!live_[worker]) {
      live_[worker] = 1;
      ++live_count_;
    }
  }

  /// Next live worker strictly after `after`, cyclically.  Precondition:
  /// live_count() >= 1.
  std::size_t next_live(std::size_t after) const noexcept {
    for (std::size_t step = 1; step <= live_.size(); ++step) {
      const std::size_t c = (after + step) % live_.size();
      if (live_[c]) return c;
    }
    return after;  // unreachable under the precondition
  }

 private:
  std::vector<std::uint8_t> live_;
  std::size_t live_count_;
};

}  // namespace lpt::shard
