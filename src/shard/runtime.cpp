// Transport implementations for the shard runtime (see shard/transport.hpp
// for the design).  Everything transport-specific lives here so the
// header-only engine glue stays free of OS includes.
#include "shard/transport.hpp"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include "shard/wire.hpp"
#include "util/assert.hpp"

namespace lpt::shard {

namespace detail {

void FrameQueue::push(std::vector<std::uint8_t> frame) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    frames_.push_back(std::move(frame));
  }
  cv_.notify_one();
}

std::vector<std::uint8_t> FrameQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !frames_.empty(); });
  std::vector<std::uint8_t> frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

namespace {

/// Queue-backed endpoint: the in-process analogue of a pipe pair.  The
/// payload is copied on send — the receiving side must never alias the
/// sender's buffers, or the in-process mode would stop being a faithful
/// rehearsal of the process mode.
class QueueEndpoint final : public Endpoint {
 public:
  QueueEndpoint(FrameQueue& in, FrameQueue& out) : in_(&in), out_(&out) {}

  void send(std::span<const std::uint8_t> payload) override {
    LPT_CHECK_MSG(payload.size() <= kMaxFrameBytes,
                  "shard frame exceeds kMaxFrameBytes");
    out_->push(std::vector<std::uint8_t>(payload.begin(), payload.end()));
  }

  std::vector<std::uint8_t> recv() override { return in_->pop(); }

 private:
  FrameQueue* in_;
  FrameQueue* out_;
};

/// Close every fd the forked worker inherited except stdio and its own
/// pipe ends.  Concurrent harnesses (a bench running repetitions on a
/// thread pool spawns one per rep) interleave pipe()/fork() freely, so a
/// child would otherwise hold other runs' pipe write ends open — breaking
/// their EOF-based cleanup and leaking fds.  The /proc sweep makes each
/// child self-contained no matter how the spawns interleaved.
void close_inherited_fds(int keep_read, int keep_write) {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return;  // /proc unavailable: best effort only
  std::vector<int> to_close;
  const int dir_fd = ::dirfd(dir);
  while (const dirent* entry = ::readdir(dir)) {
    char* end = nullptr;
    const long fd = std::strtol(entry->d_name, &end, 10);
    if (end == entry->d_name || *end != '\0') continue;  // "." / ".."
    if (fd <= 2 || fd == keep_read || fd == keep_write || fd == dir_fd) {
      continue;
    }
    to_close.push_back(static_cast<int>(fd));
  }
  ::closedir(dir);
  for (const int fd : to_close) ::close(fd);
}

void write_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t w = ::write(fd, p, len);
    if (w < 0) {
      if (errno == EINTR) continue;
      LPT_CHECK_MSG(false, "shard pipe write failed");
    }
    p += w;
    len -= static_cast<std::size_t>(w);
  }
}

/// Read exactly len bytes.  Returns false on clean EOF at a frame
/// boundary (offset 0); aborts on EOF mid-frame or on errors.
bool read_all(int fd, void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t r = ::read(fd, p + got, len - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      LPT_CHECK_MSG(false, "shard pipe read failed");
    }
    if (r == 0) {
      LPT_CHECK_MSG(got == 0, "shard pipe truncated mid-frame");
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace
}  // namespace detail

// --- InProcTransport ------------------------------------------------------

struct InProcTransport::Lane {
  detail::FrameQueue to_worker;
  detail::FrameQueue to_coordinator;
  // Endpoints are constructed after the queues they reference.
  detail::QueueEndpoint coordinator{to_coordinator, to_worker};
  detail::QueueEndpoint worker{to_worker, to_coordinator};
};

InProcTransport::InProcTransport() = default;

InProcTransport::~InProcTransport() { join(); }

void InProcTransport::spawn(std::size_t shards, WorkerFn worker) {
  LPT_CHECK_MSG(lanes_.empty(), "Transport::spawn called twice");
  lanes_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  threads_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    threads_.emplace_back(
        [s, worker, lane = lanes_[s].get()] { worker(s, lane->worker); });
  }
}

Endpoint& InProcTransport::endpoint(std::size_t shard) {
  return lanes_[shard]->coordinator;
}

void InProcTransport::join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

// --- PipeTransport --------------------------------------------------------

PipeEndpoint::~PipeEndpoint() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0) ::close(write_fd_);
}

void PipeEndpoint::send(std::span<const std::uint8_t> payload) {
  LPT_CHECK_MSG(payload.size() <= kMaxFrameBytes,
                "shard frame exceeds kMaxFrameBytes");
  const auto len = static_cast<std::uint32_t>(payload.size());
  detail::write_all(write_fd_, &len, sizeof len);
  detail::write_all(write_fd_, payload.data(), payload.size());
}

std::vector<std::uint8_t> PipeEndpoint::recv() {
  std::uint32_t len = 0;
  if (!detail::read_all(read_fd_, &len, sizeof len)) {
    // Clean EOF at a frame boundary: the peer is gone.  Returned as an
    // empty frame; worker_loop treats it as shutdown (a coordinator that
    // died mid-run must not leave children aborting), while a coordinator
    // expecting a result trips the result-type check loudly.
    return {};
  }
  LPT_CHECK_MSG(len <= kMaxFrameBytes,
                "shard frame length prefix exceeds kMaxFrameBytes");
  std::vector<std::uint8_t> payload(len);
  if (len > 0) {
    LPT_CHECK_MSG(detail::read_all(read_fd_, payload.data(), len),
                  "shard pipe truncated mid-frame");
  }
  return payload;
}

PipeTransport::PipeTransport() = default;

PipeTransport::~PipeTransport() {
  // Endpoints close first (their destructors run in join's caller chain
  // anyway): a child blocked in recv() sees EOF and exits if the shutdown
  // frame never made it.
  endpoints_.clear();
  join();
}

void PipeTransport::spawn(std::size_t shards, WorkerFn worker) {
  LPT_CHECK_MSG(endpoints_.empty(), "Transport::spawn called twice");
  // A write to a dead worker must surface as EPIPE (and the loud
  // write_all check), not kill the coordinator with SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  for (std::size_t s = 0; s < shards; ++s) {
    int task_pipe[2];    // coordinator -> worker
    int result_pipe[2];  // worker -> coordinator
    LPT_CHECK_MSG(::pipe(task_pipe) == 0 && ::pipe(result_pipe) == 0,
                  "pipe() failed");
    const pid_t pid = ::fork();
    LPT_CHECK_MSG(pid >= 0, "fork() failed");
    if (pid == 0) {
      // Worker process: keep only stdio and this worker's own pipe ends —
      // sibling shards' fds AND any concurrently spawning harness's fds
      // (bench thread pools fork in parallel) are swept via /proc.
      detail::close_inherited_fds(task_pipe[0], result_pipe[1]);
      {
        PipeEndpoint ep(task_pipe[0], result_pipe[1]);
        worker(s, ep);
      }
      // _exit, not exit: no atexit handlers / stream flushes inherited
      // from the coordinator may run in the child.
      ::_exit(0);
    }
    ::close(task_pipe[0]);
    ::close(result_pipe[1]);
    endpoints_.push_back(
        std::make_unique<PipeEndpoint>(result_pipe[0], task_pipe[1]));
    children_.push_back(pid);
  }
}

Endpoint& PipeTransport::endpoint(std::size_t shard) {
  return *endpoints_[shard];
}

void PipeTransport::join() {
  for (const pid_t pid : children_) {
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(pid, &status, 0);
    } while (r < 0 && errno == EINTR);
    LPT_CHECK_MSG(r == pid, "waitpid failed for shard worker");
    LPT_CHECK_MSG(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                  "shard worker process exited abnormally");
  }
  children_.clear();
}

std::unique_ptr<Transport> make_transport(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProc:
      return std::make_unique<InProcTransport>();
    case TransportKind::kPipe:
      return std::make_unique<PipeTransport>();
  }
  LPT_CHECK_MSG(false, "unknown TransportKind");
  return nullptr;
}

}  // namespace lpt::shard
