// Transport implementations for the shard runtime (see shard/transport.hpp
// for the design and shard/fault.hpp for the scripted fault injection).
// Everything transport-specific lives here so the header-only engine glue
// stays free of OS includes.
#include "shard/transport.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "shard/fault.hpp"
#include "shard/runtime.hpp"
#include "shard/wire.hpp"
#include "util/assert.hpp"

namespace lpt::shard {

const char* recovery_mode_name(RecoveryMode mode) {
  switch (mode) {
    case RecoveryMode::kRespawn:
      return "respawn";
    case RecoveryMode::kReassign:
      return "reassign";
    case RecoveryMode::kFailFast:
      return "fail_fast";
  }
  return "unknown";
}

const char* down_cause_name(DownCause cause) {
  switch (cause) {
    case DownCause::kEof:
      return "eof";
    case DownCause::kTruncated:
      return "truncated";
    case DownCause::kOversized:
      return "oversized-frame";
    case DownCause::kEpipe:
      return "epipe";
    case DownCause::kTimeout:
      return "timeout";
    case DownCause::kCorrupt:
      return "corrupt-frame";
    case DownCause::kKilled:
      return "killed";
  }
  return "unknown";
}

// --- Endpoint: the strict legacy wrapper. ---------------------------------

std::vector<std::uint8_t> Endpoint::recv() {
  RecvResult r = recv_frame(-1);
  if (r.ok()) return std::move(r.frame);
  switch (r.cause) {
    case DownCause::kEof:
      // Clean EOF at a frame boundary: the peer is gone.  Returned as an
      // empty frame; worker_loop treats it as shutdown (a coordinator that
      // died mid-run must not leave children aborting), while a coordinator
      // expecting a result trips the result-type check loudly.
      return {};
    case DownCause::kOversized:
      LPT_CHECK_MSG(false,
                    "shard frame length prefix exceeds kMaxFrameBytes");
      break;
    case DownCause::kTruncated:
      LPT_CHECK_MSG(false, "shard stream truncated mid-frame");
      break;
    default:
      LPT_CHECK_MSG(false, "shard stream failed");
      break;
  }
  return {};
}

namespace detail {

void FrameQueue::push(std::vector<std::uint8_t> frame) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;  // a dead lane swallows frames, like a dead pipe
    frames_.push_back(std::move(frame));
  }
  cv_.notify_one();
}

RecvResult FrameQueue::pop(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto ready = [this] { return !frames_.empty() || closed_; };
  if (timeout_ms < 0) {
    cv_.wait(lock, ready);
  } else if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           ready)) {
    return {RecvResult::Status::kTimeout, DownCause::kTimeout, {}};
  }
  if (frames_.empty()) {  // closed and drained: the lane analogue of EOF
    return {RecvResult::Status::kDown, DownCause::kEof, {}};
  }
  RecvResult r;
  r.frame = std::move(frames_.front());
  frames_.pop_front();
  return r;
}

void FrameQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool FrameQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

namespace {

/// Queue-backed endpoint: the in-process analogue of a pipe pair.  The
/// payload is copied on send — the receiving side must never alias the
/// sender's buffers, or the in-process mode would stop being a faithful
/// rehearsal of the process mode.
class QueueEndpoint final : public Endpoint {
 public:
  QueueEndpoint(FrameQueue& in, FrameQueue& out) : in_(&in), out_(&out) {}

  bool send(std::span<const std::uint8_t> payload) override {
    LPT_CHECK_MSG(payload.size() <= kMaxFrameBytes,
                  "shard frame exceeds kMaxFrameBytes");
    if (out_->closed()) return false;  // the lane analogue of EPIPE
    out_->push(std::vector<std::uint8_t>(payload.begin(), payload.end()));
    return true;
  }

  RecvResult recv_frame(int timeout_ms) override {
    return in_->pop(timeout_ms);
  }

 private:
  FrameQueue* in_;
  FrameQueue* out_;
};

/// Close every fd the forked worker inherited except stdio and its own
/// pipe ends.  Concurrent harnesses (a bench running repetitions on a
/// thread pool spawns one per rep) interleave pipe()/fork() freely, so a
/// child would otherwise hold other runs' pipe write ends open — breaking
/// their EOF-based cleanup and leaking fds.  The /proc sweep makes each
/// child self-contained no matter how the spawns interleaved.
void close_inherited_fds(int keep_read, int keep_write) {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return;  // /proc unavailable: best effort only
  std::vector<int> to_close;
  const int dir_fd = ::dirfd(dir);
  while (const dirent* entry = ::readdir(dir)) {
    char* end = nullptr;
    const long fd = std::strtol(entry->d_name, &end, 10);
    if (end == entry->d_name || *end != '\0') continue;  // "." / ".."
    if (fd <= 2 || fd == keep_read || fd == keep_write || fd == dir_fd) {
      continue;
    }
    to_close.push_back(static_cast<int>(fd));
  }
  ::closedir(dir);
  for (const int fd : to_close) ::close(fd);
}

}  // namespace

// Declared in transport.hpp (namespace-scope, not anonymous: the fd-backed
// endpoints share them and tests exercise them directly).

bool write_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t w = ::write(fd, p, len);
    if (w < 0) {
      if (errno == EINTR) continue;
      // EPIPE: the peer's read end is gone.  ECONNRESET: the peer's socket
      // died with data still in flight.  Both mean "worker down", which is
      // the structured recovery path, not an abort.
      if (errno == EPIPE || errno == ECONNRESET) return false;
      LPT_CHECK_MSG(false, "shard stream write failed");
    }
    p += w;
    len -= static_cast<std::size_t>(w);
  }
  return true;
}

ReadStatus read_all_deadline(
    int fd, void* data, std::size_t len, bool has_deadline,
    std::chrono::steady_clock::time_point deadline) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < len) {
    if (has_deadline) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return ReadStatus::kTimeout;
      // Round the remaining budget UP to whole milliseconds: truncating
      // toward zero made a budget in (0, 1 ms) report kTimeout with real
      // time still left — a frame already sitting in the buffer was never
      // even polled for.  ceil keeps `left >= 1` whenever now < deadline.
      const auto left =
          std::chrono::ceil<std::chrono::milliseconds>(deadline - now)
              .count();
      pollfd pfd{fd, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, static_cast<int>(left));
      if (pr < 0) {
        if (errno == EINTR) continue;
        LPT_CHECK_MSG(false, "shard stream poll failed");
      }
      if (pr == 0) return ReadStatus::kTimeout;
    }
    const ssize_t r = ::read(fd, p + got, len - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      // A reset stream is the socket's way of dying: at a frame boundary
      // it reads as the peer being cleanly gone, mid-frame as truncation.
      if (errno == ECONNRESET) {
        return got == 0 ? ReadStatus::kCleanEof : ReadStatus::kTruncated;
      }
      LPT_CHECK_MSG(false, "shard stream read failed");
    }
    if (r == 0) {
      return got == 0 ? ReadStatus::kCleanEof : ReadStatus::kTruncated;
    }
    got += static_cast<std::size_t>(r);
  }
  return ReadStatus::kOk;
}

bool send_frame_fd(int fd, std::span<const std::uint8_t> payload) {
  LPT_CHECK_MSG(payload.size() <= kMaxFrameBytes,
                "shard frame exceeds kMaxFrameBytes");
  const auto len = static_cast<std::uint32_t>(payload.size());
  if (!write_all(fd, &len, sizeof len)) return false;
  return write_all(fd, payload.data(), payload.size());
}

RecvResult recv_frame_fd(int fd, int timeout_ms) {
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(has_deadline ? timeout_ms
                                                               : 0);
  std::uint32_t len = 0;
  switch (read_all_deadline(fd, &len, sizeof len, has_deadline, deadline)) {
    case ReadStatus::kCleanEof:
      return {RecvResult::Status::kDown, DownCause::kEof, {}};
    case ReadStatus::kTruncated:
      return {RecvResult::Status::kDown, DownCause::kTruncated, {}};
    case ReadStatus::kTimeout:
      return {RecvResult::Status::kTimeout, DownCause::kTimeout, {}};
    case ReadStatus::kOk:
      break;
  }
  if (len > kMaxFrameBytes) {
    // A garbage or truncated stream otherwise turns into an attempted
    // multi-gigabyte allocation; the stream is unusable from here on.
    return {RecvResult::Status::kDown, DownCause::kOversized, {}};
  }
  RecvResult r;
  r.frame.resize(len);
  if (len > 0) {
    switch (read_all_deadline(fd, r.frame.data(), len, has_deadline,
                              deadline)) {
      case ReadStatus::kCleanEof:
      case ReadStatus::kTruncated:
        return {RecvResult::Status::kDown, DownCause::kTruncated, {}};
      case ReadStatus::kTimeout:
        return {RecvResult::Status::kTimeout, DownCause::kTimeout, {}};
      case ReadStatus::kOk:
        break;
    }
  }
  return r;
}

}  // namespace detail

// --- InProcTransport ------------------------------------------------------

struct InProcTransport::Lane {
  detail::FrameQueue to_worker;
  detail::FrameQueue to_coordinator;
  // Endpoints are constructed after the queues they reference.
  detail::QueueEndpoint coordinator{to_coordinator, to_worker};
  detail::QueueEndpoint worker{to_worker, to_coordinator};
};

InProcTransport::InProcTransport() = default;

InProcTransport::~InProcTransport() { join(); }

void InProcTransport::start_worker(std::size_t shard) {
  lanes_[shard] = std::make_unique<Lane>();
  exits_[shard] = WorkerExit{};
  threads_[shard] = std::thread(
      [shard, worker = worker_fn_, lane = lanes_[shard].get()] {
        worker(shard, lane->worker);
      });
}

void InProcTransport::spawn(std::size_t shards, WorkerFn worker) {
  LPT_CHECK_MSG(lanes_.empty(), "Transport::spawn called twice");
  worker_fn_ = std::move(worker);
  lanes_.resize(shards);
  threads_.resize(shards);
  exits_.resize(shards);
  expected_down_.assign(shards, 0);
  for (std::size_t s = 0; s < shards; ++s) start_worker(s);
}

Endpoint& InProcTransport::endpoint(std::size_t shard) {
  return lanes_[shard]->coordinator;
}

void InProcTransport::kill_worker(std::size_t shard) {
  expected_down_[shard] = 1;
  if (!threads_[shard].joinable()) return;
  // Closing both queues is the in-process kill: the worker's next pop or
  // push observes a dead lane and the loop exits; a mid-compute worker
  // finishes its frame into the void.  Unlike SIGKILL this lets the thread
  // run to its next lane touch, but the coordinator-visible outcome is the
  // same — the stream is down and any in-flight result is lost.
  lanes_[shard]->to_worker.close();
  lanes_[shard]->to_coordinator.close();
  threads_[shard].join();
  exits_[shard] = WorkerExit{WorkerExit::Kind::kSignaled, SIGKILL};
}

void InProcTransport::respawn(std::size_t shard) {
  kill_worker(shard);
  expected_down_[shard] = 0;
  start_worker(shard);
}

WorkerExit InProcTransport::exit_status(std::size_t shard) {
  return exits_[shard];
}

void InProcTransport::expect_down(std::size_t shard) {
  expected_down_[shard] = 1;
}

void InProcTransport::join() {
  for (std::size_t s = 0; s < threads_.size(); ++s) {
    if (!threads_[s].joinable()) continue;
    threads_[s].join();
    if (exits_[s].kind == WorkerExit::Kind::kRunning) {
      exits_[s] = WorkerExit{WorkerExit::Kind::kExited, 0};
    }
  }
}

// --- Fd-backed endpoints --------------------------------------------------

PipeEndpoint::~PipeEndpoint() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0) ::close(write_fd_);
}

bool PipeEndpoint::send(std::span<const std::uint8_t> payload) {
  return detail::send_frame_fd(write_fd_, payload);
}

RecvResult PipeEndpoint::recv_frame(int timeout_ms) {
  return detail::recv_frame_fd(read_fd_, timeout_ms);
}

SocketEndpoint::~SocketEndpoint() {
  if (fd_ >= 0) ::close(fd_);
}

bool SocketEndpoint::send(std::span<const std::uint8_t> payload) {
  return detail::send_frame_fd(fd_, payload);
}

RecvResult SocketEndpoint::recv_frame(int timeout_ms) {
  return detail::recv_frame_fd(fd_, timeout_ms);
}

// --- ProcessTransport (shared fork/reap machinery) ------------------------

ProcessTransport::~ProcessTransport() { teardown(); }

void ProcessTransport::teardown() {
  // Endpoints close first: a child blocked in recv() sees EOF and exits if
  // the shutdown frame never made it.
  for (WorkerSlot& w : workers_) w.ep.reset();
  join();
}

void ProcessTransport::spawn(std::size_t shards, WorkerFn worker) {
  LPT_CHECK_MSG(workers_.empty(), "Transport::spawn called twice");
  worker_fn_ = std::move(worker);
  // A write to a dead worker must surface as EPIPE/ECONNRESET (and the
  // structured worker-down path), not kill the coordinator with SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  workers_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) start_worker(s);
}

Endpoint& ProcessTransport::endpoint(std::size_t shard) {
  return *workers_[shard].ep;
}

void ProcessTransport::reap(std::size_t shard, bool block) {
  WorkerSlot& w = workers_[shard];
  if (w.reaped) return;
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(w.pid, &status, block ? 0 : WNOHANG);
  } while (r < 0 && errno == EINTR);
  if (r == 0) return;  // still running (WNOHANG)
  LPT_CHECK_MSG(r == w.pid, "waitpid failed for shard worker");
  // Record the real cause exactly once, at reap time — a worker that died
  // mid-run keeps its exit code / signal number observable ever after.
  if (WIFEXITED(status)) {
    w.exit = WorkerExit{WorkerExit::Kind::kExited, WEXITSTATUS(status)};
  } else if (WIFSIGNALED(status)) {
    w.exit = WorkerExit{WorkerExit::Kind::kSignaled, WTERMSIG(status)};
  } else {
    w.exit = WorkerExit{WorkerExit::Kind::kExited, -1};
  }
  w.reaped = true;
}

void ProcessTransport::kill_worker(std::size_t shard) {
  WorkerSlot& w = workers_[shard];
  w.expected_down = true;
  if (w.reaped) return;
  ::kill(w.pid, SIGKILL);  // ESRCH (already gone) is fine: reap below
  reap(shard, /*block=*/true);
}

void ProcessTransport::respawn(std::size_t shard) {
  kill_worker(shard);
  WorkerSlot& w = workers_[shard];
  w.ep.reset();  // close the dead stream's coordinator fds before reuse
  w.expected_down = false;
  start_worker(shard);
}

WorkerExit ProcessTransport::exit_status(std::size_t shard) {
  reap(shard, /*block=*/false);  // observe a zombie without waiting
  return workers_[shard].exit;
}

void ProcessTransport::expect_down(std::size_t shard) {
  workers_[shard].expected_down = true;
}

void ProcessTransport::join() {
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    WorkerSlot& w = workers_[s];
    if (w.pid < 0) continue;
    reap(s, /*block=*/true);
    const bool clean =
        w.exit.kind == WorkerExit::Kind::kExited && w.exit.value == 0;
    LPT_CHECK_MSG(clean || w.expected_down,
                  "shard worker process exited abnormally");
    w.pid = -1;
  }
}

// --- PipeTransport --------------------------------------------------------

PipeTransport::PipeTransport() = default;

PipeTransport::~PipeTransport() { teardown(); }

void PipeTransport::start_worker(std::size_t shard) {
  int task_pipe[2];    // coordinator -> worker
  int result_pipe[2];  // worker -> coordinator
  LPT_CHECK_MSG(::pipe(task_pipe) == 0 && ::pipe(result_pipe) == 0,
                "pipe() failed");
  const pid_t pid = ::fork();
  LPT_CHECK_MSG(pid >= 0, "fork() failed");
  if (pid == 0) {
    // Worker process: keep only stdio and this worker's own pipe ends —
    // sibling shards' fds AND any concurrently spawning harness's fds
    // (bench thread pools fork in parallel) are swept via /proc.
    detail::close_inherited_fds(task_pipe[0], result_pipe[1]);
    {
      PipeEndpoint ep(task_pipe[0], result_pipe[1]);
      worker_fn_(shard, ep);
    }
    // _exit, not exit: no atexit handlers / stream flushes inherited
    // from the coordinator may run in the child.
    ::_exit(0);
  }
  ::close(task_pipe[0]);
  ::close(result_pipe[1]);
  WorkerSlot& w = workers_[shard];
  w.pid = pid;
  w.ep = std::make_unique<PipeEndpoint>(result_pipe[0], task_pipe[1]);
  w.exit = WorkerExit{};
  w.reaped = false;
}

// --- SocketTransport ------------------------------------------------------

namespace {

/// How long the coordinator waits for a freshly forked worker to connect
/// back and identify itself.  Generous: a loaded 1-core box interleaves the
/// child's exec-free startup with everything else, but a worker that has
/// not connected within this window is genuinely lost.
constexpr int kAcceptTimeoutMs = 30'000;

void set_nodelay(int fd) {
  // Lockstep request/response with small frames is the pathological case
  // for Nagle's algorithm: a delayed last segment stalls the whole round.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

SocketTransport::SocketTransport() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  LPT_CHECK_MSG(listen_fd_ >= 0, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral: the OS picks a free port
  LPT_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof addr) == 0,
                "bind() on loopback failed");
  socklen_t len = sizeof addr;
  LPT_CHECK_MSG(::getsockname(listen_fd_,
                              reinterpret_cast<sockaddr*>(&addr), &len) == 0,
                "getsockname() failed");
  port_ = ntohs(addr.sin_port);
  LPT_CHECK_MSG(::listen(listen_fd_, SOMAXCONN) == 0, "listen() failed");
}

SocketTransport::~SocketTransport() {
  teardown();  // children must be gone before the listen socket dies
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void SocketTransport::start_worker(std::size_t shard) {
  const std::uint16_t port = port_;
  const pid_t pid = ::fork();
  LPT_CHECK_MSG(pid >= 0, "fork() failed");
  if (pid == 0) {
    // Worker process.  Unlike the pipe worker it inherits NO stream: the
    // sweep closes everything (including the listen socket and sibling
    // connections), then the worker dials the coordinator — exactly what a
    // remotely launched worker would do with a host:port argument.
    detail::close_inherited_fds(-1, -1);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) ::_exit(1);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    int cr;
    do {
      cr = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr);
    } while (cr < 0 && errno == EINTR);
    if (cr < 0) ::_exit(1);
    set_nodelay(fd);
    // Hello preamble (raw, below the frame protocol): the worker announces
    // which shard it serves, so a crossed or stray connection is caught
    // before any frames flow.
    const auto id = static_cast<std::uint32_t>(shard);
    if (!detail::write_all(fd, &id, sizeof id)) ::_exit(1);
    {
      SocketEndpoint ep(fd);
      worker_fn_(shard, ep);
    }
    ::_exit(0);
  }
  // Coordinator side: spawns are serialized (fork one worker, accept its
  // connection, then the next), so accept() pairs deterministically; the
  // hello check below makes any mismatch loud rather than silent.
  pollfd pfd{listen_fd_, POLLIN, 0};
  int pr;
  do {
    pr = ::poll(&pfd, 1, kAcceptTimeoutMs);
  } while (pr < 0 && errno == EINTR);
  LPT_CHECK_MSG(pr > 0, "shard worker never connected back");
  const int conn = ::accept(listen_fd_, nullptr, nullptr);
  LPT_CHECK_MSG(conn >= 0, "accept() failed");
  set_nodelay(conn);
  std::uint32_t hello = 0;
  const auto hello_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(kAcceptTimeoutMs);
  LPT_CHECK_MSG(detail::read_all_deadline(conn, &hello, sizeof hello,
                                          /*has_deadline=*/true,
                                          hello_deadline) ==
                    detail::ReadStatus::kOk,
                "shard worker hello never arrived");
  LPT_CHECK_MSG(hello == static_cast<std::uint32_t>(shard),
                "shard worker hello announced the wrong shard");
  WorkerSlot& w = workers_[shard];
  w.pid = pid;
  w.ep = std::make_unique<SocketEndpoint>(conn);
  w.exit = WorkerExit{};
  w.reaped = false;
}

// --- FaultyTransport ------------------------------------------------------

/// Counting/injecting view of one inner endpoint (see shard/fault.hpp).
class FaultyTransport::FaultyEndpoint final : public Endpoint {
 public:
  FaultyEndpoint(FaultyTransport* owner, std::size_t shard)
      : owner_(owner), shard_(shard) {}

  bool send(std::span<const std::uint8_t> payload) override {
    FaultEvent* ev = owner_->match(shard_, /*send_side=*/true, sends_);
    ++sends_;
    const bool ok = owner_->inner_->endpoint(shard_).send(payload);
    if (ev != nullptr) {
      // kKillWorker: the task frame is on the wire (or lost to EPIPE);
      // the real worker dies NOW — whether it already read, served, or
      // answered that frame is a genuine race the recovery must win in
      // every interleaving.
      owner_->inner_->kill_worker(shard_);
    }
    return ok;
  }

  RecvResult recv_frame(int timeout_ms) override {
    FaultEvent* ev = owner_->match(shard_, /*send_side=*/false, recvs_);
    ++recvs_;
    Endpoint& inner = owner_->inner_->endpoint(shard_);
    if (ev == nullptr) return inner.recv_frame(timeout_ms);
    switch (ev->op) {
      case FaultOp::kDropResult: {
        RecvResult got = inner.recv_frame(timeout_ms);
        if (!got.ok()) return got;  // the worker died anyway: report that
        // The frame vanishes; wait (up to one more deadline) for a frame
        // the lockstep worker will never send — the genuine hung-worker
        // outcome.  Requires a finite recv deadline, or this would block.
        return inner.recv_frame(timeout_ms);
      }
      case FaultOp::kTruncateResult: {
        RecvResult got = inner.recv_frame(timeout_ms);
        owner_->inner_->kill_worker(shard_);
        if (!got.ok()) return got;
        return {RecvResult::Status::kDown, DownCause::kTruncated, {}};
      }
      case FaultOp::kCorruptResult: {
        RecvResult got = inner.recv_frame(timeout_ms);
        if (got.ok() && !got.frame.empty()) got.frame[0] ^= 0x80u;
        return got;
      }
      case FaultOp::kDelayResult: {
        std::this_thread::sleep_for(std::chrono::milliseconds(ev->delay_ms));
        return inner.recv_frame(timeout_ms);
      }
      case FaultOp::kKillWorker:
        break;  // send-side op; match() never returns it here
    }
    return inner.recv_frame(timeout_ms);
  }

 private:
  FaultyTransport* owner_;
  std::size_t shard_;
  std::size_t sends_ = 0;  // monotone across respawns: at_frame is a
  std::size_t recvs_ = 0;  // run-global per-lane position, not per-worker
};

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 FaultScript script)
    : inner_(std::move(inner)), script_(std::move(script)) {
  consumed_.assign(script_.size(), 0);
}

FaultyTransport::~FaultyTransport() = default;

void FaultyTransport::spawn(std::size_t shards, WorkerFn worker) {
  inner_->spawn(shards, std::move(worker));
  endpoints_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    endpoints_[s] = std::make_unique<FaultyEndpoint>(this, s);
  }
}

Endpoint& FaultyTransport::endpoint(std::size_t shard) {
  return *endpoints_[shard];
}

void FaultyTransport::kill_worker(std::size_t shard) {
  inner_->kill_worker(shard);
}

void FaultyTransport::respawn(std::size_t shard) { inner_->respawn(shard); }

WorkerExit FaultyTransport::exit_status(std::size_t shard) {
  return inner_->exit_status(shard);
}

void FaultyTransport::expect_down(std::size_t shard) {
  inner_->expect_down(shard);
}

void FaultyTransport::join() { inner_->join(); }

FaultEvent* FaultyTransport::match(std::size_t shard, bool send_side,
                                   std::size_t frame) {
  for (std::size_t i = 0; i < script_.size(); ++i) {
    if (consumed_[i]) continue;
    FaultEvent& ev = script_[i];
    if (ev.shard != shard || ev.at_frame != frame) continue;
    if ((ev.op == FaultOp::kKillWorker) != send_side) continue;
    consumed_[i] = 1;
    return &ev;
  }
  return nullptr;
}

std::unique_ptr<Transport> make_transport(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProc:
      return std::make_unique<InProcTransport>();
    case TransportKind::kPipe:
      return std::make_unique<PipeTransport>();
    case TransportKind::kSocket:
      return std::make_unique<SocketTransport>();
  }
  LPT_CHECK_MSG(false, "unknown TransportKind");
  return nullptr;
}

}  // namespace lpt::shard
