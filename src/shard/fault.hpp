// Scripted fault injection for the shard runtime.
//
// FaultyTransport decorates any real Transport with a deterministic,
// scripted schedule of failures so tests and benches exercise the genuine
// failure paths — a kKillWorker event SIGKILLs the real forked child (or
// closes the real in-process lane), so the coordinator sees the same EPIPE
// / EOF / partial-frame sequence a production death produces; nothing is
// simulated above the transport it wraps.
//
// Events are keyed by per-shard frame counters: `at_frame` counts the task
// frames sent to (ops on the send side) or the result frames received from
// (ops on the recv side) that shard's lane since the run started, 0-based
// and monotone across respawns — so "kill shard 2 after 5 frames" lands at
// the same simulated-round boundary every run.  Each event fires exactly
// once.
//
// Ops and the detection path they exercise:
//
//   * kKillWorker    — after forwarding task frame #at, SIGKILL the worker.
//                      Depending on how far the worker got, the coordinator
//                      sees a complete result then EPIPE next round, a clean
//                      EOF, or a mid-frame truncation — recovery must be
//                      bit-identical in every interleaving, which is exactly
//                      what the tests assert.
//   * kDropResult    — swallow result frame #at.  The coordinator's recv
//                      deadline expires (requires recv_timeout_ms > 0) and
//                      the hung-worker path (kill + respawn + replay) runs.
//   * kTruncateResult— consume result frame #at, kill the worker, and
//                      report the structured mid-frame truncation a worker
//                      dying inside a write produces.
//   * kCorruptResult — flip the message-type byte of result frame #at; the
//                      harness's frame validation rejects it as kCorrupt.
//   * kDelayResult   — sleep delay_ms before receiving result frame #at: a
//                      straggling delivery.  The frame still arrives (the
//                      recv deadline starts after the sleep), pinning that
//                      pure latency never affects results; use kDropResult
//                      for the hung-worker / deadline-expiry path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "shard/transport.hpp"

namespace lpt::shard {

enum class FaultOp : std::uint8_t {
  kKillWorker = 0,
  kDropResult,
  kTruncateResult,
  kCorruptResult,
  kDelayResult,
};

/// One scripted failure.  `shard` and `at_frame` select the lane and the
/// 0-based per-lane frame index (sends for kKillWorker, recvs otherwise).
struct FaultEvent {
  std::size_t shard = 0;
  FaultOp op = FaultOp::kKillWorker;
  std::size_t at_frame = 0;
  std::uint32_t delay_ms = 0;  // kDelayResult only
};

/// A deterministic failure schedule; empty means no injection.
using FaultScript = std::vector<FaultEvent>;

/// Decorator: the wrapped transport's workers, streams, and lifecycle —
/// plus the scripted failures above.  All Transport methods delegate;
/// endpoint(s) returns a counting/injecting view of the inner endpoint.
class FaultyTransport final : public Transport {
 public:
  FaultyTransport(std::unique_ptr<Transport> inner, FaultScript script);
  ~FaultyTransport() override;

  void spawn(std::size_t shards, WorkerFn worker) override;
  Endpoint& endpoint(std::size_t shard) override;
  void kill_worker(std::size_t shard) override;
  void respawn(std::size_t shard) override;
  WorkerExit exit_status(std::size_t shard) override;
  void expect_down(std::size_t shard) override;
  void join() override;

 private:
  class FaultyEndpoint;

  /// The unconsumed event for (shard, op side, counter), if any.
  FaultEvent* match(std::size_t shard, bool send_side, std::size_t frame);

  std::unique_ptr<Transport> inner_;
  FaultScript script_;
  std::vector<std::uint8_t> consumed_;  // per script event
  std::vector<std::unique_ptr<FaultyEndpoint>> endpoints_;
};

}  // namespace lpt::shard
