// Wire messages for the shard runtime, framed with the gossip codec.
//
// The coordinator/worker protocol is a strict request/response lockstep per
// simulated round: the coordinator sends each worker one stage-A *task*
// frame carrying the per-node inputs of the worker's shard (node flags, the
// node's private RNG state, its pull responses, its local element multiset),
// and the worker answers with one stage-A *result* frame carrying the
// shard's ascending-node-order stage-B candidate list, sampler counters,
// per-node violator/push payloads, solutions where stage B will need them,
// and the advanced per-node RNG states (the coordinator's filter pass and
// the next round's stage A continue those streams, so they must round-trip
// exactly).  A shutdown frame ends the worker loop.  Workers that inherit
// nothing via fork (the socket transport's, or any remotely launched
// worker) are sent a *bootstrap* frame before their first task: the
// run-static problem description (problem elements, oracle solution,
// sampler constants), re-sent to every respawned replacement.
//
// Framing: every frame is a u32 little-endian payload length followed by
// the payload; the payload's first byte is the MsgType.  Length prefixes
// past kMaxFrameBytes are rejected (a garbage or truncated stream otherwise
// turns into an attempted multi-gigabyte allocation).
//
// Element and solution payloads go through the `wire_put` / `wire_get`
// customization point (ADL): overloads for the built-in gossiped element
// types live here; problem-specific solution overloads live next to the
// problem type (e.g. MinDiskSolution in problems/min_disk.hpp).  Sequences
// are u32-length-prefixed directly rather than via Encoder::put_sequence —
// a node's local multiset is bounded by the simulation, not by the gossip
// model's O(log n)-bit message limit, so the codec's 2^16 sequence guard
// does not apply to shard frames.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/vec2.hpp"
#include "gossip/codec.hpp"
#include "lp/halfplane.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace lpt::shard {

/// First payload byte of every frame.
enum class MsgType : std::uint8_t {
  kStageATask = 1,
  kStageAResult = 2,
  kShutdown = 3,
  kBootstrap = 4,  // the run-static problem description, shipped to a
                   // worker before its first task so a worker need not
                   // inherit anything via fork (socket workers; any
                   // remotely launched worker).  Sent once after spawn and
                   // again after every respawn; the payload schema is the
                   // engine's (see e.g. core/low_load.hpp bootstrap codec),
                   // opaque to the runtime.
};

/// Upper bound on a frame payload; recv rejects longer length prefixes.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 28;  // 256 MiB

inline void put_msg_type(gossip::Encoder& e, MsgType t) {
  e.put_u8(static_cast<std::uint8_t>(t));
}

inline MsgType get_msg_type(gossip::Decoder& d) {
  const std::uint8_t t = d.get_u8();
  LPT_CHECK_MSG(t >= 1 && t <= 4, "shard wire: unknown message type");
  return static_cast<MsgType>(t);
}

// --- wire_put / wire_get: the per-type payload customization point. ------
//
// Overloads must be exact round-trips (encode then decode reproduces the
// value bit-for-bit): the shard runtime's bit-identity guarantee rides on
// RNG states, elements, and solutions surviving the wire unchanged.

inline void wire_put(gossip::Encoder& e, std::uint32_t v) { e.put_u32(v); }
inline void wire_get(gossip::Decoder& d, std::uint32_t& v) { v = d.get_u32(); }

inline void wire_put(gossip::Encoder& e, const geom::Vec2& p) { e.put(p); }
inline void wire_get(gossip::Decoder& d, geom::Vec2& p) { p = d.get_vec2(); }

inline void wire_put(gossip::Encoder& e, const lp::Halfplane& h) { e.put(h); }
inline void wire_get(gossip::Decoder& d, lp::Halfplane& h) {
  h = d.get_halfplane();
}

// A node's private xoshiro256** stream is consumed on both sides of the
// process boundary (stage A on the worker, the filter pass and later
// rounds on the coordinator), so each round ships the state out with the
// task and back with the result.  util::RngState is the engine's complete
// serializable state; the round-trip is exact by construction (fixed-width
// words through the little-endian codec).

inline void wire_put(gossip::Encoder& e, const util::RngState& s) {
  for (const std::uint64_t w : s.words) e.put_u64(w);
  e.put_f64(s.normal_spare);
  e.put_u8(s.has_normal_spare ? 1 : 0);
}

inline void wire_get(gossip::Decoder& d, util::RngState& s) {
  for (std::uint64_t& w : s.words) w = d.get_u64();
  s.normal_spare = d.get_f64();
  s.has_normal_spare = d.get_u8() != 0;
}

/// A type is Wirable when wire_put/wire_get overloads are visible (here or
/// via ADL next to the type).  The engines use this to gate the sharded
/// code path at compile time: problems without wire codecs still compile
/// and simply run the in-process paths.
template <typename T>
concept Wirable = requires(gossip::Encoder& e, gossip::Decoder& d, const T& cv,
                           T& v) {
  wire_put(e, cv);
  wire_get(d, v);
};

/// Encoded bytes of one wire element.  Exact for the fixed-size built-in
/// types; 1 — a conservative lower bound — for variable-size types (their
/// sequences are additionally bounded by the post-encode byte check in
/// put_seq).  The sequence guards below are sized in *bytes*, not element
/// counts: a count-based cap would let a sequence of multi-byte elements
/// blow past the frame limit while passing the check.
template <typename T>
inline constexpr std::size_t kWireElemBytes = 1;
template <>
inline constexpr std::size_t kWireElemBytes<std::uint32_t> =
    gossip::kWireBytesElementId;
template <>
inline constexpr std::size_t kWireElemBytes<geom::Vec2> =
    gossip::kWireBytesVec2;
template <>
inline constexpr std::size_t kWireElemBytes<lp::Halfplane> =
    gossip::kWireBytesHalfplane;
template <>
inline constexpr std::size_t kWireElemBytes<util::RngState> =
    4 * sizeof(std::uint64_t) + sizeof(double) + 1;

/// u32-length-prefixed sequence of Wirable values (no 2^16 cap; see above).
/// Bounded by *encoded bytes* against `max_bytes` (default: the frame cap;
/// parameterized so tests can exercise the guard without 256 MiB inputs):
/// a pre-encode element-size-aware check fails before a doomed sequence is
/// encoded, and a post-encode check catches variable-size element types
/// whose lower bound was optimistic.
template <Wirable T>
void put_seq(gossip::Encoder& e, std::span<const T> xs,
             std::size_t max_bytes = kMaxFrameBytes) {
  LPT_CHECK_MSG(
      xs.size() <= (max_bytes - sizeof(std::uint32_t)) / kWireElemBytes<T>,
      "shard wire: sequence exceeds the frame byte budget");
  const std::size_t start = e.size();
  e.put_u32(static_cast<std::uint32_t>(xs.size()));
  for (const T& x : xs) wire_put(e, x);
  LPT_CHECK_MSG(e.size() - start <= max_bytes,
                "shard wire: sequence exceeds the frame byte budget");
}

template <Wirable T>
void get_seq(gossip::Decoder& d, std::vector<T>& out) {
  const std::uint32_t len = d.get_u32();
  // Every element occupies at least kWireElemBytes<T> payload bytes, so a
  // length prefix beyond the remaining bytes is corrupt — reject it before
  // reserve() turns it into a giant allocation.
  LPT_CHECK_MSG(len <= d.remaining() / kWireElemBytes<T>,
                "shard wire: sequence too long");
  out.clear();
  out.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    T x;
    wire_get(d, x);
    out.push_back(x);
  }
}

// --- RNG stream state convenience wrappers. ------------------------------

inline void put_rng(gossip::Encoder& e, const util::Rng& rng) {
  wire_put(e, rng.state());
}

inline void get_rng(gossip::Decoder& d, util::Rng& rng) {
  util::RngState s;
  wire_get(d, s);
  rng.set_state(s);
}

// --- Per-node stage-A framing shared by the engines. ---------------------
//
// Task frames and result frames both walk the shard's node range in
// ascending order with one flag byte per node; the flag bits say which
// optional fields follow.  Keeping the schema in one place (rather than
// per-engine ad hoc framing) is what the codec round-trip tests pin.

namespace nodeflag {
inline constexpr std::uint8_t kActive = 1u << 0;   // node runs stage A
inline constexpr std::uint8_t kReplay = 1u << 1;   // node needs stage-B replay
inline constexpr std::uint8_t kSolution = 1u << 2; // a solution payload follows
inline constexpr std::uint8_t kWinner = 1u << 3;   // hitting set: R_i wins
}  // namespace nodeflag

}  // namespace lpt::shard
