// Coordinator/worker transports for the shard runtime.
//
// A Transport owns the lifecycle of `shards` workers and one bidirectional
// frame stream per worker.  Frames are length-prefixed byte blobs (u32
// little-endian payload length, then the payload — see shard/wire.hpp for
// the payload schema); the framing and its malformed-input rejection live
// in Endpoint so both transports and both directions share one
// implementation.
//
// Three implementations:
//
//   * InProcTransport — workers are std::threads inside the coordinator
//     process; frames travel through mutex+condvar byte queues.  The worker
//     code still sees only *serialized* frames (never the coordinator's
//     memory), so the in-process mode exercises the identical wire path as
//     the process mode — it is the fast default and the test vehicle, not a
//     shortcut.
//
//   * PipeTransport — workers are fork()ed child processes; frames travel
//     through pipe(2) pairs.  The child inherits the engine's static
//     problem description (the paper's "every node knows the problem"
//     standing assumption) at fork time, sweeps every inherited fd except
//     its own pipe ends (/proc/self/fd — concurrent harnesses on a bench
//     thread pool interleave pipe()/fork() freely), and from then on
//     communicates only via frames.  The runtime spawns workers before the
//     engine's round loop starts, so an engine run never forks with its
//     own pool live; forking from a bench-level repetition pool relies on
//     glibc's malloc atfork handlers (works in practice, and each child
//     touches only its closure state).
//
//   * SocketTransport — the coordinator listens on an ephemeral loopback
//     TCP port and every worker *connects* to it: the exact topology of a
//     multi-machine run, rehearsed on one box.  Workers are still fork()ed
//     locally (the container's stand-in for "launch a process on another
//     machine"), but they inherit NOTHING the protocol needs: after the fd
//     sweep a socket worker owns only its connected stream, and the
//     problem description reaches it through the kBootstrap wire message
//     (shard/wire.hpp) — so the same worker body could be exec'd or
//     launched remotely.  A respawn accepts a brand-new connection
//     (respawn-over-reconnect): the coordinator never tries to resurrect a
//     broken stream.
//
// ## Failure surface (the fault-tolerance contract)
//
// A worker is allowed to die: the paper's protocols are robust to faulty
// participants, and the shard runtime mirrors that at the process level.
// Every way a stream can fail is surfaced as *data*, not an abort:
//
//   * recv_frame(timeout_ms) returns a RecvResult — a frame, a timeout, or
//     a structured down-cause (clean EOF, mid-frame truncation, an
//     oversized length prefix);
//   * send() returns false when the peer is gone (EPIPE / closed lane)
//     instead of aborting;
//   * exit_status() exposes how a worker process actually ended (exit code
//     or signal number, reaped exactly once — never silently lost);
//   * kill_worker() / respawn() let the coordinator put down a hung or
//     corrupt worker and start a replacement running the same WorkerFn.
//
// The legacy blocking Endpoint::recv() keeps its loud LPT_CHECK semantics
// (a caller that asked for no failure handling must not limp on); the
// recovery-aware ShardHarness uses recv_frame and handles the rest.  The
// transport records which workers the harness *expects* to be down
// (expect_down), so teardown still aborts loudly on deaths nobody handled.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include <sys/types.h>

namespace lpt::shard {

/// Why a worker (or its frame stream) is considered down.
enum class DownCause : std::uint8_t {
  kEof = 0,     // peer closed the stream at a frame boundary
  kTruncated,   // stream ended mid-frame (partial length prefix or payload)
  kOversized,   // length prefix past kMaxFrameBytes (corrupt stream)
  kEpipe,       // write failed: the peer's read end is gone
  kTimeout,     // no frame within the recv deadline (hung or dead worker)
  kCorrupt,     // a frame arrived but failed validation (bad message type)
  kKilled,      // killed on purpose (fault injection / hung-worker cleanup)
};

const char* down_cause_name(DownCause cause);

/// Outcome of one recv_frame call.
struct RecvResult {
  enum class Status : std::uint8_t {
    kFrame = 0,   // `frame` holds a complete payload
    kTimeout,     // deadline expired with no frame
    kDown,        // the stream is dead; `cause` says how
  };
  Status status = Status::kFrame;
  DownCause cause = DownCause::kEof;  // meaningful when status == kDown
  std::vector<std::uint8_t> frame;    // meaningful when status == kFrame

  bool ok() const noexcept { return status == Status::kFrame; }
};

/// How a worker ended.  PipeTransport fills this from the waitpid status
/// (recorded exactly once per child, at the moment it is reaped — a worker
/// that died mid-run is reported with its real exit code or signal number,
/// not silently discarded at teardown).  InProcTransport reports joined
/// threads as kExited/0 and killed workers as kSignaled/SIGKILL, the
/// in-process analogue.
struct WorkerExit {
  enum class Kind : std::uint8_t { kRunning = 0, kExited, kSignaled };
  Kind kind = Kind::kRunning;
  int value = 0;  // exit code (kExited) or signal number (kSignaled)
};

/// One side of a bidirectional frame stream.
///
/// send() frames and writes the payload, returning false when the peer is
/// gone (EPIPE / closed lane) — any other I/O error still aborts loudly.
/// recv_frame() blocks up to timeout_ms (-1: forever) for the next frame
/// and reports malformed input (length prefix past kMaxFrameBytes, or a
/// stream truncated mid-frame) as a structured down-cause.  recv() is the
/// legacy strict wrapper: it blocks forever, maps clean EOF to an empty
/// frame, and LPT_CHECK-aborts on malformed input — for callers with no
/// recovery path, a corrupt stream must not keep simulating.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual bool send(std::span<const std::uint8_t> payload) = 0;
  virtual RecvResult recv_frame(int timeout_ms) = 0;

  std::vector<std::uint8_t> recv();
};

/// A worker body: runs the per-shard serve loop until shutdown.  Invoked
/// once per shard with that shard's index and endpoint (and again for each
/// respawned replacement worker, which starts from a clean slate — serve
/// state is rebuilt from the frames themselves).
using WorkerFn = std::function<void(std::size_t shard, Endpoint& ep)>;

class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Launch `shards` workers, each running `worker(shard, endpoint)`.
  /// Must be called exactly once, before any endpoint() use.  The WorkerFn
  /// is retained for respawn().
  virtual void spawn(std::size_t shards, WorkerFn worker) = 0;

  /// The coordinator-side endpoint for `shard` (valid after spawn(); a
  /// respawn() replaces the endpoint behind this accessor, so callers must
  /// re-fetch rather than cache the reference across failures).
  virtual Endpoint& endpoint(std::size_t shard) = 0;

  /// Force-terminate one worker (SIGKILL for processes, lane close for
  /// threads) and reap it, recording its exit status.  Idempotent; marks
  /// the death as expected so join() does not abort over it.
  virtual void kill_worker(std::size_t shard) = 0;

  /// Replace a dead (or hung — it is killed first) worker with a fresh one
  /// running the original WorkerFn on a fresh stream.  The replacement
  /// carries no state: the coordinator re-ships everything it needs.
  virtual void respawn(std::size_t shard) = 0;

  /// How `shard`'s current worker ended (kRunning while alive).  Reaps a
  /// zombie child on the spot (WNOHANG) so a worker that died mid-run is
  /// observable before teardown.
  virtual WorkerExit exit_status(std::size_t shard) = 0;

  /// Mark a worker's death as handled: join() records its status instead
  /// of aborting.  Called by the harness whenever it observed (and
  /// recovered from, or deliberately escalated) a failure.
  virtual void expect_down(std::size_t shard) = 0;

  /// Block until every worker has exited its loop (callers send the
  /// shutdown frames first).  Aborts loudly on an abnormal exit that was
  /// never expect_down()-ed — an unhandled death must not pass silently.
  /// Idempotent; also invoked by destructors.
  virtual void join() = 0;

 protected:
  Transport() = default;
};

// --- In-process transport (worker threads + frame queues). ---------------

namespace detail {

/// Write exactly len bytes to fd.  Returns false when the peer is gone
/// (EPIPE on a pipe, EPIPE/ECONNRESET on a socket — surfaced because
/// SIGPIPE is ignored) — the structured worker-down path; any other error
/// still aborts loudly.  Exposed for the fd-backed endpoints and for tests.
bool write_all(int fd, const void* data, std::size_t len);

enum class ReadStatus { kOk, kCleanEof, kTruncated, kTimeout };

/// Read exactly len bytes from fd, waiting at most until `deadline`
/// (steady clock; the caller computes it once per frame so the length
/// prefix and payload reads share one budget).  kCleanEof only at offset 0
/// — an EOF (or a connection reset) after the first byte means the writer
/// died mid-frame.  The remaining budget is rounded UP to whole
/// milliseconds for poll(2): truncating toward zero would report kTimeout
/// with real time still left on the clock (a sub-millisecond budget must
/// still poll once).
ReadStatus read_all_deadline(int fd, void* data, std::size_t len,
                             bool has_deadline,
                             std::chrono::steady_clock::time_point deadline);

/// Frame a payload onto fd / read one frame off fd with the shared framing
/// (u32 LE length prefix + payload, kMaxFrameBytes guard).  The pipe and
/// socket endpoints are both thin wrappers over these.
bool send_frame_fd(int fd, std::span<const std::uint8_t> payload);
RecvResult recv_frame_fd(int fd, int timeout_ms);

/// Blocking frame queue (one direction of one worker's stream).  close()
/// wakes all waiters: a pop on a closed, drained queue reports the lane
/// down instead of blocking forever — the in-process analogue of EOF.
class FrameQueue {
 public:
  void push(std::vector<std::uint8_t> frame);  // dropped when closed
  /// Blocks up to timeout_ms (-1: forever).  kDown{kEof} once closed and
  /// drained; kTimeout when the deadline expires first.
  RecvResult pop(int timeout_ms);
  void close();
  bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::vector<std::uint8_t>> frames_;
  bool closed_ = false;
};

}  // namespace detail

class InProcTransport final : public Transport {
 public:
  InProcTransport();
  ~InProcTransport() override;

  void spawn(std::size_t shards, WorkerFn worker) override;
  Endpoint& endpoint(std::size_t shard) override;
  void kill_worker(std::size_t shard) override;
  void respawn(std::size_t shard) override;
  WorkerExit exit_status(std::size_t shard) override;
  void expect_down(std::size_t shard) override;
  void join() override;

 private:
  struct Lane;  // the queue pair + both endpoints for one shard
  void start_worker(std::size_t shard);

  WorkerFn worker_fn_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> threads_;
  std::vector<WorkerExit> exits_;
  std::vector<std::uint8_t> expected_down_;
};

// --- Process transports (fork + pipes, fork + TCP sockets). ---------------

/// Frame stream over a (read fd, write fd) pair.  Public so tests can frame
/// arbitrary fds (e.g. to inject malformed length prefixes).
class PipeEndpoint final : public Endpoint {
 public:
  PipeEndpoint(int read_fd, int write_fd)
      : read_fd_(read_fd), write_fd_(write_fd) {}
  ~PipeEndpoint() override;

  bool send(std::span<const std::uint8_t> payload) override;
  RecvResult recv_frame(int timeout_ms) override;

 private:
  int read_fd_;
  int write_fd_;
};

/// Frame stream over one connected stream socket (both directions share the
/// fd).  Public so tests can frame arbitrary socket fds (socketpair(2),
/// half-open TCP streams).  Owns — and closes — the fd.
class SocketEndpoint final : public Endpoint {
 public:
  explicit SocketEndpoint(int fd) : fd_(fd) {}
  ~SocketEndpoint() override;

  bool send(std::span<const std::uint8_t> payload) override;
  RecvResult recv_frame(int timeout_ms) override;

 private:
  int fd_;
};

/// Shared lifecycle machinery for transports whose workers are fork()ed
/// child processes: slot bookkeeping, SIGPIPE suppression, waitpid reaping
/// (each child's real exit code / signal captured exactly once),
/// kill/respawn, and the join-time abnormal-exit check.  Derived transports
/// provide only start_worker — how one child is launched and what stream
/// connects it.
class ProcessTransport : public Transport {
 public:
  ~ProcessTransport() override;

  void spawn(std::size_t shards, WorkerFn worker) override;
  Endpoint& endpoint(std::size_t shard) override;
  void kill_worker(std::size_t shard) override;
  void respawn(std::size_t shard) override;
  WorkerExit exit_status(std::size_t shard) override;
  void expect_down(std::size_t shard) override;
  void join() override;

 protected:
  ProcessTransport() = default;

  /// One worker process: its pid, coordinator-side endpoint, and the exit
  /// status recorded when it was reaped (the waitpid result is captured
  /// exactly once and kept — never lost to a later teardown check).
  struct WorkerSlot {
    pid_t pid = -1;
    std::unique_ptr<Endpoint> ep;
    WorkerExit exit;
    bool reaped = false;
    bool expected_down = false;
  };

  /// Launch (or relaunch) shard's worker process and fill its slot.
  virtual void start_worker(std::size_t shard) = 0;

  /// Close the coordinator-side streams, then join.  Closing first means a
  /// child blocked in recv() sees EOF and exits even if the shutdown frame
  /// never made it.  Idempotent — derived destructors call it so children
  /// are gone before derived members (e.g. a listening socket) die.
  void teardown();

  void reap(std::size_t shard, bool block);

  WorkerFn worker_fn_;
  std::vector<WorkerSlot> workers_;
};

class PipeTransport final : public ProcessTransport {
 public:
  PipeTransport();
  ~PipeTransport() override;

 private:
  void start_worker(std::size_t shard) override;
};

/// TCP loopback transport: see the header comment.  The listening socket
/// lives for the transport's lifetime; every spawn/respawn forks a child
/// that connects back to port() and identifies itself with a 4-byte shard
/// id hello (raw, below the frame protocol) before any frames flow.
class SocketTransport final : public ProcessTransport {
 public:
  SocketTransport();
  ~SocketTransport() override;

  /// The coordinator's loopback listen port (ephemeral, OS-assigned).
  std::uint16_t port() const noexcept { return port_; }

 private:
  void start_worker(std::size_t shard) override;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Which transport a ShardConfig asks for.
enum class TransportKind : std::uint8_t {
  kInProc = 0,  // worker threads, serialized frames through memory queues
  kPipe = 1,    // fork()ed worker processes, frames through pipes
  kSocket = 2,  // fork()ed worker processes connecting back over loopback
                // TCP — the multi-machine topology, rehearsed on one box
};

/// Factory for the configured kind.
std::unique_ptr<Transport> make_transport(TransportKind kind);

}  // namespace lpt::shard
