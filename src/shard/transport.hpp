// Coordinator/worker transports for the shard runtime.
//
// A Transport owns the lifecycle of `shards` workers and one bidirectional
// frame stream per worker.  Frames are length-prefixed byte blobs (u32
// little-endian payload length, then the payload — see shard/wire.hpp for
// the payload schema); the framing and its malformed-input rejection live
// in Endpoint so both transports and both directions share one
// implementation.
//
// Two implementations:
//
//   * InProcTransport — workers are std::threads inside the coordinator
//     process; frames travel through mutex+condvar byte queues.  The worker
//     code still sees only *serialized* frames (never the coordinator's
//     memory), so the in-process mode exercises the identical wire path as
//     the process mode — it is the fast default and the test vehicle, not a
//     shortcut.
//
//   * PipeTransport — workers are fork()ed child processes; frames travel
//     through pipe(2) pairs.  The child inherits the engine's static
//     problem description (the paper's "every node knows the problem"
//     standing assumption) at fork time, sweeps every inherited fd except
//     its own pipe ends (/proc/self/fd — concurrent harnesses on a bench
//     thread pool interleave pipe()/fork() freely), and from then on
//     communicates only via frames.  The runtime spawns workers before the
//     engine's round loop starts, so an engine run never forks with its
//     own pool live; forking from a bench-level repetition pool relies on
//     glibc's malloc atfork handlers (works in practice, and each child
//     touches only its closure state).
//
// Both transports present the same blocking Endpoint API, so the engines'
// coordinator loop is transport-agnostic.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include <sys/types.h>

namespace lpt::shard {

/// One side of a bidirectional frame stream.  send() frames and writes the
/// payload; recv() blocks for the next frame and rejects malformed input
/// (length prefix past kMaxFrameBytes, or a stream truncated mid-frame)
/// with a loud LPT_CHECK abort — a shard runtime with a corrupt stream must
/// not keep simulating.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void send(std::span<const std::uint8_t> payload) = 0;
  virtual std::vector<std::uint8_t> recv() = 0;
};

/// A worker body: runs the per-shard serve loop until shutdown.  Invoked
/// once per shard with that shard's index and endpoint.
using WorkerFn = std::function<void(std::size_t shard, Endpoint& ep)>;

class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Launch `shards` workers, each running `worker(shard, endpoint)`.
  /// Must be called exactly once, before any endpoint() use.
  virtual void spawn(std::size_t shards, WorkerFn worker) = 0;

  /// The coordinator-side endpoint for `shard` (valid after spawn()).
  virtual Endpoint& endpoint(std::size_t shard) = 0;

  /// Block until every worker has exited its loop (callers send the
  /// shutdown frames first).  Idempotent; also invoked by destructors.
  virtual void join() = 0;

 protected:
  Transport() = default;
};

// --- In-process transport (worker threads + frame queues). ---------------

namespace detail {

/// Unbounded blocking frame queue (one direction of one worker's stream).
class FrameQueue {
 public:
  void push(std::vector<std::uint8_t> frame);
  std::vector<std::uint8_t> pop();  // blocks until a frame arrives

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::vector<std::uint8_t>> frames_;
};

}  // namespace detail

class InProcTransport final : public Transport {
 public:
  InProcTransport();
  ~InProcTransport() override;

  void spawn(std::size_t shards, WorkerFn worker) override;
  Endpoint& endpoint(std::size_t shard) override;
  void join() override;

 private:
  struct Lane;  // the queue pair + both endpoints for one shard
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> threads_;
};

// --- Process transport (fork + pipes). -----------------------------------

/// Frame stream over a (read fd, write fd) pair.  Public so tests can frame
/// arbitrary fds (e.g. to inject malformed length prefixes).
class PipeEndpoint final : public Endpoint {
 public:
  PipeEndpoint(int read_fd, int write_fd)
      : read_fd_(read_fd), write_fd_(write_fd) {}
  ~PipeEndpoint() override;

  void send(std::span<const std::uint8_t> payload) override;
  std::vector<std::uint8_t> recv() override;

 private:
  int read_fd_;
  int write_fd_;
};

class PipeTransport final : public Transport {
 public:
  PipeTransport();
  ~PipeTransport() override;

  void spawn(std::size_t shards, WorkerFn worker) override;
  Endpoint& endpoint(std::size_t shard) override;
  void join() override;

 private:
  std::vector<std::unique_ptr<PipeEndpoint>> endpoints_;  // coordinator side
  std::vector<pid_t> children_;
};

/// Which transport a ShardConfig asks for.
enum class TransportKind : std::uint8_t {
  kInProc = 0,  // worker threads, serialized frames through memory queues
  kPipe = 1,    // fork()ed worker processes, frames through pipes
};

/// Factory for the configured kind.
std::unique_ptr<Transport> make_transport(TransportKind kind);

}  // namespace lpt::shard
