// The query-service front end: lpt_service, the layer above lpt_core.
//
// ROADMAP north star: a production query service answering LP-type queries
// with the paper's engines as the compute backend.  LptService is that
// front end, single-threaded-client, epoch-driven:
//
//   1. Clients obtain recycled request slots (acquire_request), fill the
//      payload, and submit().  Submission is queueing only — no solve runs.
//   2. run_epoch() admits one batch — up to max_batch pending queries of
//      the same kind as the oldest (compatible queries batch; the rest keep
//      their arrival order for a later epoch) — executes it, and appends
//      one response per admitted query, in admission order.
//   3. Dispatch per query mirrors the auto-dimension driver's size split:
//      instances below direct_cutoff short-circuit to the sequential
//      oracles (MinDisk::solve_into over an arena buffer, Seidel for LP),
//      larger ones run the low-load Clarkson engine over distributed_nodes
//      gossip nodes with the config engine_config_for(q) publishes.
//
// ## The serve-path allocation contract
//
// Steady-state serving of direct min-disk queries allocates nothing: slots
// cycle between the free pool, the queue, and the batch by move (payload
// buffers keep their capacity); every shuffle buffer is a slot in a
// per-worker util::SlabPool arena, recycled at epoch end with one
// O(classes) reset; the solve itself is MinDisk::solve_into, which reuses
// the response's basis capacity.  bench/service_qps gates this with an
// operator-new counter over a warmed all-small phase.  Distributed runs and
// direct LP solves are the compute backend, not the serve path — they
// allocate internally.
//
// ## Bit-identity
//
// A served solution is bit-identical to the corresponding engine run:
// direct min-disk responses equal MinDisk::solve(points) (solve_into is
// solve() with a caller-owned buffer), and distributed responses equal
// run_low_load(problem, payload, distributed_nodes, engine_config_for(q))
// — the config is exposed precisely so tests and CI can re-run it and
// compare field by field.  cfg.workers only moves the per-query compute
// onto threads; every solve consumes query-local state, so responses are
// bit-identical for every worker count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/low_load.hpp"
#include "obs/obs.hpp"
#include "problems/min_disk.hpp"
#include "service/query.hpp"
#include "util/slab.hpp"
#include "util/thread_pool.hpp"

namespace lpt::service {

struct ServiceConfig {
  std::size_t direct_cutoff = 2048;    // payload size below which the query
                                       // short-circuits to the direct solver
  std::size_t distributed_nodes = 64;  // gossip nodes for large instances
  std::size_t max_batch = 256;         // queries admitted per epoch
  std::size_t workers = 1;             // worker lanes per epoch (each owns a
                                       // slab arena; responses bit-identical
                                       // for every value)
  core::LowLoadConfig engine;          // distributed-run template; the seed
                                       // field is overridden per query (see
                                       // engine_config_for)
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;
  std::uint64_t epochs = 0;
  std::uint64_t direct_solves = 0;
  std::uint64_t distributed_solves = 0;
  std::uint64_t unsupported = 0;
  std::uint64_t transient_failures = 0;  // distributed solves lost to
                                         // shard::ShardError (worker deaths
                                         // beyond the recovery budget); the
                                         // service answered
                                         // kTransientFailure and kept going
  std::uint64_t distributed_rounds = 0;  // summed over distributed solves
  std::uint64_t arena_resets = 0;        // SlabPool::reset calls (epochs x
                                         // worker arenas)
  std::uint64_t serve_ns_total = 0;      // summed per-query solve_nanos
  std::uint64_t serve_ns_max = 0;        // slowest single query so far
                                         // (percentiles: the obs registry
                                         // histogram "service.serve_ns")
};

class LptService {
 public:
  explicit LptService(ServiceConfig cfg = {});

  /// A request slot from the free pool (fields reset, payload capacity
  /// kept), or a fresh one while the pool warms up.  Using these is what
  /// keeps steady-state submission allocation-free; a caller-constructed
  /// QueryRequest works too.
  QueryRequest acquire_request();

  /// Queue q for a later epoch.  The slot's buffers travel by move.
  void submit(QueryRequest&& q);

  std::size_t pending() const noexcept { return queue_.size(); }

  /// Admit and execute one batch; append one response per admitted query to
  /// `out` in admission order.  Returns the number served (0 when idle).
  std::size_t run_epoch(std::vector<QueryResponse>& out);

  /// Return a consumed response slot for reuse by a later epoch.
  void recycle_response(QueryResponse&& r);

  /// The exact engine config q's distributed run uses: cfg.engine with the
  /// seed derived from (q.seed, q.id) by a SplitMix64-style mix, so equal
  /// payloads submitted under different ids still take independent
  /// randomness.  Re-running run_low_load with this config reproduces the
  /// served solution bit-for-bit — the CI gate does exactly that.
  core::LowLoadConfig engine_config_for(const QueryRequest& q) const;

  const ServiceConfig& config() const noexcept { return cfg_; }
  const ServiceStats& stats() const noexcept { return stats_; }

 private:
  void admit_batch();
  void serve_one(const QueryRequest& q, QueryResponse& r,
                 util::SlabPool<geom::Vec2>& arena) const;
  void serve_min_disk(const QueryRequest& q, QueryResponse& r,
                      util::SlabPool<geom::Vec2>& arena) const;
  void serve_lp2d(const QueryRequest& q, QueryResponse& r) const;

  ServiceConfig cfg_;
  ServiceStats stats_;
  problems::MinDisk min_disk_;
  std::vector<QueryRequest> queue_;      // pending, arrival order
  std::vector<QueryRequest> batch_;      // the epoch under execution
  std::vector<QueryRequest> free_pool_;  // recycled request slots
  std::vector<QueryResponse> response_pool_;  // recycled response slots
  std::vector<util::SlabPool<geom::Vec2>> arenas_;  // one per worker lane
  std::unique_ptr<util::ThreadPool> pool_;  // lazily built when workers > 1

  // Registry metrics, resolved once at construction so the per-epoch hot
  // path is pure relaxed-atomic bumps (no name lookups, no allocation —
  // the serve-path contract).
  obs::Counter& obs_submitted_ = obs::counter("service.queries_submitted");
  obs::Counter& obs_served_ = obs::counter("service.queries_served");
  obs::Counter& obs_epochs_ = obs::counter("service.epochs");
  obs::Counter& obs_direct_ = obs::counter("service.direct_solves");
  obs::Counter& obs_distributed_ = obs::counter("service.distributed_solves");
  obs::Counter& obs_transient_ = obs::counter("service.transient_failures");
  obs::Counter& obs_unsupported_ = obs::counter("service.unsupported");
  obs::Histogram& obs_serve_ns_ = obs::histogram("service.serve_ns");
  obs::Gauge& obs_arena_bytes_ = obs::gauge("service.arena_bytes");
};

}  // namespace lpt::service
