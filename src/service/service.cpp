#include "service/service.hpp"

#include <chrono>
#include <span>
#include <utility>

#include "problems/linear_program2d.hpp"
#include "util/assert.hpp"

namespace lpt::service {

namespace {

std::uint64_t nanos_between(std::chrono::steady_clock::time_point t0,
                            std::chrono::steady_clock::time_point t1) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

}  // namespace

LptService::LptService(ServiceConfig cfg) : cfg_(cfg) {
  LPT_CHECK_MSG(cfg_.max_batch >= 1, "LptService: max_batch must be >= 1");
  LPT_CHECK_MSG(cfg_.distributed_nodes >= 1,
                "LptService: distributed_nodes must be >= 1");
  if (cfg_.workers == 0) cfg_.workers = 1;
  arenas_.resize(cfg_.workers);
}

QueryRequest LptService::acquire_request() {
  if (free_pool_.empty()) return QueryRequest{};
  QueryRequest q = std::move(free_pool_.back());
  free_pool_.pop_back();
  q.id = 0;
  q.kind = QueryKind::kMinDisk;
  q.seed = 0;
  q.points.clear();  // capacity kept — the point of the pool
  q.planes.clear();
  q.objective = {0.0, -1.0};
  return q;
}

void LptService::submit(QueryRequest&& q) {
  ++stats_.submitted;
  obs_submitted_.add(1);
  queue_.push_back(std::move(q));
}

void LptService::recycle_response(QueryResponse&& r) {
  response_pool_.push_back(std::move(r));
}

core::LowLoadConfig LptService::engine_config_for(
    const QueryRequest& q) const {
  core::LowLoadConfig cfg = cfg_.engine;
  cfg.seed = q.seed ^ (0x9e3779b97f4a7c15ULL * (q.id + 1));
  return cfg;
}

void LptService::admit_batch() {
  // One batch = up to max_batch queries of the head's kind, in arrival
  // order; everything else compacts forward (stable) for a later epoch.
  // Moves only — slot buffers keep their capacity through the cycle.
  const QueryKind kind = queue_.front().kind;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (batch_.size() < cfg_.max_batch && queue_[i].kind == kind) {
      batch_.push_back(std::move(queue_[i]));
    } else {
      if (kept != i) queue_[kept] = std::move(queue_[i]);
      ++kept;
    }
  }
  queue_.resize(kept);
}

std::size_t LptService::run_epoch(std::vector<QueryResponse>& out) {
  if (queue_.empty()) return 0;
  obs::trace_tick();  // epochs are the service's sampling unit
  obs::TraceSpan epoch_span("service.epoch", stats_.epochs);
  {
    obs::TraceSpan admit_span("service.epoch_admit", queue_.size());
    admit_batch();
  }
  const std::size_t served = batch_.size();
  const std::size_t base = out.size();
  for (std::size_t i = 0; i < served; ++i) {
    if (!response_pool_.empty()) {
      out.push_back(std::move(response_pool_.back()));
      response_pool_.pop_back();
    } else {
      out.push_back(QueryResponse{});
    }
  }

  // Fixed contiguous chunks, one worker arena per chunk: the partition
  // depends only on (served, workers), and each solve touches only its own
  // query, response slot, and arena — responses are bit-identical for
  // every worker count (the same contract as the engines' stage A).  The
  // single-worker path is a plain loop: parallel_chunks would build a
  // std::function whose captures exceed the small-buffer size, and that
  // heap allocation per epoch would break the serve-path contract.
  const std::size_t workers = arenas_.size();
  {
    obs::TraceSpan serve_span("service.epoch_serve", served);
    if (workers == 1) {
      for (std::size_t i = 0; i < served; ++i) {
        serve_one(batch_[i], out[base + i], arenas_[0]);
      }
    } else {
      const std::size_t chunk = (served + workers - 1) / workers;
      if (!pool_) pool_ = std::make_unique<util::ThreadPool>(workers);
      util::parallel_chunks(
          pool_.get(), served, chunk,
          [&](std::size_t k, std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
              serve_one(batch_[i], out[base + i], arenas_[k]);
            }
          });
    }
  }

  // Stats accounting runs serially after the parallel region.  The obs
  // bumps mirror the ServiceStats fields one-for-one (the struct stays
  // the view; the registry is the cross-layer aggregate), and the
  // histogram feeds the per-query latency percentiles.
  for (std::size_t i = 0; i < served; ++i) {
    const QueryResponse& r = out[base + i];
    switch (r.engine) {
      case EngineUsed::kDirect:
        ++stats_.direct_solves;
        obs_direct_.add(1);
        break;
      case EngineUsed::kDistributed:
        ++stats_.distributed_solves;
        stats_.distributed_rounds += r.rounds;
        obs_distributed_.add(1);
        break;
      case EngineUsed::kNone:
        break;
    }
    if (r.status == QueryStatus::kUnsupported) {
      ++stats_.unsupported;
      obs_unsupported_.add(1);
    }
    if (r.status == QueryStatus::kTransientFailure) {
      ++stats_.transient_failures;
      obs_transient_.add(1);
    }
    stats_.serve_ns_total += r.solve_nanos;
    if (r.solve_nanos > stats_.serve_ns_max) {
      stats_.serve_ns_max = r.solve_nanos;
    }
    obs_serve_ns_.record(r.solve_nanos);
  }

  for (QueryRequest& q : batch_) free_pool_.push_back(std::move(q));
  batch_.clear();
  std::size_t arena_bytes = 0;
  for (util::SlabPool<geom::Vec2>& a : arenas_) {
    arena_bytes += a.arena_bytes();
    a.reset();
    ++stats_.arena_resets;
  }
  obs_arena_bytes_.set(static_cast<std::int64_t>(arena_bytes));
  ++stats_.epochs;
  obs_epochs_.add(1);
  stats_.served += served;
  obs_served_.add(served);
  return served;
}

void LptService::serve_one(const QueryRequest& q, QueryResponse& r,
                           util::SlabPool<geom::Vec2>& arena) const {
  r.id = q.id;
  r.kind = q.kind;
  r.status = QueryStatus::kOk;
  r.engine = EngineUsed::kNone;
  r.disk.disk = geom::Circle{};
  r.disk.basis.clear();
  r.lp.value = lp::LpValue{};
  r.lp.basis.clear();
  r.rounds = 0;
  const auto t0 = std::chrono::steady_clock::now();
  switch (q.kind) {
    case QueryKind::kMinDisk:
      serve_min_disk(q, r, arena);
      break;
    case QueryKind::kLp2d:
      serve_lp2d(q, r);
      break;
    case QueryKind::kMinBall:
    case QueryKind::kHittingSet:
      r.status = QueryStatus::kUnsupported;
      break;
  }
  r.solve_nanos = nanos_between(t0, std::chrono::steady_clock::now());
}

void LptService::serve_min_disk(const QueryRequest& q, QueryResponse& r,
                                util::SlabPool<geom::Vec2>& arena) const {
  const std::span<const geom::Vec2> pts(q.points);
  if (pts.size() < cfg_.direct_cutoff) {
    r.engine = EngineUsed::kDirect;
    // Shuffle buffer from the epoch arena: allocate_for is O(1) and, once
    // the arena chunks exist, allocation-free; the slot is reclaimed by
    // the epoch-end reset (no per-query release).
    const auto ref = arena.allocate_for(pts.empty() ? 1 : pts.size());
    min_disk_.solve_into(
        pts,
        std::span<geom::Vec2>(arena.data(ref),
                              util::SlabPool<geom::Vec2>::capacity(ref)),
        r.disk);
  } else {
    r.engine = EngineUsed::kDistributed;
    try {
      auto res = core::run_low_load(min_disk_, pts, cfg_.distributed_nodes,
                                    engine_config_for(q));
      r.disk = std::move(res.solution);
      r.rounds = static_cast<std::uint32_t>(res.stats.rounds_to_first);
    } catch (const shard::ShardError&) {
      // Worker deaths beyond the recovery budget kill this solve, not the
      // server: the query answers kTransientFailure (solution fields stay
      // at their reset defaults) and the epoch keeps serving.
      r.engine = EngineUsed::kNone;
      r.status = QueryStatus::kTransientFailure;
    }
  }
}

void LptService::serve_lp2d(const QueryRequest& q, QueryResponse& r) const {
  const problems::LinearProgram2D p(q.objective);
  const std::span<const lp::Halfplane> planes(q.planes);
  if (planes.size() < cfg_.direct_cutoff) {
    r.engine = EngineUsed::kDirect;
    r.lp = p.solve(planes);
  } else {
    r.engine = EngineUsed::kDistributed;
    try {
      auto res = core::run_low_load(p, planes, cfg_.distributed_nodes,
                                    engine_config_for(q));
      r.lp = std::move(res.solution);
      r.rounds = static_cast<std::uint32_t>(res.stats.rounds_to_first);
    } catch (const shard::ShardError&) {
      r.engine = EngineUsed::kNone;
      r.status = QueryStatus::kTransientFailure;
    }
  }
}

}  // namespace lpt::service
