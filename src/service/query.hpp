// Query-service request/response schema, framed with the shard wire codec.
//
// lpt_service sits above lpt_core / lpt_shard: clients submit LP-type
// queries (a point set for smallest enclosing disk, a half-plane set for 2D
// LP) and receive the canonical solution plus serving metadata (which
// engine ran, distributed rounds, solve wall time).  Requests and responses
// are plain structs with wire_put / wire_get overloads, so they ride the
// same ADL customization point as the shard runtime's frames: a batch of
// queries is one shard::put_seq, and every payload round-trips exactly —
// the service's bit-identity guarantee (a served solution equals the
// corresponding engine run bit-for-bit) extends across the wire.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/vec2.hpp"
#include "lp/halfplane.hpp"
#include "problems/linear_program2d.hpp"
#include "problems/min_disk.hpp"
#include "shard/wire.hpp"
#include "util/assert.hpp"

namespace lpt::service {

/// Problem kind of a query.  kMinDisk and kLp2d are served; the remaining
/// kinds are schema placeholders for problems the repository models but the
/// service does not yet route (they answer QueryStatus::kUnsupported rather
/// than failing the wire decode, so old clients stay compatible).
enum class QueryKind : std::uint8_t {
  kMinDisk = 1,
  kLp2d = 2,
  kMinBall = 3,
  kHittingSet = 4,
};

enum class QueryStatus : std::uint8_t {
  kOk = 1,
  kUnsupported = 2,
  kTransientFailure = 3,  // a distributed solve lost workers beyond its
                          // recovery budget (shard::ShardError); the
                          // service keeps serving — resubmit the query
};

/// Which backend produced the response's solution.
enum class EngineUsed : std::uint8_t {
  kNone = 0,         // unsupported kind: no solve ran
  kDirect = 1,       // sequential oracle (Welzl / Seidel) short-circuit
  kDistributed = 2,  // low-load Clarkson engine over gossip nodes
};

struct QueryRequest {
  std::uint64_t id = 0;    // client-chosen; echoed in the response
  QueryKind kind = QueryKind::kMinDisk;
  std::uint64_t seed = 0;  // distributed-engine seed material (see
                           // LptService::engine_config_for)
  std::vector<geom::Vec2> points;     // kMinDisk / kMinBall payload
  std::vector<lp::Halfplane> planes;  // kLp2d payload
  geom::Vec2 objective{0.0, -1.0};    // kLp2d: the c of "minimize c.x"

  friend bool operator==(const QueryRequest&, const QueryRequest&) = default;
};

struct QueryResponse {
  std::uint64_t id = 0;
  QueryKind kind = QueryKind::kMinDisk;
  QueryStatus status = QueryStatus::kOk;
  EngineUsed engine = EngineUsed::kNone;
  problems::MinDiskSolution disk;  // kMinDisk solution (else empty)
  problems::Lp2dSolution lp;       // kLp2d solution (else default)
  std::uint32_t rounds = 0;        // distributed rounds to the optimum
  std::uint64_t solve_nanos = 0;   // service-side solve wall time

  friend bool operator==(const QueryResponse&, const QueryResponse&) = default;
};

// --- Wire codecs (ADL: shard::put_seq / get_seq find these). -------------

inline void wire_put(gossip::Encoder& e, const QueryRequest& q) {
  e.put_u64(q.id);
  e.put_u8(static_cast<std::uint8_t>(q.kind));
  e.put_u64(q.seed);
  shard::put_seq(e, std::span<const geom::Vec2>(q.points));
  shard::put_seq(e, std::span<const lp::Halfplane>(q.planes));
  e.put(q.objective);
}

inline void wire_get(gossip::Decoder& d, QueryRequest& q) {
  q.id = d.get_u64();
  const std::uint8_t kind = d.get_u8();
  LPT_CHECK_MSG(kind >= 1 && kind <= 4, "service wire: unknown query kind");
  q.kind = static_cast<QueryKind>(kind);
  q.seed = d.get_u64();
  shard::get_seq(d, q.points);
  shard::get_seq(d, q.planes);
  q.objective = d.get_vec2();
}

inline void wire_put(gossip::Encoder& e, const QueryResponse& r) {
  e.put_u64(r.id);
  e.put_u8(static_cast<std::uint8_t>(r.kind));
  e.put_u8(static_cast<std::uint8_t>(r.status));
  e.put_u8(static_cast<std::uint8_t>(r.engine));
  wire_put(e, r.disk);  // problems:: codecs, found by ADL
  wire_put(e, r.lp);
  e.put_u32(r.rounds);
  e.put_u64(r.solve_nanos);
}

inline void wire_get(gossip::Decoder& d, QueryResponse& r) {
  r.id = d.get_u64();
  const std::uint8_t kind = d.get_u8();
  LPT_CHECK_MSG(kind >= 1 && kind <= 4, "service wire: unknown query kind");
  r.kind = static_cast<QueryKind>(kind);
  const std::uint8_t status = d.get_u8();
  LPT_CHECK_MSG(status >= 1 && status <= 3,
                "service wire: unknown query status");
  r.status = static_cast<QueryStatus>(status);
  const std::uint8_t engine = d.get_u8();
  LPT_CHECK_MSG(engine <= 2, "service wire: unknown engine tag");
  r.engine = static_cast<EngineUsed>(engine);
  wire_get(d, r.disk);
  wire_get(d, r.lp);
  r.rounds = d.get_u32();
  r.solve_nanos = d.get_u64();
}

// --- Batch frames. -------------------------------------------------------
//
// A client ships one frame per submission batch; the service replies with
// one frame per epoch.  Both are plain u32-length-prefixed sequences of the
// structs above — shard::put_seq's byte-budget guard applies, so a
// malformed or oversized frame aborts loudly instead of over-allocating.

inline void put_request_batch(gossip::Encoder& e,
                              std::span<const QueryRequest> qs) {
  shard::put_seq(e, qs);
}
inline void get_request_batch(gossip::Decoder& d,
                              std::vector<QueryRequest>& qs) {
  shard::get_seq(d, qs);
}
inline void put_response_batch(gossip::Encoder& e,
                               std::span<const QueryResponse> rs) {
  shard::put_seq(e, rs);
}
inline void get_response_batch(gossip::Decoder& d,
                               std::vector<QueryResponse>& rs) {
  shard::get_seq(d, rs);
}

}  // namespace lpt::service
