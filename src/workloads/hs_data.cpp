#include "workloads/hs_data.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace lpt::workloads {

PlantedHs generate_planted_hitting_set(std::size_t universe, std::size_t sets,
                                       std::size_t d, std::size_t set_size,
                                       util::Rng& rng) {
  LPT_CHECK(d >= 1 && universe >= d * (set_size + 1) && sets >= d);
  PlantedHs out;

  // Shuffle the universe; the first d elements are the planted hitting set,
  // the next d*set_size form the d disjoint private pools of the core sets.
  std::vector<std::uint32_t> ids(universe);
  std::iota(ids.begin(), ids.end(), 0u);
  rng.shuffle(ids);
  out.planted.assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(d));

  std::vector<std::vector<std::uint32_t>> s;
  s.reserve(sets);
  std::size_t pool = d;
  for (std::size_t i = 0; i < d; ++i) {
    // Core set i: planted_i plus its private pool — pairwise disjoint, so
    // any hitting set needs >= d elements.
    std::vector<std::uint32_t> core{out.planted[i]};
    for (std::size_t k = 0; k < set_size; ++k) core.push_back(ids[pool++]);
    s.push_back(std::move(core));
  }
  while (s.size() < sets) {
    // Filler sets: one random planted element plus random others, so the
    // planted set remains a hitting set of everything.
    std::vector<std::uint32_t> filler{out.planted[rng.below(d)]};
    for (std::size_t k = 1; k <= set_size; ++k) {
      filler.push_back(ids[rng.below(universe)]);
    }
    s.push_back(std::move(filler));
  }
  out.system = std::make_shared<problems::SetSystem>(universe, std::move(s));
  std::sort(out.planted.begin(), out.planted.end());
  return out;
}

std::shared_ptr<problems::SetSystem> generate_interval_ranges(
    std::size_t universe, std::size_t sets, std::size_t min_len,
    std::size_t max_len, util::Rng& rng) {
  LPT_CHECK(universe >= 1 && min_len >= 1 && max_len >= min_len &&
            max_len <= universe);
  std::vector<std::vector<std::uint32_t>> s;
  s.reserve(sets);
  for (std::size_t j = 0; j < sets; ++j) {
    const std::size_t len = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(min_len),
                        static_cast<std::int64_t>(max_len)));
    const std::size_t start = rng.below(universe - len + 1);
    std::vector<std::uint32_t> interval(len);
    std::iota(interval.begin(), interval.end(),
              static_cast<std::uint32_t>(start));
    s.push_back(std::move(interval));
  }
  return std::make_shared<problems::SetSystem>(universe, std::move(s));
}

PlantedCover generate_planted_set_cover(std::size_t universe,
                                        std::size_t sets, std::size_t d,
                                        util::Rng& rng) {
  LPT_CHECK(d >= 1 && sets >= d && universe >= 2 * d);
  PlantedCover out;
  // Partition X into d blocks; block i (containing sentinel element i) is
  // cover set i.  Sentinels appear in no other set, so every cover must
  // take all d cover sets — the minimum cover size is exactly d.
  std::vector<std::uint32_t> ids(universe);
  std::iota(ids.begin(), ids.end(), 0u);
  rng.shuffle(ids);
  std::vector<std::vector<std::uint32_t>> s(d);
  for (std::size_t i = 0; i < universe; ++i) {
    s[i % d].push_back(ids[i]);
  }
  // Sentinel of block i = the first id assigned to it.
  std::vector<std::uint32_t> sentinel(d);
  for (std::size_t i = 0; i < d; ++i) sentinel[i] = s[i].front();

  while (s.size() < sets) {
    // Filler sets: random non-sentinel elements only.
    std::vector<std::uint32_t> filler;
    const std::size_t len = 1 + rng.below(universe / d + 1);
    for (std::size_t k = 0; k < len; ++k) {
      const std::uint32_t e = ids[rng.below(universe)];
      if (std::find(sentinel.begin(), sentinel.end(), e) == sentinel.end()) {
        filler.push_back(e);
      }
    }
    if (filler.empty()) filler.push_back(s[0][1 % s[0].size()]);
    s.push_back(std::move(filler));
  }
  out.instance = std::make_shared<problems::SetSystem>(universe, std::move(s));
  out.planted_cover.resize(d);
  std::iota(out.planted_cover.begin(), out.planted_cover.end(), 0u);
  return out;
}

}  // namespace lpt::workloads
