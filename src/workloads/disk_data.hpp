// The four minimum-enclosing-disk datasets of the paper's evaluation
// (Figure 1): duo-disk, triple-disk, triangle, and hull.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/vec2.hpp"
#include "util/rng.hpp"

namespace lpt::workloads {

enum class DiskDataset : std::uint8_t {
  kDuoDisk,     // 2 points span the solution disk, rest uniform inside
  kTripleDisk,  // 3 points on the solution disk, rest uniform inside
  kTriangle,    // points uniform in a triangle
  kHull,        // perturbed vertices of a regular polygon
};

inline constexpr DiskDataset kAllDiskDatasets[] = {
    DiskDataset::kDuoDisk, DiskDataset::kTripleDisk, DiskDataset::kTriangle,
    DiskDataset::kHull};

/// Paper's dataset names (Figure 1 captions).
std::string dataset_name(DiskDataset d);

/// Size of the optimal basis each dataset is designed to have (Section 5
/// attributes the round-constant difference to exactly this).
std::size_t dataset_basis_size(DiskDataset d);

/// Generate an n-point instance of the given dataset.
std::vector<geom::Vec2> generate_disk_dataset(DiskDataset d, std::size_t n,
                                              util::Rng& rng);

}  // namespace lpt::workloads
