// Random feasible 2-variable LP instances with a known unique optimum.
//
// Construction: two "V" constraints meet at a planted vertex and support
// the objective direction, so the planted vertex is the unique optimum; all
// other constraints keep the vertex feasible with positive slack (adding
// constraints can only raise the minimum, so the optimum is preserved).
#pragma once

#include <vector>

#include "lp/halfplane.hpp"
#include "util/rng.hpp"

namespace lpt::workloads {

struct LpInstance {
  std::vector<lp::Halfplane> constraints;
  geom::Vec2 objective{};        // minimize objective . x
  geom::Vec2 optimum{};          // planted optimal vertex
  double optimal_value = 0.0;
};

/// n-constraint instance; optimum planted at a random point in [-5,5]^2.
LpInstance generate_lp_instance(std::size_t n, util::Rng& rng);

}  // namespace lpt::workloads
