#include "workloads/disk_data.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace lpt::workloads {

namespace {
constexpr double kPi = 3.14159265358979323846;

// Uniform point in the disk of the given radius around the origin.
geom::Vec2 uniform_in_disk(util::Rng& rng, double radius) {
  const double r = radius * std::sqrt(rng.uniform());
  const double a = rng.uniform(0.0, 2.0 * kPi);
  return {r * std::cos(a), r * std::sin(a)};
}
}  // namespace

std::string dataset_name(DiskDataset d) {
  switch (d) {
    case DiskDataset::kDuoDisk:
      return "duo-disk";
    case DiskDataset::kTripleDisk:
      return "triple-disk";
    case DiskDataset::kTriangle:
      return "triangle";
    case DiskDataset::kHull:
      return "hull";
  }
  return "?";
}

std::size_t dataset_basis_size(DiskDataset d) {
  return d == DiskDataset::kDuoDisk ? 2 : 3;
}

std::vector<geom::Vec2> generate_disk_dataset(DiskDataset d, std::size_t n,
                                              util::Rng& rng) {
  LPT_CHECK(n >= 1);
  std::vector<geom::Vec2> pts;
  pts.reserve(n);
  switch (d) {
    case DiskDataset::kDuoDisk: {
      // Two diametral points define the unit disk; the rest is strictly
      // inside, so the optimal basis has size 2 (Figure 1a).
      pts.push_back({-1.0, 0.0});
      if (n >= 2) pts.push_back({1.0, 0.0});
      while (pts.size() < n) pts.push_back(uniform_in_disk(rng, 0.995));
      break;
    }
    case DiskDataset::kTripleDisk: {
      // An equilateral triple on the unit circle defines the disk; basis
      // size 3 (Figure 1b).
      for (int k = 0; k < 3 && pts.size() < n; ++k) {
        const double a = kPi / 2.0 + 2.0 * kPi * k / 3.0;
        pts.push_back({std::cos(a), std::sin(a)});
      }
      while (pts.size() < n) pts.push_back(uniform_in_disk(rng, 0.995));
      break;
    }
    case DiskDataset::kTriangle: {
      // Points uniform in a fixed acute triangle (Figure 1c); the triangle
      // vertices themselves are included so the basis is the 3 vertices.
      const geom::Vec2 a{-1.0, -0.7};
      const geom::Vec2 b{1.0, -0.7};
      const geom::Vec2 c{0.0, 1.1};
      pts.push_back(a);
      if (n >= 2) pts.push_back(b);
      if (n >= 3) pts.push_back(c);
      while (pts.size() < n) {
        double u = rng.uniform();
        double v = rng.uniform();
        if (u + v > 1.0) {
          u = 1.0 - u;
          v = 1.0 - v;
        }
        // Shrink slightly toward the centroid to keep samples interior.
        const geom::Vec2 q = a + u * (b - a) + v * (c - a);
        const geom::Vec2 g = (1.0 / 3.0) * (a + b + c);
        pts.push_back(g + 0.999 * (q - g));
      }
      break;
    }
    case DiskDataset::kHull: {
      // Perturbed vertices of a regular n-gon (Figure 1d): every point is
      // near the boundary, the hull is large, the basis still has size <= 3.
      for (std::size_t k = 0; k < n; ++k) {
        const double a = 2.0 * kPi * static_cast<double>(k) /
                         static_cast<double>(n);
        const double ra = a + rng.uniform(-0.3, 0.3) /
                                  static_cast<double>(n);
        const double rr = 1.0 + rng.uniform(-1e-3, 1e-3);
        pts.push_back({rr * std::cos(ra), rr * std::sin(ra)});
      }
      break;
    }
  }
  return pts;
}

}  // namespace lpt::workloads
