// Set-system generators for the hitting set / set cover experiments.
#pragma once

#include <memory>

#include "problems/hitting_set_problem.hpp"
#include "util/rng.hpp"

namespace lpt::workloads {

/// Planted instance with minimum hitting set size exactly d:
/// d pairwise-disjoint "core" sets force >= d elements, and the d planted
/// elements (one per core set) hit every set.  The remaining s - d sets
/// each contain >= 1 planted element plus `extra` random elements.
struct PlantedHs {
  std::shared_ptr<problems::SetSystem> system;
  std::vector<std::uint32_t> planted;  // an optimal hitting set, |.| = d
};

PlantedHs generate_planted_hitting_set(std::size_t universe, std::size_t sets,
                                       std::size_t d, std::size_t set_size,
                                       util::Rng& rng);

/// 1-D interval range space: universe {0..n-1} as points on a line, each
/// set a random interval of ids (a simple geometric range space; the paper
/// motivates hitting set via geometric ranges).
std::shared_ptr<problems::SetSystem> generate_interval_ranges(
    std::size_t universe, std::size_t sets, std::size_t min_len,
    std::size_t max_len, util::Rng& rng);

/// Random set-cover instance whose cover uses the planted construction on
/// the dual side (so the minimum cover size is exactly d).
struct PlantedCover {
  std::shared_ptr<problems::SetSystem> instance;  // primal (X, S)
  std::vector<std::uint32_t> planted_cover;       // optimal cover, |.| = d
};

PlantedCover generate_planted_set_cover(std::size_t universe,
                                        std::size_t sets, std::size_t d,
                                        util::Rng& rng);

}  // namespace lpt::workloads
