#include "workloads/lp_data.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace lpt::workloads {

LpInstance generate_lp_instance(std::size_t n, util::Rng& rng) {
  LPT_CHECK(n >= 2);
  LpInstance inst;
  inst.objective = {0.0, 1.0};  // minimize y
  const geom::Vec2 t{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
  inst.optimum = t;
  inst.optimal_value = geom::dot(inst.objective, t);

  // Two binding constraints forming a V with apex at t:
  //   y >= t.y - s1 (x - t.x)  and  y >= t.y + s2 (x - t.x),  s1, s2 > 0.
  // As halfplanes a.x <= b:  (-s1, -1).(x,y) <= (-s1, -1).t  etc.
  const double s1 = rng.uniform(0.2, 3.0);
  const double s2 = rng.uniform(0.2, 3.0);
  const geom::Vec2 n1{-s1, -1.0};
  const geom::Vec2 n2{s2, -1.0};
  inst.constraints.push_back({n1, geom::dot(n1, t)});
  inst.constraints.push_back({n2, geom::dot(n2, t)});

  // Non-binding constraints: random direction, positive slack at t.
  while (inst.constraints.size() < n) {
    const double a = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    const geom::Vec2 dir{std::cos(a), std::sin(a)};
    const double slack = rng.uniform(0.05, 4.0);
    inst.constraints.push_back({dir, geom::dot(dir, t) + slack});
  }
  return inst;
}

}  // namespace lpt::workloads
