// Ring-buffer span/event tracer exported as Chrome trace_event JSON.
//
// What gets traced (when enabled): engine round start/end, stage-A
// chunks, shard frame send/recv/requeue, recovery respawn/reassign,
// service epoch admit/serve.  Load the output at chrome://tracing /
// https://ui.perfetto.dev, or validate it with tools/trace_summary.py.
//
// ## Cost model — why tracing cannot break the serve-path contracts
//
//   * Disabled (default): every site is one relaxed atomic load of
//     g_active (false) — no clock reads, no writes.  Runs are
//     bit-identical to an uninstrumented build (the tracer never draws
//     RNG or branches into algorithm code), and bench/service_qps
//     hard-gates the wall overhead at <= 1%.
//   * Enabled: enable_tracing() preallocates the whole ring up front;
//     recording claims a slot with one relaxed fetch_add and writes a
//     POD event — never an allocation, so the zero-steady-state-
//     allocation gate holds even with tracing on.
//   * Sampling: trace_tick() is called once per top-level unit (engine
//     round, service epoch) and arms g_active for that unit iff
//     unit_index % sample_period == 0.  Default period 64 keeps the
//     traced fraction small; period 1 traces everything.
//
// Span names must be string literals (or otherwise outlive the
// tracer): events store the pointer, not a copy.
//
// Building with -DLPT_OBS_TRACE=OFF compiles every site down to
// nothing (LPT_OBS_NO_TRACE): the enable/write entry points remain as
// no-op stubs so callers link unchanged.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace lpt::obs {

struct TraceConfig {
  std::size_t capacity = 1 << 16;   // events kept (ring wraps, newest win)
  std::uint32_t sample_period = 64; // trace every k-th round/epoch; 1 = all
};

#ifndef LPT_OBS_NO_TRACE

/// Compile-time witness for call sites that want to skip trace-only work
/// (e.g. the overhead gate) in LPT_OBS_TRACE=OFF builds.
inline constexpr bool kTraceCompiled = true;

namespace detail {
extern std::atomic<bool> g_active;  // armed by trace_tick for sampled units
std::uint64_t now_ns() noexcept;
std::uint32_t thread_tid() noexcept;
void record_event(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns,
                  char phase, std::uint64_t arg) noexcept;
}  // namespace detail

/// Allocate the ring and start accepting events (first sampled unit is
/// unit 0, so the very next trace_tick arms recording).
void enable_tracing(TraceConfig cfg = {});

/// Stop accepting events.  The ring keeps its contents for a final
/// write_chrome_trace; enable_tracing() again resets it.
void disable_tracing();

bool tracing_enabled() noexcept;

/// Call once per top-level unit (engine round, service epoch): arms or
/// disarms recording for the unit per the sampling period.  Returns
/// whether the unit is being traced.
bool trace_tick() noexcept;

/// One relaxed load: is the current unit being traced?
inline bool trace_active() noexcept {
  return detail::g_active.load(std::memory_order_relaxed);
}

/// Instant event ("i" phase), e.g. a frame send inside a sampled round.
inline void trace_instant(const char* name, std::uint64_t arg = 0) noexcept {
  if (!trace_active()) return;
  detail::record_event(name, detail::now_ns(), 0, 'i', arg);
}

/// Instant event that bypasses the sampling gate: for rare, high-value
/// events (worker deaths, recovery decisions) that must land in the
/// trace even when the surrounding round is unsampled.
void trace_rare(const char* name, std::uint64_t arg = 0) noexcept;

/// RAII span: records one Chrome "X" (complete) event on destruction.
/// Arms itself at construction, so a span open when the unit ends still
/// records coherently.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::uint64_t arg = 0) noexcept
      : name_(name), arg_(arg), armed_(trace_active()) {
    if (armed_) start_ns_ = detail::now_ns();
  }
  ~TraceSpan() {
    if (armed_) {
      const std::uint64_t end = detail::now_ns();
      detail::record_event(name_, start_ns_,
                           end > start_ns_ ? end - start_ns_ : 0, 'X', arg_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t arg_;
  bool armed_;
  std::uint64_t start_ns_ = 0;
};

/// Write the ring as Chrome trace_event JSON ({"traceEvents": [...]}),
/// events sorted by timestamp.  Returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

/// Events currently held in the ring (post-wrap: the capacity).
std::size_t trace_event_count() noexcept;

#else  // LPT_OBS_NO_TRACE: compile every site down to nothing.

inline constexpr bool kTraceCompiled = false;

inline void enable_tracing(TraceConfig = {}) {}
inline void disable_tracing() {}
inline bool tracing_enabled() noexcept { return false; }
inline bool trace_tick() noexcept { return false; }
inline bool trace_active() noexcept { return false; }
inline void trace_instant(const char*, std::uint64_t = 0) noexcept {}
inline void trace_rare(const char*, std::uint64_t = 0) noexcept {}
class TraceSpan {
 public:
  explicit TraceSpan(const char*, std::uint64_t = 0) noexcept {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};
inline bool write_chrome_trace(const std::string&) { return false; }
inline std::size_t trace_event_count() noexcept { return 0; }

#endif  // LPT_OBS_NO_TRACE

}  // namespace lpt::obs
