// Umbrella header for the observability subsystem (lpt_obs): metrics
// registry + latency histograms + span/event tracing + memory telemetry.
// Sits below lpt_gossip — every layer above gets it transitively.
#pragma once

#include "obs/histogram.hpp"  // IWYU pragma: export
#include "obs/memory.hpp"     // IWYU pragma: export
#include "obs/registry.hpp"   // IWYU pragma: export
#include "obs/trace.hpp"      // IWYU pragma: export
