// Process-global metrics registry: named counters, gauges, and latency
// histograms shared by the gossip substrate, the four engines, the shard
// runtime, and the service, all readable through one snapshot / one
// obs::dump_json().
//
// Contract:
//   * Registration (obs::counter("gossip.push_ops") etc.) takes a mutex
//     once, returns a reference with a stable address (std::deque
//     storage), and is idempotent — call sites cache the reference and
//     the hot path is a single relaxed atomic op: O(1), lock-free,
//     allocation-free, so bumping metrics inside the service's
//     zero-steady-state-allocation serve path is safe.
//   * Metrics never feed back into the algorithms: no RNG draws, no
//     control flow — instrumented runs are bit-identical to
//     uninstrumented ones (tested).
//   * Counters are monotone sums, so deterministic update sites produce
//     deterministic totals regardless of thread interleaving; gauges are
//     last-write-wins levels (arena bytes, RSS) and carry no determinism
//     claim.
//
// Snapshot / delta: snapshot() copies every metric (histograms
// bucket-by-bucket) under the registration mutex; Snapshot::delta(prev)
// subtracts counters and histogram buckets pairwise, keeping gauges
// absolute — "what happened between these two points".
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"

namespace lpt::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t get() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t get() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Look up (registering on first use) a metric by name.  The returned
/// reference stays valid for the life of the process; cache it at the
/// call site — lookup takes a mutex, use does not.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// A point-in-time copy of every registered metric.
struct Snapshot {
  struct HistogramCopy {
    std::string name;
    std::vector<std::uint64_t> buckets;  // size Histogram::kBuckets
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;

    /// Nearest-rank percentile over the copied buckets (same definition
    /// and error bound as Histogram::percentile).
    std::uint64_t percentile(double q) const noexcept;
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramCopy> histograms;

  /// Counter value by name (0 if absent) — test/tool convenience.
  std::uint64_t counter_value(std::string_view name) const noexcept;
  std::int64_t gauge_value(std::string_view name) const noexcept;
  const HistogramCopy* find_histogram(std::string_view name) const noexcept;

  /// This snapshot minus `since`: counters and histogram buckets
  /// subtracted pairwise (missing-in-`since` metrics pass through
  /// whole); gauges are levels and stay absolute.
  Snapshot delta(const Snapshot& since) const;
};

Snapshot snapshot();

/// Serialize every registered metric (plus histogram summaries:
/// count/sum/mean/p50/p95/p99/max) as one JSON object.  Names sorted,
/// so the output is deterministic given deterministic metric values.
std::string dump_json();

/// Zero every registered metric (counters, gauges, histogram buckets).
/// The registry itself — names and addresses — is process-global and
/// never shrinks; reset gives per-run readings in benches and tests.
void reset_all();

}  // namespace lpt::obs
