// Process memory telemetry: /proc/self/status VmRSS (current resident
// set) and VmHWM (peak RSS high-water mark), published as registry
// gauges so one obs::dump_json() carries memory next to work counters.
//
// Linux-only by nature; on other platforms (or a masked /proc)
// read_proc_status() returns ok = false and the gauges stay untouched —
// callers emit 0 and downstream gates warn-skip (the same chicken-and-
// egg convention the bench-trend checker uses for new columns).
#pragma once

#include <cstdint>

namespace lpt::obs {

struct MemorySample {
  std::uint64_t vm_rss_bytes = 0;  // current resident set size
  std::uint64_t vm_hwm_bytes = 0;  // peak RSS over the process lifetime
  bool ok = false;
};

/// Parse VmRSS / VmHWM out of /proc/self/status (values are in kB).
MemorySample read_proc_status();

/// read_proc_status() + publish to gauges "mem.vm_rss_bytes" and
/// "mem.vm_hwm_bytes" when the read succeeds.  Returns the sample.
MemorySample sample_memory();

}  // namespace lpt::obs
