#include "obs/memory.hpp"

#include <cstdio>
#include <cstring>

#include "obs/registry.hpp"

namespace lpt::obs {

MemorySample read_proc_status() {
  MemorySample out;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return out;
  char line[256];
  bool have_rss = false;
  bool have_hwm = false;
  while (std::fgets(line, sizeof(line), f)) {
    unsigned long long kb = 0;
    if (std::strncmp(line, "VmRSS:", 6) == 0 &&
        std::sscanf(line + 6, "%llu", &kb) == 1) {
      out.vm_rss_bytes = static_cast<std::uint64_t>(kb) * 1024;
      have_rss = true;
    } else if (std::strncmp(line, "VmHWM:", 6) == 0 &&
               std::sscanf(line + 6, "%llu", &kb) == 1) {
      out.vm_hwm_bytes = static_cast<std::uint64_t>(kb) * 1024;
      have_hwm = true;
    }
    if (have_rss && have_hwm) break;
  }
  std::fclose(f);
  out.ok = have_rss && have_hwm;
  return out;
}

MemorySample sample_memory() {
  const MemorySample s = read_proc_status();
  if (s.ok) {
    gauge("mem.vm_rss_bytes").set(static_cast<std::int64_t>(s.vm_rss_bytes));
    gauge("mem.vm_hwm_bytes").set(static_cast<std::int64_t>(s.vm_hwm_bytes));
  }
  return s;
}

}  // namespace lpt::obs
