#include "obs/trace.hpp"

#ifndef LPT_OBS_NO_TRACE

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <vector>

namespace lpt::obs {

namespace detail {

std::atomic<bool> g_active{false};

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

struct Event {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = 0;
  std::uint32_t tid = 0;
  char phase = 0;
};

struct TraceState {
  std::vector<Event> ring;        // preallocated at enable_tracing
  std::atomic<std::uint64_t> head{0};
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> unit{0};  // trace_tick counter
  std::uint32_t sample_period = 64;
  std::uint64_t base_ns = 0;           // t=0 of the trace
};

TraceState& tstate() {
  static TraceState* s = new TraceState();  // leaked: outlives statics
  return *s;
}

std::atomic<std::uint32_t> g_next_tid{0};

}  // namespace

std::uint32_t thread_tid() noexcept {
  thread_local std::uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void record_event(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns,
                  char phase, std::uint64_t arg) noexcept {
  TraceState& s = tstate();
  if (s.ring.empty()) return;
  // Unique slot per claim; the ring wraps keeping the newest events.  A
  // writer lapped mid-write could tear a slot — acceptable for a tracer,
  // and write_chrome_trace drops obviously torn (null-name) entries.
  const std::uint64_t idx = s.head.fetch_add(1, std::memory_order_relaxed);
  Event& e = s.ring[idx % s.ring.size()];
  e.name = name;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.arg = arg;
  e.tid = thread_tid();
  e.phase = phase;
}

}  // namespace detail

void enable_tracing(TraceConfig cfg) {
  auto& s = detail::tstate();
  if (cfg.capacity == 0) cfg.capacity = 1;
  if (cfg.sample_period == 0) cfg.sample_period = 1;
  s.enabled.store(false, std::memory_order_relaxed);
  detail::g_active.store(false, std::memory_order_relaxed);
  s.ring.assign(cfg.capacity, {});
  s.head.store(0, std::memory_order_relaxed);
  s.unit.store(0, std::memory_order_relaxed);
  s.sample_period = cfg.sample_period;
  s.base_ns = detail::now_ns();
  s.enabled.store(true, std::memory_order_relaxed);
}

void disable_tracing() {
  auto& s = detail::tstate();
  s.enabled.store(false, std::memory_order_relaxed);
  detail::g_active.store(false, std::memory_order_relaxed);
}

bool tracing_enabled() noexcept {
  return detail::tstate().enabled.load(std::memory_order_relaxed);
}

bool trace_tick() noexcept {
  auto& s = detail::tstate();
  if (!s.enabled.load(std::memory_order_relaxed)) {
    // Cheap disarm: keeps g_active coherent if tracing was switched off
    // between units.
    if (detail::g_active.load(std::memory_order_relaxed)) {
      detail::g_active.store(false, std::memory_order_relaxed);
    }
    return false;
  }
  const std::uint64_t u = s.unit.fetch_add(1, std::memory_order_relaxed);
  const bool active = (u % s.sample_period) == 0;
  detail::g_active.store(active, std::memory_order_relaxed);
  return active;
}

void trace_rare(const char* name, std::uint64_t arg) noexcept {
  auto& s = detail::tstate();
  if (!s.enabled.load(std::memory_order_relaxed)) return;
  detail::record_event(name, detail::now_ns(), 0, 'i', arg);
}

std::size_t trace_event_count() noexcept {
  auto& s = detail::tstate();
  const std::uint64_t head = s.head.load(std::memory_order_relaxed);
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(head, s.ring.size()));
}

bool write_chrome_trace(const std::string& path) {
  auto& s = detail::tstate();
  const std::size_t n = trace_event_count();
  std::vector<detail::Event> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const detail::Event& e = s.ring[i];
    if (e.name == nullptr || e.phase == 0) continue;  // torn / never written
    events.push_back(e);
  }
  std::sort(events.begin(), events.end(),
            [](const detail::Event& a, const detail::Event& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              // Parent spans before children at equal start times.
              return a.dur_ns > b.dur_ns;
            });

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
  bool first = true;
  for (const detail::Event& e : events) {
    const std::uint64_t rel =
        e.ts_ns >= s.base_ns ? e.ts_ns - s.base_ns : e.ts_ns;
    // Chrome's ts/dur are microseconds; fractional values keep ns order.
    std::fprintf(f,
                 "%s  {\"name\": \"%s\", \"ph\": \"%c\", \"pid\": 1, "
                 "\"tid\": %" PRIu32 ", \"ts\": %.3f",
                 first ? "" : ",\n", e.name, e.phase, e.tid,
                 static_cast<double>(rel) / 1e3);
    if (e.phase == 'X') {
      std::fprintf(f, ", \"dur\": %.3f", static_cast<double>(e.dur_ns) / 1e3);
    }
    if (e.phase == 'i') {
      std::fprintf(f, ", \"s\": \"t\"");
    }
    std::fprintf(f, ", \"args\": {\"v\": %" PRIu64 "}}", e.arg);
    first = false;
  }
  std::fprintf(f, "\n]}\n");
  const bool ok = std::fclose(f) == 0;
  return ok;
}

}  // namespace lpt::obs

#endif  // LPT_OBS_NO_TRACE
