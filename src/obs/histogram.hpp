// Log-bucketed latency histogram: the fixed-footprint replacement for
// "keep every sample and sort" percentile estimation.
//
// Layout (HdrHistogram-style, kSubBits = 5):
//   * values in [0, 2^(kSubBits+1)) land in their own bucket — exact;
//   * larger values share one bucket per 1/32 of an octave, so any
//     reported quantile overstates the true order statistic by at most
//     a factor of (1 + 2^-kSubBits) = 1.03125.
//
// index(v) for v >= 2*kSub:  shift = bit_width(v)-1-kSubBits,
// idx = (shift << kSubBits) + (v >> shift); the two ranges are
// continuous at v = 2*kSub (see the unit tests' exhaustive boundary
// sweep).  64-bit values fit in kBuckets = 1920 slots, so a histogram
// is one flat 15 KiB array of relaxed atomics: record() is a handful
// of lock-free adds, never an allocation — safe inside the service's
// zero-steady-state-allocation serve path.
//
// Percentiles use the nearest-rank definition (rank = ceil(q * count))
// and return the *upper edge* of the bucket holding that rank, so
// oracle <= percentile(q) <= oracle * (1 + 2^-kSubBits) + 1 against a
// sorted-vector oracle (the +1 covers the inclusive upper edge of
// exact buckets' neighbours at octave boundaries).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace lpt::obs {

class Histogram {
 public:
  static constexpr unsigned kSubBits = 5;           // 32 sub-buckets/octave
  static constexpr std::uint64_t kSub = 1ull << kSubBits;
  static constexpr std::size_t kBuckets =
      ((63 - kSubBits) << kSubBits) + 2 * kSub;     // max index + 1

  /// Bucket index of a value.  O(1): one bit_width + shifts.
  static constexpr std::size_t index(std::uint64_t v) noexcept {
    if (v < 2 * kSub) return static_cast<std::size_t>(v);
    const unsigned shift =
        static_cast<unsigned>(std::bit_width(v)) - 1 - kSubBits;
    return (static_cast<std::size_t>(shift) << kSubBits) +
           static_cast<std::size_t>(v >> shift);
  }

  /// Largest value mapping to bucket `idx` (what percentile() reports).
  static constexpr std::uint64_t bucket_upper(std::size_t idx) noexcept {
    if (idx < 2 * kSub) return static_cast<std::uint64_t>(idx);
    const unsigned shift = static_cast<unsigned>(idx >> kSubBits) - 1;
    const std::uint64_t base = static_cast<std::uint64_t>(
        (idx & (kSub - 1)) | kSub);  // mantissa incl. leading bit
    return ((base + 1) << shift) - 1;
  }

  /// Record one sample.  Lock-free, allocation-free, relaxed ordering.
  void record(std::uint64_t v) noexcept {
    counts_[index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket_count(std::size_t idx) const noexcept {
    return counts_[idx].load(std::memory_order_relaxed);
  }

  /// Nearest-rank percentile, q in [0, 1]: the upper edge of the bucket
  /// containing the ceil(q * count)-th smallest sample (0 when empty).
  std::uint64_t percentile(double q) const noexcept {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
    if (static_cast<double>(rank) < q * static_cast<double>(n)) ++rank;
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i].load(std::memory_order_relaxed);
      if (seen >= rank) return bucket_upper(i);
    }
    return max();  // concurrent recording moved the total; best effort
  }

  void reset() noexcept {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace lpt::obs
