#include "obs/registry.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>

namespace lpt::obs {

namespace {

// One deque per metric kind: push_back never moves existing elements, so
// references handed out by counter()/gauge()/histogram() stay valid while
// later registrations come in.  The map holds indices, not pointers, so a
// name lookup is one find under the mutex.
template <typename T>
struct Table {
  std::deque<T> slots;
  std::map<std::string, std::size_t, std::less<>> index;

  T& get(std::string_view name, std::mutex& mu) {
    std::lock_guard<std::mutex> lock(mu);
    if (auto it = index.find(name); it != index.end()) {
      return slots[it->second];
    }
    slots.emplace_back();
    index.emplace(std::string(name), slots.size() - 1);
    return slots.back();
  }
};

struct RegistryState {
  std::mutex mu;
  Table<Counter> counters;
  Table<Gauge> gauges;
  Table<Histogram> histograms;
};

RegistryState& state() {
  static RegistryState* s = new RegistryState();  // leaked: outlives statics
  return *s;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

Counter& counter(std::string_view name) {
  auto& s = state();
  return s.counters.get(name, s.mu);
}

Gauge& gauge(std::string_view name) {
  auto& s = state();
  return s.gauges.get(name, s.mu);
}

Histogram& histogram(std::string_view name) {
  auto& s = state();
  return s.histograms.get(name, s.mu);
}

std::uint64_t Snapshot::HistogramCopy::percentile(double q) const noexcept {
  if (count == 0) return 0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return Histogram::bucket_upper(i);
  }
  return max;
}

std::uint64_t Snapshot::counter_value(std::string_view name) const noexcept {
  for (const auto& [k, v] : counters) {
    if (k == name) return v;
  }
  return 0;
}

std::int64_t Snapshot::gauge_value(std::string_view name) const noexcept {
  for (const auto& [k, v] : gauges) {
    if (k == name) return v;
  }
  return 0;
}

const Snapshot::HistogramCopy* Snapshot::find_histogram(
    std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Snapshot Snapshot::delta(const Snapshot& since) const {
  Snapshot d = *this;
  for (auto& [name, v] : d.counters) {
    v -= since.counter_value(name);  // monotone: new >= old
  }
  for (auto& h : d.histograms) {
    const HistogramCopy* old = since.find_histogram(h.name);
    if (!old) continue;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      h.buckets[i] -= old->buckets[i];
    }
    h.count -= old->count;
    h.sum -= old->sum;
    // max is not subtractable; keep the absolute max as best effort.
  }
  return d;
}

Snapshot snapshot() {
  auto& s = state();
  Snapshot out;
  std::lock_guard<std::mutex> lock(s.mu);
  for (const auto& [name, idx] : s.counters.index) {
    out.counters.emplace_back(name, s.counters.slots[idx].get());
  }
  for (const auto& [name, idx] : s.gauges.index) {
    out.gauges.emplace_back(name, s.gauges.slots[idx].get());
  }
  for (const auto& [name, idx] : s.histograms.index) {
    const Histogram& h = s.histograms.slots[idx];
    Snapshot::HistogramCopy c;
    c.name = name;
    c.buckets.resize(Histogram::kBuckets);
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      c.buckets[i] = h.bucket_count(i);
    }
    c.count = h.count();
    c.sum = h.sum();
    c.max = h.max();
    out.histograms.push_back(std::move(c));
  }
  return out;
}

std::string dump_json() {
  const Snapshot snap = snapshot();  // map iteration => names sorted
  std::string out;
  out.reserve(1024);
  char buf[64];
  out += "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out += i ? ",\n    \"" : "\n    \"";
    append_json_escaped(out, snap.counters[i].first);
    std::snprintf(buf, sizeof(buf), "\": %" PRIu64, snap.counters[i].second);
    out += buf;
  }
  out += snap.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out += i ? ",\n    \"" : "\n    \"";
    append_json_escaped(out, snap.gauges[i].first);
    std::snprintf(buf, sizeof(buf), "\": %" PRId64, snap.gauges[i].second);
    out += buf;
  }
  out += snap.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    out += i ? ",\n    \"" : "\n    \"";
    append_json_escaped(out, h.name);
    const double mean =
        h.count ? static_cast<double>(h.sum) / static_cast<double>(h.count)
                : 0.0;
    std::snprintf(buf, sizeof(buf), "\": {\"count\": %" PRIu64, h.count);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"sum\": %" PRIu64, h.sum);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"mean\": %.17g", mean);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"p50\": %" PRIu64, h.percentile(0.50));
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"p95\": %" PRIu64, h.percentile(0.95));
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"p99\": %" PRIu64, h.percentile(0.99));
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"max\": %" PRIu64 "}", h.max);
    out += buf;
  }
  out += snap.histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void reset_all() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (auto& c : s.counters.slots) c.reset();
  for (auto& g : s.gauges.slots) g.reset();
  for (auto& h : s.histograms.slots) h.reset();
}

}  // namespace lpt::obs
