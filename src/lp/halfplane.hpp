// Half-plane constraints for 2-variable linear programs.
//
// A Halfplane is the LP-type *element* of the linear_program2d problem:
// trivially copyable, 24 bytes, lexicographically ordered for deterministic
// basis tie-breaking.
#pragma once

#include <compare>

#include "geometry/vec2.hpp"

namespace lpt::lp {

/// Constraint a.x * x + a.y * y <= b.
struct Halfplane {
  geom::Vec2 a{};
  double b = 0.0;

  bool satisfied(geom::Vec2 p, double eps = 1e-9) const noexcept {
    return geom::dot(a, p) <= b + eps * scale();
  }

  /// Magnitude used to make feasibility tests relative.
  double scale() const noexcept {
    const double n = geom::norm(a);
    const double ab = b < 0 ? -b : b;
    return (n > ab ? n : ab) + 1.0;
  }

  friend constexpr auto operator<=>(const Halfplane&, const Halfplane&) = default;
};

}  // namespace lpt::lp
