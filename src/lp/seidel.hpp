// Seidel's randomized incremental algorithm for 2-variable linear programs.
//
//   minimize  c . x   subject to  a_i . x <= b_i  and  |x|, |y| <= box
//
// The implicit bounding box keeps every subproblem bounded, which is the
// standard de-generalization used when treating fixed-dimension LP as an
// LP-type problem (the paper, Section 1.1, assumes non-degenerate bounded
// instances; the box plays the role of the perturbation).
//
// The solution is canonicalized: among optimal points, the lexicographically
// smallest (x, then y) is returned, so every subset of constraints maps to a
// *unique* value tuple (objective, x, y) — exactly the uniqueness assumption
// the paper's locality argument needs.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "lp/halfplane.hpp"
#include "util/rng.hpp"

namespace lpt::lp {

/// Totally ordered LP value: objective first, then the canonical point.
/// Infeasible subsets map to the maximum value (the paper's "infinity").
struct LpValue {
  double objective = 0.0;
  geom::Vec2 point{};
  bool infeasible = false;

  friend bool operator==(const LpValue& a, const LpValue& b) {
    if (a.infeasible != b.infeasible) return false;
    if (a.infeasible) return true;
    return a.objective == b.objective && a.point == b.point;
  }
  friend bool operator<(const LpValue& a, const LpValue& b) {
    if (a.infeasible != b.infeasible) return !a.infeasible;
    if (a.infeasible) return false;
    if (a.objective != b.objective) return a.objective < b.objective;
    return a.point < b.point;
  }
};

struct LpResult {
  LpValue value{};
  std::vector<Halfplane> basis;  // <= 2 input constraints defining the optimum
};

class Seidel2D {
 public:
  /// objective: the c of "minimize c . x".  box: half-width of the bounding
  /// square (must exceed any coordinate of interest in the instance).
  explicit Seidel2D(geom::Vec2 objective, double box = 1e6);

  geom::Vec2 objective() const noexcept { return c_; }
  double box() const noexcept { return box_; }

  /// Solve the LP over `constraints` (plus the box).  Deterministic given
  /// the rng state (used only for the insertion order shuffle).
  LpValue solve(std::span<const Halfplane> constraints, util::Rng& rng) const;

  /// Deterministic-seed convenience overload.
  LpValue solve(std::span<const Halfplane> constraints) const;

  /// Solve and extract a minimal defining basis (<= 2 constraints from the
  /// input; box edges are implicit and never reported).
  LpResult solve_with_basis(std::span<const Halfplane> constraints) const;

  /// Violation test: does adding h strictly increase the optimum of the set
  /// whose canonical optimum is `v`?  Because the optimum is canonical and
  /// unique, this is simply "h is not satisfied at v's point".
  bool violates(const LpValue& v, const Halfplane& h) const noexcept {
    if (v.infeasible) return false;  // f is already at its maximum
    return !h.satisfied(v.point);
  }

 private:
  LpValue optimum_of_box() const noexcept;

  // 1D LP along the boundary line of `h`, subject to `prior` and the box.
  // Returns nullopt if infeasible.
  std::optional<geom::Vec2> solve_on_line(
      const Halfplane& h, std::span<const Halfplane> prior,
      std::span<const std::size_t> order, std::size_t count) const;

  geom::Vec2 c_{};
  double box_ = 1e6;
};

}  // namespace lpt::lp
