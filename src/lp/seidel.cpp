#include "lp/seidel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace lpt::lp {

namespace {
constexpr double kTol = 1e-9;

bool approx_same(const LpValue& a, const LpValue& b) {
  if (a.infeasible || b.infeasible) return a.infeasible == b.infeasible;
  const double scale =
      std::max({std::abs(a.objective), std::abs(b.objective), 1.0});
  return std::abs(a.objective - b.objective) <= 1e-6 * scale &&
         geom::dist(a.point, b.point) <= 1e-6 * scale;
}
}  // namespace

Seidel2D::Seidel2D(geom::Vec2 objective, double box)
    : c_(objective), box_(box) {
  LPT_CHECK_MSG(box > 0.0, "Seidel2D: bounding box must be positive");
}

LpValue Seidel2D::optimum_of_box() const noexcept {
  // Lexicographically smallest minimizer over the square [-box, box]^2.
  geom::Vec2 p;
  p.x = c_.x < 0.0 ? box_ : -box_;  // c.x == 0 ties break to -box (lex-min)
  p.y = c_.y < 0.0 ? box_ : -box_;
  return LpValue{geom::dot(c_, p), p, false};
}

std::optional<geom::Vec2> Seidel2D::solve_on_line(
    const Halfplane& h, std::span<const Halfplane> prior,
    std::span<const std::size_t> order, std::size_t count) const {
  const double a2 = geom::norm2(h.a);
  if (a2 <= 1e-24) return std::nullopt;  // degenerate unsatisfiable handled by caller
  const geom::Vec2 p0 = (h.b / a2) * h.a;   // foot of the boundary line
  const geom::Vec2 dir = geom::perp(h.a);   // direction along the line

  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  auto clip = [&](geom::Vec2 ga, double gb, double gscale) -> bool {
    const double alpha = geom::dot(ga, dir);
    const double beta = gb - geom::dot(ga, p0);
    if (std::abs(alpha) <= kTol * gscale * std::sqrt(a2)) {
      return beta >= -kTol * gscale;  // parallel: feasible iff not cut off
    }
    const double t = beta / alpha;
    if (alpha > 0.0) {
      hi = std::min(hi, t);
    } else {
      lo = std::max(lo, t);
    }
    return true;
  };

  // Box edges.
  if (!clip({1.0, 0.0}, box_, box_)) return std::nullopt;
  if (!clip({-1.0, 0.0}, box_, box_)) return std::nullopt;
  if (!clip({0.0, 1.0}, box_, box_)) return std::nullopt;
  if (!clip({0.0, -1.0}, box_, box_)) return std::nullopt;
  // Previously inserted constraints.
  for (std::size_t k = 0; k < count; ++k) {
    const Halfplane& g = prior[order[k]];
    if (!clip(g.a, g.b, g.scale())) return std::nullopt;
  }
  if (lo > hi + kTol * (std::abs(lo) + std::abs(hi) + 1.0)) {
    return std::nullopt;
  }
  if (lo > hi) hi = lo;  // collapse numerically inverted sliver

  const double slope = geom::dot(c_, dir);
  const double slope_scale = (geom::norm(c_) + 1.0) * std::sqrt(a2);
  double t;
  if (slope > kTol * slope_scale) {
    t = lo;
  } else if (slope < -kTol * slope_scale) {
    t = hi;
  } else {
    // Objective constant along the line: canonical lex-min point.
    if (dir.x > kTol * std::sqrt(a2)) {
      t = lo;
    } else if (dir.x < -kTol * std::sqrt(a2)) {
      t = hi;
    } else {
      t = dir.y > 0.0 ? lo : hi;
    }
  }
  return p0 + t * dir;
}

LpValue Seidel2D::solve(std::span<const Halfplane> constraints,
                        util::Rng& rng) const {
  LpValue cur = optimum_of_box();
  std::vector<std::size_t> order(constraints.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Halfplane& h = constraints[order[i]];
    if (h.satisfied(cur.point)) continue;
    if (geom::norm2(h.a) <= 1e-24) {
      // 0 . x <= b with b < 0: unsatisfiable constraint.
      return LpValue{0.0, {}, true};
    }
    auto p = solve_on_line(h, constraints, order, i);
    if (!p) return LpValue{0.0, {}, true};
    cur.point = *p;
    cur.objective = geom::dot(c_, cur.point);
  }
  return cur;
}

LpValue Seidel2D::solve(std::span<const Halfplane> constraints) const {
  util::Rng rng(0x5e1de15e1de1ULL + constraints.size());
  return solve(constraints, rng);
}

LpResult Seidel2D::solve_with_basis(
    std::span<const Halfplane> constraints) const {
  LpResult res;
  res.value = solve(constraints);
  if (res.value.infeasible) {
    // Minimal infeasible witness by iterative removal (test-scale inputs
    // only; our workload generators always produce feasible instances).
    LPT_CHECK_MSG(constraints.size() <= 4096,
                  "infeasible basis extraction on oversized input");
    std::vector<Halfplane> work(constraints.begin(), constraints.end());
    std::sort(work.begin(), work.end());
    std::size_t i = 0;
    while (i < work.size()) {
      Halfplane removed = work[i];
      work.erase(work.begin() + static_cast<std::ptrdiff_t>(i));
      if (!solve(work).infeasible) {
        work.insert(work.begin() + static_cast<std::ptrdiff_t>(i), removed);
        ++i;
      }
    }
    res.basis = std::move(work);
    return res;
  }
  // Gather constraints binding at the canonical optimum, deterministically
  // ordered, then find the smallest subset reproducing the optimum.
  std::vector<Halfplane> binding;
  for (const auto& h : constraints) {
    const double slack = h.b - geom::dot(h.a, res.value.point);
    if (std::abs(slack) <= 1e-6 * h.scale()) binding.push_back(h);
  }
  std::sort(binding.begin(), binding.end());
  binding.erase(std::unique(binding.begin(), binding.end()), binding.end());

  if (approx_same(solve({}), res.value)) return res;  // box optimum: empty basis
  for (const auto& h : binding) {
    const Halfplane one[] = {h};
    if (approx_same(solve(one), res.value)) {
      res.basis = {h};
      return res;
    }
  }
  for (std::size_t i = 0; i < binding.size(); ++i) {
    for (std::size_t j = i + 1; j < binding.size(); ++j) {
      const Halfplane two[] = {binding[i], binding[j]};
      if (approx_same(solve(two), res.value)) {
        res.basis = {binding[i], binding[j]};
        return res;
      }
    }
  }
  // Numerical corner: fall back to all binding constraints (still small).
  res.basis = std::move(binding);
  return res;
}

}  // namespace lpt::lp
