// Streaming statistics used to aggregate simulation measurements:
// running moments (Welford), min/max, histograms, and ordinary least
// squares for fitting the rounds ~ a * log2(n) + b lines of Figures 2-3.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lpt::util {

/// Numerically stable running mean / variance / extrema (Welford).
class RunningStat {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // sample variance (n-1 denominator)
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStat& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge buckets. Used for per-node work distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::size_t count() const noexcept { return total_; }
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t bucket(std::size_t i) const noexcept { return counts_[i]; }
  double bucket_lo(std::size_t i) const noexcept;
  double quantile(double q) const noexcept;  // approximate, from buckets

  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Result of an ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  // coefficient of determination
};

/// OLS over the given points. Requires xs.size() == ys.size() >= 2.
LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys);

/// Exact sample quantile (sorts a copy).
double quantile(std::vector<double> values, double q);

/// Convenience: log base 2.
double log2d(double x);

}  // namespace lpt::util
