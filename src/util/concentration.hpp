// Concentration bounds used throughout the paper's analysis, as callable
// utilities: classic Chernoff/Hoeffding tails and the paper's Theorem 8
// (a Chernoff-Hoeffding bound for k-wise negatively correlated variables,
// after Schmidt-Siegel-Srinivasan), which powers Lemmas 7 and 11.
//
// The benches evaluate these bounds next to measured tails so that every
// "w.h.p." claim in the paper has a number attached in EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>

namespace lpt::util {

/// Multiplicative Chernoff upper tail for a sum of independent [0,1]
/// variables with mean mu:  P[X >= (1+delta) mu] <= exp(-min(d^2,d) mu/3).
inline double chernoff_upper_tail(double mu, double delta) {
  if (mu <= 0.0 || delta <= 0.0) return 1.0;
  return std::exp(-std::min(delta * delta, delta) * mu / 3.0);
}

/// Multiplicative Chernoff lower tail:
/// P[X <= (1-delta) mu] <= exp(-delta^2 mu / 2), delta in (0, 1].
inline double chernoff_lower_tail(double mu, double delta) {
  if (mu <= 0.0 || delta <= 0.0) return 1.0;
  return std::exp(-delta * delta * mu / 2.0);
}

/// Hoeffding bound for n independent variables in [lo, hi]:
/// P[X - E[X] >= t] <= exp(-2 t^2 / (n (hi - lo)^2)).
inline double hoeffding_tail(std::size_t n, double lo, double hi, double t) {
  if (n == 0 || hi <= lo || t <= 0.0) return 1.0;
  const double range = hi - lo;
  return std::exp(-2.0 * t * t / (static_cast<double>(n) * range * range));
}

/// Theorem 8 of the paper: variables X_i in [0, C] whose size-s product
/// moments are bounded by q^s for all s <= k; with mu = q n and
/// k >= ceil(mu delta):  P[X >= (1+delta) mu] <= exp(-min(d^2,d) mu/(3C)).
/// Returns the bound value (the caller is responsible for checking the
/// k >= ceil(mu delta) applicability condition, exposed separately below).
inline double theorem8_tail(double mu, double delta, double c_range) {
  if (mu <= 0.0 || delta <= 0.0 || c_range <= 0.0) return 1.0;
  return std::exp(-std::min(delta * delta, delta) * mu / (3.0 * c_range));
}

/// Applicability condition of Theorem 8.
inline bool theorem8_applicable(double mu, double delta, double k) {
  return k >= std::ceil(mu * delta);
}

/// Empirical tail: fraction of samples >= threshold.
inline double empirical_tail(std::span<const double> samples,
                             double threshold) {
  if (samples.empty()) return 0.0;
  std::size_t c = 0;
  for (double s : samples) c += (s >= threshold) ? 1 : 0;
  return static_cast<double>(c) / static_cast<double>(samples.size());
}

}  // namespace lpt::util
