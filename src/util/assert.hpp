// Assertion macros that stay active in release builds for invariants that
// guard simulation correctness (an incorrect simulator silently produces
// wrong science; we prefer a loud abort).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lpt::util::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "LPT_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}
}  // namespace lpt::util::detail

/// Always-on invariant check.
#define LPT_CHECK(expr)                                                   \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::lpt::util::detail::assert_fail(#expr, __FILE__, __LINE__, "");    \
    }                                                                     \
  } while (0)

/// Always-on invariant check with message.
#define LPT_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::lpt::util::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (0)

/// Debug-only check (compiled out under NDEBUG).
#ifdef NDEBUG
#define LPT_DCHECK(expr) ((void)0)
#else
#define LPT_DCHECK(expr) LPT_CHECK(expr)
#endif
