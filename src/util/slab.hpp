// Size-class slab allocator for per-node element storage.
//
// At n = 2^20 simulated nodes, one std::vector per node means a million
// separate heap blocks: every store-header touch is a pointer chase, every
// filter pass hops between unrelated cache lines, and constructing or
// destroying a run costs a million mallocs.  SlabPool replaces that with a
// handful of contiguous arenas: each *size class* c hands out fixed-capacity
// slots of kMinCap << c elements, carved from geometrically chunked arrays,
// with a per-class free list.  Allocation and release are O(1); a slot's
// elements are contiguous (random indexing stays O(1)); neighbouring slots
// of the same class sit in the same arena, so linear sweeps over many small
// stores (the engines' filter pass) stream memory instead of chasing
// pointers; and reset() recycles every slot while keeping the arenas, so a
// new epoch (e.g. a fresh simulation run over the same pool) costs O(number
// of size classes), not O(allocations).
//
// Handles are 32-bit: [class : 5 bits | slot : 27 bits].  The pool never
// moves a live slot — growing a logical store to the next size class is the
// *caller's* copy (see gossip::NodeStore), exactly like a vector's
// reallocation but with the old and new buffers both recycled in-arena.
//
// T must be trivially copyable (all gossiped element types are: Vec2,
// Halfplane, element ids), which keeps chunks as raw uninitialized arrays.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace lpt::util {

template <typename T>
class SlabPool {
  static_assert(std::is_trivially_copyable_v<T>,
                "SlabPool slots are raw storage; T must be trivially "
                "copyable");

 public:
  using Ref = std::uint32_t;

  static constexpr std::size_t kMinCapLog2 = 2;   // class 0 holds 4 elements
  static constexpr std::size_t kMinCap = std::size_t{1} << kMinCapLog2;
  static constexpr std::size_t kClassBits = 5;
  static constexpr std::size_t kSlotBits = 32 - kClassBits;
  static constexpr std::size_t kClasses = 26;     // caps 4 .. 128M elements
  // Small classes pack 2^kChunkSlotsLog2 slots per chunk; a class whose
  // slots are already >= 4096 elements gets one slot per chunk.
  static constexpr std::size_t kChunkSlotsLog2 = 10;

  /// Capacity (elements) of a slot of size class `cls`.
  static constexpr std::size_t class_capacity(std::size_t cls) noexcept {
    return kMinCap << cls;
  }

  /// Smallest size class whose slots hold at least `cap` elements.
  static std::size_t class_for(std::size_t cap) noexcept {
    const std::size_t log2 = ceil_log2(cap < kMinCap ? kMinCap : cap);
    return log2 - kMinCapLog2;
  }

  /// Allocate a slot holding at least `cap` elements.  O(1): pops the
  /// class free list, else bumps into the current chunk, else adds a chunk.
  Ref allocate_for(std::size_t cap) {
    const std::size_t cls = class_for(cap);
    LPT_CHECK_MSG(cls < kClasses, "SlabPool: store too large for any class");
    SizeClass& sc = classes_[cls];
    std::uint32_t slot;
    if (!sc.free_list.empty()) {
      slot = sc.free_list.back();
      sc.free_list.pop_back();
    } else {
      const std::size_t spc = slots_per_chunk(cls);
      if (sc.bump == sc.chunks.size() * spc) {
        sc.chunks.push_back(
            std::make_unique<T[]>(spc * class_capacity(cls)));
      }
      slot = sc.bump++;
    }
    LPT_CHECK_MSG(slot < (std::uint32_t{1} << kSlotBits),
                  "SlabPool: class slot space exhausted");
    ++live_slots_;
    return static_cast<Ref>((cls << kSlotBits) | slot);
  }

  /// Return a slot to its class free list.  O(1); the memory is recycled by
  /// the next allocate_for of the same class.
  void release(Ref ref) {
    classes_[ref_class(ref)].free_list.push_back(ref_slot(ref));
    --live_slots_;
  }

  T* data(Ref ref) noexcept {
    const std::size_t cls = ref_class(ref);
    const std::uint32_t slot = ref_slot(ref);
    const std::size_t spc_log2 = slots_per_chunk_log2(cls);
    return classes_[cls].chunks[slot >> spc_log2].get() +
           ((slot & ((std::size_t{1} << spc_log2) - 1))
            << (kMinCapLog2 + cls));
  }
  const T* data(Ref ref) const noexcept {
    return const_cast<SlabPool*>(this)->data(ref);
  }

  /// Capacity of the slot behind `ref`.
  static constexpr std::size_t capacity(Ref ref) noexcept {
    return class_capacity(ref_class(ref));
  }

  /// Recycle every slot while keeping the chunk arenas: O(kClasses).  All
  /// outstanding Refs become invalid; the next epoch's allocations reuse
  /// the already-reserved memory.
  void reset() noexcept {
    for (SizeClass& sc : classes_) {
      sc.free_list.clear();
      sc.bump = 0;
    }
    live_slots_ = 0;
  }

  /// Live (allocated, unreleased) slots — diagnostics and tests.
  std::size_t live_slots() const noexcept { return live_slots_; }

  /// Reserved arena memory in bytes (diagnostics).
  std::size_t arena_bytes() const noexcept {
    std::size_t total = 0;
    for (std::size_t c = 0; c < kClasses; ++c) {
      total += classes_[c].chunks.size() * slots_per_chunk(c) *
               class_capacity(c) * sizeof(T);
    }
    return total;
  }

 private:
  static constexpr std::size_t ref_class(Ref ref) noexcept {
    return ref >> kSlotBits;
  }
  static constexpr std::uint32_t ref_slot(Ref ref) noexcept {
    return ref & ((std::uint32_t{1} << kSlotBits) - 1);
  }
  static constexpr std::size_t slots_per_chunk_log2(std::size_t cls) noexcept {
    return cls >= kChunkSlotsLog2 ? 0 : kChunkSlotsLog2 - cls;
  }
  static constexpr std::size_t slots_per_chunk(std::size_t cls) noexcept {
    return std::size_t{1} << slots_per_chunk_log2(cls);
  }

  struct SizeClass {
    std::vector<std::unique_ptr<T[]>> chunks;
    std::vector<std::uint32_t> free_list;
    std::uint32_t bump = 0;  // next never-used slot index
  };

  std::array<SizeClass, kClasses> classes_;
  std::size_t live_slots_ = 0;
};

}  // namespace lpt::util
