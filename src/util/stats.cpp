#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lpt::util {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ += delta * nb / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need buckets > 0 and hi > lo");
  }
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::size_t>(
      q * static_cast<double>(total_ - 1));
  std::size_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) return bucket_lo(i);
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%10.3f | ", bucket_lo(i));
    out += buf;
    const std::size_t bar =
        peak ? counts_[i] * width / peak : 0;
    out.append(bar, '#');
    std::snprintf(buf, sizeof buf, " %zu\n", counts_[i]);
    out += buf;
  }
  return out;
}

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_line: need >= 2 matching points");
  }
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit f;
  if (denom == 0.0) {
    f.slope = 0.0;
    f.intercept = sy / n;
    f.r2 = 0.0;
    return f;
  }
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  double ss_res = 0;
  const double mean_y = sy / n;
  double ss_tot = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = f.slope * xs[i] + f.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  f.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double log2d(double x) { return std::log2(x); }

}  // namespace lpt::util
