// Plain-text table / CSV emission for the benchmark harnesses.  Every bench
// binary prints the same rows the paper's figures plot, via this module, so
// output formats stay uniform across experiments.
#pragma once

#include <string>
#include <vector>

namespace lpt::util {

/// Column-aligned ASCII table builder.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  Table& add_row_numeric(const std::vector<double>& cells, int precision = 3);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Render with column alignment and a header separator.
  std::string str() const;

  /// Render as CSV (RFC-ish; quotes cells containing commas).
  std::string csv() const;

  /// Print str() to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helper: fixed precision double -> string.
std::string fmt(double v, int precision = 3);

/// Format helper: integer -> string.
std::string fmt(std::size_t v);
std::string fmt(int v);

}  // namespace lpt::util
