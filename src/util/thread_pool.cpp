#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace lpt::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (pool.thread_count() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Workers claim chunks, not single indices: one contended fetch_add per
  // chunk amortizes the dispatch over memcpy-grade bodies (the hypercube
  // collectives' per-node steps) while 8 chunks per worker keep heavy
  // bodies (the engines' local solves) load-balanced.
  std::atomic<std::size_t> next{0};
  const std::size_t workers = std::min(pool.thread_count(), n);
  const std::size_t chunk = std::max<std::size_t>(1, n / (workers * 8));
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&next, n, chunk, &body] {
      for (;;) {
        const std::size_t begin =
            next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) return;
        const std::size_t end = std::min(n, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) body(i);
      }
    });
  }
  pool.wait_idle();
}

std::size_t chunk_count(std::size_t n, std::size_t chunk) noexcept {
  if (n == 0) return 0;
  const std::size_t c = chunk == 0 ? 1 : chunk;
  return (n + c - 1) / c;
}

void parallel_chunks(
    ThreadPool* pool, std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t c = chunk == 0 ? 1 : chunk;
  const std::size_t chunks = chunk_count(n, c);
  if (pool == nullptr || pool->thread_count() <= 1 || chunks == 1) {
    for (std::size_t k = 0; k < chunks; ++k) {
      body(k, k * c, std::min(n, (k + 1) * c));
    }
    return;
  }
  // Workers claim whole chunks; the chunk boundaries are fixed above, so
  // only the assignment of chunks to threads varies with the schedule.
  std::atomic<std::size_t> next{0};
  const std::size_t workers = std::min(pool->thread_count(), chunks);
  for (std::size_t w = 0; w < workers; ++w) {
    pool->submit([&next, n, c, chunks, &body] {
      for (;;) {
        const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
        if (k >= chunks) return;
        body(k, k * c, std::min(n, (k + 1) * c));
      }
    });
  }
  pool->wait_idle();
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace lpt::util
