// Deterministic random number generation for the gossip simulator.
//
// Everything in this repository that is random flows through lpt::util::Rng,
// a xoshiro256** engine seeded through SplitMix64.  Simulations are
// reproducible given a seed, and independent per-node / per-repetition
// streams are derived with Rng::child(), which hashes the parent state with
// a stream index so sibling streams are statistically independent.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace lpt::util {

/// SplitMix64 step: used for seeding and for deriving child streams.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Complete serializable state of an Rng stream.  The shard runtime ships
/// per-node streams across process boundaries each round (stage A advances
/// them on a worker, the filter pass continues them on the coordinator), so
/// the state must round-trip exactly: the four engine words plus the
/// Marsaglia-polar spare that normal() may have banked.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  double normal_spare = 0.0;
  bool has_normal_spare = false;

  friend bool operator==(const RngState&, const RngState&) = default;
};

/// xoshiro256** 1.0 by Blackman & Vigna. Small state, very fast, passes
/// BigCrush; ideal for simulations issuing billions of draws.
class Rng {
 public:
  using result_type = std::uint64_t;

  Rng() : Rng(0x853c49e6748fea9bULL) {}

  explicit Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent stream (e.g. one per node, per repetition).
  Rng child(std::uint64_t stream) const noexcept {
    std::uint64_t sm = state_[0] ^ rotl(state_[3], 13) ^
                       (0x9e3779b97f4a7c15ULL * (stream + 1));
    Rng r;
    for (auto& w : r.state_) w = splitmix64(sm);
    return r;
  }

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // bound == 0 is a caller bug; treated as 1 to stay total.
    if (bound <= 1) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    has_spare_ = true;
    return u * mul;
  }

  /// Fisher–Yates shuffle over a span (identical draw sequence to the
  /// vector overload, so shuffling a caller-provided buffer — e.g. a slab
  /// arena slot — reproduces a vector shuffle bit-for-bit).
  template <typename T>
  void shuffle(std::span<T> v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    shuffle(std::span<T>(v));
  }

  /// Sample k distinct indices from [0, n) (k <= n), uniformly.
  /// Floyd's algorithm; O(k) expected for hash-based membership.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Snapshot / restore the complete stream state (exact: a restored stream
  /// produces the identical draw sequence the snapshotted one would have).
  RngState state() const noexcept {
    return {state_, spare_, has_spare_};
  }
  void set_state(const RngState& s) noexcept {
    state_ = s.words;
    spare_ = s.normal_spare;
    has_spare_ = s.has_normal_spare;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Weighted index sampling with mutable weights (used by sequential
/// Clarkson, whose multiplicities double over time).  Implemented as a
/// Fenwick tree over weights: sample in O(log n), update in O(log n).
class WeightedSampler {
 public:
  explicit WeightedSampler(std::size_t n, double initial_weight = 1.0);

  std::size_t size() const noexcept { return n_; }
  double total() const noexcept { return total_; }
  double weight(std::size_t i) const noexcept { return weights_[i]; }

  /// Multiply weight of item i by factor.
  void scale(std::size_t i, double factor);

  /// Set weight of item i.
  void set(std::size_t i, double w);

  /// Draw one index proportional to weight.
  std::size_t sample(Rng& rng) const;

 private:
  void add(std::size_t i, double delta);

  std::size_t n_;
  std::vector<double> weights_;  // raw weights
  std::vector<double> tree_;     // Fenwick partial sums (1-based)
  double total_ = 0.0;
};

}  // namespace lpt::util
