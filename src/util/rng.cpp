#include "util/rng.hpp"

#include <stdexcept>
#include <unordered_set>

namespace lpt::util {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) k = n;
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // Robert Floyd's sampling algorithm: iterate j over the last k slots.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = below(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

WeightedSampler::WeightedSampler(std::size_t n, double initial_weight)
    : n_(n), weights_(n, initial_weight), tree_(n + 1, 0.0) {
  // Build Fenwick tree in O(n).
  for (std::size_t i = 1; i <= n_; ++i) {
    tree_[i] += weights_[i - 1];
    std::size_t parent = i + (i & (~i + 1));
    if (parent <= n_) tree_[parent] += tree_[i];
  }
  total_ = static_cast<double>(n) * initial_weight;
}

void WeightedSampler::add(std::size_t i, double delta) {
  for (std::size_t j = i + 1; j <= n_; j += j & (~j + 1)) tree_[j] += delta;
  total_ += delta;
}

void WeightedSampler::scale(std::size_t i, double factor) {
  const double delta = weights_[i] * (factor - 1.0);
  weights_[i] *= factor;
  add(i, delta);
}

void WeightedSampler::set(std::size_t i, double w) {
  const double delta = w - weights_[i];
  weights_[i] = w;
  add(i, delta);
}

std::size_t WeightedSampler::sample(Rng& rng) const {
  if (n_ == 0 || total_ <= 0.0) {
    throw std::logic_error("WeightedSampler::sample on empty/zero-mass set");
  }
  double target = rng.uniform() * total_;
  // Descend the Fenwick tree to find the smallest prefix exceeding target.
  std::size_t idx = 0;
  std::size_t bit = 1;
  while ((bit << 1) <= n_) bit <<= 1;
  for (; bit != 0; bit >>= 1) {
    const std::size_t next = idx + bit;
    if (next <= n_ && tree_[next] < target) {
      idx = next;
      target -= tree_[next];
    }
  }
  // idx is 0-based index of the sampled element; clamp for FP edge cases.
  return idx < n_ ? idx : n_ - 1;
}

}  // namespace lpt::util
