// Minimal command-line flag parsing for the bench / example binaries.
// Supports `--name=value`, `--name value` and boolean `--name`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lpt::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace lpt::util
