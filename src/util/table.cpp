#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace lpt::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::add_row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) row.push_back(fmt(c, precision));
  return add_row(std::move(row));
}

std::string Table::str() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(widths[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };
  std::string out;
  emit_row(header_, out);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::csv() const {
  auto quote = [](const std::string& s) {
    if (s.find(',') == std::string::npos &&
        s.find('"') == std::string::npos) {
      return s;
    }
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    q += '"';
    return q;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += quote(row[c]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt(std::size_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%zu", v);
  return buf;
}

std::string fmt(int v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%d", v);
  return buf;
}

}  // namespace lpt::util
