#include "util/cli.hpp"

#include <cstdlib>

namespace lpt::util {

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        flags_[body] = argv[++i];
      } else {
        flags_[body] = "true";
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Cli::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string Cli::get(const std::string& name, const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

}  // namespace lpt::util
