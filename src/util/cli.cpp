#include "util/cli.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace lpt::util {

namespace {

// A numeric flag that fails to parse must be a loud error, not a silent
// truncation: strtoll("12x") is 12 and strtoll("abc") is 0, so a typo like
// --imax=12x or --reps=abc would quietly run the wrong experiment (and the
// service front end feeds request sizes through this same parser).
[[noreturn]] void invalid_flag_value(const std::string& name,
                                     const std::string& value,
                                     const char* expected) {
  std::fprintf(stderr, "error: --%s expects %s, got \"%s\"\n", name.c_str(),
               expected, value.c_str());
  std::exit(2);
}

}  // namespace

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        flags_[body] = argv[++i];
      } else {
        flags_[body] = "true";
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Cli::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string Cli::get(const std::string& name, const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& s = it->second;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    invalid_flag_value(name, s, "an integer");
  }
  if (errno == ERANGE) {
    invalid_flag_value(name, s, "an integer in range");
  }
  return v;
}

double Cli::get_double(const std::string& name, double def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& s = it->second;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    invalid_flag_value(name, s, "a number");
  }
  if (errno == ERANGE) {
    invalid_flag_value(name, s, "a number in range");
  }
  return v;
}

bool Cli::get_bool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

}  // namespace lpt::util
