// A small fixed-size thread pool with a parallel_for helper.
//
// Simulation repetitions (independent seeds) are embarrassingly parallel;
// the benchmark harnesses dispatch them through this pool.  On a single-core
// machine the pool degrades gracefully to sequential execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lpt::util {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run body(i) for i in [0, n), distributing across the pool and blocking
/// until completion.  body must be safe to call concurrently for distinct i.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Global default pool (lazily constructed, sized to the hardware).
ThreadPool& default_pool();

}  // namespace lpt::util
