// A small fixed-size thread pool with a parallel_for helper.
//
// Simulation repetitions (independent seeds) are embarrassingly parallel;
// the benchmark harnesses dispatch them through this pool.  On a single-core
// machine the pool degrades gracefully to sequential execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lpt::util {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run body(i) for i in [0, n), distributing across the pool and blocking
/// until completion.  body must be safe to call concurrently for distinct i.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Partition [0, n) into ceil(n / chunk) fixed contiguous chunks and run
/// body(chunk_index, begin, end) for each, on the pool when one is given
/// (nullptr or a 1-thread pool runs serially, in chunk order).
///
/// The partition depends only on n and chunk — never on the thread count or
/// the schedule — so per-chunk accumulations (candidate lists, counters)
/// concatenated in chunk-index order are bit-identical for every pool size.
/// This is the engines' stage-A collection primitive: each chunk appends
/// the node ids needing stage-B replay to its own slot in ascending order,
/// and the serial stage-B walk visits chunks in order, recovering the exact
/// ascending node order of a full O(n) scan at O(candidates) cost.
std::size_t chunk_count(std::size_t n, std::size_t chunk) noexcept;
void parallel_chunks(
    ThreadPool* pool, std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// Global default pool (lazily constructed, sized to the hardware).
ThreadPool& default_pool();

}  // namespace lpt::util
