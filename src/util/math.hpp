// Small integer/float math helpers shared across modules.
#pragma once

#include <bit>
#include <cstdint>

namespace lpt::util {

/// floor(log2(x)) for x >= 1.
constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
  return x <= 1 ? 0u : 63u - static_cast<std::uint32_t>(std::countl_zero(x));
}

/// ceil(log2(x)) for x >= 1.
constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return floor_log2(x - 1) + 1;
}

/// ceil(a / b) for b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Integer power.
constexpr std::uint64_t ipow(std::uint64_t base, std::uint32_t exp) noexcept {
  std::uint64_t r = 1;
  while (exp) {
    if (exp & 1u) r *= base;
    base *= base;
    exp >>= 1u;
  }
  return r;
}

/// True if x is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

}  // namespace lpt::util
