// Round-buffered push delivery and pull request/response channels.
//
// Mailbox<M>:    push(from, msg) buffers msg for a uniformly random node;
//                deliver() routes all buffered messages into per-node
//                inboxes (the paper: "messages sent in round i are received
//                at the beginning of round i+1").
//
// PullChannel<A>: request(from) records a pull aimed at a uniformly random
//                node; resolve(responder) invokes the protocol's answer
//                function on each target and hands responses back to the
//                requesters.  The sampling procedures of Sections 2.1 and 4
//                are built on this channel.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "gossip/network.hpp"

namespace lpt::gossip {

/// Wire-size customization point: number of payload bytes a message of type
/// M occupies.  Specialize or overload for message types carrying dynamic
/// payloads; the default is the trivially-copyable size.
template <typename M>
std::size_t wire_size(const M&) noexcept {
  return sizeof(M);
}

template <typename M>
class Mailbox {
 public:
  explicit Mailbox(Network& net) : net_(&net), inboxes_(net.size()) {}

  /// Push `msg` from node `from` to a uniformly random node (delivered at
  /// the next deliver() call).  Meters one push op on `from`.
  void push(NodeId from, M msg) {
    const NodeId to = net_->random_peer();
    net_->meter().add_push(from, wire_size(msg));
    outbox_.emplace_back(to, std::move(msg));
  }

  /// Push to an explicitly chosen node (used by protocols that answer a
  /// previous message; still metered as one push op).
  void push_to(NodeId from, NodeId to, M msg) {
    net_->meter().add_push(from, wire_size(msg));
    outbox_.emplace_back(to, std::move(msg));
  }

  /// Route all buffered messages into inboxes (start of the next round).
  /// Under fault injection each message is independently lost in transit
  /// with the network's push_loss probability.
  void deliver() {
    for (auto& ib : inboxes_) ib.clear();
    for (auto& [to, msg] : outbox_) {
      if (net_->drop_push()) continue;
      inboxes_[to].push_back(std::move(msg));
    }
    outbox_.clear();
  }

  const std::vector<M>& inbox(NodeId v) const noexcept { return inboxes_[v]; }

  /// Total messages currently buffered for delivery.
  std::size_t pending() const noexcept { return outbox_.size(); }

 private:
  Network* net_;
  std::vector<std::pair<NodeId, M>> outbox_;
  std::vector<std::vector<M>> inboxes_;
};

template <typename A>
class PullChannel {
 public:
  explicit PullChannel(Network& net)
      : net_(&net), responses_(net.size()), answered_(net.size(), 0) {}

  /// Node `from` pulls from a uniformly random node.  Meters one pull op.
  void request(NodeId from) {
    net_->meter().add_pull(from, 0);
    requests_.emplace_back(from, net_->random_peer());
  }

  /// Answer all outstanding requests.  `responder(target) -> std::optional<A>`
  /// is the protocol-defined answer of node `target`; nullopt models "no
  /// reply" (e.g. an empty node in the Section 2.1 sampler).  Response
  /// payload bytes are metered on the responder's outgoing link.
  template <typename F>
  void resolve(F&& responder) {
    for (auto& r : responses_) r.clear();
    std::fill(answered_.begin(), answered_.end(), std::uint32_t{0});
    for (const auto& [from, target] : requests_) {
      if (net_->asleep(target) || net_->drop_response()) continue;
      std::optional<A> ans = responder(target);
      if (ans) {
        net_->meter().add_response_bytes(wire_size(*ans));
        ++answered_[target];
        responses_[from].push_back(std::move(*ans));
      }
    }
    requests_.clear();
  }

  const std::vector<A>& responses(NodeId v) const noexcept {
    return responses_[v];
  }

  /// How many requests node v answered in the last resolve() (for load
  /// diagnostics; the paper's work measure counts initiated ops).
  std::uint32_t answered(NodeId v) const noexcept { return answered_[v]; }

 private:
  Network* net_;
  std::vector<std::pair<NodeId, NodeId>> requests_;
  std::vector<std::vector<A>> responses_;
  std::vector<std::uint32_t> answered_;
};

}  // namespace lpt::gossip
