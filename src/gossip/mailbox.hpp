// Round-buffered push delivery and pull request/response channels, backed
// by flat CSR (compressed-sparse-row) buffers.
//
// Mailbox<M>:    push(from, msg) buffers msg for a uniformly random node;
//                deliver() routes all buffered messages into per-node
//                inboxes (the paper: "messages sent in round i are received
//                at the beginning of round i+1").
//
// PullChannel<A>: request(from) records a pull aimed at a uniformly random
//                node; resolve(responder) invokes the protocol's answer
//                function on each target and hands responses back to the
//                requesters.  The sampling procedures of Sections 2.1 and 4
//                are built on this channel.
//
// Layout: instead of one std::vector per node, each channel keeps a single
// contiguous payload buffer plus per-node [begin, count) slices built by a
// stable counting sort on the destination.  Per-node bookkeeping arrays are
// *epoch-stamped*: a slice is only valid if its stamp matches the current
// delivery epoch, so deliver()/resolve() never touch the n - k nodes that
// received nothing.  All buffers persist across rounds; after warm-up a
// round performs zero allocations, and the cost of a delivery is
// O(messages) — independent of n.
//
// Message ordering within an inbox is the order the messages were pushed
// (the counting sort is stable), matching the previous per-vector
// semantics.  M and A must be default-constructible and movable.
//
// Fault injection: message loss is sampled with geometric gap draws (one
// RNG draw per *lost* message, not per message), and the fault-free path is
// dispatched once per delivery so the hot loops carry no fault branches.
//
// Complexity per round: deliver()/resolve() are O(messages) time, O(1)
// amortized allocation (buffers persist); inbox()/responses()/receivers()
// are O(1) lookups into the epoch's CSR index.  Determinism: the channels
// draw peers/losses from the Network's shared RNG stream in call order, so
// any engine that issues its channel calls in a fixed node order gets a
// bit-identical traffic pattern — the serial stage-B half of the engines'
// stage-A/stage-B contract (docs/ARCHITECTURE.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "gossip/network.hpp"
#include "util/assert.hpp"

namespace lpt::gossip {

/// Wire-size customization point: number of payload bytes a message of type
/// M occupies.  Specialize or overload for message types carrying dynamic
/// payloads; the default is the trivially-copyable size.
template <typename M>
std::size_t wire_size(const M&) noexcept {
  return sizeof(M);
}

namespace detail {

/// The epoch-stamped CSR index shared by Mailbox and PullChannel: per-node
/// slice starts/lengths that are implicitly reset by bumping the epoch
/// instead of clearing n entries.  All fields are 32-bit — the per-node
/// arrays are the substrate's cache footprint at n = 2^20, and slices are
/// bounded by the per-round message volume anyway.
class CsrIndex {
 public:
  explicit CsrIndex(std::size_t n)
      : begin_(n, 0), count_(n, 0), cursor_(n, 0), stamp_(n, 0) {}

  /// Start a new epoch; all slices become empty in O(1).
  void new_epoch() noexcept {
    ++epoch_;
    if (epoch_ == 0) {  // wrap: stamps from 4G epochs ago could collide
      std::fill(stamp_.begin(), stamp_.end(), std::uint32_t{0});
      epoch_ = 1;
    }
    touched_.clear();
  }

  /// Count one entry destined for `key` (first counting pass).
  void count(NodeId key) {
    if (stamp_[key] != epoch_) {
      stamp_[key] = epoch_;
      count_[key] = 0;
      touched_.push_back(key);
    }
    ++count_[key];
  }

  /// Turn counts into slice offsets; returns the total payload length.
  /// After this call begin_[k] is the slice start and count_[k] its length.
  std::size_t finish_counts() noexcept {
    std::uint32_t off = 0;
    for (const NodeId k : touched_) {
      begin_[k] = off;
      cursor_[k] = off;  // placement cursor for the fill pass
      off += count_[k];
    }
    return off;
  }

  /// finish_counts() with the slices laid out in ascending key order
  /// instead of first-touch order.  Delivery-by-key callers never notice
  /// the difference, but the hypercube channel's hop schedule traverses
  /// the in-flight set "node order, arrival order within node" and needs
  /// the payload physically in that order.
  std::size_t finish_counts_sorted() noexcept {
    std::sort(touched_.begin(), touched_.end());
    return finish_counts();
  }

  /// Next placement slot for `key` (second, filling pass).
  std::size_t place(NodeId key) noexcept { return cursor_[key]++; }

  /// Append mode (single-pass building when entries arrive already grouped
  /// by key): open `key`'s slice at payload position `pos`.  Keys must not
  /// repeat within an epoch.
  void open(NodeId key, std::size_t pos) {
    stamp_[key] = epoch_;
    begin_[key] = static_cast<std::uint32_t>(pos);
    count_[key] = 0;
    touched_.push_back(key);
  }

  /// Count one appended entry for an open()ed key.
  void append(NodeId key) noexcept { ++count_[key]; }

  /// Set an open()ed key's final slice length in one write.
  void close(NodeId key, std::size_t count) noexcept {
    count_[key] = static_cast<std::uint32_t>(count);
  }

  bool live(NodeId key) const noexcept { return stamp_[key] == epoch_; }
  std::size_t begin(NodeId key) const noexcept { return begin_[key]; }
  std::size_t count_of(NodeId key) const noexcept { return count_[key]; }

  /// Distinct keys that received entries in the current epoch.
  std::size_t touched() const noexcept { return touched_.size(); }

  /// The touched keys themselves, in first-touch order (valid until the
  /// next new_epoch()).  Lets delivery consumers walk exactly the inboxes
  /// that received something — O(receivers), not O(n).
  std::span<const NodeId> keys() const noexcept {
    return {touched_.data(), touched_.size()};
  }

 private:
  std::vector<std::uint32_t> begin_;
  std::vector<std::uint32_t> count_;
  std::vector<std::uint32_t> cursor_;
  std::vector<std::uint32_t> stamp_;
  std::vector<NodeId> touched_;
  std::uint32_t epoch_ = 1;
};

}  // namespace detail

template <typename M>
class Mailbox {
 public:
  explicit Mailbox(Network& net) : net_(&net), index_(net.size()) {}

  /// Push `msg` from node `from` to a uniformly random node (delivered at
  /// the next deliver() call).  Meters one push op on `from`.
  void push(NodeId from, M msg) {
    const NodeId to = net_->random_peer();
    net_->meter().add_push(from, wire_size(msg));
    outbox_.emplace_back(to, std::move(msg));
  }

  /// Push to an explicitly chosen node (used by protocols that answer a
  /// previous message; still metered as one push op).
  void push_to(NodeId from, NodeId to, M msg) {
    net_->meter().add_push(from, wire_size(msg));
    outbox_.emplace_back(to, std::move(msg));
  }

  /// Route all buffered messages into inboxes (start of the next round).
  /// Under fault injection each message is independently lost in transit
  /// with the network's push_loss probability (sampled with geometric gaps:
  /// one RNG draw per lost message).
  void deliver() {
    if (net_->faults().push_loss > 0.0) {
      deliver_impl<true>();
    } else {
      deliver_impl<false>();
    }
  }

  /// Messages delivered in the last deliver() to node v, in push order.
  /// The span is valid until the next deliver().
  std::span<const M> inbox(NodeId v) const noexcept {
    if (!index_.live(v)) return {};
    return {payload_.data() + index_.begin(v), index_.count_of(v)};
  }

  /// Total messages currently buffered for delivery.
  std::size_t pending() const noexcept { return outbox_.size(); }

  /// Nodes whose inbox received at least one message in the last deliver(),
  /// in first-touch (= earliest-message) order; valid until the next
  /// deliver().  Walking this instead of all n node ids makes the engines'
  /// "add received elements" pass O(receivers) — receiver order is
  /// irrelevant to them because each node's adds come from its own inbox
  /// only and consume no shared RNG.
  std::span<const NodeId> receivers() const noexcept { return index_.keys(); }

  /// Diagnostics for the "deliver cost scales with messages, not n"
  /// contract: inboxes written / messages routed by the last deliver().
  std::size_t last_delivered_inboxes() const noexcept {
    return index_.touched();
  }
  std::size_t last_delivered_messages() const noexcept {
    return payload_.size();
  }

 private:
  template <bool kFaults>
  void deliver_impl() {
    if constexpr (kFaults) {
      // Compact the outbox down to the surviving messages.  Geometric gap
      // draws replace per-message Bernoulli trials: `gap` counts survivors
      // until the next loss.
      const double p = net_->faults().push_loss;
      std::size_t w = 0;
      std::uint64_t gap = net_->loss_gap(p);
      for (std::size_t i = 0; i < outbox_.size(); ++i) {
        if (gap == 0) {
          gap = net_->loss_gap(p);
          continue;  // lost in transit
        }
        --gap;
        if (w != i) outbox_[w] = std::move(outbox_[i]);
        ++w;
      }
      outbox_.resize(w);
    }
    index_.new_epoch();
    for (const auto& [to, msg] : outbox_) index_.count(to);
    payload_.resize(index_.finish_counts());
    for (auto& [to, msg] : outbox_) {
      payload_[index_.place(to)] = std::move(msg);
    }
    outbox_.clear();
  }

  Network* net_;
  std::vector<std::pair<NodeId, M>> outbox_;
  std::vector<M> payload_;  // all inboxes, concatenated (CSR values)
  detail::CsrIndex index_;
};

template <typename A>
class PullChannel {
 public:
  explicit PullChannel(Network& net)
      : net_(&net), index_(net.size()), ans_index_(net.size()) {}

  /// Node `from` pulls from a uniformly random node.  Meters one pull op.
  void request(NodeId from) {
    net_->meter().add_pull(from, 0);
    if (from < last_from_) requests_sorted_ = false;
    last_from_ = from;
    requests_.emplace_back(from, net_->random_peer());
  }

  /// Begin a fused bulk-pull round.  The uniform samplers issue hundreds of
  /// pulls per node per round; staging (from, target) pairs and replaying
  /// them in resolve() doubles the memory traffic of the hottest loop in
  /// the simulator.  begin_pulls() + pull_uniform() fuse the request and
  /// answer: each pull draws its target and is answered in place, writing
  /// straight into the CSR payload.  Callers must issue at most one
  /// pull_uniform() per node, with strictly increasing `from`, and must
  /// not mix request()/resolve() into the same round.
  void begin_pulls() {
    index_.new_epoch();
    ans_log_.clear();
    ans_built_ = false;
    payload_.clear();
    loss_ = LossStream{};
  }

  /// `count` uniform pulls by node `from`, answered immediately by
  /// `responder` (same contract as resolve()'s responder).  Meters the
  /// pulls in bulk.
  template <typename F>
  void pull_uniform(NodeId from, std::size_t count, F&& responder) {
    pull_uniform_direct(from, count,
                        [&responder](NodeId target, std::vector<A>& sink) {
                          std::optional<A> ans = responder(target);
                          if (ans) sink.push_back(std::move(*ans));
                        });
  }

  /// Direct-append form of pull_uniform: `answerer(target, sink)` either
  /// push_back()s exactly one answer into `sink` or leaves it untouched
  /// ("no reply").  Skips the optional round-trip — this is the hottest
  /// loop of the whole simulator.  Appended payload bytes are metered via
  /// wire_size after the batch.
  template <typename F>
  void pull_uniform_direct(NodeId from, std::size_t count, F&& answerer) {
    net_->meter().add_pulls(from, count);
    const auto& f = net_->faults();
    if (f.response_loss > 0.0 || net_->asleep_count() > 0) {
      pull_uniform_impl<true>(from, count, answerer);
    } else {
      pull_uniform_impl<false>(from, count, answerer);
    }
  }

  /// Answer all outstanding requests.  `responder(target) -> std::optional<A>`
  /// is the protocol-defined answer of node `target`; nullopt models "no
  /// reply" (e.g. an empty node in the Section 2.1 sampler).  Response
  /// payload bytes are metered on the responder's outgoing link.
  ///
  /// The responder is invoked in request order (so responder-side RNG
  /// consumption is independent of the CSR layout), and each requester's
  /// responses() keep that order.
  template <typename F>
  void resolve(F&& responder) {
    const auto& f = net_->faults();
    if (f.response_loss > 0.0 || net_->asleep_count() > 0) {
      resolve_impl<true>(responder);
    } else {
      resolve_impl<false>(responder);
    }
  }

  /// Responses received by node v from the last resolve(), in request
  /// order.  The span is valid until the next resolve().
  std::span<const A> responses(NodeId v) const noexcept {
    if (!index_.live(v)) return {};
    return {payload_.data() + index_.begin(v), index_.count_of(v)};
  }

  /// Mutable view of node v's responses.  A sampler may reorder/consume
  /// its own slice in place (each slice is read exactly once per round),
  /// saving a copy of the hot path's entire data volume.
  std::span<A> mutable_responses(NodeId v) noexcept {
    if (!index_.live(v)) return {};
    return {payload_.data() + index_.begin(v), index_.count_of(v)};
  }

  /// How many requests node v answered in the last resolve() (for load
  /// diagnostics; the paper's work measure counts initiated ops).  Built
  /// lazily from the answer log on first query, so the resolve hot loop
  /// carries no per-answer random-access bookkeeping.  The fused
  /// pull_uniform() path does not log answers — after a bulk round
  /// answered() reports 0.
  std::uint32_t answered(NodeId v) const {
    if (!ans_built_) {
      ans_index_.new_epoch();
      for (const NodeId t : ans_log_) ans_index_.count(t);
      ans_built_ = true;
    }
    return ans_index_.live(v)
               ? static_cast<std::uint32_t>(ans_index_.count_of(v))
               : 0;
  }

 private:
  template <bool kFaults, typename F>
  void pull_uniform_impl(NodeId from, std::size_t count, F&& answerer) {
    LPT_CHECK_MSG(!index_.live(from),
                  "pull_uniform: one batch per node per round");
    index_.open(from, payload_.size());
    const double p = net_->faults().response_loss;
    // Draw the node's targets up front: a tight RNG loop whose resolved
    // addresses the out-of-order core can chase ahead of the answer loop.
    targets_.resize(count);
    for (std::size_t k = 0; k < count; ++k) {
      targets_[k] = net_->random_peer();
    }
    const std::size_t before = payload_.size();
    for (std::size_t k = 0; k < count; ++k) {
      const NodeId target = targets_[k];
      if constexpr (kFaults) {
        if (net_->asleep(target)) continue;
        if (p > 0.0 && loss_.drop(net_->rng(), p)) continue;  // lost
      }
      answerer(target, payload_);
    }
    index_.close(from, payload_.size() - before);
    std::uint64_t bytes = 0;
    for (std::size_t i = before; i < payload_.size(); ++i) {
      bytes += wire_size(payload_[i]);
    }
    if (bytes != 0) net_->meter().add_response_bytes(bytes);
  }

  template <bool kFaults, typename F>
  void resolve_impl(F&& responder) {
    // The responder is invoked in request order in both paths.  Engines
    // request in node order, so the common case is a sorted requester
    // sequence, which builds the CSR in a single append pass; the general
    // case stages (from, answer) pairs and counting-sorts them.
    index_.new_epoch();
    ans_log_.clear();
    ans_built_ = false;
    [[maybe_unused]] LossStream loss;
    const double p = net_->faults().response_loss;
    const bool sorted = requests_sorted_;
    if (sorted) payload_.clear();
    else scratch_.clear();
    NodeId open_from = 0;
    bool any_open = false;
    std::uint64_t bytes = 0;
    for (const auto& [from, target] : requests_) {
      if constexpr (kFaults) {
        if (net_->asleep(target)) continue;
        if (p > 0.0 && loss.drop(net_->rng(), p)) continue;  // response lost
      }
      std::optional<A> ans = responder(target);
      if (ans) {
        bytes += wire_size(*ans);
        ans_log_.push_back(target);
        if (sorted) {
          if (!any_open || from != open_from) {
            index_.open(from, payload_.size());
            open_from = from;
            any_open = true;
          }
          index_.append(from);
          payload_.push_back(std::move(*ans));
        } else {
          index_.count(from);
          scratch_.emplace_back(from, std::move(*ans));
        }
      }
    }
    if (!sorted) {
      // Stable counting-sort fill by requester.
      payload_.resize(index_.finish_counts());
      for (auto& [from, ans] : scratch_) {
        payload_[index_.place(from)] = std::move(ans);
      }
    }
    if (bytes != 0) net_->meter().add_response_bytes(bytes);
    requests_.clear();
    requests_sorted_ = true;
    last_from_ = 0;
  }

  Network* net_;
  std::vector<std::pair<NodeId, NodeId>> requests_;
  std::vector<std::pair<NodeId, A>> scratch_;  // staged (requester, answer)
  std::vector<A> payload_;                     // all responses, concatenated
  detail::CsrIndex index_;               // responses, keyed by requester
  mutable detail::CsrIndex ans_index_;   // answered counts (lazy)
  mutable bool ans_built_ = false;
  std::vector<NodeId> ans_log_;   // responders of the last resolve, in order
  std::vector<NodeId> targets_;   // per-call target batch (capacity reused)
  bool requests_sorted_ = true;   // requesters arrived in nondecreasing order
  NodeId last_from_ = 0;
  LossStream loss_;  // geometric loss state across pull_uniform calls
};

}  // namespace lpt::gossip
