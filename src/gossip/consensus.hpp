// Stabilizing consensus with the power of two choices — the median-rule
// dynamics of Doerr, Goldberg, Minder, Sauerwald, Scheideler (SPAA 2011),
// reference [8] of the paper's gossip-protocol lineage.
//
// Every node holds a value; per round it pulls the values of two uniformly
// random nodes and adopts the *median* of (own, first, second).  The
// dynamics converge to a single consensus value within the initial value
// range in O(log n) rounds w.h.p., tolerate O(sqrt(n)) adversarial
// crashes, and the consensus value concentrates around the median of the
// initial values — a building block for gossip-style coordination
// (e.g. agreeing on a parameter estimate produced by push-sum).
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "gossip/mailbox.hpp"
#include "gossip/network.hpp"

namespace lpt::gossip {

template <typename T>
class MedianConsensus {
 public:
  MedianConsensus(Network& net, std::vector<T> initial)
      : net_(&net), chan_(net), values_(std::move(initial)) {
    LPT_CHECK(values_.size() == net.size());
  }

  /// One round: every awake node pulls two random values and adopts the
  /// median of {own, a, b}.
  void round() {
    for (NodeId v = 0; v < net_->size(); ++v) {
      if (net_->asleep(v)) continue;
      chan_.request(v);
      chan_.request(v);
    }
    chan_.resolve([this](NodeId target) -> std::optional<T> {
      return values_[target];
    });
    std::vector<T> next = values_;
    for (NodeId v = 0; v < net_->size(); ++v) {
      const auto& got = chan_.responses(v);
      if (got.size() < 2) continue;  // lost responses: keep own value
      T a = got[0];
      T b = got[1];
      T own = values_[v];
      // median of three
      T lo = std::min(a, b), hi = std::max(a, b);
      next[v] = std::max(lo, std::min(own, hi));
    }
    values_ = std::move(next);
  }

  const T& value(NodeId v) const noexcept { return values_[v]; }
  const std::vector<T>& values() const noexcept { return values_; }

  bool converged() const noexcept {
    for (const auto& v : values_) {
      if (v != values_[0]) return false;
    }
    return true;
  }

  /// Run until consensus or `max_rounds`; returns rounds used.
  std::size_t run(std::size_t max_rounds) {
    std::size_t t = 0;
    while (t < max_rounds && !converged()) {
      net_->begin_round();
      round();
      ++t;
    }
    return t;
  }

 private:
  Network* net_;
  PullChannel<T> chan_;
  std::vector<T> values_;
};

}  // namespace lpt::gossip
