// network.hpp is header-only; this translation unit exists so the library
// archive always carries the gossip module and to anchor its vtable-free
// types for faster incremental builds.
#include "gossip/network.hpp"

namespace lpt::gossip {
// (intentionally empty)
}  // namespace lpt::gossip
