// hypercube.hpp is header-only (templates); this unit anchors the module in
// the library archive.
#include "gossip/hypercube.hpp"

namespace lpt::gossip {
// (intentionally empty)
}  // namespace lpt::gossip
