#include "gossip/protocols.hpp"

namespace lpt::gossip {

PushSum::PushSum(Network& net, std::vector<double> values,
                 std::vector<double> weights)
    : net_(&net), mail_(net), x_(std::move(values)), w_(std::move(weights)) {
  LPT_CHECK(x_.size() == net.size() && w_.size() == net.size());
}

double estimate_network_size(Network& net, std::size_t rounds,
                             NodeId observer) {
  if (rounds == 0) {
    // Push-sum contracts the estimate error by a constant factor per
    // round; 4 * 40 rounds is a conservative constant-factor budget for
    // any plausible n (the caller only needs log n up to a constant).
    rounds = 160;
  }
  PushSum ps = PushSum::counting(net);
  for (std::size_t t = 0; t < rounds; ++t) {
    net.begin_round();
    ps.round();
  }
  return ps.estimate(observer);
}

}  // namespace lpt::gossip
