// The uniform gossip network simulator (the paper's model, Section 1.2).
//
// A fixed anonymous node set v_1..v_n operates in synchronous rounds.  Per
// round a node may execute any number of *push* operations (send a message
// to a node chosen uniformly at random) and *pull* operations (ask a node
// chosen uniformly at random for a message).  The number of such operations
// is the node's communication work for the round.
//
// The simulator's job is to (1) choose peers uniformly at random from a
// seeded stream, (2) enforce round-buffered delivery for pushes, and
// (3) meter per-node work and bytes.  Algorithm code must do all cross-node
// communication through Mailbox / PullChannel; node logic never touches
// another node's state directly, preserving the model's information flow.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "gossip/metrics.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/slab.hpp"

namespace lpt::gossip {

/// Markov-modulated ("bursty") loss: a two-state calm/burst chain advanced
/// once per round.  During calm epochs the base FaultModel loss rates
/// apply; during burst epochs they are *replaced* by the rates below.
/// Epoch durations are geometric — `enter` is the per-round calm -> burst
/// transition probability, `exit` the burst -> calm one — sampled as
/// batched geometric gaps (one draw per epoch, not per round).  The
/// stationary burst fraction is enter / (enter + exit), so the marginal
/// loss rate is (1 - pi) * base + pi * burst with pi that fraction.
struct BurstFaults {
  double push_loss = 0.0;      // loss rates while the chain is in burst
  double response_loss = 0.0;
  double enter = 0.0;          // P(calm -> burst) per round
  double exit = 0.0;           // P(burst -> calm) per round

  bool enabled() const noexcept {
    return enter > 0.0 && (push_loss > 0.0 || response_loss > 0.0);
  }
};

/// Heavy-tailed stragglers: an awake node starts a "straggle" with
/// probability `rate` per round and then sleeps for a Pareto-distributed
/// number of consecutive rounds — duration = min(cap_rounds,
/// ceil(scale * u^(-1/alpha))) — instead of the i.i.d. one-round sleeps of
/// FaultModel::sleep_probability.  Start draws are batched geometric gaps
/// over the node ids (O(starters) draws per round, not O(n)).
struct StragglerFaults {
  double rate = 0.0;        // per-node per-round straggle-start probability
  double alpha = 1.5;       // Pareto tail index (smaller = heavier tail)
  double scale = 1.0;       // Pareto scale x_m (minimum sleep, in rounds)
  std::uint32_t cap_rounds = 64;  // hard cap on one straggle's length

  bool enabled() const noexcept { return rate > 0.0 && cap_rounds > 0; }
};

/// Fault-injection knobs for the "stability under stress and disruptions"
/// claim of Section 1.2.  All faults preserve the algorithms' correctness
/// invariants (no element is ever destroyed at its home node):
///   * push_loss: each pushed message is independently lost in transit,
///   * response_loss: each pull response is independently lost,
///   * sleep_probability: each node independently skips a whole round
///     (neither initiates operations nor answers pulls),
///   * burst: Markov-modulated loss epochs replacing the i.i.d. loss rates
///     during burst rounds (Network::faults() reports the effective rates),
///   * straggler: Pareto-length multi-round sleeps layered onto the
///     i.i.d. sleep set.
struct FaultModel {
  double push_loss = 0.0;
  double response_loss = 0.0;
  double sleep_probability = 0.0;
  BurstFaults burst;
  StragglerFaults straggler;

  bool any() const noexcept {
    return push_loss > 0.0 || response_loss > 0.0 ||
           sleep_probability > 0.0 || burst.enabled() || straggler.enabled();
  }
};

/// Batched fault draw: number of events that *survive* before the next
/// loss, when each event is independently lost with probability p.  One
/// RNG draw replaces a run of Bernoulli trials, so a loss sweep over k
/// events costs O(lost) draws instead of O(k).
inline std::uint64_t geometric_gap(util::Rng& rng, double p) noexcept {
  constexpr std::uint64_t kCap = std::uint64_t{9} * 1000 * 1000 * 1000 *
                                 1000 * 1000 * 1000;  // 9e18
  if (p <= 0.0) return kCap;  // no losses: effectively infinite gap
  if (p >= 1.0) return 0;
  // u in (0, 1]: P(gap >= k) = (1-p)^k, the geometric survivor function.
  const double u = 1.0 - rng.uniform();
  const double g = std::log(u) / std::log1p(-p);
  // The cap keeps the cast defined for tiny p.
  return g >= static_cast<double>(kCap) ? kCap
                                        : static_cast<std::uint64_t>(g);
}

/// Stateful geometric-gap loss stream: drop(rng, p) answers "is this event
/// lost?" consuming one RNG draw per *lost* event.  The first call arms the
/// stream lazily, so a fault-free sweep (p checked by the caller) draws
/// nothing.  Shared by the pull channels and the hypercube baseline.
struct LossStream {
  std::uint64_t gap = 0;
  bool armed = false;

  bool drop(util::Rng& rng, double p) noexcept {
    if (!armed) {
      gap = geometric_gap(rng, p);
      armed = true;
    }
    if (gap == 0) {
      gap = geometric_gap(rng, p);
      return true;
    }
    --gap;
    return false;
  }
};

/// Draw the sleeping-node set for one round: each node independently
/// sleeps with probability p, sampled with geometric gaps so the cost is
/// O(sleepers), not O(n).  Clears the previous set via the sparse list.
inline void draw_sleep_set(util::Rng& rng, double p, std::size_t n,
                           std::vector<std::uint8_t>& asleep,
                           std::vector<NodeId>& sleeping) {
  for (const NodeId v : sleeping) asleep[v] = 0;
  sleeping.clear();
  for (std::uint64_t v = geometric_gap(rng, p); v < n;
       v += 1 + geometric_gap(rng, p)) {
    asleep[v] = 1;
    sleeping.push_back(static_cast<NodeId>(v));
  }
}

/// One Pareto-distributed straggle length in rounds:
/// min(cap_rounds, ceil(scale * u^(-1/alpha))) with u uniform in (0, 1].
/// P(len >= t) = min(1, (scale / (t-1))^alpha) for integer t >= 2.
inline std::uint32_t pareto_sleep_rounds(util::Rng& rng,
                                         const StragglerFaults& spec) {
  const double u = 1.0 - rng.uniform();  // in (0, 1]
  const double x = spec.scale * std::pow(u, -1.0 / spec.alpha);
  const double cap = static_cast<double>(spec.cap_rounds);
  if (!(x < cap)) return spec.cap_rounds;  // also catches inf/NaN
  const double c = std::ceil(x);
  return c < 1.0 ? 1u : static_cast<std::uint32_t>(c);
}

/// The two-state calm/burst Markov chain behind BurstFaults, advanced once
/// per round via step().  Epoch lengths are sampled as one geometric draw
/// per epoch (duration = 1 + geometric_gap(rng, leave_p)), so a k-round
/// epoch costs one RNG draw, not k.
struct BurstChain {
  // Starts "in burst" with zero rounds left so the first step() flips to
  // calm and draws a full calm epoch — runs open calm, not mid-burst.
  bool in_burst = true;
  std::uint64_t rounds_left = 0;  // rounds remaining in the current epoch

  /// Advance one round; returns whether the *new* round is a burst round.
  bool step(util::Rng& rng, const BurstFaults& spec) {
    if (rounds_left == 0) {
      in_burst = !in_burst;
      const double leave_p = in_burst ? spec.exit : spec.enter;
      rounds_left = 1 + geometric_gap(rng, leave_p);
    }
    --rounds_left;
    return in_burst;
  }
};

/// Per-node straggle bookkeeping for StragglerFaults.  step() first retires
/// finished straggles, then draws this round's starters with geometric gaps
/// over the node ids — a draw that lands on an already-sleeping node is
/// ignored (no duration draw), so only awake nodes start straggles and the
/// steady-state sleeping fraction is rate*E[D] / (1 + rate*E[D]).
struct StragglerSet {
  std::vector<std::uint32_t> left;  // rounds left per straggling node
  std::vector<NodeId> nodes;       // straggling nodes (compact)

  void step(util::Rng& rng, const StragglerFaults& spec, std::size_t n,
            std::vector<std::uint8_t>& asleep,
            std::vector<NodeId>& sleeping) {
    if (left.empty()) left.assign(n, 0);
    // Retire straggles that have run their course.
    std::size_t w = 0;
    for (const NodeId v : nodes) {
      if (--left[v] == 0) continue;
      nodes[w++] = v;
    }
    nodes.resize(w);
    // New starters this round (only awake nodes may start).
    for (std::uint64_t v = geometric_gap(rng, spec.rate); v < n;
         v += 1 + geometric_gap(rng, spec.rate)) {
      const NodeId id = static_cast<NodeId>(v);
      if (left[id] > 0) continue;
      left[id] = pareto_sleep_rounds(rng, spec);
      nodes.push_back(id);
    }
    // Publish into the round's sleep set (the i.i.d. draw, if any, ran
    // first and already cleared the previous round's flags).
    for (const NodeId v : nodes) {
      if (!asleep[v]) {
        asleep[v] = 1;
        sleeping.push_back(v);
      }
    }
  }
};

class Network {
 public:
  Network(std::size_t n, util::Rng rng, FaultModel faults = {})
      : n_(n), rng_(rng), meter_(n), faults_(faults), effective_(faults),
        asleep_(n, 0) {
    LPT_CHECK_MSG(n >= 1, "Network needs at least one node");
  }

  std::size_t size() const noexcept { return n_; }

  /// Uniformly random node id (a node may draw itself: the uniform gossip
  /// model samples from the full node set).
  NodeId random_peer() noexcept {
    return static_cast<NodeId>(rng_.below(n_));
  }

  util::Rng& rng() noexcept { return rng_; }
  WorkMeter& meter() noexcept { return meter_; }
  const WorkMeter& meter() const noexcept { return meter_; }

  /// The *effective* fault model for the current round: identical to the
  /// configured model except that during burst epochs the loss rates are
  /// replaced by the burst rates.  Channels re-query this per round /
  /// per deliver, so Markov-modulated loss needs no channel changes.
  const FaultModel& faults() const noexcept { return effective_; }

  /// True while the burst chain is in a burst epoch (diagnostics).
  bool burst_active() const noexcept { return in_burst_; }

  /// Advance the synchronous round counter (and the work meter with it);
  /// re-draws which nodes sleep through the new round and advances the
  /// burst chain.  Sleepers are drawn with geometric gaps, so the cost is
  /// O(sleepers), not O(n).  Every new draw below is gated on its fault
  /// knob being enabled, so configurations without burst/straggler faults
  /// consume byte-identical RNG streams to the pre-scenario simulator.
  void begin_round() {
    meter_.begin_round();
    ++round_;
    const bool iid_sleep = faults_.sleep_probability > 0.0;
    const bool straggle = faults_.straggler.enabled();
    if (straggle && !iid_sleep) {
      // draw_sleep_set won't run to clear last round's flags; do it here.
      for (const NodeId v : sleeping_) asleep_[v] = 0;
      sleeping_.clear();
    }
    if (iid_sleep) {
      draw_sleep_set(rng_, faults_.sleep_probability, n_, asleep_, sleeping_);
    }
    if (straggle) {
      stragglers_.step(rng_, faults_.straggler, n_, asleep_, sleeping_);
    }
    if (faults_.burst.enabled()) {
      in_burst_ = burst_.step(rng_, faults_.burst);
      effective_.push_loss =
          in_burst_ ? faults_.burst.push_loss : faults_.push_loss;
      effective_.response_loss =
          in_burst_ ? faults_.burst.response_loss : faults_.response_loss;
    }
  }

  /// True if node v sleeps through the current round (fault injection).
  bool asleep(NodeId v) const noexcept { return asleep_[v] != 0; }

  /// Number of nodes asleep this round (the sparse sleep set's size) — lets
  /// engines compute "how many nodes acted" arithmetically instead of
  /// scanning all n asleep flags.
  std::size_t asleep_count() const noexcept { return sleeping_.size(); }

  /// Batched fault draw on the network's shared stream (see geometric_gap).
  std::uint64_t loss_gap(double p) noexcept { return geometric_gap(rng_, p); }

  /// Fault draw: should this pushed message be dropped in transit?
  /// (Single-event form; the channels use loss_gap() batching instead.)
  bool drop_push() noexcept {
    return effective_.push_loss > 0.0 && rng_.bernoulli(effective_.push_loss);
  }

  /// Fault draw: should this pull response be dropped?
  bool drop_response() noexcept {
    return effective_.response_loss > 0.0 &&
           rng_.bernoulli(effective_.response_loss);
  }

  /// Rounds started so far.
  std::size_t round() const noexcept { return round_; }

 private:
  std::size_t n_;
  util::Rng rng_;
  WorkMeter meter_;
  FaultModel faults_;     // as configured
  FaultModel effective_;  // per-round view (loss rates swap during bursts)
  BurstChain burst_;
  StragglerSet stragglers_;
  bool in_burst_ = false;
  std::vector<std::uint8_t> asleep_;
  std::vector<NodeId> sleeping_;  // nodes asleep this round (sparse reset)
  std::size_t round_ = 0;
};

/// Slab-backed per-node element storage for all n simulated nodes.
///
/// The Clarkson-style engines keep a multiset H(v_i) at every node:
/// elems[0..h0_count) is H_0(v_i) — the node's *original* elements, which
/// the algorithms never delete — and the tail holds *copies* created by
/// W_i pushes, which the per-round filter pass may drop.  The old design
/// (one std::vector per node) meant ~n separate heap blocks; at n = 2^20
/// the store-header walks and the filter pass were cache-miss bound and
/// the per-round cost was O(n) even in quiescent late rounds.
///
/// This store owns every node's elements in a util::SlabPool: per-node
/// headers are four flat u32 arrays (slab ref, size, h0, copy-holder flag)
/// and each node's elements live contiguously in a size-class arena slot,
/// so random indexing is O(1) and the filter pass streams memory.  On top
/// of that it maintains, incrementally:
///
///   * total_elements() — the global |H(V)| in O(1) (no store-header walk);
///   * copy_holders() — the compact list of nodes currently holding at
///     least one non-original copy, so the filter pass costs O(holders)
///     instead of O(n).  A node enters the list when a copy arrives and
///     leaves it lazily when filter_copies() empties its tail.
///
/// Determinism contract: the logical per-node element sequences (and hence
/// every RNG draw an engine makes against them) are bit-identical to the
/// per-node-vector design — add_copy appends, add_original grows the H_0
/// prefix by displacing the first copy to the back (O(1), order of copies
/// otherwise preserved), and filtering compacts in the same element order
/// with one Bernoulli draw per copy.  Nodes with no copies consume no
/// filter draws, so skipping them is exact, not approximate.
///
/// Not thread-safe for writes; concurrent *reads* (view/elem/size) from a
/// stage-A parallel compute phase are safe while no adds/filters run.
template <typename Element>
class NodeStore {
 public:
  explicit NodeStore(std::size_t n)
      : ref_(n, kNullRef), size_(n, 0), h0_(n, 0) {}

  std::size_t nodes() const noexcept { return ref_.size(); }
  std::size_t size(NodeId v) const noexcept { return size_[v]; }
  std::size_t h0_count(NodeId v) const noexcept { return h0_[v]; }
  std::size_t copy_count(NodeId v) const noexcept {
    return size_[v] - h0_[v];
  }

  /// Global element count across all nodes, maintained incrementally: O(1)
  /// where the per-node-vector design walked n store headers.
  std::size_t total_elements() const noexcept { return total_; }

  /// Node v's elements: originals first, then copies in arrival order.
  std::span<const Element> view(NodeId v) const noexcept {
    if (ref_[v] == kNullRef) return {};
    return {pool_.data(ref_[v]), size_[v]};
  }

  /// O(1) random access (the pull samplers' answer path).
  const Element& elem(NodeId v, std::size_t i) const noexcept {
    return pool_.data(ref_[v])[i];
  }

  /// Append an original element, growing the H_0 prefix by swapping the
  /// displaced copy (if any) to the back — O(1) amortized.
  void add_original(NodeId v, const Element& h) {
    Element* slot = push_slot(v);
    *slot = h;
    Element* base = pool_.data(ref_[v]);
    const std::size_t last = size_[v] - 1;
    if (last != h0_[v]) {
      using std::swap;
      swap(base[h0_[v]], base[last]);
    }
    ++h0_[v];
  }

  /// Append a copy (filter-droppable); registers v as a copy holder on the
  /// 0 -> 1 transition.
  void add_copy(NodeId v, const Element& h) {
    *push_slot(v) = h;
    if (size_[v] - h0_[v] == 1) holders_.push_back(v);
  }

  /// Nodes currently holding at least one copy (compact, deduplicated;
  /// order is first-arrival, irrelevant to results because filtering draws
  /// from per-node RNG streams only).
  std::span<const NodeId> copy_holders() const noexcept {
    return {holders_.data(), holders_.size()};
  }

  /// Algorithm 2 lines 8-9 for one node: keep each copy independently with
  /// probability keep_p (one draw per copy from `rng`), never touching the
  /// H_0 prefix.  Compacts in element order — the same draws and the same
  /// surviving sequence as the per-node-vector filter.
  template <typename Rng>
  void filter_node(NodeId v, Rng& rng, double keep_p) {
    if (size_[v] == h0_[v]) return;  // no copies: zero draws, zero work
    Element* base = pool_.data(ref_[v]);
    std::size_t w = h0_[v];
    for (std::size_t i = h0_[v]; i < size_[v]; ++i) {
      if (rng.bernoulli(keep_p)) base[w++] = base[i];
    }
    total_ -= size_[v] - w;
    size_[v] = static_cast<std::uint32_t>(w);
  }

  /// Run the filter pass over exactly the copy-holding nodes — O(holders),
  /// not O(n) — compacting the holder list as nodes go copy-free.
  /// `rng_at(v)` must return node v's own RNG stream (cross-node order is
  /// then irrelevant: each node's draws come from its private stream).
  /// Returns the number of nodes visited (the pass's bookkeeping cost).
  template <typename RngAt>
  std::size_t filter_copies(double keep_p, RngAt&& rng_at) {
    const std::size_t visited = holders_.size();
    std::size_t w = 0;
    for (const NodeId v : holders_) {
      filter_node(v, rng_at(v), keep_p);
      if (size_[v] > h0_[v]) holders_[w++] = v;
    }
    holders_.resize(w);
    return visited;
  }

  /// Drop node v's entire store (originals *and* copies) — the churn
  /// "leave" path, called after the elements have been handed off.  The
  /// holder entry is erased eagerly (not lazily as in filter_copies) so a
  /// later rejoin that re-receives copies registers exactly one entry.
  void clear_node(NodeId v) {
    if (ref_[v] == kNullRef) return;
    if (size_[v] > h0_[v]) {
      holders_.erase(std::find(holders_.begin(), holders_.end(), v));
    }
    total_ -= size_[v];
    pool_.release(ref_[v]);
    ref_[v] = kNullRef;
    size_[v] = 0;
    h0_[v] = 0;
  }

  /// Recycle every node's storage while keeping the slab arenas (O(n)
  /// header clear, O(1) arena recycling) — a fresh epoch over a warm pool.
  void reset() {
    std::fill(ref_.begin(), ref_.end(), kNullRef);
    std::fill(size_.begin(), size_.end(), std::uint32_t{0});
    std::fill(h0_.begin(), h0_.end(), std::uint32_t{0});
    holders_.clear();
    total_ = 0;
    pool_.reset();
  }

  /// Reserved slab memory (diagnostics).
  std::size_t arena_bytes() const noexcept { return pool_.arena_bytes(); }

 private:
  static constexpr std::uint32_t kNullRef = 0xffffffffu;

  /// Make room for one more element at node v and return its address.
  /// Grows by size class: allocate the next class's slot, copy, release
  /// the old slot to its free list (amortized O(1) per add, like vector
  /// growth but with both buffers recycled in-arena).
  Element* push_slot(NodeId v) {
    std::uint32_t r = ref_[v];
    if (r == kNullRef) {
      r = ref_[v] = pool_.allocate_for(1);
    } else if (size_[v] == util::SlabPool<Element>::capacity(r)) {
      const std::uint32_t grown = pool_.allocate_for(size_[v] + 1);
      std::copy_n(pool_.data(r), size_[v], pool_.data(grown));
      pool_.release(r);
      ref_[v] = r = grown;
    }
    ++total_;
    return pool_.data(r) + size_[v]++;
  }

  util::SlabPool<Element> pool_;
  std::vector<std::uint32_t> ref_;   // slab handle per node (kNullRef: none)
  std::vector<std::uint32_t> size_;  // elements per node
  std::vector<std::uint32_t> h0_;    // H_0 prefix length per node
  std::vector<NodeId> holders_;      // nodes with >= 1 copy (compact)
  std::size_t total_ = 0;            // sum of size_ (incremental)
};

}  // namespace lpt::gossip
