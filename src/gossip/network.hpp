// The uniform gossip network simulator (the paper's model, Section 1.2).
//
// A fixed anonymous node set v_1..v_n operates in synchronous rounds.  Per
// round a node may execute any number of *push* operations (send a message
// to a node chosen uniformly at random) and *pull* operations (ask a node
// chosen uniformly at random for a message).  The number of such operations
// is the node's communication work for the round.
//
// The simulator's job is to (1) choose peers uniformly at random from a
// seeded stream, (2) enforce round-buffered delivery for pushes, and
// (3) meter per-node work and bytes.  Algorithm code must do all cross-node
// communication through Mailbox / PullChannel; node logic never touches
// another node's state directly, preserving the model's information flow.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "gossip/metrics.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace lpt::gossip {

/// Fault-injection knobs for the "stability under stress and disruptions"
/// claim of Section 1.2.  All faults preserve the algorithms' correctness
/// invariants (no element is ever destroyed at its home node):
///   * push_loss: each pushed message is independently lost in transit,
///   * response_loss: each pull response is independently lost,
///   * sleep_probability: each node independently skips a whole round
///     (neither initiates operations nor answers pulls).
struct FaultModel {
  double push_loss = 0.0;
  double response_loss = 0.0;
  double sleep_probability = 0.0;

  bool any() const noexcept {
    return push_loss > 0.0 || response_loss > 0.0 || sleep_probability > 0.0;
  }
};

/// Batched fault draw: number of events that *survive* before the next
/// loss, when each event is independently lost with probability p.  One
/// RNG draw replaces a run of Bernoulli trials, so a loss sweep over k
/// events costs O(lost) draws instead of O(k).
inline std::uint64_t geometric_gap(util::Rng& rng, double p) noexcept {
  constexpr std::uint64_t kCap = std::uint64_t{9} * 1000 * 1000 * 1000 *
                                 1000 * 1000 * 1000;  // 9e18
  if (p <= 0.0) return kCap;  // no losses: effectively infinite gap
  if (p >= 1.0) return 0;
  // u in (0, 1]: P(gap >= k) = (1-p)^k, the geometric survivor function.
  const double u = 1.0 - rng.uniform();
  const double g = std::log(u) / std::log1p(-p);
  // The cap keeps the cast defined for tiny p.
  return g >= static_cast<double>(kCap) ? kCap
                                        : static_cast<std::uint64_t>(g);
}

/// Stateful geometric-gap loss stream: drop(rng, p) answers "is this event
/// lost?" consuming one RNG draw per *lost* event.  The first call arms the
/// stream lazily, so a fault-free sweep (p checked by the caller) draws
/// nothing.  Shared by the pull channels and the hypercube baseline.
struct LossStream {
  std::uint64_t gap = 0;
  bool armed = false;

  bool drop(util::Rng& rng, double p) noexcept {
    if (!armed) {
      gap = geometric_gap(rng, p);
      armed = true;
    }
    if (gap == 0) {
      gap = geometric_gap(rng, p);
      return true;
    }
    --gap;
    return false;
  }
};

/// Draw the sleeping-node set for one round: each node independently
/// sleeps with probability p, sampled with geometric gaps so the cost is
/// O(sleepers), not O(n).  Clears the previous set via the sparse list.
inline void draw_sleep_set(util::Rng& rng, double p, std::size_t n,
                           std::vector<std::uint8_t>& asleep,
                           std::vector<NodeId>& sleeping) {
  for (const NodeId v : sleeping) asleep[v] = 0;
  sleeping.clear();
  for (std::uint64_t v = geometric_gap(rng, p); v < n;
       v += 1 + geometric_gap(rng, p)) {
    asleep[v] = 1;
    sleeping.push_back(static_cast<NodeId>(v));
  }
}

class Network {
 public:
  Network(std::size_t n, util::Rng rng, FaultModel faults = {})
      : n_(n), rng_(rng), meter_(n), faults_(faults), asleep_(n, 0) {
    LPT_CHECK_MSG(n >= 1, "Network needs at least one node");
  }

  std::size_t size() const noexcept { return n_; }

  /// Uniformly random node id (a node may draw itself: the uniform gossip
  /// model samples from the full node set).
  NodeId random_peer() noexcept {
    return static_cast<NodeId>(rng_.below(n_));
  }

  util::Rng& rng() noexcept { return rng_; }
  WorkMeter& meter() noexcept { return meter_; }
  const WorkMeter& meter() const noexcept { return meter_; }
  const FaultModel& faults() const noexcept { return faults_; }

  /// Advance the synchronous round counter (and the work meter with it);
  /// re-draws which nodes sleep through the new round.  Sleepers are drawn
  /// with geometric gaps, so the cost is O(sleepers), not O(n).
  void begin_round() {
    meter_.begin_round();
    ++round_;
    if (faults_.sleep_probability > 0.0) {
      draw_sleep_set(rng_, faults_.sleep_probability, n_, asleep_, sleeping_);
    }
  }

  /// True if node v sleeps through the current round (fault injection).
  bool asleep(NodeId v) const noexcept { return asleep_[v] != 0; }

  /// Batched fault draw on the network's shared stream (see geometric_gap).
  std::uint64_t loss_gap(double p) noexcept { return geometric_gap(rng_, p); }

  /// Fault draw: should this pushed message be dropped in transit?
  /// (Single-event form; the channels use loss_gap() batching instead.)
  bool drop_push() noexcept {
    return faults_.push_loss > 0.0 && rng_.bernoulli(faults_.push_loss);
  }

  /// Fault draw: should this pull response be dropped?
  bool drop_response() noexcept {
    return faults_.response_loss > 0.0 &&
           rng_.bernoulli(faults_.response_loss);
  }

  /// Rounds started so far.
  std::size_t round() const noexcept { return round_; }

 private:
  std::size_t n_;
  util::Rng rng_;
  WorkMeter meter_;
  FaultModel faults_;
  std::vector<std::uint8_t> asleep_;
  std::vector<NodeId> sleeping_;  // nodes asleep this round (sparse reset)
  std::size_t round_ = 0;
};

}  // namespace lpt::gossip
