// Communication-work accounting for the gossip model.
//
// The paper measures (a) rounds and (b) per-node per-round *work* = number
// of push and pull operations a node executes (Section 1.2).  WorkMeter
// tracks exactly that, plus bytes on the wire, so every bench can report
// "max work per node per round" next to the theorem's bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lpt::gossip {

using NodeId = std::uint32_t;

struct RoundStats {
  std::uint64_t push_ops = 0;       // total pushes this round
  std::uint64_t pull_ops = 0;       // total pulls this round
  std::uint64_t bytes = 0;          // total payload bytes this round
  std::uint32_t max_node_work = 0;  // max (push+pull) of any single node
};

class WorkMeter {
 public:
  explicit WorkMeter(std::size_t n) : node_work_(n, 0) {}

  /// Close the current round (if any work happened) and start a new one.
  void begin_round();

  /// Flush the in-progress round into the history, and fold the run's
  /// totals into the obs registry (gossip.rounds / push_ops / pull_ops /
  /// bytes) — called once at the end of every engine run.
  void finish();

  /// Reserve history capacity for an engine's round bound, so the
  /// per-round push_back in begin_round never reallocates mid-run.  The
  /// engines call this with their max_rounds before round 1.
  void reserve_rounds(std::size_t n) { history_.reserve(n); }

  /// Capacity diagnostic for the no-realloc steady-state test.
  std::size_t history_capacity() const noexcept { return history_.capacity(); }

  void add_push(NodeId v, std::size_t bytes) noexcept {
    ++cur_.push_ops;
    cur_.bytes += bytes;
    bump(v);
  }
  void add_pull(NodeId v, std::size_t bytes) noexcept {
    ++cur_.pull_ops;
    cur_.bytes += bytes;
    bump(v);
  }

  /// Bulk form: `count` zero-byte pull ops by node v in one call (the
  /// uniform samplers issue hundreds of pulls per node per round; metering
  /// them one by one is measurable).
  void add_pulls(NodeId v, std::size_t count) noexcept {
    cur_.pull_ops += count;
    const std::uint32_t w =
        (node_work_[v] += static_cast<std::uint32_t>(count));
    if (w > cur_.max_node_work) cur_.max_node_work = w;
  }

  /// Bytes sent while *answering* a pull.  Answering is not a push/pull
  /// operation of the responder under the paper's work definition
  /// (Section 1.2 counts operations a node executes), so only the wire
  /// bytes are accounted.
  void add_response_bytes(std::size_t bytes) noexcept { cur_.bytes += bytes; }

  std::size_t rounds() const noexcept { return history_.size(); }
  const std::vector<RoundStats>& history() const noexcept { return history_; }

  /// Max over all closed rounds of the max per-node work in that round.
  std::uint32_t max_work_per_round() const noexcept;

  std::uint64_t total_push_ops() const noexcept;
  std::uint64_t total_pull_ops() const noexcept;
  std::uint64_t total_bytes() const noexcept;

 private:
  void bump(NodeId v) noexcept {
    const std::uint32_t w = ++node_work_[v];
    if (w > cur_.max_node_work) cur_.max_node_work = w;
  }

  std::vector<std::uint32_t> node_work_;  // work of each node, current round
  RoundStats cur_{};
  std::vector<RoundStats> history_;
  bool dirty_ = false;

  // What finish() already folded into the obs registry (guards against
  // double-counting on re-finish or meter reuse).
  struct RunTotals {
    std::size_t rounds = 0;
    std::uint64_t push_ops = 0;
    std::uint64_t pull_ops = 0;
    std::uint64_t bytes = 0;
  };
  RunTotals folded_{};
};

}  // namespace lpt::gossip
