#include "gossip/metrics.hpp"

#include <algorithm>

#include "obs/registry.hpp"

namespace lpt::gossip {

void WorkMeter::begin_round() {
  if (dirty_) {
    history_.push_back(cur_);
    cur_ = RoundStats{};
    std::fill(node_work_.begin(), node_work_.end(), 0u);
  }
  dirty_ = true;
}

void WorkMeter::finish() {
  if (dirty_) {
    history_.push_back(cur_);
    cur_ = RoundStats{};
    std::fill(node_work_.begin(), node_work_.end(), 0u);
    dirty_ = false;
  }
  // Fold the finished run into the registry.  Incremental (vs the last
  // fold), so a re-finished or reused meter never double-counts; the
  // update site is deterministic — totals are pure functions of the run —
  // so the registry counters stay bit-identical across thread/shard
  // counts.
  const RunTotals now{history_.size(), total_push_ops(), total_pull_ops(),
                      total_bytes()};
  if (now.rounds > folded_.rounds) {
    obs::counter("gossip.rounds").add(now.rounds - folded_.rounds);
  }
  if (now.push_ops > folded_.push_ops) {
    obs::counter("gossip.push_ops").add(now.push_ops - folded_.push_ops);
  }
  if (now.pull_ops > folded_.pull_ops) {
    obs::counter("gossip.pull_ops").add(now.pull_ops - folded_.pull_ops);
  }
  if (now.bytes > folded_.bytes) {
    obs::counter("gossip.bytes").add(now.bytes - folded_.bytes);
  }
  folded_ = now;
}

std::uint32_t WorkMeter::max_work_per_round() const noexcept {
  std::uint32_t m = cur_.max_node_work;
  for (const auto& r : history_) m = std::max(m, r.max_node_work);
  return m;
}

std::uint64_t WorkMeter::total_push_ops() const noexcept {
  std::uint64_t s = cur_.push_ops;
  for (const auto& r : history_) s += r.push_ops;
  return s;
}

std::uint64_t WorkMeter::total_pull_ops() const noexcept {
  std::uint64_t s = cur_.pull_ops;
  for (const auto& r : history_) s += r.pull_ops;
  return s;
}

std::uint64_t WorkMeter::total_bytes() const noexcept {
  std::uint64_t s = cur_.bytes;
  for (const auto& r : history_) s += r.bytes;
  return s;
}

}  // namespace lpt::gossip
