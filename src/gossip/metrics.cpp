#include "gossip/metrics.hpp"

#include <algorithm>

namespace lpt::gossip {

void WorkMeter::begin_round() {
  if (dirty_) {
    history_.push_back(cur_);
    cur_ = RoundStats{};
    std::fill(node_work_.begin(), node_work_.end(), 0u);
  }
  dirty_ = true;
}

void WorkMeter::finish() {
  if (dirty_) {
    history_.push_back(cur_);
    cur_ = RoundStats{};
    std::fill(node_work_.begin(), node_work_.end(), 0u);
    dirty_ = false;
  }
}

std::uint32_t WorkMeter::max_work_per_round() const noexcept {
  std::uint32_t m = cur_.max_node_work;
  for (const auto& r : history_) m = std::max(m, r.max_node_work);
  return m;
}

std::uint64_t WorkMeter::total_push_ops() const noexcept {
  std::uint64_t s = cur_.push_ops;
  for (const auto& r : history_) s += r.push_ops;
  return s;
}

std::uint64_t WorkMeter::total_pull_ops() const noexcept {
  std::uint64_t s = cur_.pull_ops;
  for (const auto& r : history_) s += r.pull_ops;
  return s;
}

std::uint64_t WorkMeter::total_bytes() const noexcept {
  std::uint64_t s = cur_.bytes;
  for (const auto& r : history_) s += r.bytes;
  return s;
}

}  // namespace lpt::gossip
