// Wire encoding for gossip messages.
//
// The model restricts messages to O(log n) bits (Section 1.2).  The
// simulator does not need real serialization to *run*, but the byte
// accounting in WorkMeter should reflect what a real deployment would put
// on the wire.  This codec defines that format — little-endian fixed-width
// scalars, length-prefixed sequences — and the tests assert that the
// wire_size() values used by the mailboxes equal the codec's encoded
// sizes, so the reported bytes are honest.
//
// A coordinate (double) is 64 bits = O(log n) for any polynomial-precision
// input, an element id is 32 bits, and a basis message carries at most
// dim elements — O(d log n) bits, constant-dimension O(log n).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "geometry/vec2.hpp"
#include "lp/halfplane.hpp"
#include "util/assert.hpp"

namespace lpt::gossip {

class Encoder {
 public:
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof v); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof v); }
  void put_f64(double v) { put_raw(&v, sizeof v); }
  void put_u8(std::uint8_t v) { put_raw(&v, sizeof v); }

  void put(const geom::Vec2& p) {
    put_f64(p.x);
    put_f64(p.y);
  }
  void put(const lp::Halfplane& h) {
    put(h.a);
    put_f64(h.b);
  }
  void put(std::uint32_t v) { put_u32(v); }

  template <typename T>
  void put_sequence(std::span<const T> xs) {
    LPT_CHECK_MSG(xs.size() < (1u << 16), "sequence too long for the wire");
    put_u32(static_cast<std::uint32_t>(xs.size()));
    for (const auto& x : xs) put(x);
  }

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  // resize + memcpy rather than vector::insert: the insert's inlined
  // range-copy trips GCC 12's -Wstringop-overflow analysis in Release
  // (a false positive against the freshly allocated buffer), and memcpy
  // into resized storage is what the insert lowers to anyway.
  void put_raw(const void* p, std::size_t len) {
    const std::size_t old_size = buf_.size();
    buf_.resize(old_size + len);
    std::memcpy(buf_.data() + old_size, p, len);
  }
  std::vector<std::uint8_t> buf_;
};

class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint32_t get_u32() { return get_raw<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_raw<std::uint64_t>(); }
  double get_f64() { return get_raw<double>(); }
  std::uint8_t get_u8() { return get_raw<std::uint8_t>(); }

  geom::Vec2 get_vec2() {
    geom::Vec2 p;
    p.x = get_f64();
    p.y = get_f64();
    return p;
  }
  lp::Halfplane get_halfplane() {
    lp::Halfplane h;
    h.a = get_vec2();
    h.b = get_f64();
    return h;
  }

  template <typename T, typename GetOne>
  std::vector<T> get_sequence(GetOne&& get_one) {
    const std::uint32_t len = get_u32();
    std::vector<T> out;
    out.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) out.push_back(get_one(*this));
    return out;
  }

  bool exhausted() const noexcept { return pos_ == bytes_.size(); }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

 private:
  template <typename T>
  T get_raw() {
    LPT_CHECK_MSG(pos_ + sizeof(T) <= bytes_.size(), "decode past end");
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Encoded size (bytes) of one element of each gossiped type — these are
/// the constants the mailboxes' wire_size() accounting must agree with.
constexpr std::size_t kWireBytesVec2 = 16;     // two f64 coordinates
constexpr std::size_t kWireBytesHalfplane = 24;  // normal + offset
constexpr std::size_t kWireBytesElementId = 4;   // hitting-set element

}  // namespace lpt::gossip
