// Overlay-network emulation cost model (paper Section 1.2):
//
//   "any algorithm with runtime T and maximum work W in the gossip model
//    can be emulated by overlay networks in O(T + log n) time and with
//    maximum work O(W log n) w.h.p. (since it is easy to set up
//    (near-)random overlay edges in hypercubic networks in O(log n)
//    time)."
//
// The library's engines report (rounds, max work/round) in the gossip
// model; this header translates those numbers into the corresponding
// overlay-network deployment costs, so a user evaluating e.g. a P2P
// deployment can read off the emulated bounds directly from a
// DistributedRunStats.
#pragma once

#include <cstddef>

#include "core/result.hpp"
#include "util/math.hpp"

namespace lpt::gossip {

struct OverlayCost {
  std::size_t rounds = 0;    // O(T + log n): setup pipeline + emulation
  std::size_t max_work = 0;  // O(W log n): each random edge costs log n hops
};

/// Emulation cost of a gossip execution with `rounds` rounds and per-round
/// per-node work `max_work` on an n-node hypercubic overlay.  `c_setup`
/// and `c_route` are the (constant) hidden factors; defaults are the
/// standard 1 for round pipelining and 1 hop-multiplier per edge.
constexpr OverlayCost overlay_emulation_cost(std::size_t rounds,
                                             std::size_t max_work,
                                             std::size_t n,
                                             std::size_t c_setup = 1,
                                             std::size_t c_route = 1) {
  const std::size_t log_n = util::ceil_log2(n ? n : 1) + 1;
  return OverlayCost{rounds + c_setup * log_n,
                     c_route * max_work * log_n};
}

/// Convenience overload taking an engine's stats record.
inline OverlayCost overlay_emulation_cost(
    const core::DistributedRunStats& stats, std::size_t n) {
  return overlay_emulation_cost(stats.rounds_to_first,
                                stats.max_work_per_round, n);
}

}  // namespace lpt::gossip
