// Classic gossip protocols the paper builds on (Section 1.2 cites rumor
// spreading [Karp et al., FOCS'00] and gossip-based aggregation
// [Kempe-Dobra-Gehrke, FOCS'03]):
//
//   * RumorSpread<T>: push-pull rumor spreading; informs all n nodes of a
//     value in O(log n) rounds w.h.p. with O(1) work per node per round.
//     Used to disseminate a found solution (e.g. Algorithm 6's hitting
//     set) once one node holds it.
//
//   * PushSum: gossip aggregation; every node's estimate converges to
//     sum(values)/sum(weights) at an exponential rate.  With all values 1
//     and a single unit weight it estimates n — providing the
//     constant-factor estimate of log n the paper assumes nodes possess
//     (Section 1.4), from nothing but anonymous gossip.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "gossip/mailbox.hpp"
#include "gossip/network.hpp"
#include "util/assert.hpp"

namespace lpt::gossip {

template <typename T>
class RumorSpread {
 public:
  explicit RumorSpread(Network& net)
      : net_(&net),
        push_mail_(net),
        pull_chan_(net),
        value_(net.size()),
        informed_(net.size(), 0) {}

  /// Node v originates (or learns out-of-band) the rumor.
  void start(NodeId v, T value) {
    if (!informed_[v]) {
      value_[v] = std::move(value);
      informed_[v] = 1;
    }
  }

  /// One synchronous push-pull round: informed nodes push the rumor to one
  /// random node; uninformed nodes pull from one random node.  First rumor
  /// received wins (rumors are assumed consistent, as in our use cases
  /// where the rumor is the verified optimal solution).
  void round() {
    for (NodeId v = 0; v < net_->size(); ++v) {
      if (net_->asleep(v)) continue;
      if (informed_[v]) {
        push_mail_.push(v, value_[v]);
      } else {
        pull_chan_.request(v);
      }
    }
    pull_chan_.resolve([this](NodeId target) -> std::optional<T> {
      if (!informed_[target]) return std::nullopt;
      return value_[target];
    });
    push_mail_.deliver();
    for (NodeId v = 0; v < net_->size(); ++v) {
      if (net_->asleep(v) || informed_[v]) {
        // Sleeping nodes miss this round's messages; already-informed
        // nodes ignore duplicates.
        continue;
      }
      const auto& pushed = push_mail_.inbox(v);
      if (!pushed.empty()) {
        value_[v] = pushed.front();
        informed_[v] = 1;
        continue;
      }
      const auto& pulled = pull_chan_.responses(v);
      if (!pulled.empty()) {
        value_[v] = pulled.front();
        informed_[v] = 1;
      }
    }
  }

  bool informed(NodeId v) const noexcept { return informed_[v] != 0; }
  const T& value(NodeId v) const noexcept { return value_[v]; }

  std::size_t informed_count() const noexcept {
    std::size_t c = 0;
    for (auto i : informed_) c += i;
    return c;
  }
  bool all_informed() const noexcept {
    return informed_count() == informed_.size();
  }

 private:
  Network* net_;
  Mailbox<T> push_mail_;
  PullChannel<T> pull_chan_;
  std::vector<T> value_;
  std::vector<std::uint8_t> informed_;
};

/// Push-sum aggregation (Kempe-Dobra-Gehrke).  Mass conservation makes the
/// per-node ratio x_v / w_v converge to sum(x) / sum(w) exponentially fast
/// (diffusion speed O(log n + log 1/eps) rounds for relative error eps).
class PushSum {
 public:
  struct Share {
    double x = 0.0;
    double w = 0.0;
  };

  PushSum(Network& net, std::vector<double> values,
          std::vector<double> weights);

  /// Counting configuration: every node contributes value 1, node 0 holds
  /// the unit weight, so every estimate converges to n.
  static PushSum counting(Network& net) {
    std::vector<double> values(net.size(), 1.0);
    std::vector<double> weights(net.size(), 0.0);
    weights[0] = 1.0;
    return PushSum(net, std::move(values), std::move(weights));
  }

  /// Averaging configuration: estimates converge to the mean of `values`.
  static PushSum averaging(Network& net, std::vector<double> values) {
    std::vector<double> weights(net.size(), 1.0);
    return PushSum(net, std::move(values), std::move(weights));
  }

  /// One push-sum round: each node keeps half its (x, w) mass and pushes
  /// the other half to a uniformly random node.
  ///
  /// NOTE on faults: push-sum conserves mass, so a lost message would bias
  /// the aggregate forever.  Under fault injection the protocol therefore
  /// re-adds undelivered shares to the sender (the standard
  /// "self-delivery" repair), which models retransmission.
  void round() {
    std::vector<Share> keep(x_.size());
    for (NodeId v = 0; v < net_->size(); ++v) {
      if (net_->asleep(v)) {
        keep[v] = {x_[v], w_[v]};
        continue;
      }
      keep[v] = {x_[v] / 2.0, w_[v] / 2.0};
      mail_.push_to(v, net_->random_peer(), Share{x_[v] / 2.0, w_[v] / 2.0});
    }
    // Mass-conserving delivery: we bypass Mailbox's lossy deliver() and
    // route shares directly; sleeping receivers still accumulate (their
    // mailbox drains when they wake — modeled as buffered delivery).
    mail_.deliver_conserving();
    for (NodeId v = 0; v < net_->size(); ++v) {
      x_[v] = keep[v].x;
      w_[v] = keep[v].w;
      for (const auto& s : mail_.inbox(v)) {
        x_[v] += s.x;
        w_[v] += s.w;
      }
    }
  }

  /// Node v's current estimate of sum(x)/sum(w); NaN-free: nodes that have
  /// not yet received weight report 0.
  double estimate(NodeId v) const noexcept {
    return w_[v] > 0.0 ? x_[v] / w_[v] : 0.0;
  }

  double total_mass() const noexcept {
    double s = 0.0;
    for (double x : x_) s += x;
    return s;
  }

 private:
  // Mass-conserving point-to-point mail (push-sum must never lose shares;
  // see the NOTE in round()).
  class DirectMail {
   public:
    explicit DirectMail(Network& net) : net_(&net), inboxes_(net.size()) {}

    void push_to(NodeId from, NodeId to, Share s) {
      net_->meter().add_push(from, sizeof(Share));
      outbox_.emplace_back(to, s);
    }

    void deliver_conserving() {
      for (auto& ib : inboxes_) ib.clear();
      for (auto& [to, s] : outbox_) inboxes_[to].push_back(s);
      outbox_.clear();
    }

    const std::vector<Share>& inbox(NodeId v) const { return inboxes_[v]; }

   private:
    Network* net_;
    std::vector<std::pair<NodeId, Share>> outbox_;
    std::vector<std::vector<Share>> inboxes_;
  };

  Network* net_;
  DirectMail mail_;
  std::vector<double> x_;
  std::vector<double> w_;
};

/// Estimate the network size by running push-sum counting for `rounds`
/// rounds (default: enough for a constant-factor estimate w.h.p. on any
/// n <= 2^40) and returning node `observer`'s estimate.
double estimate_network_size(Network& net, std::size_t rounds = 0,
                             NodeId observer = 0);

}  // namespace lpt::gossip
