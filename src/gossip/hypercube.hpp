// Hypercube collective-operation engine.
//
// Section 1.1 of the paper notes that Clarkson's algorithm yields an
// O(d log^2 n) distributed algorithm on a hypercube because every iteration
// can be executed in O(log n) communication rounds.  This module provides
// that baseline substrate: an n = 2^k node hypercube where each collective
// (broadcast, all-reduce, prefix-sum) costs exactly k rounds — the textbook
// dimension-by-dimension schedule.
//
// Unlike the original emulator (which only charged the round cost and moved
// data with a direct serial pass), the collectives here execute the real
// recursive-doubling / binomial-tree schedules: per dimension step every
// node combines with its partner along that dimension, touching only its
// own slot.  That makes each step a per-node compute stage that fans out
// over a util::ThreadPool — and, because every node's combine sequence is
// fixed by the schedule (and IEEE floating-point addition is commutative,
// so both partners of a step round identically), the results are
// bit-identical for any thread count, including the serial run.
//
// Point-to-point traffic goes through HypercubeChannel: dimension-ordered
// (e-cube) routing over the same flat CSR buffers the gossip Mailbox uses —
// epoch-stamped per-node slices, std::span inboxes, zero steady-state
// allocation.  The pre-CSR per-dimension vector-of-vectors engine lives on
// as LegacyHypercubeChannel inside tests/test_hypercube_csr.cpp (the same
// arrangement as the legacy Mailbox/PullChannel references): both engines
// share the exact hop schedule, so their inboxes must match element for
// element, and that harness holds them to it.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "gossip/mailbox.hpp"  // detail::CsrIndex + NodeId
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/thread_pool.hpp"

namespace lpt::gossip {

class Hypercube {
 public:
  /// `pool` (optional, not owned) threads the per-node stage of every
  /// collective; results are bit-identical with and without it.
  explicit Hypercube(std::size_t n, util::ThreadPool* pool = nullptr)
      : n_(n), dim_(util::ceil_log2(n)), pool_(pool) {
    LPT_CHECK_MSG(util::is_pow2(n), "Hypercube size must be a power of two");
  }

  std::size_t size() const noexcept { return n_; }
  std::size_t dimension() const noexcept { return dim_; }
  std::size_t rounds_used() const noexcept { return rounds_; }

  /// Account `r` extra communication rounds (used by the channels).
  void charge_rounds(std::size_t r) noexcept { rounds_ += r; }

  /// Run body(v) for every node, on the pool when one is attached.  body
  /// must only write node-v state (the collectives' schedule guarantees
  /// their per-step reads never alias another node's same-step writes).
  template <typename F>
  void for_each_node(F&& body) {
    if (pool_ != nullptr && n_ > 1) {
      util::parallel_for(*pool_, n_, body);
    } else {
      for (std::size_t v = 0; v < n_; ++v) body(v);
    }
  }

  /// Broadcast root's value to everyone: binomial-tree flood, one dimension
  /// per round, costs dimension() rounds.  After step k every node within
  /// relative distance 2^(k+1) of the root holds the value.
  template <typename T>
  void broadcast(std::vector<T>& values, std::size_t root) {
    LPT_CHECK(values.size() == n_ && root < n_);
    for (std::size_t k = 0; k < dim_; ++k) {
      const std::size_t bit = std::size_t{1} << k;
      for_each_node([&](std::size_t v) {
        // Node v receives at the step matching the highest set bit of its
        // relative address; its partner already holds the value and is not
        // written this step, so the parallel stage is race-free.
        if (((v ^ root) >> k) == 1) values[v] = values[v ^ bit];
      });
    }
    rounds_ += dim_;
  }

  /// All-reduce with a binary op: recursive doubling, costs dimension()
  /// rounds.  Op must be commutative (each step's partners apply it with
  /// opposite operand order); associativity is NOT required — every node
  /// follows the same fixed combine tree, so the returned value is
  /// deterministic, and op(init, <butterfly fold of values>) is returned.
  template <typename T, typename Op>
  T all_reduce(const std::vector<T>& values, T init, Op op) {
    LPT_CHECK(values.size() == n_);
    const auto acc = scratch<T>(0);
    const auto partner = scratch<T>(1);
    std::copy(values.begin(), values.end(), acc.begin());
    for (std::size_t k = 0; k < dim_; ++k) {
      const std::size_t bit = std::size_t{1} << k;
      for_each_node([&](std::size_t v) { partner[v] = acc[v ^ bit]; });
      for_each_node([&](std::size_t v) { acc[v] = op(acc[v], partner[v]); });
    }
    rounds_ += dim_;
    return op(std::move(init), acc[0]);
  }

  /// Exclusive prefix sum; returns the total.  Hypercube scan: every node
  /// carries (prefix, subcube total) and folds its partner's subcube total
  /// into both per step.  Costs dimension() rounds.
  template <typename T>
  T prefix_sum(std::vector<T>& values) {
    LPT_CHECK(values.size() == n_);
    const auto sum = scratch<T>(0);
    const auto partner = scratch<T>(1);
    const auto pre = scratch<T>(2);
    std::copy(values.begin(), values.end(), sum.begin());
    std::fill(pre.begin(), pre.end(), T{});
    for (std::size_t k = 0; k < dim_; ++k) {
      const std::size_t bit = std::size_t{1} << k;
      for_each_node([&](std::size_t v) { partner[v] = sum[v ^ bit]; });
      for_each_node([&](std::size_t v) {
        if (v & bit) pre[v] = pre[v] + partner[v];
        sum[v] = sum[v] + partner[v];
      });
    }
    rounds_ += dim_;
    std::copy(pre.begin(), pre.end(), values.begin());
    return sum[0];
  }

  /// Route k point-to-point messages (any h-relation with h = O(1) routes
  /// in O(log n) rounds on a hypercube via Ranade/Valiant-style routing).
  /// Cost-only form; HypercubeChannel moves the actual payload.
  void route_messages() { rounds_ += dim_; }

 private:
  /// Per-slot collective scratch, reused across calls so the steady state
  /// allocates nothing.  Collectives carry fixed-width wire words, hence
  /// the trivially-copyable constraint; the byte arena is reinterpreted
  /// per element type (implicit-lifetime types, default-new alignment).
  template <typename T>
  std::span<T> scratch(std::size_t slot) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "hypercube collectives carry fixed-width wire words");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    auto& buf = scratch_[slot];
    if (buf.size() < n_ * sizeof(T)) buf.resize(n_ * sizeof(T));
    return {reinterpret_cast<T*>(buf.data()), n_};
  }

  std::size_t n_;
  std::size_t dim_;
  util::ThreadPool* pool_ = nullptr;
  std::size_t rounds_ = 0;
  std::array<std::vector<std::byte>, 3> scratch_;
};

/// Point-to-point message routing over the hypercube: dimension-ordered
/// (e-cube) hops on flat CSR buffers.  At step k every in-flight message
/// whose current node and destination differ in bit k crosses to the
/// dimension-k partner; the in-flight set is kept in CSR order (a stable
/// counting sort by current node per step, reusing the Mailbox's
/// epoch-stamped index), so per-step traversal is "node order, arrival
/// order within node" — the exact schedule of the legacy per-dimension
/// vector engine (see tests/test_hypercube_csr.cpp), at O(messages) per
/// step with zero steady-state allocation.  route() charges dimension()
/// rounds; inboxes are epoch-stamped std::span slices valid until the
/// next route().
template <typename M>
class HypercubeChannel {
 public:
  explicit HypercubeChannel(Hypercube& hc)
      : hc_(&hc), index_(hc.size()), dim_traffic_(hc.dimension(), 0) {}

  /// Stage one message; delivered (and charged) by the next route().
  void send(NodeId from, NodeId to, M msg) {
    LPT_CHECK(from < hc_->size() && to < hc_->size());
    payload_.push_back(std::move(msg));
    cur_.push_back(from);
    dst_.push_back(to);
  }

  std::size_t pending() const noexcept { return payload_.size(); }

  /// Deliver all staged messages along dimension-ordered routes.
  void route() {
    const std::size_t dim = hc_->dimension();
    dim_traffic_.assign(dim, 0);
    for (std::size_t k = 0; k <= dim; ++k) {
      // Stable counting sort of the in-flight set by current node.  The
      // final pass (k == dim) runs after every message has arrived, so it
      // groups by destination and *is* the inbox CSR layout.
      index_.new_epoch();
      for (const NodeId c : cur_) index_.count(c);
      const std::size_t total = index_.finish_counts_sorted();
      sorted_payload_.resize(total);
      sorted_cur_.resize(total);
      sorted_dst_.resize(total);
      for (std::size_t i = 0; i < total; ++i) {
        const std::size_t slot = index_.place(cur_[i]);
        sorted_payload_[slot] = std::move(payload_[i]);
        sorted_cur_[slot] = cur_[i];
        sorted_dst_[slot] = dst_[i];
      }
      payload_.swap(sorted_payload_);
      cur_.swap(sorted_cur_);
      dst_.swap(sorted_dst_);
      if (k == dim) break;
      const NodeId bit = NodeId{1} << k;
      for (std::size_t i = 0; i < total; ++i) {
        if ((cur_[i] ^ dst_[i]) & bit) {
          cur_[i] ^= bit;
          ++dim_traffic_[k];
        }
      }
    }
    hc_->charge_rounds(dim);
    // payload_ now holds the delivered inboxes (indexed by index_); the
    // staging arrays restart empty for the next round.
    delivered_.swap(payload_);
    payload_.clear();
    cur_.clear();
    dst_.clear();
  }

  /// Messages delivered to node v by the last route(), in the hop
  /// schedule's arrival order.  Valid until the next route().
  std::span<const M> inbox(NodeId v) const noexcept {
    if (!index_.live(v)) return {};
    return {delivered_.data() + index_.begin(v), index_.count_of(v)};
  }

  /// Messages that crossed dimension k during the last route().
  std::size_t dim_traffic(std::size_t k) const {
    LPT_CHECK(k < dim_traffic_.size());
    return dim_traffic_[k];
  }

 private:
  Hypercube* hc_;
  std::vector<M> payload_;  // staging, then in-flight, in CSR order
  std::vector<NodeId> cur_;
  std::vector<NodeId> dst_;
  std::vector<M> sorted_payload_;  // counting-sort double buffers
  std::vector<NodeId> sorted_cur_;
  std::vector<NodeId> sorted_dst_;
  std::vector<M> delivered_;  // all inboxes, concatenated (CSR values)
  detail::CsrIndex index_;
  std::vector<std::size_t> dim_traffic_;
};

}  // namespace lpt::gossip
