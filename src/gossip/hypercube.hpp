// Hypercube collective-operation emulator.
//
// Section 1.1 of the paper notes that Clarkson's algorithm yields an
// O(d log^2 n) distributed algorithm on a hypercube because every iteration
// can be executed in O(log n) communication rounds.  This module provides
// that baseline substrate: an n = 2^k node hypercube where each collective
// (broadcast, all-reduce, prefix-sum) costs exactly k rounds — the textbook
// dimension-by-dimension schedule — with the data movement done directly
// and only the *round cost* modeled, which is all the baseline's round
// complexity depends on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace lpt::gossip {

class Hypercube {
 public:
  explicit Hypercube(std::size_t n) : n_(n), dim_(util::ceil_log2(n)) {
    LPT_CHECK_MSG(util::is_pow2(n), "Hypercube size must be a power of two");
  }

  std::size_t size() const noexcept { return n_; }
  std::size_t dimension() const noexcept { return dim_; }
  std::size_t rounds_used() const noexcept { return rounds_; }

  /// Broadcast root's value to everyone: costs dimension() rounds.
  template <typename T>
  void broadcast(std::vector<T>& values, std::size_t root) {
    LPT_CHECK(values.size() == n_ && root < n_);
    for (auto& v : values) v = values[root];
    rounds_ += dim_;
  }

  /// All-reduce with a binary op: costs dimension() rounds.
  template <typename T, typename Op>
  T all_reduce(const std::vector<T>& values, T init, Op op) {
    LPT_CHECK(values.size() == n_);
    T acc = init;
    for (const auto& v : values) acc = op(acc, v);
    rounds_ += dim_;
    return acc;
  }

  /// Exclusive prefix sum; returns the total.  Costs dimension() rounds.
  template <typename T>
  T prefix_sum(std::vector<T>& values) {
    LPT_CHECK(values.size() == n_);
    T acc{};
    for (auto& v : values) {
      const T x = v;
      v = acc;
      acc += x;
    }
    rounds_ += dim_;
    return acc;
  }

  /// Route k point-to-point messages (any h-relation with h = O(1) routes
  /// in O(log n) rounds on a hypercube via Ranade/Valiant-style routing).
  void route_messages() { rounds_ += dim_; }

 private:
  std::size_t n_;
  std::size_t dim_;
  std::size_t rounds_ = 0;
};

}  // namespace lpt::gossip
