#include "problems/min_disk.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lpt::problems {

namespace {

// Deterministic seed from the input so solve() is reproducible regardless
// of caller threading (FNV-1a over a size/extremes fingerprint).
std::uint64_t fingerprint(std::span<const geom::Vec2> s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    h = (h ^ bits) * 0x100000001b3ULL;
  };
  mix(static_cast<double>(s.size()));
  if (!s.empty()) {
    mix(s.front().x);
    mix(s.front().y);
    mix(s.back().x);
    mix(s.back().y);
    mix(s[s.size() / 2].x);
  }
  return h;
}

// Canonical smallest enclosing disk of <= 3 (sorted, deduped) points.
geom::Circle disk_of_small(std::span<const geom::Vec2> pts) {
  switch (pts.size()) {
    case 0:
      return geom::Circle{};  // empty disk
    case 1:
      return geom::circle_from(pts[0]);
    case 2:
      return geom::circle_from(pts[0], pts[1]);
    default: {
      // Try each diametral pair; the smallest valid one wins, else the
      // circumcircle through all three.
      geom::Circle best{};
      bool found = false;
      for (int drop = 2; drop >= 0; --drop) {
        const geom::Vec2 a = pts[(drop + 1) % 3];
        const geom::Vec2 b = pts[(drop + 2) % 3];
        const geom::Circle c = geom::circle_from(a, b);
        if (c.contains(pts[static_cast<std::size_t>(drop)]) &&
            (!found || c.radius < best.radius)) {
          best = c;
          found = true;
        }
      }
      if (found) return best;
      return geom::circle_from(pts[0], pts[1], pts[2]);
    }
  }
}

}  // namespace

MinDisk::Solution MinDisk::solve(std::span<const Element> s) const {
  Solution sol;
  if (s.empty()) return sol;
  util::Rng rng(fingerprint(s));
  auto md = geom::min_disk(s, rng);
  sol.basis = std::move(md.support);
  std::sort(sol.basis.begin(), sol.basis.end());
  sol.basis.erase(std::unique(sol.basis.begin(), sol.basis.end()),
                  sol.basis.end());
  sol.disk = disk_of_small(sol.basis);
  return sol;
}

MinDisk::Solution MinDisk::solve_shuffled(std::span<const Element> s) const {
  Solution sol;
  if (s.empty()) return sol;
  auto md = geom::min_disk_preshuffled(s);
  sol.basis = std::move(md.support);
  std::sort(sol.basis.begin(), sol.basis.end());
  sol.basis.erase(std::unique(sol.basis.begin(), sol.basis.end()),
                  sol.basis.end());
  sol.disk = disk_of_small(sol.basis);
  return sol;
}

void MinDisk::solve_into(std::span<const Element> s, std::span<Element> buf,
                         Solution& out) const {
  LPT_CHECK_MSG(buf.size() >= s.size(),
                "MinDisk::solve_into: shuffle buffer smaller than the input");
  out.disk = geom::Circle{};
  out.basis.clear();
  if (s.empty()) return;
  // Exactly solve()'s computation — same fingerprint seed, same shuffle
  // draw sequence (span and vector shuffles are identical), same Welzl
  // core, same canonicalization — so the results are bit-identical; only
  // the copy lands in the caller's buffer instead of a fresh vector.
  util::Rng rng(fingerprint(s));
  std::span<Element> pts = buf.first(s.size());
  std::copy(s.begin(), s.end(), pts.begin());
  rng.shuffle(pts);
  geom::min_disk_preshuffled_into(pts, out.disk, out.basis);
  std::sort(out.basis.begin(), out.basis.end());
  out.basis.erase(std::unique(out.basis.begin(), out.basis.end()),
                  out.basis.end());
  out.disk = disk_of_small(out.basis);
}

MinDisk::Solution MinDisk::from_basis(std::span<const Element> b) const {
  if (b.size() <= 3) {
    Solution sol;
    sol.basis.assign(b.begin(), b.end());
    std::sort(sol.basis.begin(), sol.basis.end());
    sol.basis.erase(std::unique(sol.basis.begin(), sol.basis.end()),
                    sol.basis.end());
    // A received "basis" may contain non-support points (e.g. B u {h} from
    // the MSW exchange step); reduce to the true support via solve if the
    // direct disk does not match.
    sol.disk = disk_of_small(sol.basis);
    if (geom::encloses_all(sol.disk, sol.basis)) {
      // Drop interior points from the basis (diametral-pair case).
      if (sol.basis.size() == 3) {
        for (std::size_t i = 0; i < 3; ++i) {
          std::vector<geom::Vec2> two;
          for (std::size_t j = 0; j < 3; ++j) {
            if (j != i) two.push_back(sol.basis[j]);
          }
          const auto c = disk_of_small(two);
          if (c.radius >= sol.disk.radius - 1e-12 * (sol.disk.radius + 1.0) &&
              c.contains(sol.basis[i])) {
            sol.basis = std::move(two);
            sol.disk = c;
            break;
          }
        }
      }
      return sol;
    }
  }
  return solve(b);
}

}  // namespace lpt::problems
