#include "problems/hitting_set_problem.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lpt::problems {

SetSystem::SetSystem(std::size_t universe_size,
                     std::vector<std::vector<std::uint32_t>> sets)
    : n_(universe_size), sets_(std::move(sets)), inverted_(universe_size) {
  for (std::size_t j = 0; j < sets_.size(); ++j) {
    auto& s = sets_[j];
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    LPT_CHECK_MSG(s.empty() || s.back() < n_,
                  "SetSystem: set element outside the universe");
    LPT_CHECK_MSG(!s.empty(), "SetSystem: empty set can never be hit");
    for (auto x : s) inverted_[x].push_back(static_cast<std::uint32_t>(j));
  }
  for (const auto& lists : inverted_) {
    max_freq_ = std::max(max_freq_, lists.size());
  }
}

std::size_t HittingSetProblem::value_of(std::span<const Element> u) const {
  std::vector<std::uint8_t> hit;
  return mark_hit(u, hit);
}

std::size_t HittingSetProblem::mark_hit(std::span<const Element> u,
                                        std::vector<std::uint8_t>& hit) const {
  hit.assign(sys_->set_count(), 0);
  std::size_t count = 0;
  for (auto x : u) {
    for (auto j : sys_->sets_containing(x)) {
      if (!hit[j]) {
        hit[j] = 1;
        ++count;
      }
    }
  }
  return count;
}

std::vector<std::uint32_t> HittingSetProblem::unhit_sets(
    std::span<const Element> u) const {
  std::vector<std::uint8_t> hit;
  mark_hit(u, hit);
  std::vector<std::uint32_t> out;
  for (std::uint32_t j = 0; j < hit.size(); ++j) {
    if (!hit[j]) out.push_back(j);
  }
  return out;
}

std::vector<HittingSetProblem::Element>
HittingSetProblem::greedy_hitting_set() const {
  const std::size_t s = sys_->set_count();
  std::vector<std::uint8_t> hit(s, 0);
  std::size_t covered = 0;
  std::vector<Element> result;
  std::vector<std::size_t> gain(sys_->universe_size(), 0);
  for (std::uint32_t x = 0; x < sys_->universe_size(); ++x) {
    gain[x] = sys_->sets_containing(x).size();
  }
  while (covered < s) {
    // Pick the element hitting the most currently-unhit sets.
    std::uint32_t best = 0;
    std::size_t best_gain = 0;
    for (std::uint32_t x = 0; x < sys_->universe_size(); ++x) {
      if (gain[x] > best_gain) {
        best_gain = gain[x];
        best = x;
      }
    }
    LPT_CHECK_MSG(best_gain > 0, "greedy: some set has no member");
    result.push_back(best);
    for (auto j : sys_->sets_containing(best)) {
      if (!hit[j]) {
        hit[j] = 1;
        ++covered;
        for (auto y : sys_->set(j)) --gain[y];
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

namespace {

bool search_hs(const SetSystem& sys, const std::vector<std::uint32_t>& unhit,
               std::size_t budget, std::vector<std::uint32_t>& partial,
               std::vector<std::uint8_t>& hit) {
  // Find the first unhit set; branch on its members.
  std::uint32_t target = UINT32_MAX;
  for (auto j : unhit) {
    if (!hit[j]) {
      target = j;
      break;
    }
  }
  if (target == UINT32_MAX) return true;  // everything hit
  if (budget == 0) return false;
  for (auto x : sys.set(target)) {
    std::vector<std::uint32_t> flipped;
    for (auto j : sys.sets_containing(x)) {
      if (!hit[j]) {
        hit[j] = 1;
        flipped.push_back(j);
      }
    }
    partial.push_back(x);
    if (search_hs(sys, unhit, budget - 1, partial, hit)) return true;
    partial.pop_back();
    for (auto j : flipped) hit[j] = 0;
  }
  return false;
}

}  // namespace

std::vector<HittingSetProblem::Element>
HittingSetProblem::exact_minimum_hitting_set(std::size_t size_cap) const {
  std::vector<std::uint32_t> all_sets(sys_->set_count());
  for (std::uint32_t j = 0; j < all_sets.size(); ++j) all_sets[j] = j;
  for (std::size_t k = 0; k <= size_cap; ++k) {
    std::vector<std::uint32_t> partial;
    std::vector<std::uint8_t> hit(sys_->set_count(), 0);
    if (search_hs(*sys_, all_sets, k, partial, hit)) {
      std::sort(partial.begin(), partial.end());
      return partial;
    }
  }
  return {};  // no hitting set within the cap
}

}  // namespace lpt::problems
