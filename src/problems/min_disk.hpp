// Smallest enclosing disk as an LP-type problem (paper Sections 1.1 and 5).
//
// H = points in the plane, f(S) = radius of the smallest disk enclosing S.
// Combinatorial dimension 3 (at most 3 points determine the disk).  This is
// the problem the paper's experimental evaluation (Figures 1-3) runs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/circle.hpp"
#include "geometry/welzl.hpp"
#include "gossip/codec.hpp"

namespace lpt::problems {

struct MinDiskSolution {
  geom::Circle disk{};             // empty() encodes f(∅) = -infinity
  std::vector<geom::Vec2> basis;   // sorted support set, |basis| <= 3

  friend bool operator==(const MinDiskSolution& a,
                         const MinDiskSolution& b) = default;
};

/// Shard wire codec (found by ADL from shard/wire.hpp): exact round-trip —
/// center, radius, and the sorted support set, so a solution crossing a
/// shard-worker boundary compares bit-identically on the coordinator.
inline void wire_put(gossip::Encoder& e, const MinDiskSolution& s) {
  e.put(s.disk.center);
  e.put_f64(s.disk.radius);
  e.put_u8(static_cast<std::uint8_t>(s.basis.size()));
  for (const geom::Vec2& b : s.basis) e.put(b);
}

inline void wire_get(gossip::Decoder& d, MinDiskSolution& s) {
  s.disk.center = d.get_vec2();
  s.disk.radius = d.get_f64();
  const std::uint8_t k = d.get_u8();
  s.basis.clear();
  s.basis.reserve(k);
  for (std::uint8_t i = 0; i < k; ++i) s.basis.push_back(d.get_vec2());
}

class MinDisk {
 public:
  using Element = geom::Vec2;
  using Solution = MinDiskSolution;

  std::size_t dimension() const noexcept { return 3; }

  /// Canonical optimal solution: Welzl to find the support, then the disk is
  /// re-derived from the *sorted* support so equal bases give bit-identical
  /// Solutions (see the canonicality contract in core/lp_type.hpp).
  Solution solve(std::span<const Element> s) const;

  /// Fast path for inputs already in random order (the engines' samples):
  /// identical disk, skips Welzl's internal copy + shuffle.
  Solution solve_shuffled(std::span<const Element> s) const;

  /// Canonical solve for a (candidate) basis of <= 3 points received over
  /// the wire; also correct for any small point set.
  Solution from_basis(std::span<const Element> b) const;

  /// Bit-identical to solve(), but the caller provides the shuffle buffer
  /// (`buf.size() >= s.size()`, e.g. a slab-arena slot) and a reused
  /// output: once `out.basis` has warmed its <= 3-point capacity the call
  /// allocates nothing — the query service's serve-path contract.
  void solve_into(std::span<const Element> s, std::span<Element> buf,
                  Solution& out) const;

  bool violates(const Solution& sol, const Element& e) const noexcept {
    // Empty disk: f(∅) < f({e}) always.  Otherwise: e outside the disk.
    return !sol.disk.contains(e);
  }

  bool value_less(const Solution& a, const Solution& b) const noexcept {
    return a.disk.radius < b.disk.radius - tol(a, b);
  }
  bool same_value(const Solution& a, const Solution& b) const noexcept {
    const double d = a.disk.radius - b.disk.radius;
    return (d < 0 ? -d : d) <= tol(a, b);
  }

 private:
  static double tol(const Solution& a, const Solution& b) noexcept {
    const double m = a.disk.radius > b.disk.radius ? a.disk.radius
                                                   : b.disk.radius;
    return 1e-9 * (m + 1.0);
  }
};

}  // namespace lpt::problems
