// Polytope distance as an LP-type problem (mentioned in the paper's
// abstract): distance from the origin to the convex hull of a point set.
//
// f(S) = -dist(0, conv(S)) so that f is monotonically increasing (adding
// points can only move the hull closer to the origin).  Combinatorial
// dimension 3 in the plane: the optimum is witnessed by a vertex, an edge,
// or — when the origin is inside the hull — a triangle containing it.
#pragma once

#include <span>
#include <vector>

#include "geometry/convex.hpp"

namespace lpt::problems {

struct PolytopeDistanceSolution {
  double distance = -1.0;          // < 0 encodes f(∅) (= -infinity)
  geom::Vec2 point{};              // closest hull point to the origin
  std::vector<geom::Vec2> basis;   // sorted witness set, <= 3 points

  bool empty() const noexcept { return distance < 0.0; }

  friend bool operator==(const PolytopeDistanceSolution&,
                         const PolytopeDistanceSolution&) = default;
};

class PolytopeDistance {
 public:
  using Element = geom::Vec2;
  using Solution = PolytopeDistanceSolution;

  std::size_t dimension() const noexcept { return 3; }

  Solution solve(std::span<const Element> s) const;
  Solution from_basis(std::span<const Element> b) const;

  /// h improves (violates) sol iff it lies strictly on the origin side of
  /// the supporting hyperplane through sol.point: <h, x*> < <x*, x*>.
  bool violates(const Solution& sol, const Element& e) const noexcept {
    if (sol.empty()) return true;        // f(∅) < f({e}) always
    if (sol.distance == 0.0) return false;  // global optimum reached
    const double lhs = geom::dot(e, sol.point);
    const double rhs = geom::norm2(sol.point);
    return lhs < rhs - 1e-9 * (rhs + 1.0);
  }

  // f = -distance: larger distance means smaller f.
  bool value_less(const Solution& a, const Solution& b) const noexcept {
    if (a.empty() || b.empty()) return a.empty() && !b.empty();
    return a.distance > b.distance + tol(a, b);
  }
  bool same_value(const Solution& a, const Solution& b) const noexcept {
    if (a.empty() || b.empty()) return a.empty() == b.empty();
    const double d = a.distance - b.distance;
    return (d < 0 ? -d : d) <= tol(a, b);
  }

 private:
  static double tol(const Solution& a, const Solution& b) noexcept {
    const double m = a.distance > b.distance ? a.distance : b.distance;
    return 1e-9 * (m + 1.0);
  }
};

}  // namespace lpt::problems
