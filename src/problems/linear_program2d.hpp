// Fixed-dimension linear programming as an LP-type problem (paper §1.1).
//
// H = half-plane constraints, f(S) = canonical optimum of "minimize c.x
// subject to S" inside an implicit bounding box.  Combinatorial dimension =
// number of variables = 2.  The LP substrate is Seidel's algorithm (src/lp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gossip/codec.hpp"
#include "lp/seidel.hpp"

namespace lpt::problems {

struct Lp2dSolution {
  lp::LpValue value{};
  std::vector<lp::Halfplane> basis;  // sorted, <= 2 constraints

  friend bool operator==(const Lp2dSolution&, const Lp2dSolution&) = default;
};

/// Shard wire codec (found by ADL from shard/wire.hpp): exact round-trip of
/// the canonical value and the sorted basis, mirroring MinDiskSolution's —
/// it makes LinearProgram2D shardable and lets the query service frame LP
/// solutions in its responses.
inline void wire_put(gossip::Encoder& e, const Lp2dSolution& s) {
  e.put_f64(s.value.objective);
  e.put(s.value.point);
  e.put_u8(s.value.infeasible ? 1 : 0);
  e.put_u8(static_cast<std::uint8_t>(s.basis.size()));
  for (const lp::Halfplane& h : s.basis) e.put(h);
}

inline void wire_get(gossip::Decoder& d, Lp2dSolution& s) {
  s.value.objective = d.get_f64();
  s.value.point = d.get_vec2();
  s.value.infeasible = d.get_u8() != 0;
  const std::uint8_t k = d.get_u8();
  s.basis.clear();
  s.basis.reserve(k);
  for (std::uint8_t i = 0; i < k; ++i) s.basis.push_back(d.get_halfplane());
}

class LinearProgram2D {
 public:
  using Element = lp::Halfplane;
  using Solution = Lp2dSolution;

  explicit LinearProgram2D(geom::Vec2 objective, double box = 1e6)
      : solver_(objective, box) {}

  std::size_t dimension() const noexcept { return 2; }

  Solution solve(std::span<const Element> s) const;
  Solution from_basis(std::span<const Element> b) const;

  bool violates(const Solution& sol, const Element& e) const noexcept {
    return solver_.violates(sol.value, e);
  }
  bool value_less(const Solution& a, const Solution& b) const noexcept;
  bool same_value(const Solution& a, const Solution& b) const noexcept;

  const lp::Seidel2D& solver() const noexcept { return solver_; }

 private:
  lp::Seidel2D solver_;
};

}  // namespace lpt::problems
