// Fixed-dimension linear programming as an LP-type problem (paper §1.1).
//
// H = half-plane constraints, f(S) = canonical optimum of "minimize c.x
// subject to S" inside an implicit bounding box.  Combinatorial dimension =
// number of variables = 2.  The LP substrate is Seidel's algorithm (src/lp).
#pragma once

#include <span>
#include <vector>

#include "lp/seidel.hpp"

namespace lpt::problems {

struct Lp2dSolution {
  lp::LpValue value{};
  std::vector<lp::Halfplane> basis;  // sorted, <= 2 constraints

  friend bool operator==(const Lp2dSolution&, const Lp2dSolution&) = default;
};

class LinearProgram2D {
 public:
  using Element = lp::Halfplane;
  using Solution = Lp2dSolution;

  explicit LinearProgram2D(geom::Vec2 objective, double box = 1e6)
      : solver_(objective, box) {}

  std::size_t dimension() const noexcept { return 2; }

  Solution solve(std::span<const Element> s) const;
  Solution from_basis(std::span<const Element> b) const;

  bool violates(const Solution& sol, const Element& e) const noexcept {
    return solver_.violates(sol.value, e);
  }
  bool value_less(const Solution& a, const Solution& b) const noexcept;
  bool same_value(const Solution& a, const Solution& b) const noexcept;

  const lp::Seidel2D& solver() const noexcept { return solver_; }

 private:
  lp::Seidel2D solver_;
};

}  // namespace lpt::problems
