// The hitting set problem (X, S) and its LP-type view (paper Section 4).
//
// X = {0..n-1}; S = a collection of subsets of X.  f(U) = number of sets of
// S intersected by U — an LP-type problem whose combinatorial dimension can
// be much larger than the minimum hitting set size d.  Algorithm 6 finds a
// hitting set of size O(d log(ds)) regardless.
//
// Per the paper's model, every node knows S (it is part of the problem
// description, e.g. implicitly-defined geometric ranges), so the problem
// object is shared by all node closures; only the *elements of X* are
// distributed / gossiped.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace lpt::problems {

/// A finite set system over universe {0..universe_size-1}.
class SetSystem {
 public:
  SetSystem(std::size_t universe_size,
            std::vector<std::vector<std::uint32_t>> sets);

  std::size_t universe_size() const noexcept { return n_; }
  std::size_t set_count() const noexcept { return sets_.size(); }
  const std::vector<std::uint32_t>& set(std::size_t j) const noexcept {
    return sets_[j];
  }
  const std::vector<std::vector<std::uint32_t>>& sets() const noexcept {
    return sets_;
  }
  /// Indices of the sets containing element x.
  const std::vector<std::uint32_t>& sets_containing(
      std::uint32_t x) const noexcept {
    return inverted_[x];
  }
  /// Maximum element frequency (the f of f(1+eps)-approximation bounds).
  std::size_t max_frequency() const noexcept { return max_freq_; }

 private:
  std::size_t n_;
  std::vector<std::vector<std::uint32_t>> sets_;
  std::vector<std::vector<std::uint32_t>> inverted_;
  std::size_t max_freq_ = 0;
};

class HittingSetProblem {
 public:
  using Element = std::uint32_t;

  explicit HittingSetProblem(std::shared_ptr<const SetSystem> sys)
      : sys_(std::move(sys)) {}

  const SetSystem& system() const noexcept { return *sys_; }

  /// f(U): number of sets of S intersected by U (duplicates in U are fine).
  std::size_t value_of(std::span<const Element> u) const;

  /// True iff U hits every set.
  bool is_hitting_set(std::span<const Element> u) const {
    return value_of(u) == sys_->set_count();
  }

  /// Mark (in `hit`, sized set_count) which sets U hits; returns the count.
  std::size_t mark_hit(std::span<const Element> u,
                       std::vector<std::uint8_t>& hit) const;

  /// Indices of sets NOT hit by U (the S_i of Algorithm 6).
  std::vector<std::uint32_t> unhit_sets(std::span<const Element> u) const;

  /// Greedy ln(n)-approximation baseline (classic; runs on one "node").
  std::vector<Element> greedy_hitting_set() const;

  /// Exact minimum hitting set by IDA-style branch and bound; exponential,
  /// for test-scale instances only (used to know the true d).
  std::vector<Element> exact_minimum_hitting_set(std::size_t size_cap) const;

 private:
  std::shared_ptr<const SetSystem> sys_;
};

}  // namespace lpt::problems
