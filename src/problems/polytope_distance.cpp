#include "problems/polytope_distance.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace lpt::problems {

namespace {

// Witness triangle of input points containing the origin, for the interior
// case: fan-triangulate the hull from vertex 0 and locate the origin.
std::vector<geom::Vec2> origin_triangle(const std::vector<geom::Vec2>& hull) {
  const geom::Vec2 o{0.0, 0.0};
  for (std::size_t i = 1; i + 1 < hull.size(); ++i) {
    const geom::Vec2 a = hull[0];
    const geom::Vec2 b = hull[i];
    const geom::Vec2 c = hull[i + 1];
    const double s1 = geom::orient(a, b, o);
    const double s2 = geom::orient(b, c, o);
    const double s3 = geom::orient(c, a, o);
    const double eps = 1e-12;
    if ((s1 >= -eps && s2 >= -eps && s3 >= -eps) ||
        (s1 <= eps && s2 <= eps && s3 <= eps)) {
      return {a, b, c};
    }
  }
  // Origin on the boundary / degenerate hull: fall back to closest pair.
  return {};
}

}  // namespace

PolytopeDistance::Solution PolytopeDistance::solve(
    std::span<const Element> s) const {
  Solution sol;
  if (s.empty()) return sol;
  auto mnp = geom::min_norm_point(s);
  sol.distance = mnp.distance;
  sol.point = mnp.point;
  sol.basis = std::move(mnp.support);
  if (sol.distance == 0.0 && sol.basis.empty()) {
    auto hull = geom::convex_hull(s);
    sol.basis = origin_triangle(hull);
    if (sol.basis.empty()) {
      // Origin on the hull boundary: it is the closest point; find the
      // segment (or vertex) realizing it.
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < hull.size(); ++i) {
        const geom::Vec2 a = hull[i];
        const geom::Vec2 b = hull[(i + 1) % hull.size()];
        const double d2 = geom::point_segment_dist2({0.0, 0.0}, a, b);
        if (d2 < best) {
          best = d2;
          sol.basis = {a, b};
        }
      }
    }
  }
  std::sort(sol.basis.begin(), sol.basis.end());
  sol.basis.erase(std::unique(sol.basis.begin(), sol.basis.end()),
                  sol.basis.end());
  // Canonicalize the witness point from the sorted basis.
  if (sol.distance > 0.0) {
    if (sol.basis.size() == 1) {
      sol.point = sol.basis[0];
    } else if (sol.basis.size() == 2) {
      sol.point =
          geom::closest_point_on_segment_to_origin(sol.basis[0], sol.basis[1]);
    }
    sol.distance = geom::norm(sol.point);
  } else {
    sol.point = {0.0, 0.0};
  }
  return sol;
}

PolytopeDistance::Solution PolytopeDistance::from_basis(
    std::span<const Element> b) const {
  return solve(b);  // solve() is already exact and canonical on small sets
}

}  // namespace lpt::problems
