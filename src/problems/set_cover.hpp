// Set cover via hitting-set duality (paper Section 1.4 / end of Section 4).
//
// Given (X, S) with union(S) = X, a set cover corresponds to a hitting set
// of the dual system (Y, M): Y = set indices {0..s-1}, M_i = { j : i ∈ S_j }
// for each element i of X.  The paper solves set cover by running the
// Hitting Set Algorithm on the dual; this module provides the transform and
// quality baselines on the primal side.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "problems/hitting_set_problem.hpp"

namespace lpt::problems {

/// Build the dual hitting-set system of a set-cover instance.
/// Requires every element of X to be covered by at least one set.
std::shared_ptr<SetSystem> dual_of_set_cover(const SetSystem& cover_instance);

/// Verify that choosing the sets `chosen` (indices into S) covers X.
bool is_set_cover(const SetSystem& instance,
                  std::span<const std::uint32_t> chosen);

/// Classic greedy set cover (ln n approximation) — quality baseline.
std::vector<std::uint32_t> greedy_set_cover(const SetSystem& instance);

}  // namespace lpt::problems
