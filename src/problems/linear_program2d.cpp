#include "problems/linear_program2d.hpp"

#include <algorithm>
#include <cmath>

namespace lpt::problems {

LinearProgram2D::Solution LinearProgram2D::solve(
    std::span<const Element> s) const {
  auto res = solver_.solve_with_basis(s);
  Solution sol;
  sol.basis = std::move(res.basis);
  std::sort(sol.basis.begin(), sol.basis.end());
  sol.basis.erase(std::unique(sol.basis.begin(), sol.basis.end()),
                  sol.basis.end());
  // Canonicalize: re-derive the value from the sorted basis so Solutions
  // with equal bases are bit-identical (the basis determines the optimum).
  sol.value = res.value.infeasible ? res.value : solver_.solve(sol.basis);
  return sol;
}

LinearProgram2D::Solution LinearProgram2D::from_basis(
    std::span<const Element> b) const {
  if (b.size() <= 2) {
    Solution sol;
    sol.basis.assign(b.begin(), b.end());
    std::sort(sol.basis.begin(), sol.basis.end());
    sol.basis.erase(std::unique(sol.basis.begin(), sol.basis.end()),
                    sol.basis.end());
    sol.value = solver_.solve(sol.basis);
    // Constraints slack at the small-set optimum are not part of the basis.
    std::vector<Element> binding;
    for (const auto& h : sol.basis) {
      const double slack = h.b - geom::dot(h.a, sol.value.point);
      if (std::abs(slack) <= 1e-6 * h.scale()) binding.push_back(h);
    }
    if (binding.size() != sol.basis.size()) {
      sol.basis = std::move(binding);
      sol.value = solver_.solve(sol.basis);
    }
    return sol;
  }
  return solve(b);
}

bool LinearProgram2D::value_less(const Solution& a,
                                 const Solution& b) const noexcept {
  if (a.value.infeasible != b.value.infeasible) return !a.value.infeasible;
  if (a.value.infeasible) return false;
  const double scale = std::max(
      {std::abs(a.value.objective), std::abs(b.value.objective), 1.0});
  if (a.value.objective < b.value.objective - 1e-9 * scale) return true;
  if (b.value.objective < a.value.objective - 1e-9 * scale) return false;
  // Same objective: order by the canonical point (unique-solution order).
  if (geom::dist(a.value.point, b.value.point) <= 1e-9 * scale) return false;
  return a.value.point < b.value.point;
}

bool LinearProgram2D::same_value(const Solution& a,
                                 const Solution& b) const noexcept {
  if (a.value.infeasible != b.value.infeasible) return false;
  if (a.value.infeasible) return true;
  const double scale = std::max(
      {std::abs(a.value.objective), std::abs(b.value.objective), 1.0});
  return std::abs(a.value.objective - b.value.objective) <= 1e-9 * scale &&
         geom::dist(a.value.point, b.value.point) <= 1e-9 * scale;
}

}  // namespace lpt::problems
