// Smallest enclosing interval on the line — the minimal non-trivial
// LP-type problem (combinatorial dimension 2: the basis is {min, max}).
//
// Useful as the d = 2 point of the dimension ablation and as the simplest
// possible worked example of the problem-adapter contract (everything is
// exact in double arithmetic; no tolerances needed).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

namespace lpt::problems {

struct MinIntervalSolution {
  double lo = 0.0;
  double hi = -1.0;             // hi < lo encodes f(∅) = -infinity
  std::vector<double> basis;    // sorted, {lo} or {lo, hi}

  bool empty() const noexcept { return hi < lo; }
  double length() const noexcept { return empty() ? -1.0 : hi - lo; }

  friend bool operator==(const MinIntervalSolution&,
                         const MinIntervalSolution&) = default;
};

class MinInterval {
 public:
  using Element = double;
  using Solution = MinIntervalSolution;

  std::size_t dimension() const noexcept { return 2; }

  Solution solve(std::span<const Element> s) const {
    Solution sol;
    if (s.empty()) return sol;
    const auto [mn, mx] = std::minmax_element(s.begin(), s.end());
    sol.lo = *mn;
    sol.hi = *mx;
    sol.basis = (*mn == *mx) ? std::vector<double>{*mn}
                             : std::vector<double>{*mn, *mx};
    return sol;
  }

  Solution from_basis(std::span<const Element> b) const { return solve(b); }

  bool violates(const Solution& sol, const Element& e) const noexcept {
    if (sol.empty()) return true;
    return e < sol.lo || e > sol.hi;
  }
  bool value_less(const Solution& a, const Solution& b) const noexcept {
    return a.length() < b.length();
  }
  bool same_value(const Solution& a, const Solution& b) const noexcept {
    return a.length() == b.length();
  }
};

}  // namespace lpt::problems
