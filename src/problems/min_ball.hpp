// Smallest enclosing ball in R^D as an LP-type problem (dimension D+1).
//
// The d-dimensional generalisation of MinDisk (paper Section 1.1: "for d
// dimensions, at most d+1 points are sufficient"); lets the tests and
// benches exercise the engines at several combinatorial dimensions.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "geometry/ball.hpp"

namespace lpt::problems {

template <std::size_t D>
struct MinBallSolution {
  geom::BallD<D> ball{};
  std::vector<geom::VecD<D>> basis;  // sorted support, <= D+1 points

  friend bool operator==(const MinBallSolution&,
                         const MinBallSolution&) = default;
};

template <std::size_t D>
class MinBall {
 public:
  using Element = geom::VecD<D>;
  using Solution = MinBallSolution<D>;

  std::size_t dimension() const noexcept { return D + 1; }

  Solution solve(std::span<const Element> s) const {
    Solution sol;
    if (s.empty()) return sol;
    util::Rng rng(0x6a11 + s.size());
    auto mb = geom::min_ball<D>(s, rng);
    sol.basis = std::move(mb.support);
    canonicalize(sol);
    return sol;
  }

  Solution from_basis(std::span<const Element> b) const {
    if (b.size() > D + 1) return solve(b);
    Solution sol;
    sol.basis.assign(b.begin(), b.end());
    canonicalize(sol);
    return sol;
  }

  bool violates(const Solution& sol, const Element& e) const noexcept {
    return !sol.ball.contains(e);
  }
  bool value_less(const Solution& a, const Solution& b) const noexcept {
    return a.ball.radius < b.ball.radius - tol(a, b);
  }
  bool same_value(const Solution& a, const Solution& b) const noexcept {
    const double d = a.ball.radius - b.ball.radius;
    return (d < 0 ? -d : d) <= tol(a, b);
  }

 private:
  static double tol(const Solution& a, const Solution& b) noexcept {
    const double m =
        a.ball.radius > b.ball.radius ? a.ball.radius : b.ball.radius;
    return 1e-9 * (m + 1.0);
  }

  /// Sort/dedupe the support and re-derive the ball deterministically:
  /// exact min ball of <= D+1 points by best enclosing circumball over
  /// subsets (2^(D+1) subsets of a constant-size set).
  void canonicalize(Solution& sol) const {
    auto& b = sol.basis;
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    if (b.empty()) {
      sol.ball = geom::BallD<D>{};
      return;
    }
    const std::size_t k = b.size();
    geom::BallD<D> best{};
    std::vector<Element> subset;
    std::vector<Element> chosen_support;
    for (std::uint32_t mask = 1; mask < (1u << k); ++mask) {
      subset.clear();
      for (std::size_t i = 0; i < k; ++i) {
        if (mask & (1u << i)) subset.push_back(b[i]);
      }
      auto ball = geom::circumball<D>(
          std::span<const Element>(subset.data(), subset.size()));
      if (ball.empty()) continue;
      bool covers = true;
      for (const auto& p : b) {
        if (!ball.contains(p)) {
          covers = false;
          break;
        }
      }
      if (covers && (best.empty() || ball.radius < best.radius)) {
        best = ball;
        chosen_support = subset;
      }
    }
    sol.ball = best;
    sol.basis = std::move(chosen_support);
  }
};

}  // namespace lpt::problems
