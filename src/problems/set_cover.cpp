#include "problems/set_cover.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace lpt::problems {

std::shared_ptr<SetSystem> dual_of_set_cover(const SetSystem& inst) {
  // Dual universe: one element per set of the primal.  Dual sets: for each
  // primal element i, M_i = indices of primal sets containing i.
  std::vector<std::vector<std::uint32_t>> dual_sets;
  dual_sets.reserve(inst.universe_size());
  for (std::uint32_t i = 0; i < inst.universe_size(); ++i) {
    const auto& m = inst.sets_containing(i);
    LPT_CHECK_MSG(!m.empty(),
                  "set cover instance leaves an element uncovered");
    dual_sets.push_back(m);
  }
  return std::make_shared<SetSystem>(inst.set_count(), std::move(dual_sets));
}

bool is_set_cover(const SetSystem& inst,
                  std::span<const std::uint32_t> chosen) {
  std::vector<std::uint8_t> covered(inst.universe_size(), 0);
  std::size_t count = 0;
  for (auto j : chosen) {
    if (j >= inst.set_count()) return false;
    for (auto x : inst.set(j)) {
      if (!covered[x]) {
        covered[x] = 1;
        ++count;
      }
    }
  }
  return count == inst.universe_size();
}

std::vector<std::uint32_t> greedy_set_cover(const SetSystem& inst) {
  std::vector<std::uint8_t> covered(inst.universe_size(), 0);
  std::size_t remaining = inst.universe_size();
  std::vector<std::uint32_t> chosen;
  while (remaining > 0) {
    std::uint32_t best = UINT32_MAX;
    std::size_t best_gain = 0;
    for (std::uint32_t j = 0; j < inst.set_count(); ++j) {
      std::size_t gain = 0;
      for (auto x : inst.set(j)) {
        if (!covered[x]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = j;
      }
    }
    LPT_CHECK_MSG(best != UINT32_MAX, "greedy_set_cover: uncoverable element");
    chosen.push_back(best);
    for (auto x : inst.set(best)) {
      if (!covered[x]) {
        covered[x] = 1;
        --remaining;
      }
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace lpt::problems
