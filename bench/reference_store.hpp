// The pre-slab per-node element store (one heap vector per node), kept as
// the single bit-exactness / measurement reference for the slab-backed
// gossip::NodeStore — shared by the micro_substrates store showdown and
// tests/test_substrate_csr.cpp, the same arrangement as the LegacyMailbox /
// LegacyHypercubeChannel references.  Semantics must stay frozen: O(1)
// add_original via displace-swap of the first copy, append-order copies,
// in-order Bernoulli filter compaction (one draw per copy, none when a
// node holds no copies).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace lpt::bench {

template <typename Element>
struct ReferenceNodeStore {
  std::vector<Element> elems;
  std::size_t h0_count = 0;

  void add_original(const Element& h) {
    elems.push_back(h);
    const std::size_t last = elems.size() - 1;
    if (last != h0_count) {
      using std::swap;
      swap(elems[h0_count], elems[last]);
    }
    ++h0_count;
  }
  void add_copy(const Element& h) { elems.push_back(h); }

  void filter(util::Rng& rng, double keep_probability) {
    std::size_t w = h0_count;
    for (std::size_t i = h0_count; i < elems.size(); ++i) {
      if (rng.bernoulli(keep_probability)) elems[w++] = elems[i];
    }
    elems.resize(w);
  }
};

}  // namespace lpt::bench
