// LARGE-N — the scaling-regime driver: single big sweep points (default
// n = 2^20 nodes for the low-load engine) where the paper's asymptotic
// guarantees become visible and where, before the slab-backed NodeStore and
// sparse active-node tracking, the per-round O(n) bookkeeping loops
// (stage-B replay scan, filter pass, store-header walks, delivery walks)
// dominated wall time.
//
// For each engine the driver reports wall time, rounds, |H(V)| growth, and
// the sparse-bookkeeping counters (DistributedRunStats): total bookkeeping
// node-touches across the run and the final round's touches, against the
// rounds * n floor the pre-slab engines paid.  Writes BENCH_large_n.json.
//
// Usage: large_n [--i=20] [--ihigh=16] [--reps=1] [--dataset=duo-disk]
//                [--engine=both|low|high] [--parallel-nodes=1]
//                [--shards=0] [--shard-transport=inproc|pipe|socket]
//
// --i sizes the low-load point (n = 2^i nodes on n points; memory stays
// O(n) thanks to filtering).  --ihigh sizes the high-load point separately:
// high load grows |H(V)| by O(d n log n) per round with no filtering, so
// memory — not time — caps its practical size.  --shards routes the
// low-load point's stage-A compute through the shard runtime (bit-identical
// results; the high-load engine has no shard path yet and ignores it).
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "common.hpp"
#include "core/high_load.hpp"
#include "core/low_load.hpp"
#include "obs/obs.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto i_low = static_cast<std::size_t>(cli.get_int("i", 20));
  const auto i_high = static_cast<std::size_t>(cli.get_int("ihigh", 16));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 1));
  const auto parallel_nodes =
      static_cast<std::size_t>(cli.get_int("parallel-nodes", 1));
  const auto shard_cfg = bench::shard_flags(cli);
  const std::string engine = cli.get("engine", "both");
  const auto dataset = bench::dataset_flag(cli);

  bench::banner("Large-n engine: slab store + sparse active-node tracking",
                "n = 2^i sweep points beyond the Figure 2/3 range");

  problems::MinDisk p;
  util::Table table({"engine", "i", "n", "rounds", "wall s", "elems max",
                     "bk total", "bk last", "bk/(rounds*n)"});
  bench::WallTimer wall;
  bench::BenchJson json("large_n");

  auto run_point = [&](const char* name, std::size_t i, auto run_one) {
    const std::size_t n = std::size_t{1} << i;
    util::RunningStat rounds_stat;
    double point_secs = 0.0;
    core::DistributedRunStats last_stats;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const std::uint64_t seed = 1 + rep * 7919;
      util::Rng data_rng(seed * 31 + i);
      const auto pts = workloads::generate_disk_dataset(dataset, n, data_rng);
      bench::WallTimer t;
      last_stats = run_one(pts, n, seed);
      point_secs += t.seconds();
      LPT_CHECK_MSG(last_stats.reached_optimum, "run failed to converge");
      rounds_stat.add(static_cast<double>(last_stats.rounds_to_first));
    }
    const double per_rep = point_secs / static_cast<double>(reps);
    // Peak RSS right after the point: VmHWM is a process-lifetime high
    // water mark, so per-point readings are monotone across points — the
    // trend gate compares matching (series, i) rows, where monotonicity
    // only ever over-reports earlier, smaller points (conservative).
    const auto mem = obs::sample_memory();
    const double floor_ratio =
        static_cast<double>(last_stats.bookkeeping_touches_total) /
        (static_cast<double>(last_stats.rounds_to_first) *
         static_cast<double>(n));
    table.add_row({name, util::fmt(i), util::fmt(n),
                   util::fmt(rounds_stat.mean(), 2), util::fmt(per_rep, 2),
                   util::fmt(last_stats.max_total_elements),
                   util::fmt(static_cast<std::uint64_t>(
                       last_stats.bookkeeping_touches_total)),
                   util::fmt(last_stats.last_round_bookkeeping_touches),
                   util::fmt(floor_ratio, 3)});
    json.add_row(
        name,
        {{"i", static_cast<double>(i)},
         {"n", static_cast<double>(n)},
         {"mean_rounds", rounds_stat.mean()},
         {"wall_per_rep", per_rep},
         {"max_total_elements",
          static_cast<double>(last_stats.max_total_elements)},
         {"bookkeeping_touches_total",
          static_cast<double>(last_stats.bookkeeping_touches_total)},
         {"last_round_bookkeeping_touches",
          static_cast<double>(last_stats.last_round_bookkeeping_touches)},
         {"bookkeeping_per_round_vs_n", floor_ratio},
         {"peak_rss_bytes",
          mem.ok ? static_cast<double>(mem.vm_hwm_bytes) : 0.0}});
  };

  if (engine == "both" || engine == "low") {
    run_point("low_load", i_low,
              [&](std::span<const geom::Vec2> pts, std::size_t n,
                  std::uint64_t seed) {
                core::LowLoadConfig cfg;
                cfg.seed = seed;
                cfg.parallel_nodes = parallel_nodes;
                cfg.shard = shard_cfg;
                return core::run_low_load(p, pts, n, cfg).stats;
              });
  }
  if (engine == "both" || engine == "high") {
    run_point("high_load", i_high,
              [&](std::span<const geom::Vec2> pts, std::size_t n,
                  std::uint64_t seed) {
                core::HighLoadConfig cfg;
                cfg.seed = seed;
                cfg.parallel_nodes = parallel_nodes;
                return core::run_high_load(p, pts, n, cfg).stats;
              });
  }

  table.print();
  std::printf(
      "\nbk total = bookkeeping node-touches summed over rounds (stage-B\n"
      "replay, delivery walks, filter pass, pull/occupied lists); the\n"
      "pre-slab engines paid a fixed >= 4n per round on those loops, i.e.\n"
      "bk/(rounds*n) >= 4.  Per-node sampling/compute work is inherent to\n"
      "the algorithms and not counted.\n");

  json.set("wall_seconds", wall.seconds());
  json.set("reps", static_cast<std::uint64_t>(reps));
  json.set("i", static_cast<std::uint64_t>(i_low));
  json.set("ihigh", static_cast<std::uint64_t>(i_high));
  json.set("dataset", workloads::dataset_name(dataset));
  json.set("parallel_nodes", static_cast<std::uint64_t>(parallel_nodes));
  json.set("shards", static_cast<std::uint64_t>(shard_cfg.shards));
  {
    const auto mem = obs::sample_memory();
    json.set("peak_rss_bytes", static_cast<std::uint64_t>(
                                   mem.ok ? mem.vm_hwm_bytes : 0));
  }
  const auto path = json.write();
  if (!path.empty()) std::printf("\n[bench-json] wrote %s\n", path.c_str());
  return 0;
}
