// BASE — The baseline landscape of Section 1.1: round counts of the gossip
// engines (Theorems 3-4, O(d log n)) against the classic distributed
// Clarkson on a hypercube (O(d log^2 n)) and the sequential baselines
// (Clarkson iteration counts, MSW violation-test counts).
//
// Usage: baselines [--imin=6] [--imax=12] [--reps=5]
#include <cstdio>

#include "common.hpp"
#include "core/clarkson.hpp"
#include "core/high_load.hpp"
#include "core/hypercube_clarkson.hpp"
#include "core/low_load.hpp"
#include "core/msw.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto imin = static_cast<std::size_t>(cli.get_int("imin", 6));
  const auto imax = static_cast<std::size_t>(cli.get_int("imax", 12));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));

  bench::banner("Baselines: gossip O(d log n) vs hypercube O(d log^2 n)",
                "Hinnenthal-Scheideler-Struijs SPAA'19, Section 1.1");

  problems::MinDisk p;
  util::Table table({"i", "n", "low-load rounds", "high-load rounds",
                     "hypercube rounds", "hc/low ratio", "seq iters",
                     "msw viol. tests / n"});
  std::vector<double> xs, low_r, hc_r;
  for (std::size_t i = imin; i <= imax; ++i) {
    const std::size_t n = std::size_t{1} << i;
    util::RunningStat low, high, hc, seq, msw;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      util::Rng drng(rep * 13 + i);
      const auto pts = workloads::generate_disk_dataset(
          workloads::DiskDataset::kTripleDisk, n, drng);

      core::LowLoadConfig lcfg;
      lcfg.seed = rep + 1;
      const auto lres = core::run_low_load(p, pts, n, lcfg);
      LPT_CHECK(lres.stats.reached_optimum);
      low.add(static_cast<double>(lres.stats.rounds_to_first));

      core::HighLoadConfig hcfg;
      hcfg.seed = rep + 1;
      const auto hres = core::run_high_load(p, pts, n, hcfg);
      LPT_CHECK(hres.stats.reached_optimum);
      high.add(static_cast<double>(hres.stats.rounds_to_first));

      const auto cres = core::run_hypercube_clarkson(p, pts, n, rep + 1);
      LPT_CHECK(cres.converged);
      hc.add(static_cast<double>(cres.rounds));

      util::Rng srng(rep * 29 + 5);
      const auto sres = core::clarkson_solve(p, pts, srng);
      seq.add(static_cast<double>(sres.stats.iterations));

      util::Rng mrng(rep * 31 + 7);
      const auto mres = core::msw_solve(p, pts, mrng);
      msw.add(static_cast<double>(mres.stats.violation_tests) /
              static_cast<double>(n));
    }
    table.add_row({util::fmt(i), util::fmt(n), util::fmt(low.mean(), 1),
                   util::fmt(high.mean(), 1), util::fmt(hc.mean(), 1),
                   util::fmt(hc.mean() / low.mean(), 2),
                   util::fmt(seq.mean(), 1), util::fmt(msw.mean(), 2)});
    xs.push_back(static_cast<double>(i));
    low_r.push_back(low.mean());
    hc_r.push_back(hc.mean());
  }
  table.print();
  std::printf("\n");
  bench::report_log_fit("low-load", xs, low_r);
  // For the hypercube, fit rounds against log^2: report rounds / log2(n)
  // which should itself grow linearly in log2(n).
  std::vector<double> hc_norm;
  for (std::size_t k = 0; k < xs.size(); ++k) hc_norm.push_back(hc_r[k] / xs[k]);
  bench::report_log_fit("hc/log2(n)", xs, hc_norm);
  std::printf(
      "\nExpected: low-load rounds grow linearly in log2(n) while the\n"
      "hypercube baseline grows like log^2 (its normalized column has a\n"
      "positive slope), so the hc/low ratio widens with n — the gap the\n"
      "paper's algorithms close.\n");
  return 0;
}
