// T4W — Empirical validation of Theorem 4 for the High-Load Clarkson
// Algorithm: the accelerated variant (Section 3.1) trades per-round work
// for rounds by pushing each basis C times.
//
//   * C = 1:           O(d log n) rounds at O(d log n) work,
//   * C = log^eps n:   O(d log n / log log n) rounds at O(d log^{1+eps} n).
//
// The bench sweeps C at fixed n and reports rounds, max work per round,
// and total load growth; Lemma 17 predicts rounds ~ d log n / log(C+1).
//
// Usage: thm4_accelerated [--i=12] [--reps=5] [--cmax=16] [--threads=1]
//                         [--parallel-nodes=1]
//
// --threads parallelizes the repetitions (bit-identical results for any
// thread count); --parallel-nodes threads the per-node solves inside each
// simulation.  Writes BENCH_thm4_accelerated.json.
#include <cmath>
#include <cstdio>

#include "bench_json.hpp"
#include "common.hpp"
#include "core/high_load.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto i = static_cast<std::size_t>(cli.get_int("i", 12));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));
  const auto cmax = static_cast<std::size_t>(cli.get_int("cmax", 16));
  const std::size_t threads = bench::threads_flag(cli);
  const auto parallel_nodes =
      static_cast<std::size_t>(cli.get_int("parallel-nodes", 1));
  const std::size_t n = std::size_t{1} << i;

  bench::banner("Theorem 4 / Section 3.1: accelerated High-Load Clarkson",
                "Hinnenthal-Scheideler-Struijs SPAA'19, Theorem 4, Lemma 17");

  problems::MinDisk p;
  std::printf("n = 2^%zu = %zu nodes, triple-disk dataset, %zu reps\n\n", i,
              n, reps);
  bench::WallTimer wall;
  bench::BenchJson json("thm4_accelerated");
  std::uint64_t total_rounds = 0;

  util::Table table({"C", "avg rounds", "rounds*log(C+1)", "max work/round",
                     "max |H(V)|/|H|"});
  for (std::size_t c = 1; c <= cmax; c *= 2) {
    std::vector<double> work(reps, 0.0);
    std::vector<double> load(reps, 0.0);
    const auto rounds = bench::average_runs_indexed(
        reps,
        [&](std::size_t rep, std::uint64_t seed) {
          util::Rng data_rng(seed * 131 + 7);
          const auto pts = workloads::generate_disk_dataset(
              workloads::DiskDataset::kTripleDisk, n, data_rng);
          core::HighLoadConfig cfg;
          cfg.seed = seed;
          cfg.push_copies = c;
          cfg.parallel_nodes = parallel_nodes;
          const auto res = core::run_high_load(p, pts, n, cfg);
          LPT_CHECK(res.stats.reached_optimum);
          work[rep] = res.stats.max_work_per_round;
          load[rep] = static_cast<double>(res.stats.max_total_elements) /
                      static_cast<double>(pts.size());
          return static_cast<double>(res.stats.rounds_to_first);
        },
        1, threads);
    util::RunningStat work_stat, load_stat;
    for (const double w : work) work_stat.add(w);
    for (const double l : load) load_stat.add(l);
    total_rounds += static_cast<std::uint64_t>(rounds.sum());
    const double normalized =
        rounds.mean() * std::log2(static_cast<double>(c + 1));
    table.add_row({util::fmt(c), util::fmt(rounds.mean(), 2),
                   util::fmt(normalized, 2), util::fmt(work_stat.max(), 0),
                   util::fmt(load_stat.max(), 2)});
    json.add_row("sweep", {{"c", static_cast<double>(c)},
                           {"mean_rounds", rounds.mean()},
                           {"stddev", rounds.stddev()},
                           {"rounds_x_log_c1", normalized},
                           {"max_work_per_round", work_stat.max()},
                           {"max_load_ratio", load_stat.max()}});
  }
  table.print();
  std::printf(
      "\nLemma 17 predicts rounds ~ d log(n) / log(C+1): the third column\n"
      "(rounds * log2(C+1)) should stay roughly flat while work grows "
      "with C.\n");

  const double secs = wall.seconds();
  json.set("wall_seconds", secs);
  json.set("threads", static_cast<std::uint64_t>(threads));
  json.set("parallel_nodes", static_cast<std::uint64_t>(parallel_nodes));
  json.set("reps", static_cast<std::uint64_t>(reps));
  json.set("i", static_cast<std::uint64_t>(i));
  json.set("cmax", static_cast<std::uint64_t>(cmax));
  json.set("rounds_per_sec",
           secs > 0.0 ? static_cast<double>(total_rounds) / secs : 0.0);
  const auto path = json.write();
  if (!path.empty()) std::printf("\n[bench-json] wrote %s\n", path.c_str());
  return 0;
}
