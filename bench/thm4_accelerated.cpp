// T4W — Empirical validation of Theorem 4 for the High-Load Clarkson
// Algorithm: the accelerated variant (Section 3.1) trades per-round work
// for rounds by pushing each basis C times.
//
//   * C = 1:           O(d log n) rounds at O(d log n) work,
//   * C = log^eps n:   O(d log n / log log n) rounds at O(d log^{1+eps} n).
//
// The bench sweeps C at fixed n and reports rounds, max work per round,
// and total load growth; Lemma 17 predicts rounds ~ d log n / log(C+1).
//
// Usage: thm4_accelerated [--i=12] [--reps=5] [--cmax=16]
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/high_load.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto i = static_cast<std::size_t>(cli.get_int("i", 12));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));
  const auto cmax = static_cast<std::size_t>(cli.get_int("cmax", 16));
  const std::size_t n = std::size_t{1} << i;

  bench::banner("Theorem 4 / Section 3.1: accelerated High-Load Clarkson",
                "Hinnenthal-Scheideler-Struijs SPAA'19, Theorem 4, Lemma 17");

  problems::MinDisk p;
  std::printf("n = 2^%zu = %zu nodes, triple-disk dataset, %zu reps\n\n", i,
              n, reps);
  util::Table table({"C", "avg rounds", "rounds*log(C+1)", "max work/round",
                     "max |H(V)|/|H|"});
  for (std::size_t c = 1; c <= cmax; c *= 2) {
    util::RunningStat rounds, work, load;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      util::Rng data_rng(rep * 131 + 7);
      const auto pts = workloads::generate_disk_dataset(
          workloads::DiskDataset::kTripleDisk, n, data_rng);
      core::HighLoadConfig cfg;
      cfg.seed = rep + 1;
      cfg.push_copies = c;
      const auto res = core::run_high_load(p, pts, n, cfg);
      LPT_CHECK(res.stats.reached_optimum);
      rounds.add(static_cast<double>(res.stats.rounds_to_first));
      work.add(res.stats.max_work_per_round);
      load.add(static_cast<double>(res.stats.max_total_elements) /
               static_cast<double>(pts.size()));
    }
    table.add_row(
        {util::fmt(c), util::fmt(rounds.mean(), 2),
         util::fmt(rounds.mean() * std::log2(static_cast<double>(c + 1)), 2),
         util::fmt(work.max(), 0), util::fmt(load.max(), 2)});
  }
  table.print();
  std::printf(
      "\nLemma 17 predicts rounds ~ d log(n) / log(C+1): the third column\n"
      "(rounds * log2(C+1)) should stay roughly flat while work grows "
      "with C.\n");
  return 0;
}
