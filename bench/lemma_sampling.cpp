// L1 — Empirical validation of the paper's sampling machinery:
//
//   * Lemma 1:  E|V_R| <= d (m - r) / (r + 1) for random multisets R,
//   * Lemma 15: the Chernoff-style tail P[|W_i| >= 4 gamma d m / (n(r+1))]
//               <= 2^-gamma (the paper's main technical innovation),
//   * Lemma 11: the Section 2.1 pull sampler succeeds w.h.p., and
//   * ablation: pull-based vs idealized uniform sampling round counts.
//
// Usage: lemma_sampling [--m=4096] [--trials=400]
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/low_load.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("m", 4096));
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 400));

  bench::banner("Lemmas 1, 11, 15: sampling bounds",
                "Hinnenthal-Scheideler-Struijs SPAA'19, Sections 1-3");

  problems::MinDisk p;
  const std::size_t d = p.dimension();
  util::Rng rng(12345);
  const auto pts = workloads::generate_disk_dataset(
      workloads::DiskDataset::kTripleDisk, m, rng);

  // --- Lemma 1: E|V| vs the bound. ---
  std::printf("Lemma 1: E|V_R| <= d(m-r)/(r+1), m = %zu, d = %zu\n\n", m, d);
  util::Table l1({"r", "measured E|V|", "bound", "ratio"});
  for (std::size_t r : {8ul, 16ul, 32ul, 54ul, 128ul, 256ul}) {
    util::RunningStat v;
    for (std::size_t tr = 0; tr < trials; ++tr) {
      std::vector<geom::Vec2> sample;
      for (auto idx : rng.sample_indices(m, r)) sample.push_back(pts[idx]);
      const auto sol = p.solve(sample);
      v.add(static_cast<double>(core::count_violators(p, sol, pts)));
    }
    const double bound = static_cast<double>(d) * static_cast<double>(m - r) /
                         static_cast<double>(r + 1);
    l1.add_row({util::fmt(r), util::fmt(v.mean(), 2), util::fmt(bound, 2),
                util::fmt(v.mean() / bound, 3)});
  }
  l1.print();

  // --- Lemma 15: tail of |W_i| (per-node violator count). ---
  const std::size_t n_nodes = 256;
  const std::size_t r = 6 * d * d;
  std::printf("\nLemma 15: P[|W_i| >= 4 gamma d m / (n(r+1))] <= 2^-gamma, "
              "n = %zu, r = %zu\n\n", n_nodes, r);
  util::Table l15({"gamma", "threshold", "measured tail", "bound 2^-gamma"});
  std::vector<double> w_samples;
  util::Rng wrng(777);
  for (std::size_t tr = 0; tr < trials; ++tr) {
    std::vector<geom::Vec2> sample;
    for (auto idx : wrng.sample_indices(m, r)) sample.push_back(pts[idx]);
    const auto sol = p.solve(sample);
    // A uniformly random 1/n fraction of H is "node v_i's elements".
    std::size_t w = 0;
    for (const auto& h : pts) {
      if (wrng.below(n_nodes) == 0 && p.violates(sol, h)) ++w;
    }
    w_samples.push_back(static_cast<double>(w));
  }
  for (double gamma : {1.0, 2.0, 3.0, 4.0}) {
    const double threshold = 4.0 * gamma * static_cast<double>(d) *
                             static_cast<double>(m) /
                             (static_cast<double>(n_nodes) *
                              static_cast<double>(r + 1));
    std::size_t exceed = 0;
    for (double w : w_samples) exceed += (w >= threshold) ? 1 : 0;
    l15.add_row({util::fmt(gamma, 0), util::fmt(threshold, 2),
                 util::fmt(static_cast<double>(exceed) /
                               static_cast<double>(w_samples.size()),
                           4),
                 util::fmt(std::pow(2.0, -gamma), 4)});
  }
  l15.print();

  // --- Lemma 11 + ablation: pull sampler success and rounds impact. ---
  std::printf("\nLemma 11 + sampler ablation on a full Low-Load run "
              "(n = 1024, triple-disk):\n\n");
  util::Table ab({"sampler", "avg rounds", "sampling failures/attempts"});
  for (auto mode : {core::SamplingMode::kPullBased,
                    core::SamplingMode::kIdealized}) {
    util::RunningStat rounds;
    double fail = 0, att = 0;
    for (std::size_t rep = 0; rep < 5; ++rep) {
      util::Rng drng(rep * 11 + 1);
      const auto data = workloads::generate_disk_dataset(
          workloads::DiskDataset::kTripleDisk, 1024, drng);
      core::LowLoadConfig cfg;
      cfg.seed = rep + 1;
      cfg.sampling = mode;
      cfg.strict_sampling = (mode == core::SamplingMode::kPullBased);
      const auto res = core::run_low_load(p, data, 1024, cfg);
      LPT_CHECK(res.stats.reached_optimum);
      rounds.add(static_cast<double>(res.stats.rounds_to_first));
      fail += static_cast<double>(res.stats.sampling_failures);
      att += static_cast<double>(res.stats.sampling_attempts);
    }
    ab.add_row({mode == core::SamplingMode::kPullBased ? "pull (Sec 2.1)"
                                                       : "idealized",
                util::fmt(rounds.mean(), 2),
                util::fmt(att > 0 ? fail / att : 0.0, 4)});
  }
  ab.print();
  std::printf(
      "\nExpected: E|V| ratios near (but Monte-Carlo-noise around) 1.0 — "
      "for the\nminimum enclosing disk the optimal basis almost surely has "
      "size 3, which\nmakes Lemma 1's counting argument essentially tight; "
      "the Lemma 15 tail\ndecays at least as fast as 2^-gamma; the pull "
      "sampler's failure rate is\nnear zero and costs no extra rounds over "
      "idealized uniform sampling.\n");
  return 0;
}
