#include "bench_json.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lpt::bench {

namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

BenchJson::BenchJson(std::string name) : name_(std::move(name)) {}

BenchJson& BenchJson::set(const std::string& key, double value) {
  scalars_.push_back({key, json_number(value)});
  return *this;
}

BenchJson& BenchJson::set(const std::string& key, std::uint64_t value) {
  scalars_.push_back({key, std::to_string(value)});
  return *this;
}

BenchJson& BenchJson::set(const std::string& key, const std::string& value) {
  scalars_.push_back({key, json_string(value)});
  return *this;
}

BenchJson& BenchJson::add_row(
    const std::string& series,
    std::initializer_list<std::pair<const char*, double>> fields) {
  Series* s = nullptr;
  for (auto& existing : series_) {
    if (existing.key == series) {
      s = &existing;
      break;
    }
  }
  if (!s) {
    series_.push_back({series, {}});
    s = &series_.back();
  }
  std::string row = "{";
  bool first = true;
  for (const auto& [k, v] : fields) {
    if (!first) row += ", ";
    first = false;
    row += json_string(k);
    row += ": ";
    row += json_number(v);
  }
  row += "}";
  s->rows.push_back(std::move(row));
  return *this;
}

std::string BenchJson::to_string() const {
  std::string out = "{\n  \"bench\": " + json_string(name_);
  for (const auto& sc : scalars_) {
    out += ",\n  " + json_string(sc.key) + ": " + sc.rendered;
  }
  for (const auto& se : series_) {
    out += ",\n  " + json_string(se.key) + ": [";
    for (std::size_t i = 0; i < se.rows.size(); ++i) {
      out += (i ? ",\n    " : "\n    ") + se.rows[i];
    }
    out += "\n  ]";
  }
  out += "\n}\n";
  return out;
}

std::string BenchJson::write(const std::string& dir) const {
  std::string d = dir;
  if (d.empty()) {
    if (const char* env = std::getenv("LPT_BENCH_JSON_DIR")) d = env;
  }
  std::string path = d.empty() ? "" : d + "/";
  path += "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return "";
  const std::string doc = to_string();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok ? path : "";
}

WallTimer::WallTimer()
    : start_ns_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())) {}

double WallTimer::seconds() const {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return static_cast<double>(now - start_ns_) * 1e-9;
}

}  // namespace lpt::bench
