// T3W — Empirical validation of Theorem 3's resource bounds for the
// Low-Load Clarkson Algorithm, plus the filtering ablation:
//
//   * max communication work per node per round = O(d^2 + log n),
//   * total load |H(V)| = O(|H_0|) at all times (Lemma 9),
//   * switching filtering off lets |H(V)| grow far beyond O(|H_0|) —
//     the design choice Lemma 9 depends on.
//
// Usage: thm3_work [--imin=6] [--imax=12] [--reps=5]
#include <cstdio>

#include "common.hpp"
#include "core/low_load.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto imin = static_cast<std::size_t>(cli.get_int("imin", 6));
  const auto imax = static_cast<std::size_t>(cli.get_int("imax", 12));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));

  bench::banner("Theorem 3: Low-Load work and load bounds (+ ablation)",
                "Hinnenthal-Scheideler-Struijs SPAA'19, Theorem 3 / Lemma 9");

  problems::MinDisk p;
  const std::size_t d = p.dimension();

  std::printf("Work bound: the Section 2.1 sampler issues c(6d^2 + log n) "
              "pulls, d = %zu\n\n", d);
  util::Table table({"i", "n", "max work/round", "bound 2(6d^2+log n)+pad",
                     "max |H(V)| / |H0|", "rounds"});
  for (std::size_t i = imin; i <= imax; ++i) {
    const std::size_t n = std::size_t{1} << i;
    util::RunningStat work, load_ratio, rounds;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      util::Rng data_rng(rep * 101 + i);
      const auto pts = workloads::generate_disk_dataset(
          workloads::DiskDataset::kTripleDisk, n, data_rng);
      core::LowLoadConfig cfg;
      cfg.seed = rep + 1;
      const auto res = core::run_low_load(p, pts, n, cfg);
      LPT_CHECK(res.stats.reached_optimum);
      work.add(res.stats.max_work_per_round);
      load_ratio.add(static_cast<double>(res.stats.max_total_elements) /
                     static_cast<double>(res.stats.initial_total_elements));
      rounds.add(static_cast<double>(res.stats.rounds_to_first));
    }
    const double bound =
        2.0 * (6.0 * d * d + util::ceil_log2(n) + 1) + 16;
    table.add_row({util::fmt(i), util::fmt(n), util::fmt(work.max(), 0),
                   util::fmt(bound, 0), util::fmt(load_ratio.max(), 2),
                   util::fmt(rounds.mean(), 1)});
  }
  table.print();

  std::printf("\nFiltering ablation over a 40-round horizon (Lemma 9 is "
              "what keeps |H(V)| = O(|H0|)):\n");
  util::Table ab({"filtering", "n", "rounds simulated", "max |H(V)| / |H0|"});
  const std::size_t n = std::size_t{1} << std::min<std::size_t>(imax, 10);
  const std::size_t horizon = 40;
  for (bool filtering : {true, false}) {
    util::RunningStat ratio;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      util::Rng data_rng(rep * 7 + 3);
      const auto pts = workloads::generate_disk_dataset(
          workloads::DiskDataset::kTriangle, n, data_rng);
      core::LowLoadConfig cfg;
      cfg.seed = rep + 1;
      cfg.filtering = filtering;
      cfg.min_rounds = horizon;  // keep the dynamics running past success
      const auto res = core::run_low_load(p, pts, n, cfg);
      ratio.add(static_cast<double>(res.stats.max_total_elements) /
                static_cast<double>(res.stats.initial_total_elements));
    }
    ab.add_row({filtering ? "on" : "off", util::fmt(n), util::fmt(horizon),
                util::fmt(ratio.max(), 2)});
  }
  ab.print();
  std::printf("\nExpected: with filtering the load ratio stays O(1) "
              "(Lemma 9's constant is ~5);\nwithout it copies accumulate "
              "round over round.\n");
  return 0;
}
