// T3W — Empirical validation of Theorem 3's resource bounds for the
// Low-Load Clarkson Algorithm, plus the filtering ablation:
//
//   * max communication work per node per round = O(d^2 + log n),
//   * total load |H(V)| = O(|H_0|) at all times (Lemma 9),
//   * switching filtering off lets |H(V)| grow far beyond O(|H_0|) —
//     the design choice Lemma 9 depends on.
//
// Usage: thm3_work [--imin=6] [--imax=12] [--reps=5] [--threads=1]
//                  [--parallel-nodes=1]
//
// --threads parallelizes the repetitions (bit-identical results for any
// thread count); --parallel-nodes threads the per-node solves inside each
// simulation.  Writes BENCH_thm3_work.json.
#include <cstdio>

#include "bench_json.hpp"
#include "common.hpp"
#include "core/low_load.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto imin = static_cast<std::size_t>(cli.get_int("imin", 6));
  const auto imax = static_cast<std::size_t>(cli.get_int("imax", 12));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));
  const std::size_t threads = bench::threads_flag(cli);
  const auto parallel_nodes =
      static_cast<std::size_t>(cli.get_int("parallel-nodes", 1));

  bench::banner("Theorem 3: Low-Load work and load bounds (+ ablation)",
                "Hinnenthal-Scheideler-Struijs SPAA'19, Theorem 3 / Lemma 9");

  problems::MinDisk p;
  const std::size_t d = p.dimension();
  bench::WallTimer wall;
  bench::BenchJson json("thm3_work");
  std::uint64_t total_rounds = 0;

  std::printf("Work bound: the Section 2.1 sampler issues c(6d^2 + log n) "
              "pulls, d = %zu\n\n", d);
  util::Table table({"i", "n", "max work/round", "bound 2(6d^2+log n)+pad",
                     "max |H(V)| / |H0|", "rounds"});
  for (std::size_t i = imin; i <= imax; ++i) {
    const std::size_t n = std::size_t{1} << i;
    std::vector<double> work(reps, 0.0);
    std::vector<double> load(reps, 0.0);
    const auto rounds = bench::average_runs_indexed(
        reps,
        [&](std::size_t rep, std::uint64_t seed) {
          util::Rng data_rng(seed * 101 + i);
          const auto pts = workloads::generate_disk_dataset(
              workloads::DiskDataset::kTripleDisk, n, data_rng);
          core::LowLoadConfig cfg;
          cfg.seed = seed;
          cfg.parallel_nodes = parallel_nodes;
          const auto res = core::run_low_load(p, pts, n, cfg);
          LPT_CHECK(res.stats.reached_optimum);
          work[rep] = res.stats.max_work_per_round;
          load[rep] = static_cast<double>(res.stats.max_total_elements) /
                      static_cast<double>(res.stats.initial_total_elements);
          return static_cast<double>(res.stats.rounds_to_first);
        },
        1, threads);
    util::RunningStat work_stat, load_stat;
    for (const double w : work) work_stat.add(w);
    for (const double l : load) load_stat.add(l);
    total_rounds += static_cast<std::uint64_t>(rounds.sum());
    const double bound =
        2.0 * (6.0 * d * d + util::ceil_log2(n) + 1) + 16;
    table.add_row({util::fmt(i), util::fmt(n), util::fmt(work_stat.max(), 0),
                   util::fmt(bound, 0), util::fmt(load_stat.max(), 2),
                   util::fmt(rounds.mean(), 1)});
    json.add_row("sweep", {{"i", static_cast<double>(i)},
                           {"n", static_cast<double>(n)},
                           {"max_work_per_round", work_stat.max()},
                           {"work_bound", bound},
                           {"max_load_ratio", load_stat.max()},
                           {"mean_rounds", rounds.mean()}});
  }
  table.print();

  std::printf("\nFiltering ablation over a 40-round horizon (Lemma 9 is "
              "what keeps |H(V)| = O(|H0|)):\n");
  util::Table ab({"filtering", "n", "rounds simulated", "max |H(V)| / |H0|"});
  const std::size_t n = std::size_t{1} << std::min<std::size_t>(imax, 10);
  const std::size_t horizon = 40;
  for (bool filtering : {true, false}) {
    std::vector<double> ratio(reps, 0.0);
    bench::average_runs_indexed(
        reps,
        [&](std::size_t rep, std::uint64_t seed) {
          util::Rng data_rng(seed * 7 + 3);
          const auto pts = workloads::generate_disk_dataset(
              workloads::DiskDataset::kTriangle, n, data_rng);
          core::LowLoadConfig cfg;
          cfg.seed = seed;
          cfg.filtering = filtering;
          cfg.min_rounds = horizon;  // keep the dynamics past success
          cfg.parallel_nodes = parallel_nodes;
          const auto res = core::run_low_load(p, pts, n, cfg);
          ratio[rep] = static_cast<double>(res.stats.max_total_elements) /
                       static_cast<double>(res.stats.initial_total_elements);
          return ratio[rep];
        },
        1, threads);
    util::RunningStat ratio_stat;
    for (const double x : ratio) ratio_stat.add(x);
    ab.add_row({filtering ? "on" : "off", util::fmt(n), util::fmt(horizon),
                util::fmt(ratio_stat.max(), 2)});
    json.add_row("filtering_ablation",
                 {{"filtering", filtering ? 1.0 : 0.0},
                  {"n", static_cast<double>(n)},
                  {"horizon", static_cast<double>(horizon)},
                  {"max_load_ratio", ratio_stat.max()}});
  }
  ab.print();
  std::printf("\nExpected: with filtering the load ratio stays O(1) "
              "(Lemma 9's constant is ~5);\nwithout it copies accumulate "
              "round over round.\n");

  const double secs = wall.seconds();
  json.set("wall_seconds", secs);
  json.set("threads", static_cast<std::uint64_t>(threads));
  json.set("parallel_nodes", static_cast<std::uint64_t>(parallel_nodes));
  json.set("reps", static_cast<std::uint64_t>(reps));
  json.set("imin", static_cast<std::uint64_t>(imin));
  json.set("imax", static_cast<std::uint64_t>(imax));
  json.set("rounds_per_sec",
           secs > 0.0 ? static_cast<double>(total_rounds) / secs : 0.0);
  const auto path = json.write();
  if (!path.empty()) std::printf("\n[bench-json] wrote %s\n", path.c_str());
  return 0;
}
