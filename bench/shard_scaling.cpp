// SHARD-SCALING — wall time of the sharded low-load engine versus shard
// count, over all three transports, with every sharded run hard-gated
// bit-identical to the serial baseline (solution, rounds, and all
// DistributedRunStats counters — the shard runtime's deterministic-merge
// contract, enforced here with LPT_CHECK so a divergence fails the bench,
// not just a test).
//
// Usage: shard_scaling [--i=10] [--reps=3] [--dataset=duo-disk]
//                      [--shard-counts=1,2,4]
//                      [--transports=inproc,pipe,socket]
//                      [--kill-shard=1] [--kill-after-frames=2]
//
// Writes BENCH_shard_scaling.json: a "serial" series with the baseline
// point and one series per transport ("inproc" / "pipe" / "socket") with
// one row per shard count carrying wall_per_rep and speedup_vs_serial.  On
// a 1-core runner the interesting number is the *overhead* (speedup < 1:
// frame encode/decode + transport cost); on multicore the per-shard
// stage-A compute overlaps.  The socket rows run the full multi-machine
// topology (loopback TCP, workers bootstrapped over the wire) on one box.
//
// The fault column: unless --kill-shard=-1, the largest sweep point is
// rerun with a scripted SIGKILL of worker --kill-shard after it has been
// sent --kill-after-frames task frames (FaultyTransport; a real forked
// child dies on the pipe and socket transports — the socket recovery is a
// genuine respawn-over-reconnect: a new worker dials in and is
// re-bootstrapped).  The run recovers via the default respawn policy and
// is *still* hard-gated bit-identical to the serial baseline; the "fault"
// series records recovery_wall (wall_per_rep of the faulted run) and
// recovery_overhead (vs the fault-free run of the same configuration).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common.hpp"
#include "core/low_load.hpp"
#include "obs/obs.hpp"
#include "shard/fault.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

namespace {

using namespace lpt;

std::vector<std::size_t> parse_counts(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                   : comma - pos);
    if (!tok.empty()) out.push_back(static_cast<std::size_t>(std::stoul(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  LPT_CHECK_MSG(!out.empty(), "--shard-counts parsed to nothing");
  return out;
}

void check_identical(const core::DistributedLpResult<problems::MinDisk>& a,
                     const core::DistributedLpResult<problems::MinDisk>& b) {
  LPT_CHECK_MSG(a.solution == b.solution,
                "sharded solution diverged from serial");
  const auto& sa = a.stats;
  const auto& sb = b.stats;
  LPT_CHECK_MSG(sa.rounds_to_first == sb.rounds_to_first &&
                    sa.reached_optimum == sb.reached_optimum &&
                    sa.max_work_per_round == sb.max_work_per_round &&
                    sa.total_push_ops == sb.total_push_ops &&
                    sa.total_pull_ops == sb.total_pull_ops &&
                    sa.total_bytes == sb.total_bytes &&
                    sa.max_total_elements == sb.max_total_elements &&
                    sa.final_total_elements == sb.final_total_elements &&
                    sa.sampling_attempts == sb.sampling_attempts &&
                    sa.sampling_failures == sb.sampling_failures &&
                    sa.bookkeeping_touches_total ==
                        sb.bookkeeping_touches_total,
                "sharded DistributedRunStats diverged from serial");
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto i = static_cast<std::size_t>(cli.get_int("i", 10));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));
  const auto dataset = bench::dataset_flag(cli);
  const auto shard_counts = parse_counts(cli.get("shard-counts", "1,2,4"));
  const std::string transports_csv =
      cli.get("transports", "inproc,pipe,socket");
  const long kill_shard = cli.get_int("kill-shard", 1);  // -1: no fault rows
  const std::string trace_path = cli.get("trace", "");
  const auto trace_period =
      static_cast<std::uint32_t>(cli.get_int("trace-period", 1));
  // Chrome-trace the sweep: rounds + shard frame traffic, plus recovery
  // events from the fault column (which bypass the sampling gate).
  // Tracing writes only into a preallocated ring — the bit-identity
  // gates below run unchanged with it on.
  if (!trace_path.empty()) {
    obs::TraceConfig tc;
    tc.sample_period = trace_period;
    obs::enable_tracing(tc);
  }
  const long kill_after = cli.get_int("kill-after-frames", 1);  // 2nd task
                                                                // frame: mid-
                                                                // run for any
                                                                // >= 2-round
                                                                // run
  // The fault column reruns the LARGEST sweep point, so the victim index
  // must be a valid shard there.  Out of range was previously clamped to
  // the last shard — silently killing a different worker than asked for;
  // reject it loudly instead (the PR-6 CLI validation contract: garbage
  // flags exit 2, they do not limp on).
  if (kill_shard >= 0 &&
      static_cast<std::size_t>(kill_shard) >= shard_counts.back()) {
    std::fprintf(stderr,
                 "error: --kill-shard expects a shard index below the "
                 "largest --shard-counts entry (%zu), got \"%ld\"\n",
                 shard_counts.back(), kill_shard);
    return 2;
  }
  if (kill_after < 0) {
    std::fprintf(stderr,
                 "error: --kill-after-frames expects a non-negative frame "
                 "index, got \"%ld\"\n",
                 kill_after);
    return 2;
  }

  bench::banner("Shard scaling: sharded low-load wall time vs shard count",
                "src/shard runtime; every run hard-gated bit-identical to "
                "serial");

  const std::size_t n = std::size_t{1} << i;
  problems::MinDisk p;
  util::Table table({"transport", "shards", "rounds", "wall/rep s",
                     "speedup vs serial"});
  bench::WallTimer wall;
  bench::BenchJson json("shard_scaling");

  // Per-rep instances and serial baselines (fixed per-rep seeds, the same
  // scheme as fig2's average_runs).
  std::vector<std::vector<geom::Vec2>> instances(reps);
  std::vector<core::DistributedLpResult<problems::MinDisk>> baselines(reps);
  double serial_secs = 0.0;
  util::RunningStat serial_rounds;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const std::uint64_t seed = 1 + rep * 7919;
    util::Rng data_rng(seed * 31 + i);
    instances[rep] = workloads::generate_disk_dataset(dataset, n, data_rng);
    core::LowLoadConfig cfg;
    cfg.seed = seed;
    bench::WallTimer t;
    baselines[rep] = core::run_low_load(p, instances[rep], n, cfg);
    serial_secs += t.seconds();
    LPT_CHECK_MSG(baselines[rep].stats.reached_optimum,
                  "serial baseline failed to converge");
    serial_rounds.add(
        static_cast<double>(baselines[rep].stats.rounds_to_first));
  }
  const double serial_per_rep = serial_secs / static_cast<double>(reps);
  table.add_row({"serial", "0", util::fmt(serial_rounds.mean(), 2),
                 util::fmt(serial_per_rep, 4), "1.00"});
  json.add_row("serial", {{"i", static_cast<double>(i)},
                          {"n", static_cast<double>(n)},
                          {"mean_rounds", serial_rounds.mean()},
                          {"wall_per_rep", serial_per_rep}});

  struct TransportOpt {
    const char* name;
    shard::TransportKind kind;
  };
  const TransportOpt kTransports[] = {
      {"inproc", shard::TransportKind::kInProc},
      {"pipe", shard::TransportKind::kPipe},
      {"socket", shard::TransportKind::kSocket}};
  constexpr std::size_t kNumTransports = std::size(kTransports);

  double faultfree_wall[kNumTransports] = {};  // largest sweep point, per
                                               // transport (fault baseline)
  for (std::size_t t_idx = 0; t_idx < kNumTransports; ++t_idx) {
    const TransportOpt& transport = kTransports[t_idx];
    if (transports_csv.find(transport.name) == std::string::npos) continue;
    for (const std::size_t shards : shard_counts) {
      double secs = 0.0;
      util::RunningStat rounds;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        core::LowLoadConfig cfg;
        cfg.seed = 1 + rep * 7919;
        cfg.shard.shards = shards;
        cfg.shard.transport = transport.kind;
        bench::WallTimer t;
        const auto res = core::run_low_load(p, instances[rep], n, cfg);
        secs += t.seconds();
        check_identical(res, baselines[rep]);
        rounds.add(static_cast<double>(res.stats.rounds_to_first));
      }
      const double per_rep = secs / static_cast<double>(reps);
      const double speedup = per_rep > 0.0 ? serial_per_rep / per_rep : 0.0;
      if (shards == shard_counts.back()) faultfree_wall[t_idx] = per_rep;
      table.add_row({transport.name, util::fmt(shards),
                     util::fmt(rounds.mean(), 2), util::fmt(per_rep, 4),
                     util::fmt(speedup, 2)});
      json.add_row(transport.name,
                   {{"i", static_cast<double>(i)},
                    {"n", static_cast<double>(n)},
                    {"shards", static_cast<double>(shards)},
                    {"mean_rounds", rounds.mean()},
                    {"wall_per_rep", per_rep},
                    {"speedup_vs_serial", speedup}});
    }
  }

  // Fault column: rerun the largest sweep point with a scripted worker
  // kill; recovery must reproduce the serial results bit-for-bit.
  if (kill_shard >= 0) {
    const std::size_t shards = shard_counts.back();
    const auto victim = static_cast<std::size_t>(kill_shard);  // validated
                                                               // above
    for (std::size_t t_idx = 0; t_idx < kNumTransports; ++t_idx) {
      const TransportOpt& transport = kTransports[t_idx];
      if (transports_csv.find(transport.name) == std::string::npos) continue;
      double secs = 0.0;
      util::RunningStat rounds;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        core::LowLoadConfig cfg;
        cfg.seed = 1 + rep * 7919;
        cfg.shard.shards = shards;
        cfg.shard.transport = transport.kind;
        cfg.shard.fault_script = {
            {victim, shard::FaultOp::kKillWorker,
             static_cast<std::size_t>(kill_after)}};
        bench::WallTimer t;
        const auto res = core::run_low_load(p, instances[rep], n, cfg);
        secs += t.seconds();
        // The acceptance gate: a run that lost (and replaced) a worker
        // mid-round still matches the fault-free serial baseline exactly.
        check_identical(res, baselines[rep]);
        rounds.add(static_cast<double>(res.stats.rounds_to_first));
      }
      const double recovery_wall = secs / static_cast<double>(reps);
      const double overhead = faultfree_wall[t_idx] > 0.0
                                  ? recovery_wall / faultfree_wall[t_idx]
                                  : 0.0;
      const std::string label = std::string(transport.name) + "+kill" +
                                util::fmt(victim) + "@" +
                                util::fmt(static_cast<std::size_t>(
                                    kill_after));
      table.add_row({label, util::fmt(shards), util::fmt(rounds.mean(), 2),
                     util::fmt(recovery_wall, 4),
                     util::fmt(recovery_wall > 0.0
                                   ? serial_per_rep / recovery_wall
                                   : 0.0,
                               2)});
      json.add_row("fault",
                   {{"i", static_cast<double>(i)},
                    {"n", static_cast<double>(n)},
                    {"shards", static_cast<double>(shards)},
                    {"transport", static_cast<double>(t_idx)},
                    {"kill_shard", static_cast<double>(victim)},
                    {"kill_after_frames", static_cast<double>(kill_after)},
                    {"mean_rounds", rounds.mean()},
                    {"recovery_wall", recovery_wall},
                    {"recovery_overhead", overhead}});
    }
  }

  table.print();
  std::printf(
      "\nEvery sharded run above was checked bit-identical to its serial\n"
      "baseline (solution, rounds, work meter, load and bookkeeping\n"
      "counters) — the deterministic stage-B merge contract.\n");

  json.set("wall_seconds", wall.seconds());
  json.set("reps", static_cast<std::uint64_t>(reps));
  json.set("i", static_cast<std::uint64_t>(i));
  json.set("dataset", workloads::dataset_name(dataset));
  if (!trace_path.empty()) {
    obs::disable_tracing();
    if (obs::write_chrome_trace(trace_path)) {
      std::printf("\n[trace] wrote %zu events to %s\n",
                  obs::trace_event_count(), trace_path.c_str());
    } else {
      std::fprintf(stderr, "[trace] FAILED to write %s\n", trace_path.c_str());
      return 1;
    }
  }
  const auto path = json.write();
  if (!path.empty()) std::printf("\n[bench-json] wrote %s\n", path.c_str());
  return 0;
}
