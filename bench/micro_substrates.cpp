// MICRO — microbenchmarks for the substrate kernels the distributed
// engines spend their time in: Welzl minidisk, Seidel LP, violation
// testing, the distinct-sample selection of Section 2.1, the sequential
// Clarkson solver, and the gossip channels.
//
// Two parts:
//   1. google-benchmark timings of the individual kernels (filter with
//      --benchmark_filter=...).
//   2. A "substrate showdown" that times the CSR Mailbox/PullChannel
//      against reference implementations of the previous vector-of-vectors
//      substrate at n = 2^16, checks that deliver cost scales with
//      messages (not n), and writes BENCH_micro_substrates.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "reference_store.hpp"
#include "core/clarkson.hpp"
#include "core/sampling.hpp"
#include "geometry/welzl.hpp"
#include "gossip/mailbox.hpp"
#include "lp/seidel.hpp"
#include "problems/min_disk.hpp"
#include "util/rng.hpp"
#include "workloads/disk_data.hpp"
#include "workloads/lp_data.hpp"

namespace {

using namespace lpt;

// ---------------------------------------------------------------------------
// Reference (pre-CSR) substrate: one std::vector per node, cleared across
// the whole node set every round, per-message fault draws.  Kept here as
// the measurement baseline for the BENCH json.
// ---------------------------------------------------------------------------

template <typename M>
class LegacyMailbox {
 public:
  explicit LegacyMailbox(gossip::Network& net)
      : net_(&net), inboxes_(net.size()) {}

  void push(gossip::NodeId from, M msg) {
    const gossip::NodeId to = net_->random_peer();
    net_->meter().add_push(from, gossip::wire_size(msg));
    outbox_.emplace_back(to, std::move(msg));
  }

  void deliver() {
    for (auto& ib : inboxes_) ib.clear();
    for (auto& [to, msg] : outbox_) {
      if (net_->drop_push()) continue;
      inboxes_[to].push_back(std::move(msg));
    }
    outbox_.clear();
  }

  const std::vector<M>& inbox(gossip::NodeId v) const { return inboxes_[v]; }

 private:
  gossip::Network* net_;
  std::vector<std::pair<gossip::NodeId, M>> outbox_;
  std::vector<std::vector<M>> inboxes_;
};

template <typename A>
class LegacyPullChannel {
 public:
  explicit LegacyPullChannel(gossip::Network& net)
      : net_(&net), responses_(net.size()), answered_(net.size(), 0) {}

  void request(gossip::NodeId from) {
    net_->meter().add_pull(from, 0);
    requests_.emplace_back(from, net_->random_peer());
  }

  template <typename F>
  void resolve(F&& responder) {
    for (auto& r : responses_) r.clear();
    std::fill(answered_.begin(), answered_.end(), std::uint32_t{0});
    for (const auto& [from, target] : requests_) {
      if (net_->asleep(target) || net_->drop_response()) continue;
      std::optional<A> ans = responder(target);
      if (ans) {
        net_->meter().add_response_bytes(gossip::wire_size(*ans));
        ++answered_[target];
        responses_[from].push_back(std::move(*ans));
      }
    }
    requests_.clear();
  }

  const std::vector<A>& responses(gossip::NodeId v) const {
    return responses_[v];
  }

 private:
  gossip::Network* net_;
  std::vector<std::pair<gossip::NodeId, gossip::NodeId>> requests_;
  std::vector<std::vector<A>> responses_;
  std::vector<std::uint32_t> answered_;
};


// ---------------------------------------------------------------------------
// google-benchmark kernels
// ---------------------------------------------------------------------------

void BM_WelzlMinDisk(benchmark::State& state) {
  util::Rng rng(1);
  const auto pts = workloads::generate_disk_dataset(
      workloads::DiskDataset::kTripleDisk,
      static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    util::Rng r(2);
    benchmark::DoNotOptimize(geom::min_disk(pts, r));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WelzlMinDisk)->Arg(54)->Arg(256)->Arg(4096);

void BM_CanonicalSolve(benchmark::State& state) {
  util::Rng rng(3);
  const auto pts = workloads::generate_disk_dataset(
      workloads::DiskDataset::kTriangle,
      static_cast<std::size_t>(state.range(0)), rng);
  problems::MinDisk p;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.solve(pts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CanonicalSolve)->Arg(54)->Arg(1024);

void BM_ViolationScan(benchmark::State& state) {
  util::Rng rng(5);
  const auto pts = workloads::generate_disk_dataset(
      workloads::DiskDataset::kHull,
      static_cast<std::size_t>(state.range(0)), rng);
  problems::MinDisk p;
  std::vector<geom::Vec2> sub(pts.begin(), pts.begin() + 20);
  const auto sol = p.solve(sub);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::count_violators(p, sol, pts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ViolationScan)->Arg(1024)->Arg(16384);

void BM_SeidelLp(benchmark::State& state) {
  util::Rng rng(7);
  const auto inst = workloads::generate_lp_instance(
      static_cast<std::size_t>(state.range(0)), rng);
  const lp::Seidel2D solver(inst.objective);
  for (auto _ : state) {
    util::Rng r(11);
    benchmark::DoNotOptimize(solver.solve(inst.constraints, r));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SeidelLp)->Arg(64)->Arg(1024)->Arg(8192);

void BM_SelectDistinct(benchmark::State& state) {
  util::Rng rng(13);
  std::vector<geom::Vec2> responses;
  for (int i = 0; i < state.range(0); ++i) {
    responses.push_back({rng.uniform(-1, 1), rng.uniform(-1, 1)});
  }
  for (auto _ : state) {
    auto copy = responses;
    benchmark::DoNotOptimize(
        core::select_distinct(std::move(copy), 54, rng, false));
  }
}
BENCHMARK(BM_SelectDistinct)->Arg(140)->Arg(280);

void BM_SequentialClarkson(benchmark::State& state) {
  util::Rng rng(17);
  const auto pts = workloads::generate_disk_dataset(
      workloads::DiskDataset::kTripleDisk,
      static_cast<std::size_t>(state.range(0)), rng);
  problems::MinDisk p;
  for (auto _ : state) {
    util::Rng r(19);
    benchmark::DoNotOptimize(core::clarkson_solve(p, pts, r));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SequentialClarkson)->Arg(1024)->Arg(8192);

void BM_MailboxRouting(benchmark::State& state) {
  const std::size_t n = 1024;
  for (auto _ : state) {
    gossip::Network net(n, util::Rng(23));
    gossip::Mailbox<geom::Vec2> mb(net);
    net.begin_round();
    for (gossip::NodeId v = 0; v < n; ++v) {
      for (int k = 0; k < 8; ++k) mb.push(v, geom::Vec2{1.0, 2.0});
    }
    mb.deliver();
    benchmark::DoNotOptimize(mb.inbox(0).size());
  }
  state.SetItemsProcessed(state.iterations() * 8 * 1024);
}
BENCHMARK(BM_MailboxRouting);

// CSR deliver at scale: cost tracks the message count, not the node count.
void BM_MailboxDeliverSparse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t msgs = 8192;
  gossip::Network net(n, util::Rng(27));
  gossip::Mailbox<geom::Vec2> mb(net);
  net.begin_round();
  for (auto _ : state) {
    for (std::size_t k = 0; k < msgs; ++k) {
      mb.push(static_cast<gossip::NodeId>(k % n), geom::Vec2{1.0, 2.0});
    }
    mb.deliver();
    benchmark::DoNotOptimize(mb.last_delivered_messages());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(msgs));
}
BENCHMARK(BM_MailboxDeliverSparse)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_PullChannelResolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  gossip::Network net(n, util::Rng(31));
  gossip::PullChannel<double> ch(net);
  net.begin_round();
  const std::size_t requesters = std::min<std::size_t>(n, 4096);
  for (auto _ : state) {
    for (std::size_t v = 0; v < requesters; ++v) {
      for (int k = 0; k < 4; ++k) ch.request(static_cast<gossip::NodeId>(v));
    }
    ch.resolve([](gossip::NodeId target) {
      return std::optional<double>(static_cast<double>(target));
    });
    benchmark::DoNotOptimize(ch.responses(0).size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(requesters * 4));
}
BENCHMARK(BM_PullChannelResolve)->Arg(1 << 12)->Arg(1 << 16);

void BM_WeightedSampler(benchmark::State& state) {
  util::Rng rng(29);
  util::WeightedSampler ws(static_cast<std::size_t>(state.range(0)), 1.0);
  for (int i = 0; i < state.range(0) / 4; ++i) {
    ws.scale(rng.below(static_cast<std::uint64_t>(state.range(0))), 2.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ws.sample(rng));
  }
}
BENCHMARK(BM_WeightedSampler)->Arg(1024)->Arg(65536);

// ---------------------------------------------------------------------------
// Substrate showdown: CSR vs the legacy reference at n = 2^16.
// ---------------------------------------------------------------------------

struct Throughput {
  double per_sec = 0.0;  // items routed per second
};

template <typename PushFn, typename DeliverFn>
Throughput time_deliver(std::size_t iters, std::size_t msgs, PushFn&& push,
                        DeliverFn&& deliver) {
  bench::WallTimer t;
  for (std::size_t it = 0; it < iters; ++it) {
    push(msgs);
    deliver();
  }
  const double s = t.seconds();
  return {s > 0.0 ? static_cast<double>(iters * msgs) / s : 0.0};
}

void substrate_showdown(bench::BenchJson& json) {
  constexpr std::size_t kN = 1 << 16;
  constexpr std::size_t kIters = 60;

  std::printf("\n=== substrate showdown (n = 2^16) ===\n");

  // --- Mailbox deliver at two round densities.  The late rounds of every
  // engine are sparse (a handful of W_i copies over all n inboxes), which
  // is exactly where the legacy per-inbox clears hurt. ---
  auto mail_throughput = [&](auto& mailbox, auto& net, std::size_t msgs) {
    net.begin_round();
    return time_deliver(
        kIters, msgs,
        [&](std::size_t m) {
          for (std::size_t k = 0; k < m; ++k) {
            mailbox.push(static_cast<gossip::NodeId>(k & (kN - 1)),
                         geom::Vec2{1.0, 2.0});
          }
        },
        [&] { mailbox.deliver(); });
  };

  for (const std::size_t msgs : {kN / 64, kN / 8}) {
    gossip::Network net_new(kN, util::Rng(41));
    gossip::Mailbox<geom::Vec2> mb_new(net_new);
    const auto csr_mail = mail_throughput(mb_new, net_new, msgs);

    gossip::Network net_old(kN, util::Rng(41));
    LegacyMailbox<geom::Vec2> mb_old(net_old);
    const auto legacy_mail = mail_throughput(mb_old, net_old, msgs);

    const double ratio = legacy_mail.per_sec > 0.0
                             ? csr_mail.per_sec / legacy_mail.per_sec
                             : 0.0;
    std::printf("Mailbox.deliver (%5zu msgs)  csr: %10.0f msg/s   legacy: "
                "%10.0f msg/s   speedup: %.2fx\n",
                msgs, csr_mail.per_sec, legacy_mail.per_sec, ratio);
    const char* tag = msgs == kN / 64 ? "sparse" : "moderate";
    json.set(std::string("mailbox_csr_msgs_per_sec_") + tag,
             csr_mail.per_sec);
    json.set(std::string("mailbox_legacy_msgs_per_sec_") + tag,
             legacy_mail.per_sec);
    json.set(std::string("mailbox_speedup_") + tag, ratio);
  }

  // --- PullChannel resolve.  Requester counts mirror the engines' late
  // rounds (the Section 2.3 seed channel and the hitting-set tail), where
  // a small subset of nodes still pulls while the legacy substrate keeps
  // clearing all n response vectors. ---
  constexpr std::size_t kRequesters = 512;
  constexpr std::size_t kPullsEach = 8;
  constexpr std::size_t kPulls = kRequesters * kPullsEach;
  gossip::Network net_pn(kN, util::Rng(43));
  gossip::PullChannel<double> ch_new(net_pn);
  net_pn.begin_round();
  const auto csr_pull = time_deliver(
      kIters, kPulls,
      [&](std::size_t) {
        for (std::size_t v = 0; v < kRequesters; ++v) {
          for (std::size_t k = 0; k < kPullsEach; ++k) {
            ch_new.request(static_cast<gossip::NodeId>(v));
          }
        }
      },
      [&] {
        ch_new.resolve([](gossip::NodeId target) {
          return std::optional<double>(static_cast<double>(target));
        });
      });

  gossip::Network net_po(kN, util::Rng(43));
  LegacyPullChannel<double> ch_old(net_po);
  net_po.begin_round();
  const auto legacy_pull = time_deliver(
      kIters, kPulls,
      [&](std::size_t) {
        for (std::size_t v = 0; v < kRequesters; ++v) {
          for (std::size_t k = 0; k < kPullsEach; ++k) {
            ch_old.request(static_cast<gossip::NodeId>(v));
          }
        }
      },
      [&] {
        ch_old.resolve([](gossip::NodeId target) {
          return std::optional<double>(static_cast<double>(target));
        });
      });

  const double pull_ratio =
      legacy_pull.per_sec > 0.0 ? csr_pull.per_sec / legacy_pull.per_sec : 0.0;
  std::printf("PullChannel.resolve csr: %8.0f req/s   legacy: %10.0f req/s   "
              "speedup: %.2fx\n",
              csr_pull.per_sec, legacy_pull.per_sec, pull_ratio);

  // --- Fused bulk pulls (the engines' hot path) ---
  gossip::Network net_pf(kN, util::Rng(43));
  gossip::PullChannel<double> ch_fused(net_pf);
  net_pf.begin_round();
  const auto fused_pull = time_deliver(
      kIters, kPulls,
      [&](std::size_t) {
        ch_fused.begin_pulls();
        for (std::size_t v = 0; v < kRequesters; ++v) {
          ch_fused.pull_uniform(
              static_cast<gossip::NodeId>(v), kPullsEach,
              [](gossip::NodeId target) {
                return std::optional<double>(static_cast<double>(target));
              });
        }
      },
      [&] {});
  const double fused_ratio = legacy_pull.per_sec > 0.0
                                 ? fused_pull.per_sec / legacy_pull.per_sec
                                 : 0.0;
  std::printf("PullChannel.pull_uniform: %8.0f req/s                         "
              "speedup: %.2fx\n",
              fused_pull.per_sec, fused_ratio);

  // --- NodeStore showdown: slab-backed store vs the legacy per-node
  // vectors on the engines' filter-pass shape — n nodes each holding one
  // original, a small active set holding copies.  The legacy pass walks
  // all n store headers (one heap block each); the slab pass visits only
  // the copy-holders, and |H(V)| is O(1) instead of an n-header walk. ---
  {
    constexpr std::size_t kHolders = 256;
    constexpr std::size_t kCopies = 4;
    constexpr std::size_t kPassIters = 400;

    gossip::NodeStore<geom::Vec2> slab(kN);
    std::vector<bench::ReferenceNodeStore<geom::Vec2>> legacy(kN);
    for (std::size_t v = 0; v < kN; ++v) {
      const geom::Vec2 h{static_cast<double>(v), 1.0};
      slab.add_original(static_cast<gossip::NodeId>(v), h);
      legacy[v].add_original(h);
    }
    for (std::size_t j = 0; j < kHolders; ++j) {
      const auto v = static_cast<gossip::NodeId>((j * 63) % kN);
      for (std::size_t c = 0; c < kCopies; ++c) {
        const geom::Vec2 h{static_cast<double>(j), static_cast<double>(c)};
        slab.add_copy(v, h);
        legacy[v].add_copy(h);
      }
    }
    std::vector<util::Rng> rng_a, rng_b;
    for (std::size_t v = 0; v < kN; ++v) {
      rng_a.emplace_back(v);
      rng_b.emplace_back(v);
    }
    // keep probability 1.0: every copy survives, so each timed pass does
    // identical work and the holder set stays fixed.
    bench::WallTimer t_slab;
    std::size_t visited = 0;
    for (std::size_t it = 0; it < kPassIters; ++it) {
      visited = slab.filter_copies(
          1.0, [&](gossip::NodeId v) -> util::Rng& { return rng_a[v]; });
    }
    const double slab_s = t_slab.seconds();
    bench::WallTimer t_legacy;
    for (std::size_t it = 0; it < kPassIters; ++it) {
      for (std::size_t v = 0; v < kN; ++v) legacy[v].filter(rng_b[v], 1.0);
    }
    const double legacy_s = t_legacy.seconds();
    const double slab_ps = slab_s > 0.0 ? kPassIters / slab_s : 0.0;
    const double legacy_ps = legacy_s > 0.0 ? kPassIters / legacy_s : 0.0;
    const double store_ratio = legacy_ps > 0.0 ? slab_ps / legacy_ps : 0.0;
    std::printf(
        "NodeStore.filter (%zu holders of n=2^16)  slab: %8.0f pass/s "
        "(visits %zu)   legacy: %8.0f pass/s (visits all %zu)   "
        "speedup: %.2fx\n",
        kHolders, slab_ps, visited, legacy_ps, kN, store_ratio);
    json.set("store_filter_slab_passes_per_sec", slab_ps);
    json.set("store_filter_legacy_passes_per_sec", legacy_ps);
    json.set("store_filter_speedup", store_ratio);

    // The O(active) contract, as a hard counter (not a timing): the slab
    // pass must visit exactly the copy-holders.
    if (visited != kHolders) {
      std::fprintf(stderr,
                   "FAIL: slab filter pass visited %zu nodes, expected the "
                   "%zu copy-holders — sparse tracking regression\n",
                   visited, kHolders);
      std::exit(1);
    }
  }

  // --- Deliver cost scales with messages, not n (regression check) ---
  constexpr std::size_t kFixedMsgs = 8192;
  auto sparse_cost = [&](std::size_t n) {
    gossip::Network net(n, util::Rng(47));
    gossip::Mailbox<geom::Vec2> mb(net);
    net.begin_round();
    const auto tp = time_deliver(
        kIters, kFixedMsgs,
        [&](std::size_t m) {
          for (std::size_t k = 0; k < m; ++k) {
            mb.push(static_cast<gossip::NodeId>(k % n), geom::Vec2{1.0, 2.0});
          }
        },
        [&] { mb.deliver(); });
    return tp.per_sec;
  };
  const double small_n = sparse_cost(1 << 10);
  const double large_n = sparse_cost(1 << 20);
  const double scaling = large_n > 0.0 ? small_n / large_n : 0.0;
  std::printf("deliver msg/s, 8k msgs: n=2^10: %.0f   n=2^20: %.0f   "
              "cost ratio: %.2fx (a per-inbox clear would be ~%zux)\n",
              small_n, large_n, scaling,
              (std::size_t{1} << 20) / kFixedMsgs);

  json.set("pull_csr_reqs_per_sec", csr_pull.per_sec);
  json.set("pull_legacy_reqs_per_sec", legacy_pull.per_sec);
  json.set("pull_speedup", pull_ratio);
  json.set("pull_fused_reqs_per_sec", fused_pull.per_sec);
  json.set("pull_fused_speedup", fused_ratio);
  json.set("deliver_sparse_n10_msgs_per_sec", small_n);
  json.set("deliver_sparse_n20_msgs_per_sec", large_n);
  json.set("deliver_n_scaling_cost_ratio", scaling);

  // Regression gate: growing n by 1024x may not blow a fixed-size deliver
  // up by anything near the ~128x a per-inbox clear would cost.  The CSR
  // op count is n-independent; the generous bound leaves room for the
  // cache-locality cost of the larger per-node index arrays.
  if (scaling > 32.0) {
    std::fprintf(stderr,
                 "FAIL: deliver cost grew %.1fx from n=2^10 to n=2^20 for a "
                 "fixed message count — CSR scaling regression\n",
                 scaling);
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  lpt::bench::BenchJson json("micro_substrates");
  substrate_showdown(json);
  const auto path = json.write();
  if (!path.empty()) std::printf("[bench-json] wrote %s\n", path.c_str());
  return 0;
}
