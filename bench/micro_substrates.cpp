// MICRO — google-benchmark microbenchmarks for the substrate kernels the
// distributed engines spend their time in: Welzl minidisk, Seidel LP,
// violation testing, the distinct-sample selection of Section 2.1, the
// sequential Clarkson solver, and mailbox routing.
#include <benchmark/benchmark.h>

#include "core/clarkson.hpp"
#include "core/sampling.hpp"
#include "geometry/welzl.hpp"
#include "gossip/mailbox.hpp"
#include "lp/seidel.hpp"
#include "problems/min_disk.hpp"
#include "util/rng.hpp"
#include "workloads/disk_data.hpp"
#include "workloads/lp_data.hpp"

namespace {

using namespace lpt;

void BM_WelzlMinDisk(benchmark::State& state) {
  util::Rng rng(1);
  const auto pts = workloads::generate_disk_dataset(
      workloads::DiskDataset::kTripleDisk,
      static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    util::Rng r(2);
    benchmark::DoNotOptimize(geom::min_disk(pts, r));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WelzlMinDisk)->Arg(54)->Arg(256)->Arg(4096);

void BM_CanonicalSolve(benchmark::State& state) {
  util::Rng rng(3);
  const auto pts = workloads::generate_disk_dataset(
      workloads::DiskDataset::kTriangle,
      static_cast<std::size_t>(state.range(0)), rng);
  problems::MinDisk p;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.solve(pts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CanonicalSolve)->Arg(54)->Arg(1024);

void BM_ViolationScan(benchmark::State& state) {
  util::Rng rng(5);
  const auto pts = workloads::generate_disk_dataset(
      workloads::DiskDataset::kHull,
      static_cast<std::size_t>(state.range(0)), rng);
  problems::MinDisk p;
  std::vector<geom::Vec2> sub(pts.begin(), pts.begin() + 20);
  const auto sol = p.solve(sub);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::count_violators(p, sol, pts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ViolationScan)->Arg(1024)->Arg(16384);

void BM_SeidelLp(benchmark::State& state) {
  util::Rng rng(7);
  const auto inst = workloads::generate_lp_instance(
      static_cast<std::size_t>(state.range(0)), rng);
  const lp::Seidel2D solver(inst.objective);
  for (auto _ : state) {
    util::Rng r(11);
    benchmark::DoNotOptimize(solver.solve(inst.constraints, r));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SeidelLp)->Arg(64)->Arg(1024)->Arg(8192);

void BM_SelectDistinct(benchmark::State& state) {
  util::Rng rng(13);
  std::vector<geom::Vec2> responses;
  for (int i = 0; i < state.range(0); ++i) {
    responses.push_back({rng.uniform(-1, 1), rng.uniform(-1, 1)});
  }
  for (auto _ : state) {
    auto copy = responses;
    benchmark::DoNotOptimize(
        core::select_distinct(std::move(copy), 54, rng, false));
  }
}
BENCHMARK(BM_SelectDistinct)->Arg(140)->Arg(280);

void BM_SequentialClarkson(benchmark::State& state) {
  util::Rng rng(17);
  const auto pts = workloads::generate_disk_dataset(
      workloads::DiskDataset::kTripleDisk,
      static_cast<std::size_t>(state.range(0)), rng);
  problems::MinDisk p;
  for (auto _ : state) {
    util::Rng r(19);
    benchmark::DoNotOptimize(core::clarkson_solve(p, pts, r));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SequentialClarkson)->Arg(1024)->Arg(8192);

void BM_MailboxRouting(benchmark::State& state) {
  const std::size_t n = 1024;
  for (auto _ : state) {
    gossip::Network net(n, util::Rng(23));
    gossip::Mailbox<geom::Vec2> mb(net);
    net.begin_round();
    for (gossip::NodeId v = 0; v < n; ++v) {
      for (int k = 0; k < 8; ++k) mb.push(v, geom::Vec2{1.0, 2.0});
    }
    mb.deliver();
    benchmark::DoNotOptimize(mb.inbox(0).size());
  }
  state.SetItemsProcessed(state.iterations() * 8 * 1024);
}
BENCHMARK(BM_MailboxRouting);

void BM_WeightedSampler(benchmark::State& state) {
  util::Rng rng(29);
  util::WeightedSampler ws(static_cast<std::size_t>(state.range(0)), 1.0);
  for (int i = 0; i < state.range(0) / 4; ++i) {
    ws.scale(rng.below(static_cast<std::uint64_t>(state.range(0))), 2.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ws.sample(rng));
  }
}
BENCHMARK(BM_WeightedSampler)->Arg(1024)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
